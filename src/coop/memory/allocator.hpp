#pragma once

#include <cstddef>
#include <string>

/// \file allocator.hpp
/// Allocation interfaces for the heterogeneous memory scheme (paper Fig. 8).
///
/// The paper differentiates memory by *context* — control code, mesh data,
/// temporary data — and by *where the owning rank executes*: a CPU-only rank
/// allocates everything with malloc; a GPU-driving rank places mesh data in
/// unified memory and temporary data in device memory pools (cnmem-style).

namespace coop::memory {

/// Memory context, as in the paper's Fig. 8 table.
enum class AllocationContext {
  kControlCode,  ///< rank-local bookkeeping, never touched by kernels
  kMeshData,     ///< persistent mesh fields, touched by kernels
  kTemporary,    ///< per-kernel scratch, pooled for reuse
};

[[nodiscard]] constexpr const char* to_string(AllocationContext c) noexcept {
  switch (c) {
    case AllocationContext::kControlCode: return "control";
    case AllocationContext::kMeshData: return "mesh";
    case AllocationContext::kTemporary: return "temporary";
  }
  return "?";
}

/// Memory space a block physically lives in (simulated placement).
enum class MemorySpace {
  kHost,     ///< host DRAM (malloc)
  kUnified,  ///< CUDA unified memory (migratable host<->device)
  kDevice,   ///< GPU global memory (cudaMalloc / pool)
};

[[nodiscard]] constexpr const char* to_string(MemorySpace s) noexcept {
  switch (s) {
    case MemorySpace::kHost: return "host";
    case MemorySpace::kUnified: return "unified";
    case MemorySpace::kDevice: return "device";
  }
  return "?";
}

/// Abstract allocator with capacity accounting.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Allocates `bytes` (throws std::bad_alloc when the simulated capacity
  /// would be exceeded). Zero-byte requests return a valid unique pointer.
  [[nodiscard]] virtual void* allocate(std::size_t bytes) = 0;
  virtual void deallocate(void* p) = 0;

  [[nodiscard]] virtual MemorySpace space() const noexcept = 0;
  [[nodiscard]] virtual std::size_t bytes_in_use() const noexcept = 0;
  [[nodiscard]] virtual std::size_t high_water() const noexcept = 0;
  [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;
};

}  // namespace coop::memory
