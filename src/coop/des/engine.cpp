#include "coop/des/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace coop::des {

void Engine::spawn_at(SimTime at, Task<void> task) {
  if (!task.valid()) throw std::invalid_argument("Engine::spawn: empty task");
  if (at < now_) throw std::invalid_argument("Engine::spawn: time in the past");
  schedule(at, task.native_handle());
  roots_.push_back(std::move(task));
}

void Engine::schedule(SimTime t, std::coroutine_handle<> h) {
  if (t < now_)
    throw std::invalid_argument("Engine::schedule: time in the past");
  queue_.push(Event{t, next_seq_++, h});
}

void Engine::step(const Event& ev) {
  now_ = ev.t;
  ++processed_;
  ev.h.resume();
}

void Engine::reap_finished_roots() {
  // Steal the first stored exception BEFORE erasing, so the failed frame is
  // reaped like any completed root: a second run() must not rethrow a stale
  // exception, and no completed frame may outlive this call.
  std::exception_ptr first_failure;
  for (auto& r : roots_) {
    if (auto e = r.take_exception(); e && !first_failure)
      first_failure = std::move(e);
  }
  std::erase_if(roots_, [](const Task<void>& r) { return r.done(); });
  if (first_failure) std::rethrow_exception(first_failure);
}

SimTime Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    step(ev);
  }
  reap_finished_roots();
  return now_;
}

SimTime Engine::run_until(SimTime t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    step(ev);
  }
  if (now_ < t_end) now_ = t_end;
  reap_finished_roots();
  return now_;
}

}  // namespace coop::des
