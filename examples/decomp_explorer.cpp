/// Decomposition explorer: prints the rank-by-rank domain layout each node
/// mode produces (paper Figs. 9-10) for a given problem, with halo
/// statistics. Useful to see exactly which zones each rank owns, which GPU
/// it is associated with, and how the heterogeneous thin slabs are carved.
///
/// Usage: decomp_explorer [x y z] [cpu_fraction]   (default 320 480 320 0.05)

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "coop/core/node_mode.hpp"
#include "coop/decomp/decomposition.hpp"

namespace {

void print_decomposition(const coop::decomp::Decomposition& d) {
  std::printf("  scheme: %s, %d ranks\n", d.scheme.c_str(), d.ranks());
  const auto nbrs = coop::decomp::neighbor_lists(d);
  for (const auto& dom : d.domains) {
    std::ostringstream box;
    box << dom.box;
    std::printf("    rank %2d [%s] gpu=%2d  %-34s %10ld zones, %zu nbrs\n",
                dom.rank, to_string(dom.target), dom.gpu_id,
                box.str().c_str(), dom.box.zones(),
                nbrs[static_cast<std::size_t>(dom.rank)].size());
  }
  const auto s = coop::decomp::analyze_communication(d, 1);
  std::printf("    halo: %d messages/step, max %d neighbors, %ld ghost "
              "zones total\n\n",
              s.total_messages, s.max_neighbors, s.total_halo_zones);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coop;
  const long x = argc > 3 ? std::atol(argv[1]) : 320;
  const long y = argc > 3 ? std::atol(argv[2]) : 480;
  const long z = argc > 3 ? std::atol(argv[3]) : 320;
  const double f = argc > 4 ? std::atof(argv[4]) : 0.05;
  const mesh::Box global{{0, 0, 0}, {x, y, z}};
  const auto node = devmodel::NodeSpec::rzhasgpu();

  std::printf("Global box %ldx%ldx%ld (%ld zones) on %s\n\n", x, y, z,
              global.zones(), node.name.c_str());

  for (auto mode : {core::NodeMode::kOneRankPerGpu, core::NodeMode::kMpsPerGpu,
                    core::NodeMode::kHeterogeneous}) {
    std::printf("%s:\n", to_string(mode));
    print_decomposition(core::make_decomposition(mode, node, global, 4, f));
  }

  std::printf("'square' 16-rank reference (paper Fig. 9):\n");
  print_decomposition(decomp::block_decomposition(global, 16));
  return 0;
}
