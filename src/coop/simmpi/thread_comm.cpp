#include "coop/simmpi/thread_comm.hpp"

#include <algorithm>
#include <stdexcept>

namespace coop::simmpi {

ThreadCommWorld::ThreadCommWorld(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("ThreadCommWorld: size <= 0");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

int ThreadComm::size() const noexcept { return world_->size(); }

void ThreadComm::send(int dest, int tag, std::vector<double> data) {
  if (dest < 0 || dest >= world_->size_)
    throw std::invalid_argument("ThreadComm::send: bad destination rank");
  auto& box = *world_->mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lk(box.mu);
    box.queues[{rank_, tag}].push(std::move(data));
  }
  box.cv.notify_all();
}

std::vector<double> ThreadComm::recv(int source, int tag) {
  if (source < 0 || source >= world_->size_)
    throw std::invalid_argument("ThreadComm::recv: bad source rank");
  auto& box = *world_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lk(box.mu);
  const auto key = std::pair{source, tag};
  box.cv.wait(lk, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto& q = box.queues[key];
  std::vector<double> out = std::move(q.front());
  q.pop();
  return out;
}

namespace {

template <typename Fold>
double rendezvous_reduce(ThreadCommWorld::Collective& c, int world_size,
                         double v, Fold fold) {
  std::unique_lock lk(c.mu);
  if (c.arrived == 0) c.accum = v;
  else c.accum = fold(c.accum, v);
  const std::uint64_t my_gen = c.generation;
  if (++c.arrived == world_size) {
    c.result = c.accum;
    c.arrived = 0;
    ++c.generation;
    c.cv.notify_all();
    return c.result;
  }
  c.cv.wait(lk, [&] { return c.generation != my_gen; });
  return c.result;
}

}  // namespace

double ThreadComm::allreduce_min(double v) {
  return rendezvous_reduce(world_->reduce_, world_->size_, v,
                           [](double a, double b) { return std::min(a, b); });
}

double ThreadComm::allreduce_max(double v) {
  return rendezvous_reduce(world_->reduce_, world_->size_, v,
                           [](double a, double b) { return std::max(a, b); });
}

double ThreadComm::allreduce_sum(double v) {
  return rendezvous_reduce(world_->reduce_, world_->size_, v,
                           [](double a, double b) { return a + b; });
}

void ThreadComm::barrier() { (void)allreduce_sum(0.0); }

}  // namespace coop::simmpi
