/// Multi-physics demo: the Sedov blast with the mixing (passive scalar) and
/// thermal-diffusion packages enabled — the "multi-physics" in the paper's
/// title — with ARES-style per-kernel wall-clock timers.
///
/// Usage: multiphysics_demo [N] [steps]   (default 28, 40)

#include <cstdio>
#include <cstdlib>

#include "coop/forall/kernel_timers.hpp"
#include "coop/hydro/solver.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const long n = argc > 1 ? std::atol(argv[1]) : 28;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  hydro::ProblemConfig cfg;
  cfg.global = {{0, 0, 0}, {n, n, n}};
  cfg.packages.passive_scalar = true;
  cfg.packages.diffusion = true;
  cfg.packages.diffusivity = 5e-4;
  cfg.boundary = hydro::BoundaryCondition::kReflecting;

  memory::MemoryManager::Config mc;
  mc.target = memory::ExecutionTarget::kCpuCore;
  mc.host_capacity = std::size_t{2} << 30;
  memory::MemoryManager mm(mc);
  hydro::Solver solver(mm, cfg, cfg.global,
                       forall::DynamicPolicy{forall::PolicyKind::kSeq});
  solver.initialize();

  forall::KernelTimerRegistry timers;
  double t = 0;
  for (int s = 0; s < steps; ++s) {
    {
      forall::ScopedKernelTimer kt(timers, "boundaries");
      solver.apply_physical_boundaries();
    }
    {
      forall::ScopedKernelTimer kt(timers, "primitives");
      solver.compute_primitives();
    }
    double dt;
    {
      forall::ScopedKernelTimer kt(timers, "cfl_dt");
      dt = solver.local_dt();
    }
    {
      forall::ScopedKernelTimer kt(timers, "advance(hydro+packages)");
      solver.advance(dt);
    }
    t += dt;
  }

  const auto d = solver.local_diagnostics();
  std::printf("Sedov + mixing + diffusion, %ld^3, %d steps (t = %.4f)\n", n,
              steps, t);
  std::printf("  mass          : %.8f (exact: 1)\n", d.mass);
  std::printf("  total energy  : %.8f (exact: %.8f)\n", d.total_energy,
              cfg.blast_energy + cfg.p0 / (cfg.eos.gamma - 1.0));
  std::printf("  scalar mass   : %.6f, concentration in [%.4f, %.4f]\n",
              d.scalar_mass, d.scalar_min, d.scalar_max);
  std::printf("  peak density  : %.4f at radius %.4f\n", d.max_density,
              d.max_density_radius);

  std::printf("\nPer-phase wall time (ARES-style kernel timers):\n");
  for (const auto& [name, e] : timers.sorted()) {
    std::printf("  %-26s %8.1f ms  (%llu calls)\n", name.c_str(),
                1e3 * e.seconds,
                static_cast<unsigned long long>(e.calls));
  }
  return 0;
}
