/// compare_reports — the perf-baseline regression gate.
///
/// Parses a checked-in baseline run report (bench/baselines/BENCH_*.json)
/// and a freshly regenerated one with the strict JSON checker, flattens
/// both into the comparable metric list (makespan, imbalance, utilization,
/// FLOPS efficiency, hetero gain, per-size sweep times) and diffs them
/// under per-metric tolerance bands. Exits non-zero when any metric drifts
/// outside its band or disappeared from the current report — the CI
/// `perf-baselines` job fails on that.
///
/// Usage: compare_reports baseline.json current.json [--tolerances tol.json]
///
/// The tolerance file is a `coophet.perf_tolerances` v1 artifact:
///   {"schema":"coophet.perf_tolerances","schema_version":1,
///    "default":{"rel_pct":2.0,"abs":0.0},
///    "metrics":{"imbalance_pct":{"rel_pct":0.0,"abs":2.0}, ...}}
/// A metric's band is max(abs, rel_pct/100 * |baseline|); a tolerance of 0
/// demands bitwise-identical values (the DES is deterministic, so that is a
/// meaningful setting).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "coop/obs/analysis/compare.hpp"
#include "support/json_check.hpp"
#include "support/metric_extract.hpp"

namespace cj = coophet_test::json;
namespace ca = coop::obs::analysis;

namespace {

bool load_json(const std::string& path, cj::Value& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "compare_reports: %s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const cj::ParseResult r = cj::parse(buf.str());
  if (!r.ok) {
    std::fprintf(stderr, "compare_reports: %s: offset %zu: %s\n", path.c_str(),
                 r.offset, r.error.c_str());
    return false;
  }
  out = r.value;
  return true;
}

ca::Tolerance parse_tolerance(const cj::Value& v) {
  ca::Tolerance t;
  if (const cj::Value* rel = v.find("rel_pct");
      rel != nullptr && rel->is_number())
    t.rel = rel->number / 100.0;
  if (const cj::Value* abs = v.find("abs"); abs != nullptr && abs->is_number())
    t.abs = abs->number;
  return t;
}

bool load_tolerances(const std::string& path,
                     std::map<std::string, ca::Tolerance>& per_metric,
                     ca::Tolerance& fallback) {
  cj::Value v;
  if (!load_json(path, v)) return false;
  const std::string err =
      cj::check_artifact_schema(v, "coophet.perf_tolerances");
  if (!err.empty()) {
    std::fprintf(stderr, "compare_reports: %s: %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  if (const cj::Value* def = v.find("default");
      def != nullptr && def->is_object())
    fallback = parse_tolerance(*def);
  if (const cj::Value* metrics = v.find("metrics");
      metrics != nullptr && metrics->is_object())
    for (const auto& [name, tol] : metrics->object)
      if (tol.is_object()) per_metric[name] = parse_tolerance(tol);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, tol_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerances" && i + 1 < argc) {
      tol_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: compare_reports baseline.json current.json "
          "[--tolerances tol.json]\n");
      return 0;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "compare_reports: unexpected argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: compare_reports baseline.json current.json "
                 "[--tolerances tol.json]\n");
    return 2;
  }

  cj::Value baseline, current;
  if (!load_json(baseline_path, baseline) || !load_json(current_path, current))
    return 2;
  for (const auto* p : {&baseline, &current}) {
    const std::string err = cj::check_artifact_schema(*p, "coophet.run_report");
    if (!err.empty()) {
      std::fprintf(stderr, "compare_reports: %s: %s\n",
                   (p == &baseline ? baseline_path : current_path).c_str(),
                   err.c_str());
      return 2;
    }
  }

  std::map<std::string, ca::Tolerance> per_metric;
  ca::Tolerance fallback;  // exact match unless a tolerance file says else
  if (!tol_path.empty() && !load_tolerances(tol_path, per_metric, fallback))
    return 2;

  const ca::CompareResult result = ca::compare_reports(
      cj::extract_report_metrics(baseline), cj::extract_report_metrics(current),
      per_metric, fallback);
  std::printf("compare_reports: %s vs %s\n", baseline_path.c_str(),
              current_path.c_str());
  std::ostringstream table;
  result.write_table(table);
  std::fputs(table.str().c_str(), stdout);
  return result.ok() ? 0 : 1;
}
