#include "coop/decomp/decomposition.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "coop/mesh/halo.hpp"

namespace coop::decomp {

using mesh::Axis;
using mesh::Box;

long Decomposition::total_zones() const noexcept {
  long z = 0;
  for (const auto& d : domains) z += d.box.zones();
  return z;
}

double Decomposition::cpu_zone_fraction() const noexcept {
  long cpu = 0, all = 0;
  for (const auto& d : domains) {
    all += d.box.zones();
    if (d.target == memory::ExecutionTarget::kCpuCore) cpu += d.box.zones();
  }
  return all == 0 ? 0.0 : static_cast<double>(cpu) / static_cast<double>(all);
}

void Decomposition::validate(bool allow_empty) const {
  long covered = 0;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const Box& a = domains[i].box;
    if (a.empty()) {
      if (!allow_empty) throw std::logic_error("decomposition: empty domain");
      continue;
    }
    if (a.intersect(global) != a)
      throw std::logic_error("decomposition: domain outside global box");
    covered += a.zones();
    for (std::size_t j = i + 1; j < domains.size(); ++j) {
      if (!a.intersect(domains[j].box).empty())
        throw std::logic_error("decomposition: overlapping domains");
    }
  }
  if (covered != global.zones())
    throw std::logic_error("decomposition: domains do not cover global box");
}

std::array<int, 3> choose_grid(const Box& global, int ranks) {
  if (ranks <= 0) throw std::invalid_argument("choose_grid: ranks <= 0");
  std::array<int, 3> best{1, 1, ranks};
  double best_surface = std::numeric_limits<double>::max();
  for (int px = 1; px <= ranks; ++px) {
    if (ranks % px != 0) continue;
    const int rest = ranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0) continue;
      const int pz = rest / py;
      if (px > global.nx() || py > global.ny() || pz > global.nz()) continue;
      // Total internal cut area = halo surface the whole node exchanges:
      // (p_d - 1) cut planes along axis d, each of the perpendicular area.
      const double nx = static_cast<double>(global.nx());
      const double ny = static_cast<double>(global.ny());
      const double nz = static_cast<double>(global.nz());
      const double surface = (px - 1) * ny * nz + (py - 1) * nx * nz +
                             (pz - 1) * nx * ny;
      if (surface < best_surface) {
        best_surface = surface;
        best = {px, py, pz};
      }
    }
  }
  if (best_surface == std::numeric_limits<double>::max())
    throw std::invalid_argument("choose_grid: box too small for rank count");
  return best;
}

Decomposition block_decomposition(const Box& global, int ranks) {
  const auto [px, py, pz] = choose_grid(global, ranks);
  Decomposition d;
  d.scheme = "block";
  d.global = global;
  const auto xs = split_even(global, Axis::kX, px);
  int rank = 0;
  for (const Box& xb : xs) {
    for (const Box& yb : split_even(xb, Axis::kY, py)) {
      for (const Box& zb : split_even(yb, Axis::kZ, pz)) {
        d.domains.push_back(
            RankDomain{rank++, zb, memory::ExecutionTarget::kCpuCore, -1});
      }
    }
  }
  return d;
}

Decomposition hierarchical_gpu(const Box& global, int gpu_count,
                               int ranks_per_gpu) {
  if (gpu_count <= 0 || ranks_per_gpu <= 0)
    throw std::invalid_argument("hierarchical_gpu: nonpositive counts");
  Decomposition d;
  d.scheme = "hierarchical";
  d.global = global;
  int rank = 0;
  // Stage 1: one y-slab per GPU; stage 2: subdivide each slab in y only,
  // keeping the x extent (innermost loop length) identical for all ranks.
  for (int g = 0; const Box& gpu_block : split_even(global, Axis::kY, gpu_count)) {
    for (const Box& sub : split_even(gpu_block, Axis::kY, ranks_per_gpu)) {
      d.domains.push_back(
          RankDomain{rank++, sub, memory::ExecutionTarget::kGpuDevice, g});
    }
    ++g;
  }
  return d;
}

Decomposition heterogeneous(const Box& global, int gpu_count, int cpu_ranks,
                            double cpu_fraction) {
  if (gpu_count <= 0) throw std::invalid_argument("heterogeneous: no GPUs");
  if (cpu_ranks <= 0 || cpu_ranks % gpu_count != 0)
    throw std::invalid_argument(
        "heterogeneous: cpu_ranks must be a positive multiple of gpu_count");
  if (cpu_fraction < 0.0 || cpu_fraction >= 1.0)
    throw std::invalid_argument("heterogeneous: cpu_fraction out of [0,1)");
  const int cpu_per_gpu = cpu_ranks / gpu_count;

  Decomposition d;
  d.scheme = "heterogeneous";
  d.global = global;
  int gpu_rank = 0;
  int cpu_rank = gpu_count;  // GPU ranks first, CPU ranks after
  for (int g = 0; const Box& gpu_block : split_even(global, Axis::kY, gpu_count)) {
    const long ny = gpu_block.ny();
    // Planes donated to the CPU ranks of this block: a multiple of the CPU
    // ranks per block so every CPU slab is identical (an uneven 2/1/1 split
    // would make the slowest CPU rank the bottleneck and destabilize the
    // feedback balancer), at least one plane per rank (the paper's
    // minimum-carve limit), at most all but one. Carve conservatively
    // (floor): giving the slow side one plane quantum too many costs far
    // more than one too few.
    long cpu_planes =
        static_cast<long>(std::floor(cpu_fraction * static_cast<double>(ny) /
                                     static_cast<double>(cpu_per_gpu))) *
        cpu_per_gpu;
    cpu_planes = std::clamp<long>(cpu_planes, cpu_per_gpu, ny - 1);
    auto [gpu_part, cpu_part] =
        gpu_block.split_at(Axis::kY, gpu_block.hi.y - cpu_planes);
    d.domains.push_back(RankDomain{gpu_rank++, gpu_part,
                                   memory::ExecutionTarget::kGpuDevice, g});
    for (const Box& slab : split_even(cpu_part, Axis::kY, cpu_per_gpu)) {
      d.domains.push_back(
          RankDomain{cpu_rank++, slab, memory::ExecutionTarget::kCpuCore, g});
    }
    ++g;
  }
  // Invariant relied on throughout the simulators: domains[i].rank == i
  // (GPU ranks 0..gpu_count-1 first, then the CPU ranks).
  std::sort(d.domains.begin(), d.domains.end(),
            [](const RankDomain& a, const RankDomain& b) {
              return a.rank < b.rank;
            });
  return d;
}

Decomposition cpu_only(const Box& global, int cores) {
  Decomposition d = block_decomposition(global, cores);
  d.scheme = "cpu-only";
  for (auto& dom : d.domains) {
    dom.target = memory::ExecutionTarget::kCpuCore;
    dom.gpu_id = -1;
  }
  return d;
}

Decomposition reweight_y_slabs(const Decomposition& base,
                               const std::vector<double>& weights) {
  if (static_cast<int>(weights.size()) != base.ranks())
    throw std::invalid_argument("reweight_y_slabs: one weight per rank");
  for (double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("reweight_y_slabs: negative weight");
  }

  Decomposition out = base;
  // Group ranks by node; each node's non-empty boxes form a y-slab stack.
  std::vector<int> nodes;
  for (const auto& dom : base.domains) nodes.push_back(dom.node_id);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  for (int node : nodes) {
    // Bounding slab of this node's live domains.
    Box slab{};
    bool have = false;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < base.domains.size(); ++i) {
      if (base.domains[i].node_id != node) continue;
      members.push_back(i);
      const Box& b = base.domains[i].box;
      if (b.empty()) continue;
      if (!have) {
        slab = b;
        have = true;
      } else {
        slab.lo = {std::min(slab.lo.x, b.lo.x), std::min(slab.lo.y, b.lo.y),
                   std::min(slab.lo.z, b.lo.z)};
        slab.hi = {std::max(slab.hi.x, b.hi.x), std::max(slab.hi.y, b.hi.y),
                   std::max(slab.hi.z, b.hi.z)};
      }
    }
    if (!have) continue;  // node owns no zones; nothing to carve

    // Carve only ranks with nonzero weight (min one plane each); retired
    // ranks get an explicit empty box at the slab base. Keep survivors in
    // base y-order so the new slabs stay spatially local to the old ones.
    std::vector<std::size_t> live;
    for (std::size_t i : members) {
      if (weights[base.domains[i].rank] > 0.0) live.push_back(i);
    }
    if (live.empty())
      throw std::invalid_argument(
          "reweight_y_slabs: node with zones but zero total weight");
    std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
      return base.domains[a].box.lo.y < base.domains[b].box.lo.y;
    });
    std::vector<double> live_w;
    live_w.reserve(live.size());
    for (std::size_t i : live) live_w.push_back(weights[base.domains[i].rank]);
    const auto pieces = split_weighted(slab, Axis::kY, live_w, 1);
    for (std::size_t k = 0; k < live.size(); ++k)
      out.domains[live[k]].box = pieces[k];
    for (std::size_t i : members) {
      if (weights[base.domains[i].rank] > 0.0) continue;
      Box empty_box = slab;
      empty_box.hi.y = empty_box.lo.y;  // zero y-extent -> empty()
      out.domains[i].box = empty_box;
    }
  }
  out.validate(/*allow_empty=*/true);
  return out;
}

std::vector<std::vector<int>> neighbor_lists(const Decomposition& d) {
  const int n = d.ranks();
  std::vector<std::vector<int>> nbrs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (d.domains[static_cast<std::size_t>(i)].box.face_adjacent(
              d.domains[static_cast<std::size_t>(j)].box)) {
        nbrs[static_cast<std::size_t>(i)].push_back(j);
        nbrs[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  return nbrs;
}

CommStats analyze_communication(const Decomposition& d, long ghosts) {
  const auto nbrs = neighbor_lists(d);
  CommStats s;
  long nbr_sum = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const auto& mine = d.domains[i].box;
    long recv_zones = 0;
    for (int j : nbrs[i]) {
      const Box r =
          mesh::recv_region(mine, d.domains[static_cast<std::size_t>(j)].box,
                            ghosts);
      recv_zones += r.zones();
      ++s.total_messages;
    }
    nbr_sum += static_cast<long>(nbrs[i].size());
    s.max_neighbors =
        std::max(s.max_neighbors, static_cast<int>(nbrs[i].size()));
    s.total_halo_zones += recv_zones;
    s.max_halo_zones = std::max(s.max_halo_zones, recv_zones);
  }
  s.avg_neighbors = d.ranks() == 0
                        ? 0.0
                        : static_cast<double>(nbr_sum) / d.ranks();
  return s;
}

}  // namespace coop::decomp
