/// Dump/filter CLI for `coophet.flight_log` artifacts (DESIGN.md section 13).
///
/// A crash dump is only as useful as the speed of answering "what happened
/// to THIS request": this tool parses a flight log (strict test-side JSON
/// parser + schema registry), filters its events, and prints one event per
/// line in causal (cid, seq) order.
///
///   flight_log FILE [--cid N] [--component NAME] [--min-severity LEVEL]
///                   [--window N] [--last N]
///
///   --cid N            keep only events of correlation id N
///   --component NAME   keep only one component (service, admission, cache,
///                      sweep, run, fault, telemetry)
///   --min-severity L   drop events below L (debug, info, warn, error)
///   --window N         keep only events whose kv carries window=N (the
///                      telemetry sampler stamps every window-close and
///                      burn-rate alert with its window index)
///   --last N           after the other filters, keep only the newest N
///                      events per correlation id
///
/// Exit status: 0 on a valid artifact (even when every event was filtered
/// out — emptiness is grep's job), 1 on a missing/invalid/mis-schema'd file
/// or bad flags. The header line always reports reason, focus cid, event
/// count, and drop count, so a truncated black box is visible at a glance.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/json_check.hpp"

namespace {

namespace json = coophet_test::json;

int severity_rank(const std::string& sev) {
  if (sev == "debug") return 0;
  if (sev == "info") return 1;
  if (sev == "warn") return 2;
  if (sev == "error") return 3;
  return -1;
}

struct Options {
  std::string path;
  long long cid = -1;          ///< -1 = any
  std::string component;       ///< empty = any
  int min_severity = 0;        ///< debug
  long long window = -1;       ///< -1 = any; matches kv window=N
  long long last = -1;         ///< -1 = all
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flight_log: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--cid") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.cid = std::atoll(v);
    } else if (arg == "--component") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.component = v;
    } else if (arg == "--min-severity") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.min_severity = severity_rank(v);
      if (opt.min_severity < 0) {
        std::fprintf(stderr,
                     "flight_log: unknown severity \"%s\" (debug, info, "
                     "warn, error)\n",
                     v);
        return false;
      }
    } else if (arg == "--window") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.window = std::atoll(v);
    } else if (arg == "--last") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.last = std::atoll(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "flight_log: unknown flag %s\n", arg.c_str());
      return false;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      std::fprintf(stderr, "flight_log: more than one input file\n");
      return false;
    }
  }
  if (opt.path.empty()) {
    std::fprintf(stderr,
                 "usage: flight_log FILE [--cid N] [--component NAME] "
                 "[--min-severity LEVEL] [--window N] [--last N]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 1;

  std::ifstream is(opt.path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "flight_log: cannot open %s\n", opt.path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const json::ParseResult parsed = json::parse(buf.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "flight_log: %s: %s\n", opt.path.c_str(),
                 parsed.error.c_str());
    return 1;
  }
  if (const std::string err =
          json::check_artifact_schema(parsed.value, "coophet.flight_log");
      !err.empty()) {
    std::fprintf(stderr, "flight_log: %s: %s\n", opt.path.c_str(),
                 err.c_str());
    return 1;
  }

  const json::Value* reason = parsed.value.find("reason");
  const json::Value* focus = parsed.value.find("focus_cid");
  const json::Value* dropped = parsed.value.find("dropped");
  const json::Value* events = parsed.value.find("events");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "flight_log: %s: missing events array\n",
                 opt.path.c_str());
    return 1;
  }
  std::printf("# %s  reason=%s  focus_cid=%.0f  events=%zu  dropped=%.0f\n",
              opt.path.c_str(),
              reason != nullptr && reason->is_string() ? reason->str.c_str()
                                                       : "?",
              focus != nullptr && focus->is_number() ? focus->number : -1.0,
              events->array.size(),
              dropped != nullptr && dropped->is_number() ? dropped->number
                                                         : -1.0);

  // Filter pass; events are already in (cid, seq) order in the artifact.
  std::vector<const json::Value*> kept;
  for (const json::Value& ev : events->array) {
    const json::Value* cid = ev.find("cid");
    const json::Value* sev = ev.find("sev");
    const json::Value* comp = ev.find("comp");
    if (cid == nullptr || !cid->is_number() || sev == nullptr ||
        !sev->is_string() || comp == nullptr || !comp->is_string())
      continue;
    if (opt.cid >= 0 &&
        static_cast<long long>(cid->number) != opt.cid)
      continue;
    if (!opt.component.empty() && comp->str != opt.component) continue;
    if (severity_rank(sev->str) < opt.min_severity) continue;
    if (opt.window >= 0) {
      const json::Value* kv = ev.find("kv");
      const json::Value* w =
          kv != nullptr && kv->is_object() ? kv->find("window") : nullptr;
      if (w == nullptr || !w->is_number() ||
          static_cast<long long>(w->number) != opt.window)
        continue;
    }
    kept.push_back(&ev);
  }
  if (opt.last >= 0) {
    // Newest N per correlation id (the artifact orders each cid by seq).
    std::map<long long, long long> per_cid;
    for (const json::Value* ev : kept)
      ++per_cid[static_cast<long long>(ev->find("cid")->number)];
    std::vector<const json::Value*> tail;
    std::map<long long, long long> seen;
    for (const json::Value* ev : kept) {
      const auto cid = static_cast<long long>(ev->find("cid")->number);
      if (per_cid[cid] - seen[cid] <= opt.last) tail.push_back(ev);
      ++seen[cid];
    }
    kept.swap(tail);
  }

  for (const json::Value* ev : kept) {
    const json::Value* seq = ev->find("seq");
    const json::Value* t = ev->find("t");
    const json::Value* name = ev->find("name");
    const json::Value* kv = ev->find("kv");
    std::printf("cid=%lld seq=%lld t=%.9g [%s/%s] %s",
                static_cast<long long>(ev->find("cid")->number),
                seq != nullptr && seq->is_number()
                    ? static_cast<long long>(seq->number)
                    : -1LL,
                t != nullptr && t->is_number() ? t->number : -1.0,
                ev->find("sev")->str.c_str(), ev->find("comp")->str.c_str(),
                name != nullptr && name->is_string() ? name->str.c_str()
                                                     : "?");
    if (kv != nullptr && kv->is_object())
      for (const auto& [key, value] : kv->object)
        if (value.is_number()) std::printf(" %s=%.9g", key.c_str(),
                                           value.number);
    std::printf("\n");
  }
  std::printf("# matched %zu event(s)\n", kept.size());
  return 0;
}
