/// Figure 10 of the paper: the hierarchical domain decomposition.
///
/// Compares, at the same rank counts, the naive "square" decomposition
/// against the paper's hierarchical scheme (split across GPUs first, then
/// subdivide each GPU block in a single dimension, keeping the innermost x
/// extent identical for every rank). The hierarchical scheme keeps the halo
/// neighbor count minimal — the paper experimentally verified it minimizes
/// the communication overhead of using extra ranks; this bench regenerates
/// that comparison. Also prints the heterogeneous carve (Fig. 10c).

#include <cstdio>

#include "coop/decomp/decomposition.hpp"

namespace {

void report(const char* name, const coop::decomp::Decomposition& d) {
  d.validate();
  const auto s = coop::decomp::analyze_communication(d, 1);
  long min_nx = 1 << 30, max_nx = 0;
  for (const auto& dom : d.domains) {
    min_nx = std::min(min_nx, dom.box.nx());
    max_nx = std::max(max_nx, dom.box.nx());
  }
  std::printf("%-28s %5d | %8d %9.2f | %12ld | x-extent %ld..%ld\n", name,
              d.ranks(), s.max_neighbors, s.avg_neighbors, s.total_halo_zones,
              min_nx, max_nx);
}

}  // namespace

int main() {
  using namespace coop;
  const mesh::Box global{{0, 0, 0}, {320, 480, 320}};
  std::printf("=== Figure 10: hierarchical vs 'square' decomposition "
              "(320x480x320, g=1) ===\n");
  std::printf("%-28s %5s | %8s %9s | %12s |\n", "scheme", "ranks", "max-nbrs",
              "avg-nbrs", "halo zones");
  report("square 4", decomp::block_decomposition(global, 4));
  report("hierarchical 4 (Fig10a)", decomp::hierarchical_gpu(global, 4, 1));
  report("square 16", decomp::block_decomposition(global, 16));
  report("hierarchical 16 (Fig10b)", decomp::hierarchical_gpu(global, 4, 4));
  report("heterogeneous 4+12 (Fig10c)",
         decomp::heterogeneous(global, 4, 12, 0.025));
  std::printf(
      "\nPaper: the single-dimension subdivision keeps every rank at <= 2\n"
      "face neighbors and preserves the full x extent for every rank,\n"
      "unlike the 'square' 16-rank decomposition.\n");
  return 0;
}
