#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>

#include "coop/des/engine.hpp"

/// \file resource.hpp
/// Counting resource (semaphore) with FIFO admission and utilization stats.
///
/// Models contended hardware: GPU execution contexts, PCIe links, NIC ports,
/// host memory-bandwidth tokens. A process acquires `n` units with
/// `co_await res.acquire(n)`, receiving a move-only `Lease` that releases on
/// destruction (RAII) or via `Lease::release()`.

namespace coop::des {

class Resource;

/// RAII ownership of acquired resource units.
class Lease {
 public:
  Lease() noexcept = default;
  Lease(Resource* res, std::size_t units) noexcept : res_(res), units_(units) {}
  Lease(Lease&& o) noexcept
      : res_(std::exchange(o.res_, nullptr)), units_(std::exchange(o.units_, 0)) {}
  Lease& operator=(Lease&& o) noexcept {
    if (this != &o) {
      release();
      res_ = std::exchange(o.res_, nullptr);
      units_ = std::exchange(o.units_, 0);
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { release(); }

  void release() noexcept;
  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] bool active() const noexcept { return res_ != nullptr; }

 private:
  Resource* res_ = nullptr;
  std::size_t units_ = 0;
};

class Resource {
 public:
  Resource(Engine& engine, std::size_t capacity, std::string name = "resource")
      : engine_(&engine), capacity_(capacity), available_(capacity),
        name_(std::move(name)) {
    if (capacity == 0) throw std::invalid_argument("Resource: zero capacity");
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t available() const noexcept { return available_; }
  [[nodiscard]] std::size_t in_use() const noexcept {
    return capacity_ - available_;
  }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Time-integral of units-in-use, for utilization reporting:
  /// utilization = busy_integral / (capacity * elapsed).
  [[nodiscard]] double busy_integral() const noexcept {
    return busy_integral_ + static_cast<double>(in_use()) * (engine_->now() - last_change_);
  }

  /// Awaitable FIFO acquisition of `n` units (n <= capacity).
  [[nodiscard]] auto acquire(std::size_t n = 1) {
    if (n == 0 || n > capacity_)
      throw std::invalid_argument("Resource::acquire: bad unit count for " + name_);
    struct Awaiter {
      Resource* res;
      std::size_t n;
      bool await_ready() {
        if (res->waiters_.empty() && res->available_ >= n) {
          res->take(n);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->waiters_.push_back(Waiter{h, n});
      }
      Lease await_resume() noexcept { return Lease{res, n}; }
    };
    return Awaiter{this, n};
  }

 private:
  friend class Lease;

  struct Waiter {
    std::coroutine_handle<> handle;
    std::size_t units;
  };

  void account() noexcept {
    busy_integral_ += static_cast<double>(in_use()) * (engine_->now() - last_change_);
    last_change_ = engine_->now();
  }

  void take(std::size_t n) noexcept {
    account();
    available_ -= n;
  }

  void give_back(std::size_t n) {
    account();
    available_ += n;
    // FIFO admission: wake waiters strictly in order; a large request at the
    // head blocks smaller ones behind it (no starvation).
    while (!waiters_.empty() && waiters_.front().units <= available_) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.units;
      engine_->schedule_now(w.handle);
    }
  }

  Engine* engine_;
  std::size_t capacity_;
  std::size_t available_;
  std::string name_;
  std::deque<Waiter> waiters_;
  double busy_integral_ = 0;
  SimTime last_change_ = 0;
};

inline void Lease::release() noexcept {
  if (res_ != nullptr) {
    Resource* r = std::exchange(res_, nullptr);
    r->give_back(std::exchange(units_, 0));
  }
}

}  // namespace coop::des
