/// Render CLI for `coophet.telemetry` artifacts (DESIGN.md section 14).
///
/// The artifact is arrays-of-arrays tuned for machines; this tool turns it
/// back into the operator's view: one table per series (window range +
/// delta/rate, gauge value, or histogram count/p50/p95/p99 per row), one
/// table per SLO (bad/total + per-window burn), and a greppable alert
/// timeline — the first place to look when a burn-rate rule fired.
///
///   telemetry_report FILE [--series NAME] [--slo NAME] [--alerts-only]
///
///   --series NAME   keep only series whose metric name is NAME
///   --slo NAME      keep only the SLO named NAME
///   --alerts-only   skip the series/SLO tables, print just the timeline
///
/// Alert lines are stable and grep-friendly:
///   alert window=3 slo=availability rule=fast fired=1 burn=100 thr=2.5
///
/// Exit status: 0 on a valid artifact (even with zero windows or alerts),
/// 1 on a missing/invalid/mis-schema'd file or bad flags.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json_check.hpp"

namespace {

namespace json = coophet_test::json;

struct Options {
  std::string path;
  std::string series;  ///< empty = all
  std::string slo;     ///< empty = all
  bool alerts_only = false;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "telemetry_report: %s needs a value\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--series") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.series = v;
    } else if (arg == "--slo") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.slo = v;
    } else if (arg == "--alerts-only") {
      opt.alerts_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "telemetry_report: unknown flag %s\n",
                   arg.c_str());
      return false;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      std::fprintf(stderr, "telemetry_report: more than one input file\n");
      return false;
    }
  }
  if (opt.path.empty()) {
    std::fprintf(stderr,
                 "usage: telemetry_report FILE [--series NAME] [--slo NAME] "
                 "[--alerts-only]\n");
    return false;
  }
  return true;
}

double num_at(const json::Value* arr, std::size_t i) {
  if (arr == nullptr || !arr->is_array() || i >= arr->array.size())
    return 0.0;
  const json::Value& v = arr->array[i];
  return v.is_number() ? v.number : 0.0;
}

std::string labels_suffix(const json::Value* labels) {
  if (labels == nullptr || !labels->is_object() || labels->object.empty())
    return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels->object.size(); ++i) {
    if (i > 0) out += ',';
    out += labels->object[i].first + "=";
    out += labels->object[i].second.is_string()
               ? labels->object[i].second.str
               : "?";
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 1;

  std::ifstream is(opt.path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "telemetry_report: cannot open %s\n",
                 opt.path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const json::ParseResult parsed = json::parse(buf.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "telemetry_report: %s: %s\n", opt.path.c_str(),
                 parsed.error.c_str());
    return 1;
  }
  if (const std::string err =
          json::check_artifact_schema(parsed.value, "coophet.telemetry");
      !err.empty()) {
    std::fprintf(stderr, "telemetry_report: %s: %s\n", opt.path.c_str(),
                 err.c_str());
    return 1;
  }

  const json::Value& root = parsed.value;
  const json::Value* axis = root.find("axis");
  const json::Value* width = root.find("window_width");
  const json::Value* closed = root.find("windows_closed");
  const json::Value* dropped = root.find("windows_dropped");
  const json::Value* windows = root.find("windows");
  const json::Value* series = root.find("series");
  const json::Value* slos = root.find("slos");
  const json::Value* alerts = root.find("alerts");
  if (windows == nullptr || !windows->is_array() || series == nullptr ||
      !series->is_array() || slos == nullptr || !slos->is_array() ||
      alerts == nullptr || !alerts->is_array()) {
    std::fprintf(stderr, "telemetry_report: %s: missing artifact arrays\n",
                 opt.path.c_str());
    return 1;
  }
  const std::size_t nw = windows->array.size();
  std::printf(
      "# %s  axis=%s  window_width=%g  windows=%zu (closed=%.0f "
      "dropped=%.0f)  series=%zu  alerts=%zu\n",
      opt.path.c_str(),
      axis != nullptr && axis->is_string() ? axis->str.c_str() : "?",
      width != nullptr && width->is_number() ? width->number : 0.0, nw,
      closed != nullptr && closed->is_number() ? closed->number : -1.0,
      dropped != nullptr && dropped->is_number() ? dropped->number : -1.0,
      series->array.size(), alerts->array.size());

  const auto window_range = [&](std::size_t i, double* start, double* end,
                                double* index) {
    const json::Value& w = windows->array[i];
    const json::Value* s = w.find("start");
    const json::Value* e = w.find("end");
    const json::Value* ix = w.find("index");
    *start = s != nullptr && s->is_number() ? s->number : 0.0;
    *end = e != nullptr && e->is_number() ? e->number : 0.0;
    *index = ix != nullptr && ix->is_number() ? ix->number : 0.0;
  };

  if (!opt.alerts_only) {
    for (const json::Value& s : series->array) {
      const json::Value* name = s.find("name");
      const json::Value* kind = s.find("kind");
      if (name == nullptr || !name->is_string() || kind == nullptr ||
          !kind->is_string())
        continue;
      if (!opt.series.empty() && name->str != opt.series) continue;
      std::printf("\n== series %s%s (%s)\n", name->str.c_str(),
                  labels_suffix(s.find("labels")).c_str(),
                  kind->str.c_str());
      if (kind->str == "histogram") {
        std::printf("%6s %12s %12s %8s %10s %10s %10s %10s\n", "win",
                    "start", "end", "count", "sum", "p50", "p95", "p99");
        const json::Value* counts = s.find("counts");
        const json::Value* sums = s.find("sums");
        const json::Value* p50 = s.find("p50");
        const json::Value* p95 = s.find("p95");
        const json::Value* p99 = s.find("p99");
        for (std::size_t i = 0; i < nw; ++i) {
          double st = 0.0, en = 0.0, ix = 0.0;
          window_range(i, &st, &en, &ix);
          std::printf("%6.0f %12g %12g %8.0f %10g %10g %10g %10g\n", ix, st,
                      en, num_at(counts, i), num_at(sums, i), num_at(p50, i),
                      num_at(p95, i), num_at(p99, i));
        }
      } else if (kind->str == "counter") {
        std::printf("%6s %12s %12s %12s %12s\n", "win", "start", "end",
                    "delta", "rate");
        const json::Value* deltas = s.find("deltas");
        const json::Value* rates = s.find("rates");
        for (std::size_t i = 0; i < nw; ++i) {
          double st = 0.0, en = 0.0, ix = 0.0;
          window_range(i, &st, &en, &ix);
          std::printf("%6.0f %12g %12g %12g %12g\n", ix, st, en,
                      num_at(deltas, i), num_at(rates, i));
        }
      } else {
        std::printf("%6s %12s %12s %12s\n", "win", "start", "end", "value");
        const json::Value* values = s.find("values");
        for (std::size_t i = 0; i < nw; ++i) {
          double st = 0.0, en = 0.0, ix = 0.0;
          window_range(i, &st, &en, &ix);
          std::printf("%6.0f %12g %12g %12g\n", ix, st, en,
                      num_at(values, i));
        }
      }
    }

    for (const json::Value& s : slos->array) {
      const json::Value* name = s.find("name");
      const json::Value* kind = s.find("kind");
      const json::Value* objective = s.find("objective");
      if (name == nullptr || !name->is_string()) continue;
      if (!opt.slo.empty() && name->str != opt.slo) continue;
      std::printf("\n== slo %s (%s, objective=%g)\n", name->str.c_str(),
                  kind != nullptr && kind->is_string() ? kind->str.c_str()
                                                       : "?",
                  objective != nullptr && objective->is_number()
                      ? objective->number
                      : 0.0);
      const json::Value* rules = s.find("rules");
      if (rules != nullptr && rules->is_array())
        for (const json::Value& r : rules->array) {
          const json::Value* label = r.find("label");
          const auto field = [&r](const char* key) {
            const json::Value* v = r.find(key);
            return v != nullptr && v->is_number() ? v->number : 0.0;
          };
          std::printf(
              "   rule %-6s budget=%g%% long=%.0f short=%.0f thr=%g\n",
              label != nullptr && label->is_string() ? label->str.c_str()
                                                     : "?",
              field("budget_fraction") * 100.0, field("long_windows"),
              field("short_windows"), field("threshold"));
        }
      std::printf("%6s %12s %12s %10s %10s %12s\n", "win", "start", "end",
                  "bad", "total", "burn");
      const json::Value* bad = s.find("bad");
      const json::Value* total = s.find("total");
      const json::Value* burn = s.find("burn");
      for (std::size_t i = 0; i < nw; ++i) {
        double st = 0.0, en = 0.0, ix = 0.0;
        window_range(i, &st, &en, &ix);
        std::printf("%6.0f %12g %12g %10g %10g %12g\n", ix, st, en,
                    num_at(bad, i), num_at(total, i), num_at(burn, i));
      }
    }
  }

  std::printf("\n== alert timeline\n");
  std::size_t shown = 0;
  for (const json::Value& a : alerts->array) {
    const json::Value* slo = a.find("slo");
    if (slo == nullptr || !slo->is_string()) continue;
    if (!opt.slo.empty() && slo->str != opt.slo) continue;
    const json::Value* window = a.find("window");
    const json::Value* rule = a.find("rule");
    const json::Value* fired = a.find("fired");
    const json::Value* burn_long = a.find("burn_long");
    const json::Value* thr = a.find("threshold");
    std::printf("alert window=%.0f slo=%s rule=%s fired=%d burn=%g thr=%g\n",
                window != nullptr && window->is_number() ? window->number
                                                         : -1.0,
                slo->str.c_str(),
                rule != nullptr && rule->is_string() ? rule->str.c_str()
                                                     : "?",
                fired != nullptr && fired->is_bool() && fired->boolean ? 1
                                                                       : 0,
                burn_long != nullptr && burn_long->is_number()
                    ? burn_long->number
                    : 0.0,
                thr != nullptr && thr->is_number() ? thr->number : 0.0);
    ++shown;
  }
  std::printf("# %zu alert transition(s)\n", shown);
  return 0;
}
