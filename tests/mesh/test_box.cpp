#include <gtest/gtest.h>

#include <numeric>

#include "coop/mesh/box.hpp"

namespace mesh = coop::mesh;
using mesh::Axis;
using mesh::Box;

namespace {

TEST(Box, ExtentsAndZones) {
  const Box b{{1, 2, 3}, {5, 7, 11}};
  EXPECT_EQ(b.nx(), 4);
  EXPECT_EQ(b.ny(), 5);
  EXPECT_EQ(b.nz(), 8);
  EXPECT_EQ(b.zones(), 160);
  EXPECT_EQ(b.extent(Axis::kY), 5);
  EXPECT_FALSE(b.empty());
}

TEST(Box, EmptyWhenDegenerate) {
  EXPECT_TRUE((Box{{0, 0, 0}, {0, 5, 5}}).empty());
  EXPECT_TRUE((Box{{2, 0, 0}, {1, 5, 5}}).empty());
  EXPECT_EQ((Box{{2, 0, 0}, {1, 5, 5}}).zones(), 0);
}

TEST(Box, Contains) {
  const Box b{{0, 0, 0}, {4, 4, 4}};
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({3, 3, 3}));
  EXPECT_FALSE(b.contains({4, 0, 0}));  // hi is exclusive
  EXPECT_FALSE(b.contains({-1, 0, 0}));
}

TEST(Box, Intersection) {
  const Box a{{0, 0, 0}, {4, 4, 4}};
  const Box b{{2, 2, 2}, {6, 6, 6}};
  const Box i = a.intersect(b);
  EXPECT_EQ(i, (Box{{2, 2, 2}, {4, 4, 4}}));
  EXPECT_TRUE(a.intersect(Box{{4, 0, 0}, {8, 4, 4}}).empty());  // touching
  EXPECT_EQ(a.intersect(a), a);
}

TEST(Box, FaceAdjacency) {
  const Box a{{0, 0, 0}, {4, 4, 4}};
  EXPECT_TRUE(a.face_adjacent(Box{{4, 0, 0}, {8, 4, 4}}));   // +x face
  EXPECT_TRUE(a.face_adjacent(Box{{0, 4, 0}, {4, 8, 4}}));   // +y face
  EXPECT_TRUE(a.face_adjacent(Box{{4, 1, 1}, {8, 3, 3}}));   // partial face
  EXPECT_FALSE(a.face_adjacent(Box{{4, 4, 0}, {8, 8, 4}}));  // edge only
  EXPECT_FALSE(a.face_adjacent(Box{{4, 4, 4}, {8, 8, 8}}));  // corner only
  EXPECT_FALSE(a.face_adjacent(Box{{5, 0, 0}, {8, 4, 4}}));  // gap
  EXPECT_FALSE(a.face_adjacent(Box{{1, 1, 1}, {3, 3, 3}}));  // contained
  EXPECT_FALSE(a.face_adjacent(a));                          // self-overlap
}

TEST(Box, SplitAt) {
  const Box b{{0, 0, 0}, {10, 10, 10}};
  const auto [lo, hi] = b.split_at(Axis::kY, 4);
  EXPECT_EQ(lo, (Box{{0, 0, 0}, {10, 4, 10}}));
  EXPECT_EQ(hi, (Box{{0, 4, 0}, {10, 10, 10}}));
  EXPECT_EQ(lo.zones() + hi.zones(), b.zones());
  EXPECT_THROW((void)b.split_at(Axis::kY, 0), std::invalid_argument);
  EXPECT_THROW((void)b.split_at(Axis::kY, 10), std::invalid_argument);
}

TEST(Box, Grown) {
  const Box b{{2, 2, 2}, {4, 4, 4}};
  EXPECT_EQ(b.grown(1), (Box{{1, 1, 1}, {5, 5, 5}}));
  EXPECT_EQ(b.grown(0), b);
}

TEST(SplitEven, ExactDivision) {
  const Box b{{0, 0, 0}, {12, 8, 8}};
  const auto parts = split_even(b, Axis::kX, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) EXPECT_EQ(p.nx(), 3);
}

TEST(SplitEven, RemainderSpreadOverLeadingPieces) {
  const Box b{{0, 0, 0}, {8, 10, 8}};
  const auto parts = split_even(b, Axis::kY, 3);  // 4, 3, 3
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].ny(), 4);
  EXPECT_EQ(parts[1].ny(), 3);
  EXPECT_EQ(parts[2].ny(), 3);
  long total = 0;
  for (const auto& p : parts) total += p.zones();
  EXPECT_EQ(total, b.zones());
}

TEST(SplitEven, PiecesAreContiguousAndOrdered) {
  const Box b{{0, 5, 0}, {8, 27, 8}};
  const auto parts = split_even(b, Axis::kY, 5);
  long cursor = 5;
  for (const auto& p : parts) {
    EXPECT_EQ(p.lo.y, cursor);
    cursor = p.hi.y;
  }
  EXPECT_EQ(cursor, 27);
}

TEST(SplitEven, Errors) {
  const Box b{{0, 0, 0}, {4, 4, 4}};
  EXPECT_THROW((void)split_even(b, Axis::kX, 0), std::invalid_argument);
  EXPECT_THROW((void)split_even(b, Axis::kX, 5), std::invalid_argument);
}

TEST(SplitWeighted, ProportionalPieces) {
  const Box b{{0, 0, 0}, {4, 100, 4}};
  const auto parts = split_weighted(b, Axis::kY, {1.0, 3.0}, 1);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].ny(), 25);
  EXPECT_EQ(parts[1].ny(), 75);
}

TEST(SplitWeighted, MinimumExtentEnforced) {
  const Box b{{0, 0, 0}, {4, 10, 4}};
  // Tiny weight still gets one plane.
  const auto parts = split_weighted(b, Axis::kY, {1e-9, 1.0}, 1);
  EXPECT_GE(parts[0].ny(), 1);
  EXPECT_EQ(parts[0].ny() + parts[1].ny(), 10);
}

TEST(SplitWeighted, CoversExactly) {
  const Box b{{0, 3, 0}, {4, 40, 4}};
  const auto parts = split_weighted(b, Axis::kY, {0.2, 0.5, 0.1, 0.7}, 2);
  long total = 0;
  long cursor = 3;
  for (const auto& p : parts) {
    EXPECT_EQ(p.lo.y, cursor);
    EXPECT_GE(p.ny(), 2);
    cursor = p.hi.y;
    total += p.zones();
  }
  EXPECT_EQ(total, b.zones());
}

TEST(SplitWeighted, Errors) {
  const Box b{{0, 0, 0}, {4, 4, 4}};
  EXPECT_THROW((void)split_weighted(b, Axis::kY, {}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)split_weighted(b, Axis::kY, {0.0, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)split_weighted(b, Axis::kY, {1, 1, 1, 1, 1}, 1),
               std::invalid_argument);  // 5 pieces, 4 planes
}

}  // namespace
