#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "coop/memory/memory_manager.hpp"
#include "coop/mesh/array3d.hpp"
#include "coop/mesh/box.hpp"

/// \file state.hpp
/// Conserved-variable state for the compressible Euler equations on one
/// rank's subdomain, plus primitive scratch fields.
///
/// Placement follows the paper's Fig. 8: conserved fields are *mesh data*
/// (unified memory on GPU-driving ranks), primitive scratch is *temporary*
/// (device pool on GPU-driving ranks, reallocated per step in ARES; we keep
/// them alive but route them through the same pool).

namespace coop::hydro {

/// Number of core conserved fields: rho, mom_x/y/z, total energy.
inline constexpr int kNumConserved = 5;

struct HydroState {
  mesh::Box owned{};
  long ghosts = 1;

  // Conserved (mesh data): density, momentum density, total energy density.
  mesh::Array3D<double> rho, mx, my, mz, ener;
  // Primitive scratch (temporary data): pressure and sound speed.
  mesh::Array3D<double> prs, snd;
  // Optional packages: conserved scalar density rho*phi (mixing package).
  mesh::Array3D<double> scal;  ///< valid() only when the package is enabled

  HydroState(memory::MemoryManager& mm, const mesh::Box& owned_box,
             long ghost_width = 1, bool with_scalar = false)
      : owned(owned_box), ghosts(ghost_width),
        rho(mm, memory::AllocationContext::kMeshData, owned_box, ghost_width),
        mx(mm, memory::AllocationContext::kMeshData, owned_box, ghost_width),
        my(mm, memory::AllocationContext::kMeshData, owned_box, ghost_width),
        mz(mm, memory::AllocationContext::kMeshData, owned_box, ghost_width),
        ener(mm, memory::AllocationContext::kMeshData, owned_box, ghost_width),
        prs(mm, memory::AllocationContext::kTemporary, owned_box, ghost_width),
        snd(mm, memory::AllocationContext::kTemporary, owned_box,
            ghost_width) {
    if (with_scalar) {
      scal = mesh::Array3D<double>(mm, memory::AllocationContext::kMeshData,
                                   owned_box, ghost_width);
    }
  }

  /// The core conserved fields in exchange order (halo packing).
  [[nodiscard]] std::array<mesh::Array3D<double>*, kNumConserved> conserved() {
    return {&rho, &mx, &my, &mz, &ener};
  }

  /// Every field that must participate in halo exchange (core conserved
  /// plus enabled package fields), in a stable order usable as message tags.
  [[nodiscard]] std::vector<mesh::Array3D<double>*> exchanged_fields() {
    std::vector<mesh::Array3D<double>*> f = {&rho, &mx, &my, &mz, &ener};
    if (scal.valid()) f.push_back(&scal);
    return f;
  }
};

}  // namespace coop::hydro
