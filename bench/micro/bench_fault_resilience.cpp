/// Resilience sweep: how much makespan the recovery policies give back under
/// increasing fault pressure, and what checkpoint cadence buys when a GPU
/// dies late in the run.
///
/// Part 1 sweeps the transient-launch / slowdown / halo-drop rates of a
/// seeded random plan and reports makespan degradation over the clean run,
/// with the resilience counters that explain where the time went.
/// Part 2 fixes one GPU death at 70% of the run and sweeps the checkpoint
/// interval: frequent checkpoints pay steady write overhead but bound the
/// replayed work; none means replaying only the aborted step from memory.

#include <cstdio>

#include "coop/core/timed_sim.hpp"
#include "coop/fault/fault_plan.hpp"

int main() {
  using namespace coop;
  const mesh::Box global{{0, 0, 0}, {320, 96, 160}};
  constexpr int kSteps = 40;
  constexpr std::uint64_t kSeed = 2024;

  core::TimedConfig base;
  base.mode = core::NodeMode::kOneRankPerGpu;
  base.global = global;
  base.timesteps = kSteps;
  const auto clean = core::run_timed(base);
  std::printf("=== Fault resilience at 320x96x160, %d steps ===\n", kSteps);
  std::printf("clean makespan: %.3f s\n\n", clean.makespan);

  std::printf("--- makespan vs fault rate (seed %llu) ---\n",
              static_cast<unsigned long long>(kSeed));
  std::printf("%9s | %9s | %7s | %7s | %7s | %7s | %9s\n", "rate (/s)",
              "makespan", "degrade", "inject", "retry", "retrans", "rework s");
  for (double rate : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    fault::PlanConfig pc;
    pc.horizon_s = 2.0 * clean.makespan;
    pc.ranks = clean.ranks;
    pc.transient_rate = rate;
    pc.slowdown_rate = 0.25 * rate;
    pc.halo_drop_rate = rate;
    const auto plan = fault::make_random_plan(kSeed, pc);
    auto tc = base;
    tc.faults = &plan;
    const auto r = core::run_timed(tc);
    std::printf("%9.2f | %7.3f s | %6.1f%% | %7d | %7d | %7d | %9.4f\n", rate,
                r.makespan, 100.0 * (r.makespan - clean.makespan) / clean.makespan,
                r.resilience.faults_injected, r.resilience.launch_retries,
                r.resilience.halo_retransmits, r.resilience.rework_time);
  }

  std::printf("\n--- checkpoint interval vs GPU death at 70%% of the run ---\n");
  std::printf("%8s | %9s | %7s | %6s | %6s | %9s | %9s\n", "interval",
              "makespan", "degrade", "ckpts", "replay", "ckpt s", "rework s");
  const double death_time = 0.7 * clean.makespan;
  for (int interval : {0, 2, 4, 8, 16}) {
    fault::FaultPlan plan;
    plan.add({.time = death_time, .kind = fault::FaultKind::kGpuDeath,
              .node = 0, .gpu = 1});
    auto tc = base;
    tc.faults = &plan;
    tc.recovery.checkpoint_interval = interval;
    const auto r = core::run_timed(tc);
    std::printf("%8d | %7.3f s | %6.1f%% | %6d | %6d | %9.4f | %9.4f\n",
                interval, r.makespan,
                100.0 * (r.makespan - clean.makespan) / clean.makespan,
                r.resilience.checkpoints_taken,
                r.resilience.replayed_iterations,
                r.resilience.checkpoint_time, r.resilience.rework_time);
  }
  std::printf(
      "\nInterval 0 replays only the aborted step (in-memory redundancy);\n"
      "small intervals trade steady write overhead for a bounded replay\n"
      "window once the death lands far from the last checkpoint.\n");
  return 0;
}
