#pragma once

#include <cassert>
#include <cstddef>
#include <utility>

#include "coop/memory/memory_manager.hpp"
#include "coop/mesh/box.hpp"

/// \file array3d.hpp
/// Ghost-aware 3D field storage over the heterogeneous memory manager.
///
/// An `Array3D<T>` covers an owned `Box` plus `g` ghost layers on every side,
/// stored x-fastest (x is the innermost/unit-stride dimension, as in ARES).
/// Indexing uses *global* zone indices, so kernels written against the global
/// index space work unchanged on any rank's subdomain.
///
/// Storage is either *owned* (allocated from the `MemoryManager`) or a
/// *view* over external storage — a plane of a pooled `mesh::FieldBlock`.
/// Views carry full Array3D indexing but no ownership; the block outlives
/// them. Both modes index through the same raw pointer, so `operator()`
/// costs the same either way.

namespace coop::mesh {

template <typename T>
class Array3D {
 public:
  Array3D() = default;

  /// Allocates storage for `owned.grown(ghosts)` from `mm` in `ctx`.
  Array3D(memory::MemoryManager& mm, memory::AllocationContext ctx,
          const Box& owned, long ghosts)
      : owned_(owned), padded_(owned.grown(ghosts)), ghosts_(ghosts),
        buf_(mm.make_buffer<T>(ctx, static_cast<std::size_t>(padded_.zones()))),
        data_(buf_.data()), size_(buf_.size()) {
    assert(!owned.empty());
  }

  /// Non-owning view over `external`, which must hold
  /// `owned.grown(ghosts).zones()` elements that outlive the view.
  Array3D(T* external, const Box& owned, long ghosts) noexcept
      : owned_(owned), padded_(owned.grown(ghosts)), ghosts_(ghosts),
        data_(external), size_(static_cast<std::size_t>(padded_.zones())) {}

  Array3D(Array3D&& o) noexcept
      : owned_(o.owned_), padded_(o.padded_), ghosts_(o.ghosts_),
        buf_(std::move(o.buf_)), data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}
  Array3D& operator=(Array3D&& o) noexcept {
    if (this != &o) {
      owned_ = o.owned_;
      padded_ = o.padded_;
      ghosts_ = o.ghosts_;
      buf_ = std::move(o.buf_);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  Array3D(const Array3D&) = delete;
  Array3D& operator=(const Array3D&) = delete;
  ~Array3D() = default;

  [[nodiscard]] const Box& owned() const noexcept { return owned_; }
  [[nodiscard]] const Box& padded() const noexcept { return padded_; }
  [[nodiscard]] long ghosts() const noexcept { return ghosts_; }
  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Element at global index (i, j, k); must lie in the padded box.
  [[nodiscard]] T& operator()(long i, long j, long k) noexcept {
    return data_[index(i, j, k)];
  }
  [[nodiscard]] const T& operator()(long i, long j, long k) const noexcept {
    return data_[index(i, j, k)];
  }

  /// Linear offset of global (i, j, k) in the padded storage.
  [[nodiscard]] std::size_t index(long i, long j, long k) const noexcept {
    assert(padded_.contains({i, j, k}));
    const long li = i - padded_.lo.x;
    const long lj = j - padded_.lo.y;
    const long lk = k - padded_.lo.z;
    return static_cast<std::size_t>((lk * padded_.ny() + lj) * padded_.nx() +
                                    li);
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  void fill(const T& v) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
  }

 private:
  Box owned_{};
  Box padded_{};
  long ghosts_ = 0;
  memory::Buffer<T> buf_{};  ///< empty for views
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace coop::mesh
