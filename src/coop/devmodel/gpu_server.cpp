#include "coop/devmodel/gpu_server.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace coop::devmodel {

namespace {
/// Completion tolerance relative to total work (avoids infinite wakeups on
/// floating-point residue).
constexpr double kDoneEps = 1e-12;
}  // namespace

double GpuServer::job_rate(const Job& j, double occ_sum) const {
  const double pool = std::min(1.0, occ_sum);
  double r = pool * (j.occupancy / occ_sum) * j.coalescing;
  if (mps_mode_) r *= (1.0 - spec_.mps_throughput_tax);
  return r;
}

des::Task<void> GpuServer::execute(KernelWork work, double zones, double nx,
                                   bool mps, double* drain_wait_s) {
  if (drain_wait_s != nullptr) *drain_wait_s = 0.0;
  if (zones <= 0) co_return;
  if (!active_.empty() || !queued_.empty()) {
    if (mps != mps_mode_)
      throw std::logic_error(
          "GpuServer: mixing MPS and exclusive kernels on one device");
  }
  mps_mode_ = mps;

  des::Channel<double> done(engine_);
  Job job;
  job.id = next_id_++;
  job.remaining_work = roofline_seconds(spec_, work, zones);
  job.occupancy = occupancy_efficiency(spec_, zones);
  job.coalescing = coalescing_efficiency(spec_, nx);
  job.t_submit = engine_.now();
  // Alone on the device occ_sum == occupancy, so job_rate gives the solo
  // rate (mps_mode_ is already set for this submission).
  job.solo_s = job.remaining_work / job_rate(job, job.occupancy);
  job.done = &done;

  // Fold elapsed progress into the books, then admit or queue. The wakeup is
  // armed once, after the admission — arming before it would spawn a frame
  // that the post-admission arm supersedes on the spot.
  sync_to_now();
  const int cap = mps ? spec_.mps_max_resident : 1;
  if (static_cast<int>(active_.size()) < cap)
    active_.push_back(job);
  else
    queued_.push_back(job);
  arm_wakeup();

  const double wait = co_await done.recv();
  if (drain_wait_s != nullptr) *drain_wait_s = wait;
}

void GpuServer::reschedule() {
  sync_to_now();
  arm_wakeup();
}

void GpuServer::sync_to_now() {
  const double now = engine_.now();
  const double elapsed = now - last_update_;
  last_update_ = now;

  // Drain elapsed progress at the rates in force since the last event.
  if (elapsed > 0 && !active_.empty()) {
    double occ_sum = 0;
    for (const Job& j : active_) occ_sum += j.occupancy;
    for (Job& j : active_)
      j.remaining_work -= elapsed * job_rate(j, occ_sum);
  }

  // Reap completed jobs in one stable compaction pass (no quadratic
  // erase-and-rescan: time does not advance inside this loop, so a job
  // passed over once stays unfinished; completions are still delivered in
  // ascending slot order, exactly as the rescanning loop did) and promote
  // queued ones FIFO with a single batched splice.
  const int cap = mps_mode_ ? spec_.mps_max_resident : 1;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Job& j = active_[i];
    if (j.remaining_work <= kDoneEps) {
      const double wait = std::max(0.0, (now - j.t_submit) - j.solo_s);
      drain_wait_total_ += wait;
      j.done->send(wait);
      ++completed_;
    } else {
      if (keep != i) active_[keep] = j;
      ++keep;
    }
  }
  active_.resize(keep);
  if (static_cast<int>(active_.size()) < cap && !queued_.empty()) {
    const auto take = std::min(queued_.size(),
                               static_cast<std::size_t>(cap) - active_.size());
    const auto first = queued_.begin();
    const auto last = first + static_cast<std::ptrdiff_t>(take);
    active_.insert(active_.end(), first, last);
    queued_.erase(first, last);
  }
}

void GpuServer::arm_wakeup() {
  // Schedule the next completion.
  ++wake_generation_;
  if (active_.empty()) return;
  double occ_sum = 0;
  for (const Job& j : active_) occ_sum += j.occupancy;
  double next_dt = std::numeric_limits<double>::max();
  for (const Job& j : active_) {
    next_dt = std::min(next_dt, std::max(0.0, j.remaining_work) /
                                    job_rate(j, occ_sum));
  }
  engine_.spawn(wakeup(wake_generation_, next_dt));
}

des::Task<void> GpuServer::wakeup(std::uint64_t generation, double delay) {
  co_await engine_.delay(delay);
  if (generation != wake_generation_) co_return;  // superseded by an event
  reschedule();
}

}  // namespace coop::devmodel
