/// Figure 16 of the paper: vary x-dimension (y=360, z=160).
///
/// Paper features: kernels fill the GPU on their own, so MPS cannot
/// overlap and only pays its sharing tax (worst mode); Default and
/// Heterogeneous both utilize the GPU well and stay below the memory
/// threshold over this range.

#include "fig_common.hpp"

int main() {
  using namespace coop::bench;
  const auto pts = run_figure_sweep(
      "Figure 16", "vary x-dimension (y=360, z=160)",
      sweep_sizes('x', std::vector<long>{100, 200, 300, 400, 500, 600}, {0, 360, 160}));
  print_shape_summary(pts);
  return 0;
}
