/// Figure 14 of the paper: vary x-dimension (y=240, z=160).
///
/// Paper features: problems stay below the memory threshold; Default and
/// MPS perform similarly; y=240 still too small for the Heterogeneous
/// carve (5% floor), so Heterogeneous runs long.
///
/// Sweep definition, driver, and analytics live in coop_sweeps
/// (src/coop/sweeps/figure_sweeps.hpp); the qualitative claims are locked
/// by tests/curves/test_figure_shapes.cpp.

#include "coop/sweeps/figure_sweeps.hpp"

int main() {
  coop::sweeps::run_figure_bench(14);
  return 0;
}
