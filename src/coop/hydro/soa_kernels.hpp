#pragma once

#include <cstddef>

#include "coop/hydro/eos.hpp"

/// \file soa_kernels.hpp
/// Flat-array (hal3d-style) row kernels for the SoA hydro hot path.
///
/// Every kernel works on raw `double* __restrict` planes from the pooled
/// `mesh::FieldBlock` storage plus explicit element offsets — no Array3D
/// indexing, no per-zone index arithmetic beyond one add. The inner loops
/// are unit-stride, branch-light, and annotated with `COOPHET_PRAGMA_SIMD`;
/// the CI vectorization lint (scripts/check_vectorization.sh) asserts the
/// compiler actually vectorized each of them.
///
/// Bitwise-determinism contract: each kernel evaluates, per element, the
/// EXACT floating-point expression sequence of the seed per-cell solver
/// (`ReferenceSolver` in reference_kernels.hpp). Vector lanes perform the
/// same per-element arithmetic as scalar iterations, so results are bitwise
/// identical across `seq`/`simd`/`threads`/`sim_gpu`/`indirect` policies,
/// tile sizes, and the seed layout itself — the property the curve-lock and
/// backend-equivalence suites pin.
///
/// Offsets are into the padded (state) or owned (accumulator) plane of the
/// respective field block; `l0`/`r0` are the offsets of the LEFT and RIGHT
/// cells of face 0 of the row, both advancing with unit stride.

namespace coop::hydro::kern {

/// Rusanov flux through `n` consecutive faces along `Axis` (0 = x, 1 = y,
/// 2 = z): face t sits between cells at offsets `l0 + t` and `r0 + t`.
/// Writes the five conserved-component fluxes into the pencil rows.
template <int Axis>
void rusanov_flux_row(const double* __restrict rho,
                      const double* __restrict mx,
                      const double* __restrict my,
                      const double* __restrict mz,
                      const double* __restrict ener,
                      const double* __restrict prs,
                      const double* __restrict snd, long l0, long r0, long n,
                      double* __restrict f_rho, double* __restrict f_mx,
                      double* __restrict f_my, double* __restrict f_mz,
                      double* __restrict f_ener);

/// The mass component of the Rusanov flux only (the scalar package's donor
/// mass flux): `md` is the axis-direction momentum plane. Identical
/// arithmetic to `rusanov_flux_row`'s `f_rho` output.
void rusanov_mass_flux_row(const double* __restrict rho,
                           const double* __restrict md,
                           const double* __restrict snd, long l0, long r0,
                           long n, double* __restrict f_rho);

/// Donor-cell (upwind) scalar flux through `n` faces: face t carries
/// `mf[t] * phi(upwind)` with `phi = scal / rho` of the donor cell.
void scalar_upwind_flux_row(const double* __restrict scal,
                            const double* __restrict rho, long l0, long r0,
                            long n, const double* __restrict mf,
                            double* __restrict out);

/// Pencil-form flux divergence (x sweeps): `d[t] -= (f[t+1] - f[t]) * inv`
/// over `n` cells; `f` holds `n + 1` face fluxes.
void diff_pencil_row(double* __restrict d, const double* __restrict f, long n,
                     double inv);

/// Plane-form flux divergence (y/z sweeps): `d[t] -= (fhi[t] - flo[t]) *
/// inv` over `n` cells.
void diff_plane_row(double* __restrict d, const double* __restrict fhi,
                    const double* __restrict flo, long n, double inv);

/// Primitive recovery over `n` consecutive zones (whole padded rows):
/// pressure-floored gamma-law pressure and sound speed.
void primitives_row(const double* __restrict rho, const double* __restrict mx,
                    const double* __restrict my, const double* __restrict mz,
                    const double* __restrict ener, long n, IdealGas eos,
                    double p_floor, double* __restrict prs,
                    double* __restrict snd);

/// Conserved update with density/energy floors over one row of `n` zones.
/// State pointers are offset into the padded planes, accumulator pointers
/// into the owned (ghost-free) planes.
void apply_update_row(double* __restrict rho, double* __restrict mx,
                      double* __restrict my, double* __restrict mz,
                      double* __restrict ener,
                      const double* __restrict drho,
                      const double* __restrict dmx,
                      const double* __restrict dmy,
                      const double* __restrict dmz,
                      const double* __restrict dener, long n, double dt,
                      double rho_floor, double e_floor);

/// `x[t] += dt * d[t]` over one row (scalar-package apply).
void axpy_row(double* __restrict x, const double* __restrict d, long n,
              double dt);

/// Per-thread pencil scratch: returns a buffer of at least `doubles`
/// elements, reused across calls on the same thread. AT MOST ONE live
/// `pencil()` result per kernel body — a second call may grow the buffer
/// and invalidate the first pointer; carve sub-rows from a single request.
[[nodiscard]] double* pencil(std::size_t doubles);

}  // namespace coop::hydro::kern
