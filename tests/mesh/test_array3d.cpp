#include <gtest/gtest.h>

#include "coop/memory/memory_manager.hpp"
#include "coop/mesh/array3d.hpp"
#include "coop/mesh/halo.hpp"

namespace mesh = coop::mesh;
namespace mem = coop::memory;
using mesh::Box;

namespace {

mem::MemoryManager make_mm() {
  mem::MemoryManager::Config c;
  c.target = mem::ExecutionTarget::kCpuCore;
  c.host_capacity = 64 << 20;
  return mem::MemoryManager(c);
}

TEST(Array3D, AllocatesPaddedExtents) {
  auto mm = make_mm();
  const Box owned{{0, 0, 0}, {4, 5, 6}};
  mesh::Array3D<double> a(mm, mem::AllocationContext::kMeshData, owned, 1);
  EXPECT_EQ(a.owned(), owned);
  EXPECT_EQ(a.padded(), owned.grown(1));
  EXPECT_EQ(a.size(), 6u * 7u * 8u);
}

TEST(Array3D, GlobalIndexingWithOffsetBox) {
  auto mm = make_mm();
  const Box owned{{10, 20, 30}, {14, 24, 34}};
  mesh::Array3D<double> a(mm, mem::AllocationContext::kMeshData, owned, 1);
  a.fill(0.0);
  a(10, 20, 30) = 1.0;   // owned corner
  a(9, 19, 29) = 2.0;    // ghost corner
  a(13, 23, 33) = 3.0;   // owned far corner
  EXPECT_DOUBLE_EQ(a(10, 20, 30), 1.0);
  EXPECT_DOUBLE_EQ(a(9, 19, 29), 2.0);
  EXPECT_DOUBLE_EQ(a(13, 23, 33), 3.0);
}

TEST(Array3D, XIsUnitStride) {
  auto mm = make_mm();
  const Box owned{{0, 0, 0}, {8, 4, 4}};
  mesh::Array3D<double> a(mm, mem::AllocationContext::kMeshData, owned, 0);
  EXPECT_EQ(a.index(1, 0, 0), a.index(0, 0, 0) + 1);
  EXPECT_EQ(a.index(0, 1, 0), a.index(0, 0, 0) + 8);
  EXPECT_EQ(a.index(0, 0, 1), a.index(0, 0, 0) + 32);
}

TEST(Array3D, DistinctCellsDistinctStorage) {
  auto mm = make_mm();
  const Box owned{{0, 0, 0}, {3, 3, 3}};
  mesh::Array3D<int> a(mm, mem::AllocationContext::kMeshData, owned, 1);
  a.fill(0);
  int v = 1;
  for (long k = -1; k < 4; ++k)
    for (long j = -1; j < 4; ++j)
      for (long i = -1; i < 4; ++i) a(i, j, k) = v++;
  v = 1;
  for (long k = -1; k < 4; ++k)
    for (long j = -1; j < 4; ++j)
      for (long i = -1; i < 4; ++i) ASSERT_EQ(a(i, j, k), v++);
}

TEST(Halo, SendRecvRegionsAreConjugate) {
  // What I send to my neighbor is exactly what it receives from me.
  const Box mine{{0, 0, 0}, {8, 4, 8}};
  const Box nbr{{0, 4, 0}, {8, 9, 8}};
  EXPECT_EQ(mesh::send_region(mine, nbr, 1), mesh::recv_region(nbr, mine, 1));
  EXPECT_EQ(mesh::send_region(nbr, mine, 1), mesh::recv_region(mine, nbr, 1));
}

TEST(Halo, RegionsAreOnePlaneForUnitGhost) {
  const Box mine{{0, 0, 0}, {8, 4, 8}};
  const Box nbr{{0, 4, 0}, {8, 9, 8}};
  const Box s = mesh::send_region(mine, nbr, 1);
  EXPECT_EQ(s, (Box{{0, 3, 0}, {8, 4, 8}}));  // my top plane
  const Box r = mesh::recv_region(mine, nbr, 1);
  EXPECT_EQ(r, (Box{{0, 4, 0}, {8, 5, 8}}));  // its bottom plane
}

TEST(Halo, WiderGhostsWidenRegions) {
  const Box mine{{0, 0, 0}, {8, 8, 8}};
  const Box nbr{{0, 8, 0}, {8, 16, 8}};
  EXPECT_EQ(mesh::send_region(mine, nbr, 2).ny(), 2);
  EXPECT_EQ(mesh::recv_region(mine, nbr, 2).ny(), 2);
}

TEST(Halo, PackUnpackRoundtrip) {
  auto mm = make_mm();
  const Box a_box{{0, 0, 0}, {6, 4, 6}};
  const Box b_box{{0, 4, 0}, {6, 8, 6}};
  mesh::Array3D<double> a(mm, mem::AllocationContext::kMeshData, a_box, 1);
  mesh::Array3D<double> b(mm, mem::AllocationContext::kMeshData, b_box, 1);
  a.fill(0);
  b.fill(0);
  // Fill a's owned zones with a unique pattern.
  for (long k = 0; k < 6; ++k)
    for (long j = 0; j < 4; ++j)
      for (long i = 0; i < 6; ++i)
        a(i, j, k) = 100.0 * static_cast<double>(k) +
                     10.0 * static_cast<double>(j) + static_cast<double>(i);
  const Box send = mesh::send_region(a_box, b_box, 1);
  const Box recv = mesh::recv_region(b_box, a_box, 1);
  EXPECT_EQ(send, recv);
  const auto payload = mesh::pack(a, send);
  EXPECT_EQ(payload.size(), static_cast<std::size_t>(send.zones()));
  mesh::unpack(b, recv, std::span<const double>(payload));
  // b's ghost plane must now mirror a's top owned plane.
  for (long k = 0; k < 6; ++k)
    for (long i = 0; i < 6; ++i)
      EXPECT_DOUBLE_EQ(b(i, 3, k), a(i, 3, k)) << i << "," << k;
}

TEST(Halo, UnpackAddAccumulates) {
  auto mm = make_mm();
  const Box box{{0, 0, 0}, {4, 4, 4}};
  mesh::Array3D<double> a(mm, mem::AllocationContext::kMeshData, box, 0);
  a.fill(1.0);
  const Box region{{0, 0, 0}, {4, 1, 4}};
  std::vector<double> data(static_cast<std::size_t>(region.zones()), 2.5);
  mesh::unpack_add(a, region, std::span<const double>(data));
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a(3, 0, 3), 3.5);
  EXPECT_DOUBLE_EQ(a(0, 1, 0), 1.0);  // outside region untouched
}

TEST(Halo, PackOrderIsXFastest) {
  auto mm = make_mm();
  const Box box{{0, 0, 0}, {2, 2, 2}};
  mesh::Array3D<double> a(mm, mem::AllocationContext::kMeshData, box, 0);
  a(0, 0, 0) = 0;
  a(1, 0, 0) = 1;
  a(0, 1, 0) = 2;
  a(1, 1, 0) = 3;
  a(0, 0, 1) = 4;
  a(1, 0, 1) = 5;
  a(0, 1, 1) = 6;
  a(1, 1, 1) = 7;
  const auto v = mesh::pack(a, box);
  EXPECT_EQ(v, (std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
