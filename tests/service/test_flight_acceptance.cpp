/// ISSUE acceptance: the flight recorder's end-to-end story. A failing
/// request through the scenario server must leave a `coophet.flight_log`
/// crash dump whose events — filtered by the failing request's correlation
/// id — contain the admission decision, every supervision attempt, and the
/// fault injection that caused the failure. Plus the request-scoped
/// satellites: correlation ids on responses, service spans in the Perfetto
/// tracer, and the per-outcome SLO latency block in service_stats v2.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "coop/core/sim_error.hpp"
#include "coop/core/timed_sim.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/trace.hpp"
#include "coop/service/scenario_server.hpp"
#include "support/json_check.hpp"

namespace core = coop::core;
namespace flog = coop::obs::log;
namespace service = coop::service;
namespace json = coophet_test::json;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("coophet_flight_" + std::to_string(counter_++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A small query whose run a kSlowdown fault covers from t = 0 (consumed at
/// the first compute phase, so the injection always precedes any later
/// budget trip).
service::ScenarioQuery slowed_query() {
  service::ScenarioQuery q;
  q.x = q.y = q.z = 16;
  q.timesteps = 4;
  coop::fault::FaultEvent e;
  e.time = 0.0;
  e.kind = coop::fault::FaultKind::kSlowdown;
  e.rank = 0;
  e.duration = 1.0e6;  // covers the whole run
  e.factor = 4.0;
  q.faults.add(e);
  return q;
}

/// Events of `cid`, as "name" strings in (seq) order, from a parsed dump.
std::vector<std::string> names_of_cid(const json::Value& dump,
                                      double cid) {
  std::vector<std::string> names;
  const json::Value* events = dump.find("events");
  if (events == nullptr || !events->is_array()) return names;
  for (const json::Value& ev : events->array) {
    const json::Value* c = ev.find("cid");
    const json::Value* name = ev.find("name");
    if (c != nullptr && c->is_number() && c->number == cid &&
        name != nullptr && name->is_string())
      names.push_back(name->str);
  }
  return names;
}

int count_of(const std::vector<std::string>& names, const std::string& want) {
  int n = 0;
  for (const std::string& s : names) n += s == want ? 1 : 0;
  return n;
}

}  // namespace

TEST(FlightAcceptance, CrashDumpNamesAdmissionEveryAttemptAndTheInjection) {
  const service::ScenarioQuery query = slowed_query();

  // Calibrate the watchdog from the query's own clean (budget-free)
  // makespan, so the budget provably trips mid-run after the t=0 injection.
  const core::TimedResult clean = core::run_timed(
      service::to_timed_config(query));
  ASSERT_GT(clean.makespan, 0.0);

  TempDir tmp;
  flog::FlightRecorder recorder;
  service::ScenarioServerConfig cfg;
  cfg.flight = &recorder;
  cfg.flight_dump_dir = tmp.file("");
  cfg.max_attempts = 3;
  cfg.budget.max_sim_s = clean.makespan * 0.5;
  // Attempts 1 and 2 die with a transient (kIo) failure before the
  // simulation starts; attempt 3 reaches run_timed, where the slowdown
  // injection pushes the run across the sim-time budget -> kTimeout.
  int calls = 0;
  cfg.execution_hook = [&calls](const service::ScenarioQuery&,
                                const std::string&) {
    if (++calls <= 2)
      core::throw_sim_error(core::SimErrorKind::kIo,
                            "flight test: transient artifact failure");
  };
  service::ScenarioServer server(std::move(cfg));

  flog::CorrelationId cid = 0;
  try {
    (void)server.submit(query, /*now=*/0.0);
    FAIL() << "submit must rethrow the leader's kTimeout";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kTimeout);
    cid = 1;  // first submit of a fresh server mints correlation id 1
  }
  EXPECT_EQ(calls, 3);

  const std::string dump_path =
      tmp.file("flight_req" + std::to_string(cid) + ".json");
  ASSERT_TRUE(fs::exists(dump_path)) << dump_path;

  const json::ParseResult parsed = json::parse(slurp(dump_path));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(
      json::check_artifact_schema(parsed.value, "coophet.flight_log").empty());
  const json::Value* reason = parsed.value.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->str, "request_error");
  const json::Value* focus = parsed.value.find("focus_cid");
  ASSERT_NE(focus, nullptr);
  EXPECT_EQ(focus->number, static_cast<double>(cid));

  // The acceptance criterion, verbatim: filtered by the failing request's
  // correlation id, the dump holds (a) the admission decision, (b) each
  // supervision attempt, and (c) the causal fault injection.
  const std::vector<std::string> names =
      names_of_cid(parsed.value, static_cast<double>(cid));
  EXPECT_EQ(count_of(names, "admission:admitted"), 1);
  EXPECT_EQ(count_of(names, "exec:attempt"), 3);
  EXPECT_EQ(count_of(names, "exec:retry"), 2);
  EXPECT_EQ(count_of(names, "inject:slowdown"), 1);
  EXPECT_EQ(count_of(names, "budget:sim_time"), 1);
  EXPECT_EQ(count_of(names, "exec:error"), 1);

  // Causality reads top to bottom: the injection precedes the budget trip,
  // which precedes the final error.
  const auto pos = [&names](const char* want) {
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == want) return static_cast<long>(i);
    return -1L;
  };
  EXPECT_LT(pos("admission:admitted"), pos("inject:slowdown"));
  EXPECT_LT(pos("inject:slowdown"), pos("budget:sim_time"));
  EXPECT_LT(pos("budget:sim_time"), pos("exec:error"));

  // The failed execution never poisoned anything: the error path counted.
  EXPECT_EQ(server.stats().errors, 1u);
  EXPECT_EQ(server.stats().executions, 3u);  // one per attempt
}

TEST(FlightAcceptance, ResponsesCarryDistinctCorrelationIds) {
  service::ScenarioQuery q;
  q.x = q.y = q.z = 16;
  q.timesteps = 2;
  flog::FlightRecorder recorder;
  service::ScenarioServerConfig cfg;
  cfg.flight = &recorder;
  service::ScenarioServer server(std::move(cfg));

  const service::ScenarioResponse a = server.submit(q, 0.0);
  const service::ScenarioResponse b = server.submit(q, 1.0);
  EXPECT_EQ(a.outcome, service::ServeOutcome::kMiss);
  EXPECT_EQ(b.outcome, service::ServeOutcome::kHit);
  EXPECT_NE(a.correlation_id, 0u);
  EXPECT_NE(b.correlation_id, 0u);
  EXPECT_NE(a.correlation_id, b.correlation_id);

  // Both requests' stories are separable in one drained log.
  const flog::FlightRecorder::Drained d = recorder.drain();
  std::ostringstream os;
  recorder.write_flight_log(os, d, "test");
  const json::ParseResult parsed = json::parse(os.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const std::vector<std::string> first =
      names_of_cid(parsed.value, static_cast<double>(a.correlation_id));
  const std::vector<std::string> second =
      names_of_cid(parsed.value, static_cast<double>(b.correlation_id));
  EXPECT_EQ(count_of(first, "exec:ok"), 1);
  EXPECT_EQ(count_of(first, "cache:store"), 1);
  EXPECT_EQ(count_of(second, "cache:hit"), 1);
  EXPECT_EQ(count_of(second, "exec:attempt"), 0);
}

TEST(FlightAcceptance, ServiceSpansLandOnPerRequestTracks) {
  service::ScenarioQuery q;
  q.x = q.y = q.z = 16;
  q.timesteps = 2;
  coop::obs::Tracer tracer;
  service::ScenarioServerConfig cfg;
  cfg.tracer = &tracer;
  service::ScenarioServer server(std::move(cfg));

  const service::ScenarioResponse miss = server.submit(q, 0.0);
  const service::ScenarioResponse hit = server.submit(q, 1.0);
  ASSERT_EQ(miss.outcome, service::ServeOutcome::kMiss);
  ASSERT_EQ(hit.outcome, service::ServeOutcome::kHit);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const json::ParseResult parsed = json::parse(os.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const json::Value* events = parsed.value.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Every service span rides the tid of its own correlation id.
  std::map<std::string, double> span_tid;
  for (const json::Value& ev : events->array) {
    const json::Value* ph = ev.find("ph");
    const json::Value* cat = ev.find("cat");
    if (ph == nullptr || !ph->is_string() || ph->str != "X") continue;
    if (cat == nullptr || !cat->is_string() || cat->str != "service") continue;
    const json::Value* name = ev.find("name");
    const json::Value* tid = ev.find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(tid, nullptr);
    span_tid[name->str] = tid->number;
  }
  ASSERT_EQ(span_tid.count("execute"), 1u);
  ASSERT_EQ(span_tid.count("cache-hit"), 1u);
  EXPECT_EQ(span_tid["execute"],
            static_cast<double>(miss.correlation_id));
  EXPECT_EQ(span_tid["cache-hit"],
            static_cast<double>(hit.correlation_id));
}

TEST(FlightAcceptance, ServiceStatsV2CarriesPerOutcomeLatencyHistograms) {
  service::ScenarioQuery q;
  q.x = q.y = q.z = 16;
  q.timesteps = 2;
  service::ScenarioServer server;
  (void)server.submit(q, 0.0);  // miss
  (void)server.submit(q, 1.0);  // hit

  std::ostringstream os;
  server.write_service_stats(os);
  const json::ParseResult parsed = json::parse(os.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(json::check_artifact_schema(parsed.value,
                                          "coophet.service_stats")
                  .empty());
  const json::Value* version = parsed.value.find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, 2.0);

  const json::Value* latency = parsed.value.find("latency_us");
  ASSERT_NE(latency, nullptr);
  const json::Value* bounds = latency->find("bounds");
  ASSERT_NE(bounds, nullptr);
  EXPECT_EQ(bounds->array.size(), service::service_latency_bounds().size());
  const json::Value* outcomes = latency->find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  for (const char* outcome : {"hit", "miss", "coalesced", "shed", "error"}) {
    const json::Value* o = outcomes->find(outcome);
    ASSERT_NE(o, nullptr) << outcome;
    const json::Value* count = o->find("count");
    const json::Value* buckets = o->find("buckets");
    ASSERT_NE(count, nullptr);
    ASSERT_NE(buckets, nullptr);
    // One overflow bucket past the bounds.
    EXPECT_EQ(buckets->array.size(), bounds->array.size() + 1);
  }
  EXPECT_EQ(outcomes->find("hit")->find("count")->number, 1.0);
  EXPECT_EQ(outcomes->find("miss")->find("count")->number, 1.0);
  EXPECT_EQ(outcomes->find("coalesced")->find("count")->number, 0.0);
}

TEST(FlightAcceptance, CacheEvictionMetricsTrackBytesAndAge) {
  service::ResultCache cache(2);
  const auto sized = [](std::size_t n) {
    return std::make_shared<const std::string>(std::string(n, 'x'));
  };
  cache.put("a", sized(100));
  cache.put("b", sized(200));
  cache.put("c", sized(300));  // evicts "a": 100 bytes, age 2 insertions
  service::ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.evicted_bytes, 100u);
  EXPECT_EQ(s.last_eviction_age, 2u);

  // Refreshing an entry restarts its age clock.
  cache.put("b", sized(250));
  cache.put("d", sized(400));  // evicts "c" (b was refreshed more recently)
  s = cache.stats();
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.evicted_bytes, 100u + 300u);
  EXPECT_EQ(s.last_eviction_age, 1u);
}
