#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

/// \file flight_recorder.hpp
/// Structured, bounded, clock-free flight recorder.
///
/// The resilience pipeline (supervised sweeps, the scenario daemon) produces
/// failures whose *history* matters: which admission decision let the request
/// in, how many supervision attempts ran, which injected fault actually
/// caused the quarantine. The metrics registry aggregates that history away
/// and the Perfetto trace only exists for runs that asked for one. The
/// flight recorder is the black box in between: every layer appends typed
/// events (severity, component, correlation id, sim-time, small key=value
/// payload) into per-thread lock-free ring buffers, and on a crash —
/// SimError escape, watchdog/budget trip, quarantine — the recorder dumps
/// the relevant slice as a versioned `coophet.flight_log` artifact so the
/// postmortem needs no re-run.
///
/// Design constraints, in order:
///  * Bounded: each writer thread owns a fixed-capacity ring; old events are
///    overwritten, never buffered without limit. Overwrites are counted and
///    reported as `dropped` in the artifact.
///  * Clock-free: events carry caller-supplied sim-time (or a logical 0) and
///    a per-writer monotonic sequence number — no wall clock ever reaches
///    the artifact, so identical seeds produce byte-identical flight logs.
///  * Lock-free recording: `FlightWriter::record` touches only its own
///    ring's atomics (a per-slot seqlock). The registry mutex is taken once,
///    at `writer()` open, never on the hot path.
///  * Torn reads are impossible by construction: a drain that races a
///    writer detects the in-progress slot via its stamp and counts it as
///    dropped instead of decoding garbage.
///
/// Payload limits (events are fixed 16-word slots): names are truncated to
/// 24 bytes, at most 4 key=value pairs per event, keys truncated to 8 bytes,
/// values are doubles. That is enough for "cell:quarantine point=3 mode=2
/// attempt=3 kind=5" — the recorder stores facts, not prose.

namespace coop::obs::log {

/// Request-scoped correlation id. `ScenarioServer::submit` mints one per
/// request; sweep cells derive one from the cell id. 0 means "uncorrelated"
/// and is reserved — product code always records under a nonzero id.
using CorrelationId = std::uint64_t;

enum class Severity : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Which layer recorded the event; the CLI and tests filter on it.
enum class Component : std::uint8_t {
  kService = 0,    // scenario_server request lifecycle
  kAdmission = 1,  // token bucket / queue decisions
  kCache = 2,      // result-cache hits/stores/evictions
  kSweep = 3,      // per-cell supervision (attempt/retry/quarantine)
  kRun = 4,        // run_timed phase boundaries, budget trips, recovery
  kFault = 5,      // FaultInjector injections
  kTelemetry = 6,  // telemetry windows + SLO burn-rate alerts
};

const char* to_string(Severity s) noexcept;
const char* to_string(Component c) noexcept;

/// One decoded event, as drained from the rings.
struct FlightEvent {
  CorrelationId cid = 0;
  std::uint64_t seq = 0;  ///< per-writer monotonic, 0-based
  double sim_time = 0.0;  ///< caller-supplied simulated seconds (or 0)
  Severity severity = Severity::kInfo;
  Component component = Component::kRun;
  std::string name;  ///< e.g. "cell:quarantine", "inject:slowdown"
  std::vector<std::pair<std::string, double>> kv;
};

namespace detail {
struct Ring;
}

/// A lightweight handle for appending events under one correlation id.
/// Obtained from `FlightRecorder::writer(cid)`; a default-constructed writer
/// is detached and `record` is a no-op, so call sites can thread a writer
/// unconditionally. Move-only: the writer carries the per-writer sequence
/// counter, and a copy would fork it (duplicate (cid, seq) keys would break
/// the deterministic drain order).
///
/// Thread affinity: a writer appends to the ring of the thread that opened
/// it. Use it from that thread only (the same contract as run_timed's
/// single-threaded execution).
class FlightWriter {
 public:
  FlightWriter() = default;
  FlightWriter(const FlightWriter&) = delete;
  FlightWriter& operator=(const FlightWriter&) = delete;
  FlightWriter(FlightWriter&& other) noexcept { *this = std::move(other); }
  FlightWriter& operator=(FlightWriter&& other) noexcept {
    ring_ = other.ring_;
    cid_ = other.cid_;
    next_seq_ = other.next_seq_;
    other.ring_ = nullptr;
    return *this;
  }

  /// Appends one event. Lock-free; no allocation; never throws. Detached
  /// writers ignore the call. `name` beyond 24 bytes and keys beyond 8
  /// bytes are truncated; at most 4 kv pairs are kept.
  void record(Severity sev, Component comp, double sim_time, std::string_view name,
              std::initializer_list<std::pair<std::string_view, double>> kv = {}) noexcept;

  CorrelationId cid() const noexcept { return cid_; }
  bool attached() const noexcept { return ring_ != nullptr; }

 private:
  friend class FlightRecorder;
  FlightWriter(detail::Ring* ring, CorrelationId cid) : ring_(ring), cid_(cid) {}

  detail::Ring* ring_ = nullptr;  ///< not owned; the recorder outlives it
  CorrelationId cid_ = 0;
  std::uint64_t next_seq_ = 0;
};

struct FlightRecorderConfig {
  /// Events retained per writer thread before the ring wraps.
  std::size_t ring_capacity = 4096;
  /// Ambient-context tail kept per writer thread in a crash dump (the
  /// focused correlation id is always kept in full).
  std::size_t crash_dump_last_n = 256;

  /// Throws std::invalid_argument (-> SimError kConfig at the classify
  /// boundary) on zero capacities.
  void validate() const;
};

/// Owns the per-thread rings and turns them into artifacts. One recorder
/// typically spans a whole server or sweep campaign; rings persist after
/// their writer threads exit so the black box keeps bounded history.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {});
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Opens a writer for `cid` bound to the calling thread's ring (created on
  /// first use; registry mutex taken once here, never in `record`).
  FlightWriter writer(CorrelationId cid);

  struct Drained {
    /// Sorted by (cid, seq) — one writer per correlation id in every product
    /// flow, so the order is total and independent of thread arrival order.
    std::vector<FlightEvent> events;
    /// Ring-overflow overwrites plus slots torn by a concurrent writer.
    std::uint64_t dropped = 0;
  };

  /// Snapshots every ring. Safe to call while writers are recording; events
  /// being written during the snapshot are skipped and counted as dropped.
  Drained drain() const;

  /// Serializes a drained snapshot as the `coophet.flight_log` v1 artifact.
  void write_flight_log(std::ostream& os, const Drained& d, std::string_view reason,
                        CorrelationId focus = 0) const;

  /// Crash-dump policy: keeps every event of `focus` (the failing request)
  /// plus each ring's most recent `crash_dump_last_n` events as ambient
  /// context, and writes the artifact atomically (tmp + rename) to `path`.
  /// Throws IoError if the write fails; callers on failure paths decide
  /// whether that is fatal.
  void dump_crash(const std::string& path, std::string_view reason,
                  CorrelationId focus = 0) const;

  const FlightRecorderConfig& config() const noexcept { return cfg_; }

  static constexpr const char* kSchemaName = "coophet.flight_log";
  static constexpr int kSchemaVersion = 1;

 private:
  Drained collect(bool tail_only, std::size_t last_n, CorrelationId focus) const;

  FlightRecorderConfig cfg_;
  mutable std::mutex registry_mutex_;
  std::map<std::thread::id, std::size_t> ring_index_;
  std::vector<std::unique_ptr<detail::Ring>> rings_;
};

}  // namespace coop::obs::log
