/// Figure 14 of the paper: vary x-dimension (y=240, z=160).
///
/// Paper features: problems stay below the memory threshold; Default and
/// MPS perform similarly; y=240 still too small for the Heterogeneous
/// carve (5% floor), so Heterogeneous runs long.

#include "fig_common.hpp"

int main() {
  using namespace coop::bench;
  const auto pts = run_figure_sweep(
      "Figure 14", "vary x-dimension (y=240, z=160)",
      sweep_sizes('x', std::vector<long>{100, 200, 300, 400, 500, 600, 700}, {0, 240, 160}));
  print_shape_summary(pts);
  return 0;
}
