#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "coop/forall/kernel_timers.hpp"
#include "coop/hydro/solver.hpp"
#include "hydro/reference_solver.hpp"
#include "support/prop.hpp"

/// Differential bitwise-equivalence suite for the SoA face-sweep solver.
///
/// The production `Solver` stores its fields in pooled SoA blocks and
/// computes each interior face's Rusanov flux exactly once via blocked,
/// vectorized face sweeps; the seed formulation (tests/hydro/
/// reference_solver.hpp) uses seven independent allocations and evaluates
/// every face twice from per-cell loops. Identical IEEE expressions in
/// identical per-element order must give identical bits, so the two are run
/// in lockstep on Sod and Sedov problems — under EVERY dispatch policy and
/// package combination — and every conserved field, dt, and diagnostic is
/// compared bit for bit, ghosts included. Tile sizes are swept through the
/// property harness: blocking must never change a single bit either.

namespace hy = coop::hydro;
namespace ref = coop::hydro::seedref;
namespace mem = coop::memory;
namespace fa = coop::forall;
namespace prop = coop::prop;
using coop::mesh::Box;

namespace {

mem::MemoryManager make_mm() {
  mem::MemoryManager::Config c;
  c.target = mem::ExecutionTarget::kCpuCore;
  c.host_capacity = std::size_t{1} << 30;
  return mem::MemoryManager(c);
}

constexpr fa::PolicyKind kAllPolicies[] = {
    fa::PolicyKind::kSeq, fa::PolicyKind::kSimd, fa::PolicyKind::kThreads,
    fa::PolicyKind::kSimGpu, fa::PolicyKind::kIndirect};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Bit-exact comparison of one field over `region` (padded box: ghosts are
/// part of the contract — halo packing reads them).
void expect_field_bits_equal(const coop::mesh::Array3D<double>& a,
                             const coop::mesh::Array3D<double>& b,
                             const Box& region, const char* field,
                             const std::string& ctx) {
  for (long k = region.lo.z; k < region.hi.z; ++k)
    for (long j = region.lo.y; j < region.hi.y; ++j)
      for (long i = region.lo.x; i < region.hi.x; ++i)
        ASSERT_EQ(bits(a(i, j, k)), bits(b(i, j, k)))
            << ctx << ": " << field << " differs at (" << i << "," << j
            << "," << k << "): " << a(i, j, k) << " vs " << b(i, j, k);
}

void expect_states_bits_equal(hy::Solver& sol, ref::ReferenceSolver& seed,
                              bool with_scalar, const std::string& ctx) {
  const Box padded = seed.owned().grown(seed.ghosts());
  expect_field_bits_equal(sol.state().rho, seed.rho, padded, "rho", ctx);
  expect_field_bits_equal(sol.state().mx, seed.mx, padded, "mx", ctx);
  expect_field_bits_equal(sol.state().my, seed.my, padded, "my", ctx);
  expect_field_bits_equal(sol.state().mz, seed.mz, padded, "mz", ctx);
  expect_field_bits_equal(sol.state().ener, seed.ener, padded, "ener", ctx);
  if (with_scalar)
    expect_field_bits_equal(sol.state().scal, seed.scal, padded, "scal", ctx);
}

void expect_diagnostics_bits_equal(const hy::Diagnostics& a,
                                   const hy::Diagnostics& b,
                                   const std::string& ctx) {
  EXPECT_EQ(bits(a.mass), bits(b.mass)) << ctx;
  EXPECT_EQ(bits(a.total_energy), bits(b.total_energy)) << ctx;
  EXPECT_EQ(bits(a.max_density), bits(b.max_density)) << ctx;
  EXPECT_EQ(bits(a.max_density_radius), bits(b.max_density_radius)) << ctx;
  EXPECT_EQ(bits(a.scalar_mass), bits(b.scalar_mass)) << ctx;
  EXPECT_EQ(bits(a.scalar_min), bits(b.scalar_min)) << ctx;
  EXPECT_EQ(bits(a.scalar_max), bits(b.scalar_max)) << ctx;
}

/// Runs SoA and seed solvers in lockstep for `steps`, asserting bitwise
/// agreement of dt and all fields after every step.
void run_lockstep(hy::Solver& sol, ref::ReferenceSolver& seed, int steps,
                  bool with_scalar, const std::string& ctx) {
  expect_states_bits_equal(sol, seed, with_scalar, ctx + " after init");
  for (int s = 0; s < steps; ++s) {
    sol.apply_physical_boundaries();
    seed.apply_physical_boundaries();
    sol.compute_primitives();
    seed.compute_primitives();
    const double dt_sol = sol.local_dt();
    const double dt_seed = seed.local_dt();
    ASSERT_EQ(bits(dt_sol), bits(dt_seed))
        << ctx << ": dt diverged at step " << s << ": " << dt_sol << " vs "
        << dt_seed;
    sol.advance(dt_sol);
    seed.advance(dt_seed);
    expect_states_bits_equal(sol, seed, with_scalar,
                             ctx + " after step " + std::to_string(s));
  }
  expect_diagnostics_bits_equal(sol.local_diagnostics(),
                                seed.local_diagnostics(), ctx);
}

hy::ProblemConfig sedov_config(long nx, long ny, long nz, bool scalar,
                               bool diffusion) {
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {nx, ny, nz}};
  cfg.packages.passive_scalar = scalar;
  cfg.packages.diffusion = diffusion;
  return cfg;
}

TEST(SoaEquivalence, SodBitwiseMatchesSeedUnderEveryPolicy) {
  for (auto kind : kAllPolicies) {
    mem::MemoryManager mm_sol = make_mm();
    mem::MemoryManager mm_seed = make_mm();
    hy::ProblemConfig cfg;
    cfg.global = Box{{0, 0, 0}, {32, 6, 5}};
    const fa::DynamicPolicy policy{kind};
    hy::Solver sol(mm_sol, cfg, cfg.global, policy);
    ref::ReferenceSolver seed(mm_seed, cfg, cfg.global, policy);
    auto sod = [](double x, double, double) {
      return x < 0.5 ? hy::Solver::Primitives{1.0, 0, 0, 0, 1.0}
                     : hy::Solver::Primitives{0.125, 0, 0, 0, 0.1};
    };
    sol.initialize_with(sod);
    seed.initialize_with(sod);
    run_lockstep(sol, seed, 8, /*with_scalar=*/false,
                 std::string("sod/") + to_string(kind));
  }
}

TEST(SoaEquivalence, SedovWithPackagesBitwiseMatchesSeedUnderEveryPolicy) {
  for (auto kind : kAllPolicies) {
    mem::MemoryManager mm_sol = make_mm();
    mem::MemoryManager mm_seed = make_mm();
    // Anisotropic odd extents: tiles get remainders on every axis.
    const hy::ProblemConfig cfg = sedov_config(11, 9, 10, true, true);
    const fa::DynamicPolicy policy{kind};
    hy::Solver sol(mm_sol, cfg, cfg.global, policy);
    ref::ReferenceSolver seed(mm_seed, cfg, cfg.global, policy);
    sol.initialize();
    seed.initialize();
    run_lockstep(sol, seed, 6, /*with_scalar=*/true,
                 std::string("sedov/") + to_string(kind));
  }
}

TEST(SoaEquivalence, PackageCombosBitwiseMatchSeed) {
  struct Combo {
    bool scalar, diffusion;
    const char* name;
  };
  for (const Combo c : {Combo{false, false, "none"}, Combo{true, false, "scal"},
                        Combo{false, true, "diff"}}) {
    mem::MemoryManager mm_sol = make_mm();
    mem::MemoryManager mm_seed = make_mm();
    const hy::ProblemConfig cfg = sedov_config(10, 12, 7, c.scalar,
                                               c.diffusion);
    const fa::DynamicPolicy policy{fa::PolicyKind::kSeq};
    hy::Solver sol(mm_sol, cfg, cfg.global, policy);
    ref::ReferenceSolver seed(mm_seed, cfg, cfg.global, policy);
    sol.initialize();
    seed.initialize();
    run_lockstep(sol, seed, 5, c.scalar, std::string("combo/") + c.name);
  }
}

TEST(SoaEquivalence, ReflectingBoundariesBitwiseMatchSeed) {
  mem::MemoryManager mm_sol = make_mm();
  mem::MemoryManager mm_seed = make_mm();
  hy::ProblemConfig cfg = sedov_config(9, 8, 7, true, false);
  cfg.boundary = hy::BoundaryCondition::kReflecting;
  const fa::DynamicPolicy policy{fa::PolicyKind::kSimd};
  hy::Solver sol(mm_sol, cfg, cfg.global, policy);
  ref::ReferenceSolver seed(mm_seed, cfg, cfg.global, policy);
  sol.initialize();
  seed.initialize();
  run_lockstep(sol, seed, 6, /*with_scalar=*/true, "reflecting");
}

// --- Tile-size invariance (property) ----------------------------------------

struct TileScenario {
  long nx = 8, ny = 8, nz = 8;
  long tile_j = 1, tile_k = 1, sweep_tile = 1;
  bool scalar = false;
  int steps = 3;
};

TileScenario generate_tiles(prop::Gen& g) {
  TileScenario s;
  s.nx = g.int_in(4, 14);
  s.ny = g.int_in(4, 14);
  s.nz = g.int_in(4, 14);
  // Deliberately exceed the extents sometimes: oversized tiles must
  // degenerate to one tile and still be exact.
  s.tile_j = g.int_in(1, 20);
  s.tile_k = g.int_in(1, 20);
  s.sweep_tile = g.int_in(1, 20);
  s.scalar = g.coin();
  s.steps = static_cast<int>(g.int_in(1, 4));
  return s;
}

prop::Property<TileScenario> tiling_is_bitwise_invariant() {
  prop::Property<TileScenario> p;
  p.name = "face-sweep results are bitwise independent of tile sizes";
  p.generate = generate_tiles;
  p.holds = [](const TileScenario& s, std::ostream& why) {
    const hy::ProblemConfig cfg = sedov_config(s.nx, s.ny, s.nz, s.scalar,
                                               false);
    const fa::DynamicPolicy policy{fa::PolicyKind::kSeq};
    mem::MemoryManager mm_a = make_mm();
    mem::MemoryManager mm_b = make_mm();
    hy::Solver base(mm_a, cfg, cfg.global, policy);  // default tuning
    hy::Solver tuned(mm_b, cfg, cfg.global, policy,
                     hy::SolverTuning{s.tile_j, s.tile_k, s.sweep_tile});
    base.initialize();
    tuned.initialize();
    for (int i = 0; i < s.steps; ++i) {
      base.apply_physical_boundaries();
      tuned.apply_physical_boundaries();
      base.compute_primitives();
      tuned.compute_primitives();
      const double dt = base.local_dt();
      if (bits(dt) != bits(tuned.local_dt())) {
        why << "dt diverged at step " << i;
        return false;
      }
      base.advance(dt);
      tuned.advance(dt);
    }
    const Box padded = cfg.global.grown(1);
    const auto& a = base.state();
    const auto& b = tuned.state();
    for (long k = padded.lo.z; k < padded.hi.z; ++k)
      for (long j = padded.lo.y; j < padded.hi.y; ++j)
        for (long i = padded.lo.x; i < padded.hi.x; ++i) {
          if (bits(a.rho(i, j, k)) != bits(b.rho(i, j, k)) ||
              bits(a.mx(i, j, k)) != bits(b.mx(i, j, k)) ||
              bits(a.my(i, j, k)) != bits(b.my(i, j, k)) ||
              bits(a.mz(i, j, k)) != bits(b.mz(i, j, k)) ||
              bits(a.ener(i, j, k)) != bits(b.ener(i, j, k)) ||
              (s.scalar &&
               bits(a.scal(i, j, k)) != bits(b.scal(i, j, k)))) {
            why << "state diverged at (" << i << "," << j << "," << k << ")";
            return false;
          }
        }
    return true;
  };
  p.shrink = [](const TileScenario& s) {
    std::vector<TileScenario> out;
    if (s.steps > 1) {
      TileScenario t = s;
      t.steps = 1;
      out.push_back(t);
    }
    if (s.scalar) {
      TileScenario t = s;
      t.scalar = false;
      out.push_back(t);
    }
    if (s.nx > 4 || s.ny > 4 || s.nz > 4) {
      TileScenario t = s;
      t.nx = t.ny = t.nz = 4;
      out.push_back(t);
    }
    if (s.tile_j > 1 || s.tile_k > 1 || s.sweep_tile > 1) {
      TileScenario t = s;
      t.tile_j = t.tile_k = t.sweep_tile = 1;
      out.push_back(t);
    }
    return out;
  };
  p.show = [](const TileScenario& s, std::ostream& os) {
    os << s.nx << "x" << s.ny << "x" << s.nz << ", tiles=(" << s.tile_j
       << "," << s.tile_k << "," << s.sweep_tile << "), scalar=" << s.scalar
       << ", steps=" << s.steps;
  };
  return p;
}

TEST(SoaEquivalence, TileSizeSweepIsBitwiseInvariant) {
  prop::Config cfg;
  cfg.cases = 15;
  prop::check(tiling_is_bitwise_invariant(), cfg);
}

// --- Operation-count invariants ---------------------------------------------

TEST(SoaFluxCount, ExactlyOneFluxEvaluationPerFacePerStep) {
  // The seed formulation evaluated 2*faces - boundary faces once each; the
  // face sweeps must evaluate exactly `interior_face_count`. A regression to
  // per-cell double evaluation doubles this count and fails here.
  for (auto kind : {fa::PolicyKind::kSeq, fa::PolicyKind::kThreads}) {
    mem::MemoryManager mm = make_mm();
    const hy::ProblemConfig cfg = sedov_config(7, 6, 5, true, false);
    hy::Solver sol(mm, cfg, cfg.global, fa::DynamicPolicy{kind});
    sol.initialize();
    sol.apply_physical_boundaries();
    sol.compute_primitives();
    sol.advance(sol.local_dt());

    const std::uint64_t expect = hy::Solver::interior_face_count(cfg.global);
    EXPECT_EQ(expect,
              std::uint64_t{8 * 6 * 5} + 7 * 7 * 5 + 7 * 6 * 6);
    EXPECT_EQ(sol.flux_face_evaluations(), expect) << to_string(kind);
    // The scalar package's donor mass flux is also once-per-face.
    EXPECT_EQ(sol.scalar_mass_flux_evaluations(), expect) << to_string(kind);
  }
}

TEST(SoaFluxCount, KernelTimerRegistryAccumulatesWorkAcrossSteps) {
  mem::MemoryManager mm = make_mm();
  const hy::ProblemConfig cfg = sedov_config(6, 6, 6, false, false);
  hy::Solver sol(mm, cfg, cfg.global,
                 fa::DynamicPolicy{fa::PolicyKind::kSeq});
  fa::KernelTimerRegistry timers;
  sol.bind_kernel_timers(&timers);
  sol.initialize();
  const int steps = 3;
  for (int i = 0; i < steps; ++i) {
    sol.apply_physical_boundaries();
    sol.compute_primitives();
    sol.advance(sol.local_dt());
  }
  const auto* e = timers.find("hydro.rusanov_faces");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->work, static_cast<std::uint64_t>(steps) *
                         hy::Solver::interior_face_count(cfg.global));
  // No scalar package -> no mass-flux entry.
  EXPECT_EQ(timers.find("hydro.scalar_mass_faces"), nullptr);

  sol.bind_kernel_timers(nullptr);
  sol.advance(sol.local_dt());
  EXPECT_EQ(e->work, static_cast<std::uint64_t>(steps) *
                         hy::Solver::interior_face_count(cfg.global));
}

}  // namespace
