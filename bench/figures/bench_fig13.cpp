/// Figure 13 of the paper: vary x-dimension (y=240, z=320).
///
/// Paper features: Default best until the memory threshold; small x ->
/// low per-kernel GPU utilization, so MPS recovers by overlapping kernels
/// from different ranks; y=240 is too small to carve thin CPU slabs
/// (floor 12/240 = 5%), so Heterogeneous runs long.

#include "fig_common.hpp"

int main() {
  using namespace coop::bench;
  const auto pts = run_figure_sweep(
      "Figure 13", "vary x-dimension (y=240, z=320)",
      sweep_sizes('x', std::vector<long>{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}, {0, 240, 320}));
  print_shape_summary(pts);
  return 0;
}
