#include "coop/forall/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace coop::forall {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: zero workers");
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job{};
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = jobs_.back();
      jobs_.pop_back();
    }
    std::exception_ptr err;
    try {
      (*job.fn)(job.begin, job.end);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--jobs_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(long begin, long end,
                              const std::function<void(long, long)>& fn) {
  const long n = end - begin;
  if (n <= 0) return;
  const long workers = static_cast<long>(threads_.size());
  const long chunks = std::min(n, workers);
  const long base = n / chunks, rem = n % chunks;
  {
    std::lock_guard lk(mu_);
    if (jobs_remaining_ != 0)
      throw std::logic_error("ThreadPool: nested parallel_for not supported");
    first_error_ = nullptr;
    long pos = begin;
    for (long c = 0; c < chunks; ++c) {
      const long len = base + (c < rem ? 1 : 0);
      jobs_.push_back(Job{&fn, pos, pos + len});
      pos += len;
    }
    jobs_remaining_ = static_cast<std::size_t>(chunks);
  }
  work_cv_.notify_all();
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [this] { return jobs_remaining_ == 0; });
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace coop::forall
