#pragma once

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coop/core/timed_sim.hpp"

/// \file fig_common.hpp
/// Shared sweep driver for the paper-figure benchmarks (Figs. 12-18).
///
/// Every figure in the paper's Section 7 plots total runtime (y axis)
/// against total problem size in zones (x axis) for the three node modes,
/// sweeping one mesh dimension while the other two stay fixed.
/// `run_figure_sweep` prints the same series and flags the qualitative
/// features the paper calls out (memory-threshold crossing, best mode).

namespace coop::bench {

struct FigurePoint {
  long x = 0, y = 0, z = 0;
  double t_default = 0, t_mps = 0, t_hetero = 0;
  double hetero_cpu_share = 0;
  [[nodiscard]] long zones() const { return x * y * z; }
};

/// Builds the sweep sizes for "vary dimension `vary` over `values` with the
/// other two fixed": fixed = {x?, y?, z?} with the varied slot ignored.
[[nodiscard]] inline std::vector<std::array<long, 3>> sweep_sizes(
    char vary, const std::vector<long>& values,
    std::array<long, 3> fixed) {
  std::vector<std::array<long, 3>> out;
  for (long v : values) {
    std::array<long, 3> s = fixed;
    s[vary == 'x' ? 0 : (vary == 'y' ? 1 : 2)] = v;
    out.push_back(s);
  }
  return out;
}

/// When COOPHET_CSV_DIR is set, each sweep additionally writes
/// `<dir>/<title>.csv` (spaces -> underscores) for plotting.
inline void maybe_write_csv(const std::string& title,
                            const std::vector<FigurePoint>& pts) {
  const char* dir = std::getenv("COOPHET_CSV_DIR");
  if (dir == nullptr) return;
  std::string name = title;
  for (char& c : name)
    if (c == ' ') c = '_';
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "x,y,z,zones,default_s,mps_s,hetero_s,hetero_cpu_share\n");
  for (const auto& p : pts)
    std::fprintf(f, "%ld,%ld,%ld,%ld,%.6f,%.6f,%.6f,%.4f\n", p.x, p.y, p.z,
                 p.zones(), p.t_default, p.t_mps, p.t_hetero,
                 p.hetero_cpu_share);
  std::fclose(f);
  std::printf("(csv written to %s)\n", path.c_str());
}

inline std::vector<FigurePoint> run_figure_sweep(
    const std::string& title, const std::string& description,
    const std::vector<std::array<long, 3>>& sizes,
    int timesteps = devmodel::calib::kPaperTimesteps) {
  std::vector<FigurePoint> points;
  std::printf("=== %s: %s — runtime (simulated s), %d timesteps ===\n",
              title.c_str(), description.c_str(), timesteps);
  std::printf("%7s %7s %7s %12s | %9s %9s %9s | %9s %-8s\n", "x", "y", "z",
              "zones", "Default", "MPS", "Hetero", "cpu-share", "best");
  for (const auto& [x, y, z] : sizes) {
    FigurePoint p;
    p.x = x;
    p.y = y;
    p.z = z;
    for (auto mode : {core::NodeMode::kOneRankPerGpu,
                      core::NodeMode::kMpsPerGpu,
                      core::NodeMode::kHeterogeneous}) {
      core::TimedConfig tc;
      tc.mode = mode;
      tc.global = {{0, 0, 0}, {x, y, z}};
      tc.timesteps = timesteps;
      const auto r = core::run_timed(tc);
      switch (mode) {
        case core::NodeMode::kOneRankPerGpu: p.t_default = r.makespan; break;
        case core::NodeMode::kMpsPerGpu: p.t_mps = r.makespan; break;
        case core::NodeMode::kHeterogeneous:
          p.t_hetero = r.makespan;
          p.hetero_cpu_share = r.final_cpu_fraction;
          break;
        default: break;
      }
    }
    const char* best = "Default";
    double tb = p.t_default;
    if (p.t_mps < tb) { best = "MPS"; tb = p.t_mps; }
    if (p.t_hetero < tb) { best = "Hetero"; tb = p.t_hetero; }
    const bool past_threshold =
        static_cast<double>(p.zones()) / 4.0 >
        devmodel::calib::kUmPumpZonesPerCore;
    std::printf("%7ld %7ld %7ld %12ld | %9.2f %9.2f %9.2f | %9.3f %-8s%s\n",
                x, y, z, p.zones(), p.t_default, p.t_mps, p.t_hetero,
                p.hetero_cpu_share, best,
                past_threshold ? " <past mem threshold>" : "");
    points.push_back(p);
  }
  maybe_write_csv(title, points);
  return points;
}

/// Prints the paper-vs-measured summary line consumed by EXPERIMENTS.md.
inline void print_shape_summary(const std::vector<FigurePoint>& pts) {
  double best_gain = -1e9;
  long best_zones = 0;
  for (const auto& p : pts) {
    const double gain = (p.t_default - p.t_hetero) / p.t_default;
    if (gain > best_gain) {
      best_gain = gain;
      best_zones = p.zones();
    }
  }
  std::printf("--> max Hetero gain over Default: %.1f%% (at %ld zones)\n\n",
              100.0 * best_gain, best_zones);
}

}  // namespace coop::bench
