#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "coop/obs/metrics.hpp"
#include "support/json_check.hpp"

namespace obs = coop::obs;
namespace cj = coophet_test::json;

namespace {

TEST(Labels, SortsAndDeduplicatesKeys) {
  obs::Labels a{{"rank", "3"}, {"device", "gpu"}};
  obs::Labels b{{"device", "gpu"}, {"rank", "3"}};
  EXPECT_EQ(a, b);  // insertion order must not matter
  EXPECT_EQ(a.render(), "{device=\"gpu\",rank=\"3\"}");
  a.set("rank", "5");  // overwrite, not append
  EXPECT_EQ(a.items().size(), 2u);
  EXPECT_EQ(a.render(), "{device=\"gpu\",rank=\"5\"}");
  EXPECT_EQ(obs::Labels{}.render(), "");
}

TEST(Metrics, CounterAccumulates) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("comm.bytes_sent");
  c.add(100);
  c.add();
  EXPECT_DOUBLE_EQ(c.value(), 101.0);
  // Same (name, labels) returns the same cell.
  EXPECT_EQ(&reg.counter("comm.bytes_sent"), &c);
  // Different labels -> different cell.
  auto& c2 = reg.counter("comm.bytes_sent", {{"rank", "1"}});
  EXPECT_NE(&c2, &c);
  EXPECT_DOUBLE_EQ(c2.value(), 0.0);
}

TEST(Metrics, GaugeSetAndHighWater) {
  obs::MetricsRegistry reg;
  auto& g = reg.gauge("pool.bytes_in_use");
  g.set(10);
  g.set(4);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  auto& hw = reg.gauge("pool.high_water_bytes");
  hw.set_max(10);
  hw.set_max(4);
  EXPECT_DOUBLE_EQ(hw.value(), 10.0);
}

TEST(Metrics, HistogramBucketsObservations) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("sim.iteration_seconds", {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0 (<= 0.1)
  h.observe(0.1);    // bucket 0 (inclusive upper bound)
  h.observe(0.5);    // bucket 1
  h.observe(100.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.65);
  EXPECT_DOUBLE_EQ(h.mean(), 100.65 / 4.0);
}

TEST(Metrics, RejectsUnsortedHistogramBounds) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {1.0, 0.5}), std::invalid_argument);
}

TEST(Metrics, RejectsKindCollisions) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  reg.histogram("h", {1.0, 2.0});
  // Re-lookup with empty or identical bounds is fine...
  EXPECT_NO_THROW(reg.histogram("h", {}));
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  // ...but different bounds would silently alias buckets: refuse.
  EXPECT_THROW(reg.histogram("h", {5.0}), std::invalid_argument);
}

TEST(Metrics, SnapshotIsDeterministicallyOrdered) {
  obs::MetricsRegistry reg;
  reg.gauge("zeta").set(1);
  reg.counter("alpha").add(2);
  reg.counter("alpha", {{"rank", "1"}}).add(3);
  reg.histogram("mid", {1.0}).observe(0.5);
  const auto snap = reg.snapshot(42.0);
  EXPECT_DOUBLE_EQ(snap.sim_time, 42.0);
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.samples[0].name, "alpha");  // unlabeled before labeled
  EXPECT_TRUE(snap.samples[0].labels.empty());
  EXPECT_EQ(snap.samples[1].name, "alpha");
  EXPECT_EQ(snap.samples[2].name, "mid");
  EXPECT_EQ(snap.samples[3].name, "zeta");
  EXPECT_EQ(snap.samples[2].kind, "histogram");
  EXPECT_EQ(snap.samples[2].count, 1u);
}

TEST(Metrics, WriteJsonIsStrictlyValidWithSchemaKeys) {
  obs::MetricsRegistry reg;
  reg.counter("comm.bytes_sent", {{"rank", "0"}}).add(1 << 20);
  reg.gauge("lb.cpu_fraction").set(0.0437);
  reg.histogram("sim.iteration_seconds", {0.1, 1.0}).observe(0.3);
  std::ostringstream os;
  reg.write_json(os, 1.5);

  const auto r = cj::parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << " at " << r.offset << "\n" << os.str();
  EXPECT_EQ(cj::first_missing_key(
                r.value, {"schema", "schema_version", "sim_time_s", "metrics"}),
            "");
  EXPECT_EQ(r.value.find("schema")->str, "coophet.metrics");
  EXPECT_DOUBLE_EQ(r.value.find("sim_time_s")->number, 1.5);
  const auto* metrics = r.value.find("metrics");
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->array.size(), 3u);
  for (const auto& m : metrics->array) {
    EXPECT_EQ(cj::first_missing_key(m, {"name", "kind", "labels"}), "");
    if (m.find("kind")->str == "histogram")
      EXPECT_EQ(cj::first_missing_key(m, {"sum", "count", "bounds", "counts"}),
                "");
    else
      EXPECT_NE(m.find("value"), nullptr);
  }
}

TEST(Metrics, SnapshotSinceDeltasCountersKeepsGauges) {
  obs::MetricsRegistry reg;
  reg.counter("req").add(10);
  reg.gauge("depth").set(5);
  obs::MetricsRegistry::Snapshot prev;

  // First call against a default-constructed prev: full values.
  auto d1 = reg.snapshot_since(&prev, 1.0);
  ASSERT_EQ(d1.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(d1.samples[1].value, 10.0);  // "req" counter
  EXPECT_DOUBLE_EQ(d1.samples[0].value, 5.0);   // "depth" gauge

  // Second call: counter reports only the change; the gauge reports its
  // current reading (an instantaneous value has no meaningful delta).
  reg.counter("req").add(3);
  reg.gauge("depth").set(2);
  auto d2 = reg.snapshot_since(&prev, 2.0);
  EXPECT_DOUBLE_EQ(d2.sim_time, 2.0);
  EXPECT_DOUBLE_EQ(d2.samples[1].value, 3.0);
  EXPECT_DOUBLE_EQ(d2.samples[0].value, 2.0);

  // No activity: zero counter delta, gauge unchanged.
  auto d3 = reg.snapshot_since(&prev, 3.0);
  EXPECT_DOUBLE_EQ(d3.samples[1].value, 0.0);
  EXPECT_DOUBLE_EQ(d3.samples[0].value, 2.0);
}

TEST(Metrics, SnapshotSinceDeltasHistogramBuckets) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  obs::MetricsRegistry::Snapshot prev;
  (void)reg.snapshot_since(&prev, 1.0);

  h.observe(0.5);
  h.observe(100.0);  // overflow bucket
  const auto d = reg.snapshot_since(&prev, 2.0);
  ASSERT_EQ(d.samples.size(), 1u);
  const auto& s = d.samples[0];
  EXPECT_EQ(s.count, 2u);                    // only the new observations
  EXPECT_DOUBLE_EQ(s.value, 100.5);          // delta of the sum
  ASSERT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[0], 1u);
  EXPECT_EQ(s.bucket_counts[1], 0u);
  EXPECT_EQ(s.bucket_counts[2], 1u);
}

TEST(Metrics, SnapshotSinceNewSeriesReportsFullValue) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(7);
  obs::MetricsRegistry::Snapshot prev;
  (void)reg.snapshot_since(&prev, 1.0);
  // A series born mid-stream is absent from prev: its first delta is its
  // full value, so nothing recorded between closes can be lost.
  reg.counter("b", {{"rank", "1"}}).add(4);
  const auto d = reg.snapshot_since(&prev, 2.0);
  ASSERT_EQ(d.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(d.samples[0].value, 0.0);  // "a" unchanged
  EXPECT_EQ(d.samples[1].name, "b");
  EXPECT_DOUBLE_EQ(d.samples[1].value, 4.0);
  // prev was advanced: b deltas from 4 now on.
  reg.counter("b", {{"rank", "1"}}).add(1);
  const auto d2 = reg.snapshot_since(&prev, 3.0);
  EXPECT_DOUBLE_EQ(d2.samples[1].value, 1.0);
}

TEST(Metrics, SnapshotSinceNullPrevIsFullSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(3);
  const auto d = reg.snapshot_since(nullptr, 1.0);
  ASSERT_EQ(d.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(d.samples[0].value, 3.0);
}

TEST(Metrics, ClearResetsEverything) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(2);
  EXPECT_EQ(reg.size(), 2u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  // Names are reusable as a different kind after clear.
  EXPECT_NO_THROW(reg.gauge("a"));
}

}  // namespace
