#pragma once

#include <vector>

#include "coop/hydro/eos.hpp"

/// \file lagrange1d.hpp
/// 1D arbitrary Lagrangian-Eulerian (ALE) hydrodynamics.
///
/// ARES is an ALE code: its Lagrange step moves the mesh with the fluid
/// (staggered velocities, von Neumann-Richtmyer artificial viscosity) and an
/// optional remap phase transfers the solution back to a reference mesh.
/// This module implements that scheme in 1D — enough to validate the ALE
/// machinery against the exact Riemann solution with the same harness the
/// Eulerian core uses, without the (untestable-at-this-scale) complexity of
/// 3D mesh motion.
///
///  * **Lagrange step**: nodes carry velocity, zones carry mass (constant),
///    density, specific internal energy; pressure + quadratic/linear
///    artificial viscosity accelerate the nodes; compatible internal-energy
///    update (p+q) dV.
///  * **Remap step** (ALE mode): first-order conservative donor-cell remap
///    of mass, momentum, and total energy from the moved mesh back to the
///    reference mesh. Remap every step == Eulerian; never == pure Lagrange.

namespace coop::hydro {

class Lagrange1D {
 public:
  struct Config {
    IdealGas eos{};
    double cfl = 0.5;
    double q_quad = 2.0;   ///< quadratic viscosity coefficient
    double q_lin = 0.25;   ///< linear viscosity coefficient
    bool remap = false;    ///< ALE: remap to the reference mesh every step
  };

  /// Builds a uniform mesh of `zones` zones on [x0, x1] with primitive
  /// initial condition `ic(x_center) -> {rho, u, p}` (u is sampled at zone
  /// centers and averaged to the nodes).
  template <typename Ic>
  Lagrange1D(long zones, double x0, double x1, const Config& cfg, Ic&& ic)
      : cfg_(cfg), x_(static_cast<std::size_t>(zones + 1)),
        u_(static_cast<std::size_t>(zones + 1)),
        mass_(static_cast<std::size_t>(zones)),
        rho_(static_cast<std::size_t>(zones)),
        eint_(static_cast<std::size_t>(zones)) {
    const double dx = (x1 - x0) / static_cast<double>(zones);
    for (long i = 0; i <= zones; ++i)
      x_[static_cast<std::size_t>(i)] = x0 + dx * static_cast<double>(i);
    ref_x_ = x_;
    std::vector<double> uc(static_cast<std::size_t>(zones));
    for (long j = 0; j < zones; ++j) {
      const auto s = ic(x0 + dx * (static_cast<double>(j) + 0.5));
      rho_[static_cast<std::size_t>(j)] = s.rho;
      mass_[static_cast<std::size_t>(j)] = s.rho * dx;
      eint_[static_cast<std::size_t>(j)] =
          s.p / ((cfg.eos.gamma - 1.0) * s.rho);
      uc[static_cast<std::size_t>(j)] = s.u;
    }
    for (long i = 1; i < zones; ++i)
      u_[static_cast<std::size_t>(i)] = 0.5 * (uc[static_cast<std::size_t>(i - 1)] +
                                               uc[static_cast<std::size_t>(i)]);
    // Rigid walls.
    u_.front() = 0.0;
    u_.back() = 0.0;
  }

  /// Primitive state triple used for initial conditions.
  struct Primitives {
    double rho, u, p;
  };

  /// Stable timestep (CFL on sound speed + viscosity against zone width).
  [[nodiscard]] double stable_dt() const;

  /// One Lagrange (+ optional remap) step of size `dt`.
  void step(double dt);

  /// Zone count and accessors (zone-centered, on the current mesh).
  [[nodiscard]] long zones() const noexcept {
    return static_cast<long>(mass_.size());
  }
  [[nodiscard]] double zone_center(long j) const {
    return 0.5 * (x_[static_cast<std::size_t>(j)] +
                  x_[static_cast<std::size_t>(j + 1)]);
  }
  [[nodiscard]] double density(long j) const {
    return rho_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double pressure(long j) const {
    return cfg_.eos.pressure(rho_[static_cast<std::size_t>(j)],
                             eint_[static_cast<std::size_t>(j)]);
  }
  [[nodiscard]] double velocity_node(long i) const {
    return u_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double node_position(long i) const {
    return x_[static_cast<std::size_t>(i)];
  }

  /// Conservation integrals over the whole tube.
  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double total_momentum() const;
  [[nodiscard]] double total_energy() const;  ///< internal + kinetic

 private:
  void lagrange_step(double dt);
  void remap_to_reference();
  [[nodiscard]] std::vector<double> viscosity() const;

  Config cfg_;
  std::vector<double> x_;     ///< node positions (zones+1)
  std::vector<double> u_;     ///< node velocities (zones+1)
  std::vector<double> mass_;  ///< zone masses (constant during Lagrange)
  std::vector<double> rho_;   ///< zone densities
  std::vector<double> eint_;  ///< zone specific internal energies
  std::vector<double> ref_x_; ///< reference mesh for the remap phase
};

}  // namespace coop::hydro
