#pragma once

#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

/// \file sim_error.hpp
/// Typed error taxonomy for the simulation pipeline.
///
/// `run_timed` and the sweep analytics historically threw bare
/// `std::invalid_argument` / `std::runtime_error`; a sweep campaign that
/// hits one poisoned cell therefore could not tell a config typo from a
/// transient I/O failure from a watchdog timeout, and had no choice but to
/// abort everything. `SimError` is the classification the sweep supervisor
/// retries, quarantines, or aborts on:
///
///  * kConfig             — invalid configuration; deterministic, never retry.
///  * kModel              — the simulation model itself failed an invariant.
///  * kFaultUnrecoverable — the *simulated* fault schedule exceeded the
///                          recovery policy (the run is valid, the modeled
///                          machine died); never retry, quarantine.
///  * kIo                 — filesystem/artifact failure; transient, retry.
///  * kTimeout            — a per-cell watchdog budget (events, simulated
///                          seconds, or wall seconds) expired.
///  * kCancelled          — the campaign's CancelToken was triggered.
///
/// Exceptions carrying a `SimError` keep their legacy standard base so all
/// pre-taxonomy call sites (and tests) continue to catch what they always
/// caught: config/model errors ARE `std::invalid_argument`, runtime kinds
/// ARE `std::runtime_error`. New code catches `SimErrorCarrier` (or calls
/// `classify_current_exception`) to read the typed payload.

namespace coop::core {

enum class SimErrorKind {
  kConfig,
  kModel,
  kFaultUnrecoverable,
  kIo,
  kTimeout,
  kCancelled,
};

[[nodiscard]] const char* to_string(SimErrorKind kind) noexcept;

/// The typed payload: kind + human context + (optionally) the flat sweep
/// cell index the error belongs to (-1 outside a sweep).
struct SimError {
  SimErrorKind kind = SimErrorKind::kModel;
  std::string context;
  int cell = -1;

  /// "timeout: cell 7: wall budget exceeded" — the `what()` of carriers.
  [[nodiscard]] std::string to_string() const;

  /// True for kinds worth a bounded retry (the failure is environmental,
  /// not a deterministic property of the cell config). Deterministic
  /// simulation failures would fail identically on every attempt.
  [[nodiscard]] bool transient() const noexcept {
    return kind == SimErrorKind::kIo;
  }
};

/// Mixin interface every typed simulation exception implements; lets a
/// single `catch (const SimErrorCarrier&)` read the payload regardless of
/// which standard base the exception was given.
class SimErrorCarrier {
 public:
  virtual ~SimErrorCarrier() = default;
  [[nodiscard]] virtual const SimError& error() const noexcept = 0;
};

namespace detail {

template <typename Base>
class SimExceptionImpl : public Base, public SimErrorCarrier {
 public:
  explicit SimExceptionImpl(SimError err)
      : Base(err.to_string()), err_(std::move(err)) {}
  [[nodiscard]] const SimError& error() const noexcept override {
    return err_;
  }

 private:
  SimError err_;
};

}  // namespace detail

/// Config/model errors: deterministic misuse, still an invalid_argument for
/// every legacy catch site.
using SimConfigException = detail::SimExceptionImpl<std::invalid_argument>;
/// Runtime kinds (io/timeout/cancelled/fault_unrecoverable).
using SimRuntimeException = detail::SimExceptionImpl<std::runtime_error>;

/// Throws the exception type matching `kind` (config/model ->
/// SimConfigException, the rest -> SimRuntimeException).
[[noreturn]] void throw_sim_error(SimErrorKind kind, std::string context,
                                  int cell = -1);

/// Maps the in-flight exception (callable only inside a catch block) onto
/// the taxonomy: carriers pass their payload through; bare
/// `std::invalid_argument` was a pre-taxonomy config throw; everything else
/// is a model failure. Never throws.
[[nodiscard]] SimError classify_current_exception() noexcept;

/// Cooperative cancellation for long campaigns: the owner requests, the
/// supervised `run_timed` step loop polls between event slices and raises
/// kCancelled. Thread-safe; a token may be shared by many concurrent cells.
class CancelToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace coop::core
