#include "coop/core/node_mode.hpp"

namespace coop::core {

RankLayout make_rank_layout(NodeMode mode, const devmodel::NodeSpec& node,
                            int ranks_per_gpu) {
  const int cores = node.cpu.total_cores();
  const int gpus = node.gpu_count;
  RankLayout l;
  switch (mode) {
    case NodeMode::kCpuOnly:
      l = {cores, 0, cores, 0, cores};
      break;
    case NodeMode::kOneRankPerGpu:
      l = {gpus, gpus, 0, 1, gpus};
      break;
    case NodeMode::kMpsPerGpu:
      if (ranks_per_gpu < 1)
        throw std::invalid_argument("make_rank_layout: ranks_per_gpu < 1");
      if (gpus * ranks_per_gpu > cores)
        throw std::invalid_argument(
            "make_rank_layout: not enough cores to drive the GPUs");
      l = {gpus * ranks_per_gpu, gpus * ranks_per_gpu, 0, ranks_per_gpu,
           gpus * ranks_per_gpu};
      break;
    case NodeMode::kHeterogeneous:
      l = {cores, gpus, cores - gpus, 1, cores};
      break;
  }
  return l;
}

decomp::Decomposition make_decomposition(NodeMode mode,
                                         const devmodel::NodeSpec& node,
                                         const mesh::Box& global,
                                         int ranks_per_gpu,
                                         double cpu_fraction) {
  const RankLayout l = make_rank_layout(mode, node, ranks_per_gpu);
  switch (mode) {
    case NodeMode::kCpuOnly:
      return decomp::cpu_only(global, l.total_ranks);
    case NodeMode::kOneRankPerGpu:
      return decomp::hierarchical_gpu(global, node.gpu_count, 1);
    case NodeMode::kMpsPerGpu:
      return decomp::hierarchical_gpu(global, node.gpu_count, l.ranks_per_gpu);
    case NodeMode::kHeterogeneous:
      return decomp::heterogeneous(global, node.gpu_count, l.cpu_ranks,
                                   cpu_fraction);
  }
  throw std::logic_error("make_decomposition: unreachable");
}

decomp::Decomposition make_cluster_decomposition(NodeMode mode,
                                                 const devmodel::NodeSpec& node,
                                                 const mesh::Box& global,
                                                 int nodes, int ranks_per_gpu,
                                                 double cpu_fraction) {
  if (nodes <= 0)
    throw std::invalid_argument("make_cluster_decomposition: nodes <= 0");
  if (nodes == 1) {
    return make_decomposition(mode, node, global, ranks_per_gpu,
                              cpu_fraction);
  }
  decomp::Decomposition d;
  d.scheme = "cluster";
  d.global = global;
  int rank_offset = 0;
  int node_id = 0;
  for (const mesh::Box& slab :
       mesh::split_even(global, mesh::Axis::kZ, nodes)) {
    decomp::Decomposition per =
        make_decomposition(mode, node, slab, ranks_per_gpu, cpu_fraction);
    for (auto dom : per.domains) {
      dom.rank += rank_offset;
      dom.node_id = node_id;
      d.domains.push_back(dom);
    }
    rank_offset += per.ranks();
    ++node_id;
  }
  return d;
}

}  // namespace coop::core
