/// ISSUE acceptance: windowed telemetry through the sweep harness. Cells
/// complete in nondeterministic order under the parallel executor, so the
/// sweep replays per-cell outcomes into the sampler in canonical cell order
/// at finalize — the `coophet.telemetry` artifact must be byte-identical
/// across fan-out widths, attaching a sampler must leave the curves
/// bitwise untouched, and a poisoned cell must trip the quarantine-rate
/// SLO's burn-rate alert.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "coop/core/sim_error.hpp"
#include "coop/obs/telemetry/sampler.hpp"
#include "coop/sweeps/figure_sweeps.hpp"
#include "support/json_check.hpp"

namespace core = coop::core;
namespace sweeps = coop::sweeps;
namespace tel = coop::obs::telemetry;
namespace json = coophet_test::json;

namespace {

sweeps::FigureSpec small_spec() {
  return sweeps::reduced(sweeps::figure_spec(18), 3);
}

std::string artifact_of(tel::TelemetrySampler& ts) {
  std::ostringstream os;
  ts.write_json(os);
  return os.str();
}

bool curves_bitwise_equal(const sweeps::SweepCurves& a,
                          const sweeps::SweepCurves& b) {
  if (a.points.size() != b.points.size()) return false;
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (bits(a.points[i].t_default) != bits(b.points[i].t_default) ||
        bits(a.points[i].t_mps) != bits(b.points[i].t_mps) ||
        bits(a.points[i].t_hetero) != bits(b.points[i].t_hetero))
      return false;
  }
  return true;
}

TEST(SweepTelemetry, ArtifactByteIdenticalAcrossJobCounts) {
  const auto spec = small_spec();
  std::string serial_artifact;
  sweeps::SweepCurves serial_curves;
  for (const int jobs : {1, 4}) {
    tel::TelemetrySampler sampler(
        sweeps::telemetry_defaults::sweep_telemetry_config());
    sweeps::SweepOptions options;
    options.timesteps = 4;
    options.jobs = jobs;
    options.telemetry = &sampler;
    const auto curves = sweeps::run_figure_sweep(spec, options);
    const std::string artifact = artifact_of(sampler);
    // 9 cells (3 points x 3 modes) at 3 cells/window = 3 full windows.
    EXPECT_EQ(sampler.windows().size(), 3u);
    if (jobs == 1) {
      serial_artifact = artifact;
      serial_curves = curves;
      const auto r = json::parse(artifact);
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(json::check_artifact_schema(r.value, "coophet.telemetry"),
                "");
    } else {
      EXPECT_EQ(artifact, serial_artifact)
          << "sweep telemetry differs between jobs=1 and jobs=" << jobs;
      EXPECT_TRUE(curves_bitwise_equal(serial_curves, curves));
    }
  }
}

TEST(SweepTelemetry, AttachingSamplerLeavesCurvesBitwiseUnchanged) {
  const auto spec = small_spec();
  sweeps::SweepOptions bare;
  bare.timesteps = 4;
  bare.jobs = 1;
  const auto bare_curves = sweeps::run_figure_sweep(spec, bare);

  tel::TelemetrySampler sampler(
      sweeps::telemetry_defaults::sweep_telemetry_config());
  sweeps::SweepOptions instrumented = bare;
  instrumented.telemetry = &sampler;
  const auto curves = sweeps::run_figure_sweep(spec, instrumented);
  EXPECT_TRUE(curves_bitwise_equal(bare_curves, curves));
  // All nine cells replayed ok, none quarantined, no alert fired.
  EXPECT_TRUE(sampler.alerts().empty());
}

TEST(SweepTelemetry, PoisonedCellTripsQuarantineRateAlert) {
  const auto spec = small_spec();
  tel::TelemetrySampler sampler(
      sweeps::telemetry_defaults::sweep_telemetry_config());
  sweeps::SweepOptions options;
  options.timesteps = 4;
  options.jobs = 2;
  options.telemetry = &sampler;
  options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
    if (point == 1 && mode == core::NodeMode::kHeterogeneous)
      core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                            "test: poisoned cell");
  };
  const auto curves = sweeps::run_figure_sweep(spec, options);
  ASSERT_EQ(curves.failed_cells.size(), 1u);

  // One quarantined cell in a 3-cell window burns (1/3)/0.1 = 3.33 of the
  // quarantine-rate budget per window — past the fast rule's 2.5.
  bool saw_quarantine_alert = false;
  for (const auto& a : sampler.alerts())
    if (a.slo == "quarantine-rate" && a.fired) saw_quarantine_alert = true;
  EXPECT_TRUE(saw_quarantine_alert);

  // The artifact carries the quarantine series with exactly one count.
  const auto r = json::parse(artifact_of(sampler));
  ASSERT_TRUE(r.ok) << r.error;
  double quarantined = 0.0;
  for (const auto& s : r.value.find("series")->array)
    if (s.find("name")->str == "sweep.cells_quarantined")
      for (const auto& d : s.find("deltas")->array) quarantined += d.number;
  EXPECT_DOUBLE_EQ(quarantined, 1.0);
}

}  // namespace
