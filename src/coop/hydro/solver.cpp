#include "coop/hydro/solver.hpp"

#include "coop/forall/forall3d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace coop::hydro {

using forall::DynamicPolicy;
using mesh::Box;

using forall::forall_box;

Solver::Solver(memory::MemoryManager& mm, const ProblemConfig& cfg,
               const Box& owned, DynamicPolicy policy)
    : cfg_(cfg), policy_(policy),
      state_(mm, owned, 1, cfg.packages.passive_scalar),
      d_rho_(mm, memory::AllocationContext::kTemporary, owned, 0),
      d_mx_(mm, memory::AllocationContext::kTemporary, owned, 0),
      d_my_(mm, memory::AllocationContext::kTemporary, owned, 0),
      d_mz_(mm, memory::AllocationContext::kTemporary, owned, 0),
      d_ener_(mm, memory::AllocationContext::kTemporary, owned, 0) {
  if (cfg.packages.passive_scalar)
    d_scal_ = mesh::Array3D<double>(mm, memory::AllocationContext::kTemporary,
                                    owned, 0);
  if (cfg.packages.diffusion)
    eint_ = mesh::Array3D<double>(mm, memory::AllocationContext::kTemporary,
                                  owned, 1);
}

void Solver::initialize() {
  const double dx = cfg_.dx(), dy = cfg_.dy(), dz = cfg_.dz();
  const double cx = 0.5 * cfg_.length, cy = 0.5 * cfg_.length,
               cz = 0.5 * cfg_.length;
  const double r0 = cfg_.blast_radius_zones * dx;

  // Count deposition zones over the (small) global blast ball so every rank
  // deposits a consistent per-zone energy density without communication.
  const long icx = cfg_.global.nx() / 2, icy = cfg_.global.ny() / 2,
             icz = cfg_.global.nz() / 2;
  const long rz = static_cast<long>(std::ceil(cfg_.blast_radius_zones)) + 1;
  long n_dep = 0;
  auto in_ball = [&](long i, long j, long k) {
    const double x = (static_cast<double>(i) + 0.5) * dx - cx;
    const double y = (static_cast<double>(j) + 0.5) * dy - cy;
    const double z = (static_cast<double>(k) + 0.5) * dz - cz;
    return std::sqrt(x * x + y * y + z * z) <= r0;
  };
  for (long k = icz - rz; k <= icz + rz; ++k)
    for (long j = icy - rz; j <= icy + rz; ++j)
      for (long i = icx - rz; i <= icx + rz; ++i)
        if (cfg_.global.contains({i, j, k}) && in_ball(i, j, k)) ++n_dep;
  if (n_dep == 0) n_dep = 1;
  const double dv = dx * dy * dz;
  const double e_spike =
      cfg_.blast_energy / (static_cast<double>(n_dep) * dv);
  const double e_ambient =
      cfg_.p0 / (cfg_.eos.gamma - 1.0);

  auto* rho = &state_.rho;
  auto* mx = &state_.mx;
  auto* my = &state_.my;
  auto* mz = &state_.mz;
  auto* ener = &state_.ener;
  const double rho0 = cfg_.rho0;
  forall_box(policy_, state_.owned.grown(state_.ghosts),
             [=](long i, long j, long k) {
               (*rho)(i, j, k) = rho0;
               (*mx)(i, j, k) = 0.0;
               (*my)(i, j, k) = 0.0;
               (*mz)(i, j, k) = 0.0;
               // Deposited energy adds to the ambient internal energy.
               (*ener)(i, j, k) =
                   e_ambient + (in_ball(i, j, k) ? e_spike : 0.0);
             });

  if (cfg_.packages.passive_scalar) {
    // Mixing package: a tagged ball of material at the domain center
    // (phi = 1 inside, 0 outside), stored as conserved rho*phi.
    auto* scal = &state_.scal;
    const double rb = cfg_.packages.scalar_ball_radius * cfg_.length;
    forall_box(policy_, state_.owned.grown(state_.ghosts),
               [=](long i, long j, long k) {
                 const double px = (static_cast<double>(i) + 0.5) * dx - cx;
                 const double py = (static_cast<double>(j) + 0.5) * dy - cy;
                 const double pz = (static_cast<double>(k) + 0.5) * dz - cz;
                 const bool inside =
                     std::sqrt(px * px + py * py + pz * pz) <= rb;
                 (*scal)(i, j, k) = inside ? (*rho)(i, j, k) : 0.0;
               });
  }
}

void Solver::apply_physical_boundaries() {
  const Box& o = state_.owned;
  const Box& g = cfg_.global;
  const long gh = state_.ghosts;
  const auto fields = state_.exchanged_fields();

  // Zero-gradient copy from the nearest owned zone; for reflecting walls
  // the momentum component normal to the face is then negated, which makes
  // the Rusanov mass and energy fluxes through the wall exactly zero (the
  // mirrored state has equal density/pressure and opposite normal velocity).
  const bool reflect = cfg_.boundary == BoundaryCondition::kReflecting;
  auto fill_face = [&](const Box& ghost_region,
                       mesh::Array3D<double>* normal_mom) {
    for (auto* f : fields) {
      for (long k = ghost_region.lo.z; k < ghost_region.hi.z; ++k)
        for (long j = ghost_region.lo.y; j < ghost_region.hi.y; ++j)
          for (long i = ghost_region.lo.x; i < ghost_region.hi.x; ++i)
            (*f)(i, j, k) = (*f)(std::clamp(i, o.lo.x, o.hi.x - 1),
                                 std::clamp(j, o.lo.y, o.hi.y - 1),
                                 std::clamp(k, o.lo.z, o.hi.z - 1));
    }
    if (reflect) {
      for (long k = ghost_region.lo.z; k < ghost_region.hi.z; ++k)
        for (long j = ghost_region.lo.y; j < ghost_region.hi.y; ++j)
          for (long i = ghost_region.lo.x; i < ghost_region.hi.x; ++i)
            (*normal_mom)(i, j, k) = -(*normal_mom)(i, j, k);
    }
  };
  const Box padded = o.grown(gh);
  if (o.lo.x == g.lo.x)
    fill_face(Box{{padded.lo.x, padded.lo.y, padded.lo.z},
                  {o.lo.x, padded.hi.y, padded.hi.z}}, &state_.mx);
  if (o.hi.x == g.hi.x)
    fill_face(Box{{o.hi.x, padded.lo.y, padded.lo.z},
                  {padded.hi.x, padded.hi.y, padded.hi.z}}, &state_.mx);
  if (o.lo.y == g.lo.y)
    fill_face(Box{{padded.lo.x, padded.lo.y, padded.lo.z},
                  {padded.hi.x, o.lo.y, padded.hi.z}}, &state_.my);
  if (o.hi.y == g.hi.y)
    fill_face(Box{{padded.lo.x, o.hi.y, padded.lo.z},
                  {padded.hi.x, padded.hi.y, padded.hi.z}}, &state_.my);
  if (o.lo.z == g.lo.z)
    fill_face(Box{{padded.lo.x, padded.lo.y, padded.lo.z},
                  {padded.hi.x, padded.hi.y, o.lo.z}}, &state_.mz);
  if (o.hi.z == g.hi.z)
    fill_face(Box{{padded.lo.x, padded.lo.y, o.hi.z},
                  {padded.hi.x, padded.hi.y, padded.hi.z}}, &state_.mz);
}

void Solver::compute_primitives() {
  auto* rho = &state_.rho;
  auto* mx = &state_.mx;
  auto* my = &state_.my;
  auto* mz = &state_.mz;
  auto* ener = &state_.ener;
  auto* prs = &state_.prs;
  auto* snd = &state_.snd;
  const IdealGas eos = cfg_.eos;
  const double p_floor = 1e-12;
  forall_box(policy_, state_.owned.grown(state_.ghosts),
             [=](long i, long j, long k) {
               const double r = (*rho)(i, j, k);
               const double p = std::max(
                   p_floor, eos.pressure_conserved(r, (*mx)(i, j, k),
                                                   (*my)(i, j, k),
                                                   (*mz)(i, j, k),
                                                   (*ener)(i, j, k)));
               (*prs)(i, j, k) = p;
               (*snd)(i, j, k) = eos.sound_speed(r, p);
             });
}

namespace {

struct ZoneRef {
  const mesh::Array3D<double>* rho;
  const mesh::Array3D<double>* mx;
  const mesh::Array3D<double>* my;
  const mesh::Array3D<double>* mz;
  const mesh::Array3D<double>* ener;
  const mesh::Array3D<double>* prs;
  const mesh::Array3D<double>* snd;
};

struct Flux {
  double rho, mx, my, mz, ener;
};

/// Rusanov flux through the face between zones L and R along `axis`
/// (0 = x, 1 = y, 2 = z).
inline Flux rusanov(const ZoneRef& f, int axis, long li, long lj, long lk,
                    long ri, long rj, long rk) {
  const double rl = (*f.rho)(li, lj, lk), rr = (*f.rho)(ri, rj, rk);
  const double pl = (*f.prs)(li, lj, lk), pr = (*f.prs)(ri, rj, rk);
  const double cl = (*f.snd)(li, lj, lk), cr = (*f.snd)(ri, rj, rk);
  const double mxl = (*f.mx)(li, lj, lk), mxr = (*f.mx)(ri, rj, rk);
  const double myl = (*f.my)(li, lj, lk), myr = (*f.my)(ri, rj, rk);
  const double mzl = (*f.mz)(li, lj, lk), mzr = (*f.mz)(ri, rj, rk);
  const double el = (*f.ener)(li, lj, lk), er = (*f.ener)(ri, rj, rk);

  const double mdl = axis == 0 ? mxl : (axis == 1 ? myl : mzl);
  const double mdr = axis == 0 ? mxr : (axis == 1 ? myr : mzr);
  const double ul = mdl / rl, ur = mdr / rr;
  const double s = std::max(std::abs(ul) + cl, std::abs(ur) + cr);

  Flux out;
  out.rho = 0.5 * (mdl + mdr) - 0.5 * s * (rr - rl);
  out.mx = 0.5 * (mxl * ul + mxr * ur) - 0.5 * s * (mxr - mxl);
  out.my = 0.5 * (myl * ul + myr * ur) - 0.5 * s * (myr - myl);
  out.mz = 0.5 * (mzl * ul + mzr * ur) - 0.5 * s * (mzr - mzl);
  if (axis == 0) out.mx += 0.5 * (pl + pr);
  if (axis == 1) out.my += 0.5 * (pl + pr);
  if (axis == 2) out.mz += 0.5 * (pl + pr);
  out.ener = 0.5 * ((el + pl) * ul + (er + pr) * ur) - 0.5 * s * (er - el);
  return out;
}

}  // namespace

void Solver::advance(double dt) {
  const ZoneRef f{&state_.rho, &state_.mx,  &state_.my, &state_.mz,
                  &state_.ener, &state_.prs, &state_.snd};
  auto* drho = &d_rho_;
  auto* dmx = &d_mx_;
  auto* dmy = &d_my_;
  auto* dmz = &d_mz_;
  auto* dener = &d_ener_;

  // Kernel 1: clear accumulators.
  forall_box(policy_, state_.owned, [=](long i, long j, long k) {
    (*drho)(i, j, k) = 0.0;
    (*dmx)(i, j, k) = 0.0;
    (*dmy)(i, j, k) = 0.0;
    (*dmz)(i, j, k) = 0.0;
    (*dener)(i, j, k) = 0.0;
  });

  // Kernels 2-4: one flux-divergence sweep per axis.
  const double inv_d[3] = {1.0 / cfg_.dx(), 1.0 / cfg_.dy(), 1.0 / cfg_.dz()};
  for (int axis = 0; axis < 3; ++axis) {
    const double inv = inv_d[axis];
    forall_box(policy_, state_.owned, [=](long i, long j, long k) {
      const long di = axis == 0 ? 1 : 0;
      const long dj = axis == 1 ? 1 : 0;
      const long dk = axis == 2 ? 1 : 0;
      const Flux lo = rusanov(f, axis, i - di, j - dj, k - dk, i, j, k);
      const Flux hi = rusanov(f, axis, i, j, k, i + di, j + dj, k + dk);
      (*drho)(i, j, k) -= (hi.rho - lo.rho) * inv;
      (*dmx)(i, j, k) -= (hi.mx - lo.mx) * inv;
      (*dmy)(i, j, k) -= (hi.my - lo.my) * inv;
      (*dmz)(i, j, k) -= (hi.mz - lo.mz) * inv;
      (*dener)(i, j, k) -= (hi.ener - lo.ener) * inv;
    });
  }

  // Package phases read the time-n state and fold into the accumulators /
  // their own updates BEFORE the hydro apply, so every flux (including
  // across rank boundaries, where ghosts hold time-n data) is evaluated at
  // a single time level regardless of the decomposition.
  if (cfg_.packages.diffusion) accumulate_diffusion_fluxes();
  if (cfg_.packages.passive_scalar) accumulate_scalar_fluxes();

  // Kernel 5: apply the update with density/energy floors.
  auto* rho = &state_.rho;
  auto* mx = &state_.mx;
  auto* my = &state_.my;
  auto* mz = &state_.mz;
  auto* ener = &state_.ener;
  const double rho_floor = 1e-10, e_floor = 1e-14;
  forall_box(policy_, state_.owned, [=](long i, long j, long k) {
    (*rho)(i, j, k) =
        std::max(rho_floor, (*rho)(i, j, k) + dt * (*drho)(i, j, k));
    (*mx)(i, j, k) += dt * (*dmx)(i, j, k);
    (*my)(i, j, k) += dt * (*dmy)(i, j, k);
    (*mz)(i, j, k) += dt * (*dmz)(i, j, k);
    (*ener)(i, j, k) =
        std::max(e_floor, (*ener)(i, j, k) + dt * (*dener)(i, j, k));
  });

  if (cfg_.packages.passive_scalar) {
    auto* scal = &state_.scal;
    auto* dscal = &d_scal_;
    forall_box(policy_, state_.owned, [=](long i, long j, long k) {
      (*scal)(i, j, k) += dt * (*dscal)(i, j, k);
    });
  }
}

void Solver::accumulate_scalar_fluxes() {
  // Mixing package: conservative donor-cell advection of rho*phi using the
  // SAME Rusanov mass flux as the hydro density update, so phi stays in
  // [min, max] of its neighborhood and the scalar integral is conserved.
  const ZoneRef f{&state_.rho, &state_.mx,  &state_.my, &state_.mz,
                  &state_.ener, &state_.prs, &state_.snd};
  const auto* rho = &state_.rho;
  const auto* scal = &state_.scal;
  auto* dscal = &d_scal_;
  const double inv_d[3] = {1.0 / cfg_.dx(), 1.0 / cfg_.dy(), 1.0 / cfg_.dz()};

  forall_box(policy_, state_.owned, [=](long i, long j, long k) {
    (*dscal)(i, j, k) = 0.0;
  });
  for (int axis = 0; axis < 3; ++axis) {
    const double inv = inv_d[axis];
    forall_box(policy_, state_.owned, [=](long i, long j, long k) {
      const long di = axis == 0 ? 1 : 0;
      const long dj = axis == 1 ? 1 : 0;
      const long dk = axis == 2 ? 1 : 0;
      // Mass flux through the low and high faces (identical arithmetic to
      // the hydro sweep), upwinded phi by its sign.
      const double mf_lo =
          rusanov(f, axis, i - di, j - dj, k - dk, i, j, k).rho;
      const double mf_hi =
          rusanov(f, axis, i, j, k, i + di, j + dj, k + dk).rho;
      auto phi = [&](long ii, long jj, long kk) {
        return (*scal)(ii, jj, kk) / (*rho)(ii, jj, kk);
      };
      const double flux_lo =
          mf_lo * (mf_lo >= 0 ? phi(i - di, j - dj, k - dk) : phi(i, j, k));
      const double flux_hi =
          mf_hi * (mf_hi >= 0 ? phi(i, j, k) : phi(i + di, j + dj, k + dk));
      (*dscal)(i, j, k) -= (flux_hi - flux_lo) * inv;
    });
  }
}

void Solver::accumulate_diffusion_fluxes() {
  // Diffusion package: conservative explicit diffusion of internal energy
  // density, dE/dt = div(kappa grad e_int). e_int is evaluated from the
  // time-n conserved state over owned+ghost zones, then a flux-form
  // Laplacian accumulates into the energy update.
  auto* eint = &eint_;
  const auto* rho = &state_.rho;
  const auto* mx = &state_.mx;
  const auto* my = &state_.my;
  const auto* mz = &state_.mz;
  const auto* ener = &state_.ener;
  forall_box(policy_, state_.owned.grown(1), [=](long i, long j, long k) {
    const double r = (*rho)(i, j, k);
    const double ke = 0.5 *
                      ((*mx)(i, j, k) * (*mx)(i, j, k) +
                       (*my)(i, j, k) * (*my)(i, j, k) +
                       (*mz)(i, j, k) * (*mz)(i, j, k)) /
                      r;
    (*eint)(i, j, k) = (*ener)(i, j, k) - ke;
  });

  auto* dener = &d_ener_;
  const double kappa = cfg_.packages.diffusivity;
  const double ix2 = 1.0 / (cfg_.dx() * cfg_.dx());
  const double iy2 = 1.0 / (cfg_.dy() * cfg_.dy());
  const double iz2 = 1.0 / (cfg_.dz() * cfg_.dz());
  forall_box(policy_, state_.owned, [=](long i, long j, long k) {
    const double e = (*eint)(i, j, k);
    const double lap =
        ((*eint)(i + 1, j, k) + (*eint)(i - 1, j, k) - 2 * e) * ix2 +
        ((*eint)(i, j + 1, k) + (*eint)(i, j - 1, k) - 2 * e) * iy2 +
        ((*eint)(i, j, k + 1) + (*eint)(i, j, k - 1) - 2 * e) * iz2;
    (*dener)(i, j, k) += kappa * lap;
  });
}

double Solver::local_dt() const {
  const Box& o = state_.owned;
  const double dx = cfg_.dx(), dy = cfg_.dy(), dz = cfg_.dz();
  double min_dt = std::numeric_limits<double>::max();
  // CFL reduction (ARES would use a RAJA ReduceMin; reductions are a
  // negligible share of the step so we keep them sequential).
  for (long k = o.lo.z; k < o.hi.z; ++k)
    for (long j = o.lo.y; j < o.hi.y; ++j)
      for (long i = o.lo.x; i < o.hi.x; ++i) {
        const double r = state_.rho(i, j, k);
        const double c = state_.snd(i, j, k);
        const double u = std::abs(state_.mx(i, j, k) / r);
        const double v = std::abs(state_.my(i, j, k) / r);
        const double w = std::abs(state_.mz(i, j, k) / r);
        min_dt = std::min({min_dt, dx / (u + c), dy / (v + c), dz / (w + c)});
      }
  double dt = cfg_.cfl * min_dt;
  if (cfg_.packages.diffusion && cfg_.packages.diffusivity > 0) {
    // Explicit FTCS stability in 3D: dt <= h^2 / (6 kappa).
    const double h2 = std::min({dx * dx, dy * dy, dz * dz});
    dt = std::min(dt, cfg_.packages.diffusion_safety * h2 /
                          (6.0 * cfg_.packages.diffusivity));
  }
  return dt;
}

Diagnostics Solver::local_diagnostics() const {
  const Box& o = state_.owned;
  const double dv = cfg_.dx() * cfg_.dy() * cfg_.dz();
  const double cx = 0.5 * cfg_.length, cy = 0.5 * cfg_.length,
               cz = 0.5 * cfg_.length;
  Diagnostics d;
  const bool scal = cfg_.packages.passive_scalar;
  if (scal) {
    d.scalar_min = std::numeric_limits<double>::max();
    d.scalar_max = std::numeric_limits<double>::lowest();
  }
  for (long k = o.lo.z; k < o.hi.z; ++k)
    for (long j = o.lo.y; j < o.hi.y; ++j)
      for (long i = o.lo.x; i < o.hi.x; ++i) {
        const double r = state_.rho(i, j, k);
        d.mass += r * dv;
        d.total_energy += state_.ener(i, j, k) * dv;
        if (r > d.max_density) {
          d.max_density = r;
          const double x = (static_cast<double>(i) + 0.5) * cfg_.dx() - cx;
          const double y = (static_cast<double>(j) + 0.5) * cfg_.dy() - cy;
          const double z = (static_cast<double>(k) + 0.5) * cfg_.dz() - cz;
          d.max_density_radius = std::sqrt(x * x + y * y + z * z);
        }
        if (scal) {
          d.scalar_mass += state_.scal(i, j, k) * dv;
          const double phi = state_.scal(i, j, k) / r;
          d.scalar_min = std::min(d.scalar_min, phi);
          d.scalar_max = std::max(d.scalar_max, phi);
        }
      }
  return d;
}

double sedov_shock_radius(double energy, double rho0, double t, double gamma) {
  // xi0 for gamma = 1.4 (Sedov 1946); the weak gamma dependence near 1.4 is
  // below the accuracy of the coarse-grid estimate this validates.
  (void)gamma;
  constexpr double xi0 = 1.15167;
  return xi0 * std::pow(energy * t * t / rho0, 0.2);
}

}  // namespace coop::hydro
