#include "support/prop.hpp"

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstdlib>

namespace prop = coop::prop;

namespace {

TEST(PropGen, SameSeedSameStream) {
  prop::Gen a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.bits(), b.bits());
}

TEST(PropGen, DifferentSeedsDiverge) {
  prop::Gen a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 10; ++i) differed |= a.bits() != b.bits();
  EXPECT_TRUE(differed);
}

TEST(PropGen, IntInRespectsBoundsAndHitsEndpoints) {
  prop::Gen g(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const long v = g.int_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PropGen, RealInHalfOpen) {
  prop::Gen g(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.real_in(2.0, 5.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(PropHarness, CaseSeedsAreDistinct) {
  EXPECT_NE(prop::case_seed(1, 0), prop::case_seed(1, 1));
  EXPECT_NE(prop::case_seed(1, 0), prop::case_seed(2, 0));
}

prop::Property<long> threshold_property() {
  // Holds iff x < 10; generator draws up to 1000, so most cases falsify.
  prop::Property<long> p;
  p.name = "x-below-10";
  p.generate = [](prop::Gen& g) { return g.int_in(0, 1000); };
  p.holds = [](const long& x, std::ostream& why) {
    if (x < 10) return true;
    why << x << " >= 10";
    return false;
  };
  p.shrink = [](const long& x) {
    std::vector<long> out;
    if (x / 2 < x) out.push_back(x / 2);
    if (x > 0) out.push_back(x - 1);
    return out;
  };
  p.show = [](const long& x, std::ostream& os) { os << x; };
  return p;
}

TEST(PropHarness, HoldingPropertyFindsNoCounterexample) {
  prop::Property<long> p;
  p.name = "tautology";
  p.generate = [](prop::Gen& g) { return g.int_in(0, 100); };
  p.holds = [](const long&, std::ostream&) { return true; };
  EXPECT_FALSE(prop::find_counterexample(p).has_value());
}

TEST(PropHarness, ShrinksToMinimalCounterexample) {
  const auto cex = prop::find_counterexample(threshold_property());
  ASSERT_TRUE(cex.has_value());
  // Greedy halving + decrement must land exactly on the boundary.
  EXPECT_EQ(cex->input, 10);
  EXPECT_FALSE(cex->why.empty());
}

TEST(PropHarness, SearchIsDeterministic) {
  const auto a = prop::find_counterexample(threshold_property());
  const auto b = prop::find_counterexample(threshold_property());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->input, b->input);
  EXPECT_EQ(a->seed, b->seed);
  EXPECT_EQ(a->case_index, b->case_index);
}

TEST(PropHarness, ReplaysExactCaseFromEnvSeed) {
  // First find a failure normally, then replay it through the env override:
  // the same seed must regenerate the same (unshrunk) original input, so a
  // printed CI seed reproduces locally.
  const auto found = prop::find_counterexample(threshold_property());
  ASSERT_TRUE(found.has_value());

  prop::Property<long> no_shrink = threshold_property();
  no_shrink.shrink = nullptr;
  const auto original = prop::find_counterexample(no_shrink);
  ASSERT_TRUE(original.has_value());

  ASSERT_EQ(setenv("COOPHET_PROP_SEED",
                   std::to_string(found->seed).c_str(), 1),
            0);
  const auto replayed = prop::find_counterexample(no_shrink);
  unsetenv("COOPHET_PROP_SEED");
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->seed, found->seed);
  EXPECT_EQ(replayed->case_index, -1);
  EXPECT_EQ(replayed->input, original->input);
}

TEST(PropHarness, CheckPrintsSeedAndRerunRecipeOnFailure) {
  EXPECT_NONFATAL_FAILURE(
      { prop::check(threshold_property()); }, "COOPHET_PROP_SEED=");
  EXPECT_NONFATAL_FAILURE({ prop::check(threshold_property()); },
                          "case seed");
}

TEST(PropHarness, CheckIsSilentWhenPropertyHolds) {
  prop::Property<long> p;
  p.name = "tautology";
  p.generate = [](prop::Gen& g) { return g.int_in(0, 100); };
  p.holds = [](const long&, std::ostream&) { return true; };
  prop::check(p);  // must not add a failure
}

TEST(PropHarness, ShrinkBudgetBoundsWork) {
  prop::Config cfg;
  cfg.max_shrink_steps = 1;
  const auto cex = prop::find_counterexample(threshold_property(), cfg);
  ASSERT_TRUE(cex.has_value());
  EXPECT_LE(cex->shrink_steps, 1);
  EXPECT_GE(cex->input, 10);  // partially shrunk but still a counterexample
}

}  // namespace
