#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "coop/core/timed_sim.hpp"
#include "coop/fault/fault_plan.hpp"
#include "support/prop.hpp"

/// Metamorphic properties of the fault model.
///
/// DESIGN.md section 8 claims the seeded plan sampler draws each fault kind
/// from a private SplitMix64 stream, so changing one kind's rate never
/// perturbs the arrivals of another kind — that is what makes resilience
/// ablations comparable ("same background faults, more GPU deaths"). These
/// tests lock that independence (randomized over configurations through the
/// property harness) and the recovery-policy trade-off it supports:
/// replaying from a sparser checkpoint history cannot reduce rework.

namespace core = coop::core;
namespace fault = coop::fault;
namespace prop = coop::prop;

namespace {

std::vector<fault::FaultEvent> events_of_kind(const fault::FaultPlan& plan,
                                              fault::FaultKind kind) {
  std::vector<fault::FaultEvent> out;
  for (const auto& e : plan.events)
    if (e.kind == kind) out.push_back(e);
  return out;
}

double* rate_field(fault::PlanConfig& cfg, fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kGpuDeath: return &cfg.gpu_death_rate;
    case fault::FaultKind::kTransientLaunch: return &cfg.transient_rate;
    case fault::FaultKind::kMpsCrash: return &cfg.mps_crash_rate;
    case fault::FaultKind::kSlowdown: return &cfg.slowdown_rate;
    case fault::FaultKind::kHaloDrop: return &cfg.halo_drop_rate;
    case fault::FaultKind::kPoolExhaustion: return &cfg.pool_exhaustion_rate;
  }
  return nullptr;
}

constexpr std::array<fault::FaultKind, 6> kAllKinds = {
    fault::FaultKind::kGpuDeath,      fault::FaultKind::kTransientLaunch,
    fault::FaultKind::kMpsCrash,      fault::FaultKind::kSlowdown,
    fault::FaultKind::kHaloDrop,      fault::FaultKind::kPoolExhaustion,
};

/// One metamorphic trial: a sampler configuration, a seed, and the kind
/// whose rate gets raised in the follow-up draw.
struct RateBump {
  fault::PlanConfig cfg;
  std::uint64_t seed = 0;
  fault::FaultKind bumped = fault::FaultKind::kGpuDeath;
  double new_rate = 1.0;
};

RateBump generate_rate_bump(prop::Gen& g) {
  RateBump t;
  t.cfg.horizon_s = g.real_in(5.0, 60.0);
  t.cfg.ranks = static_cast<int>(g.int_in(2, 16));
  t.cfg.nodes = static_cast<int>(g.int_in(1, 4));
  t.cfg.gpus_per_node = static_cast<int>(g.int_in(1, 4));
  t.cfg.max_burst = static_cast<int>(g.int_in(1, 4));
  for (auto kind : kAllKinds)
    *rate_field(t.cfg, kind) = g.coin(0.7) ? g.real_in(0.0, 0.5) : 0.0;
  t.seed = g.bits();
  t.bumped = kAllKinds[static_cast<std::size_t>(g.int_in(0, 5))];
  t.new_rate = *rate_field(t.cfg, t.bumped) + g.real_in(0.1, 2.0);
  return t;
}

TEST(FaultMetamorphic, RaisingOneRateLeavesOtherKindsBitwiseUnchanged) {
  prop::Property<RateBump> p;
  p.name = "per-kind streams are independent under rate changes";
  p.generate = generate_rate_bump;
  p.holds = [](const RateBump& t, std::ostream& why) {
    const auto base = fault::make_random_plan(t.seed, t.cfg);
    fault::PlanConfig raised_cfg = t.cfg;
    *rate_field(raised_cfg, t.bumped) = t.new_rate;
    const auto raised = fault::make_random_plan(t.seed, raised_cfg);
    for (auto kind : kAllKinds) {
      if (kind == t.bumped) continue;
      if (events_of_kind(base, kind) != events_of_kind(raised, kind)) {
        why << "raising " << fault::to_string(t.bumped) << " perturbed "
            << fault::to_string(kind) << " arrivals";
        return false;
      }
    }
    return true;
  };
  p.show = [](const RateBump& t, std::ostream& os) {
    os << "seed " << t.seed << ", horizon " << t.cfg.horizon_s << ", bump "
       << fault::to_string(t.bumped) << " -> " << t.new_rate;
  };
  prop::Config cfg;
  cfg.cases = 40;
  prop::check(p, cfg);
}

TEST(FaultMetamorphic, BumpedKindKeepsItsOwnPrefixUnderRateIncrease) {
  // Within one kind, a thinning-style sampler would keep earlier arrivals as
  // a subset when the rate rises. Ours redraws the kind's stream, so we lock
  // the weaker (and sufficient) contract instead: the bumped kind's expected
  // event count does not fall, and every drawn event stays inside the
  // horizon and validates against the topology.
  fault::PlanConfig pc;
  pc.horizon_s = 40.0;
  pc.ranks = 8;
  pc.nodes = 2;
  pc.gpus_per_node = 4;
  pc.transient_rate = 0.2;
  const auto low = fault::make_random_plan(99, pc);
  pc.transient_rate = 2.0;
  const auto high = fault::make_random_plan(99, pc);
  EXPECT_GT(events_of_kind(high, fault::FaultKind::kTransientLaunch).size(),
            events_of_kind(low, fault::FaultKind::kTransientLaunch).size());
  high.validate(pc.ranks, pc.nodes, pc.gpus_per_node);
  for (const auto& e : high.events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, pc.horizon_s);
  }
}

TEST(FaultMetamorphic, ReworkTimeMonotoneInCheckpointInterval) {
  // Fixed death time, growing checkpoint spacing: the replay window can only
  // reach further back (interval 0 replays just the aborted step), so
  // rework_time is monotone non-decreasing across doubling intervals.
  core::TimedConfig tc;
  tc.mode = core::NodeMode::kOneRankPerGpu;
  tc.global = coop::mesh::Box{{0, 0, 0}, {320, 96, 160}};
  tc.timesteps = 16;
  const auto clean = core::run_timed(tc);
  const double death_time = 10.6 * clean.iteration_times.front();

  fault::FaultPlan plan;
  plan.add({.time = death_time, .kind = fault::FaultKind::kGpuDeath,
            .node = 0, .gpu = 1});
  tc.faults = &plan;

  const double iter = clean.iteration_times.front();
  std::vector<int> intervals = {0, 1, 2, 4, 8, 16};
  std::vector<double> rework;
  std::vector<int> replayed;
  for (int interval : intervals) {
    tc.recovery.checkpoint_interval = interval;
    const auto r = core::run_timed(tc);
    ASSERT_EQ(r.resilience.rollbacks, 1) << "interval " << interval;
    rework.push_back(r.resilience.rework_time);
    replayed.push_back(r.resilience.replayed_iterations);
  }
  for (std::size_t i = 1; i < rework.size(); ++i) {
    // The replay window itself (in iterations) is exactly monotone.
    EXPECT_GE(replayed[i], replayed[i - 1])
        << "intervals " << intervals[i - 1] << " -> " << intervals[i];
    // The window's wall time is monotone up to one checkpoint write, which
    // may land inside one interval's replay span but not the other's.
    EXPECT_GE(rework[i], rework[i - 1] - 0.5 * iter)
        << "intervals " << intervals[i - 1] << " -> " << intervals[i];
  }
  // The endpoints differ sharply for this death time: interval 0 replays a
  // single step, interval 16 replays the whole prefix, so the monotone
  // chain is not vacuous and dominates the checkpoint-write slack.
  EXPECT_EQ(replayed.front(), 1);
  EXPECT_GE(replayed.back(), 8);
  EXPECT_GT(rework.back(), 5.0 * rework.front());
}

}  // namespace
