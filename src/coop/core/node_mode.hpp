#pragma once

#include <stdexcept>
#include <string>

#include "coop/decomp/decomposition.hpp"
#include "coop/devmodel/specs.hpp"
#include "coop/mesh/box.hpp"

/// \file node_mode.hpp
/// The four modes of utilizing a heterogeneous node (paper Figs. 1-4) and
/// the control code that maps a mode to rank roles and a decomposition.

namespace coop::core {

/// Paper Figs. 1-4.
enum class NodeMode {
  kCpuOnly,        ///< Fig. 1: an MPI rank per core, GPUs idle
  kOneRankPerGpu,  ///< Fig. 2: "Default" — 1 MPI/GPU, other cores idle
  kMpsPerGpu,      ///< Fig. 3: "MPS" — n MPI/GPU share each GPU via MPS
  kHeterogeneous,  ///< Fig. 4: 1 MPI/GPU + remaining cores compute on CPU
};

[[nodiscard]] constexpr const char* to_string(NodeMode m) noexcept {
  switch (m) {
    case NodeMode::kCpuOnly: return "cpu-only";
    case NodeMode::kOneRankPerGpu: return "default-1mpi-per-gpu";
    case NodeMode::kMpsPerGpu: return "mps-n-mpi-per-gpu";
    case NodeMode::kHeterogeneous: return "heterogeneous";
  }
  return "?";
}

/// Rank counts implied by a mode on a given node.
struct RankLayout {
  int total_ranks = 0;
  int gpu_ranks = 0;       ///< ranks driving a GPU
  int cpu_ranks = 0;       ///< ranks computing on CPU cores
  int ranks_per_gpu = 0;   ///< GPU-sharing factor (MPS)
  int active_cores = 0;    ///< host cores bound to some rank
};

/// Computes the rank layout for `mode` on `node`. `ranks_per_gpu` applies to
/// the MPS mode only (the paper uses 4).
[[nodiscard]] RankLayout make_rank_layout(NodeMode mode,
                                          const devmodel::NodeSpec& node,
                                          int ranks_per_gpu = 4);

/// Builds the decomposition a mode prescribes (paper Fig. 10):
///  * CpuOnly       — near-cubic blocks, one per core;
///  * OneRankPerGpu — one y-slab per GPU;
///  * MpsPerGpu     — hierarchical: GPU slabs then y-subdivision;
///  * Heterogeneous — GPU slabs with thin CPU y-slabs carved out
///    (`cpu_fraction` of the zones, subject to the one-plane floor).
[[nodiscard]] decomp::Decomposition make_decomposition(
    NodeMode mode, const devmodel::NodeSpec& node, const mesh::Box& global,
    int ranks_per_gpu = 4, double cpu_fraction = 0.02);

/// Multi-node decomposition: the global box is first split across `nodes`
/// along z (keeping y free for the per-node hierarchy and x innermost),
/// then each node slab is decomposed by the mode as in the single-node
/// case. Rank ids are dense across the cluster; `node_id` records the
/// placement. ARES's own decomposition works the same way: MPI-spatial
/// across the machine, then per-node structure.
[[nodiscard]] decomp::Decomposition make_cluster_decomposition(
    NodeMode mode, const devmodel::NodeSpec& node, const mesh::Box& global,
    int nodes, int ranks_per_gpu = 4, double cpu_fraction = 0.02);

}  // namespace coop::core
