#pragma once

#include <functional>
#include <ios>
#include <ostream>
#include <string>

/// \file artifact_io.hpp
/// Crash-safe artifact writing: every machine-readable output (BENCH_*.json,
/// traces, sweep journals, metrics snapshots) goes through
/// `atomic_write_file`, which writes `<path>.tmp` and renames it into place
/// only after a successful flush. A reader — CI's json_lint, a resuming
/// sweep, a dashboard — therefore never observes a truncated file at the
/// final path: it sees the old content or the new content, nothing between.

namespace coop::obs {

/// Typed I/O failure. Derives from std::ios_base::failure (and therefore
/// std::runtime_error), so legacy `catch (std::runtime_error)` sites still
/// work while `core::classify_current_exception` maps it to SimError kIo —
/// the transient kind the sweep supervisor retries.
class IoError : public std::ios_base::failure {
 public:
  explicit IoError(const std::string& what) : std::ios_base::failure(what) {}
};

/// Writes `path` atomically: `write` streams the content into `<path>.tmp`,
/// which is flushed, closed, and renamed over `path`. On any failure —
/// open, stream error (badbit/failbit), or rename — the tmp file is removed
/// and IoError is thrown; `path` is left untouched. Exceptions thrown by
/// `write` itself propagate unchanged (tmp still cleaned up).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write);

}  // namespace coop::obs
