#include "coop/forall/kernel_timers.hpp"

#include <algorithm>

namespace coop::forall {

std::vector<std::pair<std::string, KernelTimerRegistry::Entry>>
KernelTimerRegistry::sorted() const {
  std::vector<std::pair<std::string, Entry>> out(entries_.begin(),
                                                 entries_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.seconds != b.second.seconds)
      return a.second.seconds > b.second.seconds;
    return a.first < b.first;  // deterministic order for equal-time kernels
  });
  return out;
}

}  // namespace coop::forall
