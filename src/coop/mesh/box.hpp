#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <vector>

/// \file box.hpp
/// Index-space geometry for the block-structured mesh: 3D integer boxes
/// (half-open) and the split operations the decompositions are built from.

namespace coop::mesh {

struct Index3 {
  long x = 0, y = 0, z = 0;
  friend bool operator==(const Index3&, const Index3&) = default;
};

/// Axis selector; the paper's decompositions cut along y (axis 1) so the
/// innermost (x) extent is preserved for every approach (Fig. 10).
enum class Axis : int { kX = 0, kY = 1, kZ = 2 };

/// Half-open axis-aligned box of zone indices: [lo, hi).
struct Box {
  Index3 lo{};
  Index3 hi{};

  [[nodiscard]] long nx() const noexcept { return hi.x - lo.x; }
  [[nodiscard]] long ny() const noexcept { return hi.y - lo.y; }
  [[nodiscard]] long nz() const noexcept { return hi.z - lo.z; }
  [[nodiscard]] long extent(Axis a) const noexcept {
    switch (a) {
      case Axis::kX: return nx();
      case Axis::kY: return ny();
      case Axis::kZ: return nz();
    }
    return 0;
  }
  [[nodiscard]] long zones() const noexcept {
    return empty() ? 0 : nx() * ny() * nz();
  }
  [[nodiscard]] bool empty() const noexcept {
    return nx() <= 0 || ny() <= 0 || nz() <= 0;
  }
  [[nodiscard]] bool contains(Index3 p) const noexcept {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }

  /// Largest box contained in both (possibly empty).
  [[nodiscard]] Box intersect(const Box& o) const noexcept {
    Box r;
    r.lo = {std::max(lo.x, o.lo.x), std::max(lo.y, o.lo.y),
            std::max(lo.z, o.lo.z)};
    r.hi = {std::min(hi.x, o.hi.x), std::min(hi.y, o.hi.y),
            std::min(hi.z, o.hi.z)};
    return r;
  }

  /// True when the boxes share a full face (touch along exactly one axis and
  /// overlap on the other two) — the halo-exchange adjacency relation.
  [[nodiscard]] bool face_adjacent(const Box& o) const noexcept;

  /// Splits at `plane` (global index) along `axis` into [lo, plane) and
  /// [plane, hi). `plane` must lie strictly inside.
  [[nodiscard]] std::array<Box, 2> split_at(Axis axis, long plane) const;

  /// Grows the box by `g` in every direction (ghost frame).
  [[nodiscard]] Box grown(long g) const noexcept {
    return Box{{lo.x - g, lo.y - g, lo.z - g}, {hi.x + g, hi.y + g, hi.z + g}};
  }

  friend bool operator==(const Box&, const Box&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << "[" << b.lo.x << "," << b.lo.y << "," << b.lo.z << ")..["
              << b.hi.x << "," << b.hi.y << "," << b.hi.z << ")";
  }
};

inline bool Box::face_adjacent(const Box& o) const noexcept {
  if (empty() || o.empty()) return false;
  int touching = 0, overlapping = 0;
  const auto axis_relation = [&](long alo, long ahi, long blo, long bhi) {
    if (ahi == blo || bhi == alo) ++touching;
    else if (std::max(alo, blo) < std::min(ahi, bhi)) ++overlapping;
  };
  axis_relation(lo.x, hi.x, o.lo.x, o.hi.x);
  axis_relation(lo.y, hi.y, o.lo.y, o.hi.y);
  axis_relation(lo.z, hi.z, o.lo.z, o.hi.z);
  return touching == 1 && overlapping == 2;
}

inline std::array<Box, 2> Box::split_at(Axis axis, long plane) const {
  Box a = *this, b = *this;
  switch (axis) {
    case Axis::kX:
      if (plane <= lo.x || plane >= hi.x)
        throw std::invalid_argument("Box::split_at: plane outside box");
      a.hi.x = plane;
      b.lo.x = plane;
      break;
    case Axis::kY:
      if (plane <= lo.y || plane >= hi.y)
        throw std::invalid_argument("Box::split_at: plane outside box");
      a.hi.y = plane;
      b.lo.y = plane;
      break;
    case Axis::kZ:
      if (plane <= lo.z || plane >= hi.z)
        throw std::invalid_argument("Box::split_at: plane outside box");
      a.hi.z = plane;
      b.lo.z = plane;
      break;
  }
  return {a, b};
}

/// Splits `box` along `axis` into `parts` near-equal pieces (remainder
/// spread over the leading pieces); used by the "square" block decomposition.
[[nodiscard]] std::vector<Box> split_even(const Box& box, Axis axis,
                                          int parts);

/// Splits `box` along `axis` into pieces whose extents are proportional to
/// `weights` (each piece gets at least `min_extent` planes when its weight is
/// nonzero). Throws if the extents cannot accommodate the minimums.
[[nodiscard]] std::vector<Box> split_weighted(const Box& box, Axis axis,
                                              const std::vector<double>& weights,
                                              long min_extent = 1);

}  // namespace coop::mesh
