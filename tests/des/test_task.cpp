#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "coop/des/engine.hpp"
#include "coop/des/task.hpp"

namespace des = coop::des;

namespace {

des::Task<int> compute(des::Engine& eng, int x) {
  co_await eng.delay(1.0);
  co_return x * x;
}

TEST(Task, AwaitedSubtaskReturnsValue) {
  des::Engine eng;
  int result = 0;
  auto parent = [](des::Engine& e, int& r) -> des::Task<void> {
    r = co_await compute(e, 7);
  };
  eng.spawn(parent(eng, result));
  eng.run();
  EXPECT_EQ(result, 49);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Task, NestedSubtasksComposeTimes) {
  des::Engine eng;
  double finish = -1;
  auto inner = [](des::Engine& e) -> des::Task<int> {
    co_await e.delay(2.0);
    co_return 1;
  };
  auto middle = [&inner](des::Engine& e) -> des::Task<int> {
    int a = co_await inner(e);
    int b = co_await inner(e);
    co_return a + b;
  };
  auto outer = [&middle](des::Engine& e, double& f) -> des::Task<void> {
    int total = co_await middle(e);
    EXPECT_EQ(total, 2);
    f = e.now();
  };
  eng.spawn(outer(eng, finish));
  eng.run();
  EXPECT_DOUBLE_EQ(finish, 4.0);
}

TEST(Task, SubtaskExceptionPropagatesToParent) {
  des::Engine eng;
  bool caught = false;
  auto failing = [](des::Engine& e) -> des::Task<int> {
    co_await e.delay(1.0);
    throw std::runtime_error("inner failure");
  };
  auto parent = [&failing](des::Engine& e, bool& c) -> des::Task<void> {
    try {
      (void)co_await failing(e);
    } catch (const std::runtime_error& ex) {
      c = std::string(ex.what()) == "inner failure";
    }
  };
  eng.spawn(parent(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ValuelessSubtaskCompletesInline) {
  des::Engine eng;
  std::vector<int> trace;
  auto child = [](std::vector<int>& t) -> des::Task<void> {
    t.push_back(2);
    co_return;
  };
  auto parent = [&child](std::vector<int>& t) -> des::Task<void> {
    t.push_back(1);
    co_await child(t);
    t.push_back(3);
  };
  eng.spawn(parent(trace));
  eng.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Task, MoveTransfersOwnership) {
  des::Task<int> t;  // default: invalid
  EXPECT_FALSE(t.valid());
  des::Engine eng;
  des::Task<int> u = compute(eng, 3);
  EXPECT_TRUE(u.valid());
  des::Task<int> v = std::move(u);
  EXPECT_FALSE(u.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(v.valid());
}

TEST(Task, StringResult) {
  des::Engine eng;
  std::string result;
  auto greet = [](des::Engine& e) -> des::Task<std::string> {
    co_await e.delay(0.5);
    co_return std::string("hello");
  };
  auto parent = [&greet](des::Engine& e, std::string& r) -> des::Task<void> {
    r = co_await greet(e);
  };
  eng.spawn(parent(eng, result));
  eng.run();
  EXPECT_EQ(result, "hello");
}

TEST(Task, DeepRecursionOfSubtasks) {
  des::Engine eng;
  int result = 0;
  // sum(n) = n + sum(n-1), each level taking 0 simulated time.
  struct Rec {
    static des::Task<int> sum(des::Engine& e, int n) {
      if (n == 0) co_return 0;
      int rest = co_await sum(e, n - 1);
      co_return n + rest;
    }
  };
  auto parent = [](des::Engine& e, int& r) -> des::Task<void> {
    r = co_await Rec::sum(e, 200);
  };
  eng.spawn(parent(eng, result));
  eng.run();
  EXPECT_EQ(result, 200 * 201 / 2);
}

}  // namespace
