/// Scenario service daemon tests: the content-addressed LRU result cache,
/// the single-flight dedup contract (K identical concurrent queries => one
/// execution, K identical byte streams; a mid-flight failure fans the same
/// typed error to every waiter without poisoning the cache), admission
/// integration (queued leaders promoted, shed outcomes), and the
/// coophet.service_stats artifact.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coop/core/sim_error.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/service/result_cache.hpp"
#include "coop/service/scenario_server.hpp"
#include "support/json_check.hpp"

namespace core = coop::core;
namespace service = coop::service;
namespace json = coophet_test::json;

namespace {

service::ScenarioQuery tiny_query(int timesteps = 2) {
  // 16^3 is the smallest extent every mode's rank decomposition accepts;
  // distinct scenarios therefore differ by timesteps, not by dims.
  service::ScenarioQuery q;
  q.x = q.y = q.z = 16;
  q.timesteps = timesteps;
  return q;
}

service::ResultCache::Bytes bytes_of(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

// --- ResultCache -------------------------------------------------------------

TEST(ResultCache, ZeroCapacityIsATypedConfigError) {
  try {
    service::ResultCache cache(0);
    FAIL() << "capacity 0 accepted";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kConfig);
  }
}

TEST(ResultCache, EvictsLeastRecentlyUsedAtCapacity) {
  service::ResultCache cache(2);
  cache.put("a", bytes_of("A"));
  cache.put("b", bytes_of("B"));
  // Touch "a": "b" becomes the eviction victim.
  EXPECT_NE(cache.get("a"), nullptr);
  cache.put("c", bytes_of("C"));
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  const auto s = cache.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(cache.keys_mru_first(), (std::vector<std::string>{"c", "a"}));
}

TEST(ResultCache, PeekDoesNotTouchRecencyOrCounters) {
  service::ResultCache cache(2);
  cache.put("a", bytes_of("A"));
  cache.put("b", bytes_of("B"));
  EXPECT_NE(cache.peek("a"), nullptr);  // no recency bump
  const auto before = cache.stats();
  EXPECT_EQ(before.hits, 0u);
  EXPECT_EQ(before.misses, 0u);
  cache.put("c", bytes_of("C"));
  EXPECT_EQ(cache.peek("a"), nullptr) << "peek must not have protected 'a'";
}

TEST(ResultCache, EvictionNeverInvalidatesHandedOutBytes) {
  service::ResultCache cache(1);
  cache.put("a", bytes_of("the old content"));
  const service::ResultCache::Bytes held = cache.get("a");
  cache.put("b", bytes_of("B"));  // evicts "a"
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "the old content");
}

TEST(ResultCache, PutRefreshesExistingKeyWithoutGrowth) {
  service::ResultCache cache(2);
  cache.put("a", bytes_of("v1"));
  cache.put("b", bytes_of("B"));
  cache.put("a", bytes_of("v2"));  // refresh, not insert
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.get("a"), "v2");
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.keys_mru_first(), (std::vector<std::string>{"a", "b"}));
}

// --- Server basics -----------------------------------------------------------

TEST(ScenarioServer, OutcomeNamesAreStable) {
  EXPECT_STREQ(service::to_string(service::ServeOutcome::kHit), "hit");
  EXPECT_STREQ(service::to_string(service::ServeOutcome::kMiss), "miss");
  EXPECT_STREQ(service::to_string(service::ServeOutcome::kCoalesced),
               "coalesced");
  EXPECT_STREQ(service::to_string(service::ServeOutcome::kShedRate),
               "shed_rate");
  EXPECT_STREQ(service::to_string(service::ServeOutcome::kShedQueueFull),
               "shed_queue_full");
}

TEST(ScenarioServer, ColdRunThenHitServesIdenticalRunReportBytes) {
  service::ScenarioServer server;
  const auto q = tiny_query();
  const auto cold = server.submit(q, 0.0);
  EXPECT_EQ(cold.outcome, service::ServeOutcome::kMiss);
  ASSERT_NE(cold.report, nullptr);

  // The served bytes are a schema-valid versioned run report.
  const json::ParseResult parsed = json::parse(*cold.report);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(json::check_artifact_schema(parsed.value, "coophet.run_report"),
            "");

  const auto hit = server.submit(q, 1.0);
  EXPECT_EQ(hit.outcome, service::ServeOutcome::kHit);
  ASSERT_NE(hit.report, nullptr);
  // Deterministic simulation + deterministic writer: the hit returns the
  // exact bytes of the cold run (same shared buffer, in fact).
  EXPECT_EQ(hit.report, cold.report);
  EXPECT_EQ(hit.key, cold.key);

  const auto s = server.stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.executions, 1u);
}

TEST(ScenarioServer, LruCapacityBoundsTheScenarioUniverse) {
  service::ScenarioServerConfig cfg;
  cfg.cache_capacity = 2;
  service::ScenarioServer server(std::move(cfg));
  const auto q1 = tiny_query(3);
  const auto q2 = tiny_query(4);
  const auto q3 = tiny_query(5);
  EXPECT_EQ(server.submit(q1, 0.0).outcome, service::ServeOutcome::kMiss);
  EXPECT_EQ(server.submit(q2, 1.0).outcome, service::ServeOutcome::kMiss);
  EXPECT_EQ(server.submit(q3, 2.0).outcome, service::ServeOutcome::kMiss);
  // q1 was evicted; q3 and q2 remain.
  EXPECT_EQ(server.submit(q2, 3.0).outcome, service::ServeOutcome::kHit);
  EXPECT_EQ(server.submit(q1, 4.0).outcome, service::ServeOutcome::kMiss);
  EXPECT_EQ(server.cache().stats().evictions, 2u);
}

// --- Single-flight dedup -----------------------------------------------------

TEST(ScenarioServer, ConcurrentIdenticalQueriesExecuteExactlyOnce) {
  constexpr int kClients = 8;
  service::ScenarioServerConfig cfg;
  service::ScenarioServer* server_ptr = nullptr;
  // Rendezvous: the leader parks in the hook until the other kClients - 1
  // requests joined its flight, so coalescing is certain, not timing luck.
  cfg.execution_hook = [&](const service::ScenarioQuery&,
                           const std::string& key) {
    while (server_ptr->inflight_waiters(key) <
           static_cast<std::uint64_t>(kClients - 1))
      std::this_thread::yield();
  };
  service::ScenarioServer server(std::move(cfg));
  server_ptr = &server;

  const auto q = tiny_query();
  std::vector<service::ScenarioResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back(
        [&, i] { responses[static_cast<std::size_t>(i)] = server.submit(q, 0.0); });
  for (auto& t : clients) t.join();

  const auto s = server.stats();
  EXPECT_EQ(s.executions, 1u) << "dedup contract: one simulation for "
                              << kClients << " identical queries";
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.coalesced, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(s.hits, 0u);

  int miss_count = 0, coalesced_count = 0;
  for (const auto& r : responses) {
    ASSERT_NE(r.report, nullptr);
    // All K responses carry the same bytes — pointer-identical buffers.
    EXPECT_EQ(r.report, responses[0].report);
    if (r.outcome == service::ServeOutcome::kMiss) ++miss_count;
    if (r.outcome == service::ServeOutcome::kCoalesced) ++coalesced_count;
  }
  EXPECT_EQ(miss_count, 1);
  EXPECT_EQ(coalesced_count, kClients - 1);
}

TEST(ScenarioServer, MidFlightFailureFansTheTypedErrorToAllWaiters) {
  constexpr int kClients = 6;
  std::atomic<bool> fail_once{true};
  std::atomic<std::uint64_t> want_waiters{kClients - 1};
  service::ScenarioServerConfig cfg;
  service::ScenarioServer* server_ptr = nullptr;
  cfg.execution_hook = [&](const service::ScenarioQuery&,
                           const std::string& key) {
    while (server_ptr->inflight_waiters(key) < want_waiters.load())
      std::this_thread::yield();
    if (fail_once.exchange(false))
      core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                            "injected mid-flight failure", 7);
  };
  service::ScenarioServer server(std::move(cfg));
  server_ptr = &server;

  const auto q = tiny_query();
  std::vector<core::SimError> errors(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      try {
        (void)server.submit(q, 0.0);
        ADD_FAILURE() << "client " << i << " did not observe the failure";
      } catch (const core::SimErrorCarrier& c) {
        errors[static_cast<std::size_t>(i)] = c.error();
      }
    });
  for (auto& t : clients) t.join();

  // Leader and every waiter saw the same typed payload.
  for (const auto& e : errors) {
    EXPECT_EQ(e.kind, core::SimErrorKind::kFaultUnrecoverable);
    EXPECT_EQ(e.context, "injected mid-flight failure");
    EXPECT_EQ(e.cell, 7);
  }
  auto s = server.stats();
  EXPECT_EQ(s.executions, 1u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.misses, 0u);

  // The failure never reached the cache: the next submit re-executes and
  // succeeds (the hook's one-shot failure is spent, and the rendezvous
  // target drops to zero so the solo retry passes straight through).
  want_waiters.store(0);
  EXPECT_EQ(server.cache().size(), 0u);
  const auto retry = server.submit(q, 1.0);
  EXPECT_EQ(retry.outcome, service::ServeOutcome::kMiss);
  ASSERT_NE(retry.report, nullptr);
  s = server.stats();
  EXPECT_EQ(s.executions, 2u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.misses, 1u);
}

// --- Admission integration ---------------------------------------------------

TEST(ScenarioServer, RateShedReturnsNoBytesAndTouchesNothing) {
  service::ScenarioServerConfig cfg;
  cfg.admission.rate_per_s = 0.001;
  cfg.admission.burst = 1.0;
  service::ScenarioServer server(std::move(cfg));
  const auto first = server.submit(tiny_query(3), 0.0);
  EXPECT_EQ(first.outcome, service::ServeOutcome::kMiss);
  // The single banked token is spent: a *different* scenario is shed...
  const auto shed = server.submit(tiny_query(4), 0.0);
  EXPECT_EQ(shed.outcome, service::ServeOutcome::kShedRate);
  EXPECT_EQ(shed.report, nullptr);
  // ...but a repeat of the cached scenario is served without admission.
  EXPECT_EQ(server.submit(tiny_query(3), 0.0).outcome,
            service::ServeOutcome::kHit);
  const auto s = server.stats();
  EXPECT_EQ(s.shed_rate, 1u);
  EXPECT_EQ(s.executions, 1u);
}

TEST(ScenarioServer, FullQueueShedsWhileALeaderIsExecuting) {
  std::atomic<bool> release{false};
  std::atomic<bool> executing{false};
  service::ScenarioServerConfig cfg;
  cfg.admission.max_in_flight = 1;
  cfg.admission.max_queue = 0;
  cfg.execution_hook = [&](const service::ScenarioQuery&,
                           const std::string&) {
    executing.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  service::ScenarioServer server(std::move(cfg));

  std::thread leader(
      [&] { (void)server.submit(tiny_query(3), 0.0); });
  while (!executing.load()) std::this_thread::yield();
  // The only slot is occupied and the queue holds zero: shed.
  const auto shed = server.submit(tiny_query(4), 0.0);
  EXPECT_EQ(shed.outcome, service::ServeOutcome::kShedQueueFull);
  EXPECT_EQ(shed.report, nullptr);
  release.store(true);
  leader.join();
  EXPECT_EQ(server.stats().shed_queue_full, 1u);
}

TEST(ScenarioServer, QueuedLeaderIsPromotedAndExecutes) {
  std::atomic<bool> release{false};
  std::atomic<bool> executing{false};
  std::atomic<int> executions{0};
  service::ScenarioServerConfig cfg;
  cfg.admission.max_in_flight = 1;
  cfg.admission.max_queue = 4;
  cfg.execution_hook = [&](const service::ScenarioQuery&,
                           const std::string&) {
    // Only the first execution parks; the promoted one runs straight through.
    if (executions.fetch_add(1) == 0) {
      executing.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  };
  service::ScenarioServer server(std::move(cfg));

  std::thread first([&] {
    EXPECT_EQ(server.submit(tiny_query(3), 0.0).outcome,
              service::ServeOutcome::kMiss);
  });
  while (!executing.load()) std::this_thread::yield();
  std::thread second([&] {
    // Queued behind the busy slot; promoted when `first` completes; then
    // executes its own scenario.
    const auto r = server.submit(tiny_query(4), 0.0);
    EXPECT_EQ(r.outcome, service::ServeOutcome::kMiss);
    ASSERT_NE(r.report, nullptr);
  });
  // Wait until the second request is actually queued before releasing.
  while (server.admission_stats().queued == 0) std::this_thread::yield();
  release.store(true);
  first.join();
  second.join();

  const auto a = server.admission_stats();
  EXPECT_EQ(a.admitted, 1u);
  EXPECT_EQ(a.queued, 1u);
  EXPECT_EQ(a.promoted, 1u);
  EXPECT_EQ(a.completed, 2u);
  EXPECT_EQ(server.stats().executions, 2u);
}

// --- Artifacts and metrics ---------------------------------------------------

TEST(ScenarioServer, ServiceStatsArtifactIsSchemaValid) {
  service::ScenarioServer server;
  (void)server.submit(tiny_query(), 0.0);
  (void)server.submit(tiny_query(), 1.0);
  std::ostringstream os;
  server.write_service_stats(os);

  const json::ParseResult parsed = json::parse(os.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(json::check_artifact_schema(parsed.value,
                                        service::kServiceStatsSchemaName),
            "");
  EXPECT_EQ(json::first_missing_key(
                parsed.value,
                {"requests", "hits", "misses", "executions", "coalesced",
                 "shed_rate", "shed_queue_full", "errors", "cache",
                 "admission"}),
            "");
  EXPECT_EQ(parsed.value.find("requests")->number, 2.0);
  EXPECT_EQ(parsed.value.find("hits")->number, 1.0);
  const json::Value* cache = parsed.value.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(json::first_missing_key(*cache, {"capacity", "size", "hits",
                                             "misses", "insertions",
                                             "evictions"}),
            "");
  const json::Value* admission = parsed.value.find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(json::first_missing_key(
                *admission, {"offered", "admitted", "queued", "promoted",
                             "shed_rate", "shed_queue_full", "completed",
                             "peak_in_flight", "peak_queue_depth"}),
            "");
}

TEST(ScenarioServer, PublishesServiceMetrics) {
  service::ScenarioServer server;
  (void)server.submit(tiny_query(), 0.0);
  (void)server.submit(tiny_query(), 1.0);
  coop::obs::MetricsRegistry metrics;
  server.publish_metrics(metrics);
  std::ostringstream os;
  metrics.write_json(os, 0.0);
  const std::string out = os.str();
  for (const char* name :
       {"service.requests", "service.hits", "service.misses",
        "service.executions", "service.coalesced", "service.hit_ratio",
        "service.cache_size", "service.cache_evictions",
        "admission.offered"})
    EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(ScenarioServerConfig, ZeroCacheCapacityIsATypedConfigError) {
  service::ScenarioServerConfig cfg;
  cfg.cache_capacity = 0;
  try {
    cfg.validate();
    FAIL() << "validate accepted cache_capacity 0";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kConfig);
  }
  try {
    service::ScenarioServer server(std::move(cfg));
    FAIL() << "server constructed with cache_capacity 0";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kConfig);
  }
}

}  // namespace
