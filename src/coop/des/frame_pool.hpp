#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

/// \file frame_pool.hpp
/// Thread-local free-list allocator for coroutine frames.
///
/// DES workloads allocate one coroutine frame per simulation process and
/// retire it within the same run; the GpuServer burst pattern churns
/// thousands of identically-sized wakeup/execute frames per simulated step.
/// Routing promise allocation through a per-thread, size-bucketed free list
/// turns that churn into pointer pops instead of malloc round-trips.
///
/// Thread-safety: the pool is strictly thread-local, so no locking. Tasks are
/// movable, so a frame MAY be freed on a different thread than the one that
/// allocated it; that is safe — the block simply migrates into the freeing
/// thread's pool (the underlying storage always comes from the global heap,
/// and cross-thread malloc/free is well-defined). Each pool frees its
/// retained blocks on thread exit.

namespace coop::des::detail {

class FramePool {
 public:
  /// Frames are bucketed by size rounded up to this granularity, so frames
  /// of nearby sizes share a free list.
  static constexpr std::size_t kGranularity = 64;
  /// Frames larger than this bypass the pool (rare) and use the heap.
  static constexpr std::size_t kMaxPooledBytes = 2048;
  /// Retained blocks per bucket are capped to bound idle memory.
  static constexpr std::size_t kMaxPerBucket = 1024;

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() {
    for (Node*& head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        std::free(head);
        head = next;
      }
    }
  }

  void* allocate(std::size_t n) {
    const std::size_t b = bucket_of(n);
    if (b < kBuckets && buckets_[b] != nullptr) {
      Node* node = buckets_[b];
      buckets_[b] = node->next;
      --counts_[b];
      return node;
    }
    // Allocate the full bucket width so the block is reusable for any frame
    // that maps to the same bucket.
    const std::size_t bytes = b < kBuckets ? (b + 1) * kGranularity : n;
    void* p = std::malloc(bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
  }

  void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t b = bucket_of(n);
    if (b < kBuckets && counts_[b] < kMaxPerBucket) {
      Node* node = static_cast<Node*>(p);
      node->next = buckets_[b];
      buckets_[b] = node;
      ++counts_[b];
      return;
    }
    std::free(p);
  }

 private:
  struct Node {
    Node* next;
  };
  static constexpr std::size_t kBuckets = kMaxPooledBytes / kGranularity;
  static constexpr std::size_t bucket_of(std::size_t n) noexcept {
    // n >= 1 always (a frame at least holds its promise).
    return (n + kGranularity - 1) / kGranularity - 1;
  }

  Node* buckets_[kBuckets] = {};
  std::size_t counts_[kBuckets] = {};
};

inline FramePool& frame_pool() noexcept {
  thread_local FramePool pool;
  return pool;
}

}  // namespace coop::des::detail
