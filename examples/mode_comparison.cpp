/// Mode comparison: the paper's Section 7 experiment in one command.
/// Runs the timed node simulation for all four modes of utilizing the
/// heterogeneous node (paper Figs. 1-4) on a chosen problem, and prints the
/// per-mode breakdown (compute balance, communication, CPU share).
///
/// Usage: mode_comparison [x y z] [steps]   (default 600 480 160, 100)

#include <cstdio>
#include <cstdlib>

#include "coop/core/timed_sim.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const long x = argc > 3 ? std::atol(argv[1]) : 600;
  const long y = argc > 3 ? std::atol(argv[2]) : 480;
  const long z = argc > 3 ? std::atol(argv[3]) : 160;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 100;

  std::printf("Node: rzhasgpu (2x8-core Xeon, 4x K80). Problem %ldx%ldx%ld "
              "(%ld zones), %d steps.\n\n",
              x, y, z, x * y * z, steps);
  std::printf("%-22s %5s | %9s | %11s %11s | %9s | %8s %9s\n", "mode", "ranks",
              "runtime", "max cpu/it", "max gpu/it", "cpu-share", "msgs/it",
              "MB/it");

  double t_default = 0;
  for (auto mode : {core::NodeMode::kCpuOnly, core::NodeMode::kOneRankPerGpu,
                    core::NodeMode::kMpsPerGpu,
                    core::NodeMode::kHeterogeneous}) {
    core::TimedConfig tc;
    tc.mode = mode;
    tc.global = {{0, 0, 0}, {x, y, z}};
    tc.timesteps = steps;
    const auto r = core::run_timed(tc);
    if (mode == core::NodeMode::kOneRankPerGpu) t_default = r.makespan;
    std::printf("%-22s %5d | %8.2f s | %9.3f s %9.3f s | %9.3f | %8.1f %9.2f\n",
                to_string(mode), r.ranks, r.makespan, r.avg_max_cpu_compute,
                r.avg_max_gpu_compute, r.final_cpu_fraction,
                static_cast<double>(r.messages) / steps,
                static_cast<double>(r.bytes) / steps / 1e6);
  }

  core::TimedConfig tc;
  tc.mode = core::NodeMode::kHeterogeneous;
  tc.global = {{0, 0, 0}, {x, y, z}};
  tc.timesteps = steps;
  const double t_het = core::run_timed(tc).makespan;
  std::printf("\nHeterogeneous vs Default: %.1f%% %s (paper: up to 18%% "
              "gain in the Fig. 18 regime)\n",
              100.0 * std::abs(t_default - t_het) / t_default,
              t_het < t_default ? "faster" : "slower");
  return 0;
}
