#include <gtest/gtest.h>

#include <algorithm>

#include "coop/decomp/decomposition.hpp"

namespace dc = coop::decomp;
using coop::memory::ExecutionTarget;
using coop::mesh::Box;

namespace {

const Box kGlobal{{0, 0, 0}, {320, 480, 320}};

TEST(ChooseGrid, MinimizesSurfaceForCube) {
  // On a cube, 8 ranks should factor 2x2x2, not 1x1x8.
  const auto g = dc::choose_grid(Box{{0, 0, 0}, {64, 64, 64}}, 8);
  EXPECT_EQ(g, (std::array<int, 3>{2, 2, 2}));
}

TEST(ChooseGrid, AdaptsToAnisotropy) {
  // On a long-x box, prefer cutting x.
  const auto g = dc::choose_grid(Box{{0, 0, 0}, {1024, 16, 16}}, 4);
  EXPECT_EQ(g, (std::array<int, 3>{4, 1, 1}));
}

TEST(ChooseGrid, RejectsImpossible) {
  EXPECT_THROW((void)dc::choose_grid(Box{{0, 0, 0}, {2, 2, 2}}, 16),
               std::invalid_argument);
  EXPECT_THROW((void)dc::choose_grid(kGlobal, 0), std::invalid_argument);
}

/// Every scheme must exactly partition the global box.
struct SchemeCase {
  const char* name;
  dc::Decomposition dec;
};

class PartitionInvariant : public ::testing::TestWithParam<int> {};

TEST_P(PartitionInvariant, AllSchemesPartitionExactly) {
  const int variant = GetParam();
  dc::Decomposition d;
  switch (variant) {
    case 0: d = dc::block_decomposition(kGlobal, 16); break;
    case 1: d = dc::hierarchical_gpu(kGlobal, 4, 1); break;
    case 2: d = dc::hierarchical_gpu(kGlobal, 4, 4); break;
    case 3: d = dc::heterogeneous(kGlobal, 4, 12, 0.025); break;
    case 4: d = dc::heterogeneous(kGlobal, 4, 12, 0.3); break;
    case 5: d = dc::cpu_only(kGlobal, 16); break;
    case 6: d = dc::block_decomposition(kGlobal, 5); break;  // prime count
    default: FAIL();
  }
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.total_zones(), kGlobal.zones());
  // Rank ids are dense 0..n-1 AND positional: the simulators index
  // `domains[rank]` directly.
  for (std::size_t i = 0; i < d.domains.size(); ++i)
    ASSERT_EQ(d.domains[i].rank, static_cast<int>(i));
}

INSTANTIATE_TEST_SUITE_P(Schemes, PartitionInvariant, ::testing::Range(0, 7));

TEST(Hierarchical, DefaultModeIsOneSlabPerGpu) {
  const auto d = dc::hierarchical_gpu(kGlobal, 4, 1);
  EXPECT_EQ(d.ranks(), 4);
  for (const auto& dom : d.domains) {
    EXPECT_EQ(dom.target, ExecutionTarget::kGpuDevice);
    EXPECT_EQ(dom.box.nx(), kGlobal.nx());  // x preserved
    EXPECT_EQ(dom.box.nz(), kGlobal.nz());  // z preserved
    EXPECT_EQ(dom.box.ny(), kGlobal.ny() / 4);
    EXPECT_EQ(dom.gpu_id, dom.rank);
  }
}

TEST(Hierarchical, MpsModeSubdividesWithinGpuBlocks) {
  const auto d = dc::hierarchical_gpu(kGlobal, 4, 4);
  EXPECT_EQ(d.ranks(), 16);
  for (const auto& dom : d.domains) {
    EXPECT_EQ(dom.box.nx(), kGlobal.nx());
    EXPECT_EQ(dom.box.ny(), kGlobal.ny() / 16);
    EXPECT_EQ(dom.gpu_id, dom.rank / 4);  // 4 consecutive ranks per GPU
  }
}

TEST(Hierarchical, AtMostTwoNeighbors) {
  // The paper's point: 1-D subdivision keeps the halo neighbor count
  // minimal.
  for (int rpg : {1, 2, 4}) {
    const auto d = dc::hierarchical_gpu(kGlobal, 4, rpg);
    const auto nbrs = dc::neighbor_lists(d);
    for (const auto& n : nbrs) EXPECT_LE(n.size(), 2u);
  }
}

TEST(Hierarchical, KeepsWorkPerGpuEqualToDefault) {
  // Paper 9: the hierarchical decomposition keeps the work per GPU the
  // same as the 1-rank-per-GPU approach.
  const auto d1 = dc::hierarchical_gpu(kGlobal, 4, 1);
  const auto d4 = dc::hierarchical_gpu(kGlobal, 4, 4);
  for (int g = 0; g < 4; ++g) {
    long z1 = 0, z4 = 0;
    for (const auto& dom : d1.domains)
      if (dom.gpu_id == g) z1 += dom.box.zones();
    for (const auto& dom : d4.domains)
      if (dom.gpu_id == g) z4 += dom.box.zones();
    EXPECT_EQ(z1, z4) << "gpu " << g;
  }
}

TEST(Heterogeneous, RankRolesAndAssociation) {
  const auto d = dc::heterogeneous(kGlobal, 4, 12, 0.025);
  EXPECT_EQ(d.ranks(), 16);
  int gpu_ranks = 0, cpu_ranks = 0;
  for (const auto& dom : d.domains) {
    if (dom.target == ExecutionTarget::kGpuDevice) {
      ++gpu_ranks;
      EXPECT_LT(dom.rank, 4);  // GPU ranks numbered first
    } else {
      ++cpu_ranks;
      EXPECT_GE(dom.gpu_id, 0);  // carved from some GPU block
    }
    EXPECT_EQ(dom.box.nx(), kGlobal.nx());
  }
  EXPECT_EQ(gpu_ranks, 4);
  EXPECT_EQ(cpu_ranks, 12);
}

TEST(Heterogeneous, FractionApproximatelyHonored) {
  for (double f : {0.05, 0.1, 0.2, 0.4}) {
    const auto d = dc::heterogeneous(kGlobal, 4, 12, f);
    // floor() carving in quanta of one plane per CPU rank: actual share in
    // (f - granularity, f].
    const double granularity = 12.0 / kGlobal.ny();
    EXPECT_LE(d.cpu_zone_fraction(), f + 1e-12) << f;
    EXPECT_GT(d.cpu_zone_fraction(), f - granularity - 1e-12) << f;
  }
}

TEST(Heterogeneous, OnePlaneFloorBindsSmallFractions) {
  // 12 CPU ranks cannot take less than 12 planes: 12/480 = 2.5%.
  const auto d = dc::heterogeneous(kGlobal, 4, 12, 0.001);
  EXPECT_NEAR(d.cpu_zone_fraction(), 12.0 / 480.0, 1e-12);
  // The paper's Fig. 12 case: y=80 forces 15% minimum.
  const Box small_y{{0, 0, 0}, {320, 80, 320}};
  const auto d2 = dc::heterogeneous(small_y, 4, 12, 0.001);
  EXPECT_NEAR(d2.cpu_zone_fraction(), 0.15, 1e-12);
}

TEST(Heterogeneous, CpuSlabsAreThinYSlabs) {
  const auto d = dc::heterogeneous(kGlobal, 4, 12, 0.025);
  for (const auto& dom : d.domains) {
    if (dom.target == ExecutionTarget::kCpuCore) {
      EXPECT_EQ(dom.box.ny(), 1);  // 2.5% of 480 = 12 planes over 12 ranks
      EXPECT_EQ(dom.box.nx(), kGlobal.nx());
      EXPECT_EQ(dom.box.nz(), kGlobal.nz());
    }
  }
}

TEST(Heterogeneous, InvalidArguments) {
  EXPECT_THROW((void)dc::heterogeneous(kGlobal, 0, 12, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)dc::heterogeneous(kGlobal, 4, 10, 0.1),
               std::invalid_argument);  // not a multiple of gpu count
  EXPECT_THROW((void)dc::heterogeneous(kGlobal, 4, 12, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)dc::heterogeneous(kGlobal, 4, 12, -0.1),
               std::invalid_argument);
}

TEST(CpuOnly, AllRanksOnCpu) {
  const auto d = dc::cpu_only(kGlobal, 16);
  EXPECT_EQ(d.ranks(), 16);
  for (const auto& dom : d.domains) {
    EXPECT_EQ(dom.target, ExecutionTarget::kCpuCore);
    EXPECT_EQ(dom.gpu_id, -1);
  }
}

TEST(NeighborLists, Symmetric) {
  const auto d = dc::block_decomposition(kGlobal, 16);
  const auto nbrs = dc::neighbor_lists(d);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    for (int j : nbrs[i]) {
      const auto& back = nbrs[static_cast<std::size_t>(j)];
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<int>(i)),
                back.end());
    }
}

TEST(CommAnalytics, HierarchicalSixteenMinimizesNeighborsAndMessages) {
  // The paper's Fig. 9/10 claim: the hierarchical 1-D subdivision keeps the
  // number of halo-exchange neighbors (and thus messages, the latency-bound
  // cost at node scale) minimal. Note squares DO minimize raw halo volume —
  // that is why they are the classical default — but they multiply neighbor
  // counts, and every extra neighbor is an extra message per field per step.
  const auto sq = dc::analyze_communication(
      dc::block_decomposition(kGlobal, 16), 1);
  const auto hi = dc::analyze_communication(
      dc::hierarchical_gpu(kGlobal, 4, 4), 1);
  EXPECT_GT(sq.max_neighbors, hi.max_neighbors);
  EXPECT_GT(sq.total_messages, hi.total_messages);
  EXPECT_LE(hi.max_neighbors, 2);
}

TEST(CommAnalytics, SixteenRanksCostMoreThanFour) {
  // Fig. 9: going 4 -> 16 'square' domains raises communication sharply.
  const auto four = dc::analyze_communication(
      dc::block_decomposition(kGlobal, 4), 1);
  const auto sixteen = dc::analyze_communication(
      dc::block_decomposition(kGlobal, 16), 1);
  EXPECT_GT(sixteen.total_messages, four.total_messages);
  EXPECT_GT(sixteen.total_halo_zones, four.total_halo_zones);
}

TEST(ReweightYSlabs, RedistributesProportionallyAndRetiresZeroWeight) {
  // 4 GPU-style y-slabs; retire rank 1 and split its share among survivors.
  const auto base = dc::hierarchical_gpu(kGlobal, 4, 1);
  const auto out = dc::reweight_y_slabs(base, {1.0, 0.0, 1.0, 1.0});
  ASSERT_EQ(out.ranks(), 4);
  EXPECT_EQ(out.domains[1].box.zones(), 0);
  long total = 0;
  for (const auto& d : out.domains) {
    total += d.box.zones();
    // Identity fields survive the re-carve; only the boxes move.
    EXPECT_EQ(d.rank, base.domains[static_cast<std::size_t>(d.rank)].rank);
    EXPECT_EQ(d.target,
              base.domains[static_cast<std::size_t>(d.rank)].target);
    EXPECT_EQ(d.gpu_id, base.domains[static_cast<std::size_t>(d.rank)].gpu_id);
  }
  EXPECT_EQ(total, kGlobal.zones());
  // Survivors share the y extent roughly equally (within one plane).
  for (int q : {0, 2, 3}) {
    const auto& b = out.domains[static_cast<std::size_t>(q)].box;
    EXPECT_NEAR(static_cast<double>(b.ny()), 480.0 / 3.0, 1.0);
  }
  EXPECT_NO_THROW(out.validate(/*allow_empty=*/true));
}

TEST(ReweightYSlabs, UnevenWeightsShiftPlanes) {
  const auto base = dc::hierarchical_gpu(kGlobal, 4, 1);
  const auto out = dc::reweight_y_slabs(base, {3.0, 1.0, 1.0, 1.0});
  EXPECT_GT(out.domains[0].box.zones(), 2 * out.domains[1].box.zones());
  long total = 0;
  for (const auto& d : out.domains) total += d.box.zones();
  EXPECT_EQ(total, kGlobal.zones());
}

TEST(ReweightYSlabs, RejectsBadWeights) {
  const auto base = dc::hierarchical_gpu(kGlobal, 4, 1);
  EXPECT_THROW((void)dc::reweight_y_slabs(base, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)dc::reweight_y_slabs(base, {1.0, -0.5, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)dc::reweight_y_slabs(base, {0.0, 0.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST(CommAnalytics, MessageCountMatchesNeighborSum) {
  const auto d = dc::hierarchical_gpu(kGlobal, 4, 4);
  const auto nbrs = dc::neighbor_lists(d);
  std::size_t sum = 0;
  for (const auto& n : nbrs) sum += n.size();
  EXPECT_EQ(static_cast<std::size_t>(
                dc::analyze_communication(d, 1).total_messages),
            sum);
}

}  // namespace
