#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "coop/sweeps/figure_sweeps.hpp"
#include "support/json_check.hpp"

/// ISSUE acceptance test: a reduced Fig. 18 heterogeneous run with the
/// exemplar fault plan must produce one Perfetto-loadable trace with
/// per-kernel spans, >= 3 counter tracks, fault/rebalance instants, and a
/// schema-valid BENCH_fig18.json whose imbalance figure is consistent with
/// the trace's own per-rank phase totals.

namespace obs = coop::obs;
namespace sweeps = coop::sweeps;
namespace cj = coophet_test::json;

namespace {

const sweeps::BenchArtifacts& artifacts() {
  static const sweeps::BenchArtifacts a = [] {
    sweeps::SweepOptions opt;
    opt.timesteps = 6;
    const auto curves =
        sweeps::run_figure_sweep(sweeps::reduced(sweeps::figure_spec(18), 2),
                                 opt);
    const auto plan = sweeps::exemplar_fault_plan();
    return sweeps::make_bench_artifacts(curves, &plan, 6);
  }();
  return a;
}

TEST(Fig18Acceptance, TraceHasPerKernelSpansUnderComputePhases) {
  const auto& t = artifacts().tracer;
  EXPECT_GT(t.span_count("phase"), 0u);
  EXPECT_GT(t.span_count("kernel"), 0u);
  // Kernel sub-spans outnumber phases (~80-kernel catalog under each
  // compute phase).
  EXPECT_GT(t.span_count("kernel"), t.span_count("phase"));
}

TEST(Fig18Acceptance, TraceHasAtLeastThreeCounterTracks) {
  const auto& t = artifacts().tracer;
  EXPECT_GE(t.counter_tracks().size(), 3u);
  EXPECT_TRUE(t.has_counter_track("cpu_fraction"));
  EXPECT_TRUE(t.has_counter_track("pool_bytes_in_use"));
  EXPECT_TRUE(t.has_counter_track("halo_bytes_sent"));
}

TEST(Fig18Acceptance, TraceHasFaultAndRecoveryInstants) {
  const auto& t = artifacts().tracer;
  EXPECT_GT(t.instant_count("fault"), 0u);
  EXPECT_GT(t.instant_count("recovery"), 0u);
  bool saw_death = false, saw_rebalance = false;
  for (const auto& i : t.instants()) {
    if (i.name == "fault:gpu-death") saw_death = true;
    if (i.name == "recovery:rebalance") saw_rebalance = true;
  }
  EXPECT_TRUE(saw_death);
  EXPECT_TRUE(saw_rebalance);
}

TEST(Fig18Acceptance, TraceExportIsPerfettoLoadableJson) {
  std::ostringstream os;
  artifacts().tracer.write_chrome_trace(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset;
  const auto* events = p.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), 100u);
}

TEST(Fig18Acceptance, ReportJsonPassesTheSchemaCheck) {
  std::ostringstream os;
  artifacts().report.write_json(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset;
  EXPECT_EQ(p.value.find("schema")->str, obs::kRunReportSchemaName);
  EXPECT_DOUBLE_EQ(p.value.find("schema_version")->number,
                   obs::kRunReportSchemaVersion);
  EXPECT_EQ(p.value.find("figure")->number, 18.0);
  EXPECT_EQ(p.value.find("per_rank")->array.size(), 16u);
  EXPECT_FALSE(p.value.find("top_kernels")->array.empty());
  EXPECT_EQ(p.value.find("sweep")->array.size(), 2u);
  EXPECT_GT(p.value.find("faults")->find("injected")->number, 0.0);
}

TEST(Fig18Acceptance, ReportImbalanceMatchesTracePhaseTotals) {
  const auto& a = artifacts();
  // Recompute per-rank compute totals straight from the trace spans...
  std::map<int, double> compute;
  for (const auto& s : a.tracer.spans())
    if (s.cat == "phase" && s.name == "compute")
      compute[s.tid] += s.t_end - s.t_begin;
  // ...over the ranks the report considers active.
  double max_c = 0.0, sum_c = 0.0;
  int active = 0;
  for (const auto& r : a.report.per_rank) {
    if (r.zones <= 0) continue;
    const double c = compute[r.rank];
    max_c = std::max(max_c, c);
    sum_c += c;
    ++active;
  }
  ASSERT_GT(active, 0);
  ASSERT_GT(max_c, 0.0);
  const double imbalance =
      100.0 * (max_c - sum_c / active) / max_c;
  EXPECT_NEAR(a.report.imbalance_pct, imbalance, 1e-6);
}

TEST(Fig18Acceptance, ReportFlopsAndGainAreInternallyConsistent) {
  const auto& r = artifacts().report;
  EXPECT_GT(r.achieved_flops, 0.0);
  EXPECT_GT(r.model_peak_flops, r.achieved_flops);
  EXPECT_NEAR(r.flops_efficiency_pct,
              100.0 * r.achieved_flops / r.model_peak_flops, 1e-9);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_EQ(r.mode, "heterogeneous");
  // The reduced sweep keeps its endpoints, so the largest Fig. 18 point
  // (600x480x160) anchors the exemplar.
  EXPECT_EQ(r.nx, 600);
  EXPECT_EQ(r.ny, 480);
  EXPECT_EQ(r.nz, 160);
}

}  // namespace
