#include "coop/devmodel/comm_cost.hpp"

#include <bit>
#include <cmath>

namespace coop::devmodel {

double message_time(const InterconnectSpec& net, std::size_t bytes) {
  return net.latency_s +
         static_cast<double>(bytes) / net.bandwidth_bytes_per_s;
}

double allreduce_time(const InterconnectSpec& net, int ranks) {
  if (ranks <= 1) return 0.0;
  const int hops = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(ranks))));
  return 2.0 * static_cast<double>(hops) * net.allreduce_hop_latency_s;
}

}  // namespace coop::devmodel
