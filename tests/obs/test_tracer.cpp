#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <tuple>

#include "coop/obs/trace.hpp"
#include "support/json_check.hpp"

namespace obs = coop::obs;
namespace cj = coophet_test::json;

namespace {

obs::Tracer small_trace() {
  obs::Tracer t;
  t.set_process_name(0, "node0");
  t.set_thread_name(0, 0, "rank 0 (gpu)");
  t.set_thread_name(0, 4, "rank 4 (cpu)");
  t.span(0, 0, "compute", "phase", 0.0, 1.5);
  t.span(0, 0, "flux_sweep_x", "kernel", 0.0, 0.7);
  t.span(0, 4, "compute", "phase", 0.0, 2.0);
  t.instant(0, 0, "fault:gpu-death", "fault", 0.5, obs::InstantScope::kGlobal,
            {{"node", 0.0}, {"gpu", 3.0}});
  t.instant(0, 0, "checkpoint", "recovery", 1.0, obs::InstantScope::kProcess);
  t.counter(0, "cpu_fraction", 0.0, 0.2);
  t.counter(0, "cpu_fraction", 1.0, 0.25);
  t.counter(0, "halo_bytes_sent", 1.0, 1024.0);
  return t;
}

TEST(Tracer, QueriesAggregateAcrossTracks) {
  const obs::Tracer t = small_trace();
  EXPECT_DOUBLE_EQ(t.total_time("compute"), 3.5);        // both ranks
  EXPECT_DOUBLE_EQ(t.total_time("compute", 0, 4), 2.0);  // one rank
  EXPECT_DOUBLE_EQ(t.total_time("nothing"), 0.0);
  EXPECT_EQ(t.span_count("phase"), 2u);
  EXPECT_EQ(t.span_count("kernel"), 1u);
  EXPECT_EQ(t.instant_count("fault"), 1u);
  EXPECT_EQ(t.instant_count("recovery"), 1u);
  EXPECT_EQ(t.counter_tracks(),
            (std::vector<std::string>{"cpu_fraction", "halo_bytes_sent"}));
  EXPECT_TRUE(t.has_counter_track("cpu_fraction"));
  EXPECT_FALSE(t.has_counter_track("des_queue_depth"));
}

TEST(Tracer, ClearEmptiesAllEventKinds) {
  obs::Tracer t = small_trace();
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.counter_tracks().size(), 0u);
}

TEST(Tracer, ChromeExportIsStrictlyValidJson) {
  const obs::Tracer t = small_trace();
  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = cj::parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << " at offset " << r.offset;
  const auto* events = r.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 3 metadata + 3 spans + 2 instants + 3 counters.
  EXPECT_EQ(events->array.size(), 11u);

  std::size_t meta = 0, spans = 0, instants = 0, counters = 0;
  for (const auto& e : events->array) {
    const std::string ph = e.find("ph")->str;
    if (ph == "M") ++meta;
    if (ph == "X") {
      ++spans;
      EXPECT_EQ(cj::first_missing_key(
                    e, {"name", "cat", "ts", "dur", "pid", "tid"}),
                "");
    }
    if (ph == "i") {
      ++instants;
      ASSERT_NE(e.find("s"), nullptr);  // scope required by Perfetto
    }
    if (ph == "C") {
      ++counters;
      const auto* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->find("value"), nullptr);
    }
  }
  EXPECT_EQ(meta, 3u);
  EXPECT_EQ(spans, 3u);
  EXPECT_EQ(instants, 2u);
  EXPECT_EQ(counters, 3u);
}

TEST(Tracer, ExportCarriesMetadataScopesAndArgs) {
  const obs::Tracer t = small_trace();
  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = cj::parse(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  bool saw_process = false, saw_thread = false, saw_global = false;
  for (const auto& e : r.value.find("traceEvents")->array) {
    const std::string ph = e.find("ph")->str;
    if (ph == "M" && e.find("name")->str == "process_name") {
      saw_process = true;
      EXPECT_EQ(e.find("args")->find("name")->str, "node0");
    }
    if (ph == "M" && e.find("name")->str == "thread_name" &&
        e.find("tid")->number == 4.0) {
      saw_thread = true;
      EXPECT_EQ(e.find("args")->find("name")->str, "rank 4 (cpu)");
    }
    if (ph == "i" && e.find("name")->str == "fault:gpu-death") {
      saw_global = true;
      EXPECT_EQ(e.find("s")->str, "g");
      EXPECT_DOUBLE_EQ(e.find("args")->find("gpu")->number, 3.0);
    }
  }
  EXPECT_TRUE(saw_process);
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_global);
}

TEST(Tracer, ExportEscapesHostileStrings) {
  obs::Tracer t;
  t.set_process_name(0, "quote\" backslash\\ newline\n tab\t bell\x07");
  t.span(0, 0, "name with \"quotes\"", "cat\\path", 0.0, 1.0);
  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = cj::parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << "\n" << os.str();
  // Round-trips intact through the strict parser.
  const auto& events = r.value.find("traceEvents")->array;
  EXPECT_EQ(events[0].find("args")->find("name")->str,
            "quote\" backslash\\ newline\n tab\t bell\x07");
  EXPECT_EQ(events[1].find("name")->str, "name with \"quotes\"");
  EXPECT_EQ(events[1].find("cat")->str, "cat\\path");
}

TEST(Tracer, ExportUsesFixedMicrosecondTimestamps) {
  obs::Tracer t;
  const double hour = 3600.0;
  t.span(0, 0, "late", "phase", hour + 1.234e-4, hour + 4.234e-4);
  std::ostringstream os;
  t.write_chrome_trace(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"ts\":3600000123.400"), std::string::npos) << j;
  EXPECT_NE(j.find("\"dur\":300.000"), std::string::npos) << j;
  EXPECT_EQ(j.find("e+"), std::string::npos) << j;
}

TEST(Tracer, CloseCounterTracksEmitsFinalSampleOnEveryTrack) {
  obs::Tracer t;
  t.counter(0, "cpu_fraction", 0.0, 0.20);
  t.counter(0, "cpu_fraction", 1.0, 0.25);
  t.counter(1, "cpu_fraction", 0.5, 0.50);
  t.counter(0, "pool_bytes", 0.2, 4096.0);
  const double makespan = 4.0;
  t.close_counter_tracks(makespan);

  // One closing sample per (pid, track), repeating the last value at the
  // run end — without it Perfetto step-extrapolates the last recorded value
  // across the trailing spans.
  ASSERT_EQ(t.counters().size(), 7u);
  for (const auto& want :
       {std::tuple{0, "cpu_fraction", 0.25}, std::tuple{1, "cpu_fraction", 0.5},
        std::tuple{0, "pool_bytes", 4096.0}}) {
    bool found = false;
    for (const auto& c : t.counters())
      if (c.pid == std::get<0>(want) && c.track == std::get<1>(want) &&
          c.t == makespan && c.value == std::get<2>(want))
        found = true;
    EXPECT_TRUE(found) << std::get<1>(want) << " pid " << std::get<0>(want);
  }
}

TEST(Tracer, CloseCounterTracksIsIdempotentAndSkipsLaterSamples) {
  obs::Tracer t;
  t.counter(0, "a", 0.0, 1.0);
  t.counter(0, "late", 5.0, 7.0);  // already sampled past the close time
  t.close_counter_tracks(4.0);
  ASSERT_EQ(t.counters().size(), 3u);  // only "a" gained a closing sample
  t.close_counter_tracks(4.0);         // closing again adds nothing
  EXPECT_EQ(t.counters().size(), 3u);

  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = cj::parse(os.str());
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(Tracer, NonFiniteValuesNeverReachTheJson) {
  obs::Tracer t;
  t.counter(0, "bad", 0.0, std::numeric_limits<double>::quiet_NaN());
  t.counter(0, "bad", 1.0, std::numeric_limits<double>::infinity());
  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = cj::parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << "\n" << os.str();  // parser rejects NaN/Inf
}

}  // namespace
