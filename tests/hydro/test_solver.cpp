#include <gtest/gtest.h>

#include <cmath>

#include "coop/hydro/solver.hpp"

namespace hy = coop::hydro;
namespace mem = coop::memory;
using coop::mesh::Box;

namespace {

mem::MemoryManager make_mm() {
  mem::MemoryManager::Config c;
  c.target = mem::ExecutionTarget::kCpuCore;
  c.host_capacity = std::size_t{1} << 30;
  return mem::MemoryManager(c);
}

hy::ProblemConfig cube_problem(long n) {
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {n, n, n}};
  return cfg;
}

struct SingleRank {
  mem::MemoryManager mm = make_mm();
  hy::ProblemConfig cfg;
  hy::Solver solver;

  explicit SingleRank(long n, coop::forall::PolicyKind kind =
                                  coop::forall::PolicyKind::kSeq)
      : cfg(cube_problem(n)),
        solver(mm, cfg, cfg.global, coop::forall::DynamicPolicy{kind}) {
    solver.initialize();
  }

  void step() {
    solver.apply_physical_boundaries();
    solver.compute_primitives();
    const double dt = solver.local_dt();
    solver.advance(dt);
  }
};

TEST(Eos, PressureAndEnergyRoundtrip) {
  const hy::IdealGas eos{1.4};
  const double rho = 2.0, u = 0.3, v = -0.1, w = 0.2, p = 1.5;
  const double E = eos.total_energy(rho, u, v, w, p);
  EXPECT_NEAR(eos.pressure_conserved(rho, rho * u, rho * v, rho * w, E), p,
              1e-14);
}

TEST(Eos, SoundSpeed) {
  const hy::IdealGas eos{1.4};
  EXPECT_NEAR(eos.sound_speed(1.0, 1.0), std::sqrt(1.4), 1e-15);
}

TEST(Eos, PressurePositivity) {
  const hy::IdealGas eos{1.4};
  EXPECT_GT(eos.pressure(1.0, 1e-6), 0.0);
}

TEST(Solver, InitialEnergyIntegralMatchesDeposit) {
  SingleRank s(24);
  const auto d = s.solver.local_diagnostics();
  const double ambient =
      s.cfg.p0 / (s.cfg.eos.gamma - 1.0);  // energy density
  EXPECT_NEAR(d.total_energy, s.cfg.blast_energy + ambient, 1e-9);
  EXPECT_NEAR(d.mass, s.cfg.rho0, 1e-12);  // unit cube of unit density
}

TEST(Solver, DtPositiveAndCflBounded) {
  SingleRank s(16);
  s.solver.apply_physical_boundaries();
  s.solver.compute_primitives();
  const double dt = s.solver.local_dt();
  EXPECT_GT(dt, 0.0);
  // dt <= cfl * dx / c_max; the blast spike dominates c.
  EXPECT_LT(dt, 0.05);
}

TEST(Solver, MassConservedWhileShockInterior) {
  SingleRank s(24);
  const double m0 = s.solver.local_diagnostics().mass;
  for (int i = 0; i < 20; ++i) s.step();
  const double m1 = s.solver.local_diagnostics().mass;
  EXPECT_NEAR(m1, m0, 1e-4 * m0);
}

TEST(Solver, EnergyConservedWhileShockInterior) {
  SingleRank s(24);
  const double e0 = s.solver.local_diagnostics().total_energy;
  for (int i = 0; i < 20; ++i) s.step();
  const double e1 = s.solver.local_diagnostics().total_energy;
  EXPECT_NEAR(e1, e0, 1e-6 * e0);
}

TEST(Solver, BlastProducesOutwardShock) {
  SingleRank s(24);
  double prev_radius = 0;
  double t = 0;
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 10; ++i) {
      s.solver.apply_physical_boundaries();
      s.solver.compute_primitives();
      const double dt = s.solver.local_dt();
      s.solver.advance(dt);
      t += dt;
    }
    const auto d = s.solver.local_diagnostics();
    EXPECT_GT(d.max_density, s.cfg.rho0);          // compression at the shock
    EXPECT_GE(d.max_density_radius, prev_radius);  // moving outward
    prev_radius = d.max_density_radius;
  }
  EXPECT_GT(prev_radius, 0.05);
}

TEST(Solver, ShockRadiusTracksSedovScaling) {
  SingleRank s(32);
  double t = 0;
  for (int i = 0; i < 60; ++i) {
    s.solver.apply_physical_boundaries();
    s.solver.compute_primitives();
    const double dt = s.solver.local_dt();
    s.solver.advance(dt);
    t += dt;
  }
  const auto d = s.solver.local_diagnostics();
  const double analytic = hy::sedov_shock_radius(s.cfg.blast_energy,
                                                 s.cfg.rho0, t);
  // First-order scheme on a coarse grid: 25% agreement is the bar.
  EXPECT_NEAR(d.max_density_radius, analytic, 0.25 * analytic);
}

TEST(Solver, FieldStaysSymmetricUnderReflection) {
  // The blast sits at the center of an even grid: the solution must stay
  // mirror-symmetric in every axis.
  SingleRank s(16);
  for (int i = 0; i < 15; ++i) s.step();
  const auto& rho = s.solver.state().rho;
  const long n = 16;
  for (long k = 0; k < n; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n / 2; ++i) {
        ASSERT_NEAR(rho(i, j, k), rho(n - 1 - i, j, k), 1e-11)
            << i << "," << j << "," << k;
        ASSERT_NEAR(rho(j, i, k), rho(j, n - 1 - i, k), 1e-11);
        ASSERT_NEAR(rho(j, k, i), rho(j, k, n - 1 - i), 1e-11);
      }
}

TEST(Solver, AdvanceWithZeroDtIsIdentity) {
  SingleRank s(12);
  s.solver.apply_physical_boundaries();
  s.solver.compute_primitives();
  const double before = s.solver.local_diagnostics().total_energy;
  const double rho_probe = s.solver.state().rho(6, 6, 6);
  s.solver.advance(0.0);
  EXPECT_DOUBLE_EQ(s.solver.local_diagnostics().total_energy, before);
  EXPECT_DOUBLE_EQ(s.solver.state().rho(6, 6, 6), rho_probe);
}

TEST(Solver, QuiescentAmbientStaysQuiescent) {
  // No blast: a uniform gas must remain exactly uniform.
  mem::MemoryManager mm = make_mm();
  hy::ProblemConfig cfg = cube_problem(12);
  cfg.blast_energy = 0.0;
  cfg.p0 = 0.7;
  hy::Solver solver(mm, cfg, cfg.global,
                    coop::forall::DynamicPolicy{coop::forall::PolicyKind::kSeq});
  solver.initialize();
  for (int i = 0; i < 5; ++i) {
    solver.apply_physical_boundaries();
    solver.compute_primitives();
    solver.advance(solver.local_dt());
  }
  for (long k = 0; k < 12; ++k)
    for (long j = 0; j < 12; ++j)
      for (long i = 0; i < 12; ++i) {
        ASSERT_DOUBLE_EQ(solver.state().rho(i, j, k), cfg.rho0);
        ASSERT_DOUBLE_EQ(solver.state().mx(i, j, k), 0.0);
      }
}

/// All forall policies must produce identical physics.
class SolverPolicyEquivalence
    : public ::testing::TestWithParam<coop::forall::PolicyKind> {};

TEST_P(SolverPolicyEquivalence, SameChecksumAsSeq) {
  SingleRank ref(12, coop::forall::PolicyKind::kSeq);
  SingleRank alt(12, GetParam());
  for (int i = 0; i < 8; ++i) {
    ref.step();
    alt.step();
  }
  for (long k = 0; k < 12; ++k)
    for (long j = 0; j < 12; ++j)
      for (long i = 0; i < 12; ++i)
        ASSERT_EQ(ref.solver.state().rho(i, j, k),
                  alt.solver.state().rho(i, j, k))
            << i << "," << j << "," << k;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SolverPolicyEquivalence,
    ::testing::Values(coop::forall::PolicyKind::kSimd,
                      coop::forall::PolicyKind::kSimGpu,
                      coop::forall::PolicyKind::kIndirect),
    [](const auto& pi) { return to_string(pi.param); });

TEST(SedovAnalytic, ScalingLaw) {
  // R ~ t^(2/5): doubling time scales radius by 2^0.4.
  const double r1 = hy::sedov_shock_radius(1.0, 1.0, 0.1);
  const double r2 = hy::sedov_shock_radius(1.0, 1.0, 0.2);
  EXPECT_NEAR(r2 / r1, std::pow(2.0, 0.4), 1e-12);
  // R ~ E^(1/5).
  const double rE = hy::sedov_shock_radius(32.0, 1.0, 0.1);
  EXPECT_NEAR(rE / r1, 2.0, 1e-12);
}

TEST(SedovAnalytic, DenserMediumSlowsShock) {
  EXPECT_LT(hy::sedov_shock_radius(1.0, 8.0, 0.1),
            hy::sedov_shock_radius(1.0, 1.0, 0.1));
}

}  // namespace

namespace {

TEST(SolverMemory, Fig8PlacementOfSolverFields) {
  // The solver's storage must land where the paper's Fig. 8 prescribes.
  // GPU-driving rank: conserved mesh fields in unified memory, primitive
  // and update scratch in the device pool, nothing unaccounted.
  mem::MemoryManager::Config mc;
  mc.target = mem::ExecutionTarget::kGpuDevice;
  mc.host_capacity = std::size_t{1} << 28;
  mc.device_capacity = std::size_t{1} << 28;
  mc.pool_capacity = std::size_t{1} << 28;
  mem::MemoryManager mm(mc);

  const long n = 16;
  hy::ProblemConfig cfg = cube_problem(n);
  hy::Solver solver(mm, cfg, cfg.global,
                    coop::forall::DynamicPolicy{
                        coop::forall::PolicyKind::kSimGpu});

  const std::size_t padded = static_cast<std::size_t>((n + 2) * (n + 2) *
                                                      (n + 2));
  const std::size_t owned = static_cast<std::size_t>(n * n * n);
  // Mesh data: 5 conserved fields, ghost width 1 -> unified memory.
  EXPECT_EQ(mm.unified().bytes_in_use(), 5 * padded * sizeof(double));
  // Temporary data: prs + snd (padded) and 5 dU accumulators (owned),
  // rounded up to the pool's 256-byte blocks -> device pool.
  const std::size_t temp = 2 * padded * sizeof(double) +
                           5 * owned * sizeof(double);
  EXPECT_GE(mm.pool().bytes_in_use(), temp);
  EXPECT_LE(mm.pool().bytes_in_use(), temp + 7 * 256);
  // Nothing of the solver's lands in plain host memory.
  EXPECT_EQ(mm.host().bytes_in_use(), 0u);
}

TEST(SolverMemory, CpuRankKeepsEverythingOnHost) {
  mem::MemoryManager::Config mc;
  mc.target = mem::ExecutionTarget::kCpuCore;
  mc.host_capacity = std::size_t{1} << 28;
  mem::MemoryManager mm(mc);
  hy::ProblemConfig cfg = cube_problem(12);
  hy::Solver solver(mm, cfg, cfg.global,
                    coop::forall::DynamicPolicy{coop::forall::PolicyKind::kSeq});
  EXPECT_GT(mm.host().bytes_in_use(), 0u);
  EXPECT_EQ(mm.unified().bytes_in_use(), 0u);
  EXPECT_EQ(mm.pool().bytes_in_use(), 0u);
}

TEST(SolverMemory, CapacityExceededSurfacesAsBadAlloc) {
  // A 64^3 solver cannot fit in a 1 MiB unified space: the paper's memory
  // thresholds are real capacity limits, not silent clamps.
  mem::MemoryManager::Config mc;
  mc.target = mem::ExecutionTarget::kGpuDevice;
  mc.host_capacity = std::size_t{1} << 28;
  mc.device_capacity = std::size_t{1} << 20;
  mc.pool_capacity = std::size_t{1} << 28;
  mem::MemoryManager mm(mc);
  hy::ProblemConfig cfg = cube_problem(64);
  EXPECT_THROW(hy::Solver(mm, cfg, cfg.global,
                          coop::forall::DynamicPolicy{
                              coop::forall::PolicyKind::kSimGpu}),
               std::bad_alloc);
}

}  // namespace
