#include "coop/core/sim_error.hpp"

#include <exception>
#include <ios>

namespace coop::core {

const char* to_string(SimErrorKind kind) noexcept {
  switch (kind) {
    case SimErrorKind::kConfig: return "config";
    case SimErrorKind::kModel: return "model";
    case SimErrorKind::kFaultUnrecoverable: return "fault_unrecoverable";
    case SimErrorKind::kIo: return "io";
    case SimErrorKind::kTimeout: return "timeout";
    case SimErrorKind::kCancelled: return "cancelled";
  }
  return "model";
}

std::string SimError::to_string() const {
  std::string out = core::to_string(kind);
  if (cell >= 0) out += ": cell " + std::to_string(cell);
  if (!context.empty()) {
    out += ": ";
    out += context;
  }
  return out;
}

void throw_sim_error(SimErrorKind kind, std::string context, int cell) {
  SimError err{kind, std::move(context), cell};
  if (kind == SimErrorKind::kConfig || kind == SimErrorKind::kModel)
    throw SimConfigException(std::move(err));
  throw SimRuntimeException(std::move(err));
}

SimError classify_current_exception() noexcept {
  try {
    throw;
  } catch (const SimErrorCarrier& c) {
    return c.error();
  } catch (const std::invalid_argument& e) {
    return SimError{SimErrorKind::kConfig, e.what()};
  } catch (const std::ios_base::failure& e) {
    return SimError{SimErrorKind::kIo, e.what()};
  } catch (const std::exception& e) {
    return SimError{SimErrorKind::kModel, e.what()};
  } catch (...) {
    return SimError{SimErrorKind::kModel, "unknown exception"};
  }
}

}  // namespace coop::core
