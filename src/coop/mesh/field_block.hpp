#pragma once

#include <cstddef>

#include "coop/memory/memory_manager.hpp"
#include "coop/mesh/array3d.hpp"
#include "coop/mesh/box.hpp"

/// \file field_block.hpp
/// Pooled structure-of-arrays storage for a set of same-shaped fields.
///
/// A `FieldBlock` is ONE contiguous allocation holding `nfields` field
/// planes over the same padded box, each plane `plane_stride()` doubles
/// long. This is the SoA layout the flat-array kernel signatures want (cf.
/// hal3d's `const double* density, double* energy, ...` interfaces): every
/// field is a dense unit-stride array, adjacent fields sit at a fixed
/// stride, and a kernel touching all fields of a tile walks a bounded
/// working set instead of seven unrelated heap allocations.
///
/// Placement semantics are unchanged from the per-field layout (paper
/// Fig. 8): the whole block lives in the single `AllocationContext` given at
/// construction, so a mesh-data block lands in unified memory on GPU-driving
/// ranks and a temporary block in the device pool — same total bytes, one
/// allocation instead of `nfields`.
///
/// `view(f)` adapts a plane back into the ghost-aware `Array3D` indexing
/// used by halo exchange, boundary fills, and diagnostics; `plane(f)` is the
/// raw pointer the vectorized kernels consume.

namespace coop::mesh {

class FieldBlock {
 public:
  FieldBlock() = default;

  /// One allocation of `nfields * owned.grown(ghosts).zones()` doubles from
  /// `mm` in `ctx`; plane `f` starts at `data() + f * plane_stride()`.
  FieldBlock(memory::MemoryManager& mm, memory::AllocationContext ctx,
             const Box& owned, long ghosts, int nfields)
      : owned_(owned), padded_(owned.grown(ghosts)), ghosts_(ghosts),
        nfields_(nfields),
        buf_(mm.make_buffer<double>(
            ctx, static_cast<std::size_t>(nfields) *
                     static_cast<std::size_t>(padded_.zones()))) {}

  [[nodiscard]] bool valid() const noexcept { return !buf_.empty(); }
  [[nodiscard]] int nfields() const noexcept { return nfields_; }
  [[nodiscard]] const Box& owned() const noexcept { return owned_; }
  [[nodiscard]] const Box& padded() const noexcept { return padded_; }
  [[nodiscard]] long ghosts() const noexcept { return ghosts_; }

  /// Doubles per field plane (= padded zones).
  [[nodiscard]] std::size_t plane_stride() const noexcept {
    return static_cast<std::size_t>(padded_.zones());
  }

  /// Raw base of field plane `f` — the flat-kernel entry point.
  [[nodiscard]] double* plane(int f) noexcept {
    return buf_.data() + static_cast<std::size_t>(f) * plane_stride();
  }
  [[nodiscard]] const double* plane(int f) const noexcept {
    return buf_.data() + static_cast<std::size_t>(f) * plane_stride();
  }

  /// Ghost-aware non-owning view of plane `f` (Array3D indexing, storage
  /// stays here). Views stay valid for the lifetime of the block; the
  /// underlying allocation never moves.
  [[nodiscard]] Array3D<double> view(int f) noexcept {
    return Array3D<double>(plane(f), owned_, ghosts_);
  }

 private:
  Box owned_{};
  Box padded_{};
  long ghosts_ = 0;
  int nfields_ = 0;
  memory::Buffer<double> buf_{};
};

}  // namespace coop::mesh
