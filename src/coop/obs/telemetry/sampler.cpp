#include "coop/obs/telemetry/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

#include "coop/obs/json.hpp"

namespace coop::obs::telemetry {

void TelemetryConfig::validate() const {
  if (axis.empty())
    throw std::invalid_argument("TelemetryConfig: axis must be non-empty");
  if (!(window_width > 0.0))
    throw std::invalid_argument("TelemetryConfig: window_width must be > 0");
  if (max_windows == 0)
    throw std::invalid_argument("TelemetryConfig: max_windows must be >= 1");
  if (period_windows == 0)
    throw std::invalid_argument(
        "TelemetryConfig: period_windows must be >= 1");
  if (flight_cid == 0)
    throw std::invalid_argument("TelemetryConfig: flight_cid 0 is reserved");
  for (const SloSpec& s : slos) s.validate();
}

TelemetrySampler::TelemetrySampler(TelemetryConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.validate();
  slo_history_.resize(cfg_.slos.size());
  rule_active_.reserve(cfg_.slos.size());
  for (const SloSpec& s : cfg_.slos)
    rule_active_.emplace_back(s.rules.size(), false);
}

void TelemetrySampler::tick(double axis) {
  while (axis >= window_start_ + cfg_.window_width)
    close_window(window_start_ + cfg_.window_width);
}

void TelemetrySampler::flush(double axis) {
  tick(axis);
  if (axis > window_start_) close_window(axis);
}

void TelemetrySampler::close_window(double end) {
  TelemetryWindow w;
  w.index = next_index_++;
  w.axis_start = window_start_;
  w.axis_end = end;
  w.delta = reg_.snapshot_since(&prev_, end);
  w.slo.reserve(cfg_.slos.size());
  for (std::size_t i = 0; i < cfg_.slos.size(); ++i) {
    w.slo.push_back(eval_slo_window(cfg_.slos[i], w.delta));
    slo_history_[i].push_back(w.slo.back());
  }
  window_start_ = end;
  if (cfg_.flight != nullptr && !fw_opened_) {
    fw_ = cfg_.flight->writer(cfg_.flight_cid);
    fw_opened_ = true;
  }
  fw_.record(log::Severity::kDebug, log::Component::kTelemetry, end,
             "telemetry:window",
             {{"window", static_cast<double>(w.index)},
              {"start", w.axis_start},
              {"end", w.axis_end}});
  evaluate_rules(w);
  windows_.push_back(std::move(w));
  if (windows_.size() > cfg_.max_windows) {
    windows_.pop_front();
    ++dropped_;
  }
}

void TelemetrySampler::evaluate_rules(const TelemetryWindow& w) {
  for (std::size_t i = 0; i < cfg_.slos.size(); ++i) {
    const SloSpec& spec = cfg_.slos[i];
    for (std::size_t j = 0; j < spec.rules.size(); ++j) {
      const BurnRateRule& r = spec.rules[j];
      const double thr = r.threshold(cfg_.period_windows);
      const double burn_long =
          pooled_burn(slo_history_[i], r.long_windows, spec.objective);
      const double burn_short =
          pooled_burn(slo_history_[i], r.short_windows, spec.objective);
      const bool firing = burn_long >= thr && burn_short >= thr;
      if (firing == static_cast<bool>(rule_active_[i][j])) continue;
      rule_active_[i][j] = firing;
      SloAlert a;
      a.window = w.index;
      a.slo = spec.name;
      a.rule = r.label;
      a.fired = firing;
      a.burn_long = burn_long;
      a.burn_short = burn_short;
      a.threshold = thr;
      alerts_.push_back(std::move(a));
      const std::string name =
          (firing ? "alert:" : "clear:") + spec.name;
      fw_.record(firing ? r.severity : log::Severity::kInfo,
                 log::Component::kTelemetry, w.axis_end, name,
                 {{"window", static_cast<double>(w.index)},
                  {"rule", static_cast<double>(j)},
                  {"burn", burn_long},
                  {"thr", thr}});
    }
  }
}

namespace {

void write_labels_object(std::ostream& os, const Labels& labels) {
  os << '{';
  for (std::size_t j = 0; j < labels.items().size(); ++j) {
    if (j > 0) os << ',';
    write_json_string(os, labels.items()[j].first);
    os << ':';
    write_json_string(os, labels.items()[j].second);
  }
  os << '}';
}

/// Nearest-rank quantile over one window's delta buckets: the inclusive
/// upper bound of the bucket holding the ceil(q*count)-th observation; the
/// overflow bucket reports the last finite bound (a conservative floor).
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t count, double q) {
  if (count == 0 || bounds.empty()) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank)
      return bounds[std::min(i, bounds.size() - 1)];
  }
  return bounds.back();
}

/// One accumulated series: per-kept-window values for a (name, labels) key.
struct SeriesAcc {
  std::string kind;
  std::vector<double> values;             // counter deltas / gauge values
  std::vector<std::uint64_t> counts;      // histogram
  std::vector<double> sums, p50, p95, p99;  // histogram
};

}  // namespace

void TelemetrySampler::write_json(std::ostream& os) const {
  os << "{\"schema\":\"" << kSchemaName
     << "\",\"schema_version\":" << kSchemaVersion << ",\"axis\":";
  write_json_string(os, cfg_.axis);
  os << ",\"window_width\":";
  write_json_number(os, cfg_.window_width);
  os << ",\"period_windows\":" << cfg_.period_windows
     << ",\"windows_closed\":" << next_index_
     << ",\"windows_dropped\":" << dropped_;

  os << ",\"windows\":[";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const TelemetryWindow& w = windows_[i];
    if (i > 0) os << ',';
    os << "{\"index\":" << w.index << ",\"start\":";
    write_json_number(os, w.axis_start);
    os << ",\"end\":";
    write_json_number(os, w.axis_end);
    os << '}';
  }
  os << ']';

  // Union of every series seen in a kept window, keyed (name, labels);
  // windows that predate a series (or lost it) contribute zeros so every
  // array is windows().size() long.
  std::map<std::pair<std::string, Labels>, SeriesAcc> series;
  for (std::size_t wi = 0; wi < windows_.size(); ++wi) {
    for (const auto& s : windows_[wi].delta.samples) {
      SeriesAcc& acc = series[{s.name, s.labels}];
      acc.kind = s.kind;
      const auto pad = [wi](auto& v) { v.resize(wi, {}); };
      if (s.kind == "histogram") {
        pad(acc.counts);
        pad(acc.sums);
        pad(acc.p50);
        pad(acc.p95);
        pad(acc.p99);
        acc.counts.push_back(s.count);
        acc.sums.push_back(s.value);
        acc.p50.push_back(
            bucket_quantile(s.bucket_bounds, s.bucket_counts, s.count, 0.50));
        acc.p95.push_back(
            bucket_quantile(s.bucket_bounds, s.bucket_counts, s.count, 0.95));
        acc.p99.push_back(
            bucket_quantile(s.bucket_bounds, s.bucket_counts, s.count, 0.99));
      } else {
        pad(acc.values);
        acc.values.push_back(s.value);
      }
    }
    for (auto& [key, acc] : series) {
      if (acc.kind == "histogram") {
        acc.counts.resize(wi + 1, 0);
        acc.sums.resize(wi + 1, 0.0);
        acc.p50.resize(wi + 1, 0.0);
        acc.p95.resize(wi + 1, 0.0);
        acc.p99.resize(wi + 1, 0.0);
      } else {
        acc.values.resize(wi + 1, 0.0);
      }
    }
  }

  const auto write_number_array = [&os](const char* key,
                                        const std::vector<double>& v) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) os << ',';
      write_json_number(os, v[i]);
    }
    os << ']';
  };

  os << ",\"series\":[";
  bool first = true;
  for (const auto& [key, acc] : series) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_string(os, key.first);
    os << ",\"kind\":";
    write_json_string(os, acc.kind);
    os << ",\"labels\":";
    write_labels_object(os, key.second);
    if (acc.kind == "histogram") {
      os << ",\"counts\":[";
      for (std::size_t i = 0; i < acc.counts.size(); ++i) {
        if (i > 0) os << ',';
        os << acc.counts[i];
      }
      os << ']';
      write_number_array("sums", acc.sums);
      write_number_array("p50", acc.p50);
      write_number_array("p95", acc.p95);
      write_number_array("p99", acc.p99);
    } else if (acc.kind == "counter") {
      write_number_array("deltas", acc.values);
      std::vector<double> rates;
      rates.reserve(acc.values.size());
      for (std::size_t i = 0; i < acc.values.size(); ++i) {
        const double span =
            windows_[i].axis_end - windows_[i].axis_start;
        rates.push_back(span > 0.0 ? acc.values[i] / span : 0.0);
      }
      write_number_array("rates", rates);
    } else {
      write_number_array("values", acc.values);
    }
    os << '}';
  }
  os << ']';

  os << ",\"slos\":[";
  for (std::size_t i = 0; i < cfg_.slos.size(); ++i) {
    const SloSpec& spec = cfg_.slos[i];
    if (i > 0) os << ',';
    os << "{\"name\":";
    write_json_string(os, spec.name);
    os << ",\"kind\":";
    write_json_string(os, to_string(spec.kind));
    os << ",\"objective\":";
    write_json_number(os, spec.objective);
    std::vector<double> bad, total, burn;
    for (const TelemetryWindow& w : windows_) {
      bad.push_back(w.slo[i].bad);
      total.push_back(w.slo[i].total);
      burn.push_back(w.slo[i].burn);
    }
    write_number_array("bad", bad);
    write_number_array("total", total);
    write_number_array("burn", burn);
    os << ",\"rules\":[";
    for (std::size_t j = 0; j < spec.rules.size(); ++j) {
      const BurnRateRule& r = spec.rules[j];
      if (j > 0) os << ',';
      os << "{\"label\":";
      write_json_string(os, r.label);
      os << ",\"budget_fraction\":";
      write_json_number(os, r.budget_fraction);
      os << ",\"long_windows\":" << r.long_windows
         << ",\"short_windows\":" << r.short_windows << ",\"threshold\":";
      write_json_number(os, r.threshold(cfg_.period_windows));
      os << '}';
    }
    os << "]}";
  }
  os << ']';

  os << ",\"alerts\":[";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const SloAlert& a = alerts_[i];
    if (i > 0) os << ',';
    os << "{\"window\":" << a.window << ",\"slo\":";
    write_json_string(os, a.slo);
    os << ",\"rule\":";
    write_json_string(os, a.rule);
    os << ",\"fired\":" << (a.fired ? "true" : "false")
       << ",\"burn_long\":";
    write_json_number(os, a.burn_long);
    os << ",\"burn_short\":";
    write_json_number(os, a.burn_short);
    os << ",\"threshold\":";
    write_json_number(os, a.threshold);
    os << '}';
  }
  os << "]}";
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prom_labels(const Labels& labels, const char* extra_key,
                        const std::string& extra_value) {
  std::string out;
  for (const auto& [k, v] : labels.items()) {
    if (!out.empty()) out += ',';
    out += k + "=\"" + v + "\"";
  }
  if (extra_key != nullptr) {
    if (!out.empty()) out += ',';
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  return out.empty() ? "" : "{" + out + "}";
}

std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void TelemetrySampler::write_prometheus(std::ostream& os) const {
  const MetricsRegistry::Snapshot snap = reg_.snapshot(0.0);
  std::string last_typed;
  for (const auto& s : snap.samples) {
    const std::string name = prom_name(s.name);
    if (name != last_typed) {
      os << "# TYPE " << name << ' ' << s.kind << '\n';
      last_typed = name;
    }
    if (s.kind == "histogram") {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < s.bucket_bounds.size(); ++i) {
        cum += s.bucket_counts[i];
        os << name << "_bucket"
           << prom_labels(s.labels, "le", prom_number(s.bucket_bounds[i]))
           << ' ' << cum << '\n';
      }
      os << name << "_bucket" << prom_labels(s.labels, "le", "+Inf") << ' '
         << s.count << '\n';
      os << name << "_sum" << prom_labels(s.labels, nullptr, "") << ' '
         << prom_number(s.value) << '\n';
      os << name << "_count" << prom_labels(s.labels, nullptr, "") << ' '
         << s.count << '\n';
    } else {
      os << name << prom_labels(s.labels, nullptr, "") << ' '
         << prom_number(s.value) << '\n';
    }
  }
}

}  // namespace coop::obs::telemetry
