#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "coop/des/engine.hpp"

namespace des = coop::des;

namespace {

des::Task<void> ticker(des::Engine& eng, std::vector<double>& out, double dt,
                       int count) {
  for (int i = 0; i < count; ++i) {
    co_await eng.delay(dt);
    out.push_back(eng.now());
  }
}

TEST(Engine, StartsAtZero) {
  des::Engine eng;
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, DelayAdvancesTime) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.5, 3));
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
  EXPECT_DOUBLE_EQ(times[2], 4.5);
  EXPECT_DOUBLE_EQ(eng.now(), 4.5);
}

TEST(Engine, InterleavesProcessesByTime) {
  des::Engine eng;
  std::vector<double> a, b;
  eng.spawn(ticker(eng, a, 2.0, 3));  // 2, 4, 6
  eng.spawn(ticker(eng, b, 3.0, 2));  // 3, 6
  eng.run();
  EXPECT_EQ(a, (std::vector<double>{2, 4, 6}));
  EXPECT_EQ(b, (std::vector<double>{3, 6}));
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Engine, EqualTimesAreFifoByScheduleOrder) {
  des::Engine eng;
  std::vector<int> order;
  auto proc = [](des::Engine& e, std::vector<int>& ord, int id) -> des::Task<void> {
    co_await e.delay(1.0);
    ord.push_back(id);
  };
  for (int i = 0; i < 8; ++i) eng.spawn(proc(eng, order, i));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, ZeroAndNegativeDelayRunAtCurrentTime) {
  des::Engine eng;
  std::vector<double> times;
  auto proc = [](des::Engine& e, std::vector<double>& t) -> des::Task<void> {
    co_await e.delay(0.0);
    t.push_back(e.now());
    co_await e.delay(-5.0);  // clamped to zero
    t.push_back(e.now());
  };
  eng.spawn(proc(eng, times));
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 0.0}));
}

TEST(Engine, RunUntilStopsAtBoundary) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 10));
  eng.run_until(3.5);
  EXPECT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(eng.now(), 3.5);
  eng.run();
  EXPECT_EQ(times.size(), 10u);
}

TEST(Engine, RunUntilProcessesEventsAtExactBoundary) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 5));
  eng.run_until(3.0);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Engine, SpawnAtSchedulesFutureStart) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn_at(10.0, ticker(eng, times, 1.0, 2));
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{11.0, 12.0}));
}

TEST(Engine, SpawnInPastThrows) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 1));
  eng.run();
  EXPECT_THROW(eng.spawn_at(0.5, ticker(eng, times, 1.0, 1)),
               std::invalid_argument);
}

TEST(Engine, RootExceptionPropagatesFromRun) {
  des::Engine eng;
  auto proc = [](des::Engine& e) -> des::Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  };
  eng.spawn(proc(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, FailedRootIsReapedBeforeRethrow) {
  des::Engine eng;
  auto bomb = [](des::Engine& e) -> des::Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  };
  eng.spawn(bomb(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
  // The failed root was removed with its exception consumed: a second run()
  // must not rethrow the stale exception.
  EXPECT_NO_THROW(eng.run());
  // And the engine stays usable for fresh processes afterwards.
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 2));
  eng.run();
  EXPECT_EQ(times.size(), 2u);
}

TEST(Engine, AllFailedRootsReapedWithSingleRethrow) {
  des::Engine eng;
  auto bomb = [](des::Engine& e, double at, const char* what)
      -> des::Task<void> {
    co_await e.delay(at);
    throw std::runtime_error(what);
  };
  // Both roots fail; run() drains the queue, then rethrows the first spawned
  // root's exception exactly once. Both frames are reaped.
  eng.spawn(bomb(eng, 1.0, "first"));
  eng.spawn(bomb(eng, 2.0, "second"));
  try {
    eng.run();
    FAIL() << "run() should have thrown";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "first");
  }
  EXPECT_NO_THROW(eng.run());
}

TEST(Engine, EventsProcessedCounts) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 4));
  eng.run();
  // 1 start event + 4 delay resumptions.
  EXPECT_EQ(eng.events_processed(), 5u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = []() {
    des::Engine eng;
    std::vector<double> a, b, c;
    eng.spawn(ticker(eng, a, 0.7, 100));
    eng.spawn(ticker(eng, b, 1.1, 80));
    eng.spawn(ticker(eng, c, 0.3, 200));
    eng.run();
    std::vector<double> all;
    all.insert(all.end(), a.begin(), a.end());
    all.insert(all.end(), b.begin(), b.end());
    all.insert(all.end(), c.begin(), c.end());
    return all;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, ManyProcessesStress) {
  des::Engine eng;
  std::vector<std::vector<double>> outs(200);
  for (int i = 0; i < 200; ++i)
    eng.spawn(ticker(eng, outs[i], 0.01 * (i + 1), 50));
  eng.run();
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(outs[i].size(), 50u);
    EXPECT_NEAR(outs[i].back(), 0.01 * (i + 1) * 50, 1e-9);
  }
}

}  // namespace

namespace {

des::Task<void> spawner(des::Engine& eng, std::vector<double>& out) {
  co_await eng.delay(1.0);
  // Processes may spawn further processes mid-run.
  eng.spawn(ticker(eng, out, 0.5, 2));
  co_await eng.delay(5.0);
}

TEST(Engine, SpawnFromRunningTask) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(spawner(eng, times));
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{1.5, 2.0}));
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Engine, RunResumableAfterCompletion) {
  des::Engine eng;
  std::vector<double> a, b;
  eng.spawn(ticker(eng, a, 1.0, 2));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  // A finished engine accepts new work; time continues monotonically.
  eng.spawn(ticker(eng, b, 1.0, 2));
  eng.run();
  EXPECT_EQ(b, (std::vector<double>{3.0, 4.0}));
}

TEST(Engine, RunUntilThenRunCompletes) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 10));
  eng.run_until(4.5);
  EXPECT_DOUBLE_EQ(eng.now(), 4.5);
  eng.run_until(7.0);
  EXPECT_EQ(times.size(), 7u);
  eng.run();
  EXPECT_EQ(times.size(), 10u);
  EXPECT_DOUBLE_EQ(eng.now(), 10.0);
}

TEST(Engine, RunUntilPastEndIdlesAtBoundary) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 2));
  eng.run_until(100.0);
  // Queue drained at t=2; clock parks at the requested horizon.
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);
}

}  // namespace
