/// Section 5.2 of the paper: ARES routes temporary data through cnmem-style
/// device memory pools. This benchmark measures the pool against raw
/// malloc/free for the allocation pattern a hydro step produces (a burst of
/// same-sized scratch arrays allocated and released per kernel), plus a
/// fragmentation-stress pattern.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "coop/memory/device_pool.hpp"

namespace {

void bm_pool_burst(benchmark::State& state) {
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  coop::memory::DevicePool pool(std::size_t{64} << 20);
  std::vector<void*> ptrs(16);
  for (auto _ : state) {
    for (auto& p : ptrs) p = pool.allocate(block);
    for (auto& p : ptrs) pool.deallocate(p);
    benchmark::DoNotOptimize(ptrs.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

void bm_malloc_burst(benchmark::State& state) {
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  std::vector<void*> ptrs(16);
  for (auto _ : state) {
    for (auto& p : ptrs) {
      p = std::malloc(block);
      benchmark::DoNotOptimize(p);
    }
    for (auto& p : ptrs) std::free(p);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

void bm_pool_interleaved(benchmark::State& state) {
  // Alternating sizes with out-of-order frees: exercises best-fit reuse and
  // coalescing.
  coop::memory::DevicePool pool(std::size_t{64} << 20);
  std::vector<void*> ptrs;
  for (auto _ : state) {
    ptrs.clear();
    for (int i = 0; i < 24; ++i)
      ptrs.push_back(pool.allocate(static_cast<std::size_t>(1) << (10 + i % 8)));
    for (std::size_t i = 0; i < ptrs.size(); i += 2) pool.deallocate(ptrs[i]);
    for (std::size_t i = 1; i < ptrs.size(); i += 2) pool.deallocate(ptrs[i]);
    benchmark::DoNotOptimize(pool.free_fragments());
  }
}

}  // namespace

BENCHMARK(bm_pool_burst)->RangeMultiplier(16)->Range(1 << 12, 1 << 22);
BENCHMARK(bm_malloc_burst)->RangeMultiplier(16)->Range(1 << 12, 1 << 22);
BENCHMARK(bm_pool_interleaved);

BENCHMARK_MAIN();
