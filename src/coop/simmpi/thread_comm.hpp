#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

/// \file thread_comm.hpp
/// In-process MPI-like communicator backed by real threads.
///
/// Used for *functional* runs of the mini-app: every rank is a std::thread,
/// messages are moved between mailboxes, and collectives rendezvous on a
/// shared state. Semantics follow MPI point-to-point ordering: messages from
/// the same (source, tag) are received in send order.

namespace coop::simmpi {

class ThreadCommWorld;

/// Per-rank handle; cheap to copy around within the owning rank's thread.
class ThreadComm {
 public:
  ThreadComm(ThreadCommWorld* world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Asynchronous-buffered send (never blocks).
  void send(int dest, int tag, std::vector<double> data);
  /// Blocks until a message with (source, tag) arrives; returns its payload.
  [[nodiscard]] std::vector<double> recv(int source, int tag);

  [[nodiscard]] double allreduce_min(double v);
  [[nodiscard]] double allreduce_max(double v);
  [[nodiscard]] double allreduce_sum(double v);
  void barrier();

 private:
  ThreadCommWorld* world_;
  int rank_;
};

/// Shared state for `size` ranks.
class ThreadCommWorld {
 public:
  explicit ThreadCommWorld(int size);
  ThreadCommWorld(const ThreadCommWorld&) = delete;
  ThreadCommWorld& operator=(const ThreadCommWorld&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] ThreadComm comm(int rank) {
    return ThreadComm(this, rank);
  }

 public:
  /// Rendezvous state for allreduce collectives (public for the reduction
  /// helper in the implementation file; not part of the user API).
  struct Collective {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    double accum = 0;
    double result = 0;
  };

 private:
  friend class ThreadComm;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // keyed by (source, tag)
    std::map<std::pair<int, int>, std::queue<std::vector<double>>> queues;
  };

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Collective reduce_;
};

}  // namespace coop::simmpi
