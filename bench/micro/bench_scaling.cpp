/// Multi-node scaling of the three node modes. The paper evaluates one node
/// but runs ARES "on millions of processors"; this bench checks that the
/// single-node mode comparison (and the heterogeneous gain) survives weak
/// and strong scaling with z-split node decomposition and an
/// InfiniBand-like internode link.

#include <cstdio>

#include "coop/core/timed_sim.hpp"

namespace {

using namespace coop;

double run(core::NodeMode mode, long x, long y, long z, int nodes) {
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = {{0, 0, 0}, {x, y, z}};
  tc.nodes = nodes;
  tc.timesteps = 20;
  return core::run_timed(tc).makespan;
}

}  // namespace

int main() {
  std::printf("=== Weak scaling: 600x480x160 zones PER NODE, 20 steps ===\n");
  std::printf("%7s | %9s %9s %9s | %11s | %10s\n", "nodes", "Default", "MPS",
              "Hetero", "hetero gain", "weak eff.");
  double t1_def = 0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    const double td =
        run(core::NodeMode::kOneRankPerGpu, 600, 480, 160L * nodes, nodes);
    const double tm =
        run(core::NodeMode::kMpsPerGpu, 600, 480, 160L * nodes, nodes);
    const double th =
        run(core::NodeMode::kHeterogeneous, 600, 480, 160L * nodes, nodes);
    if (nodes == 1) t1_def = td;
    std::printf("%7d | %9.2f %9.2f %9.2f | %10.1f%% | %9.1f%%\n", nodes, td,
                tm, th, 100.0 * (td - th) / td, 100.0 * t1_def / td);
  }

  std::printf("\n=== Strong scaling: 600x480x640 zones TOTAL, 20 steps ===\n");
  std::printf("%7s | %9s %9s %9s | %10s\n", "nodes", "Default", "MPS",
              "Hetero", "speedup");
  double t1 = 0;
  for (int nodes : {1, 2, 4, 8}) {
    const double td = run(core::NodeMode::kOneRankPerGpu, 600, 480, 640, nodes);
    const double tm = run(core::NodeMode::kMpsPerGpu, 600, 480, 640, nodes);
    const double th =
        run(core::NodeMode::kHeterogeneous, 600, 480, 640, nodes);
    if (nodes == 1) t1 = td;
    std::printf("%7d | %9.2f %9.2f %9.2f | %9.2fx\n", nodes, td, tm, th,
                t1 / td);
  }
  std::printf(
      "\nReading: the heterogeneous gain is a per-node property and holds\n"
      "at scale; strong scaling eventually drops each node below the\n"
      "memory threshold (flattening Default's penalty away) and shrinks\n"
      "per-kernel occupancy.\n");
  return 0;
}
