#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/obs/telemetry/slo.hpp"

/// \file sampler.hpp
/// Windowed, clock-free telemetry: rate-over-time series + SLO alerting.
///
/// The metrics registry answers "how much, in total"; production triage
/// needs "how much, per window, and when did it start going wrong". The
/// `TelemetrySampler` owns a private `MetricsRegistry` that producers write
/// into, and periodically freezes registry *deltas* into bounded
/// ring-buffered windows keyed on a logical cadence axis — sim-time for
/// `run_timed`, cumulative request count for the scenario service,
/// canonical cell index for sweeps. **Never wall clock**: the axis, the
/// window contents, the SLO tallies, and the alert timeline are all
/// functions of simulated work, so identical seeds produce byte-identical
/// telemetry artifacts serial vs parallel, run after run.
///
/// Cadence rules (DESIGN.md §14):
///  * `tick(axis)` may only be called at quiescent points — between request
///    groups, between canonically-ordered cell replays, between simulation
///    steps — never while another thread is mid-update. The registry itself
///    is externally synchronized, exactly like `MetricsRegistry`.
///  * Window k covers the half-open axis range [k*W, (k+1)*W). A tick at or
///    past a window's end closes it; everything recorded since the previous
///    close lands in the first window closed by that tick, and any further
///    boundaries crossed by the same tick close as empty windows. This
///    attribution is deterministic by construction.
///  * `flush(axis)` closes the in-progress partial window so end-of-run
///    activity is never silently dropped from the artifact.
///
/// Each closed window carries the delta snapshot
/// (`MetricsRegistry::snapshot_since`) plus one `SloWindowStat` per
/// configured SLO; burn-rate rules are evaluated on close and fire
/// edge-triggered alerts both into the alert timeline and — when a flight
/// recorder is attached — as typed `Component::kTelemetry` events (name
/// `alert:<slo>` / `clear:<slo>`, kv: window, rule index, pooled burns,
/// threshold), so a crash dump shows the alert that preceded the failure.
///
/// Output: `write_json` emits the `coophet.telemetry` v1 artifact (windows,
/// per-series delta/rate/quantile arrays, SLO tallies, alert timeline);
/// `write_prometheus` emits the cumulative registry state in Prometheus
/// text exposition format for scrape-style consumers.

namespace coop::obs::telemetry {

/// Correlation id the sampler's flight events record under; distinctive so
/// `flight_log --cid` can isolate the telemetry stream from request cids.
inline constexpr log::CorrelationId kTelemetryCid = 0x7e1e;

struct TelemetryConfig {
  /// Cadence axis label, recorded in the artifact ("sim_time", "requests",
  /// "cells"). Purely descriptive — the sampler only sees axis values.
  std::string axis = "sim_time";
  double window_width = 1.0;   ///< axis units per window (> 0)
  std::size_t max_windows = 256;  ///< ring capacity; oldest windows drop
  /// SLO period in windows — the "30 days" the error budget spans; burn
  /// thresholds derive from it (slo.hpp).
  std::size_t period_windows = 100;
  std::vector<SloSpec> slos;

  /// Flight recorder for window + alert events (not owned; may be nullptr).
  /// The writer opens lazily on the first window close and is bound to that
  /// thread — close windows from one thread, like FlightWriter requires.
  log::FlightRecorder* flight = nullptr;
  log::CorrelationId flight_cid = kTelemetryCid;

  void validate() const;  ///< throws std::invalid_argument
};

/// One closed telemetry window.
struct TelemetryWindow {
  std::uint64_t index = 0;  ///< global window index (survives ring drops)
  double axis_start = 0.0;
  double axis_end = 0.0;
  /// Registry delta over the window (gauges: value at close).
  MetricsRegistry::Snapshot delta;
  std::vector<SloWindowStat> slo;  ///< parallel to TelemetryConfig::slos
};

class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryConfig cfg = {});

  /// The sampler-owned registry producers record into. Externally
  /// synchronized, same as a bare MetricsRegistry.
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return reg_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return reg_;
  }
  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return cfg_;
  }

  /// Advances the cadence axis, closing every window boundary at or before
  /// `axis`. Quiescent points only; axis must not go backwards.
  void tick(double axis);

  /// Closes the in-progress partial window ending at `axis` (no-op when no
  /// axis progress happened since the last close).
  void flush(double axis);

  [[nodiscard]] const std::deque<TelemetryWindow>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] const std::vector<SloAlert>& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] std::uint64_t windows_closed() const noexcept {
    return next_index_;
  }
  [[nodiscard]] std::uint64_t windows_dropped() const noexcept {
    return dropped_;
  }

  /// Writes the `coophet.telemetry` v1 artifact.
  void write_json(std::ostream& os) const;

  /// Writes the cumulative registry state in Prometheus text exposition
  /// format ('.' in metric names becomes '_'; histograms expand to
  /// _bucket/_sum/_count with cumulative le= labels).
  void write_prometheus(std::ostream& os) const;

  static constexpr const char* kSchemaName = "coophet.telemetry";
  static constexpr int kSchemaVersion = 1;

 private:
  void close_window(double end);
  void evaluate_rules(const TelemetryWindow& w);

  TelemetryConfig cfg_;
  MetricsRegistry reg_;
  MetricsRegistry::Snapshot prev_;  ///< cumulative snapshot at last close
  double window_start_ = 0.0;
  std::uint64_t next_index_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<TelemetryWindow> windows_;
  /// Full per-window tallies per SLO (never ring-dropped: one small struct
  /// per window; burn rules need trailing ranges even after series drop).
  std::vector<std::vector<SloWindowStat>> slo_history_;
  std::vector<std::vector<bool>> rule_active_;  ///< [slo][rule] firing state
  std::vector<SloAlert> alerts_;
  log::FlightWriter fw_;
  bool fw_opened_ = false;
};

}  // namespace coop::obs::telemetry
