#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file result_cache.hpp
/// Content-addressed LRU cache of completed scenario results.
///
/// The scenario server memoizes finished `coophet.run_report` JSON under the
/// query's canonical config key (service/config_key.hpp). Because the timed
/// simulation is deterministic (same config => bitwise-identical
/// TimedResult, PR 5) and the report writer is deterministic too, a cache
/// hit returns bytes identical to what a cold run would have produced — the
/// cache is an exact memo table, not an approximation, which is what lets
/// the load-test gate compare hit bytes against the cold-run artifact.
///
/// Entries are shared immutable strings: a hit hands out a refcounted
/// pointer, so eviction never invalidates bytes a concurrent reader is
/// still streaming. Capacity-bounded, least-recently-used eviction;
/// thread-safe; all statistics are monotonic counters.

namespace coop::service {

class ResultCache {
 public:
  using Bytes = std::shared_ptr<const std::string>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Cumulative payload bytes evicted — the cost of refilling what LRU
    /// pressure threw away.
    std::uint64_t evicted_bytes = 0;
    /// Age of the most recent victim in insertion ticks (insertions counted
    /// between the victim's last `put` and its eviction). Small values mean
    /// the cache is churning entries it barely held.
    std::uint64_t last_eviction_age = 0;
  };

  /// `capacity` >= 1 entries; throws kConfig on 0.
  explicit ResultCache(std::size_t capacity);

  /// The bytes under `key`, bumping it to most-recently-used; nullptr on a
  /// miss. Thread-safe.
  [[nodiscard]] Bytes get(const std::string& key);

  /// Peeks without touching recency or the hit/miss counters (used by the
  /// server to distinguish "served from cache" from introspection).
  [[nodiscard]] Bytes peek(const std::string& key) const;

  /// Inserts (or refreshes) `key` as most-recently-used, evicting the
  /// least-recently-used entry when full. Thread-safe.
  void put(const std::string& key, Bytes bytes);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] Stats stats() const;

  /// Keys most-recently-used first (test/debug aid).
  [[nodiscard]] std::vector<std::string> keys_mru_first() const;

 private:
  struct Entry {
    std::string key;
    Bytes bytes;
    std::uint64_t tick = 0;  ///< stats_.insertions at the entry's last put
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace coop::service
