#pragma once

#include "coop/hydro/eos.hpp"

/// \file riemann.hpp
/// Exact solution of the 1D Riemann problem for an ideal gas.
///
/// Used as the independent ground truth for the hydro core: the Sod shock
/// tube has a closed-form (up to one Newton solve) solution with a
/// rarefaction, contact and shock, so a finite-volume scheme can be
/// validated against exact densities and wave positions rather than just
/// conservation. Standard construction (see Toro, "Riemann Solvers and
/// Numerical Methods for Fluid Dynamics", ch. 4).

namespace coop::hydro {

/// Primitive state on one side of the interface.
struct RiemannState {
  double rho = 1.0;
  double u = 0.0;  ///< velocity normal to the interface
  double p = 1.0;
};

/// Exact Riemann solution sampler.
class RiemannProblem {
 public:
  /// Solves the star-region pressure/velocity for the given left/right
  /// states (Newton iteration on the pressure function).
  RiemannProblem(RiemannState left, RiemannState right, IdealGas eos = {});

  /// Samples the self-similar solution at x/t (interface at x = 0, t > 0).
  [[nodiscard]] RiemannState sample(double xi) const;

  [[nodiscard]] double star_pressure() const noexcept { return p_star_; }
  [[nodiscard]] double star_velocity() const noexcept { return u_star_; }

 private:
  RiemannState l_, r_;
  IdealGas eos_;
  double p_star_ = 0;
  double u_star_ = 0;
};

}  // namespace coop::hydro
