#pragma once

#include <cstdint>
#include <vector>

#include "coop/core/node_mode.hpp"
#include "coop/core/sim_error.hpp"
#include "coop/core/trace.hpp"
#include "coop/decomp/decomposition.hpp"
#include "coop/devmodel/specs.hpp"
#include "coop/fault/fault_injector.hpp"
#include "coop/hydro/kernel_catalog.hpp"
#include "coop/mesh/box.hpp"

/// \file timed_sim.hpp
/// Discrete-event timed simulation of the ARES Sedov run on the
/// heterogeneous node — the engine behind every figure reproduction.
///
/// Each MPI rank is a DES process. Per timestep a rank (1) walks the
/// 80-kernel Sedov catalog charging the device model's per-kernel times
/// (launch overhead, occupancy/coalescing efficiency, MPS sharing, UM pump
/// spill), (2) exchanges halos with its face neighbors over the alpha-beta
/// interconnect, and (3) joins the dt allreduce. In the Heterogeneous mode
/// the feedback balancer adjusts the CPU slab fraction between iterations
/// (paper 6.2).

namespace coop::obs {
class MetricsRegistry;
class Tracer;
}  // namespace coop::obs

namespace coop::obs::analysis {
class HbLog;
}  // namespace coop::obs::analysis

namespace coop::obs::log {
class FlightWriter;
}  // namespace coop::obs::log

namespace coop::obs::telemetry {
class TelemetrySampler;
}  // namespace coop::obs::telemetry

namespace coop::core {

/// Watchdog budgets for one supervised `run_timed` call; 0 = unlimited.
/// Exceeding any budget raises a `SimError` of kind kTimeout from inside
/// the run loop (between event slices, never inside a coroutine).
struct RunBudget {
  std::uint64_t max_events = 0;  ///< DES events processed
  double max_sim_s = 0.0;        ///< simulated seconds
  double max_wall_s = 0.0;       ///< wall-clock seconds
  [[nodiscard]] bool any() const noexcept {
    return max_events > 0 || max_sim_s > 0.0 || max_wall_s > 0.0;
  }
};

struct TimedConfig {
  NodeMode mode = NodeMode::kOneRankPerGpu;
  devmodel::NodeSpec node = devmodel::NodeSpec::rzhasgpu();
  mesh::Box global{};
  int timesteps = 20;
  /// Number of identical nodes; >1 splits the problem across nodes in z and
  /// routes cross-node halo messages over the internode link.
  int nodes = 1;
  int ranks_per_gpu = 4;     ///< GPU-sharing factor for the MPS mode
  /// Heterogeneous CPU zone share; < 0 selects the FLOPS-based initial
  /// guess (paper 6.2).
  double cpu_fraction = -1.0;
  /// nvcc __host__ __device__-lambda std::function issue present (5.1).
  bool compiler_bug = true;
  /// Adjust the heterogeneous split between iterations.
  bool load_balance = true;
  int catalog_kernels = devmodel::calib::kAresKernelCount;
  long ghosts = 1;

  // Ablation toggles (DESIGN.md 7):
  bool model_um_threshold = true;  ///< host UM pump capacity (Fig. 12 knee)
  bool model_mps_overlap = true;   ///< kernel overlap under MPS

  // Forward-looking options the paper plans to explore (5.3 / 8):
  /// GPU-direct: halo messages between two GPU-driving ranks bypass host
  /// staging and travel over the peer link instead.
  bool gpu_direct = false;
  /// Overlap halo communication with interior compute: boundary zones are
  /// computed first, sends posted, then interior compute hides the wire.
  bool overlap_halo = false;

  /// Optional phase-level tracing (not owned; may be nullptr). Each rank
  /// records compute / halo-wait / reduce spans for Gantt visualization.
  TraceRecorder* trace = nullptr;

  /// Optional unified tracer (not owned; may be nullptr). Superset of
  /// `trace`: phase spans (cat "phase") plus per-kernel sub-spans (cat
  /// "kernel", gated by `Tracer::kernel_spans`), fault/recovery/checkpoint/
  /// rebalance instant events, and per-step counter tracks (cpu_fraction,
  /// modeled pool bytes, halo bytes on wire, DES queue depth). Tracks are
  /// grouped pid = node, tid = rank. Pure observation: attaching a tracer
  /// never changes the simulated schedule.
  obs::Tracer* tracer = nullptr;

  /// Optional metrics registry (not owned; may be nullptr). run_timed
  /// publishes per-iteration simulation metrics (sim.*, comm.*, pool.*) and
  /// binds the feedback balancer's lb.* metrics. Pure observation.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional happens-before log (not owned; may be nullptr). When set,
  /// the comm world records send posts/arrivals, recv windows and
  /// collective arrival/return times, and the event-driven GPU backend
  /// records queue-drain waits — the causal edges `obs::analysis` matches
  /// into wait states and the critical path. Pure observation.
  obs::analysis::HbLog* hb = nullptr;

  /// Optional flight-recorder writer (not owned; may be nullptr), carrying
  /// the caller's correlation id. run_timed records run boundaries,
  /// per-iteration steps, budget/cancellation trips and recovery milestones
  /// under that id, and the fault injector mirrors every consumed injection
  /// — the black-box history a crash dump reconstructs. Pure observation:
  /// attaching a writer never changes the schedule or the TimedResult bytes.
  obs::log::FlightWriter* flight = nullptr;

  /// Optional windowed telemetry sampler (not owned; may be nullptr). Rank 0
  /// records per-iteration series into the sampler's own registry —
  /// sim.iterations counter, sim.iteration_seconds histogram, and the
  /// sim.imbalance / sim.des_queue_depth gauges — then ticks the sampler's
  /// sim-time cadence axis, closing windows as simulated time crosses
  /// window boundaries (DESIGN.md 14; never wall clock). The run does NOT
  /// flush: the caller closes the final partial window with
  /// `flush(result.makespan)` before writing the artifact, so several runs
  /// may share one cadence. Same re-entrancy contract as the other sinks:
  /// one sampler per concurrent call. Pure observation.
  obs::telemetry::TelemetrySampler* telemetry = nullptr;

  /// Use the event-driven processor-sharing GPU queue (devmodel::GpuServer)
  /// instead of the closed-form kernel times. Exact for the symmetric
  /// decompositions the paper uses; additionally captures asymmetric
  /// sharing. Roughly 80x more DES events per rank-step. Halo overlap is
  /// not combined with this backend.
  bool use_gpu_server = false;

  /// Optional fault schedule (not owned; may be nullptr = fault-free run).
  /// An empty plan behaves bitwise-identically to a nullptr plan. Same plan
  /// + same config => bitwise-identical TimedResult (seed determinism).
  const fault::FaultPlan* faults = nullptr;
  /// Recovery-policy knobs; only consulted when `faults` is set.
  fault::RecoveryConfig recovery{};

  /// Per-call watchdog budgets (sweep supervision). When any budget is set
  /// (or `cancel` is non-null) the engine is driven in fixed event slices
  /// with budget/cancellation checks between slices — bitwise identical
  /// event order, a few branches per ~4k events of overhead. Exceeding a
  /// budget throws kTimeout; a triggered token throws kCancelled.
  RunBudget budget{};
  /// Optional cooperative cancellation (not owned; may be nullptr). Shared
  /// across concurrent cells of a campaign; polled between event slices.
  const CancelToken* cancel = nullptr;
};

struct TimedResult {
  double makespan = 0.0;  ///< simulated seconds for the full run
  std::vector<double> iteration_times;
  double final_cpu_fraction = 0.0;
  double avg_max_cpu_compute = 0.0;  ///< mean over iters of slowest CPU rank
  double avg_max_gpu_compute = 0.0;  ///< mean over iters of slowest GPU rank
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  decomp::CommStats comm_stats{};  ///< of the final decomposition
  int ranks = 0;
  int lb_iterations_to_converge = -1;  ///< -1: never converged / no LB

  /// Resilience accounting (all zero on fault-free runs). Note that with
  /// faults, `iteration_times` includes aborted and replayed passes, so it
  /// may be longer than `timesteps`.
  fault::ResilienceStats resilience{};
  /// Zones each rank owns in the final decomposition (0 = retired rank).
  std::vector<long> final_zones_per_rank;
  /// 1 when the rank drives a GPU in the final decomposition (a policy flip
  /// after a device death clears it). Parallel to `final_zones_per_rank`.
  std::vector<std::uint8_t> final_rank_is_gpu;
};

/// Runs the timed simulation; deterministic for a given config.
///
/// Re-entrancy contract: `run_timed` is safe to call concurrently from
/// multiple threads (the parallel sweep executor depends on this). Every
/// piece of mutable state — the DES engine, world, ranks, GPU servers,
/// communication fabric, kernel-timer registry, device pool, feedback
/// balancer, fault injector — is constructed inside the call and owned by
/// it; the only statics reachable from here are immutable lookup tables
/// (kernel catalogs, node specs, figure specs). The caller must keep each
/// concurrent call's observability sinks (`trace`/`tracer`/`metrics`/`hb`)
/// distinct: sinks are not internally synchronized, and sharing one across
/// calls is a data race. Any code added here must preserve this contract —
/// no mutable statics, no thread-locals carrying state across calls, no
/// writes through shared globals.
[[nodiscard]] TimedResult run_timed(const TimedConfig& cfg);

}  // namespace coop::core
