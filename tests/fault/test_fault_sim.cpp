#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "coop/core/timed_sim.hpp"
#include "coop/fault/fault_plan.hpp"

/// End-to-end resilience tests: faults injected into the timed simulation
/// and recovered by the policies layered on the DES.

namespace core = coop::core;
namespace fault = coop::fault;
using coop::mesh::Box;

namespace {

core::TimedConfig base_config(core::NodeMode mode, long x, long y, long z,
                              int steps) {
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = Box{{0, 0, 0}, {x, y, z}};
  tc.timesteps = steps;
  return tc;
}

void expect_identical(const core::TimedResult& a, const core::TimedResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iteration_times, b.iteration_times);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_TRUE(a.resilience == b.resilience);
  EXPECT_EQ(a.final_zones_per_rank, b.final_zones_per_rank);
}

TEST(FaultSim, EmptyPlanMatchesFaultFreeRunBitwise) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 8);
  const auto clean = core::run_timed(cfg);
  const fault::FaultPlan empty = fault::FaultPlan::none();
  cfg.faults = &empty;
  const auto with_empty = core::run_timed(cfg);
  expect_identical(clean, with_empty);
  EXPECT_EQ(with_empty.resilience.faults_injected, 0);
}

TEST(FaultSim, DeterministicReplayOfSeededPlan) {
  fault::PlanConfig pc;
  pc.horizon_s = 3.0;
  pc.ranks = 4;
  pc.transient_rate = 2.0;
  pc.slowdown_rate = 1.0;
  pc.halo_drop_rate = 2.0;
  pc.pool_exhaustion_rate = 0.5;
  const auto plan = fault::make_random_plan(1234, pc);
  ASSERT_FALSE(plan.empty());

  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 12);
  cfg.faults = &plan;
  const auto a = core::run_timed(cfg);
  const auto b = core::run_timed(cfg);
  expect_identical(a, b);
  EXPECT_GT(a.resilience.faults_injected, 0);
  EXPECT_EQ(a.resilience.faults_recovered, a.resilience.faults_injected);
}

TEST(FaultSim, GpuDeathDegradesGracefully) {
  // Clean run on the full device set, to measure the iteration period and
  // establish the lower bound of the acceptance inequality.
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 24);
  const auto clean = core::run_timed(cfg);
  const double iter = clean.iteration_times.front();

  // Clean run on the reduced device set (3 GPUs): the upper bound.
  auto cfg3 = cfg;
  cfg3.node.gpu_count = 3;
  const auto clean_reduced = core::run_timed(cfg3);

  // Kill GPU 1 mid-run (between iterations 8 and 9).
  fault::FaultPlan plan;
  plan.add({.time = 8.5 * iter, .kind = fault::FaultKind::kGpuDeath,
            .node = 0, .gpu = 1});
  cfg.faults = &plan;
  const auto degraded = core::run_timed(cfg);

  // The run completes all timesteps (plus the replayed pass).
  EXPECT_GE(degraded.iteration_times.size(), 25u);
  EXPECT_EQ(degraded.resilience.gpu_deaths, 1);
  EXPECT_EQ(degraded.resilience.policy_flips, 1);
  EXPECT_EQ(degraded.resilience.rollbacks, 1);
  EXPECT_EQ(degraded.resilience.replayed_iterations, 1);
  EXPECT_GT(degraded.resilience.rework_time, 0.0);
  EXPECT_GT(degraded.resilience.time_to_rebalance(), 0.0);

  // The dead rank's zones are absorbed by the survivors: every zone is still
  // owned, and rank 1 (whose CPU share is below the half-plane floor at
  // ny = 96) retired with an empty domain.
  const long total = std::accumulate(degraded.final_zones_per_rank.begin(),
                                     degraded.final_zones_per_rank.end(), 0L);
  EXPECT_EQ(total, 320L * 96 * 160);
  EXPECT_EQ(degraded.final_zones_per_rank[1], 0);
  for (int q : {0, 2, 3}) {
    EXPECT_GT(degraded.final_zones_per_rank[static_cast<std::size_t>(q)],
              320L * 96 * 160 / 4)
        << "survivor " << q << " should own more than its original share";
  }

  // Makespan strictly between the clean run and the clean reduced-set run.
  EXPECT_GT(degraded.makespan, clean.makespan);
  EXPECT_LT(degraded.makespan, clean_reduced.makespan);
}

TEST(FaultSim, GpuDeathWithLargeNyKeepsOrphanAsCpuRank) {
  // At ny = 480 the flipped rank's model share is ~1.8 planes — above the
  // retirement floor — so it survives as a sequential-CPU rank.
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 160, 480, 80, 10);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = 3.5 * clean.iteration_times.front(),
            .kind = fault::FaultKind::kGpuDeath, .node = 0, .gpu = 2});
  cfg.faults = &plan;
  const auto degraded = core::run_timed(cfg);
  EXPECT_EQ(degraded.resilience.policy_flips, 1);
  EXPECT_GT(degraded.final_zones_per_rank[2], 0);
  EXPECT_LT(degraded.final_zones_per_rank[2],
            degraded.final_zones_per_rank[0] / 10);
  const long total = std::accumulate(degraded.final_zones_per_rank.begin(),
                                     degraded.final_zones_per_rank.end(), 0L);
  EXPECT_EQ(total, 160L * 480 * 80);
}

TEST(FaultSim, TransientLaunchFailuresRetryWithBackoff) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 8);
  const auto clean = core::run_timed(cfg);

  fault::FaultPlan plan;
  plan.add({.time = clean.iteration_times.front() * 1.5,
            .kind = fault::FaultKind::kTransientLaunch, .rank = 0,
            .count = 2});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.launch_retries, 2);
  EXPECT_GT(r.resilience.retry_time, 0.0);
  EXPECT_EQ(r.resilience.gpu_deaths, 0);
  EXPECT_NEAR(r.makespan, clean.makespan + r.resilience.retry_time, 1e-9);
}

TEST(FaultSim, TransientBurstEscalatesToDeath) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 12);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = clean.iteration_times.front() * 2.5,
            .kind = fault::FaultKind::kTransientLaunch, .rank = 3,
            .count = 10});  // >= default max_launch_attempts
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.gpu_deaths, 1);
  EXPECT_EQ(r.resilience.policy_flips, 1);
  EXPECT_EQ(r.resilience.launch_retries, 0);
  EXPECT_GT(r.makespan, clean.makespan);
}

TEST(FaultSim, SlowdownStretchesMakespan) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 10);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = 0.0, .kind = fault::FaultKind::kSlowdown, .rank = 2,
            .duration = clean.makespan, .factor = 2.0});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_GT(r.makespan, 1.5 * clean.makespan);
  EXPECT_EQ(r.resilience.faults_injected, 1);
  EXPECT_EQ(r.resilience.faults_recovered, 1);
}

TEST(FaultSim, HaloDropsChargeWatchdogAndRetransmit) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 8);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = clean.iteration_times.front() * 1.5,
            .kind = fault::FaultKind::kHaloDrop, .rank = 1, .count = 2});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.halo_retransmits, 2);
  EXPECT_EQ(r.resilience.neighbors_declared_dead, 0);
  EXPECT_GT(r.makespan, clean.makespan);
}

TEST(FaultSim, HaloDropFloodDeclaresNeighborDead) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 8);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  // Rank 0 has a single neighbor; its retransmit budget (3) cannot absorb
  // 5 drops, so the watchdog declares the peer dead.
  plan.add({.time = clean.iteration_times.front() * 1.5,
            .kind = fault::FaultKind::kHaloDrop, .rank = 0, .count = 5});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.neighbors_declared_dead, 1);
  EXPECT_EQ(r.resilience.halo_retransmits, 3);
}

TEST(FaultSim, MpsCrashRestartsAndSerializes) {
  auto cfg = base_config(core::NodeMode::kMpsPerGpu, 320, 96, 160, 8);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = clean.iteration_times.front() * 1.5,
            .kind = fault::FaultKind::kMpsCrash, .node = 0});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.mps_restarts, 1);
  EXPECT_GT(r.makespan, clean.makespan);
}

TEST(FaultSim, PoolExhaustionStallsButRunCompletes) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 8);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = clean.iteration_times.front() * 1.5,
            .kind = fault::FaultKind::kPoolExhaustion, .rank = 2});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.pool_exhaustions, 1);
  EXPECT_GT(r.makespan, clean.makespan);
  EXPECT_EQ(r.iteration_times.size(), 8u);
}

TEST(FaultSim, CheckpointingChargesWritesAndBoundsReplay) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 16);
  const auto clean = core::run_timed(cfg);

  // Checkpointing without faults: monotone overhead, correct count.
  fault::FaultPlan empty = fault::FaultPlan::none();
  cfg.faults = &empty;
  cfg.recovery.checkpoint_interval = 4;
  const auto ckpt = core::run_timed(cfg);
  EXPECT_EQ(ckpt.resilience.checkpoints_taken, 4);
  EXPECT_GT(ckpt.resilience.checkpoint_time, 0.0);
  EXPECT_GT(ckpt.makespan, clean.makespan);

  // A death detected during step 11 (checkpoints at 8 and 12 bracket it)
  // replays from the previous checkpoint: 4 passes (steps 8..11), not the
  // whole prefix. 10.5x the clean iteration period falls between the compute
  // starts of steps 10 and 11 even with checkpoint overhead added.
  fault::FaultPlan plan;
  plan.add({.time = 10.5 * clean.iteration_times.front(),
            .kind = fault::FaultKind::kGpuDeath, .node = 0, .gpu = 1});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.rollbacks, 1);
  EXPECT_EQ(r.resilience.replayed_iterations, 4);
  EXPECT_GE(r.iteration_times.size(), 20u);
}

TEST(FaultSim, HeterogeneousModeSurvivesGpuDeath) {
  auto cfg = base_config(core::NodeMode::kHeterogeneous, 320, 480, 160, 12);
  const auto clean = core::run_timed(cfg);
  fault::FaultPlan plan;
  plan.add({.time = 4.5 * clean.iteration_times.front(),
            .kind = fault::FaultKind::kGpuDeath, .node = 0, .gpu = 0});
  cfg.faults = &plan;
  const auto r = core::run_timed(cfg);
  EXPECT_EQ(r.resilience.gpu_deaths, 1);
  EXPECT_GT(r.makespan, clean.makespan);
  const long total = std::accumulate(r.final_zones_per_rank.begin(),
                                     r.final_zones_per_rank.end(), 0L);
  EXPECT_EQ(total, 320L * 480 * 160);
}

TEST(FaultSim, PlanValidatedAgainstTopology) {
  auto cfg = base_config(core::NodeMode::kOneRankPerGpu, 320, 96, 160, 4);
  fault::FaultPlan plan;
  plan.add({.time = 0.1, .kind = fault::FaultKind::kGpuDeath, .node = 0,
            .gpu = 9});
  cfg.faults = &plan;
  EXPECT_THROW((void)core::run_timed(cfg), std::invalid_argument);
}

}  // namespace
