#include <gtest/gtest.h>

#include <cmath>

#include "coop/hydro/lagrange1d.hpp"
#include "coop/hydro/riemann.hpp"

namespace hy = coop::hydro;

namespace {

hy::Lagrange1D make_sod(long zones, bool remap) {
  hy::Lagrange1D::Config cfg;
  cfg.remap = remap;
  return hy::Lagrange1D(zones, 0.0, 1.0, cfg, [](double x) {
    return x < 0.5 ? hy::Lagrange1D::Primitives{1.0, 0.0, 1.0}
                   : hy::Lagrange1D::Primitives{0.125, 0.0, 0.1};
  });
}

double run_to(hy::Lagrange1D& sim, double t_end) {
  double t = 0;
  while (t < t_end) {
    const double dt = std::min(sim.stable_dt(), t_end - t);
    sim.step(dt);
    t += dt;
  }
  return t;
}

double sod_l1_error(const hy::Lagrange1D& sim, double t) {
  hy::RiemannProblem exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  double l1 = 0;
  for (long j = 0; j < sim.zones(); ++j) {
    const double xi = (sim.zone_center(j) - 0.5) / t;
    l1 += std::abs(sim.density(j) - exact.sample(xi).rho) /
          static_cast<double>(sim.zones());
  }
  return l1;
}

TEST(Lagrange1D, UniformGasStaysStatic) {
  hy::Lagrange1D::Config cfg;
  hy::Lagrange1D sim(64, 0.0, 1.0, cfg, [](double) {
    return hy::Lagrange1D::Primitives{1.0, 0.0, 1.0};
  });
  for (int s = 0; s < 20; ++s) sim.step(sim.stable_dt());
  for (long j = 0; j < 64; ++j) {
    ASSERT_DOUBLE_EQ(sim.density(j), 1.0);
    ASSERT_DOUBLE_EQ(sim.velocity_node(j), 0.0);
  }
}

TEST(Lagrange1D, PureLagrangeSodMatchesExact) {
  auto sim = make_sod(200, /*remap=*/false);
  const double t = run_to(sim, 0.2);
  // VNR Lagrange at N=200: the mesh follows the contact, so the profile is
  // sharper than the Eulerian Rusanov result (bar there: 0.035).
  EXPECT_LT(sod_l1_error(sim, t), 0.030);
}

TEST(Lagrange1D, AleRemapSodMatchesExact) {
  auto sim = make_sod(200, /*remap=*/true);
  const double t = run_to(sim, 0.2);
  // Remap-every-step adds first-order advection diffusion.
  EXPECT_LT(sod_l1_error(sim, t), 0.045);
}

TEST(Lagrange1D, LagrangeMeshFollowsTheFlow) {
  auto sim = make_sod(100, false);
  run_to(sim, 0.15);
  // Nodes around the expansion moved right; the reference mesh did not.
  double moved = 0;
  for (long i = 0; i <= 100; ++i)
    moved = std::max(moved, std::abs(sim.node_position(i) -
                                     static_cast<double>(i) / 100.0));
  EXPECT_GT(moved, 0.01);
  // Mesh remains monotone (no tangling).
  for (long i = 0; i < 100; ++i)
    ASSERT_LT(sim.node_position(i), sim.node_position(i + 1));
}

TEST(Lagrange1D, AleKeepsReferenceMesh) {
  auto sim = make_sod(100, true);
  run_to(sim, 0.15);
  for (long i = 0; i <= 100; ++i)
    ASSERT_NEAR(sim.node_position(i), static_cast<double>(i) / 100.0, 1e-12);
}

TEST(Lagrange1D, MassExactlyConservedBothModes) {
  for (bool remap : {false, true}) {
    auto sim = make_sod(150, remap);
    const double m0 = sim.total_mass();
    run_to(sim, 0.18);
    EXPECT_NEAR(sim.total_mass(), m0, 1e-12 * m0) << "remap=" << remap;
  }
}

TEST(Lagrange1D, MomentumMatchesExactSolutionIntegral) {
  // Total momentum of the tube equals the integral of rho*u over the exact
  // Riemann solution at the same time (walls exert no force until waves
  // arrive; pressure on rigid walls is equal at both ends until then).
  auto sim = make_sod(150, false);
  const double t = run_to(sim, 0.18);
  hy::RiemannProblem exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  double p_exact = 0;
  const int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = (i + 0.5) / kSamples;
    const auto st = exact.sample((x - 0.5) / t);
    p_exact += st.rho * st.u / kSamples;
  }
  EXPECT_NEAR(sim.total_momentum(), p_exact, 0.05 * p_exact);
}

TEST(Lagrange1D, TotalEnergyDriftSmall) {
  // The simple (first-order-in-time) p dV energy update is not exactly
  // conservative across the shock; ~1% on Sod at N=200 is the expected
  // magnitude for this scheme class, and it converges away with resolution.
  for (bool remap : {false, true}) {
    auto sim = make_sod(200, remap);
    const double e0 = sim.total_energy();
    run_to(sim, 0.2);
    EXPECT_NEAR(sim.total_energy(), e0, 1.5e-2 * e0) << "remap=" << remap;
  }
  // Convergence check: halving dx must shrink the drift.
  auto coarse = make_sod(100, false);
  auto fine = make_sod(400, false);
  const double e0c = coarse.total_energy(), e0f = fine.total_energy();
  run_to(coarse, 0.2);
  run_to(fine, 0.2);
  EXPECT_LT(std::abs(fine.total_energy() - e0f),
            std::abs(coarse.total_energy() - e0c));
}

TEST(Lagrange1D, RemapOfUnmovedMeshIsIdentity) {
  auto a = make_sod(80, false);
  auto b = make_sod(80, true);
  // One zero-size step: Lagrange does nothing, remap must be the identity.
  a.step(0.0);
  b.step(0.0);
  for (long j = 0; j < 80; ++j) {
    ASSERT_DOUBLE_EQ(a.density(j), b.density(j)) << j;
    ASSERT_NEAR(a.pressure(j), b.pressure(j), 1e-12) << j;
  }
}

TEST(Lagrange1D, StableDtPositiveAndShrinksWithShock) {
  auto quiet = make_sod(100, false);
  const double dt0 = quiet.stable_dt();
  EXPECT_GT(dt0, 0.0);
  run_to(quiet, 0.1);  // shock formed: compression raises c and |du|
  EXPECT_LT(quiet.stable_dt(), dt0);
}

TEST(Lagrange1D, EulerianAndAleAgreeOnWaveSpeeds) {
  // Both hydro formulations must place the shock at the same position.
  auto ale = make_sod(200, true);
  const double t = run_to(ale, 0.2);
  hy::RiemannProblem exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  // Shock position from the exact solution.
  const double s =
      0.0 + std::sqrt(1.4 * 0.1 / 0.125) *
                std::sqrt((2.4 / 2.8) * exact.star_pressure() / 0.1 +
                          0.4 / 2.8);
  const double x_shock = 0.5 + s * t;
  // Find the steepest density drop near the shock in the ALE result.
  long j_best = 0;
  double best = 0;
  for (long j = 1; j < 200; ++j) {
    const double grad = std::abs(ale.density(j) - ale.density(j - 1));
    if (grad > best && ale.zone_center(j) > 0.6) {
      best = grad;
      j_best = j;
    }
  }
  EXPECT_NEAR(ale.zone_center(j_best), x_shock, 0.03);
}

}  // namespace
