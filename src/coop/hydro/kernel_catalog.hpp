#pragma once

#include <string>
#include <vector>

#include "coop/devmodel/kernel_cost.hpp"

/// \file kernel_catalog.hpp
/// Cost catalog of the ARES Sedov hydro step.
///
/// The paper's Fig. 11 caption states the Sedov problem runs ~80 kernels per
/// step. Our mini-app implements a representative subset functionally; for
/// *timed* simulation the full 80-kernel catalog is walked, so launch
/// overheads and MPS behaviour are exercised at the paper's kernel
/// granularity. Per-kernel flop/byte intensities vary around the calibrated
/// means (deterministically), and their totals match the calibrated per-zone
/// per-step aggregates exactly.

namespace coop::hydro {

struct KernelDesc {
  std::string name;
  devmodel::KernelWork work;  ///< per-zone demands of this kernel

  /// Arithmetic intensity (flops per byte moved) — the kernel's x position
  /// on a roofline plot. The catalog spreads intensities deterministically
  /// around the calibrated mean, so some kernels sit bandwidth-bound and
  /// some compute-bound on a given device.
  [[nodiscard]] double intensity() const noexcept {
    return work.bytes_per_zone > 0.0
               ? work.flops_per_zone / work.bytes_per_zone
               : 0.0;
  }
};

/// Fraction (in (0, 1]) of `peak_flops` the roofline model permits at
/// arithmetic intensity `I`: min(peak_flops, I * peak_bandwidth) /
/// peak_flops. Kernels left of the machine-balance point are bandwidth-
/// bound (< 1); at or right of it the roof is flat (== 1).
[[nodiscard]] inline double roofline_fraction(
    double intensity_flops_per_byte, double peak_flops,
    double peak_bandwidth_bytes_per_s) noexcept {
  if (peak_flops <= 0.0) return 0.0;
  const double attainable =
      intensity_flops_per_byte * peak_bandwidth_bytes_per_s;
  return attainable < peak_flops ? attainable / peak_flops : 1.0;
}

class KernelCatalog {
 public:
  /// The ARES Sedov step: `calib::kAresKernelCount` kernels whose summed
  /// per-zone work equals the calibrated totals.
  static KernelCatalog ares_sedov();

  /// A reduced catalog (for fast tests): `count` kernels, same *average*
  /// intensity as ares_sedov.
  static KernelCatalog scaled(int count);

  [[nodiscard]] const std::vector<KernelDesc>& kernels() const noexcept {
    return kernels_;
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(kernels_.size());
  }
  /// Summed per-zone work across all kernels.
  [[nodiscard]] devmodel::KernelWork total() const noexcept;

 private:
  std::vector<KernelDesc> kernels_;
};

}  // namespace coop::hydro
