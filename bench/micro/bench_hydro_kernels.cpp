/// A/B gate for the SoA hydro refactor: seed layout (seven independent
/// arrays, every interior face's Rusanov flux evaluated twice per step)
/// versus the production pooled-SoA face-sweep solver, on a Fig-18-
/// proportioned blast problem. The interleaved best-of-N scheme, the
/// bitwise-equivalence precheck, and the best-pair gate are documented in
/// hydro_ab.hpp.
///
/// Output: `BENCH_hydro_kernels.json` (coophet.metrics schema v1) in the
/// current directory, or at argv[1] when given. Environment knobs:
///   COOPHET_HYDRO_NX/NY/NZ   — grid extents (default 100x96x32: Fig. 18's
///                              smallest sweep point, x kept, 1/5 the
///                              transverse resolution; the paper-size point
///                              is NX=100 NY=480 NZ=160)
///   COOPHET_HYDRO_STEPS      — hydro steps per timed sample (default 2)
///   COOPHET_HYDRO_REPS       — A/B pairs                    (default 9)
///   COOPHET_HYDRO_MIN_SPEEDUP — gate floor on the best-pair step-time
///                              ratio seed/soa (default 1.3; the ISSUE's
///                              acceptance threshold). Exit 1 below it, or
///                              if the two solvers ever disagree bitwise.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "coop/obs/metrics.hpp"
#include "hydro_ab.hpp"

namespace {

long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name))
    if (const long n = std::atol(v); n >= 1) return n;
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name))
    if (const double x = std::atof(v); x > 0.0) return x;
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  namespace ab = coop::hydro::ab;
  ab::AbConfig cfg;
  cfg.nx = env_long("COOPHET_HYDRO_NX", cfg.nx);
  cfg.ny = env_long("COOPHET_HYDRO_NY", cfg.ny);
  cfg.nz = env_long("COOPHET_HYDRO_NZ", cfg.nz);
  cfg.steps = static_cast<int>(env_long("COOPHET_HYDRO_STEPS", cfg.steps));
  cfg.reps = static_cast<int>(env_long("COOPHET_HYDRO_REPS", cfg.reps));
  const double floor = env_double("COOPHET_HYDRO_MIN_SPEEDUP", 1.3);
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hydro_kernels.json";

  const ab::AbResult r = ab::run(cfg);
  if (!r.bitwise_identical) {
    std::fprintf(stderr,
                 "bench_hydro_kernels: SoA solver is NOT bitwise identical "
                 "to the seed formulation on %ldx%ldx%ld — refusing to time "
                 "divergent kernels\n",
                 cfg.nx, cfg.ny, cfg.nz);
    return 1;
  }

  const double mzps_seed = static_cast<double>(r.zones) / r.seed_cpu_s / 1e6;
  const double mzps_soa = static_cast<double>(r.zones) / r.soa_cpu_s / 1e6;
  std::printf("=== hydro step A/B: %ldx%ldx%ld (%llu zones), %d steps x %d "
              "pairs ===\n",
              cfg.nx, cfg.ny, cfg.nz,
              static_cast<unsigned long long>(r.zones), cfg.steps, cfg.reps);
  std::printf("seed layout (per-cell, 2x flux): %8.4f cpu-s/step "
              "(%6.1f Mzones/s)\n",
              r.seed_cpu_s, mzps_seed);
  std::printf("SoA face-sweep (blocked, SIMD):  %8.4f cpu-s/step "
              "(%6.1f Mzones/s)\n",
              r.soa_cpu_s, mzps_soa);
  std::printf("speedup: best-pair %.2fx, median %.2fx (floor %.2fx, "
              "bitwise identical)\n",
              r.speedup_best, r.speedup_median, floor);

  coop::obs::MetricsRegistry reg;
  reg.gauge("hydro.zones").set(static_cast<double>(r.zones));
  reg.gauge("hydro.steps_per_sample").set(static_cast<double>(cfg.steps));
  reg.gauge("hydro.step_cpu_s", coop::obs::Labels{{"layout", "seed"}})
      .set(r.seed_cpu_s);
  reg.gauge("hydro.step_cpu_s", coop::obs::Labels{{"layout", "soa"}})
      .set(r.soa_cpu_s);
  reg.gauge("hydro.step_speedup_best").set(r.speedup_best);
  reg.gauge("hydro.step_speedup_median").set(r.speedup_median);
  reg.gauge("hydro.step_speedup_floor").set(floor);
  reg.gauge("hydro.bitwise_identical").set(1.0);

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "bench_hydro_kernels: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  reg.write_json(os, 0.0);
  os << '\n';
  std::printf("(hydro kernel benchmark written to %s)\n", out_path.c_str());

  if (r.speedup_best < floor) {
    std::fprintf(stderr,
                 "bench_hydro_kernels: best-pair speedup %.2fx is below the "
                 "%.2fx floor\n",
                 r.speedup_best, floor);
    return 1;
  }
  return 0;
}
