#pragma once

#include <cstdint>
#include <vector>

/// \file fault_plan.hpp
/// Deterministic fault schedules for the timed simulation.
///
/// A `FaultPlan` is an explicit, time-sorted list of fault events — the
/// ground truth a resilience experiment runs against. Plans are either built
/// by hand (tests, demos) or drawn from `make_random_plan`, a seed-driven
/// Poisson sampler. Determinism guarantee: the same seed and `PlanConfig`
/// produce the bitwise-identical event list on every run of the same binary,
/// and feeding the same plan into the same `TimedConfig` produces the
/// bitwise-identical `TimedResult` (the DES processes events at equal times
/// in schedule order; no wall-clock or global RNG state is consulted).

namespace coop::fault {

/// What breaks. Matches the hazards heterogeneous co-execution studies
/// report on shared nodes: lost accelerators, flaky launches, MPS daemon
/// crashes, thermal stragglers, dropped halo messages, exhausted pools.
enum class FaultKind : std::uint8_t {
  kGpuDeath,         ///< permanent device failure (node, gpu)
  kTransientLaunch,  ///< retriable kernel-launch failure (rank, count)
  kMpsCrash,         ///< MPS daemon crash on a node (restart + serialize)
  kSlowdown,         ///< thermal-throttle straggler (rank, window, factor)
  kHaloDrop,         ///< halo message loss (rank, count drops)
  kPoolExhaustion,   ///< device scratch-pool exhaustion (rank)
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kGpuDeath: return "gpu-death";
    case FaultKind::kTransientLaunch: return "transient-launch";
    case FaultKind::kMpsCrash: return "mps-crash";
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kHaloDrop: return "halo-drop";
    case FaultKind::kPoolExhaustion: return "pool-exhaustion";
  }
  return "?";
}

/// One scheduled fault. Which fields are meaningful depends on `kind`:
/// kGpuDeath/kMpsCrash target (node[, gpu]); the rank-scoped kinds target
/// `rank`; kTransientLaunch/kHaloDrop use `count` consecutive failures;
/// kSlowdown uses `duration`/`factor`.
struct FaultEvent {
  double time = 0.0;  ///< simulated seconds at which the fault arms
  FaultKind kind = FaultKind::kTransientLaunch;
  int rank = -1;
  int node = 0;
  int gpu = 0;
  int count = 1;
  double duration = 0.0;
  double factor = 1.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  ///< kept sorted by (time, insertion order)

  /// Inserts `e` keeping the time ordering (stable for equal times).
  void add(const FaultEvent& e);

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(events.size());
  }

  /// Throws std::invalid_argument when any event is out of bounds for a run
  /// with `ranks` ranks on `nodes` nodes of `gpus_per_node` GPUs, has a
  /// negative time, a nonpositive count, a factor < 1, or a negative
  /// duration.
  void validate(int ranks, int nodes, int gpus_per_node) const;

  [[nodiscard]] static FaultPlan none() { return {}; }
};

/// Knobs for the seeded plan generator. Rates are Poisson arrival rates in
/// events per simulated second over `[0, horizon_s)`.
struct PlanConfig {
  double horizon_s = 60.0;
  int ranks = 4;
  int nodes = 1;
  int gpus_per_node = 4;

  double gpu_death_rate = 0.0;
  double transient_rate = 0.0;
  double mps_crash_rate = 0.0;
  double slowdown_rate = 0.0;
  double halo_drop_rate = 0.0;
  double pool_exhaustion_rate = 0.0;

  double slowdown_mean_s = 1.0;   ///< mean throttle-window length
  double slowdown_factor = 3.0;   ///< compute-time multiplier while throttled
  int max_burst = 3;              ///< max consecutive failures per event
};

/// Draws a plan from `cfg` with a private splitmix64 stream per fault kind
/// (so changing one rate never perturbs the arrivals of another kind).
/// Same (seed, cfg) → bitwise-identical plan.
[[nodiscard]] FaultPlan make_random_plan(std::uint64_t seed,
                                         const PlanConfig& cfg);

}  // namespace coop::fault
