/// Harness benchmark: measures the two hot paths this repo's PR 5 optimized
/// and records them machine-readably.
///
///  1. Sweep wall-clock — a 4-point reduced Figure 18 sweep run serially
///     (jobs=1) and fanned out (jobs=N), with the two `SweepCurves` verified
///     bitwise identical before any timing is reported.
///  2. Engine throughput — events/sec of the GpuServer-shaped same-instant
///     burst workload (the pattern the engine's FIFO ring fast path serves).
///  3. Hydro step A/B — the SoA face-sweep solver against the frozen seed
///     formulation (bench/micro/hydro_ab.hpp) on a Fig-18-proportioned
///     blast; the best-pair step-time ratio must clear the speedup floor
///     and the two solvers must agree bitwise before any timing counts.
///
/// Output: `BENCH_harness.json` (coophet.metrics schema v1) in the current
/// directory, or at argv[1] when given. Environment knobs:
///   COOPHET_HARNESS_TIMESTEPS — per-run timesteps  (default 100, the paper's)
///   COOPHET_HARNESS_POINTS    — sweep points       (default 4)
///   COOPHET_HARNESS_JOBS      — parallel fan-out   (default 4)
///   COOPHET_HARNESS_MAX_FLIGHT_OVERHEAD_PCT — flight-recorder overhead
///     ceiling on the serial sweep, percent (default 2; interleaved
///     best-of-N walls on both sides to suppress scheduler noise)
///   COOPHET_HARNESS_MAX_TELEMETRY_OVERHEAD_PCT — telemetry-sampler overhead
///     ceiling on the serial sweep, percent (default 1; same interleaved
///     best-of-N scheme — the sampler replays per-cell outcomes and closes
///     windows only at sweep finalize, so its cost must stay in the noise)
///   COOPHET_HYDRO_MIN_SPEEDUP — floor on the SoA-vs-seed best-pair hydro
///     step speedup (default 1.3; same knob as bench_hydro_kernels)
/// Wall-clock numbers are machine-dependent; the CI job prints them and the
/// determinism + flight-overhead checks fail hard, but no speedup threshold
/// is enforced here — that's EXPERIMENTS.md's before/after table backed by
/// the perf-baseline gate.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "coop/des/engine.hpp"
#include "coop/devmodel/gpu_server.hpp"
#include "coop/devmodel/specs.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/obs/telemetry/sampler.hpp"
#include "coop/sweeps/figure_sweeps.hpp"
#include "hydro_ab.hpp"

namespace {

namespace des = coop::des;
namespace devmodel = coop::devmodel;
namespace sweeps = coop::sweeps;

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name))
    if (const int n = std::atoi(v); n >= 1) return n;
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name))
    if (const double x = std::atof(v); x > 0.0) return x;
  return fallback;
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double wall_of(const auto& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Process CPU seconds consumed by `fn`. The overhead gates compare CPU
/// work, not wall time: on a shared machine scheduler preemption adds tens
/// of percent of wall-clock noise per run, which would swamp a 1-2%
/// ceiling, while CPU time only moves with the instructions actually
/// executed.
double cpu_of(const auto& fn) {
  timespec t0{}, t1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t0);
  fn();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t1);
  return static_cast<double>(t1.tv_sec - t0.tv_sec) +
         1e-9 * static_cast<double>(t1.tv_nsec - t0.tv_nsec);
}

bool bitwise_equal(const sweeps::SweepCurves& a, const sweeps::SweepCurves& b) {
  if (a.points.size() != b.points.size()) return false;
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const auto& p = a.points[i];
    const auto& q = b.points[i];
    if (p.x != q.x || p.y != q.y || p.z != q.z) return false;
    if (bits(p.t_default) != bits(q.t_default) ||
        bits(p.t_mps) != bits(q.t_mps) ||
        bits(p.t_hetero) != bits(q.t_hetero) ||
        bits(p.steady_default) != bits(q.steady_default) ||
        bits(p.steady_mps) != bits(q.steady_mps) ||
        bits(p.steady_hetero) != bits(q.steady_hetero) ||
        bits(p.hetero_cpu_share) != bits(q.hetero_cpu_share))
      return false;
  }
  return true;
}

des::Task<void> burst_rank(des::Engine& eng, devmodel::GpuServer& srv,
                           int steps, int kernels_per_step) {
  const devmodel::KernelWork work{6.0, 48.0};
  for (int s = 0; s < steps; ++s) {
    for (int k = 0; k < kernels_per_step; ++k)
      co_await srv.execute(work, 40000.0, 100.0, /*mps=*/true);
    co_await eng.delay(1e-3);
  }
}

double burst_events_per_sec() {
  const auto run_once = [] {
    des::Engine eng;
    devmodel::GpuServer srv(eng, devmodel::NodeSpec::rzhasgpu().gpu);
    for (int r = 0; r < 16; ++r) eng.spawn(burst_rank(eng, srv, 10, 20));
    eng.run();
    return eng.events_processed();
  };
  (void)run_once();  // warmup
  std::uint64_t events = 0;
  double wall = 0.0;
  while (wall < 0.3) {
    const auto t0 = std::chrono::steady_clock::now();
    events += run_once();
    wall +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return static_cast<double>(events) / wall;
}

}  // namespace

int main(int argc, char** argv) {
  const int timesteps = env_int("COOPHET_HARNESS_TIMESTEPS", 100);
  const int points = env_int("COOPHET_HARNESS_POINTS", 4);
  const int jobs = env_int("COOPHET_HARNESS_JOBS", 4);
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_harness.json";

  sweeps::SweepOptions options;
  options.timesteps = timesteps;
  const auto spec = sweeps::reduced(sweeps::figure_spec(18),
                                    static_cast<std::size_t>(points));

  sweeps::SweepCurves serial, parallel;
  options.jobs = 1;
  const double serial_s =
      wall_of([&] { serial = sweeps::run_figure_sweep(spec, options); });
  options.jobs = jobs;
  const double parallel_s =
      wall_of([&] { parallel = sweeps::run_figure_sweep(spec, options); });

  if (!bitwise_equal(serial, parallel)) {
    std::fprintf(stderr,
                 "bench_harness: parallel sweep (jobs=%d) is NOT bitwise "
                 "identical to the serial run\n",
                 jobs);
    return 1;
  }

  // Flight-recorder overhead gate (ISSUE acceptance: <= 2%). A single
  // serial sweep is ~tens of milliseconds, where scheduler noise alone is
  // several percent of wall clock — so the gate measures process *CPU*
  // seconds (preemption-immune), pairs a bare batch with an instrumented
  // batch back to back (both land in the same frequency/load regime, so the
  // per-pair ratio cancels regime shifts that last seconds; the order
  // alternates to cancel warm-cache bias) and gates on the BEST pair: a
  // genuine hot-path cost is present in every pair, so the minimum ratio
  // still exposes it, while container noise — which inflates ratios but has
  // a near-zero floor — needs only one quiet pair to be factored out. The
  // median is reported alongside for visibility. The instrumented runs record the
  // full event stream (per-step samples included), measuring the seqlock
  // push hot path, and the instrumented curves must stay bitwise identical —
  // attaching the recorder is pure observation.
  const double max_overhead_pct =
      env_double("COOPHET_HARNESS_MAX_FLIGHT_OVERHEAD_PCT", 2.0);
  const int gate_batch = 5;   // sweeps per timed sample
  const int gate_reps = 15;   // back-to-back pairs; median of ratios
  options.jobs = 1;
  sweeps::SweepCurves scratch, instrumented;
  coop::obs::log::FlightRecorder recorder;
  const auto bare_sample = [&] {
    options.flight = nullptr;
    return cpu_of([&] {
      for (int b = 0; b < gate_batch; ++b)
        scratch = sweeps::run_figure_sweep(spec, options);
    });
  };
  const auto flight_sample = [&] {
    options.flight = &recorder;
    return cpu_of([&] {
      for (int b = 0; b < gate_batch; ++b)
        instrumented = sweeps::run_figure_sweep(spec, options);
    });
  };
  double bare_s = 1e300;
  double flight_s = 1e300;
  std::vector<double> flight_ratios;
  for (int r = 0; r < gate_reps; ++r) {
    double b, f;
    if (r % 2 == 0) {
      b = bare_sample();
      f = flight_sample();
    } else {
      f = flight_sample();
      b = bare_sample();
    }
    bare_s = std::min(bare_s, b);
    flight_s = std::min(flight_s, f);
    if (b > 0.0) flight_ratios.push_back(f / b - 1.0);
  }
  options.flight = nullptr;
  if (!bitwise_equal(serial, instrumented)) {
    std::fprintf(stderr,
                 "bench_harness: flight-recorder-instrumented sweep is NOT "
                 "bitwise identical to the bare run\n");
    return 1;
  }
  const double overhead_pct = min_of(flight_ratios) * 100.0;
  const double overhead_median_pct = median_of(flight_ratios) * 100.0;

  // Telemetry-sampler overhead gate (<= 1%). Same best-pair-ratio
  // scheme as the flight gate, with a deeper batch (the 1% ceiling needs
  // finer resolution than the flight gate's 2%). Each instrumented sweep
  // gets a fresh sampler — the cell axis restarts at zero every sweep — so
  // construction, per-cell slot writes, the canonical replay, and the
  // window closes are all inside the measured CPU time. The instrumented
  // curves must stay bitwise identical: attaching a sampler is pure
  // observation.
  const double max_telemetry_pct =
      env_double("COOPHET_HARNESS_MAX_TELEMETRY_OVERHEAD_PCT", 1.0);
  sweeps::SweepCurves telemetry_curves;
  const int telemetry_batch = 10;
  const int telemetry_reps = 15;
  const auto bare2_sample = [&] {
    options.telemetry = nullptr;
    return cpu_of([&] {
      for (int b = 0; b < telemetry_batch; ++b)
        scratch = sweeps::run_figure_sweep(spec, options);
    });
  };
  const auto telemetry_sample = [&] {
    return cpu_of([&] {
      for (int b = 0; b < telemetry_batch; ++b) {
        coop::obs::telemetry::TelemetrySampler sampler(
            sweeps::telemetry_defaults::sweep_telemetry_config());
        options.telemetry = &sampler;
        telemetry_curves = sweeps::run_figure_sweep(spec, options);
      }
    });
  };
  double bare2_s = 1e300;
  double telemetry_s = 1e300;
  std::vector<double> telemetry_ratios;
  for (int r = 0; r < telemetry_reps; ++r) {
    double b, t;
    if (r % 2 == 0) {
      b = bare2_sample();
      t = telemetry_sample();
    } else {
      t = telemetry_sample();
      b = bare2_sample();
    }
    bare2_s = std::min(bare2_s, b);
    telemetry_s = std::min(telemetry_s, t);
    if (b > 0.0) telemetry_ratios.push_back(t / b - 1.0);
  }
  options.telemetry = nullptr;
  if (!bitwise_equal(serial, telemetry_curves)) {
    std::fprintf(stderr,
                 "bench_harness: telemetry-instrumented sweep is NOT "
                 "bitwise identical to the bare run\n");
    return 1;
  }
  const double telemetry_pct = min_of(telemetry_ratios) * 100.0;
  const double telemetry_median_pct = median_of(telemetry_ratios) * 100.0;

  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double events_per_sec = burst_events_per_sec();

  // Hydro SoA-vs-seed step A/B (defaults in hydro_ab.hpp: Fig. 18's
  // smallest sweep point at 1/5 transverse resolution). Divergent
  // arithmetic fails hard — timing two solvers that disagree bitwise would
  // gate on nothing.
  const double hydro_floor = env_double("COOPHET_HYDRO_MIN_SPEEDUP", 1.3);
  const coop::hydro::ab::AbResult hydro =
      coop::hydro::ab::run(coop::hydro::ab::AbConfig{});
  if (!hydro.bitwise_identical) {
    std::fprintf(stderr,
                 "bench_harness: SoA hydro solver is NOT bitwise identical "
                 "to the seed formulation\n");
    return 1;
  }

  std::printf("=== harness benchmark: reduced Figure 18, %zu points, "
              "%d timesteps ===\n",
              serial.points.size(), timesteps);
  std::printf("sweep wall-clock  jobs=1: %7.3f s\n", serial_s);
  std::printf("sweep wall-clock  jobs=%d: %7.3f s  (speedup %.2fx, "
              "bitwise identical)\n",
              jobs, parallel_s, speedup);
  std::printf("engine burst throughput: %.0f events/s\n", events_per_sec);
  std::printf("flight recorder overhead: best-pair %+.2f%% median %+.2f%% "
              "(bare %.3f cpu-s vs instrumented %.3f cpu-s, best-pair "
              "ceiling %.1f%%)\n",
              overhead_pct, overhead_median_pct, bare_s, flight_s,
              max_overhead_pct);
  std::printf("telemetry sampler overhead: best-pair %+.2f%% median %+.2f%% "
              "(bare %.3f cpu-s vs instrumented %.3f cpu-s, best-pair "
              "ceiling %.1f%%)\n",
              telemetry_pct, telemetry_median_pct, bare2_s, telemetry_s,
              max_telemetry_pct);
  std::printf("hydro step A/B (%llu zones): seed %.4f cpu-s/step vs SoA "
              "%.4f cpu-s/step — best-pair %.2fx median %.2fx (floor %.2fx, "
              "bitwise identical)\n",
              static_cast<unsigned long long>(hydro.zones), hydro.seed_cpu_s,
              hydro.soa_cpu_s, hydro.speedup_best, hydro.speedup_median,
              hydro_floor);

  coop::obs::MetricsRegistry reg;
  reg.gauge("harness.sweep_points").set(static_cast<double>(points));
  reg.gauge("harness.sweep_timesteps").set(static_cast<double>(timesteps));
  reg.gauge("harness.sweep_wall_s", coop::obs::Labels{{"jobs", "1"}})
      .set(serial_s);
  reg.gauge("harness.sweep_wall_s",
            coop::obs::Labels{{"jobs", std::to_string(jobs)}})
      .set(parallel_s);
  reg.gauge("harness.sweep_speedup").set(speedup);
  reg.gauge("harness.sweep_bitwise_identical").set(1.0);
  reg.gauge("harness.flight_overhead_pct").set(overhead_pct);
  reg.gauge("harness.flight_wall_s").set(flight_s);
  reg.gauge("harness.telemetry_overhead_pct").set(telemetry_pct);
  reg.gauge("harness.telemetry_wall_s").set(telemetry_s);
  reg.gauge("des.events_per_sec",
            coop::obs::Labels{{"workload", "gpu_server_burst"}})
      .set(events_per_sec);
  reg.gauge("harness.hydro_zones").set(static_cast<double>(hydro.zones));
  reg.gauge("harness.hydro_step_cpu_s",
            coop::obs::Labels{{"layout", "seed"}})
      .set(hydro.seed_cpu_s);
  reg.gauge("harness.hydro_step_cpu_s", coop::obs::Labels{{"layout", "soa"}})
      .set(hydro.soa_cpu_s);
  reg.gauge("harness.hydro_step_speedup_best").set(hydro.speedup_best);
  reg.gauge("harness.hydro_step_speedup_median").set(hydro.speedup_median);
  reg.gauge("harness.hydro_step_speedup_floor").set(hydro_floor);
  reg.gauge("harness.hydro_bitwise_identical").set(1.0);

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "bench_harness: cannot open %s\n", out_path.c_str());
    return 1;
  }
  reg.write_json(os, 0.0);
  os << '\n';
  std::printf("(harness benchmark written to %s)\n", out_path.c_str());

  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "bench_harness: flight-recorder overhead %.2f%% exceeds the "
                 "%.1f%% ceiling\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  if (telemetry_pct > max_telemetry_pct) {
    std::fprintf(stderr,
                 "bench_harness: telemetry-sampler overhead %.2f%% exceeds "
                 "the %.1f%% ceiling\n",
                 telemetry_pct, max_telemetry_pct);
    return 1;
  }
  if (hydro.speedup_best < hydro_floor) {
    std::fprintf(stderr,
                 "bench_harness: hydro SoA best-pair speedup %.2fx is below "
                 "the %.2fx floor\n",
                 hydro.speedup_best, hydro_floor);
    return 1;
  }
  return 0;
}
