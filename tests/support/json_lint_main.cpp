/// json_lint — strict JSON validator over the tests/support/json_check.hpp
/// parser, used by CI to lint the emitted observability artifacts (Perfetto
/// traces, BENCH_*.json run reports) before uploading them.
///
/// Usage: json_lint [--schema NAME] file.json [more.json ...]
///
/// Every file must parse under the strict grammar (no NaN/Inf, no bad
/// escapes, no duplicate keys, no trailing garbage). With --schema NAME the
/// top level must additionally be an object carrying "schema" == NAME and a
/// numeric "schema_version". Exits non-zero on the first class of failure,
/// after reporting every file.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json_check.hpp"

namespace cj = coophet_test::json;

namespace {

bool lint(const std::string& path, const std::string& schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_lint: %s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const cj::ParseResult r = cj::parse(text);
  if (!r.ok) {
    std::fprintf(stderr, "json_lint: %s: offset %zu: %s\n", path.c_str(),
                 r.offset, r.error.c_str());
    return false;
  }
  if (!schema.empty()) {
    const cj::Value* name = r.value.find("schema");
    const cj::Value* version = r.value.find("schema_version");
    if (name == nullptr || !name->is_string() || name->str != schema) {
      std::fprintf(stderr, "json_lint: %s: \"schema\" is not \"%s\"\n",
                   path.c_str(), schema.c_str());
      return false;
    }
    if (version == nullptr || !version->is_number()) {
      std::fprintf(stderr, "json_lint: %s: missing numeric \"schema_version\"\n",
                   path.c_str());
      return false;
    }
  }
  std::printf("json_lint: %s: OK (%zu bytes)\n", path.c_str(), text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema" && i + 1 < argc) {
      schema = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: json_lint [--schema NAME] file.json ...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "json_lint: no input files\n");
    return 2;
  }
  bool ok = true;
  for (const auto& f : files) ok = lint(f, schema) && ok;
  return ok ? 0 : 1;
}
