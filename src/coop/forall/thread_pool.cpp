#include "coop/forall/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace coop::forall {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: zero workers");
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job{};
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = jobs_.back();
      jobs_.pop_back();
    }
    std::exception_ptr err;
    try {
      (*job.fn)(job.index, job.begin, job.end);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--jobs_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

std::vector<std::pair<long, long>> ThreadPool::chunk_spans(long begin,
                                                           long end,
                                                           long grain) const {
  std::vector<std::pair<long, long>> spans;
  const long n = end - begin;
  if (n <= 0) return spans;
  const long workers = static_cast<long>(threads_.size());
  long chunks = std::min(n, workers);
  if (grain > 1) chunks = std::min(chunks, std::max(1L, n / grain));
  const long base = n / chunks, rem = n % chunks;
  spans.reserve(static_cast<std::size_t>(chunks));
  long pos = begin;
  for (long c = 0; c < chunks; ++c) {
    const long len = base + (c < rem ? 1 : 0);
    spans.emplace_back(pos, pos + len);
    pos += len;
  }
  return spans;
}

void ThreadPool::parallel_for(long begin, long end,
                              FunctionRef<void(long, long)> fn, long grain) {
  parallel_for_indexed(
      begin, end,
      [&fn](std::size_t, long b, long e) { fn(b, e); }, grain);
}

void ThreadPool::parallel_for_indexed(
    long begin, long end, FunctionRef<void(std::size_t, long, long)> fn,
    long grain) {
  const auto spans = chunk_spans(begin, end, grain);
  if (spans.empty()) return;
  {
    std::lock_guard lk(mu_);
    if (jobs_remaining_ != 0)
      throw std::logic_error("ThreadPool: nested parallel_for not supported");
    first_error_ = nullptr;
    // Push in reverse so the LIFO worker pop claims chunk 0 first; the chunk
    // index carried in the Job keeps reductions order-independent anyway.
    for (std::size_t c = spans.size(); c-- > 0;)
      jobs_.push_back(Job{&fn, c, spans[c].first, spans[c].second});
    jobs_remaining_ = spans.size();
  }
  work_cv_.notify_all();
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [this] { return jobs_remaining_ == 0; });
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace coop::forall
