#include "coop/core/timed_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "coop/des/engine.hpp"
#include "coop/devmodel/calibration.hpp"
#include "coop/devmodel/comm_cost.hpp"
#include "coop/devmodel/gpu_server.hpp"
#include "coop/devmodel/kernel_cost.hpp"
#include "coop/lb/load_balancer.hpp"
#include "coop/mesh/halo.hpp"
#include "coop/obs/analysis/hb_log.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/obs/telemetry/sampler.hpp"
#include "coop/obs/trace.hpp"
#include "coop/simmpi/sim_comm.hpp"

namespace coop::core {

namespace {

namespace calib = devmodel::calib;
using decomp::Decomposition;
using memory::ExecutionTarget;

/// Shared (single-threaded DES) state all rank processes see.
struct World {
  const TimedConfig* cfg;
  RankLayout layout;
  hydro::KernelCatalog catalog;
  Decomposition dec;
  std::vector<std::vector<int>> nbrs;
  lb::FeedbackBalancer balancer{lb::FeedbackBalancer::Config{}};
  bool lb_active = false;

  // Per-iteration scratch.
  std::vector<double> compute_time;  // per rank, this iteration
  double iter_start = 0.0;

  // Unified observability (all optional; convenience copies of cfg).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::analysis::HbLog* hb = nullptr;
  obs::log::FlightWriter* flight = nullptr;
  obs::telemetry::TelemetrySampler* telemetry = nullptr;
  double pool_high_water = 0.0;  ///< modeled device-pool bytes, run maximum

  // Optional event-driven GPU backend (one server per physical GPU).
  std::vector<std::unique_ptr<devmodel::GpuServer>> gpu_servers;

  // Records.
  std::vector<double> iteration_times;
  double sum_max_cpu = 0.0, sum_max_gpu = 0.0;
  int lb_converged_at = -1;

  // Fault/recovery state (injector is null on fault-free runs).
  fault::FaultInjector* injector = nullptr;
  bool pending_recovery = false;  ///< a device died this iteration
  bool degraded = false;          ///< at least one device has been lost
  int aborted_step = 0;           ///< step index of the latest aborted pass
  int rollback_epoch = 0;         ///< bump => every rank rewinds its step
  int rollback_target = 0;        ///< first step to replay after a rollback
  int last_checkpoint_step = 0;   ///< state saved up to (exclusive) this step
  double rework_start = -1.0;     ///< armed at recovery; cleared on replay end
  int rework_until = -1;          ///< step whose completed replay ends rework
  double model_cpu_rate = 0.0;    ///< roofline zones/s per CPU rank
  double model_gpu_rate = 0.0;    ///< roofline zones/s per surviving GPU rank

  void rebuild_neighbors() { nbrs = decomp::neighbor_lists(dec); }
};

/// Sub-half-plane retirement: a rank whose proportional share of its node's
/// y extent is under half a plane cannot usefully hold zones (the one-plane
/// carve floor would overpay it roughly 2x or more); zero its weight so
/// `reweight_y_slabs` retires it with an empty box.
void retire_sub_half_plane(const World& w, std::vector<double>& weights) {
  const double ny = static_cast<double>(w.cfg->global.ny());
  for (int node = 0; node < w.cfg->nodes; ++node) {
    double sum = 0.0;
    for (int q = 0; q < w.dec.ranks(); ++q)
      if (w.dec.domains[static_cast<std::size_t>(q)].node_id == node)
        sum += weights[static_cast<std::size_t>(q)];
    if (sum <= 0.0) continue;
    for (int q = 0; q < w.dec.ranks(); ++q) {
      auto& wt = weights[static_cast<std::size_t>(q)];
      if (w.dec.domains[static_cast<std::size_t>(q)].node_id == node &&
          wt > 0.0 && wt / sum * ny < 0.5)
        wt = 0.0;
    }
  }
}

/// Per-step UM pump spill charged to each GPU-driving rank on `node_id`
/// (Fig. 12 knee); the pump is a per-node host resource.
double um_spill_time(const World& w, int node_id) {
  const auto& cfg = *w.cfg;
  if (!cfg.model_um_threshold) return 0.0;
  double gpu_zones = 0;
  for (const auto& d : w.dec.domains)
    if (d.node_id == node_id && d.target == ExecutionTarget::kGpuDevice)
      gpu_zones += static_cast<double>(d.box.zones());
  return devmodel::um_spill_time_per_gpu_rank(
      cfg.node.um, gpu_zones, w.layout.active_cores, w.layout.gpu_ranks);
}

/// Compute-phase duration for rank `r` in the current decomposition.
/// `mps_serialize` forces the no-overlap MPS path for this call — used the
/// iteration an MPS daemon restarts (clients cannot overlap meanwhile).
/// When `kernel_times` is non-null it receives one entry per catalog kernel
/// (launch + exec for GPU ranks, exec for CPU ranks) so the tracer can place
/// per-kernel sub-spans; the UM spill residual is the return value minus the
/// entries' sum.
double compute_phase_time(const World& w, int r, bool mps_serialize = false,
                          std::vector<double>* kernel_times = nullptr) {
  const auto& cfg = *w.cfg;
  const auto& dom = w.dec.domains[static_cast<std::size_t>(r)];
  const double zones = static_cast<double>(dom.box.zones());
  const double nx = static_cast<double>(dom.box.nx());
  double t = 0.0;

  if (dom.target == ExecutionTarget::kGpuDevice) {
    const bool mps = cfg.mode == NodeMode::kMpsPerGpu;
    const int resident = mps ? cfg.ranks_per_gpu : 1;
    const double launch = devmodel::gpu_launch_overhead(cfg.node.gpu, mps);
    for (const auto& k : w.catalog.kernels()) {
      double exec;
      if (mps && cfg.model_mps_overlap && !mps_serialize) {
        exec = devmodel::gpu_kernel_exec_time_mps(cfg.node.gpu, k.work, zones,
                                                  nx, resident);
      } else if (mps) {
        // Ablation / daemon restart: no overlap — co-resident kernels
        // serialize.
        exec = resident * devmodel::gpu_kernel_exec_time(cfg.node.gpu, k.work,
                                                         zones, nx);
      } else {
        exec = devmodel::gpu_kernel_exec_time(cfg.node.gpu, k.work, zones, nx);
      }
      t += launch + exec;
      if (kernel_times != nullptr) kernel_times->push_back(launch + exec);
    }
    t += um_spill_time(w, dom.node_id);
  } else {
    // CPU-only rank. The dispatch penalty applies to GPU-enabled builds —
    // the heterogeneous mode, and any rank whose policy flipped to
    // sequential-CPU after a device loss; a pure CPU build has no CUDA
    // decorations (Fig. 1).
    const double penalty = (cfg.compiler_bug && cfg.mode != NodeMode::kCpuOnly)
                               ? calib::kCompilerBugFactor
                               : 1.0;
    for (const auto& k : w.catalog.kernels()) {
      const double exec =
          devmodel::cpu_kernel_exec_time(cfg.node.cpu, k.work, zones, penalty);
      t += exec;
      if (kernel_times != nullptr) kernel_times->push_back(exec);
    }
  }
  return t;
}

/// Device-pool scratch demand modeled from the current decomposition: every
/// GPU-driving rank stages `kScratchBytesPerZone` of per-kernel temporaries
/// through its node's pool (the cnmem-style pool of 5.2).
double modeled_pool_bytes(const World& w) {
  double zones = 0.0;
  for (const auto& d : w.dec.domains)
    if (d.target == ExecutionTarget::kGpuDevice)
      zones += static_cast<double>(d.box.zones());
  return zones * calib::kScratchBytesPerZone;
}

/// Compute phase through the event-driven GPU queue: one launch-overhead
/// delay plus one server submission per catalog kernel.
des::Task<void> gpu_server_compute(des::Engine& eng, World& w, int r) {
  const auto& cfg = *w.cfg;
  const auto& dom = w.dec.domains[static_cast<std::size_t>(r)];
  const bool mps = cfg.mode == NodeMode::kMpsPerGpu;
  const double zones = static_cast<double>(dom.box.zones());
  const double nx = static_cast<double>(dom.box.nx());
  const double launch = devmodel::gpu_launch_overhead(cfg.node.gpu, mps);
  auto& gpu = *w.gpu_servers[static_cast<std::size_t>(
      dom.node_id * cfg.node.gpu_count + dom.gpu_id)];
  const bool trace_kernels = w.tracer != nullptr && w.tracer->kernel_spans;
  for (const auto& k : w.catalog.kernels()) {
    const double t0 = eng.now();
    co_await eng.delay(launch);
    double drain = 0.0;
    co_await gpu.execute(k.work, zones, nx, mps, &drain);
    if (trace_kernels)
      w.tracer->span(dom.node_id, r, k.name, "kernel", t0, eng.now());
    if (w.hb != nullptr && drain > 0.0)
      w.hb->gpu_drain(r, t0, eng.now(), drain);
  }
  const double t_spill = eng.now();
  co_await eng.delay(um_spill_time(w, dom.node_id));
  if (trace_kernels && eng.now() > t_spill)
    w.tracer->span(dom.node_id, r, "um-spill", "kernel", t_spill, eng.now());
}

des::Task<void> rank_process(des::Engine& eng, World& w,
                             simmpi::SimCommWorld& commw, int r) {
  simmpi::SimComm comm = commw.comm(r);
  const long ghosts = w.cfg->ghosts;

  const devmodel::InterconnectSpec gd_net =
      devmodel::InterconnectSpec::gpu_direct();

  int my_rollback_epoch = 0;

  for (int step = 0; step < w.cfg->timesteps; ++step) {
    if (r == 0) w.iter_start = eng.now();

    const auto& mine = w.dec.domains[static_cast<std::size_t>(r)].box;
    const auto& my_nbrs = w.nbrs[static_cast<std::size_t>(r)];
    const bool i_am_gpu =
        w.dec.domains[static_cast<std::size_t>(r)].target ==
        ExecutionTarget::kGpuDevice;
    // Trace track: pid groups by node, tid is the rank (stable across
    // re-carves — reweighting never migrates a rank between nodes).
    const int my_node = w.dec.domains[static_cast<std::size_t>(r)].node_id;

    // --- Fault detection points (compute start). ---
    bool abort_compute = false;  ///< device died: post stale halos, no work
    bool mps_serialize = false;  ///< MPS daemon restarting this iteration
    if (w.injector != nullptr && i_am_gpu) {
      auto& st = w.injector->stats();
      const auto& rec = w.injector->recovery();
      const auto& dom = w.dec.domains[static_cast<std::size_t>(r)];
      // Transient launch failures: retry with exponential backoff, each
      // attempt re-paying the launch overhead; a burst exceeding the
      // attempt budget escalates to a permanent device death.
      const int seen_before = st.faults_injected;
      const int fails = w.injector->take_transient_failures(r, eng.now());
      const int events = st.faults_injected - seen_before;
      if (fails >= rec.max_launch_attempts) {
        w.injector->kill_gpu(dom.node_id, dom.gpu_id, eng.now());
      } else if (fails > 0) {
        double wait = 0.0, backoff = rec.backoff_base_s;
        for (int i = 0; i < fails; ++i) {
          wait += backoff;
          backoff *= 2.0;
        }
        wait += fails * devmodel::gpu_launch_overhead(
                            w.cfg->node.gpu,
                            w.cfg->mode == NodeMode::kMpsPerGpu);
        st.launch_retries += fails;
        st.retry_time += wait;
        st.faults_recovered += events;
        co_await eng.delay(wait);
      }
      (void)w.injector->take_gpu_death(dom.node_id, dom.gpu_id, eng.now());
      if (w.injector->gpu_dead(dom.node_id, dom.gpu_id, eng.now())) {
        // Abort this iteration: post stale halos so neighbors do not
        // deadlock; rank 0 re-carves at the iteration end and the pass is
        // replayed on the survivors.
        abort_compute = true;
        w.pending_recovery = true;
        w.aborted_step = step;
      } else {
        if (w.cfg->mode == NodeMode::kMpsPerGpu &&
            w.injector->take_mps_crash(dom.node_id, eng.now())) {
          mps_serialize = true;
          st.mps_restarts += 1;
          st.faults_recovered += 1;
          co_await eng.delay(rec.mps_restart_s);
        }
        if (w.injector->take_pool_exhaustion(r, eng.now())) {
          st.faults_recovered += 1;
          co_await eng.delay(w.injector->pool_exhaustion_stall(mine.zones()));
        }
      }
    }
    // Thermal-throttle stragglers stretch this rank's compute phase.
    double slow = 1.0;
    if (w.injector != nullptr && !abort_compute) {
      auto& st = w.injector->stats();
      const int seen_before = st.faults_injected;
      slow = w.injector->take_slowdown_factor(r, eng.now());
      st.faults_recovered += st.faults_injected - seen_before;
    }

    // Posts one halo message per neighbor. With GPU-direct enabled,
    // GPU-to-GPU messages travel the peer link instead of staging through
    // host memory (paper 5.3's planned exploration). The fault model drops
    // messages sender-side: each drop costs the receiver one watchdog
    // timeout plus a retransmission, charged as extra delivery delay.
    auto post_halo_sends = [&] {
      int drops = 0;
      if (w.injector != nullptr && !my_nbrs.empty()) {
        auto& st = w.injector->stats();
        const int seen_before = st.faults_injected;
        drops = w.injector->take_halo_drops(r, eng.now());
        st.faults_recovered += st.faults_injected - seen_before;
      }
      for (std::size_t i = 0; i < my_nbrs.size(); ++i) {
        const int nbr = my_nbrs[i];
        const mesh::Box region = mesh::send_region(
            mine, w.dec.domains[static_cast<std::size_t>(nbr)].box, ghosts);
        const auto bytes = static_cast<std::size_t>(
            static_cast<double>(region.zones()) *
            calib::kHaloBytesPerFaceZone);
        const auto& nbr_dom = w.dec.domains[static_cast<std::size_t>(nbr)];
        const bool nbr_gpu = nbr_dom.target == ExecutionTarget::kGpuDevice;
        const bool same_node =
            nbr_dom.node_id ==
            w.dec.domains[static_cast<std::size_t>(r)].node_id;
        const devmodel::InterconnectSpec& net =
            !same_node ? w.cfg->node.internode
            : (w.cfg->gpu_direct && i_am_gpu && nbr_gpu) ? gd_net
                                                         : w.cfg->node.net;
        double extra = 0.0;
        if (drops > 0) {
          const auto& rec = w.injector->recovery();
          const int d = std::min(drops, rec.max_retransmits);
          drops -= d;
          if (i + 1 == my_nbrs.size() && drops > 0) {
            // Retransmit budget exhausted on the last message: the watchdog
            // gives up on the silent peer (tracked; delivery still modeled
            // so the run completes).
            w.injector->stats().neighbors_declared_dead += 1;
            drops = 0;
          }
          extra = d * (rec.watchdog_timeout_s +
                       devmodel::message_time(net, bytes));
          w.injector->stats().halo_retransmits += d;
        }
        comm.post_send(nbr, /*tag=*/0, {}, bytes, net, extra);
      }
    };

    // --- Compute phase: walk the Sedov kernel catalog. ---
    std::vector<double> kernel_times;  ///< closed-form per-kernel durations
    std::vector<double>* const want_kernels =
        (w.tracer != nullptr && w.tracer->kernel_spans) ? &kernel_times
                                                        : nullptr;
    const double t_compute_begin = eng.now();
    if (abort_compute) {
      w.compute_time[static_cast<std::size_t>(r)] = 0.0;
      post_halo_sends();
    } else if (w.cfg->use_gpu_server && i_am_gpu) {
      co_await gpu_server_compute(eng, w, r);
      if (slow > 1.0)
        co_await eng.delay((slow - 1.0) * (eng.now() - t_compute_begin));
      w.compute_time[static_cast<std::size_t>(r)] =
          eng.now() - t_compute_begin;
      post_halo_sends();
    } else if (const double t_compute =
                   slow *
                   compute_phase_time(w, r, mps_serialize, want_kernels);
               w.cfg->overlap_halo && !my_nbrs.empty()) {
      w.compute_time[static_cast<std::size_t>(r)] = t_compute;
      // Boundary-first schedule: compute the halo-adjacent zones, post the
      // sends, then let interior compute hide the wire time.
      double halo_zones = 0;
      for (int nbr : my_nbrs) {
        halo_zones += static_cast<double>(
            mesh::send_region(
                mine, w.dec.domains[static_cast<std::size_t>(nbr)].box,
                ghosts)
                .zones());
      }
      const double boundary_frac =
          std::min(1.0, halo_zones / static_cast<double>(mine.zones()));
      co_await eng.delay(t_compute * boundary_frac);
      post_halo_sends();
      co_await eng.delay(t_compute * (1.0 - boundary_frac));
    } else {
      w.compute_time[static_cast<std::size_t>(r)] = t_compute;
      co_await eng.delay(t_compute);
      post_halo_sends();
    }
    if (w.cfg->trace != nullptr)
      w.cfg->trace->record(r, step, Phase::kCompute, t_compute_begin,
                           eng.now());
    if (w.tracer != nullptr && !abort_compute) {
      w.tracer->span(my_node, r, "compute", "phase", t_compute_begin,
                     eng.now());
      if (!kernel_times.empty()) {
        // Sub-spans at cumulative offsets; the straggler stretch scales each
        // kernel uniformly, and any GPU residual is the UM pump spill.
        double t0 = t_compute_begin;
        const auto& ks = w.catalog.kernels();
        for (std::size_t i = 0; i < kernel_times.size(); ++i) {
          const double t1 = t0 + slow * kernel_times[i];
          w.tracer->span(my_node, r, ks[i].name, "kernel", t0, t1);
          t0 = t1;
        }
        if (eng.now() - t0 > 1e-15)
          w.tracer->span(my_node, r, "um-spill", "kernel", t0, eng.now());
      }
    }

    const double t_halo_begin = eng.now();
    for (int nbr : my_nbrs) (void)co_await comm.recv(nbr, /*tag=*/0);
    if (w.cfg->trace != nullptr)
      w.cfg->trace->record(r, step, Phase::kHaloWait, t_halo_begin,
                           eng.now());
    if (w.tracer != nullptr)
      w.tracer->span(my_node, r, "halo-wait", "phase", t_halo_begin,
                     eng.now());

    // --- dt reduction (the per-step synchronization point). ---
    const double t_reduce_begin = eng.now();
    (void)co_await comm.allreduce_min(1.0);
    if (w.cfg->trace != nullptr)
      w.cfg->trace->record(r, step, Phase::kReduce, t_reduce_begin,
                           eng.now());
    if (w.tracer != nullptr)
      w.tracer->span(my_node, r, "reduce", "phase", t_reduce_begin,
                     eng.now());

    // --- Recovery / degraded rebalance (runs at rank 0's post-reduce slot:
    // the reduction delivers to rank 0 first, so this completes before any
    // other rank resumes — no extra barrier, and fault-free runs are
    // bitwise-identical to runs with an empty plan). ---
    if (w.injector != nullptr && r == 0 && w.pending_recovery) {
      auto& st = w.injector->stats();
      const double t_now = eng.now();
      // Graceful degradation: flip every rank whose device is gone to the
      // sequential-CPU policy (the paper's multi-policy dispatch).
      std::vector<std::pair<int, int>> dead_devices;
      for (auto& d : w.dec.domains) {
        if (d.target != ExecutionTarget::kGpuDevice) continue;
        if (!w.injector->gpu_dead(d.node_id, d.gpu_id, t_now)) continue;
        d.target = ExecutionTarget::kCpuCore;
        st.policy_flips += 1;
        const std::pair<int, int> dev{d.node_id, d.gpu_id};
        if (std::find(dead_devices.begin(), dead_devices.end(), dev) ==
            dead_devices.end())
          dead_devices.push_back(dev);
      }
      st.faults_recovered += static_cast<int>(dead_devices.size());
      // Immediate model-rate re-carve across the survivors; the measured
      // feedback below refines it on subsequent iterations.
      std::vector<double> weights(static_cast<std::size_t>(w.dec.ranks()));
      for (int q = 0; q < w.dec.ranks(); ++q) {
        weights[static_cast<std::size_t>(q)] =
            w.dec.domains[static_cast<std::size_t>(q)].target ==
                    ExecutionTarget::kGpuDevice
                ? w.model_gpu_rate
                : w.model_cpu_rate;
      }
      retire_sub_half_plane(w, weights);
      w.dec = decomp::reweight_y_slabs(w.dec, weights);
      w.rebuild_neighbors();
      if (st.rebalance_complete_time < 0.0)
        st.rebalance_complete_time = t_now;
      // Roll back: to the last checkpoint when checkpointing is on,
      // otherwise replay only the aborted iteration (in-memory redundancy).
      const int target = w.injector->recovery().checkpoint_interval > 0
                             ? w.last_checkpoint_step
                             : w.aborted_step;
      w.rollback_epoch += 1;
      w.rollback_target = target;
      st.rollbacks += 1;
      st.replayed_iterations += w.aborted_step - target + 1;
      if (w.rework_start < 0.0) w.rework_start = t_now;
      w.rework_until = w.aborted_step;
      w.pending_recovery = false;
      w.degraded = true;
      // Survivor reweighting supersedes the heterogeneous fraction carve
      // (which would resurrect the dead rank). All ranks observe the flip
      // this same iteration, so the barrier count stays consistent.
      w.lb_active = false;
      if (w.cfg->trace != nullptr)
        w.cfg->trace->record(r, step, Phase::kRebalance, t_now, eng.now());
      if (w.tracer != nullptr) {
        w.tracer->span(my_node, r, "rebalance", "phase", t_now, eng.now());
        w.tracer->instant(
            my_node, r, "recovery:rebalance", "recovery", t_now,
            obs::InstantScope::kGlobal,
            {{"dead_devices", static_cast<double>(dead_devices.size())},
             {"step", static_cast<double>(step)}});
        w.tracer->instant(
            my_node, r, "recovery:rollback", "recovery", eng.now(),
            obs::InstantScope::kGlobal,
            {{"target_step", static_cast<double>(target)},
             {"replayed", static_cast<double>(w.aborted_step - target + 1)}});
      }
      if (w.flight != nullptr) {
        w.flight->record(obs::log::Severity::kWarn, obs::log::Component::kRun,
                         t_now, "recovery:rebalance",
                         {{"deaths", static_cast<double>(dead_devices.size())},
                          {"step", static_cast<double>(step)}});
        w.flight->record(
            obs::log::Severity::kWarn, obs::log::Component::kRun, eng.now(),
            "recovery:rollback",
            {{"target", static_cast<double>(target)},
             {"replayed", static_cast<double>(w.aborted_step - target + 1)}});
      }
    } else if (w.injector != nullptr && r == 0 && w.degraded &&
               w.cfg->load_balance) {
      // Measured-rate survivor rebalance: the feedback balancer's
      // f* = r_cpu/(r_cpu+r_gpu) rule generalized to per-rank zone rates.
      std::vector<double> weights(static_cast<std::size_t>(w.dec.ranks()));
      for (int q = 0; q < w.dec.ranks(); ++q) {
        const auto& d = w.dec.domains[static_cast<std::size_t>(q)];
        const long zones = d.box.zones();
        const double t = w.compute_time[static_cast<std::size_t>(q)];
        if (zones <= 0) {
          weights[static_cast<std::size_t>(q)] = 0.0;  // retired: sticky
        } else if (t > 0.0 && std::isfinite(t)) {
          weights[static_cast<std::size_t>(q)] =
              static_cast<double>(zones) / t;
        } else {
          weights[static_cast<std::size_t>(q)] =
              d.target == ExecutionTarget::kGpuDevice ? w.model_gpu_rate
                                                      : w.model_cpu_rate;
        }
      }
      retire_sub_half_plane(w, weights);
      w.dec = decomp::reweight_y_slabs(w.dec, weights);
      w.rebuild_neighbors();
    }

    // --- Between-iteration load balancing (paper 6.2). ---
    if (w.lb_active) {
      if (r == 0) {
        double max_cpu = 0, max_gpu = 0;
        for (int q = 0; q < w.dec.ranks(); ++q) {
          const auto t = w.compute_time[static_cast<std::size_t>(q)];
          if (w.dec.domains[static_cast<std::size_t>(q)].target ==
              ExecutionTarget::kGpuDevice)
            max_gpu = std::max(max_gpu, t);
          else
            max_cpu = std::max(max_cpu, t);
        }
        w.sum_max_cpu += max_cpu;
        w.sum_max_gpu += max_gpu;
        w.balancer.observe(max_cpu, max_gpu, w.dec.cpu_zone_fraction());
        if (w.balancer.converged() && w.lb_converged_at < 0) {
          w.lb_converged_at = step + 1;
          if (w.tracer != nullptr)
            w.tracer->instant(
                my_node, r, "lb:converged", "lb", eng.now(),
                obs::InstantScope::kGlobal,
                {{"step", static_cast<double>(step + 1)},
                 {"cpu_fraction", w.balancer.fraction()}});
        }
        if (w.tracer != nullptr)
          w.tracer->instant(
              my_node, r, "lb:adjust", "lb", eng.now(),
              obs::InstantScope::kProcess,
              {{"cpu_fraction", w.balancer.fraction()},
               {"imbalance", w.balancer.last_imbalance()}});
        // Re-carve the CPU slabs for the next iteration; the single-plane
        // floor in `heterogeneous` keeps the split feasible.
        w.dec = make_cluster_decomposition(w.cfg->mode, w.cfg->node,
                                           w.cfg->global, w.cfg->nodes,
                                           w.cfg->ranks_per_gpu,
                                           w.balancer.fraction());
        w.rebuild_neighbors();
      }
      // The LB barrier is a synchronization wait like the dt reduce; trace
      // it as its own phase so measured wait covers every collective the
      // happens-before log records (analysis matches them one-to-one).
      const double t_barrier_begin = eng.now();
      co_await comm.barrier();
      if (w.tracer != nullptr)
        w.tracer->span(my_node, r, "barrier", "phase", t_barrier_begin,
                       eng.now());
    } else if (r == 0) {
      double max_cpu = 0, max_gpu = 0;
      for (int q = 0; q < w.dec.ranks(); ++q) {
        const auto t = w.compute_time[static_cast<std::size_t>(q)];
        if (w.dec.domains[static_cast<std::size_t>(q)].target ==
            ExecutionTarget::kGpuDevice)
          max_gpu = std::max(max_gpu, t);
        else
          max_cpu = std::max(max_cpu, t);
      }
      w.sum_max_cpu += max_cpu;
      w.sum_max_gpu += max_gpu;
    }

    // --- Iteration-boundary checkpoint and rollback application. ---
    if (w.injector != nullptr) {
      const auto& rec = w.injector->recovery();
      if (rec.checkpoint_interval > 0 &&
          (step + 1) % rec.checkpoint_interval == 0) {
        // Read the box from the (possibly re-carved) current decomposition:
        // `mine` may reference the pre-recovery domains vector.
        const long my_zones =
            w.dec.domains[static_cast<std::size_t>(r)].box.zones();
        const double cost = static_cast<double>(my_zones) *
                            rec.checkpoint_bytes_per_zone /
                            rec.checkpoint_bandwidth_bytes_per_s;
        if (r == 0) {
          auto& st = w.injector->stats();
          st.checkpoints_taken += 1;
          long max_zones = 0;
          for (const auto& d : w.dec.domains)
            max_zones = std::max(max_zones, d.box.zones());
          st.checkpoint_time += static_cast<double>(max_zones) *
                                rec.checkpoint_bytes_per_zone /
                                rec.checkpoint_bandwidth_bytes_per_s;
        }
        co_await eng.delay(cost);
        if (r == 0) {
          w.last_checkpoint_step = step + 1;
          if (w.tracer != nullptr)
            w.tracer->instant(
                my_node, r, "checkpoint", "recovery", eng.now(),
                obs::InstantScope::kGlobal,
                {{"through_step", static_cast<double>(step + 1)}});
          if (w.flight != nullptr)
            w.flight->record(obs::log::Severity::kInfo,
                             obs::log::Component::kRun, eng.now(),
                             "recovery:checkpoint",
                             {{"step", static_cast<double>(step + 1)}});
        }
      }
      if (my_rollback_epoch < w.rollback_epoch) {
        // A recovery armed a rollback this pass: rewind so the next loop
        // pass replays from the rollback target.
        my_rollback_epoch = w.rollback_epoch;
        step = w.rollback_target - 1;
      } else if (r == 0 && w.rework_start >= 0.0 && step == w.rework_until) {
        // The aborted pass has been replayed to completion on the
        // survivors; close the rework window.
        w.injector->stats().rework_time += eng.now() - w.rework_start;
        w.rework_start = -1.0;
      }
    }

    if (r == 0) {
      const double iter_s = eng.now() - w.iter_start;
      w.iteration_times.push_back(iter_s);

      // Per-step observability sampling (pure observation, no co_awaits).
      if (w.flight != nullptr)
        w.flight->record(obs::log::Severity::kDebug, obs::log::Component::kRun,
                         eng.now(), "run:step",
                         {{"step", static_cast<double>(step)},
                          {"iter_s", iter_s},
                          {"cpu_frac", w.dec.cpu_zone_fraction()}});
      const double pool_bytes = modeled_pool_bytes(w);
      w.pool_high_water = std::max(w.pool_high_water, pool_bytes);
      if (w.tracer != nullptr) {
        const double tn = eng.now();
        w.tracer->counter(my_node, "cpu_fraction", tn,
                          w.dec.cpu_zone_fraction());
        w.tracer->counter(my_node, "pool_bytes_in_use", tn, pool_bytes);
        w.tracer->counter(my_node, "pool_high_water_bytes", tn,
                          w.pool_high_water);
        w.tracer->counter(my_node, "halo_bytes_sent", tn,
                          static_cast<double>(commw.bytes_sent()));
        w.tracer->counter(my_node, "des_queue_depth", tn,
                          static_cast<double>(eng.queue_depth()));
      }
      if (w.metrics != nullptr) {
        auto& m = *w.metrics;
        m.histogram("sim.iteration_seconds",
                    {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0})
            .observe(iter_s);
        m.counter("sim.iterations").add();
        m.gauge("sim.cpu_fraction").set(w.dec.cpu_zone_fraction());
        m.gauge("comm.bytes_sent")
            .set(static_cast<double>(commw.bytes_sent()));
        m.gauge("pool.modeled_bytes_in_use").set(pool_bytes);
        m.gauge("pool.modeled_high_water_bytes").set_max(w.pool_high_water);
      }
      if (w.telemetry != nullptr) {
        auto& tm = w.telemetry->metrics();
        tm.counter("sim.iterations").add();
        tm.histogram("sim.iteration_seconds",
                     {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0})
            .observe(iter_s);
        // Imbalance of this iteration: slowest active rank over the mean of
        // active ranks, minus 1 (0 = perfectly balanced).
        double max_t = 0.0, sum_t = 0.0;
        int active = 0;
        for (const double t : w.compute_time)
          if (t > 0.0) {
            max_t = std::max(max_t, t);
            sum_t += t;
            ++active;
          }
        tm.gauge("sim.imbalance")
            .set(active > 0 && sum_t > 0.0
                     ? max_t * static_cast<double>(active) / sum_t - 1.0
                     : 0.0);
        tm.gauge("sim.des_queue_depth")
            .set(static_cast<double>(eng.queue_depth()));
        w.telemetry->tick(eng.now());
      }
    }
  }
}

}  // namespace

TimedResult run_timed(const TimedConfig& cfg) {
  // Config validation throws the typed taxonomy (sim_error.hpp). Every site
  // is still a std::invalid_argument via SimConfigException, so legacy
  // catch sites keep working; the sweep supervisor reads the kind.
  const auto bad = [](const char* what) {
    throw_sim_error(SimErrorKind::kConfig, std::string("run_timed: ") + what);
  };
  if (cfg.global.empty()) bad("empty global box");
  if (cfg.timesteps <= 0) bad("timesteps <= 0");
  if (cfg.nodes <= 0) bad("nodes <= 0");
  if (cfg.ranks_per_gpu <= 0) bad("ranks_per_gpu <= 0");
  if (cfg.cpu_fraction > 1.0) bad("cpu_fraction > 1");
  if (cfg.ghosts < 0) bad("ghosts < 0");
  if (static_cast<long>(cfg.nodes) > cfg.global.nz())
    bad("nodes exceed the global z extent");
  if (cfg.faults != nullptr) {
    if (cfg.recovery.max_launch_attempts < 1) bad("max_launch_attempts < 1");
    if (cfg.recovery.checkpoint_interval < 0) bad("checkpoint_interval < 0");
    if (cfg.recovery.checkpoint_bandwidth_bytes_per_s <= 0.0 ||
        cfg.recovery.pool_fallback_bandwidth_bytes_per_s <= 0.0)
      bad("nonpositive recovery bandwidth");
  }

  World w;
  w.cfg = &cfg;
  w.tracer = cfg.tracer;
  w.metrics = cfg.metrics;
  w.hb = cfg.hb;
  w.flight = cfg.flight;
  w.telemetry = cfg.telemetry;
  if (cfg.flight != nullptr)
    cfg.flight->record(obs::log::Severity::kInfo, obs::log::Component::kRun,
                       0.0, "run:start",
                       {{"mode", static_cast<double>(cfg.mode)},
                        {"zones", static_cast<double>(cfg.global.zones())},
                        {"steps", static_cast<double>(cfg.timesteps)}});
  w.layout = make_rank_layout(cfg.mode, cfg.node, cfg.ranks_per_gpu);
  w.catalog = hydro::KernelCatalog::scaled(cfg.catalog_kernels);

  // Initial CPU share: explicit, or the FLOPS-based guess of 6.2.
  double f0 = cfg.cpu_fraction;
  if (cfg.mode == NodeMode::kHeterogeneous && f0 < 0) {
    const double penalty = cfg.compiler_bug ? calib::kCompilerBugFactor : 1.0;
    f0 = lb::initial_cpu_fraction(cfg.node, w.layout.cpu_ranks,
                                  w.catalog.total(), penalty);
  }
  w.dec = make_cluster_decomposition(cfg.mode, cfg.node, cfg.global,
                                     cfg.nodes, cfg.ranks_per_gpu,
                                     std::max(0.0, f0));
  w.dec.validate();
  w.rebuild_neighbors();
  if (cfg.tracer != nullptr) {
    for (int n = 0; n < cfg.nodes; ++n)
      cfg.tracer->set_process_name(n, "node" + std::to_string(n));
    for (int q = 0; q < w.dec.ranks(); ++q) {
      const auto& d = w.dec.domains[static_cast<std::size_t>(q)];
      cfg.tracer->set_thread_name(
          d.node_id, q,
          "rank " + std::to_string(q) +
              (d.target == ExecutionTarget::kGpuDevice ? " (gpu)"
                                                       : " (cpu)"));
    }
  }
  w.lb_active = cfg.load_balance && cfg.mode == NodeMode::kHeterogeneous;
  if (w.lb_active) {
    lb::FeedbackBalancer::Config bc;
    bc.initial_fraction = w.dec.cpu_zone_fraction();
    // Floor: one plane per CPU rank (decomposition granularity).
    bc.min_fraction = static_cast<double>(w.layout.cpu_ranks) /
                      static_cast<double>(cfg.global.ny());
    bc.max_fraction = 0.5;
    w.balancer = lb::FeedbackBalancer(bc);
    if (cfg.metrics != nullptr) w.balancer.bind_metrics(*cfg.metrics);
  }
  w.compute_time.assign(static_cast<std::size_t>(w.dec.ranks()), 0.0);

  // Fault injection: validate the plan against this topology and pre-compute
  // the model zone rates the post-death re-carve uses (same roofline as
  // lb::initial_cpu_fraction, penalty included for GPU-enabled builds).
  std::unique_ptr<fault::FaultInjector> injector;
  if (cfg.faults != nullptr) {
    cfg.faults->validate(w.dec.ranks(), cfg.nodes, cfg.node.gpu_count);
    injector =
        std::make_unique<fault::FaultInjector>(*cfg.faults, cfg.recovery);
    if (cfg.tracer != nullptr) injector->bind_tracer(cfg.tracer);
    if (cfg.flight != nullptr) injector->bind_flight(cfg.flight);
    w.injector = injector.get();
    const auto work = w.catalog.total();
    const double penalty =
        (cfg.compiler_bug && cfg.mode != NodeMode::kCpuOnly)
            ? calib::kCompilerBugFactor
            : 1.0;
    w.model_cpu_rate =
        std::min(cfg.node.cpu.core_flops_per_s / work.flops_per_zone,
                 cfg.node.cpu.core_bandwidth_bytes_per_s /
                     work.bytes_per_zone) /
        penalty;
    w.model_gpu_rate =
        std::min(cfg.node.gpu.flops_per_s / work.flops_per_zone,
                 cfg.node.gpu.bandwidth_bytes_per_s / work.bytes_per_zone) *
        0.9;
  }

  des::Engine eng;
  if (cfg.use_gpu_server) {
    for (int g = 0; g < cfg.nodes * cfg.node.gpu_count; ++g)
      w.gpu_servers.push_back(
          std::make_unique<devmodel::GpuServer>(eng, cfg.node.gpu));
  }
  simmpi::SimCommWorld commw(eng, w.dec.ranks(), cfg.node.net);
  if (cfg.hb != nullptr) commw.bind_hb_log(cfg.hb);
  for (int r = 0; r < w.dec.ranks(); ++r)
    eng.spawn(rank_process(eng, w, commw, r));
  double makespan = 0.0;
  if (cfg.cancel == nullptr && !cfg.budget.any()) {
    makespan = eng.run();
  } else {
    // Supervised drive: fixed event slices with watchdog/cancellation
    // checks in between. Slicing never reorders events (run_for pops the
    // same (t, seq) order run() would), so a run that stays inside its
    // budgets is bitwise identical to the unsupervised one. Throwing here —
    // from the driver, never inside a coroutine — leaves suspended rank
    // frames to the Engine's destructor.
    constexpr std::uint64_t kSliceEvents = 4096;
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t start_events = eng.events_processed();
    // Budget trips are flight-recorded before throwing: the watchdog is
    // exactly the failure mode whose history a crash dump must explain.
    const auto trip = [&](const char* event, const std::string& what) {
      if (cfg.flight != nullptr)
        cfg.flight->record(obs::log::Severity::kError,
                           obs::log::Component::kRun, eng.now(), event);
      throw_sim_error(event == std::string_view("run:cancelled")
                          ? SimErrorKind::kCancelled
                          : SimErrorKind::kTimeout,
                      what);
    };
    bool live = true;
    while (live) {
      live = eng.run_for(kSliceEvents);
      if (cfg.cancel != nullptr && cfg.cancel->cancelled())
        trip("run:cancelled", "run_timed: cancelled");
      const auto& b = cfg.budget;
      if (b.max_events > 0 &&
          eng.events_processed() - start_events > b.max_events)
        trip("budget:events", "run_timed: event budget exceeded (" +
                                  std::to_string(b.max_events) + " events)");
      if (b.max_sim_s > 0.0 && eng.now() > b.max_sim_s)
        trip("budget:sim_time", "run_timed: simulated-time budget exceeded");
      if (b.max_wall_s > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
                  .count() > b.max_wall_s)
        trip("budget:wall", "run_timed: wall-clock budget exceeded");
    }
    makespan = eng.now();
  }
  if (cfg.tracer != nullptr) cfg.tracer->close_counter_tracks(makespan);
  if (cfg.flight != nullptr)
    cfg.flight->record(obs::log::Severity::kInfo, obs::log::Component::kRun,
                       makespan, "run:complete",
                       {{"iters", static_cast<double>(w.iteration_times.size())}});

  TimedResult res;
  res.makespan = makespan;
  res.iteration_times = std::move(w.iteration_times);
  res.final_cpu_fraction = w.dec.cpu_zone_fraction();
  res.avg_max_cpu_compute = w.sum_max_cpu / cfg.timesteps;
  res.avg_max_gpu_compute = w.sum_max_gpu / cfg.timesteps;
  res.messages = commw.messages_sent();
  res.bytes = commw.bytes_sent();
  res.comm_stats = decomp::analyze_communication(w.dec, cfg.ghosts);
  res.ranks = w.dec.ranks();
  res.lb_iterations_to_converge = w.lb_converged_at;
  if (w.injector != nullptr) res.resilience = w.injector->stats();
  res.final_zones_per_rank.reserve(w.dec.domains.size());
  res.final_rank_is_gpu.reserve(w.dec.domains.size());
  for (const auto& d : w.dec.domains) {
    res.final_zones_per_rank.push_back(d.box.zones());
    res.final_rank_is_gpu.push_back(
        d.target == ExecutionTarget::kGpuDevice ? 1 : 0);
  }
  return res;
}

}  // namespace coop::core
