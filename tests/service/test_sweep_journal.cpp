/// SweepJournal: crash-safe record/lookup round-trips, idempotent appends,
/// byte-deterministic file content, campaign-hash identity (semantic knobs
/// hash, execution knobs don't), typed refusal of foreign or corrupt
/// journals, schema-registry conformance — and the resume contract end to
/// end: a campaign restarted over a partial journal re-runs zero completed
/// cells and produces curves bitwise identical to a clean run.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "coop/core/sim_error.hpp"
#include "coop/service/sweep_journal.hpp"
#include "coop/sweeps/figure_sweeps.hpp"
#include "support/json_check.hpp"

namespace core = coop::core;
namespace service = coop::service;
namespace sweeps = coop::sweeps;
namespace fs = std::filesystem;
namespace cj = coophet_test::json;

namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("coophet_journal_" + std::to_string(counter_++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const char* name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

sweeps::SweepOptions base_options() {
  sweeps::SweepOptions options;
  options.timesteps = 4;
  options.jobs = 1;
  return options;
}

sweeps::FigureSpec fig18_reduced() {
  return sweeps::reduced(sweeps::figure_spec(18), 3);
}

sweeps::SweepCellRecord sample_record(std::size_t point, core::NodeMode mode) {
  sweeps::SweepCellRecord rec;
  rec.point = point;
  rec.mode = mode;
  rec.x = 100;
  rec.y = 480;
  rec.z = 160;
  rec.t = 0.1234567890123456789;  // exercises the %.17g exact round-trip
  rec.steady = 3.0e-5;
  rec.cpu_share = mode == core::NodeMode::kHeterogeneous ? 0.11 : 0.0;
  return rec;
}

// --- Campaign identity -------------------------------------------------------

TEST(CampaignHash, SemanticKnobsChangeItExecutionKnobsDoNot) {
  const auto spec = fig18_reduced();
  const auto options = base_options();
  const std::string h = service::campaign_hash(spec, options);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h, service::campaign_hash(spec, options));  // stable

  sweeps::SweepOptions execution = options;
  execution.jobs = 8;
  execution.grain = 3;
  execution.verbose = true;
  execution.max_cell_attempts = 7;
  execution.cell_budget.max_events = 1000000;
  EXPECT_EQ(h, service::campaign_hash(spec, execution));

  sweeps::SweepOptions semantic = options;
  semantic.timesteps = 5;
  EXPECT_NE(h, service::campaign_hash(spec, semantic));
  semantic = options;
  semantic.model_um_threshold = false;
  EXPECT_NE(h, service::campaign_hash(spec, semantic));

  const auto other_spec = sweeps::reduced(sweeps::figure_spec(12), 3);
  EXPECT_NE(h, service::campaign_hash(other_spec, options));
}

// --- Record / lookup ---------------------------------------------------------

TEST(SweepJournal, RecordLookupRoundTripsExactDoubles) {
  TempDir tmp;
  service::SweepJournal journal(tmp.file("j.json"), fig18_reduced(),
                                base_options());
  EXPECT_EQ(journal.size(), 0u);

  const auto rec = sample_record(1, core::NodeMode::kHeterogeneous);
  journal.record(rec);
  EXPECT_EQ(journal.size(), 1u);

  sweeps::SweepCellRecord out;
  EXPECT_FALSE(journal.lookup(0, core::NodeMode::kHeterogeneous, out));
  EXPECT_FALSE(journal.lookup(1, core::NodeMode::kMpsPerGpu, out));
  ASSERT_TRUE(journal.lookup(1, core::NodeMode::kHeterogeneous, out));
  EXPECT_EQ(out.point, rec.point);
  EXPECT_EQ(out.mode, rec.mode);
  EXPECT_EQ(out.x, rec.x);
  EXPECT_EQ(bits_of(out.t), bits_of(rec.t));
  EXPECT_EQ(bits_of(out.steady), bits_of(rec.steady));
  EXPECT_EQ(bits_of(out.cpu_share), bits_of(rec.cpu_share));
}

TEST(SweepJournal, RecordIsIdempotent) {
  TempDir tmp;
  service::SweepJournal journal(tmp.file("j.json"), fig18_reduced(),
                                base_options());
  journal.record(sample_record(0, core::NodeMode::kOneRankPerGpu));
  const std::string after_first = slurp(journal.path());
  journal.record(sample_record(0, core::NodeMode::kOneRankPerGpu));
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(slurp(journal.path()), after_first);
}

TEST(SweepJournal, CellsSurviveReopenBitwise) {
  TempDir tmp;
  const auto spec = fig18_reduced();
  const auto rec = sample_record(2, core::NodeMode::kMpsPerGpu);
  {
    service::SweepJournal journal(tmp.file("j.json"), spec, base_options());
    journal.record(rec);
    journal.record(sample_record(0, core::NodeMode::kHeterogeneous));
  }
  service::SweepJournal reopened(tmp.file("j.json"), spec, base_options());
  EXPECT_EQ(reopened.size(), 2u);
  sweeps::SweepCellRecord out;
  ASSERT_TRUE(reopened.lookup(2, core::NodeMode::kMpsPerGpu, out));
  EXPECT_EQ(bits_of(out.t), bits_of(rec.t));
  EXPECT_EQ(bits_of(out.steady), bits_of(rec.steady));
}

TEST(SweepJournal, FileIsByteDeterministicAcrossInsertionOrder) {
  TempDir tmp;
  const auto spec = fig18_reduced();
  service::SweepJournal forward(tmp.file("fwd.json"), spec, base_options());
  service::SweepJournal backward(tmp.file("bwd.json"), spec, base_options());
  const core::NodeMode modes[] = {core::NodeMode::kOneRankPerGpu,
                                  core::NodeMode::kMpsPerGpu,
                                  core::NodeMode::kHeterogeneous};
  for (std::size_t p = 0; p < 3; ++p)
    for (const auto m : modes) forward.record(sample_record(p, m));
  for (std::size_t p = 3; p-- > 0;)
    for (const auto m : {modes[2], modes[1], modes[0]})
      backward.record(sample_record(p, m));
  EXPECT_EQ(slurp(forward.path()), slurp(backward.path()));
}

// --- Refusing the wrong journal ----------------------------------------------

TEST(SweepJournal, ForeignCampaignIsRefusedAsConfigError) {
  TempDir tmp;
  const auto spec = fig18_reduced();
  {
    service::SweepJournal journal(tmp.file("j.json"), spec, base_options());
    journal.record(sample_record(0, core::NodeMode::kOneRankPerGpu));
  }
  sweeps::SweepOptions other = base_options();
  other.timesteps = 9;  // a semantic knob: different campaign
  try {
    service::SweepJournal journal(tmp.file("j.json"), spec, other);
    FAIL() << "foreign journal was accepted";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kConfig);
    EXPECT_NE(c.error().context.find("refusing to resume"),
              std::string::npos);
  }
}

TEST(SweepJournal, CorruptFileIsRefusedAsIoError) {
  TempDir tmp;
  {
    std::ofstream out(tmp.file("j.json"), std::ios::binary);
    out << "{\"schema\":\"coophet.sweep_journal\",\"schema_version\":1,"
           "\"campaign\":\"deadbeef\",\"cells\":[{\"point\":tru";
  }
  try {
    service::SweepJournal journal(tmp.file("j.json"), fig18_reduced(),
                                  base_options());
    FAIL() << "corrupt journal was accepted";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kIo);
  }
}

TEST(SweepJournal, WrongSchemaIsRefusedAsIoError) {
  TempDir tmp;
  {
    std::ofstream out(tmp.file("j.json"), std::ios::binary);
    out << "{\"schema\":\"coophet.metrics\",\"schema_version\":1}";
  }
  EXPECT_THROW(service::SweepJournal(tmp.file("j.json"), fig18_reduced(),
                                     base_options()),
               std::runtime_error);
}

TEST(SweepJournal, EmptyOrMissingFileIsAFreshJournal) {
  TempDir tmp;
  {  // zero-byte file, e.g. a crash before the very first rename
    std::ofstream out(tmp.file("empty.json"), std::ios::binary);
  }
  service::SweepJournal from_empty(tmp.file("empty.json"), fig18_reduced(),
                                   base_options());
  EXPECT_EQ(from_empty.size(), 0u);
  service::SweepJournal from_missing(tmp.file("missing.json"),
                                     fig18_reduced(), base_options());
  EXPECT_EQ(from_missing.size(), 0u);
}

TEST(SweepJournal, WhitespaceOnlyFileIsAFreshJournalNotCorruption) {
  // A crash can also leave a file holding only whitespace (a partially
  // flushed buffer); like the zero-byte case there is nothing to resume and
  // nothing to lose, so this must NOT be reported as a corrupt journal.
  TempDir tmp;
  {
    std::ofstream out(tmp.file("ws.json"), std::ios::binary);
    out << " \t\r\n \n";
  }
  service::SweepJournal journal(tmp.file("ws.json"), fig18_reduced(),
                                base_options());
  EXPECT_EQ(journal.size(), 0u);
  // And the journal is fully usable afterwards: recording rewrites it.
  journal.record(sample_record(0, core::NodeMode::kHeterogeneous));
  EXPECT_EQ(journal.size(), 1u);
}

// --- Schema conformance ------------------------------------------------------

TEST(SweepJournal, FileLintsAgainstTheArtifactRegistry) {
  TempDir tmp;
  service::SweepJournal journal(tmp.file("j.json"), fig18_reduced(),
                                base_options());
  journal.record(sample_record(0, core::NodeMode::kHeterogeneous));
  journal.record(sample_record(1, core::NodeMode::kMpsPerGpu));

  const auto parsed = cj::parse(slurp(journal.path()));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(cj::check_artifact_schema(parsed.value,
                                      service::kSweepJournalSchemaName),
            "");
  EXPECT_EQ(cj::first_missing_key(parsed.value,
                                  {"schema", "schema_version", "campaign",
                                   "figure", "cells"}),
            "");
  const auto* cells = parsed.value.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_TRUE(cells->is_array());
  ASSERT_EQ(cells->array.size(), 2u);
  EXPECT_EQ(cj::first_missing_key(cells->array[0],
                                  {"point", "mode", "x", "y", "z", "t",
                                   "steady", "cpu_share"}),
            "");
}

// --- The resume contract (ISSUE acceptance) ----------------------------------

TEST(SweepJournal, ResumedCampaignRerunsNothingAndMatchesCleanRunBitwise) {
  TempDir tmp;
  const auto spec = fig18_reduced();
  const auto clean = sweeps::run_figure_sweep(spec, base_options());
  const int cells_total = static_cast<int>(3 * clean.points.size());

  // First pass: one poisoned cell stands in for the crash — the journal
  // ends up holding every cell except (1, hetero).
  service::SweepJournal journal(tmp.file("j.json"), spec, base_options());
  {
    sweeps::SweepOptions options = base_options();
    journal.bind(options);
    options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
      if (point == 1 && mode == core::NodeMode::kHeterogeneous)
        core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                              "test: poison");
    };
    const auto partial = sweeps::run_figure_sweep(spec, options);
    EXPECT_EQ(partial.supervision.quarantined, 1);
    EXPECT_EQ(journal.size(), static_cast<std::size_t>(cells_total - 1));
  }

  // Second pass, poison gone: only the missing cell runs; everything else
  // is a resume hit, and the final curves equal the clean run bit for bit.
  service::SweepJournal resumed(tmp.file("j.json"), spec, base_options());
  sweeps::SweepOptions options = base_options();
  resumed.bind(options);
  const auto curves = sweeps::run_figure_sweep(spec, options);
  EXPECT_EQ(curves.supervision.resume_hits, cells_total - 1);
  EXPECT_TRUE(curves.failed_cells.empty());
  EXPECT_EQ(resumed.size(), static_cast<std::size_t>(cells_total));

  ASSERT_EQ(clean.points.size(), curves.points.size());
  for (std::size_t i = 0; i < clean.points.size(); ++i) {
    const auto& c = clean.points[i];
    const auto& r = curves.points[i];
    EXPECT_EQ(bits_of(c.t_default), bits_of(r.t_default)) << "point " << i;
    EXPECT_EQ(bits_of(c.t_mps), bits_of(r.t_mps)) << "point " << i;
    EXPECT_EQ(bits_of(c.t_hetero), bits_of(r.t_hetero)) << "point " << i;
    EXPECT_EQ(bits_of(c.steady_default), bits_of(r.steady_default))
        << "point " << i;
    EXPECT_EQ(bits_of(c.steady_mps), bits_of(r.steady_mps)) << "point " << i;
    EXPECT_EQ(bits_of(c.steady_hetero), bits_of(r.steady_hetero))
        << "point " << i;
    EXPECT_EQ(bits_of(c.hetero_cpu_share), bits_of(r.hetero_cpu_share))
        << "point " << i;
  }

  // Third pass: a fully journaled campaign is pure resume.
  service::SweepJournal full(tmp.file("j.json"), spec, base_options());
  sweeps::SweepOptions options2 = base_options();
  full.bind(options2);
  const auto replay = sweeps::run_figure_sweep(spec, options2);
  EXPECT_EQ(replay.supervision.resume_hits, cells_total);
  EXPECT_EQ(bits_of(replay.points[1].t_hetero),
            bits_of(clean.points[1].t_hetero));
}

}  // namespace
