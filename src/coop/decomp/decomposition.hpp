#pragma once

#include <string>
#include <vector>

#include "coop/memory/memory_manager.hpp"
#include "coop/mesh/box.hpp"

/// \file decomposition.hpp
/// Domain decompositions for the heterogeneous node (paper 6.1, Figs. 9-10).
///
/// Three families:
///  * `block_decomposition` — classic near-cubic ("square") blocks; lowest
///    surface-to-volume per rank but neighbor counts grow quickly with rank
///    count (Fig. 9's 4-vs-16 comparison).
///  * `hierarchical_gpu` — the paper's scheme: first split the problem across
///    the GPUs, then subdivide each GPU block along a *single* dimension (y)
///    for the extra ranks, keeping the innermost x extent intact and the halo
///    neighbor count minimal (Fig. 10 a/b).
///  * `heterogeneous` — hierarchical, plus thin y-slabs carved from each GPU
///    block for the CPU-only ranks, weighted by the CPU's share of the node
///    throughput (Fig. 10 c).

namespace coop::decomp {

/// One rank's share of the problem.
struct RankDomain {
  int rank = -1;
  mesh::Box box{};
  memory::ExecutionTarget target = memory::ExecutionTarget::kCpuCore;
  /// GPU this rank drives (target == kGpuDevice), or the GPU block a CPU
  /// rank was carved from (-1 when not associated with any GPU).
  int gpu_id = -1;
  /// Node this rank lives on (multi-node runs; 0 for single-node).
  int node_id = 0;
};

struct Decomposition {
  std::string scheme;  ///< "block", "hierarchical", "heterogeneous"
  mesh::Box global{};
  std::vector<RankDomain> domains;

  [[nodiscard]] int ranks() const noexcept {
    return static_cast<int>(domains.size());
  }
  [[nodiscard]] long total_zones() const noexcept;
  /// Fraction of zones owned by CPU-executing ranks.
  [[nodiscard]] double cpu_zone_fraction() const noexcept;
  /// Throws std::logic_error unless the domains exactly partition `global`
  /// (cover it, pairwise disjoint). With `allow_empty`, empty domains are
  /// permitted (retired ranks in a degraded decomposition) and only the
  /// non-empty domains must partition `global`.
  void validate(bool allow_empty = false) const;
};

/// Near-cubic grid of `ranks` blocks. The grid factorization minimizes total
/// surface area (communication volume) for the given global extents.
[[nodiscard]] Decomposition block_decomposition(const mesh::Box& global,
                                                int ranks);

/// Chooses the (px, py, pz) factorization of `ranks` minimizing halo surface
/// for `global`. Exposed for testing and for the Fig. 9 analytics.
[[nodiscard]] std::array<int, 3> choose_grid(const mesh::Box& global,
                                             int ranks);

/// The paper's hierarchical scheme. Stage 1: `gpu_count` equal y-slabs, one
/// per GPU. Stage 2: each slab further subdivided in y into `ranks_per_gpu`
/// sub-slabs (1 for the Default mode, 4 for the MPS mode). All resulting
/// ranks drive a GPU.
[[nodiscard]] Decomposition hierarchical_gpu(const mesh::Box& global,
                                             int gpu_count, int ranks_per_gpu);

/// The heterogeneous scheme: `gpu_count` GPU ranks (one per GPU) plus
/// `cpu_ranks` CPU ranks. Each GPU block donates a stack of thin y-slabs
/// (`cpu_ranks / gpu_count` of them, each at least one plane thick) sized so
/// the CPU ranks own ~`cpu_fraction` of all zones. The achievable fraction
/// is bounded below by one plane per CPU rank: 12 CPU ranks on a 480-plane
/// problem cannot take less than 2.5% (the paper's 1-2% at large y, and the
/// 15% floor that sinks the Heterogeneous mode at y ~ 80).
[[nodiscard]] Decomposition heterogeneous(const mesh::Box& global,
                                          int gpu_count, int cpu_ranks,
                                          double cpu_fraction);

/// Classic CPU-only decomposition (paper Fig. 1): near-cubic blocks, one per
/// core, all executing on the CPU.
[[nodiscard]] Decomposition cpu_only(const mesh::Box& global, int cores);

/// Degraded-mode re-carve used after a device failure: re-splits each node's
/// y-slab stack so every rank's share is proportional to `weights[rank]`.
/// A zero weight retires the rank — it receives an empty box (and thereby
/// drops out of face adjacency and halo exchange). Rank ids, execution
/// targets, gpu ids and node ids are preserved; only the boxes move. Requires
/// the per-node domains to be y-slabs (every decomposition the GPU modes
/// build). Throws std::invalid_argument on a weight-count mismatch, negative
/// weights, or a node whose weights sum to zero while it still owns zones.
[[nodiscard]] Decomposition reweight_y_slabs(const Decomposition& base,
                                             const std::vector<double>& weights);

// --- Communication analytics (Fig. 9 / 6.1) --------------------------------

struct CommStats {
  int total_messages = 0;      ///< directed face-neighbor pairs
  int max_neighbors = 0;       ///< worst rank's neighbor count
  double avg_neighbors = 0.0;
  long total_halo_zones = 0;   ///< sum over directed exchanges
  long max_halo_zones = 0;     ///< worst rank's received halo zones
};

/// Face-adjacency neighbor lists (indices into `d.domains`).
[[nodiscard]] std::vector<std::vector<int>> neighbor_lists(
    const Decomposition& d);

/// Neighbor-count and halo-volume statistics for ghost width `ghosts`.
[[nodiscard]] CommStats analyze_communication(const Decomposition& d,
                                              long ghosts);

}  // namespace coop::decomp
