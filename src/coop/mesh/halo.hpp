#pragma once

#include <span>
#include <vector>

#include "coop/mesh/array3d.hpp"
#include "coop/mesh/box.hpp"

/// \file halo.hpp
/// Halo (ghost-zone) geometry and pack/unpack for block-structured fields.

namespace coop::mesh {

/// Zones of `mine` that neighbor `nbr` needs for its ghost frame of width
/// `ghosts` — the region I must send.
[[nodiscard]] inline Box send_region(const Box& mine, const Box& nbr,
                                     long ghosts) noexcept {
  return mine.intersect(nbr.grown(ghosts));
}

/// Zones of `nbr` that fill my ghost frame — the region I receive.
[[nodiscard]] inline Box recv_region(const Box& mine, const Box& nbr,
                                     long ghosts) noexcept {
  return nbr.intersect(mine.grown(ghosts));
}

/// Serializes `region` (global indices; must lie inside a.padded()) in
/// x-fastest order.
template <typename T>
[[nodiscard]] std::vector<T> pack(const Array3D<T>& a, const Box& region) {
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(region.zones()));
  for (long k = region.lo.z; k < region.hi.z; ++k)
    for (long j = region.lo.y; j < region.hi.y; ++j)
      for (long i = region.lo.x; i < region.hi.x; ++i)
        out.push_back(a(i, j, k));
  return out;
}

/// Writes `data` (x-fastest) into `region` of `a`.
template <typename T>
void unpack(Array3D<T>& a, const Box& region, std::span<const T> data) {
  std::size_t n = 0;
  for (long k = region.lo.z; k < region.hi.z; ++k)
    for (long j = region.lo.y; j < region.hi.y; ++j)
      for (long i = region.lo.x; i < region.hi.x; ++i)
        a(i, j, k) = data[n++];
}

/// Accumulates `data` into `region` of `a` (for nodal force/mass sums on
/// shared faces).
template <typename T>
void unpack_add(Array3D<T>& a, const Box& region, std::span<const T> data) {
  std::size_t n = 0;
  for (long k = region.lo.z; k < region.hi.z; ++k)
    for (long j = region.lo.y; j < region.hi.y; ++j)
      for (long i = region.lo.x; i < region.hi.x; ++i)
        a(i, j, k) += data[n++];
}

}  // namespace coop::mesh
