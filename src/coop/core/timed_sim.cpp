#include "coop/core/timed_sim.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "coop/des/engine.hpp"
#include "coop/devmodel/calibration.hpp"
#include "coop/devmodel/gpu_server.hpp"
#include "coop/devmodel/kernel_cost.hpp"
#include "coop/lb/load_balancer.hpp"
#include "coop/mesh/halo.hpp"
#include "coop/simmpi/sim_comm.hpp"

namespace coop::core {

namespace {

namespace calib = devmodel::calib;
using decomp::Decomposition;
using memory::ExecutionTarget;

/// Shared (single-threaded DES) state all rank processes see.
struct World {
  const TimedConfig* cfg;
  RankLayout layout;
  hydro::KernelCatalog catalog;
  Decomposition dec;
  std::vector<std::vector<int>> nbrs;
  lb::FeedbackBalancer balancer{lb::FeedbackBalancer::Config{}};
  bool lb_active = false;

  // Per-iteration scratch.
  std::vector<double> compute_time;  // per rank, this iteration
  double iter_start = 0.0;

  // Optional event-driven GPU backend (one server per physical GPU).
  std::vector<std::unique_ptr<devmodel::GpuServer>> gpu_servers;

  // Records.
  std::vector<double> iteration_times;
  double sum_max_cpu = 0.0, sum_max_gpu = 0.0;
  int lb_converged_at = -1;

  void rebuild_neighbors() { nbrs = decomp::neighbor_lists(dec); }
};

/// Per-step UM pump spill charged to each GPU-driving rank on `node_id`
/// (Fig. 12 knee); the pump is a per-node host resource.
double um_spill_time(const World& w, int node_id) {
  const auto& cfg = *w.cfg;
  if (!cfg.model_um_threshold) return 0.0;
  double gpu_zones = 0;
  for (const auto& d : w.dec.domains)
    if (d.node_id == node_id && d.target == ExecutionTarget::kGpuDevice)
      gpu_zones += static_cast<double>(d.box.zones());
  return devmodel::um_spill_time_per_gpu_rank(
      cfg.node.um, gpu_zones, w.layout.active_cores, w.layout.gpu_ranks);
}

/// Compute-phase duration for rank `r` in the current decomposition.
double compute_phase_time(const World& w, int r) {
  const auto& cfg = *w.cfg;
  const auto& dom = w.dec.domains[static_cast<std::size_t>(r)];
  const double zones = static_cast<double>(dom.box.zones());
  const double nx = static_cast<double>(dom.box.nx());
  double t = 0.0;

  if (dom.target == ExecutionTarget::kGpuDevice) {
    const bool mps = cfg.mode == NodeMode::kMpsPerGpu;
    const int resident = mps ? cfg.ranks_per_gpu : 1;
    const double launch = devmodel::gpu_launch_overhead(cfg.node.gpu, mps);
    for (const auto& k : w.catalog.kernels()) {
      double exec;
      if (mps && cfg.model_mps_overlap) {
        exec = devmodel::gpu_kernel_exec_time_mps(cfg.node.gpu, k.work, zones,
                                                  nx, resident);
      } else if (mps) {
        // Ablation: no overlap — co-resident kernels serialize.
        exec = resident * devmodel::gpu_kernel_exec_time(cfg.node.gpu, k.work,
                                                         zones, nx);
      } else {
        exec = devmodel::gpu_kernel_exec_time(cfg.node.gpu, k.work, zones, nx);
      }
      t += launch + exec;
    }
    t += um_spill_time(w, dom.node_id);
  } else {
    // CPU-only rank. The dispatch penalty applies to GPU-enabled builds
    // (hetero mode); a pure CPU build has no CUDA decorations (Fig. 1).
    const double penalty =
        (cfg.compiler_bug && cfg.mode == NodeMode::kHeterogeneous)
            ? calib::kCompilerBugFactor
            : 1.0;
    for (const auto& k : w.catalog.kernels())
      t += devmodel::cpu_kernel_exec_time(cfg.node.cpu, k.work, zones,
                                          penalty);
  }
  return t;
}

/// Compute phase through the event-driven GPU queue: one launch-overhead
/// delay plus one server submission per catalog kernel.
des::Task<void> gpu_server_compute(des::Engine& eng, World& w, int r) {
  const auto& cfg = *w.cfg;
  const auto& dom = w.dec.domains[static_cast<std::size_t>(r)];
  const bool mps = cfg.mode == NodeMode::kMpsPerGpu;
  const double zones = static_cast<double>(dom.box.zones());
  const double nx = static_cast<double>(dom.box.nx());
  const double launch = devmodel::gpu_launch_overhead(cfg.node.gpu, mps);
  auto& gpu = *w.gpu_servers[static_cast<std::size_t>(
      dom.node_id * cfg.node.gpu_count + dom.gpu_id)];
  for (const auto& k : w.catalog.kernels()) {
    co_await eng.delay(launch);
    co_await gpu.execute(k.work, zones, nx, mps);
  }
  co_await eng.delay(um_spill_time(w, dom.node_id));
}

des::Task<void> rank_process(des::Engine& eng, World& w,
                             simmpi::SimCommWorld& commw, int r) {
  simmpi::SimComm comm = commw.comm(r);
  const long ghosts = w.cfg->ghosts;

  const devmodel::InterconnectSpec gd_net =
      devmodel::InterconnectSpec::gpu_direct();

  for (int step = 0; step < w.cfg->timesteps; ++step) {
    if (r == 0) w.iter_start = eng.now();

    const auto& mine = w.dec.domains[static_cast<std::size_t>(r)].box;
    const auto& my_nbrs = w.nbrs[static_cast<std::size_t>(r)];
    const bool i_am_gpu =
        w.dec.domains[static_cast<std::size_t>(r)].target ==
        ExecutionTarget::kGpuDevice;

    // Posts one halo message per neighbor. With GPU-direct enabled,
    // GPU-to-GPU messages travel the peer link instead of staging through
    // host memory (paper 5.3's planned exploration).
    auto post_halo_sends = [&] {
      for (int nbr : my_nbrs) {
        const mesh::Box region = mesh::send_region(
            mine, w.dec.domains[static_cast<std::size_t>(nbr)].box, ghosts);
        const auto bytes = static_cast<std::size_t>(
            static_cast<double>(region.zones()) *
            calib::kHaloBytesPerFaceZone);
        const auto& nbr_dom = w.dec.domains[static_cast<std::size_t>(nbr)];
        const bool nbr_gpu = nbr_dom.target == ExecutionTarget::kGpuDevice;
        const bool same_node =
            nbr_dom.node_id ==
            w.dec.domains[static_cast<std::size_t>(r)].node_id;
        if (!same_node)
          comm.post_send(nbr, /*tag=*/0, {}, bytes, w.cfg->node.internode);
        else if (w.cfg->gpu_direct && i_am_gpu && nbr_gpu)
          comm.post_send(nbr, /*tag=*/0, {}, bytes, gd_net);
        else
          comm.post_send(nbr, /*tag=*/0, {}, bytes);
      }
    };

    // --- Compute phase: walk the Sedov kernel catalog. ---
    const double t_compute_begin = eng.now();
    if (w.cfg->use_gpu_server && i_am_gpu) {
      co_await gpu_server_compute(eng, w, r);
      w.compute_time[static_cast<std::size_t>(r)] =
          eng.now() - t_compute_begin;
      post_halo_sends();
    } else if (const double t_compute = compute_phase_time(w, r);
               w.cfg->overlap_halo && !my_nbrs.empty()) {
      w.compute_time[static_cast<std::size_t>(r)] = t_compute;
      // Boundary-first schedule: compute the halo-adjacent zones, post the
      // sends, then let interior compute hide the wire time.
      double halo_zones = 0;
      for (int nbr : my_nbrs) {
        halo_zones += static_cast<double>(
            mesh::send_region(
                mine, w.dec.domains[static_cast<std::size_t>(nbr)].box,
                ghosts)
                .zones());
      }
      const double boundary_frac =
          std::min(1.0, halo_zones / static_cast<double>(mine.zones()));
      co_await eng.delay(t_compute * boundary_frac);
      post_halo_sends();
      co_await eng.delay(t_compute * (1.0 - boundary_frac));
    } else {
      w.compute_time[static_cast<std::size_t>(r)] = t_compute;
      co_await eng.delay(t_compute);
      post_halo_sends();
    }
    if (w.cfg->trace != nullptr)
      w.cfg->trace->record(r, step, Phase::kCompute, t_compute_begin,
                           eng.now());

    const double t_halo_begin = eng.now();
    for (int nbr : my_nbrs) (void)co_await comm.recv(nbr, /*tag=*/0);
    if (w.cfg->trace != nullptr)
      w.cfg->trace->record(r, step, Phase::kHaloWait, t_halo_begin,
                           eng.now());

    // --- dt reduction (the per-step synchronization point). ---
    const double t_reduce_begin = eng.now();
    (void)co_await comm.allreduce_min(1.0);
    if (w.cfg->trace != nullptr)
      w.cfg->trace->record(r, step, Phase::kReduce, t_reduce_begin,
                           eng.now());

    // --- Between-iteration load balancing (paper 6.2). ---
    if (w.lb_active) {
      if (r == 0) {
        double max_cpu = 0, max_gpu = 0;
        for (int q = 0; q < w.dec.ranks(); ++q) {
          const auto t = w.compute_time[static_cast<std::size_t>(q)];
          if (w.dec.domains[static_cast<std::size_t>(q)].target ==
              ExecutionTarget::kGpuDevice)
            max_gpu = std::max(max_gpu, t);
          else
            max_cpu = std::max(max_cpu, t);
        }
        w.sum_max_cpu += max_cpu;
        w.sum_max_gpu += max_gpu;
        w.balancer.observe(max_cpu, max_gpu, w.dec.cpu_zone_fraction());
        if (w.balancer.converged() && w.lb_converged_at < 0)
          w.lb_converged_at = step + 1;
        // Re-carve the CPU slabs for the next iteration; the single-plane
        // floor in `heterogeneous` keeps the split feasible.
        w.dec = make_cluster_decomposition(w.cfg->mode, w.cfg->node,
                                           w.cfg->global, w.cfg->nodes,
                                           w.cfg->ranks_per_gpu,
                                           w.balancer.fraction());
        w.rebuild_neighbors();
      }
      co_await comm.barrier();
    } else if (r == 0) {
      double max_cpu = 0, max_gpu = 0;
      for (int q = 0; q < w.dec.ranks(); ++q) {
        const auto t = w.compute_time[static_cast<std::size_t>(q)];
        if (w.dec.domains[static_cast<std::size_t>(q)].target ==
            ExecutionTarget::kGpuDevice)
          max_gpu = std::max(max_gpu, t);
        else
          max_cpu = std::max(max_cpu, t);
      }
      w.sum_max_cpu += max_cpu;
      w.sum_max_gpu += max_gpu;
    }

    if (r == 0) w.iteration_times.push_back(eng.now() - w.iter_start);
  }
}

}  // namespace

TimedResult run_timed(const TimedConfig& cfg) {
  if (cfg.global.empty())
    throw std::invalid_argument("run_timed: empty global box");
  if (cfg.timesteps <= 0)
    throw std::invalid_argument("run_timed: timesteps <= 0");
  if (cfg.nodes <= 0) throw std::invalid_argument("run_timed: nodes <= 0");

  World w;
  w.cfg = &cfg;
  w.layout = make_rank_layout(cfg.mode, cfg.node, cfg.ranks_per_gpu);
  w.catalog = hydro::KernelCatalog::scaled(cfg.catalog_kernels);

  // Initial CPU share: explicit, or the FLOPS-based guess of 6.2.
  double f0 = cfg.cpu_fraction;
  if (cfg.mode == NodeMode::kHeterogeneous && f0 < 0) {
    const double penalty = cfg.compiler_bug ? calib::kCompilerBugFactor : 1.0;
    f0 = lb::initial_cpu_fraction(cfg.node, w.layout.cpu_ranks,
                                  w.catalog.total(), penalty);
  }
  w.dec = make_cluster_decomposition(cfg.mode, cfg.node, cfg.global,
                                     cfg.nodes, cfg.ranks_per_gpu,
                                     std::max(0.0, f0));
  w.dec.validate();
  w.rebuild_neighbors();
  w.lb_active = cfg.load_balance && cfg.mode == NodeMode::kHeterogeneous;
  if (w.lb_active) {
    lb::FeedbackBalancer::Config bc;
    bc.initial_fraction = w.dec.cpu_zone_fraction();
    // Floor: one plane per CPU rank (decomposition granularity).
    bc.min_fraction = static_cast<double>(w.layout.cpu_ranks) /
                      static_cast<double>(cfg.global.ny());
    bc.max_fraction = 0.5;
    w.balancer = lb::FeedbackBalancer(bc);
  }
  w.compute_time.assign(static_cast<std::size_t>(w.dec.ranks()), 0.0);

  des::Engine eng;
  if (cfg.use_gpu_server) {
    for (int g = 0; g < cfg.nodes * cfg.node.gpu_count; ++g)
      w.gpu_servers.push_back(
          std::make_unique<devmodel::GpuServer>(eng, cfg.node.gpu));
  }
  simmpi::SimCommWorld commw(eng, w.dec.ranks(), cfg.node.net);
  for (int r = 0; r < w.dec.ranks(); ++r)
    eng.spawn(rank_process(eng, w, commw, r));
  const double makespan = eng.run();

  TimedResult res;
  res.makespan = makespan;
  res.iteration_times = std::move(w.iteration_times);
  res.final_cpu_fraction = w.dec.cpu_zone_fraction();
  res.avg_max_cpu_compute = w.sum_max_cpu / cfg.timesteps;
  res.avg_max_gpu_compute = w.sum_max_gpu / cfg.timesteps;
  res.messages = commw.messages_sent();
  res.bytes = commw.bytes_sent();
  res.comm_stats = decomp::analyze_communication(w.dec, cfg.ghosts);
  res.ranks = w.dec.ranks();
  res.lb_iterations_to_converge = w.lb_converged_at;
  return res;
}

}  // namespace coop::core
