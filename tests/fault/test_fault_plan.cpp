#include "coop/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace fault = coop::fault;

namespace {

TEST(FaultPlan, AddKeepsTimeOrder) {
  fault::FaultPlan plan;
  plan.add({.time = 3.0, .kind = fault::FaultKind::kSlowdown, .rank = 0});
  plan.add({.time = 1.0, .kind = fault::FaultKind::kGpuDeath});
  plan.add({.time = 2.0, .kind = fault::FaultKind::kHaloDrop, .rank = 1});
  ASSERT_EQ(plan.size(), 3);
  EXPECT_TRUE(std::is_sorted(
      plan.events.begin(), plan.events.end(),
      [](const auto& a, const auto& b) { return a.time < b.time; }));
}

TEST(FaultPlan, AddIsStableForEqualTimes) {
  fault::FaultPlan plan;
  fault::FaultEvent a{.time = 1.0, .kind = fault::FaultKind::kHaloDrop,
                      .rank = 0};
  fault::FaultEvent b{.time = 1.0, .kind = fault::FaultKind::kHaloDrop,
                      .rank = 1};
  plan.add(a);
  plan.add(b);
  EXPECT_EQ(plan.events[0].rank, 0);
  EXPECT_EQ(plan.events[1].rank, 1);
}

TEST(FaultPlan, ValidateRejectsOutOfRangeTargets) {
  fault::FaultPlan plan;
  plan.add({.time = 1.0, .kind = fault::FaultKind::kGpuDeath, .node = 0,
            .gpu = 7});
  EXPECT_THROW(plan.validate(4, 1, 4), std::invalid_argument);

  fault::FaultPlan plan2;
  plan2.add(
      {.time = 1.0, .kind = fault::FaultKind::kTransientLaunch, .rank = 9});
  EXPECT_THROW(plan2.validate(4, 1, 4), std::invalid_argument);

  fault::FaultPlan plan3;
  plan3.add({.time = -1.0, .kind = fault::FaultKind::kGpuDeath});
  EXPECT_THROW(plan3.validate(4, 1, 4), std::invalid_argument);
}

TEST(FaultPlan, ValidateAcceptsWellFormedPlan) {
  fault::FaultPlan plan;
  plan.add({.time = 0.5, .kind = fault::FaultKind::kGpuDeath, .node = 0,
            .gpu = 3});
  plan.add({.time = 1.5, .kind = fault::FaultKind::kSlowdown, .rank = 2,
            .duration = 0.3, .factor = 2.0});
  EXPECT_NO_THROW(plan.validate(4, 1, 4));
}

TEST(MakeRandomPlan, SameSeedSameConfigBitwiseIdentical) {
  fault::PlanConfig cfg;
  cfg.horizon_s = 30.0;
  cfg.ranks = 8;
  cfg.nodes = 2;
  cfg.transient_rate = 0.5;
  cfg.gpu_death_rate = 0.05;
  cfg.slowdown_rate = 0.2;
  cfg.halo_drop_rate = 0.3;
  const auto a = fault::make_random_plan(42, cfg);
  const auto b = fault::make_random_plan(42, cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.events == b.events);
  EXPECT_NO_THROW(a.validate(cfg.ranks, cfg.nodes, cfg.gpus_per_node));
}

TEST(MakeRandomPlan, DifferentSeedsDiffer) {
  fault::PlanConfig cfg;
  cfg.transient_rate = 1.0;
  const auto a = fault::make_random_plan(1, cfg);
  const auto b = fault::make_random_plan(2, cfg);
  EXPECT_FALSE(a.events == b.events);
}

TEST(MakeRandomPlan, PerKindStreamsAreIndependent) {
  // Adding a second fault kind must not perturb the first kind's arrivals.
  fault::PlanConfig base;
  base.transient_rate = 0.5;
  fault::PlanConfig both = base;
  both.slowdown_rate = 0.4;

  const auto only = fault::make_random_plan(7, base);
  const auto mixed = fault::make_random_plan(7, both);
  std::vector<fault::FaultEvent> mixed_transients;
  for (const auto& e : mixed.events)
    if (e.kind == fault::FaultKind::kTransientLaunch)
      mixed_transients.push_back(e);
  EXPECT_TRUE(only.events == mixed_transients);
}

TEST(MakeRandomPlan, ZeroRatesGiveEmptyPlan) {
  EXPECT_TRUE(fault::make_random_plan(99, {}).empty());
}

TEST(MakeRandomPlan, RejectsBadConfig) {
  fault::PlanConfig cfg;
  cfg.horizon_s = 0.0;
  EXPECT_THROW(fault::make_random_plan(1, cfg), std::invalid_argument);
  fault::PlanConfig cfg2;
  cfg2.ranks = 0;
  EXPECT_THROW(fault::make_random_plan(1, cfg2), std::invalid_argument);
}

}  // namespace
