#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coop/des/channel.hpp"
#include "coop/des/engine.hpp"

namespace des = coop::des;

namespace {

TEST(Channel, SendThenRecvSameTime) {
  des::Engine eng;
  des::Channel<int> ch(eng);
  std::vector<int> got;
  auto producer = [](des::Engine& e, des::Channel<int>& c) -> des::Task<void> {
    co_await e.delay(1.0);
    c.send(42);
  };
  auto consumer = [](des::Channel<int>& c, std::vector<int>& g) -> des::Task<void> {
    g.push_back(co_await c.recv());
  };
  eng.spawn(producer(eng, ch));
  eng.spawn(consumer(ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{42}));
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Channel, BufferedValuesDeliveredFifo) {
  des::Engine eng;
  des::Channel<int> ch(eng);
  std::vector<int> got;
  auto producer = [](des::Channel<int>& c) -> des::Task<void> {
    for (int i = 0; i < 5; ++i) c.send(i);
    co_return;
  };
  auto consumer = [](des::Engine& e, des::Channel<int>& c,
                     std::vector<int>& g) -> des::Task<void> {
    co_await e.delay(2.0);  // producer runs first; values buffer up
    for (int i = 0; i < 5; ++i) g.push_back(co_await c.recv());
  };
  eng.spawn(producer(ch));
  eng.spawn(consumer(eng, ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, MultipleReceiversServedInArrivalOrder) {
  des::Engine eng;
  des::Channel<int> ch(eng);
  std::vector<std::pair<int, int>> got;  // (receiver id, value)
  auto consumer = [](des::Engine& e, des::Channel<int>& c,
                     std::vector<std::pair<int, int>>& g, int id,
                     double arrive) -> des::Task<void> {
    co_await e.delay(arrive);
    int v = co_await c.recv();
    g.emplace_back(id, v);
  };
  auto producer = [](des::Engine& e, des::Channel<int>& c) -> des::Task<void> {
    co_await e.delay(10.0);
    c.send(100);
    c.send(200);
    c.send(300);
  };
  eng.spawn(consumer(eng, ch, got, 0, 1.0));
  eng.spawn(consumer(eng, ch, got, 1, 2.0));
  eng.spawn(consumer(eng, ch, got, 2, 3.0));
  eng.spawn(producer(eng, ch));
  eng.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(Channel, SizeReflectsBufferedCount) {
  des::Engine eng;
  des::Channel<std::string> ch(eng);
  EXPECT_TRUE(ch.empty());
  ch.send("a");
  ch.send("b");
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, PingPongTerminates) {
  des::Engine eng;
  des::Channel<int> to_b(eng), to_a(eng);
  int rallies = 0;
  auto ping = [](des::Engine& e, des::Channel<int>& out, des::Channel<int>& in,
                 int& r) -> des::Task<void> {
    out.send(0);
    for (;;) {
      int v = co_await in.recv();
      if (v >= 10) break;
      ++r;
      co_await e.delay(0.1);
      out.send(v + 1);
    }
  };
  auto pong = [](des::Engine& e, des::Channel<int>& in,
                 des::Channel<int>& out) -> des::Task<void> {
    for (;;) {
      int v = co_await in.recv();
      co_await e.delay(0.1);
      out.send(v + 1);
      if (v + 1 >= 10) break;
    }
  };
  eng.spawn(ping(eng, to_b, to_a, rallies));
  eng.spawn(pong(eng, to_b, to_a));
  eng.run();
  EXPECT_EQ(rallies, 5);
  // 11 messages exchanged after the opener, each preceded by a 0.1 s think.
  EXPECT_NEAR(eng.now(), 1.1, 1e-9);
}

TEST(Channel, MoveOnlyPayload) {
  des::Engine eng;
  des::Channel<std::unique_ptr<int>> ch(eng);
  int result = 0;
  auto producer = [](des::Channel<std::unique_ptr<int>>& c) -> des::Task<void> {
    c.send(std::make_unique<int>(7));
    co_return;
  };
  auto consumer = [](des::Channel<std::unique_ptr<int>>& c,
                     int& r) -> des::Task<void> {
    auto p = co_await c.recv();
    r = *p;
  };
  eng.spawn(consumer(ch, result));
  eng.spawn(producer(ch));
  eng.run();
  EXPECT_EQ(result, 7);
}

}  // namespace
