/// Ablation bench for the design choices DESIGN.md 7 calls out: which
/// modelled mechanism produces which feature of the paper's figures.
/// Each row removes one mechanism and reruns the Fig. 18 top point
/// (600x480x160, the paper's best case) for all three modes.

#include <cstdio>

#include "coop/core/timed_sim.hpp"

namespace {

using namespace coop;

struct Row {
  const char* name;
  bool um_threshold;
  bool mps_overlap;
  bool compiler_bug;
  bool load_balance;
};

}  // namespace

int main() {
  const mesh::Box global{{0, 0, 0}, {600, 480, 160}};
  constexpr int kSteps = 50;
  const Row rows[] = {
      {"full model", true, true, true, true},
      {"- UM pump threshold", false, true, true, true},
      {"- MPS kernel overlap", true, false, true, true},
      {"- compiler bug (fixed nvcc)", true, true, false, true},
      {"- feedback load balance", true, true, true, false},
  };

  std::printf("=== Ablations at 600x480x160 (%d steps), simulated s ===\n",
              kSteps);
  std::printf("%-30s | %9s %9s %9s | %11s\n", "model variant", "Default",
              "MPS", "Hetero", "hetero gain");
  for (const Row& row : rows) {
    double t[3] = {0, 0, 0};
    int i = 0;
    for (auto mode : {core::NodeMode::kOneRankPerGpu,
                      core::NodeMode::kMpsPerGpu,
                      core::NodeMode::kHeterogeneous}) {
      core::TimedConfig tc;
      tc.mode = mode;
      tc.global = global;
      tc.timesteps = kSteps;
      tc.model_um_threshold = row.um_threshold;
      tc.model_mps_overlap = row.mps_overlap;
      tc.compiler_bug = row.compiler_bug;
      tc.load_balance = row.load_balance;
      t[i++] = core::run_timed(tc).makespan;
    }
    std::printf("%-30s | %9.2f %9.2f %9.2f | %9.1f%%\n", row.name, t[0], t[1],
                t[2], 100.0 * (t[0] - t[2]) / t[0]);
  }
  std::printf(
      "\nReading: the UM threshold drives the Default-vs-Hetero gap; MPS\n"
      "overlap matters little at this (large-kernel) point; fixing the\n"
      "compiler bug lets the CPU take more work and widens the gain;\n"
      "the balancer protects against a mis-sized static split.\n");

  // What-if: the same experiment projected onto a Sierra-EA-like node
  // (paper 6.2: "changing hardware and software stacks make it difficult
  // to project performance of Sierra"). Two things happen: (1) ~5x faster
  // GPUs shrink the CPU's relative throughput so the one-plane-per-rank
  // carve floor now overloads the bugged CPU — the heterogeneous gain goes
  // strongly negative; (2) the host-side UM pump threshold still penalizes
  // the Default mode, which the 16-core MPS mode sidesteps. Both foreshadow
  // why per-node heterogeneous computing got harder, not easier, on Sierra
  // hardware until the compiler issue was fixed.
  std::printf("\n=== What-if: Sierra-EA-like node (same problem) ===\n");
  std::printf("%-30s | %9s %9s %9s | %11s\n", "node", "Default", "MPS",
              "Hetero", "hetero gain");
  for (const bool sierra : {false, true}) {
    double t[3] = {0, 0, 0};
    int i = 0;
    for (auto mode : {core::NodeMode::kOneRankPerGpu,
                      core::NodeMode::kMpsPerGpu,
                      core::NodeMode::kHeterogeneous}) {
      core::TimedConfig tc;
      tc.mode = mode;
      tc.global = global;
      tc.timesteps = kSteps;
      if (sierra) tc.node = coop::devmodel::NodeSpec::sierra_ea();
      t[i++] = core::run_timed(tc).makespan;
    }
    std::printf("%-30s | %9.2f %9.2f %9.2f | %9.1f%%\n",
                sierra ? "sierra-ea (4x ~Volta)" : "rzhasgpu (4x K80)", t[0],
                t[1], t[2], 100.0 * (t[0] - t[2]) / t[0]);
  }
  return 0;
}
