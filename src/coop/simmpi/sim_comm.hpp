#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "coop/des/channel.hpp"
#include "coop/des/engine.hpp"
#include "coop/des/task.hpp"
#include "coop/devmodel/comm_cost.hpp"
#include "coop/devmodel/specs.hpp"

/// \file sim_comm.hpp
/// MPI-like communicator for discrete-event (timed) simulations.
///
/// Each rank is a DES coroutine. `post_send` injects a message onto the
/// simulated interconnect: the payload arrives at the destination mailbox
/// after the alpha-beta transfer time (paper 5.3: communication is staged
/// through the host; no GPU-direct). `recv` awaits arrival. Collectives are
/// charged a binomial-tree latency.
///
/// Payload bytes are accounted separately from the `double` payload length
/// so timed runs can carry either real field data or zero-copy placeholders.
///
/// An optional `obs::analysis::HbLog` can be bound to the world; the
/// communicator then records the happens-before edges (send post/arrival,
/// recv begin/end, collective arrive/return) that the wait-state and
/// critical-path analyzers consume. Recording never changes the schedule.

namespace coop::obs::analysis {
class HbLog;
}  // namespace coop::obs::analysis

namespace coop::simmpi {

class SimCommWorld;

/// Per-rank handle (value type; references the world).
class SimComm {
 public:
  SimComm(SimCommWorld* world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Non-blocking send: charges the wire asynchronously; the payload shows
  /// up in the destination mailbox `message_time(bytes)` later. The
  /// three-argument overload uses the world's interconnect; pass an explicit
  /// `net` to route a message over a different link (e.g. GPU-direct).
  /// `extra_delay` adds sender-side latency before injection — the fault
  /// model charges dropped-and-retransmitted halos this way (the MPI
  /// non-overtaking floor still applies on top).
  void post_send(int dest, int tag, std::vector<double> data,
                 std::size_t bytes);
  void post_send(int dest, int tag, std::vector<double> data,
                 std::size_t bytes, const devmodel::InterconnectSpec& net,
                 double extra_delay = 0.0);

  /// Awaits a message from (source, tag).
  [[nodiscard]] des::Task<std::vector<double>> recv(int source, int tag);

  /// Awaitable collectives over all ranks of the world.
  [[nodiscard]] des::Task<double> allreduce_min(double v);
  [[nodiscard]] des::Task<double> allreduce_max(double v);
  [[nodiscard]] des::Task<double> allreduce_sum(double v);
  [[nodiscard]] des::Task<void> barrier();

 private:
  enum class ReduceOp { kMin, kMax, kSum };
  [[nodiscard]] des::Task<double> reduce_impl(double v, ReduceOp op);

  SimCommWorld* world_;
  int rank_;
};

class SimCommWorld {
 public:
  SimCommWorld(des::Engine& engine, int size,
               devmodel::InterconnectSpec net = {});
  SimCommWorld(const SimCommWorld&) = delete;
  SimCommWorld& operator=(const SimCommWorld&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] SimComm comm(int rank) { return SimComm(this, rank); }
  [[nodiscard]] des::Engine& engine() noexcept { return engine_; }

  /// Total bytes injected onto the interconnect so far.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_;
  }

  /// Attach a happens-before log (not owned; nullptr detaches). Pure
  /// observation.
  void bind_hb_log(obs::analysis::HbLog* hb) noexcept { hb_ = hb; }

 private:
  friend class SimComm;

  using Mailbox = des::Channel<std::vector<double>>;
  /// key: (dest, source, tag)
  using Key = std::tuple<int, int, int>;

  Mailbox& mailbox(int dest, int source, int tag);
  des::Task<void> deliver_message(double delay, Mailbox& box,
                                  std::vector<double> data);
  des::Task<void> deliver_reduction(double delay, double value);

  des::Engine& engine_;
  int size_;
  devmodel::InterconnectSpec net_;
  std::map<Key, std::unique_ptr<Mailbox>> mailboxes_;
  /// MPI non-overtaking guarantee: per (source, dest) ordered channels may
  /// not deliver a later message before an earlier one, even when the later
  /// one is smaller/faster. Tracks the earliest admissible delivery time.
  std::map<std::pair<int, int>, double> last_delivery_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  obs::analysis::HbLog* hb_ = nullptr;

  // Allreduce rendezvous.
  struct Reduce {
    int arrived = 0;
    double accum = 0;
    std::vector<std::unique_ptr<des::Channel<double>>> result_ch;
  };
  Reduce reduce_;
};

}  // namespace coop::simmpi
