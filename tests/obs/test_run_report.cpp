#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "coop/obs/run_report.hpp"
#include "support/json_check.hpp"

namespace obs = coop::obs;
namespace cj = coophet_test::json;

namespace {

obs::RunReport sample_report() {
  obs::RunReport r;
  r.label = "Figure 18";
  r.mode = "heterogeneous";
  r.figure = 18;
  r.nx = 600;
  r.ny = 480;
  r.nz = 160;
  r.timesteps = 6;
  r.ranks = 16;
  r.nodes = 1;
  r.makespan_s = 10.82;
  r.messages = 210;
  r.halo_bytes = 1290240000ull;
  r.cpu_fraction_final = 0.0437;
  r.lb_iterations_to_converge = 4;
  r.imbalance_pct = 15.1;
  r.mean_utilization_pct = 81.1;
  r.min_utilization_pct = 51.4;
  r.per_rank.push_back({0, "gpu", 14688000, {8.9, 0.0, 1.2, 0.0}, 82.1});
  r.per_rank.push_back({4, "cpu", 96000, {5.6, 3.8, 1.2, 0.0}, 51.4});
  r.top_kernels.push_back({"cfl_courant_1", 111, 2.59, 6.87, 100.0});
  r.faults.injected = 4;
  r.faults.recovered = 4;
  r.faults.gpu_deaths = 1;
  r.achieved_flops = 5.1e10;
  r.model_peak_flops = 4.6e12;
  r.flops_efficiency_pct = 1.1;
  r.intensity_flops_per_byte = 0.125;
  r.roofline_frac_pct = 19.0;
  r.sweep.push_back({100, 480, 160, 7680000, 1.0, 1.1, 0.9, 0.04});
  r.max_hetero_gain_pct = 18.5;
  r.gain_at_zones = 46080000;
  return r;
}

TEST(RunReport, JsonIsStrictlyValidAndCarriesTheSchema) {
  std::ostringstream os;
  sample_report().write_json(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset << "\n" << os.str();

  const auto& v = p.value;
  EXPECT_EQ(cj::first_missing_key(
                v, {"schema", "schema_version", "label", "mode", "figure",
                    "mesh", "timesteps", "ranks", "nodes", "makespan_s",
                    "messages", "halo_bytes", "cpu_fraction_final",
                    "lb_iterations_to_converge", "imbalance_pct",
                    "mean_utilization_pct", "min_utilization_pct", "per_rank",
                    "top_kernels", "faults", "flops", "sweep",
                    "max_hetero_gain_pct", "gain_at_zones"}),
            "");
  EXPECT_EQ(v.find("schema")->str, obs::kRunReportSchemaName);
  EXPECT_DOUBLE_EQ(v.find("schema_version")->number,
                   obs::kRunReportSchemaVersion);
  EXPECT_DOUBLE_EQ(v.find("mesh")->find("zones")->number, 600.0 * 480 * 160);
  EXPECT_DOUBLE_EQ(v.find("halo_bytes")->number, 1290240000.0);

  const auto& rank0 = v.find("per_rank")->array.at(0);
  EXPECT_EQ(cj::first_missing_key(
                rank0, {"rank", "device", "zones", "compute_s", "halo_wait_s",
                        "reduce_s", "rebalance_s", "utilization_pct"}),
            "");
  EXPECT_EQ(rank0.find("device")->str, "gpu");

  const auto& kern = v.find("top_kernels")->array.at(0);
  EXPECT_EQ(cj::first_missing_key(kern,
                                  {"name", "calls", "seconds",
                                   "intensity_flops_per_byte",
                                   "roofline_frac_pct"}),
            "");
  EXPECT_DOUBLE_EQ(kern.find("intensity_flops_per_byte")->number, 6.87);

  EXPECT_EQ(cj::first_missing_key(
                *v.find("faults"),
                {"injected", "recovered", "gpu_deaths", "policy_flips",
                 "launch_retries", "mps_restarts", "halo_retransmits",
                 "pool_exhaustions", "checkpoints_taken", "rollbacks",
                 "replayed_iterations", "retry_time_s", "checkpoint_time_s",
                 "rework_time_s"}),
            "");
  EXPECT_EQ(cj::first_missing_key(*v.find("flops"),
                                  {"achieved", "model_peak", "efficiency_pct",
                                   "intensity_flops_per_byte",
                                   "roofline_frac_pct"}),
            "");
  EXPECT_DOUBLE_EQ(v.find("flops")->find("roofline_frac_pct")->number, 19.0);

  const auto& row = v.find("sweep")->array.at(0);
  EXPECT_EQ(cj::first_missing_key(
                row, {"x", "y", "z", "zones", "t_default_s", "t_mps_s",
                      "t_hetero_s", "hetero_cpu_share"}),
            "");
}

TEST(RunReport, JsonSurvivesHostileLabelStrings) {
  obs::RunReport r = sample_report();
  r.label = "quote \" backslash \\ newline \n done";
  r.top_kernels[0].name = "kern\"el";
  std::ostringstream os;
  r.write_json(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << "\n" << os.str();
  EXPECT_EQ(p.value.find("label")->str, r.label);
  EXPECT_EQ(p.value.find("top_kernels")->array.at(0).find("name")->str,
            "kern\"el");
}

TEST(RunReport, TableMentionsTheHeadlineNumbers) {
  std::ostringstream os;
  sample_report().write_table(os);
  const std::string t = os.str();
  EXPECT_NE(t.find("Figure 18"), std::string::npos);
  EXPECT_NE(t.find("heterogeneous"), std::string::npos);
  EXPECT_NE(t.find("cfl_courant_1"), std::string::npos);
  EXPECT_NE(t.find("imbalance"), std::string::npos);
  EXPECT_NE(t.find("gpu"), std::string::npos);
}

TEST(RunReport, TableRestoresStreamFormatting) {
  std::ostringstream os;
  os.precision(3);
  const auto before_flags = os.flags();
  sample_report().write_table(os);
  EXPECT_EQ(os.precision(), 3);
  EXPECT_EQ(os.flags(), before_flags);
}

}  // namespace
