/// Figure 18 of the paper: vary x-dimension (y=480, z=160).
///
/// Paper features: the BEST case for the Heterogeneous mode: y=480 allows
/// thin CPU slabs (1-2.5% of zones), and past the memory threshold the
/// Default mode pays the UM pump penalty while Heterogeneous scales
/// linearly -> up to ~18% gain (the paper's headline number).

#include "fig_common.hpp"

int main() {
  using namespace coop::bench;
  const auto pts = run_figure_sweep(
      "Figure 18", "vary x-dimension (y=480, z=160)",
      sweep_sizes('x', std::vector<long>{100, 200, 300, 400, 500, 600}, {0, 480, 160}));
  print_shape_summary(pts);
  return 0;
}
