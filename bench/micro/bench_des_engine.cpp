/// Microbenchmark of the discrete-event engine: event throughput for the
/// patterns the timed simulation produces (delay chains, channel ping-pong,
/// resource contention, and the GpuServer's same-instant submission bursts).
/// Establishes that figure sweeps are engine-cheap.
///
/// Besides the google-benchmark cases, the binary measures raw events/sec on
/// the simulation-shaped workloads and — when COOPHET_REPORT_DIR is set —
/// writes `<dir>/BENCH_des_engine.json` (coophet.metrics schema v1) so CI can
/// track engine throughput as an artifact. `--benchmark_filter=^$` skips the
/// google-benchmark pass when only the artifact is wanted.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "coop/des/channel.hpp"
#include "coop/des/engine.hpp"
#include "coop/des/resource.hpp"
#include "coop/devmodel/gpu_server.hpp"
#include "coop/devmodel/specs.hpp"
#include "coop/obs/metrics.hpp"

namespace {

namespace des = coop::des;
namespace devmodel = coop::devmodel;

des::Task<void> delay_chain(des::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.delay(1.0);
}

void bm_delay_events(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Engine eng;
    for (int p = 0; p < procs; ++p) eng.spawn(delay_chain(eng, 100));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * procs * 100);
}

des::Task<void> pinger(des::Engine&, des::Channel<int>& out,
                       des::Channel<int>& in, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.send(i);
    (void)co_await in.recv();
  }
}

des::Task<void> ponger(des::Engine&, des::Channel<int>& in,
                       des::Channel<int>& out, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    (void)co_await in.recv();
    out.send(i);
  }
}

void bm_channel_pingpong(benchmark::State& state) {
  for (auto _ : state) {
    des::Engine eng;
    des::Channel<int> a(eng), b(eng);
    eng.spawn(pinger(eng, a, b, 1000));
    eng.spawn(ponger(eng, a, b, 1000));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}

des::Task<void> contender(des::Engine& eng, des::Resource& res, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    auto lease = co_await res.acquire();
    co_await eng.delay(0.5);
  }
}

void bm_resource_contention(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Engine eng;
    des::Resource res(eng, 4, "gpu");
    for (int p = 0; p < procs; ++p) eng.spawn(contender(eng, res, 50));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * procs * 50);
}

// --- GpuServer-shaped burst workload ----------------------------------------
//
// The event-driven GPU backend's signature pattern: every MPS-sharing rank
// submits its next kernel the instant the previous one completes, so each
// completion fans out a burst of same-instant channel wakeups
// (`schedule_now`) and processor-sharing rate updates. This is the pattern
// the engine's same-time FIFO ring exists for.

des::Task<void> burst_rank(des::Engine& eng, devmodel::GpuServer& srv,
                           int steps, int kernels_per_step) {
  const devmodel::KernelWork work{6.0, 48.0};
  for (int s = 0; s < steps; ++s) {
    for (int k = 0; k < kernels_per_step; ++k)
      co_await srv.execute(work, 40000.0, 100.0, /*mps=*/true);
    co_await eng.delay(1e-3);  // halo/reduce gap between timesteps
  }
}

std::uint64_t run_gpu_server_burst(int ranks, int steps,
                                   int kernels_per_step) {
  des::Engine eng;
  devmodel::GpuServer srv(eng, devmodel::NodeSpec::rzhasgpu().gpu);
  for (int r = 0; r < ranks; ++r)
    eng.spawn(burst_rank(eng, srv, steps, kernels_per_step));
  eng.run();
  return eng.events_processed();
}

void bm_gpu_server_burst(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    events = run_gpu_server_burst(ranks, 10, 20);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}

// --- events/sec report -------------------------------------------------------

struct Throughput {
  std::uint64_t events = 0;  ///< per repetition
  double events_per_sec = 0.0;
};

/// Repeats `workload` (which returns its engine's events_processed) until
/// ~0.3 s of wall time has accumulated and reports steady-state events/sec.
template <typename Workload>
Throughput measure(Workload&& workload) {
  using clock = std::chrono::steady_clock;
  Throughput t;
  t.events = workload();  // warmup, and the per-rep event count
  std::uint64_t total = 0;
  double wall = 0.0;
  while (wall < 0.3) {
    const auto t0 = clock::now();
    total += workload();
    wall += std::chrono::duration<double>(clock::now() - t0).count();
  }
  t.events_per_sec = static_cast<double>(total) / wall;
  return t;
}

void report_events_per_sec() {
  struct Case {
    const char* name;
    Throughput t;
  };
  Case cases[] = {
      {"gpu_server_burst", measure([] {
         return run_gpu_server_burst(16, 10, 20);
       })},
      {"delay_chain", measure([] {
         des::Engine eng;
         for (int p = 0; p < 256; ++p) eng.spawn(delay_chain(eng, 100));
         eng.run();
         return eng.events_processed();
       })},
      {"channel_pingpong", measure([] {
         des::Engine eng;
         des::Channel<int> a(eng), b(eng);
         eng.spawn(pinger(eng, a, b, 1000));
         eng.spawn(ponger(eng, a, b, 1000));
         eng.run();
         return eng.events_processed();
       })},
  };

  std::printf("--- engine throughput (events/sec) ---\n");
  for (const auto& c : cases)
    std::printf("%-18s %12.0f events/s (%llu events/rep)\n", c.name,
                c.t.events_per_sec,
                static_cast<unsigned long long>(c.t.events));

  const char* dir = std::getenv("COOPHET_REPORT_DIR");
  if (dir == nullptr) return;
  coop::obs::MetricsRegistry reg;
  for (const auto& c : cases) {
    const coop::obs::Labels labels{{"workload", c.name}};
    reg.gauge("des.events_per_sec", labels).set(c.t.events_per_sec);
    reg.counter("des.events_per_rep", labels)
        .add(static_cast<double>(c.t.events));
  }
  const std::string path = std::string(dir) + "/BENCH_des_engine.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench_des_engine: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  reg.write_json(os, 0.0);
  os << '\n';
  std::printf("(engine throughput written to %s)\n", path.c_str());
}

}  // namespace

BENCHMARK(bm_delay_events)->Arg(16)->Arg(256);
BENCHMARK(bm_channel_pingpong);
BENCHMARK(bm_resource_contention)->Arg(16)->Arg(64);
BENCHMARK(bm_gpu_server_burst)->Arg(4)->Arg(16);

int main(int argc, char** argv) {
  report_events_per_sec();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
