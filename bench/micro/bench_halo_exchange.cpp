/// Section 6.1 of the paper: communication cost of using more ranks per
/// node. Runs the timed DES halo exchange (no compute) for the three
/// decomposition schemes and prints per-step communication time, message
/// counts and volumes — the experiment behind the paper's statement that
/// the hierarchical single-dimension subdivision "does in fact minimize the
/// communication overhead of using additional MPI ranks".

#include <cstdio>

#include "coop/core/timed_sim.hpp"
#include "coop/decomp/decomposition.hpp"
#include "coop/des/engine.hpp"
#include "coop/devmodel/calibration.hpp"
#include "coop/mesh/halo.hpp"
#include "coop/simmpi/sim_comm.hpp"

namespace {

using namespace coop;

des::Task<void> halo_rank(des::Engine&, simmpi::SimCommWorld& world,
                          const decomp::Decomposition& dec,
                          const std::vector<std::vector<int>>& nbrs, int r,
                          int steps) {
  simmpi::SimComm comm = world.comm(r);
  const auto& mine = dec.domains[static_cast<std::size_t>(r)].box;
  for (int s = 0; s < steps; ++s) {
    for (int nbr : nbrs[static_cast<std::size_t>(r)]) {
      const auto region = mesh::send_region(
          mine, dec.domains[static_cast<std::size_t>(nbr)].box, 1);
      comm.post_send(nbr, 0, {},
                     static_cast<std::size_t>(
                         static_cast<double>(region.zones()) *
                         devmodel::calib::kHaloBytesPerFaceZone));
    }
    for (int nbr : nbrs[static_cast<std::size_t>(r)])
      (void)co_await comm.recv(nbr, 0);
    (void)co_await comm.allreduce_min(1.0);
  }
}

void run_case(const char* name, const decomp::Decomposition& dec) {
  constexpr int kSteps = 100;
  const auto nbrs = decomp::neighbor_lists(dec);
  des::Engine eng;
  simmpi::SimCommWorld world(eng, dec.ranks());
  for (int r = 0; r < dec.ranks(); ++r)
    eng.spawn(halo_rank(eng, world, dec, nbrs, r, kSteps));
  const double t = eng.run();
  const auto s = decomp::analyze_communication(dec, 1);
  std::printf("%-24s %5d | %9.3f ms | %8d %8.2f | %10.1f MB\n", name,
              dec.ranks(), 1e3 * t / kSteps, s.max_neighbors, s.avg_neighbors,
              static_cast<double>(world.bytes_sent()) / kSteps / 1e6);
}

}  // namespace

int main() {
  const mesh::Box global{{0, 0, 0}, {320, 480, 320}};
  std::printf("=== Halo-exchange cost per step (320x480x320, 100 steps) ===\n");
  std::printf("%-24s %5s | %12s | %8s %8s | %10s\n", "scheme", "ranks",
              "comm/step", "max-nbrs", "avg-nbrs", "MB/step");
  run_case("hierarchical 4", decomp::hierarchical_gpu(global, 4, 1));
  run_case("square 16", decomp::block_decomposition(global, 16));
  run_case("hierarchical 16", decomp::hierarchical_gpu(global, 4, 4));
  run_case("heterogeneous 4+12", decomp::heterogeneous(global, 4, 12, 0.025));
  std::printf(
      "\nPaper 6.1: the hierarchical subdivision 'minimizes the\n"
      "communication overhead of using additional MPI ranks': 16 ranks\n"
      "cost the same wire time as 4. (A square 16-grid carries less raw\n"
      "volume — squares are volume-optimal — but pays 2x the neighbors,\n"
      "halves the innermost extent, and breaks GPU-block locality.)\n");
  return 0;
}
