#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "coop/forall/dynamic_policy.hpp"
#include "coop/forall/forall3d.hpp"
#include "coop/hydro/solver.hpp"

/// \file reference_solver.hpp
/// The SEED hydro solver, preserved verbatim as a differential oracle.
///
/// This is the pre-SoA formulation: seven independent `Array3D` allocations
/// and a per-cell update that evaluates `rusanov(lo)` and `rusanov(hi)` for
/// every zone — i.e. every interior face's flux TWICE. The production
/// `Solver` replaced this with pooled SoA planes and face-sweep kernels that
/// compute each flux once; the refactor's contract is that every conserved
/// field (and dt, and the diagnostics) stays BITWISE identical to this
/// formulation. The equivalence suite (test_soa_equivalence.cpp) runs both
/// side by side and compares bit patterns zone by zone.
///
/// Do not "improve" this file: its value is that it stays frozen at the
/// seed's exact expression sequence.

namespace coop::hydro::seedref {

class ReferenceSolver {
 public:
  ReferenceSolver(memory::MemoryManager& mm, const ProblemConfig& cfg,
                  const mesh::Box& owned, forall::DynamicPolicy policy)
      : rho(mm, memory::AllocationContext::kMeshData, owned, 1),
        mx(mm, memory::AllocationContext::kMeshData, owned, 1),
        my(mm, memory::AllocationContext::kMeshData, owned, 1),
        mz(mm, memory::AllocationContext::kMeshData, owned, 1),
        ener(mm, memory::AllocationContext::kMeshData, owned, 1),
        prs(mm, memory::AllocationContext::kTemporary, owned, 1),
        snd(mm, memory::AllocationContext::kTemporary, owned, 1),
        cfg_(cfg), policy_(policy), owned_(owned), ghosts_(1),
        d_rho_(mm, memory::AllocationContext::kTemporary, owned, 0),
        d_mx_(mm, memory::AllocationContext::kTemporary, owned, 0),
        d_my_(mm, memory::AllocationContext::kTemporary, owned, 0),
        d_mz_(mm, memory::AllocationContext::kTemporary, owned, 0),
        d_ener_(mm, memory::AllocationContext::kTemporary, owned, 0) {
    if (cfg.packages.passive_scalar) {
      scal = mesh::Array3D<double>(mm, memory::AllocationContext::kMeshData,
                                   owned, 1);
      d_scal_ = mesh::Array3D<double>(
          mm, memory::AllocationContext::kTemporary, owned, 0);
    }
    if (cfg.packages.diffusion)
      eint_ = mesh::Array3D<double>(mm, memory::AllocationContext::kTemporary,
                                    owned, 1);
  }

  void initialize() {
    const double dx = cfg_.dx(), dy = cfg_.dy(), dz = cfg_.dz();
    const double cx = 0.5 * cfg_.length, cy = 0.5 * cfg_.length,
                 cz = 0.5 * cfg_.length;
    const double r0 = cfg_.blast_radius_zones * dx;

    const long icx = cfg_.global.nx() / 2, icy = cfg_.global.ny() / 2,
               icz = cfg_.global.nz() / 2;
    const long rz = static_cast<long>(std::ceil(cfg_.blast_radius_zones)) + 1;
    long n_dep = 0;
    auto in_ball = [&](long i, long j, long k) {
      const double x = (static_cast<double>(i) + 0.5) * dx - cx;
      const double y = (static_cast<double>(j) + 0.5) * dy - cy;
      const double z = (static_cast<double>(k) + 0.5) * dz - cz;
      return std::sqrt(x * x + y * y + z * z) <= r0;
    };
    for (long k = icz - rz; k <= icz + rz; ++k)
      for (long j = icy - rz; j <= icy + rz; ++j)
        for (long i = icx - rz; i <= icx + rz; ++i)
          if (cfg_.global.contains({i, j, k}) && in_ball(i, j, k)) ++n_dep;
    if (n_dep == 0) n_dep = 1;
    const double dv = dx * dy * dz;
    const double e_spike =
        cfg_.blast_energy / (static_cast<double>(n_dep) * dv);
    const double e_ambient = cfg_.p0 / (cfg_.eos.gamma - 1.0);

    auto* rho_p = &rho;
    auto* mx_p = &mx;
    auto* my_p = &my;
    auto* mz_p = &mz;
    auto* ener_p = &ener;
    const double rho0 = cfg_.rho0;
    forall::forall_box(policy_, owned_.grown(ghosts_),
                       [=](long i, long j, long k) {
                         (*rho_p)(i, j, k) = rho0;
                         (*mx_p)(i, j, k) = 0.0;
                         (*my_p)(i, j, k) = 0.0;
                         (*mz_p)(i, j, k) = 0.0;
                         (*ener_p)(i, j, k) =
                             e_ambient + (in_ball(i, j, k) ? e_spike : 0.0);
                       });

    if (cfg_.packages.passive_scalar) {
      auto* scal_p = &scal;
      const double rb = cfg_.packages.scalar_ball_radius * cfg_.length;
      forall::forall_box(policy_, owned_.grown(ghosts_),
                         [=](long i, long j, long k) {
                           const double px =
                               (static_cast<double>(i) + 0.5) * dx - cx;
                           const double py =
                               (static_cast<double>(j) + 0.5) * dy - cy;
                           const double pz =
                               (static_cast<double>(k) + 0.5) * dz - cz;
                           const bool inside =
                               std::sqrt(px * px + py * py + pz * pz) <= rb;
                           (*scal_p)(i, j, k) =
                               inside ? (*rho_p)(i, j, k) : 0.0;
                         });
    }
  }

  template <typename Ic>
  void initialize_with(Ic&& ic) {
    auto* rho_p = &rho;
    auto* mx_p = &mx;
    auto* my_p = &my;
    auto* mz_p = &mz;
    auto* ener_p = &ener;
    const double dx = cfg_.dx(), dy = cfg_.dy(), dz = cfg_.dz();
    const IdealGas eos = cfg_.eos;
    forall::forall_box(
        policy_, owned_.grown(ghosts_), [=](long i, long j, long k) {
          const Solver::Primitives s =
              ic((static_cast<double>(i) + 0.5) * dx,
                 (static_cast<double>(j) + 0.5) * dy,
                 (static_cast<double>(k) + 0.5) * dz);
          (*rho_p)(i, j, k) = s.rho;
          (*mx_p)(i, j, k) = s.rho * s.u;
          (*my_p)(i, j, k) = s.rho * s.v;
          (*mz_p)(i, j, k) = s.rho * s.w;
          (*ener_p)(i, j, k) = eos.total_energy(s.rho, s.u, s.v, s.w, s.p);
        });
    if (cfg_.packages.passive_scalar) {
      auto* scal_p = &scal;
      forall::forall_box(policy_, owned_.grown(ghosts_),
                         [=](long i, long j, long k) {
                           (*scal_p)(i, j, k) = 0.0;
                         });
    }
  }

  void apply_physical_boundaries() {
    const mesh::Box& o = owned_;
    const mesh::Box& g = cfg_.global;
    const long gh = ghosts_;
    mesh::Array3D<double>* fields[6] = {&rho, &mx, &my, &mz, &ener, nullptr};
    int nf = 5;
    if (cfg_.packages.passive_scalar) fields[nf++] = &scal;

    const bool reflect = cfg_.boundary == BoundaryCondition::kReflecting;
    auto fill_face = [&](const mesh::Box& ghost_region,
                         mesh::Array3D<double>* normal_mom) {
      for (int f = 0; f < nf; ++f) {
        auto* a = fields[f];
        for (long k = ghost_region.lo.z; k < ghost_region.hi.z; ++k)
          for (long j = ghost_region.lo.y; j < ghost_region.hi.y; ++j)
            for (long i = ghost_region.lo.x; i < ghost_region.hi.x; ++i)
              (*a)(i, j, k) = (*a)(std::clamp(i, o.lo.x, o.hi.x - 1),
                                   std::clamp(j, o.lo.y, o.hi.y - 1),
                                   std::clamp(k, o.lo.z, o.hi.z - 1));
      }
      if (reflect) {
        for (long k = ghost_region.lo.z; k < ghost_region.hi.z; ++k)
          for (long j = ghost_region.lo.y; j < ghost_region.hi.y; ++j)
            for (long i = ghost_region.lo.x; i < ghost_region.hi.x; ++i)
              (*normal_mom)(i, j, k) = -(*normal_mom)(i, j, k);
      }
    };
    const mesh::Box padded = o.grown(gh);
    if (o.lo.x == g.lo.x)
      fill_face(mesh::Box{{padded.lo.x, padded.lo.y, padded.lo.z},
                          {o.lo.x, padded.hi.y, padded.hi.z}}, &mx);
    if (o.hi.x == g.hi.x)
      fill_face(mesh::Box{{o.hi.x, padded.lo.y, padded.lo.z},
                          {padded.hi.x, padded.hi.y, padded.hi.z}}, &mx);
    if (o.lo.y == g.lo.y)
      fill_face(mesh::Box{{padded.lo.x, padded.lo.y, padded.lo.z},
                          {padded.hi.x, o.lo.y, padded.hi.z}}, &my);
    if (o.hi.y == g.hi.y)
      fill_face(mesh::Box{{padded.lo.x, o.hi.y, padded.lo.z},
                          {padded.hi.x, padded.hi.y, padded.hi.z}}, &my);
    if (o.lo.z == g.lo.z)
      fill_face(mesh::Box{{padded.lo.x, padded.lo.y, padded.lo.z},
                          {padded.hi.x, padded.hi.y, o.lo.z}}, &mz);
    if (o.hi.z == g.hi.z)
      fill_face(mesh::Box{{padded.lo.x, padded.lo.y, o.hi.z},
                          {padded.hi.x, padded.hi.y, padded.hi.z}}, &mz);
  }

  void compute_primitives() {
    auto* rho_p = &rho;
    auto* mx_p = &mx;
    auto* my_p = &my;
    auto* mz_p = &mz;
    auto* ener_p = &ener;
    auto* prs_p = &prs;
    auto* snd_p = &snd;
    const IdealGas eos = cfg_.eos;
    const double p_floor = 1e-12;
    forall::forall_box(policy_, owned_.grown(ghosts_),
                       [=](long i, long j, long k) {
                         const double r = (*rho_p)(i, j, k);
                         const double p = std::max(
                             p_floor,
                             eos.pressure_conserved(r, (*mx_p)(i, j, k),
                                                    (*my_p)(i, j, k),
                                                    (*mz_p)(i, j, k),
                                                    (*ener_p)(i, j, k)));
                         (*prs_p)(i, j, k) = p;
                         (*snd_p)(i, j, k) = eos.sound_speed(r, p);
                       });
  }

  void advance(double dt) {
    const ZoneRef f{&rho, &mx, &my, &mz, &ener, &prs, &snd};
    auto* drho = &d_rho_;
    auto* dmx = &d_mx_;
    auto* dmy = &d_my_;
    auto* dmz = &d_mz_;
    auto* dener = &d_ener_;

    forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
      (*drho)(i, j, k) = 0.0;
      (*dmx)(i, j, k) = 0.0;
      (*dmy)(i, j, k) = 0.0;
      (*dmz)(i, j, k) = 0.0;
      (*dener)(i, j, k) = 0.0;
    });

    const double inv_d[3] = {1.0 / cfg_.dx(), 1.0 / cfg_.dy(),
                             1.0 / cfg_.dz()};
    for (int axis = 0; axis < 3; ++axis) {
      const double inv = inv_d[axis];
      forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
        const long di = axis == 0 ? 1 : 0;
        const long dj = axis == 1 ? 1 : 0;
        const long dk = axis == 2 ? 1 : 0;
        const Flux lo = rusanov(f, axis, i - di, j - dj, k - dk, i, j, k);
        const Flux hi = rusanov(f, axis, i, j, k, i + di, j + dj, k + dk);
        (*drho)(i, j, k) -= (hi.rho - lo.rho) * inv;
        (*dmx)(i, j, k) -= (hi.mx - lo.mx) * inv;
        (*dmy)(i, j, k) -= (hi.my - lo.my) * inv;
        (*dmz)(i, j, k) -= (hi.mz - lo.mz) * inv;
        (*dener)(i, j, k) -= (hi.ener - lo.ener) * inv;
      });
    }

    if (cfg_.packages.diffusion) accumulate_diffusion_fluxes();
    if (cfg_.packages.passive_scalar) accumulate_scalar_fluxes();

    auto* rho_p = &rho;
    auto* mx_p = &mx;
    auto* my_p = &my;
    auto* mz_p = &mz;
    auto* ener_p = &ener;
    const double rho_floor = 1e-10, e_floor = 1e-14;
    forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
      (*rho_p)(i, j, k) =
          std::max(rho_floor, (*rho_p)(i, j, k) + dt * (*drho)(i, j, k));
      (*mx_p)(i, j, k) += dt * (*dmx)(i, j, k);
      (*my_p)(i, j, k) += dt * (*dmy)(i, j, k);
      (*mz_p)(i, j, k) += dt * (*dmz)(i, j, k);
      (*ener_p)(i, j, k) =
          std::max(e_floor, (*ener_p)(i, j, k) + dt * (*dener)(i, j, k));
    });

    if (cfg_.packages.passive_scalar) {
      auto* scal_p = &scal;
      auto* dscal = &d_scal_;
      forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
        (*scal_p)(i, j, k) += dt * (*dscal)(i, j, k);
      });
    }
  }

  [[nodiscard]] double local_dt() const {
    const mesh::Box& o = owned_;
    const double dx = cfg_.dx(), dy = cfg_.dy(), dz = cfg_.dz();
    double min_dt = std::numeric_limits<double>::max();
    for (long k = o.lo.z; k < o.hi.z; ++k)
      for (long j = o.lo.y; j < o.hi.y; ++j)
        for (long i = o.lo.x; i < o.hi.x; ++i) {
          const double r = rho(i, j, k);
          const double c = snd(i, j, k);
          const double u = std::abs(mx(i, j, k) / r);
          const double v = std::abs(my(i, j, k) / r);
          const double w = std::abs(mz(i, j, k) / r);
          min_dt =
              std::min({min_dt, dx / (u + c), dy / (v + c), dz / (w + c)});
        }
    double dt = cfg_.cfl * min_dt;
    if (cfg_.packages.diffusion && cfg_.packages.diffusivity > 0) {
      const double h2 = std::min({dx * dx, dy * dy, dz * dz});
      dt = std::min(dt, cfg_.packages.diffusion_safety * h2 /
                            (6.0 * cfg_.packages.diffusivity));
    }
    return dt;
  }

  [[nodiscard]] Diagnostics local_diagnostics() const {
    const mesh::Box& o = owned_;
    const double dv = cfg_.dx() * cfg_.dy() * cfg_.dz();
    const double cx = 0.5 * cfg_.length, cy = 0.5 * cfg_.length,
                 cz = 0.5 * cfg_.length;
    Diagnostics d;
    const bool has_scal = cfg_.packages.passive_scalar;
    if (has_scal) {
      d.scalar_min = std::numeric_limits<double>::max();
      d.scalar_max = std::numeric_limits<double>::lowest();
    }
    for (long k = o.lo.z; k < o.hi.z; ++k)
      for (long j = o.lo.y; j < o.hi.y; ++j)
        for (long i = o.lo.x; i < o.hi.x; ++i) {
          const double r = rho(i, j, k);
          d.mass += r * dv;
          d.total_energy += ener(i, j, k) * dv;
          if (r > d.max_density) {
            d.max_density = r;
            const double x = (static_cast<double>(i) + 0.5) * cfg_.dx() - cx;
            const double y = (static_cast<double>(j) + 0.5) * cfg_.dy() - cy;
            const double z = (static_cast<double>(k) + 0.5) * cfg_.dz() - cz;
            d.max_density_radius = std::sqrt(x * x + y * y + z * z);
          }
          if (has_scal) {
            d.scalar_mass += scal(i, j, k) * dv;
            const double phi = scal(i, j, k) / r;
            d.scalar_min = std::min(d.scalar_min, phi);
            d.scalar_max = std::max(d.scalar_max, phi);
          }
        }
    return d;
  }

  [[nodiscard]] const mesh::Box& owned() const noexcept { return owned_; }
  [[nodiscard]] long ghosts() const noexcept { return ghosts_; }

  // Seed layout: seven independent allocations, public for the differential
  // comparison.
  mesh::Array3D<double> rho, mx, my, mz, ener, prs, snd, scal;

 private:
  struct ZoneRef {
    const mesh::Array3D<double>* rho;
    const mesh::Array3D<double>* mx;
    const mesh::Array3D<double>* my;
    const mesh::Array3D<double>* mz;
    const mesh::Array3D<double>* ener;
    const mesh::Array3D<double>* prs;
    const mesh::Array3D<double>* snd;
  };

  struct Flux {
    double rho, mx, my, mz, ener;
  };

  static Flux rusanov(const ZoneRef& f, int axis, long li, long lj, long lk,
                      long ri, long rj, long rk) {
    const double rl = (*f.rho)(li, lj, lk), rr = (*f.rho)(ri, rj, rk);
    const double pl = (*f.prs)(li, lj, lk), pr = (*f.prs)(ri, rj, rk);
    const double cl = (*f.snd)(li, lj, lk), cr = (*f.snd)(ri, rj, rk);
    const double mxl = (*f.mx)(li, lj, lk), mxr = (*f.mx)(ri, rj, rk);
    const double myl = (*f.my)(li, lj, lk), myr = (*f.my)(ri, rj, rk);
    const double mzl = (*f.mz)(li, lj, lk), mzr = (*f.mz)(ri, rj, rk);
    const double el = (*f.ener)(li, lj, lk), er = (*f.ener)(ri, rj, rk);

    const double mdl = axis == 0 ? mxl : (axis == 1 ? myl : mzl);
    const double mdr = axis == 0 ? mxr : (axis == 1 ? myr : mzr);
    const double ul = mdl / rl, ur = mdr / rr;
    const double s = std::max(std::abs(ul) + cl, std::abs(ur) + cr);

    Flux out;
    out.rho = 0.5 * (mdl + mdr) - 0.5 * s * (rr - rl);
    out.mx = 0.5 * (mxl * ul + mxr * ur) - 0.5 * s * (mxr - mxl);
    out.my = 0.5 * (myl * ul + myr * ur) - 0.5 * s * (myr - myl);
    out.mz = 0.5 * (mzl * ul + mzr * ur) - 0.5 * s * (mzr - mzl);
    if (axis == 0) out.mx += 0.5 * (pl + pr);
    if (axis == 1) out.my += 0.5 * (pl + pr);
    if (axis == 2) out.mz += 0.5 * (pl + pr);
    out.ener = 0.5 * ((el + pl) * ul + (er + pr) * ur) - 0.5 * s * (er - el);
    return out;
  }

  void accumulate_scalar_fluxes() {
    const ZoneRef f{&rho, &mx, &my, &mz, &ener, &prs, &snd};
    const auto* rho_p = &rho;
    const auto* scal_p = &scal;
    auto* dscal = &d_scal_;
    const double inv_d[3] = {1.0 / cfg_.dx(), 1.0 / cfg_.dy(),
                             1.0 / cfg_.dz()};

    forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
      (*dscal)(i, j, k) = 0.0;
    });
    for (int axis = 0; axis < 3; ++axis) {
      const double inv = inv_d[axis];
      forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
        const long di = axis == 0 ? 1 : 0;
        const long dj = axis == 1 ? 1 : 0;
        const long dk = axis == 2 ? 1 : 0;
        const double mf_lo =
            rusanov(f, axis, i - di, j - dj, k - dk, i, j, k).rho;
        const double mf_hi =
            rusanov(f, axis, i, j, k, i + di, j + dj, k + dk).rho;
        auto phi = [&](long ii, long jj, long kk) {
          return (*scal_p)(ii, jj, kk) / (*rho_p)(ii, jj, kk);
        };
        const double flux_lo =
            mf_lo *
            (mf_lo >= 0 ? phi(i - di, j - dj, k - dk) : phi(i, j, k));
        const double flux_hi =
            mf_hi *
            (mf_hi >= 0 ? phi(i, j, k) : phi(i + di, j + dj, k + dk));
        (*dscal)(i, j, k) -= (flux_hi - flux_lo) * inv;
      });
    }
  }

  void accumulate_diffusion_fluxes() {
    auto* eint = &eint_;
    const auto* rho_p = &rho;
    const auto* mx_p = &mx;
    const auto* my_p = &my;
    const auto* mz_p = &mz;
    const auto* ener_p = &ener;
    forall::forall_box(policy_, owned_.grown(1), [=](long i, long j, long k) {
      const double r = (*rho_p)(i, j, k);
      const double ke = 0.5 *
                        ((*mx_p)(i, j, k) * (*mx_p)(i, j, k) +
                         (*my_p)(i, j, k) * (*my_p)(i, j, k) +
                         (*mz_p)(i, j, k) * (*mz_p)(i, j, k)) /
                        r;
      (*eint)(i, j, k) = (*ener_p)(i, j, k) - ke;
    });

    auto* dener = &d_ener_;
    const double kappa = cfg_.packages.diffusivity;
    const double ix2 = 1.0 / (cfg_.dx() * cfg_.dx());
    const double iy2 = 1.0 / (cfg_.dy() * cfg_.dy());
    const double iz2 = 1.0 / (cfg_.dz() * cfg_.dz());
    forall::forall_box(policy_, owned_, [=](long i, long j, long k) {
      const double e = (*eint)(i, j, k);
      const double lap =
          ((*eint)(i + 1, j, k) + (*eint)(i - 1, j, k) - 2 * e) * ix2 +
          ((*eint)(i, j + 1, k) + (*eint)(i, j - 1, k) - 2 * e) * iy2 +
          ((*eint)(i, j, k + 1) + (*eint)(i, j, k - 1) - 2 * e) * iz2;
      (*dener)(i, j, k) += kappa * lap;
    });
  }

  ProblemConfig cfg_;
  forall::DynamicPolicy policy_;
  mesh::Box owned_;
  long ghosts_;
  mesh::Array3D<double> d_rho_, d_mx_, d_my_, d_mz_, d_ener_;
  mesh::Array3D<double> d_scal_;
  mesh::Array3D<double> eint_;
};

}  // namespace coop::hydro::seedref
