#pragma once

#include <functional>
#include <utility>

#include "coop/forall/dynamic_policy.hpp"

/// \file multi_policy.hpp
/// RAJA-style MultiPolicy: per-loop runtime policy selection.
///
/// The paper (5.1) selects one architecture policy per *rank* and notes:
/// "In the future, we plan to use the MultiPolicy runtime policy selection
/// mechanism in RAJA." MultiPolicy selects per *loop invocation* instead: a
/// user-supplied selector inspects the iteration range and picks the
/// backend, so e.g. short loops can stay sequential (kernel-launch overhead
/// would dominate on a device) while long loops go wide.

namespace coop::forall {

class MultiPolicy {
 public:
  /// Selector: maps an iteration range to the policy that should run it.
  using Selector = std::function<PolicyKind(long begin, long end)>;

  explicit MultiPolicy(Selector selector)
      : selector_(std::move(selector)) {
    if (!selector_)
      throw std::invalid_argument("MultiPolicy: empty selector");
  }

  /// The common RAJA idiom: small ranges run `below`, ranges of at least
  /// `threshold` iterations run `at_or_above`.
  static MultiPolicy size_threshold(long threshold, PolicyKind below,
                                    PolicyKind at_or_above) {
    return MultiPolicy([=](long begin, long end) {
      return (end - begin) >= threshold ? at_or_above : below;
    });
  }

  /// Selects (and records) the policy for a range.
  [[nodiscard]] PolicyKind select(long begin, long end) const {
    last_selected_ = selector_(begin, end);
    ++selections_;
    return last_selected_;
  }

  /// Introspection for tests and instrumentation.
  [[nodiscard]] PolicyKind last_selected() const noexcept {
    return last_selected_;
  }
  [[nodiscard]] long selections() const noexcept { return selections_; }

 private:
  Selector selector_;
  mutable PolicyKind last_selected_ = PolicyKind::kSeq;
  mutable long selections_ = 0;
};

/// forall over a MultiPolicy: selects, then dispatches like DynamicPolicy.
template <typename Body>
inline void forall(const MultiPolicy& p, long begin, long end, Body&& body) {
  forall(DynamicPolicy{p.select(begin, end)}, begin, end,
         std::forward<Body>(body));
}

}  // namespace coop::forall
