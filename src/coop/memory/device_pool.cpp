#include "coop/memory/device_pool.hpp"

#include <new>
#include <stdexcept>

namespace coop::memory {

namespace {
std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

DevicePool::DevicePool(std::size_t capacity, std::size_t alignment)
    : alignment_(alignment) {
  if (capacity == 0) throw std::invalid_argument("DevicePool: zero capacity");
  if (alignment == 0 || (alignment & (alignment - 1)) != 0)
    throw std::invalid_argument("DevicePool: alignment must be a power of 2");
  // The slab base must honor the pool alignment, since every block offset
  // is a multiple of it. aligned_alloc requires a size multiple of align.
  capacity_ = round_up(capacity, alignment);
  slab_.reset(static_cast<std::byte*>(
      std::aligned_alloc(alignment_, capacity_)));
  if (!slab_) throw std::bad_alloc{};
  insert_free(0, capacity_);
}

void DevicePool::insert_free(Offset off, Size size) {
  free_by_offset_.emplace(off, size);
  free_by_size_.emplace(size, off);
}

void DevicePool::erase_free(Offset off, Size size) {
  free_by_offset_.erase(off);
  auto [lo, hi] = free_by_size_.equal_range(size);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == off) {
      free_by_size_.erase(it);
      return;
    }
  }
  throw std::logic_error("DevicePool: free-list index out of sync");
}

void* DevicePool::allocate(std::size_t bytes) {
  void* p = try_allocate(bytes);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void DevicePool::bind_metrics(obs::MetricsRegistry& reg,
                              const obs::Labels& labels) {
  m_in_use_ = &reg.gauge("pool.bytes_in_use", labels);
  m_high_water_ = &reg.gauge("pool.high_water_bytes", labels);
  m_alloc_failures_ = &reg.counter("pool.alloc_failures", labels);
  m_in_use_->set(static_cast<double>(in_use_));
  m_high_water_->set_max(static_cast<double>(high_water_));
}

void* DevicePool::try_allocate(std::size_t bytes) noexcept {
  const Size need = round_up(bytes == 0 ? 1 : bytes, alignment_);
  // Best fit: smallest free block that can hold the request.
  auto it = free_by_size_.lower_bound(need);
  if (it == free_by_size_.end()) {
    if (m_alloc_failures_ != nullptr) m_alloc_failures_->add();
    return nullptr;
  }
  const Size block_size = it->first;
  const Offset off = it->second;
  erase_free(off, block_size);
  if (block_size > need) insert_free(off + need, block_size - need);
  allocated_.emplace(off, need);
  in_use_ += need;
  if (in_use_ > high_water_) high_water_ = in_use_;
  if (m_in_use_ != nullptr) {
    m_in_use_->set(static_cast<double>(in_use_));
    m_high_water_->set_max(static_cast<double>(high_water_));
  }
  return slab_.get() + off;
}

void DevicePool::deallocate(void* p) {
  if (p == nullptr) return;
  const auto* bp = static_cast<const std::byte*>(p);
  if (bp < slab_.get() || bp >= slab_.get() + capacity_)
    throw std::invalid_argument("DevicePool: pointer not from this pool");
  const Offset off = static_cast<Offset>(bp - slab_.get());
  auto it = allocated_.find(off);
  if (it == allocated_.end())
    throw std::invalid_argument("DevicePool: double free or bad pointer");
  Offset free_off = off;
  Size free_size = it->second;
  in_use_ -= free_size;
  allocated_.erase(it);
  if (m_in_use_ != nullptr) m_in_use_->set(static_cast<double>(in_use_));

  // Coalesce with the following free block, if adjacent.
  auto next = free_by_offset_.lower_bound(free_off);
  if (next != free_by_offset_.end() && next->first == free_off + free_size) {
    free_size += next->second;
    erase_free(next->first, next->second);
  }
  // Coalesce with the preceding free block, if adjacent.
  auto prev = free_by_offset_.lower_bound(free_off);
  if (prev != free_by_offset_.begin()) {
    --prev;
    if (prev->first + prev->second == free_off) {
      free_off = prev->first;
      free_size += prev->second;
      erase_free(prev->first, prev->second);
    }
  }
  insert_free(free_off, free_size);
}

std::size_t DevicePool::largest_free_block() const noexcept {
  if (free_by_size_.empty()) return 0;
  return free_by_size_.rbegin()->first;
}

}  // namespace coop::memory
