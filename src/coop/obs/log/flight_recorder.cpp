#include "coop/obs/log/flight_recorder.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "coop/obs/artifact_io.hpp"
#include "coop/obs/json.hpp"

namespace coop::obs::log {

namespace detail {

// Slot layout: one stamp word (per-slot seqlock) plus 15 payload words.
//   w0  cid
//   w1  per-writer seq
//   w2  sim_time (double bits)
//   w3  packed: severity | component<<8 | kv_count<<16 | name_len<<24
//   w4..w6   name, 24 bytes zero-padded
//   w7..w14  4 x { key (8 bytes zero-padded), value (double bits) }
// Every word is a relaxed atomic: a drain racing a writer can read a mix of
// old and new words, but the stamp protocol below detects that and the torn
// slot is skipped — no word is ever read non-atomically.
inline constexpr std::size_t kPayloadWords = 15;
inline constexpr std::size_t kNameChars = 24;
inline constexpr std::size_t kMaxKv = 4;
inline constexpr std::size_t kKeyChars = 8;

struct Slot {
  std::atomic<std::uint64_t> stamp{0};  // odd = write in progress; 0 = empty
  std::array<std::atomic<std::uint64_t>, kPayloadWords> words{};
};

struct Staged {
  std::uint64_t words[kPayloadWords] = {};
};

struct Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}

  std::vector<Slot> slots;
  std::atomic<std::uint64_t> written{0};  // total pushes; single writer

  // Seqlock writer (Boehm, "Can seqlocks get along with programming
  // language memory models?"): odd stamp, release fence, payload, even
  // stamp with release. A reader that observed any payload word from this
  // push must then observe a stamp >= st+1 and reject the slot.
  void push(const Staged& s) noexcept {
    const std::uint64_t n = written.load(std::memory_order_relaxed);
    Slot& sl = slots[n % slots.size()];
    const std::uint64_t st = sl.stamp.load(std::memory_order_relaxed);
    sl.stamp.store(st + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t w = 0; w < kPayloadWords; ++w)
      sl.words[w].store(s.words[w], std::memory_order_relaxed);
    sl.stamp.store(st + 2, std::memory_order_release);
    written.store(n + 1, std::memory_order_release);
  }
};

namespace {

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// Seqlock reader: accept only if the stamp is even, nonzero, and unchanged
// across the payload copy.
bool read_slot(const Slot& sl, FlightEvent& ev) {
  const std::uint64_t s1 = sl.stamp.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1u) != 0) return false;
  std::uint64_t w[kPayloadWords];
  for (std::size_t i = 0; i < kPayloadWords; ++i)
    w[i] = sl.words[i].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (sl.stamp.load(std::memory_order_relaxed) != s1) return false;

  ev.cid = w[0];
  ev.seq = w[1];
  ev.sim_time = bits_double(w[2]);
  ev.severity = static_cast<Severity>(w[3] & 0xffu);
  ev.component = static_cast<Component>((w[3] >> 8) & 0xffu);
  const std::size_t kv_count = std::min<std::size_t>((w[3] >> 16) & 0xffu, kMaxKv);
  const std::size_t name_len = std::min<std::size_t>((w[3] >> 24) & 0xffu, kNameChars);
  char namebuf[kNameChars];
  std::memcpy(namebuf, &w[4], kNameChars);
  ev.name.assign(namebuf, name_len);
  ev.kv.clear();
  ev.kv.reserve(kv_count);
  for (std::size_t i = 0; i < kv_count; ++i) {
    char keybuf[kKeyChars];
    std::memcpy(keybuf, &w[7 + 2 * i], kKeyChars);
    std::size_t key_len = 0;
    while (key_len < kKeyChars && keybuf[key_len] != '\0') ++key_len;
    ev.kv.emplace_back(std::string(keybuf, key_len), bits_double(w[8 + 2 * i]));
  }
  return true;
}

}  // namespace
}  // namespace detail

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

const char* to_string(Component c) noexcept {
  switch (c) {
    case Component::kService: return "service";
    case Component::kAdmission: return "admission";
    case Component::kCache: return "cache";
    case Component::kSweep: return "sweep";
    case Component::kRun: return "run";
    case Component::kFault: return "fault";
    case Component::kTelemetry: return "telemetry";
  }
  return "run";
}

void FlightWriter::record(
    Severity sev, Component comp, double sim_time, std::string_view name,
    std::initializer_list<std::pair<std::string_view, double>> kv) noexcept {
  if (ring_ == nullptr) return;
  detail::Staged st;
  st.words[0] = cid_;
  st.words[1] = next_seq_++;
  st.words[2] = detail::double_bits(sim_time);
  const std::size_t name_len = std::min(name.size(), detail::kNameChars);
  const std::size_t kv_count = std::min(kv.size(), detail::kMaxKv);
  st.words[3] = static_cast<std::uint64_t>(sev) |
                (static_cast<std::uint64_t>(comp) << 8) |
                (static_cast<std::uint64_t>(kv_count) << 16) |
                (static_cast<std::uint64_t>(name_len) << 24);
  std::memcpy(&st.words[4], name.data(), name_len);
  std::size_t i = 0;
  for (const auto& [key, value] : kv) {
    if (i == kv_count) break;
    std::memcpy(&st.words[7 + 2 * i], key.data(), std::min(key.size(), detail::kKeyChars));
    st.words[8 + 2 * i] = detail::double_bits(value);
    ++i;
  }
  ring_->push(st);
}

void FlightRecorderConfig::validate() const {
  if (ring_capacity == 0)
    throw std::invalid_argument("FlightRecorderConfig: ring_capacity must be > 0");
  if (crash_dump_last_n == 0)
    throw std::invalid_argument("FlightRecorderConfig: crash_dump_last_n must be > 0");
}

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(cfg) { cfg_.validate(); }

FlightRecorder::~FlightRecorder() = default;

FlightWriter FlightRecorder::writer(CorrelationId cid) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto tid = std::this_thread::get_id();
  auto it = ring_index_.find(tid);
  if (it == ring_index_.end()) {
    rings_.push_back(std::make_unique<detail::Ring>(cfg_.ring_capacity));
    it = ring_index_.emplace(tid, rings_.size() - 1).first;
  }
  return FlightWriter(rings_[it->second].get(), cid);
}

FlightRecorder::Drained FlightRecorder::collect(bool tail_only, std::size_t last_n,
                                                CorrelationId focus) const {
  Drained out;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& ring : rings_) {
    const std::uint64_t written = ring->written.load(std::memory_order_acquire);
    const std::size_t cap = ring->slots.size();
    const std::uint64_t first = written > cap ? written - cap : 0;
    out.dropped += first;
    const std::uint64_t tail_first =
        tail_only && written - first > last_n ? written - last_n : first;
    for (std::uint64_t i = first; i < written; ++i) {
      FlightEvent ev;
      if (!detail::read_slot(ring->slots[i % cap], ev)) {
        ++out.dropped;  // torn by a concurrent writer
        continue;
      }
      if (i < tail_first && !(focus != 0 && ev.cid == focus)) continue;
      out.events.push_back(std::move(ev));
    }
  }
  // (cid, seq) is a total order because each correlation id has exactly one
  // writer; the trailing keys only break ties for ill-behaved callers that
  // share a cid across writers, keeping the sort deterministic regardless.
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     if (a.cid != b.cid) return a.cid < b.cid;
                     if (a.seq != b.seq) return a.seq < b.seq;
                     if (a.sim_time != b.sim_time) return a.sim_time < b.sim_time;
                     return a.name < b.name;
                   });
  return out;
}

FlightRecorder::Drained FlightRecorder::drain() const { return collect(false, 0, 0); }

void FlightRecorder::write_flight_log(std::ostream& os, const Drained& d,
                                      std::string_view reason, CorrelationId focus) const {
  os << "{\n";
  os << "  \"schema\": \"" << kSchemaName << "\",\n";
  os << "  \"schema_version\": " << kSchemaVersion << ",\n";
  os << "  \"reason\": ";
  write_json_string(os, reason);
  os << ",\n";
  os << "  \"focus_cid\": " << focus << ",\n";
  os << "  \"dropped\": " << d.dropped << ",\n";
  os << "  \"event_count\": " << d.events.size() << ",\n";
  os << "  \"events\": [";
  bool first = true;
  for (const FlightEvent& ev : d.events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"cid\": " << ev.cid << ", \"seq\": " << ev.seq << ", \"t\": ";
    write_json_number(os, ev.sim_time);
    os << ", \"sev\": \"" << to_string(ev.severity) << "\", \"comp\": \""
       << to_string(ev.component) << "\", \"name\": ";
    write_json_string(os, ev.name);
    os << ", \"kv\": {";
    bool first_kv = true;
    for (const auto& [key, value] : ev.kv) {
      if (!first_kv) os << ", ";
      first_kv = false;
      write_json_string(os, key);
      os << ": ";
      write_json_number(os, value);
    }
    os << "}}";
  }
  os << (first ? "]\n" : "\n  ]\n") << "}\n";
}

void FlightRecorder::dump_crash(const std::string& path, std::string_view reason,
                                CorrelationId focus) const {
  const Drained d = collect(true, cfg_.crash_dump_last_n, focus);
  atomic_write_file(path, [&](std::ostream& os) { write_flight_log(os, d, reason, focus); });
}

}  // namespace coop::obs::log
