/// Trace demo: runs the timed heterogeneous simulation with the unified
/// tracer and writes a Chrome-tracing / Perfetto JSON showing the per-rank
/// Gantt chart — GPU ranks 0-3 computing while the CPU slabs 4-15 run their
/// thin y-slabs, halo waits absorbing imbalance — with per-kernel sub-spans
/// under each compute phase, counter tracks (cpu_fraction, modeled pool
/// bytes, halo bytes, DES queue depth), and, with faults enabled, the
/// injection/recovery instant events. Also prints the machine-readable run
/// report's human table.
///
/// Usage: trace_gantt [out.json] [mode] [y] [faults]
///        (defaults: trace.json hetero 480 0; faults=1 adds the exemplar
///         fault plan — GPU death, straggler, launch retries, halo drop)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "coop/core/report.hpp"
#include "coop/core/timed_sim.hpp"
#include "coop/sweeps/figure_sweeps.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const char* out = argc > 1 ? argv[1] : "trace.json";
  const char* mode_s = argc > 2 ? argv[2] : "hetero";
  const long y = argc > 3 ? std::atol(argv[3]) : 480;
  const bool faults = argc > 4 && std::atoi(argv[4]) != 0;

  core::NodeMode mode = core::NodeMode::kHeterogeneous;
  if (std::strcmp(mode_s, "default") == 0)
    mode = core::NodeMode::kOneRankPerGpu;
  else if (std::strcmp(mode_s, "mps") == 0)
    mode = core::NodeMode::kMpsPerGpu;

  obs::Tracer tracer;
  const fault::FaultPlan plan =
      faults ? sweeps::exemplar_fault_plan() : fault::FaultPlan::none();
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = {{0, 0, 0}, {600, y, 160}};
  tc.timesteps = 6;
  tc.tracer = &tracer;
  if (faults) {
    tc.faults = &plan;
    tc.recovery.checkpoint_interval = 2;
  }
  const auto r = core::run_timed(tc);

  std::ofstream f(out);
  tracer.write_chrome_trace(f);

  std::printf("mode=%s 600x%ldx160, %d steps%s: %.2f simulated s\n",
              to_string(mode), y, tc.timesteps,
              faults ? " (exemplar faults)" : "", r.makespan);
  std::printf(
      "wrote %zu spans, %zu instants, %zu counter samples to %s\n"
      "(open in https://ui.perfetto.dev or chrome://tracing)\n\n",
      tracer.spans().size(), tracer.instants().size(),
      tracer.counters().size(), out);

  auto report = core::build_run_report(tc, r, &tracer);
  report.label = "trace_gantt exemplar";
  std::ofstream rf("trace_gantt_report.json");
  report.write_json(rf);
  rf << '\n';

  std::ostringstream table;
  report.write_table(table);
  std::fputs(table.str().c_str(), stdout);
  std::printf("(report written to trace_gantt_report.json)\n");
  return 0;
}
