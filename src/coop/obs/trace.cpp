#include "coop/obs/trace.hpp"

#include <algorithm>

#include "coop/obs/json.hpp"

namespace coop::obs {

namespace {

constexpr double kMicro = 1e6;  ///< simulated seconds -> trace microseconds

void write_ts(std::ostream& os, double seconds) {
  write_json_fixed(os, seconds * kMicro, 3);
}

}  // namespace

void Tracer::set_process_name(int pid, std::string name) {
  for (auto& n : names_)
    if (!n.thread && n.pid == pid) {
      n.name = std::move(name);
      return;
    }
  names_.push_back({pid, 0, false, std::move(name)});
}

void Tracer::set_thread_name(int pid, int tid, std::string name) {
  for (auto& n : names_)
    if (n.thread && n.pid == pid && n.tid == tid) {
      n.name = std::move(name);
      return;
    }
  names_.push_back({pid, tid, true, std::move(name)});
}

void Tracer::span(int pid, int tid, std::string_view name,
                  std::string_view cat, double t_begin, double t_end) {
  spans_.push_back(SpanEvent{pid, tid, std::string(name), std::string(cat),
                             t_begin, t_end});
}

void Tracer::instant(int pid, int tid, std::string_view name,
                     std::string_view cat, double t, InstantScope scope,
                     std::vector<std::pair<std::string, double>> args) {
  instants_.push_back(InstantEvent{pid, tid, std::string(name),
                                   std::string(cat), t, scope,
                                   std::move(args)});
}

void Tracer::counter(int pid, std::string_view track, double t, double value) {
  counters_.push_back(CounterEvent{pid, std::string(track), t, value});
}

void Tracer::flow(int pid_src, int tid_src, double t_src, int pid_dst,
                  int tid_dst, double t_dst, std::string_view name,
                  std::string_view cat) {
  flows_.push_back(FlowEvent{pid_src, tid_src, t_src, pid_dst, tid_dst, t_dst,
                             std::string(name), std::string(cat)});
}

void Tracer::close_counter_tracks(double t) {
  // Last sample per (pid, track): counters are appended in nondecreasing
  // time order per track, but scan for the max defensively.
  struct Last {
    int pid;
    const std::string* track;
    double t;
    double value;
  };
  std::vector<Last> last;
  for (const auto& c : counters_) {
    bool found = false;
    for (auto& l : last) {
      if (l.pid == c.pid && *l.track == c.track) {
        found = true;
        if (c.t >= l.t) {
          l.t = c.t;
          l.value = c.value;
        }
        break;
      }
    }
    if (!found) last.push_back(Last{c.pid, &c.track, c.t, c.value});
  }
  // Appending invalidates the `track` pointers into counters_, so copy the
  // pending samples out first.
  std::vector<CounterEvent> closing;
  for (const auto& l : last)
    if (l.t < t) closing.push_back(CounterEvent{l.pid, *l.track, t, l.value});
  for (auto& c : closing) counters_.push_back(std::move(c));
}

void Tracer::clear() {
  names_.clear();
  spans_.clear();
  instants_.clear();
  counters_.clear();
  flows_.clear();
}

double Tracer::total_time(std::string_view name, int pid, int tid) const {
  double t = 0.0;
  for (const auto& s : spans_) {
    if (pid >= 0 && s.pid != pid) continue;
    if (tid >= 0 && s.tid != tid) continue;
    if (s.name == name) t += s.t_end - s.t_begin;
  }
  return t;
}

std::size_t Tracer::span_count(std::string_view cat, int pid, int tid) const {
  std::size_t n = 0;
  for (const auto& s : spans_) {
    if (pid >= 0 && s.pid != pid) continue;
    if (tid >= 0 && s.tid != tid) continue;
    if (s.cat == cat) ++n;
  }
  return n;
}

std::size_t Tracer::instant_count(std::string_view cat) const {
  std::size_t n = 0;
  for (const auto& e : instants_)
    if (e.cat == cat) ++n;
  return n;
}

std::size_t Tracer::flow_count(std::string_view cat) const {
  std::size_t n = 0;
  for (const auto& f : flows_)
    if (f.cat == cat) ++n;
  return n;
}

std::vector<std::string> Tracer::counter_tracks() const {
  std::vector<std::string> out;
  for (const auto& c : counters_) out.push_back(c.track);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Tracer::has_counter_track(std::string_view track) const {
  return std::any_of(counters_.begin(), counters_.end(),
                     [&](const CounterEvent& c) { return c.track == track; });
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  for (const auto& n : names_) {
    sep();
    os << "{\"name\":\"" << (n.thread ? "thread_name" : "process_name")
       << "\",\"ph\":\"M\",\"pid\":" << n.pid;
    if (n.thread) os << ",\"tid\":" << n.tid;
    os << ",\"args\":{\"name\":";
    write_json_string(os, n.name);
    os << "}}";
  }

  for (const auto& s : spans_) {
    sep();
    os << "{\"name\":";
    write_json_string(os, s.name);
    os << ",\"cat\":";
    write_json_string(os, s.cat);
    os << ",\"ph\":\"X\",\"ts\":";
    write_ts(os, s.t_begin);
    os << ",\"dur\":";
    write_ts(os, s.t_end - s.t_begin);
    os << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid << '}';
  }

  for (const auto& e : instants_) {
    sep();
    os << "{\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":";
    write_json_string(os, e.cat);
    os << ",\"ph\":\"i\",\"s\":\"" << to_char(e.scope) << "\",\"ts\":";
    write_ts(os, e.t);
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ',';
        write_json_string(os, e.args[i].first);
        os << ':';
        write_json_number(os, e.args[i].second);
      }
      os << '}';
    }
    os << '}';
  }

  for (const auto& c : counters_) {
    sep();
    os << "{\"name\":";
    write_json_string(os, c.track);
    os << ",\"ph\":\"C\",\"pid\":" << c.pid << ",\"ts\":";
    write_ts(os, c.t);
    os << ",\"args\":{\"value\":";
    write_json_number(os, c.value);
    os << "}}";
  }

  // Flow ids are 1-based indices; "bp":"e" binds the finish to the
  // enclosing slice so the arrow lands on the span under the endpoint.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto& f = flows_[i];
    sep();
    os << "{\"name\":";
    write_json_string(os, f.name);
    os << ",\"cat\":";
    write_json_string(os, f.cat);
    os << ",\"ph\":\"s\",\"id\":" << (i + 1) << ",\"pid\":" << f.pid_src
       << ",\"tid\":" << f.tid_src << ",\"ts\":";
    write_ts(os, f.t_src);
    os << '}';
    sep();
    os << "{\"name\":";
    write_json_string(os, f.name);
    os << ",\"cat\":";
    write_json_string(os, f.cat);
    os << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << (i + 1)
       << ",\"pid\":" << f.pid_dst << ",\"tid\":" << f.tid_dst << ",\"ts\":";
    write_ts(os, f.t_dst);
    os << '}';
  }

  os << "]}";
}

}  // namespace coop::obs
