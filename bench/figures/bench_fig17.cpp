/// Figure 17 of the paper: vary x-dimension (y=480, z=320).
///
/// Paper features: x is small across the whole range, so MPS overlap
/// helps; y=480 gives the Heterogeneous mode its thin-slab carve
/// (2.5% floor), keeping it close to MPS; Default is hampered by the
/// small innermost dimension and crosses the memory threshold.
///
/// Sweep definition, driver, and analytics live in coop_sweeps
/// (src/coop/sweeps/figure_sweeps.hpp); the qualitative claims are locked
/// by tests/curves/test_figure_shapes.cpp.

#include "coop/sweeps/figure_sweeps.hpp"

int main() {
  coop::sweeps::run_figure_bench(17);
  return 0;
}
