/// json_lint — strict JSON validator over the tests/support/json_check.hpp
/// parser, used by CI to lint the emitted observability artifacts (Perfetto
/// traces, BENCH_*.json run reports) before uploading them.
///
/// Usage: json_lint [--schema NAME] file.json [more.json ...]
///
/// Every file must parse under the strict grammar (no NaN/Inf, no bad
/// escapes, no duplicate keys, no trailing garbage). With --schema NAME the
/// top level must additionally be an object carrying "schema" == NAME with a
/// version registered in `known_artifact_schemas()`. Even without --schema,
/// any top-level object declaring a "coophet.*" schema is validated against
/// the registry, so an unknown schema name or version fails the lint. Exits
/// non-zero on the first class of failure, after reporting every file.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json_check.hpp"

namespace cj = coophet_test::json;

namespace {

bool lint(const std::string& path, const std::string& schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_lint: %s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const cj::ParseResult r = cj::parse(text);
  if (!r.ok) {
    std::fprintf(stderr, "json_lint: %s: offset %zu: %s\n", path.c_str(),
                 r.offset, r.error.c_str());
    return false;
  }
  std::string expect = schema;
  if (expect.empty()) {
    // Opportunistic validation: any artifact that *claims* a coophet schema
    // must carry a registered name and version.
    const cj::Value* name = r.value.find("schema");
    if (name != nullptr && name->is_string() &&
        name->str.rfind("coophet.", 0) == 0)
      expect = name->str;
  }
  if (!expect.empty()) {
    const std::string err = cj::check_artifact_schema(r.value, expect);
    if (!err.empty()) {
      std::fprintf(stderr, "json_lint: %s: %s\n", path.c_str(), err.c_str());
      return false;
    }
  }
  std::printf("json_lint: %s: OK (%zu bytes)\n", path.c_str(), text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema" && i + 1 < argc) {
      schema = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: json_lint [--schema NAME] file.json ...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "json_lint: no input files\n");
    return 2;
  }
  bool ok = true;
  for (const auto& f : files) ok = lint(f, schema) && ok;
  return ok ? 0 : 1;
}
