#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

#include "coop/des/task.hpp"
#include "coop/des/time.hpp"

/// \file engine.hpp
/// Single-threaded discrete-event simulation engine.
///
/// The engine owns a pending-event set of (time, sequence, coroutine-handle)
/// entries. Processes are `Task<void>` coroutines spawned onto the engine;
/// they advance simulated time only at `co_await` suspension points
/// (`engine.delay(dt)`, channel receives, resource acquisition). Events at
/// equal times are processed in the order they were scheduled, which makes
/// every simulation bitwise deterministic.
///
/// Hot-path layout (the event-driven GPU backend pushes roughly 80x more
/// events per rank-step than the closed-form path, so per-event cost is the
/// scheduler's budget):
///
///  * Future events live in a hand-rolled indexed binary min-heap over a
///    reusable `std::vector` — capacity is retained across pushes and runs,
///    so steady-state scheduling allocates nothing, and pop is one
///    sift-down instead of `std::pop_heap`'s full pop-and-reheap protocol.
///  * Events scheduled at the *current* simulated time (the `schedule_now`
///    burst pattern channels, resources, and the GpuServer generate) bypass
///    the heap into a FIFO ring: O(1) push/pop with no comparisons. The
///    (time, seq) total order is preserved because every ring entry carries
///    t == now() and a seq greater than any already-pending event, so the
///    pop step only has to compare the ring head against the heap top.
///  * Completed root frames are reaped in one batched compaction pass that
///    runs only when events were actually processed, instead of a
///    scan-for-exceptions pass plus an `erase_if` pass per run call.

namespace coop::des {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Total number of events processed so far.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Registers a root simulation process, scheduled to start at `at`
  /// (default: the current simulated time). The engine takes ownership of
  /// the coroutine frame; exceptions escaping a root process are rethrown
  /// from `run()`.
  void spawn(Task<void> task) { spawn_at(now_, std::move(task)); }
  void spawn_at(SimTime at, Task<void> task);

  /// Schedules a raw coroutine handle to resume at simulated time `t`.
  /// Used by awaitable primitives (delay, channel, resource); `t` must be
  /// >= now().
  void schedule(SimTime t, std::coroutine_handle<> h);

  /// Schedules `h` to resume at the current simulated time, after all events
  /// already queued for this instant. O(1): the event goes to the same-time
  /// FIFO ring, never the heap.
  void schedule_now(std::coroutine_handle<> h) {
    ring_.push_back(Event{now_, next_seq_++, h});
  }

  /// Awaitable: suspends the calling process for `dt` simulated seconds.
  [[nodiscard]] auto delay(SimTime dt) noexcept {
    struct Awaiter {
      Engine* eng;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng->schedule(eng->now_ + dt, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt < 0 ? 0 : dt};
  }

  /// Runs until no events remain. Returns the final simulated time.
  SimTime run();

  /// Runs until the queue is empty or simulated time would exceed `t_end`.
  /// Events at exactly `t_end` are processed.
  SimTime run_until(SimTime t_end);

  /// Processes at most `max_events` events, then returns whether work
  /// remains. Slicing a run into `while (eng.run_for(n)) { ... }` is bitwise
  /// identical to one `run()` call — the event order is untouched — which is
  /// how the supervised `run_timed` path interleaves watchdog/cancellation
  /// checks without adding per-event cost to the unsupervised hot loop.
  bool run_for(std::uint64_t max_events);

  /// True when no further events are queued.
  [[nodiscard]] bool idle() const noexcept {
    return heap_.empty() && ring_head_ == ring_.size();
  }

  /// Number of events currently pending in the queue. Pure observation
  /// (an observability counter track samples this once per timestep).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return heap_.size() + (ring_.size() - ring_head_);
  }

 private:
  struct Event {
    SimTime t;
    EventSeq seq;
    std::coroutine_handle<> h;
  };

  static bool before(const Event& a, const Event& b) noexcept {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  }

  void heap_push(const Event& ev);
  void heap_sift_down(std::size_t i);
  /// Pops the pending event that is least by (t, seq) — the ring head or
  /// the heap top — into `out`; false when no event is <= `t_max`.
  bool pop_next(SimTime t_max, Event& out);
  void step(const Event& ev);
  void reap_finished_roots();

  SimTime now_ = 0;
  EventSeq next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t reaped_at_ = 0;  ///< `processed_` at the last root reap

  /// Future events: binary min-heap by (t, seq); capacity is reused.
  std::vector<Event> heap_;
  /// Events at t == now(): FIFO ring (append at back, consume at
  /// `ring_head_`); storage is recycled whenever the ring drains. Every
  /// entry was scheduled at the then-current time, and time can only
  /// advance once the ring is empty, so the invariant t == now() holds for
  /// all live entries.
  std::vector<Event> ring_;
  std::size_t ring_head_ = 0;

  std::vector<Task<void>> roots_;
};

}  // namespace coop::des
