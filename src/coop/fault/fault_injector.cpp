#include "coop/fault/fault_injector.hpp"

#include <algorithm>

#include "coop/memory/device_pool.hpp"

namespace coop::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, RecoveryConfig recovery)
    : recovery_(recovery) {
  events_.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) events_.push_back({e, false});
}

void FaultInjector::consume(Tracked& t) {
  t.consumed = true;
  ++stats_.faults_injected;
  if (tracer_ != nullptr) {
    const FaultEvent& e = t.event;
    std::vector<std::pair<std::string, double>> args;
    if (e.rank >= 0) args.emplace_back("rank", e.rank);
    args.emplace_back("node", e.node);
    if (e.kind == FaultKind::kGpuDeath) args.emplace_back("gpu", e.gpu);
    if (e.count != 1) args.emplace_back("count", e.count);
    if (e.kind == FaultKind::kSlowdown) {
      args.emplace_back("factor", e.factor);
      args.emplace_back("duration_s", e.duration);
    }
    tracer_->instant(trace_pid_, 0,
                     std::string("fault:") + to_string(e.kind), "fault",
                     e.time, obs::InstantScope::kGlobal, std::move(args));
  }
  if (flight_ != nullptr) {
    const FaultEvent& e = t.event;
    namespace log = obs::log;
    flight_->record(log::Severity::kWarn, log::Component::kFault, e.time,
                    std::string("inject:") + to_string(e.kind),
                    {{"rank", double(e.rank)},
                     {"node", double(e.node)},
                     {"gpu", double(e.gpu)},
                     {"factor", e.factor}});
  }
}

bool FaultInjector::gpu_dead(int node, int gpu, double now) const {
  return std::any_of(events_.begin(), events_.end(), [&](const Tracked& t) {
    return t.consumed && t.event.kind == FaultKind::kGpuDeath &&
           t.event.node == node && t.event.gpu == gpu && t.event.time <= now;
  });
}

bool FaultInjector::take_gpu_death(int node, int gpu, double now) {
  for (Tracked& t : events_) {
    if (t.consumed || t.event.kind != FaultKind::kGpuDeath) continue;
    if (t.event.node != node || t.event.gpu != gpu) continue;
    if (t.event.time > now) continue;
    consume(t);
    ++stats_.gpu_deaths;
    if (stats_.first_gpu_death_time < 0.0)
      stats_.first_gpu_death_time = t.event.time;
    return true;
  }
  return false;
}

void FaultInjector::kill_gpu(int node, int gpu, double now) {
  FaultEvent e;
  e.time = now;
  e.kind = FaultKind::kGpuDeath;
  e.node = node;
  e.gpu = gpu;
  Tracked t{e, false};
  consume(t);
  ++stats_.gpu_deaths;
  if (stats_.first_gpu_death_time < 0.0) stats_.first_gpu_death_time = now;
  events_.push_back(t);
}

int FaultInjector::take_transient_failures(int rank, double now) {
  int failures = 0;
  for (Tracked& t : events_) {
    if (t.consumed || t.event.kind != FaultKind::kTransientLaunch) continue;
    if (t.event.rank != rank || t.event.time > now) continue;
    consume(t);
    failures += t.event.count;
  }
  return failures;
}

double FaultInjector::slowdown_factor(int rank, double now) const {
  double factor = 1.0;
  for (const Tracked& t : events_) {
    if (t.event.kind != FaultKind::kSlowdown || t.event.rank != rank) continue;
    if (t.event.time <= now && now < t.event.time + t.event.duration)
      factor *= t.event.factor;
  }
  return factor;
}

double FaultInjector::take_slowdown_factor(int rank, double now) {
  double factor = 1.0;
  for (Tracked& t : events_) {
    if (t.event.kind != FaultKind::kSlowdown || t.event.rank != rank) continue;
    if (t.event.time <= now && now < t.event.time + t.event.duration) {
      if (!t.consumed) consume(t);
      factor *= t.event.factor;
    }
  }
  return factor;
}

bool FaultInjector::take_mps_crash(int node, double now) {
  for (Tracked& t : events_) {
    if (t.consumed || t.event.kind != FaultKind::kMpsCrash) continue;
    if (t.event.node != node || t.event.time > now) continue;
    consume(t);
    return true;
  }
  return false;
}

int FaultInjector::take_halo_drops(int rank, double now) {
  int drops = 0;
  for (Tracked& t : events_) {
    if (t.consumed || t.event.kind != FaultKind::kHaloDrop) continue;
    if (t.event.rank != rank || t.event.time > now) continue;
    consume(t);
    drops += t.event.count;
  }
  return drops;
}

bool FaultInjector::take_pool_exhaustion(int rank, double now) {
  for (Tracked& t : events_) {
    if (t.consumed || t.event.kind != FaultKind::kPoolExhaustion) continue;
    if (t.event.rank != rank || t.event.time > now) continue;
    consume(t);
    ++stats_.pool_exhaustions;
    return true;
  }
  return false;
}

double FaultInjector::pool_exhaustion_stall(long zones) const {
  if (zones <= 0) return 0.0;
  const double demand =
      static_cast<double>(zones) * recovery_.scratch_bytes_per_zone;
  // Drive the real pool's detectable-failure path: a pool sized at half the
  // scratch demand cannot satisfy it, try_allocate reports nullptr (never
  // UB), and the oversubscribed remainder stages through the fallback.
  const std::size_t pool_bytes =
      std::max<std::size_t>(1024, static_cast<std::size_t>(demand / 2.0));
  memory::DevicePool pool(pool_bytes);
  void* block = pool.try_allocate(static_cast<std::size_t>(demand));
  if (block != nullptr) {
    pool.deallocate(block);
    return 0.0;
  }
  const double pooled = static_cast<double>(pool.largest_free_block());
  const double staged = std::max(0.0, demand - pooled);
  return staged / recovery_.pool_fallback_bandwidth_bytes_per_s;
}

}  // namespace coop::fault
