/// The typed error taxonomy (core/sim_error.hpp): kind formatting and
/// classification, the dual-inheritance compatibility contract (typed
/// config errors are still std::invalid_argument, runtime kinds are still
/// std::runtime_error), and — table-driven — every invalid-config throw
/// site in `run_timed` and the `figure_sweeps` analytics mapping to the
/// right SimError kind and message.

#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ios>
#include <stdexcept>
#include <string>
#include <vector>

#include "coop/core/sim_error.hpp"
#include "coop/core/timed_sim.hpp"
#include "coop/sweeps/figure_sweeps.hpp"

namespace core = coop::core;
namespace sweeps = coop::sweeps;

namespace {

// --- Taxonomy basics --------------------------------------------------------

TEST(SimError, KindNamesAreStable) {
  EXPECT_STREQ(core::to_string(core::SimErrorKind::kConfig), "config");
  EXPECT_STREQ(core::to_string(core::SimErrorKind::kModel), "model");
  EXPECT_STREQ(core::to_string(core::SimErrorKind::kFaultUnrecoverable),
               "fault_unrecoverable");
  EXPECT_STREQ(core::to_string(core::SimErrorKind::kIo), "io");
  EXPECT_STREQ(core::to_string(core::SimErrorKind::kTimeout), "timeout");
  EXPECT_STREQ(core::to_string(core::SimErrorKind::kCancelled), "cancelled");
}

TEST(SimError, FormatsKindCellAndContext) {
  core::SimError err{core::SimErrorKind::kTimeout, "wall budget", 7};
  EXPECT_EQ(err.to_string(), "timeout: cell 7: wall budget");
  err.cell = -1;
  EXPECT_EQ(err.to_string(), "timeout: wall budget");
}

TEST(SimError, OnlyIoIsTransient) {
  for (const auto kind :
       {core::SimErrorKind::kConfig, core::SimErrorKind::kModel,
        core::SimErrorKind::kFaultUnrecoverable, core::SimErrorKind::kTimeout,
        core::SimErrorKind::kCancelled})
    EXPECT_FALSE((core::SimError{kind, ""}.transient()));
  EXPECT_TRUE((core::SimError{core::SimErrorKind::kIo, ""}.transient()));
}

// The compatibility contract: pre-taxonomy call sites catch what they
// always caught.
TEST(SimError, ConfigKindIsStillInvalidArgument) {
  EXPECT_THROW(core::throw_sim_error(core::SimErrorKind::kConfig, "x"),
               std::invalid_argument);
  EXPECT_THROW(core::throw_sim_error(core::SimErrorKind::kModel, "x"),
               std::invalid_argument);
}

TEST(SimError, RuntimeKindsAreStillRuntimeError) {
  for (const auto kind :
       {core::SimErrorKind::kIo, core::SimErrorKind::kTimeout,
        core::SimErrorKind::kCancelled,
        core::SimErrorKind::kFaultUnrecoverable})
    EXPECT_THROW(core::throw_sim_error(kind, "x"), std::runtime_error);
}

TEST(SimError, CarrierExposesPayloadAndWhatMatches) {
  try {
    core::throw_sim_error(core::SimErrorKind::kTimeout, "budget blown", 3);
    FAIL() << "did not throw";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kTimeout);
    EXPECT_EQ(c.error().context, "budget blown");
    EXPECT_EQ(c.error().cell, 3);
    const auto* as_std = dynamic_cast<const std::exception*>(&c);
    ASSERT_NE(as_std, nullptr);
    EXPECT_EQ(std::string(as_std->what()), "timeout: cell 3: budget blown");
  }
}

TEST(SimError, ClassifyMapsStandardExceptions) {
  const auto classify_thrown = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return core::classify_current_exception();
    }
    return core::SimError{};
  };
  EXPECT_EQ(classify_thrown([] {
              core::throw_sim_error(core::SimErrorKind::kIo, "disk");
            }).kind,
            core::SimErrorKind::kIo);
  EXPECT_EQ(classify_thrown([] { throw std::invalid_argument("legacy"); })
                .kind,
            core::SimErrorKind::kConfig);
  EXPECT_EQ(classify_thrown([] { throw std::ios_base::failure("io"); }).kind,
            core::SimErrorKind::kIo);
  EXPECT_EQ(classify_thrown([] { throw std::runtime_error("boom"); }).kind,
            core::SimErrorKind::kModel);
  const auto unknown = classify_thrown([] { throw 42; });
  EXPECT_EQ(unknown.kind, core::SimErrorKind::kModel);
  EXPECT_EQ(unknown.context, "unknown exception");
}

TEST(CancelToken, StartsClearAndLatches) {
  core::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
}

// --- Table-driven config throw sites ----------------------------------------

struct ThrowSite {
  const char* name;
  std::function<void()> trigger;
  core::SimErrorKind kind;
  const char* message;  ///< required substring of the context
};

core::TimedConfig valid_config() {
  core::TimedConfig tc;
  tc.global = {{0, 0, 0}, {64, 64, 64}};
  tc.timesteps = 1;
  return tc;
}

std::vector<ThrowSite> run_timed_sites() {
  const auto with = [](auto&& mutate) {
    return [mutate] {
      core::TimedConfig tc = valid_config();
      mutate(tc);
      (void)core::run_timed(tc);
    };
  };
  static const coop::fault::FaultPlan kEmptyPlan;
  return {
      {"empty_box", with([](core::TimedConfig& tc) { tc.global = {}; }),
       core::SimErrorKind::kConfig, "empty global box"},
      {"timesteps", with([](core::TimedConfig& tc) { tc.timesteps = 0; }),
       core::SimErrorKind::kConfig, "timesteps <= 0"},
      {"nodes", with([](core::TimedConfig& tc) { tc.nodes = 0; }),
       core::SimErrorKind::kConfig, "nodes <= 0"},
      {"ranks_per_gpu",
       with([](core::TimedConfig& tc) { tc.ranks_per_gpu = 0; }),
       core::SimErrorKind::kConfig, "ranks_per_gpu <= 0"},
      {"cpu_fraction",
       with([](core::TimedConfig& tc) { tc.cpu_fraction = 1.5; }),
       core::SimErrorKind::kConfig, "cpu_fraction > 1"},
      {"ghosts", with([](core::TimedConfig& tc) { tc.ghosts = -1; }),
       core::SimErrorKind::kConfig, "ghosts < 0"},
      {"nodes_vs_z", with([](core::TimedConfig& tc) { tc.nodes = 10000; }),
       core::SimErrorKind::kConfig, "nodes exceed the global z extent"},
      {"launch_attempts",
       with([](core::TimedConfig& tc) {
         tc.faults = &kEmptyPlan;
         tc.recovery.max_launch_attempts = 0;
       }),
       core::SimErrorKind::kConfig, "max_launch_attempts < 1"},
      {"checkpoint_interval",
       with([](core::TimedConfig& tc) {
         tc.faults = &kEmptyPlan;
         tc.recovery.checkpoint_interval = -1;
       }),
       core::SimErrorKind::kConfig, "checkpoint_interval < 0"},
      {"recovery_bandwidth",
       with([](core::TimedConfig& tc) {
         tc.faults = &kEmptyPlan;
         tc.recovery.checkpoint_bandwidth_bytes_per_s = 0.0;
       }),
       core::SimErrorKind::kConfig, "nonpositive recovery bandwidth"},
  };
}

std::vector<ThrowSite> sweep_analytics_sites() {
  return {
      {"figure_spec", [] { (void)sweeps::figure_spec(11); },
       core::SimErrorKind::kConfig, "no sweep for figure 11"},
      {"reduced",
       [] { (void)sweeps::reduced(sweeps::figure_spec(12), 1); },
       core::SimErrorKind::kConfig, "need at least 2 points"},
      {"slope_break_mismatch",
       [] {
         (void)sweeps::detect_slope_break({1, 2, 3, 4}, {1.0, 2.0, 3.0});
       },
       core::SimErrorKind::kConfig, "length mismatch"},
      {"slope_break_short",
       [] { (void)sweeps::detect_slope_break({1, 2, 3}, {1.0, 2.0, 3.0}); },
       core::SimErrorKind::kConfig, "need >= 4 points"},
      {"slope_break_nonincreasing",
       [] {
         (void)sweeps::detect_slope_break({1, 3, 2, 4},
                                          {1.0, 2.0, 3.0, 4.0});
       },
       core::SimErrorKind::kConfig, "strictly increasing"},
      {"point_mode_not_swept",
       [] { (void)sweeps::SweepPoint{}.time(core::NodeMode::kCpuOnly); },
       core::SimErrorKind::kConfig, "mode not swept"},
      {"steady_mode_not_swept",
       [] { (void)sweeps::SweepPoint{}.steady(core::NodeMode::kCpuOnly); },
       core::SimErrorKind::kConfig, "mode not swept"},
      {"sweep_timesteps",
       [] {
         sweeps::SweepOptions options;
         options.timesteps = 0;
         (void)sweeps::run_figure_sweep(sweeps::figure_spec(12), options);
       },
       core::SimErrorKind::kConfig, "timesteps must be >= 1"},
      {"sweep_attempts",
       [] {
         sweeps::SweepOptions options;
         options.max_cell_attempts = 0;
         (void)sweeps::run_figure_sweep(sweeps::figure_spec(12), options);
       },
       core::SimErrorKind::kConfig, "max_cell_attempts must be >= 1"},
  };
}

class ConfigThrowSites : public ::testing::TestWithParam<ThrowSite> {};

TEST_P(ConfigThrowSites, MapsToTypedSimError) {
  const ThrowSite& site = GetParam();
  try {
    site.trigger();
    FAIL() << site.name << " did not throw";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, site.kind) << site.name;
    EXPECT_NE(c.error().context.find(site.message), std::string::npos)
        << site.name << ": context was \"" << c.error().context << "\"";
  } catch (const std::exception& e) {
    FAIL() << site.name << " threw an untyped exception: " << e.what();
  }
}

// Every site must ALSO still be a std::invalid_argument (legacy contract).
TEST_P(ConfigThrowSites, StillThrowsInvalidArgument) {
  EXPECT_THROW(GetParam().trigger(), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(RunTimed, ConfigThrowSites,
                         ::testing::ValuesIn(run_timed_sites()),
                         [](const auto& pi) {
                           return std::string(pi.param.name);
                         });
INSTANTIATE_TEST_SUITE_P(SweepAnalytics, ConfigThrowSites,
                         ::testing::ValuesIn(sweep_analytics_sites()),
                         [](const auto& pi) {
                           return std::string(pi.param.name);
                         });

// --- Watchdog budgets and cancellation through run_timed --------------------

TEST(RunTimedSupervision, EventBudgetRaisesTimeout) {
  core::TimedConfig tc = valid_config();
  tc.timesteps = 5;
  tc.budget.max_events = 50;  // a 4-rank step needs far more events
  try {
    (void)core::run_timed(tc);
    FAIL() << "budget did not trip";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kTimeout);
    EXPECT_NE(c.error().context.find("event budget"), std::string::npos);
  }
}

TEST(RunTimedSupervision, SimTimeBudgetRaisesTimeout) {
  core::TimedConfig tc = valid_config();
  tc.timesteps = 20;
  tc.budget.max_sim_s = 1e-9;
  try {
    (void)core::run_timed(tc);
    FAIL() << "budget did not trip";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kTimeout);
    EXPECT_NE(c.error().context.find("simulated-time"), std::string::npos);
  }
}

TEST(RunTimedSupervision, PreCancelledTokenRaisesCancelled) {
  core::TimedConfig tc = valid_config();
  core::CancelToken token;
  token.request_cancel();
  tc.cancel = &token;
  try {
    (void)core::run_timed(tc);
    FAIL() << "cancellation did not trip";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kCancelled);
  }
}

TEST(RunTimedSupervision, GenerousBudgetIsBitwiseIdentical) {
  core::TimedConfig tc = valid_config();
  tc.timesteps = 3;
  const auto plain = core::run_timed(tc);
  core::CancelToken token;  // attached but never triggered
  tc.cancel = &token;
  tc.budget.max_events = 100000000;
  const auto supervised = core::run_timed(tc);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(plain.makespan),
            std::bit_cast<std::uint64_t>(supervised.makespan));
  ASSERT_EQ(plain.iteration_times.size(), supervised.iteration_times.size());
  for (std::size_t i = 0; i < plain.iteration_times.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(plain.iteration_times[i]),
              std::bit_cast<std::uint64_t>(supervised.iteration_times[i]));
}

}  // namespace
