#pragma once

#include <cstddef>
#include <string>

#include "coop/devmodel/calibration.hpp"

/// \file specs.hpp
/// Hardware descriptions for the simulated heterogeneous node.

namespace coop::devmodel {

/// One logical GPU (the paper treats each K80 board as one GPU).
struct GpuSpec {
  double bandwidth_bytes_per_s = calib::kGpuPeakBandwidth;
  double flops_per_s = calib::kGpuPeakFlops;
  double memory_bytes = calib::kGpuMemoryBytes;
  double launch_overhead_s = calib::kKernelLaunchOverhead;
  double occupancy_half_zones = calib::kOccupancyHalfZones;
  double coalesce_half_extent = calib::kCoalesceHalfExtent;
  double mps_launch_multiplier = calib::kMpsLaunchMultiplier;
  double mps_throughput_tax = calib::kMpsThroughputTax;
  int mps_max_resident = calib::kMpsMaxResident;
};

/// The host CPU complex (all sockets).
struct CpuSpec {
  int sockets = calib::kCpuSockets;
  int cores_per_socket = calib::kCpuCoresPerSocket;
  double core_flops_per_s = calib::kCpuCoreFlops;
  double core_bandwidth_bytes_per_s = calib::kCpuCoreBandwidth;
  double memory_bytes = calib::kHostMemoryBytes;

  [[nodiscard]] int total_cores() const noexcept {
    return sockets * cores_per_socket;
  }
};

/// Unified-memory pump model (host side of UM page migration).
struct UmSpec {
  double pump_zones_per_core = calib::kUmPumpZonesPerCore;
  double spill_bytes_per_zone = calib::kUmSpillBytesPerZone;
  double spill_bandwidth_bytes_per_s = calib::kUmSpillBandwidth;
};

/// Interconnect for MPI messaging (staged through the host; the paper notes
/// GPU-direct communication was not yet available on its testbed and plans
/// to explore it — we model it as an optional second network, below).
struct InterconnectSpec {
  double latency_s = calib::kMsgLatency;
  double bandwidth_bytes_per_s = calib::kMsgBandwidth;
  double allreduce_hop_latency_s = calib::kAllreduceLatencyPerHop;

  /// GPU-direct peer link (NVLink/PCIe P2P-like): GPU-to-GPU messages skip
  /// the host staging copy. Used only when the run enables GPU-direct.
  static InterconnectSpec gpu_direct() {
    InterconnectSpec n;
    n.latency_s = 1.5e-6;
    n.bandwidth_bytes_per_s = 20.0e9;
    return n;
  }
};

/// A complete heterogeneous node.
struct NodeSpec {
  std::string name = "node";
  CpuSpec cpu{};
  GpuSpec gpu{};
  UmSpec um{};
  InterconnectSpec net{};
  /// Link between nodes (EDR InfiniBand-like) for multi-node runs.
  InterconnectSpec internode{3.0e-6, 10.0e9, 5.0e-6};
  int gpu_count = 4;

  /// The paper's testbed: one node of RZHasGPU (2x Xeon E5-2667v3,
  /// 4x Tesla K80, 128 GB host / 12 GB per GPU).
  static NodeSpec rzhasgpu() {
    NodeSpec n;
    n.name = "rzhasgpu";
    return n;
  }

  /// A Sierra early-access-like node (2x POWER-ish CPUs, 4 faster GPUs):
  /// used for what-if ablations only.
  static NodeSpec sierra_ea() {
    NodeSpec n;
    n.name = "sierra-ea";
    n.cpu.sockets = 2;
    n.cpu.cores_per_socket = 10;
    n.gpu.bandwidth_bytes_per_s = 700.0e9;
    n.gpu.flops_per_s = 7.0e12;
    n.gpu.memory_bytes = 16.0e9;
    n.gpu.occupancy_half_zones = 4.0e5;
    return n;
  }
};

}  // namespace coop::devmodel
