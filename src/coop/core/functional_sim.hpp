#pragma once

#include <vector>

#include "coop/core/node_mode.hpp"
#include "coop/hydro/solver.hpp"

/// \file functional_sim.hpp
/// Functional (real-physics) multi-rank run of the Sedov mini-app.
///
/// Every rank is a thread with its own MemoryManager (placed per the
/// paper's Fig. 8), its own runtime-selected forall policy (Fig. 7), and its
/// own subdomain from the mode's decomposition (Fig. 10). Ranks exchange
/// conserved-field halos and reduce dt through the thread-backed
/// communicator. This is the path that validates physics; the timed DES
/// path reuses the same decomposition/control code with modelled kernels.

namespace coop::core {

struct FunctionalConfig {
  NodeMode mode = NodeMode::kCpuOnly;
  devmodel::NodeSpec node = devmodel::NodeSpec::rzhasgpu();
  /// Number of identical nodes (z-split cluster decomposition; each node
  /// contributes a full rank set for the mode).
  int nodes = 1;
  int ranks_per_gpu = 4;
  double cpu_fraction = 0.1;  ///< heterogeneous carve (one-plane floor applies)
  /// Use the indirect (std::function-per-iteration) policy on CPU-only
  /// ranks, reproducing the nvcc issue functionally (slow! tests only).
  bool compiler_bug = false;
  hydro::ProblemConfig problem{};
  int timesteps = 50;
};

struct FunctionalResult {
  // Conservation diagnostics (integrals over the global domain).
  double mass_initial = 0, mass_final = 0;
  double energy_initial = 0, energy_final = 0;
  // Shock diagnostics at the final time.
  double max_density = 0;
  double shock_radius_measured = 0;
  double shock_radius_analytic = 0;
  double sim_time = 0;  ///< physical time reached
  int steps = 0;
  int ranks = 0;
  // Passive-scalar (mixing) package, when enabled:
  double scalar_mass_initial = 0, scalar_mass_final = 0;
  double scalar_min = 0, scalar_max = 0;
  /// Order-independent global field checksum (sum of |rho| + |E| over owned
  /// zones, reduced): used to compare runs across modes bit-for-bit-ish.
  double checksum = 0;
};

/// Runs `cfg.timesteps` of Sedov with the mode's decomposition and policies.
[[nodiscard]] FunctionalResult run_functional(const FunctionalConfig& cfg);

}  // namespace coop::core
