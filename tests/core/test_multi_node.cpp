#include <gtest/gtest.h>

#include <set>

#include "coop/core/functional_sim.hpp"
#include "coop/core/timed_sim.hpp"

namespace core = coop::core;
namespace dm = coop::devmodel;
using coop::mesh::Box;

namespace {

const dm::NodeSpec kNode = dm::NodeSpec::rzhasgpu();

TEST(ClusterDecomposition, SingleNodeDegeneratesToPlain) {
  const Box g{{0, 0, 0}, {320, 480, 320}};
  const auto one = core::make_cluster_decomposition(
      core::NodeMode::kHeterogeneous, kNode, g, 1);
  const auto plain = core::make_decomposition(core::NodeMode::kHeterogeneous,
                                              kNode, g);
  ASSERT_EQ(one.ranks(), plain.ranks());
  for (int r = 0; r < one.ranks(); ++r) {
    EXPECT_EQ(one.domains[static_cast<std::size_t>(r)].box,
              plain.domains[static_cast<std::size_t>(r)].box);
    EXPECT_EQ(one.domains[static_cast<std::size_t>(r)].node_id, 0);
  }
}

TEST(ClusterDecomposition, PartitionsAcrossNodes) {
  const Box g{{0, 0, 0}, {320, 480, 320}};
  for (int nodes : {2, 4, 8}) {
    const auto d = core::make_cluster_decomposition(
        core::NodeMode::kMpsPerGpu, kNode, g, nodes);
    EXPECT_NO_THROW(d.validate());
    EXPECT_EQ(d.ranks(), 16 * nodes);
    std::set<int> node_ids;
    for (const auto& dom : d.domains) node_ids.insert(dom.node_id);
    EXPECT_EQ(static_cast<int>(node_ids.size()), nodes);
  }
}

TEST(ClusterDecomposition, NodesSplitAlongZ) {
  const Box g{{0, 0, 0}, {320, 480, 320}};
  const auto d = core::make_cluster_decomposition(
      core::NodeMode::kOneRankPerGpu, kNode, g, 4);
  for (const auto& dom : d.domains) {
    EXPECT_EQ(dom.box.nx(), 320);          // x preserved everywhere
    EXPECT_EQ(dom.box.nz(), 320 / 4);      // z carries the node split
    EXPECT_EQ(dom.node_id, dom.rank / 4);  // 4 GPU ranks per node
  }
}

TEST(ClusterDecomposition, RankIdsDense) {
  const Box g{{0, 0, 0}, {320, 480, 320}};
  const auto d = core::make_cluster_decomposition(
      core::NodeMode::kHeterogeneous, kNode, g, 2);
  std::set<int> ids;
  for (const auto& dom : d.domains) ids.insert(dom.rank);
  EXPECT_EQ(static_cast<int>(ids.size()), d.ranks());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), d.ranks() - 1);
}

TEST(ClusterDecomposition, InvalidNodesRejected) {
  const Box g{{0, 0, 0}, {64, 64, 64}};
  EXPECT_THROW((void)core::make_cluster_decomposition(
                   core::NodeMode::kCpuOnly, kNode, g, 0),
               std::invalid_argument);
}

core::TimedConfig cluster_cfg(core::NodeMode mode, int nodes,
                              long zones_per_node_z) {
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = Box{{0, 0, 0}, {320, 480, zones_per_node_z * nodes}};
  tc.nodes = nodes;
  tc.timesteps = 10;
  return tc;
}

TEST(MultiNodeSim, WeakScalingNearlyFlat) {
  // Fixed work per node: runtime should grow only by the (small) internode
  // halo cost, well under 10% out to 8 nodes.
  const double t1 =
      core::run_timed(cluster_cfg(core::NodeMode::kMpsPerGpu, 1, 160))
          .makespan;
  const double t8 =
      core::run_timed(cluster_cfg(core::NodeMode::kMpsPerGpu, 8, 160))
          .makespan;
  EXPECT_GT(t8, t1);          // some internode overhead exists
  EXPECT_LT(t8, 1.10 * t1);   // but weak scaling holds
}

TEST(MultiNodeSim, StrongScalingSpeedsUp) {
  // Fixed total work across 1 vs 4 nodes.
  core::TimedConfig tc;
  tc.mode = core::NodeMode::kOneRankPerGpu;
  tc.global = Box{{0, 0, 0}, {320, 480, 320}};
  tc.timesteps = 10;
  const double t1 = core::run_timed(tc).makespan;
  tc.nodes = 4;
  const double t4 = core::run_timed(tc).makespan;
  EXPECT_LT(t4, 0.35 * t1);  // near-linear (comm costs a little)
}

TEST(MultiNodeSim, HeteroGainPersistsAcrossNodes) {
  // The paper's heterogeneous benefit is per-node and should survive
  // weak scaling: the per-node problem is the Fig. 18 best case.
  core::TimedConfig def;
  def.mode = core::NodeMode::kOneRankPerGpu;
  def.global = Box{{0, 0, 0}, {600, 480, 160 * 4}};
  def.nodes = 4;
  def.timesteps = 10;
  auto het = def;
  het.mode = core::NodeMode::kHeterogeneous;
  const double t_def = core::run_timed(def).makespan;
  const double t_het = core::run_timed(het).makespan;
  const double gain = (t_def - t_het) / t_def;
  EXPECT_GT(gain, 0.10);
}

TEST(MultiNodeSim, MessagesIncludeInternodeTraffic) {
  const auto single =
      core::run_timed(cluster_cfg(core::NodeMode::kOneRankPerGpu, 1, 160));
  const auto multi =
      core::run_timed(cluster_cfg(core::NodeMode::kOneRankPerGpu, 4, 160));
  // 4x the ranks plus z-face neighbors across node boundaries.
  EXPECT_GT(multi.messages, 4 * single.messages);
}

TEST(MultiNodeSim, Deterministic) {
  const auto a =
      core::run_timed(cluster_cfg(core::NodeMode::kHeterogeneous, 3, 160));
  const auto b =
      core::run_timed(cluster_cfg(core::NodeMode::kHeterogeneous, 3, 160));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(MultiNodeSim, InvalidNodeCountRejected) {
  auto tc = cluster_cfg(core::NodeMode::kCpuOnly, 1, 64);
  tc.nodes = 0;
  EXPECT_THROW((void)core::run_timed(tc), std::invalid_argument);
}

}  // namespace

namespace {

TEST(MultiNodeFunctional, ClusterPhysicsMatchesSingleDomain) {
  // Two-node (32-rank) functional run must reproduce the single-node
  // 16-rank physics exactly: the node split is just another decomposition
  // cut, and halo exchange must make it invisible.
  core::FunctionalConfig fc;
  fc.mode = core::NodeMode::kMpsPerGpu;
  fc.problem.global = Box{{0, 0, 0}, {16, 32, 16}};
  fc.timesteps = 10;
  const auto one = core::run_functional(fc);
  fc.nodes = 2;
  const auto two = core::run_functional(fc);
  EXPECT_EQ(two.ranks, 2 * one.ranks);
  EXPECT_DOUBLE_EQ(two.sim_time, one.sim_time);
  EXPECT_NEAR(two.checksum, one.checksum, 1e-12 * one.checksum);
  EXPECT_NEAR(two.energy_final, one.energy_final,
              1e-12 * one.energy_final);
}

}  // namespace
