#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "coop/lb/load_balancer.hpp"

namespace lb = coop::lb;
namespace dm = coop::devmodel;

namespace {

const dm::KernelWork kStepWork{2000.0, 12800.0};  // ARES Sedov aggregate

TEST(InitialFraction, ReasonableForRzhasgpu) {
  const auto node = dm::NodeSpec::rzhasgpu();
  const double f = lb::initial_cpu_fraction(node, 12, kStepWork,
                                            dm::calib::kCompilerBugFactor);
  // The paper reports 1-2.5% assignable to the 12 CPU cores with the
  // compiler issue present; the FLOPS guess must land in that ballpark.
  EXPECT_GT(f, 0.01);
  EXPECT_LT(f, 0.06);
}

TEST(InitialFraction, HigherWithoutCompilerBug) {
  const auto node = dm::NodeSpec::rzhasgpu();
  const double f_bug = lb::initial_cpu_fraction(node, 12, kStepWork, 6.0);
  const double f_fixed = lb::initial_cpu_fraction(node, 12, kStepWork, 1.0);
  EXPECT_GT(f_fixed, 3.0 * f_bug);
  EXPECT_LT(f_fixed, 0.5);  // still a minority share
}

TEST(InitialFraction, ScalesWithCpuRanks) {
  const auto node = dm::NodeSpec::rzhasgpu();
  const double f12 = lb::initial_cpu_fraction(node, 12, kStepWork, 1.0);
  const double f6 = lb::initial_cpu_fraction(node, 6, kStepWork, 1.0);
  EXPECT_GT(f12, f6);
}

/// Synthetic balanced system: T_cpu = f/Rc, T_gpu = (1-f)/Rg. The balancer
/// must converge to f* = Rc/(Rc+Rg) from any start.
class BalancerConvergence : public ::testing::TestWithParam<double> {};

TEST_P(BalancerConvergence, FindsAnalyticOptimum) {
  const double r_cpu = 1.0, r_gpu = 30.0;
  const double f_star = r_cpu / (r_cpu + r_gpu);
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = GetParam();
  cfg.min_fraction = 0.0;
  cfg.max_fraction = 0.9;
  lb::FeedbackBalancer bal(cfg);
  for (int iter = 0; iter < 60; ++iter) {
    const double f = bal.fraction();
    bal.observe(f / r_cpu, (1.0 - f) / r_gpu);
  }
  EXPECT_NEAR(bal.fraction(), f_star, 1e-3);
  EXPECT_TRUE(bal.converged());
  EXPECT_LT(bal.last_imbalance(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Starts, BalancerConvergence,
                         ::testing::Values(0.001, 0.02, 0.1, 0.5, 0.9));

TEST(Balancer, RespectsFloorAndCeiling) {
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.10;
  cfg.min_fraction = 0.05;
  cfg.max_fraction = 0.20;
  lb::FeedbackBalancer bal(cfg);
  // CPU persistently 100x too slow: fraction must clamp at the floor.
  for (int i = 0; i < 50; ++i) bal.observe(100.0, 1.0, bal.fraction());
  EXPECT_DOUBLE_EQ(bal.fraction(), 0.05);
  // CPU infinitely fast: clamp at the ceiling.
  for (int i = 0; i < 50; ++i) bal.observe(1e-6, 1.0, bal.fraction());
  EXPECT_DOUBLE_EQ(bal.fraction(), 0.20);
}

TEST(Balancer, InitialFractionClamped) {
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.9;
  cfg.max_fraction = 0.3;
  EXPECT_DOUBLE_EQ(lb::FeedbackBalancer(cfg).fraction(), 0.3);
}

TEST(Balancer, IgnoresUnmeasurableIterations) {
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.1;
  lb::FeedbackBalancer bal(cfg);
  bal.observe(0.0, 1.0);   // no CPU measurement
  bal.observe(1.0, 0.0);   // no GPU measurement
  EXPECT_DOUBLE_EQ(bal.fraction(), 0.1);
  EXPECT_EQ(bal.observations(), 2);
}

TEST(Balancer, UsesActualFractionWhenQuantized) {
  // Continuous target 0.035 but the decomposition realized 0.025: rates
  // must be derived from 0.025, or the estimate is biased.
  const double r_cpu = 1.0, r_gpu = 30.0;
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.035;
  lb::FeedbackBalancer bal(cfg);
  const double f_real = 0.025;
  bal.observe(f_real / r_cpu, (1.0 - f_real) / r_gpu, f_real);
  // One undamped step from an unbiased estimate would land on f*; with
  // gain 0.5 we land halfway between 0.035 and f*.
  const double f_star = r_cpu / (r_cpu + r_gpu);
  EXPECT_NEAR(bal.fraction(), 0.035 + 0.5 * (f_star - 0.035), 1e-12);
}

TEST(Balancer, DampingPreventsOvershoot) {
  // With gain 0.5, a single observation moves at most halfway.
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.5;
  cfg.gain = 0.5;
  lb::FeedbackBalancer bal(cfg);
  bal.observe(50.0, 1.0, 0.5);  // optimum is far below 0.5
  EXPECT_GT(bal.fraction(), 0.25);
}

TEST(Balancer, IgnoresNonFiniteObservations) {
  // NaN compares false against every ordering threshold, so a NaN timing
  // would sail past `<= 0` guards and poison the fraction forever. Each
  // degenerate input must leave the state exactly as it was.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.25;
  lb::FeedbackBalancer bal(cfg);
  const double f0 = bal.fraction();
  bal.observe(nan, 1.0, 0.25);
  bal.observe(1.0, nan, 0.25);
  bal.observe(1.0, 1.0, nan);
  bal.observe(inf, 1.0, 0.25);
  bal.observe(1.0, -inf, 0.25);
  bal.observe(1.0, 1.0, inf);
  EXPECT_EQ(bal.fraction(), f0);
  EXPECT_FALSE(std::isnan(bal.fraction()));
  EXPECT_EQ(bal.observations(), 6);
  // A good (imbalanced) observation afterwards still updates normally.
  bal.observe(0.5, 0.1, 0.25);
  EXPECT_NE(bal.fraction(), f0);
  EXPECT_TRUE(std::isfinite(bal.fraction()));
}

TEST(Balancer, IgnoresNonPositiveTimesAndDegenerateFractions) {
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.25;
  lb::FeedbackBalancer bal(cfg);
  const double f0 = bal.fraction();
  bal.observe(0.0, 1.0, 0.25);
  bal.observe(1.0, -1.0, 0.25);
  bal.observe(1.0, 1.0, 0.0);   // all-GPU iteration: no rate information
  bal.observe(1.0, 1.0, 1.0);   // all-CPU iteration
  EXPECT_EQ(bal.fraction(), f0);
}

TEST(Balancer, ConvergedFlagOnGranularityLimit) {
  // When the target stops moving (quantization-limited), report converged
  // even if times stay unequal.
  lb::FeedbackBalancer::Config cfg;
  cfg.initial_fraction = 0.025;
  cfg.min_fraction = 0.025;
  lb::FeedbackBalancer bal(cfg);
  for (int i = 0; i < 10; ++i) bal.observe(0.86, 1.01, 0.025);
  EXPECT_TRUE(bal.converged());
}

}  // namespace
