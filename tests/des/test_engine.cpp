#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "coop/des/engine.hpp"

namespace des = coop::des;

namespace {

des::Task<void> ticker(des::Engine& eng, std::vector<double>& out, double dt,
                       int count) {
  for (int i = 0; i < count; ++i) {
    co_await eng.delay(dt);
    out.push_back(eng.now());
  }
}

TEST(Engine, StartsAtZero) {
  des::Engine eng;
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, DelayAdvancesTime) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.5, 3));
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
  EXPECT_DOUBLE_EQ(times[2], 4.5);
  EXPECT_DOUBLE_EQ(eng.now(), 4.5);
}

TEST(Engine, InterleavesProcessesByTime) {
  des::Engine eng;
  std::vector<double> a, b;
  eng.spawn(ticker(eng, a, 2.0, 3));  // 2, 4, 6
  eng.spawn(ticker(eng, b, 3.0, 2));  // 3, 6
  eng.run();
  EXPECT_EQ(a, (std::vector<double>{2, 4, 6}));
  EXPECT_EQ(b, (std::vector<double>{3, 6}));
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Engine, EqualTimesAreFifoByScheduleOrder) {
  des::Engine eng;
  std::vector<int> order;
  auto proc = [](des::Engine& e, std::vector<int>& ord, int id) -> des::Task<void> {
    co_await e.delay(1.0);
    ord.push_back(id);
  };
  for (int i = 0; i < 8; ++i) eng.spawn(proc(eng, order, i));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, ZeroAndNegativeDelayRunAtCurrentTime) {
  des::Engine eng;
  std::vector<double> times;
  auto proc = [](des::Engine& e, std::vector<double>& t) -> des::Task<void> {
    co_await e.delay(0.0);
    t.push_back(e.now());
    co_await e.delay(-5.0);  // clamped to zero
    t.push_back(e.now());
  };
  eng.spawn(proc(eng, times));
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 0.0}));
}

TEST(Engine, RunUntilStopsAtBoundary) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 10));
  eng.run_until(3.5);
  EXPECT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(eng.now(), 3.5);
  eng.run();
  EXPECT_EQ(times.size(), 10u);
}

TEST(Engine, RunUntilProcessesEventsAtExactBoundary) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 5));
  eng.run_until(3.0);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Engine, SpawnAtSchedulesFutureStart) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn_at(10.0, ticker(eng, times, 1.0, 2));
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{11.0, 12.0}));
}

TEST(Engine, SpawnInPastThrows) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 1));
  eng.run();
  EXPECT_THROW(eng.spawn_at(0.5, ticker(eng, times, 1.0, 1)),
               std::invalid_argument);
}

TEST(Engine, RootExceptionPropagatesFromRun) {
  des::Engine eng;
  auto proc = [](des::Engine& e) -> des::Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  };
  eng.spawn(proc(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, FailedRootIsReapedBeforeRethrow) {
  des::Engine eng;
  auto bomb = [](des::Engine& e) -> des::Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  };
  eng.spawn(bomb(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
  // The failed root was removed with its exception consumed: a second run()
  // must not rethrow the stale exception.
  EXPECT_NO_THROW(eng.run());
  // And the engine stays usable for fresh processes afterwards.
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 2));
  eng.run();
  EXPECT_EQ(times.size(), 2u);
}

TEST(Engine, AllFailedRootsReapedWithSingleRethrow) {
  des::Engine eng;
  auto bomb = [](des::Engine& e, double at, const char* what)
      -> des::Task<void> {
    co_await e.delay(at);
    throw std::runtime_error(what);
  };
  // Both roots fail; run() drains the queue, then rethrows the first spawned
  // root's exception exactly once. Both frames are reaped.
  eng.spawn(bomb(eng, 1.0, "first"));
  eng.spawn(bomb(eng, 2.0, "second"));
  try {
    eng.run();
    FAIL() << "run() should have thrown";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "first");
  }
  EXPECT_NO_THROW(eng.run());
}

TEST(Engine, EventsProcessedCounts) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 4));
  eng.run();
  // 1 start event + 4 delay resumptions.
  EXPECT_EQ(eng.events_processed(), 5u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = []() {
    des::Engine eng;
    std::vector<double> a, b, c;
    eng.spawn(ticker(eng, a, 0.7, 100));
    eng.spawn(ticker(eng, b, 1.1, 80));
    eng.spawn(ticker(eng, c, 0.3, 200));
    eng.run();
    std::vector<double> all;
    all.insert(all.end(), a.begin(), a.end());
    all.insert(all.end(), b.begin(), b.end());
    all.insert(all.end(), c.begin(), c.end());
    return all;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, ManyProcessesStress) {
  des::Engine eng;
  std::vector<std::vector<double>> outs(200);
  for (int i = 0; i < 200; ++i)
    eng.spawn(ticker(eng, outs[i], 0.01 * (i + 1), 50));
  eng.run();
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(outs[i].size(), 50u);
    EXPECT_NEAR(outs[i].back(), 0.01 * (i + 1) * 50, 1e-9);
  }
}

}  // namespace

namespace {

des::Task<void> spawner(des::Engine& eng, std::vector<double>& out) {
  co_await eng.delay(1.0);
  // Processes may spawn further processes mid-run.
  eng.spawn(ticker(eng, out, 0.5, 2));
  co_await eng.delay(5.0);
}

TEST(Engine, SpawnFromRunningTask) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(spawner(eng, times));
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{1.5, 2.0}));
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Engine, RunResumableAfterCompletion) {
  des::Engine eng;
  std::vector<double> a, b;
  eng.spawn(ticker(eng, a, 1.0, 2));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  // A finished engine accepts new work; time continues monotonically.
  eng.spawn(ticker(eng, b, 1.0, 2));
  eng.run();
  EXPECT_EQ(b, (std::vector<double>{3.0, 4.0}));
}

TEST(Engine, RunUntilThenRunCompletes) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 10));
  eng.run_until(4.5);
  EXPECT_DOUBLE_EQ(eng.now(), 4.5);
  eng.run_until(7.0);
  EXPECT_EQ(times.size(), 7u);
  eng.run();
  EXPECT_EQ(times.size(), 10u);
  EXPECT_DOUBLE_EQ(eng.now(), 10.0);
}

TEST(Engine, RunUntilPastEndIdlesAtBoundary) {
  des::Engine eng;
  std::vector<double> times;
  eng.spawn(ticker(eng, times, 1.0, 2));
  eng.run_until(100.0);
  // Queue drained at t=2; clock parks at the requested horizon.
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);
}

}  // namespace

// --- Same-time FIFO ring vs heap ordering -----------------------------------
//
// The engine routes events scheduled at the current instant into a FIFO ring
// that bypasses the heap. These tests pin the hazard case: a ring entry must
// NOT overtake a same-time heap entry that was scheduled earlier (smaller
// seq).

namespace {

des::Task<void> log_after(des::Engine& eng, std::vector<std::string>& log,
                          double dt, std::string tag) {
  co_await eng.delay(dt);
  log.push_back(tag);
}

TEST(Engine, ZeroDelayDoesNotOvertakeEqualTimeHeapEvents) {
  des::Engine eng;
  std::vector<std::string> log;
  auto a = [](des::Engine& e, std::vector<std::string>& lg) -> des::Task<void> {
    co_await e.delay(1.0);
    lg.push_back("A");
    co_await e.delay(0.0);  // ring entry at t=1, seq > B's pending heap entry
    lg.push_back("A0");
  };
  eng.spawn(a(eng, log));
  eng.spawn(log_after(eng, log, 1.0, "B"));
  eng.run();
  // B's t=1 event was scheduled (from t=0) before A's zero-delay event was
  // (at t=1), so B runs between A and A0.
  EXPECT_EQ(log, (std::vector<std::string>{"A", "B", "A0"}));
}

TEST(Engine, ZeroDelayBurstsStayFifoAmongThemselves) {
  des::Engine eng;
  std::vector<std::string> log;
  auto burst = [](des::Engine& e, std::vector<std::string>& lg,
                  std::string tag) -> des::Task<void> {
    co_await e.delay(2.0);
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(0.0);
      lg.push_back(tag + std::to_string(i));
    }
  };
  eng.spawn(burst(eng, log, "x"));
  eng.spawn(burst(eng, log, "y"));
  eng.run();
  // Both bursts sit at t=2; their zero-delay hops interleave strictly in
  // schedule order: x0 schedules x1 only after y0 was already queued.
  EXPECT_EQ(log, (std::vector<std::string>{"x0", "y0", "x1", "y1", "x2",
                                           "y2"}));
}

TEST(Engine, QueueDepthCountsRingAndHeapEvents) {
  des::Engine eng;
  std::vector<std::string> log;
  eng.spawn(log_after(eng, log, 1.0, "a"));  // start event (ring) + heap later
  eng.spawn(log_after(eng, log, 2.0, "b"));
  EXPECT_EQ(eng.queue_depth(), 2u);  // both start events pending in the ring
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(eng.queue_depth(), 0u);
  EXPECT_TRUE(eng.idle());
}

}  // namespace

// --- Model-based property: (time, seq) total order --------------------------
//
// Reference scheduler: explicit (t, seq) entries popped least-first, mirroring
// the documented contract with no heap and no ring. The coroutine engine must
// produce the identical resumption log for any workload of delay scripts —
// the heap + FIFO-ring replacement is an implementation detail.

#include <queue>
#include <sstream>

#include "support/prop.hpp"

namespace {

using Script = std::vector<double>;  ///< per-process delay sequence
using Log = std::vector<std::pair<int, double>>;  ///< (process id, time)

Log reference_log(const std::vector<Script>& scripts) {
  struct Entry {
    double t;
    std::uint64_t seq;
    std::size_t proc;
  };
  const auto later = [](const Entry& a, const Entry& b) {
    return a.t > b.t || (a.t == b.t && a.seq > b.seq);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> pending(
      later);
  std::uint64_t seq = 0;
  std::vector<std::size_t> pos(scripts.size(), 0);
  std::vector<bool> started(scripts.size(), false);
  for (std::size_t p = 0; p < scripts.size(); ++p)
    pending.push({0.0, seq++, p});  // spawn order = seq order
  Log log;
  while (!pending.empty()) {
    const Entry e = pending.top();
    pending.pop();
    const Script& s = scripts[e.proc];
    std::size_t& k = pos[e.proc];
    if (started[e.proc]) log.emplace_back(static_cast<int>(e.proc), e.t);
    const std::size_t next = started[e.proc] ? ++k : k;
    started[e.proc] = true;
    if (next < s.size()) pending.push({e.t + s[next], seq++, e.proc});
  }
  return log;
}

des::Task<void> scripted(des::Engine& eng, const Script& dts, int id,
                         Log& log) {
  for (double dt : dts) {
    co_await eng.delay(dt);
    log.emplace_back(id, eng.now());
  }
}

Log engine_log(const std::vector<Script>& scripts) {
  des::Engine eng;
  Log log;
  for (std::size_t p = 0; p < scripts.size(); ++p)
    eng.spawn(scripted(eng, scripts[p], static_cast<int>(p), log));
  eng.run();
  return log;
}

TEST(EngineProperty, MatchesReferenceTimeSeqScheduler) {
  coop::prop::Property<std::vector<Script>> prop;
  prop.name = "heap+ring engine == reference (t, seq) scheduler";
  prop.generate = [](coop::prop::Gen& g) {
    // Heavy on zero delays and time collisions: the ring fast path and the
    // ring-vs-heap tie-breaks are exactly what this property polices.
    std::vector<Script> scripts(
        static_cast<std::size_t>(g.int_in(1, 10)));
    for (auto& s : scripts) {
      s.resize(static_cast<std::size_t>(g.int_in(0, 16)));
      for (auto& dt : s)
        dt = g.coin(0.4) ? 0.0 : 0.5 * static_cast<double>(g.int_in(0, 6));
    }
    return scripts;
  };
  prop.holds = [](const std::vector<Script>& scripts, std::ostream& why) {
    const Log want = reference_log(scripts);
    const Log got = engine_log(scripts);
    if (want == got) return true;
    why << "logs diverge: reference has " << want.size() << " entries, engine "
        << got.size();
    for (std::size_t i = 0; i < std::min(want.size(), got.size()); ++i)
      if (want[i] != got[i]) {
        why << "; first divergence at entry " << i << " (reference proc "
            << want[i].first << " @ " << want[i].second << ", engine proc "
            << got[i].first << " @ " << got[i].second << ")";
        break;
      }
    return false;
  };
  prop.shrink = [](const std::vector<Script>& scripts) {
    std::vector<std::vector<Script>> out;
    for (std::size_t p = 0; p < scripts.size(); ++p) {
      auto fewer = scripts;
      fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(p));
      out.push_back(std::move(fewer));
    }
    for (std::size_t p = 0; p < scripts.size(); ++p)
      if (!scripts[p].empty()) {
        auto shorter = scripts;
        shorter[p].pop_back();
        out.push_back(std::move(shorter));
      }
    return out;
  };
  prop.show = [](const std::vector<Script>& scripts, std::ostream& os) {
    os << scripts.size() << " scripts:";
    for (const auto& s : scripts) {
      os << " [";
      for (double dt : s) os << dt << " ";
      os << "]";
    }
  };
  coop::prop::check(prop, {.cases = 50});
}

}  // namespace
