/// Fault demo: kills one GPU mid-run and shows the graceful-degradation
/// path end to end — the driving rank flips to the sequential-CPU policy,
/// the balancer re-carves the surviving devices' y-slabs, the aborted step
/// replays, and the run completes with a degraded (but bounded) makespan.
/// Writes a Chrome-tracing JSON so the rebalance is visible as a Gantt
/// discontinuity (open in chrome://tracing or Perfetto).
///
/// Usage: fault_demo [out.json] [death_step] [ckpt_interval]
///        (default fault_trace.json 8 0)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>

#include "coop/core/timed_sim.hpp"
#include "coop/fault/fault_plan.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const char* out = argc > 1 ? argv[1] : "fault_trace.json";
  const int death_step = argc > 2 ? std::atoi(argv[2]) : 8;
  const int ckpt = argc > 3 ? std::atoi(argv[3]) : 0;

  core::TimedConfig tc;
  tc.mode = core::NodeMode::kOneRankPerGpu;
  tc.global = {{0, 0, 0}, {320, 96, 160}};
  tc.timesteps = 24;

  // Clean run first: measures the iteration period (to aim the fault at the
  // middle of `death_step`) and anchors the degradation comparison.
  const auto clean = core::run_timed(tc);
  auto reduced = tc;
  reduced.node.gpu_count = 3;
  const auto clean3 = core::run_timed(reduced);

  fault::FaultPlan plan;
  plan.add({.time = (death_step + 0.5) * clean.iteration_times.front(),
            .kind = fault::FaultKind::kGpuDeath, .node = 0, .gpu = 1});
  core::TraceRecorder trace;
  tc.faults = &plan;
  tc.recovery.checkpoint_interval = ckpt;
  tc.trace = &trace;
  const auto r = core::run_timed(tc);

  std::ofstream f(out);
  trace.write_chrome_trace(f);

  std::printf("=== GPU 1 dies during step %d of %d (ckpt interval %d) ===\n",
              death_step, tc.timesteps, ckpt);
  std::printf("%-28s | %8.3f s\n", "clean, 4 GPUs", clean.makespan);
  std::printf("%-28s | %8.3f s  <- degraded run lands between these\n",
              "with mid-run death", r.makespan);
  std::printf("%-28s | %8.3f s\n", "clean, 3 GPUs all along", clean3.makespan);

  const auto& st = r.resilience;
  std::printf("\ndeaths %d | policy flips %d | rollbacks %d | replayed %d | "
              "time-to-rebalance %.3g s\n",
              st.gpu_deaths, st.policy_flips, st.rollbacks,
              st.replayed_iterations, st.time_to_rebalance());

  std::printf("\nFinal zones per rank (rank 1 lost its GPU):\n");
  for (int rank = 0; rank < r.ranks; ++rank)
    std::printf("  rank %d: %ld zones\n", rank,
                r.final_zones_per_rank[static_cast<std::size_t>(rank)]);
  const long total = std::accumulate(r.final_zones_per_rank.begin(),
                                     r.final_zones_per_rank.end(), 0L);
  std::printf("  total  : %ld (global has %ld — nothing dropped)\n", total,
              tc.global.zones());
  std::printf("\nwrote %zu spans to %s (look for the kRebalance marker)\n",
              trace.spans().size(), out);
  return 0;
}
