#include "coop/devmodel/kernel_cost.hpp"

#include <algorithm>
#include <stdexcept>

namespace coop::devmodel {

double occupancy_efficiency(const GpuSpec& gpu, double zones) {
  if (zones <= 0) return 0.0;
  return zones / (zones + gpu.occupancy_half_zones);
}

double coalescing_efficiency(const GpuSpec& gpu, double innermost_extent) {
  if (innermost_extent <= 0) return 0.0;
  return innermost_extent / (innermost_extent + gpu.coalesce_half_extent);
}

namespace {

/// Roofline time at full utilization.
double roofline_time(const GpuSpec& gpu, KernelWork work, double zones) {
  const double flop_t = work.flops_per_zone * zones / gpu.flops_per_s;
  const double byte_t = work.bytes_per_zone * zones / gpu.bandwidth_bytes_per_s;
  return std::max(flop_t, byte_t);
}

}  // namespace

double roofline_seconds(const GpuSpec& gpu, KernelWork work, double zones) {
  return roofline_time(gpu, work, zones);
}

double gpu_kernel_exec_time(const GpuSpec& gpu, KernelWork work, double zones,
                            double innermost_extent) {
  if (zones <= 0) return 0.0;
  const double eta = occupancy_efficiency(gpu, zones) *
                     coalescing_efficiency(gpu, innermost_extent);
  return roofline_time(gpu, work, zones) / std::max(eta, 1e-9);
}

double gpu_kernel_exec_time_mps(const GpuSpec& gpu, KernelWork work,
                                double zones, double innermost_extent,
                                int resident) {
  if (resident < 1)
    throw std::invalid_argument("gpu_kernel_exec_time_mps: resident < 1");
  if (zones <= 0) return 0.0;
  resident = std::min(resident, gpu.mps_max_resident);
  // Co-resident kernels fill each other's idle SMs, so MPS recovers
  // *occupancy* underutilization (capped at a fully fed device) — but not
  // coalescing inefficiency, which wastes bandwidth identically in every
  // stream — and pays the context-sharing tax on top.
  const double occ = std::min(
      1.0, occupancy_efficiency(gpu, zones) * static_cast<double>(resident));
  const double aggregate = occ * coalescing_efficiency(gpu, innermost_extent) *
                           (1.0 - gpu.mps_throughput_tax);
  // `resident` equal kernels finish together after processing the aggregate
  // work at the aggregate utilization.
  const double total_work_time =
      roofline_time(gpu, work, zones * static_cast<double>(resident));
  return total_work_time / std::max(aggregate, 1e-9);
}

double gpu_launch_overhead(const GpuSpec& gpu, bool mps) {
  return mps ? gpu.launch_overhead_s * gpu.mps_launch_multiplier
             : gpu.launch_overhead_s;
}

double cpu_kernel_exec_time(const CpuSpec& cpu, KernelWork work, double zones,
                            double dispatch_penalty) {
  if (zones <= 0) return 0.0;
  if (dispatch_penalty < 1.0)
    throw std::invalid_argument("cpu_kernel_exec_time: penalty < 1");
  const double flop_t = work.flops_per_zone * zones / cpu.core_flops_per_s;
  const double byte_t =
      work.bytes_per_zone * zones / cpu.core_bandwidth_bytes_per_s;
  return std::max(flop_t, byte_t) * dispatch_penalty;
}

double um_spill_time_per_gpu_rank(const UmSpec& um, double total_um_zones,
                                  int active_cores, int gpu_ranks) {
  if (gpu_ranks <= 0) return 0.0;
  const double capacity =
      um.pump_zones_per_core * static_cast<double>(active_cores);
  const double excess = total_um_zones - capacity;
  if (excess <= 0) return 0.0;
  const double spill_t =
      excess * um.spill_bytes_per_zone / um.spill_bandwidth_bytes_per_s;
  return spill_t / static_cast<double>(gpu_ranks);
}

}  // namespace coop::devmodel
