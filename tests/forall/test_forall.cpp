#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "coop/forall/dynamic_policy.hpp"
#include "coop/forall/forall.hpp"

namespace fa = coop::forall;

namespace {

/// All policies must produce identical results for a data-parallel body.
class PolicyEquivalence : public ::testing::TestWithParam<fa::PolicyKind> {};

TEST_P(PolicyEquivalence, SaxpyMatchesReference) {
  const long n = 10000;
  std::vector<double> x(n), y(n), ref(n);
  for (long i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = 0.5 * static_cast<double>(i);
    y[static_cast<std::size_t>(i)] = static_cast<double>(i);
    ref[static_cast<std::size_t>(i)] =
        y[static_cast<std::size_t>(i)] + 2.0 * x[static_cast<std::size_t>(i)];
  }
  double* xp = x.data();
  double* yp = y.data();
  fa::forall(fa::DynamicPolicy{GetParam()}, 0, n,
             [=](long i) { yp[i] += 2.0 * xp[i]; });
  EXPECT_EQ(y, ref);
}

TEST_P(PolicyEquivalence, EveryIndexVisitedExactlyOnce) {
  const long n = 4097;
  std::vector<std::atomic<int>> hits(n);
  auto* hp = hits.data();
  fa::forall(fa::DynamicPolicy{GetParam()}, 0, n,
             [=](long i) { hp[i].fetch_add(1, std::memory_order_relaxed); });
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST_P(PolicyEquivalence, EmptyRangeRunsNothing) {
  std::atomic<int> count{0};
  auto* cp = &count;
  fa::forall(fa::DynamicPolicy{GetParam()}, 5, 5, [=](long) { ++*cp; });
  fa::forall(fa::DynamicPolicy{GetParam()}, 5, 3, [=](long) { ++*cp; });
  EXPECT_EQ(count.load(), 0);
}

TEST_P(PolicyEquivalence, NonZeroBeginRespected) {
  std::vector<int> seen;
  std::mutex mu;
  fa::forall(fa::DynamicPolicy{GetParam()}, 100, 110, [&](long i) {
    std::lock_guard lk(mu);
    seen.push_back(static_cast<int>(i));
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{100, 101, 102, 103, 104, 105, 106, 107,
                                    108, 109}));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyEquivalence,
    ::testing::Values(fa::PolicyKind::kSeq, fa::PolicyKind::kSimd,
                      fa::PolicyKind::kThreads, fa::PolicyKind::kSimGpu,
                      fa::PolicyKind::kIndirect),
    [](const auto& pi) { return to_string(pi.param); });

TEST(ForallStatic, TemplateSpellingMatchesRaja) {
  // The RAJA-style spelling from the paper's Fig. 5.
  std::vector<double> y(100, 1.0);
  double* yp = y.data();
  fa::forall<fa::seq_exec>(0, 100, [=](long i) { yp[i] += 1.0; });
  EXPECT_DOUBLE_EQ(y[50], 2.0);
}

TEST(Reduce, SumMatchesStd) {
  std::vector<double> v(5000);
  std::iota(v.begin(), v.end(), 1.0);
  const double* vp = v.data();
  const double want = std::accumulate(v.begin(), v.end(), 0.0);
  EXPECT_DOUBLE_EQ(
      (fa::forall_reduce_sum<fa::seq_exec>(0, 5000, [=](long i) { return vp[i]; })),
      want);
  EXPECT_DOUBLE_EQ((fa::forall_reduce_sum<fa::thread_exec>(
                       0, 5000, [=](long i) { return vp[i]; })),
                   want);
}

TEST(Reduce, MinAndMax) {
  std::vector<double> v{5, -2, 9, 0, 7.5, -2.5, 3};
  const double* vp = v.data();
  const long n = static_cast<long>(v.size());
  EXPECT_DOUBLE_EQ((fa::forall_reduce_min<fa::seq_exec>(
                       0, n, [=](long i) { return vp[i]; })),
                   -2.5);
  EXPECT_DOUBLE_EQ((fa::forall_reduce_max<fa::thread_exec>(
                       0, n, [=](long i) { return vp[i]; })),
                   9.0);
}

TEST(Reduce, EmptyRangeReturnsIdentity) {
  EXPECT_DOUBLE_EQ((fa::forall_reduce_sum<fa::seq_exec>(
                       0, 0, [](long) { return 1.0; })),
                   0.0);
  EXPECT_DOUBLE_EQ((fa::forall_reduce_min<fa::seq_exec>(
                       3, 3, [](long) { return 1.0; })),
                   std::numeric_limits<double>::max());
}

// Magnitude-staggered data: double addition over it is associative only on
// paper, so regrouping the combine changes the result's bits. The pre-fix
// `forall_reduce<thread_exec>` combined partials in lock-acquisition
// (completion) order and was nondeterministic run to run on exactly this
// kind of input. Mixed signs and exponents spanning ~2^80 make the chunk
// partials wildly different magnitudes, so their association order matters.
std::vector<double> fp_noncommutative_data(long n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::uint64_t s = 0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(n);
  for (auto& x : v) {
    s += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    const double mant = 1.0 + static_cast<double>(z >> 11) * 0x1.0p-53;
    const int exp = static_cast<int>(z % 81) - 40;
    x = std::ldexp((z & 128) != 0 ? -mant : mant, exp);
  }
  return v;
}

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(Reduce, ThreadSumIsBitwiseReproducible) {
  const long n = 100003;
  const auto v = fp_noncommutative_data(n);
  const double* vp = v.data();
  // A 4-worker pool regardless of the host's core count: the global pool on
  // a 1-core machine would have a single chunk and prove nothing.
  fa::ThreadPool pool(4);
  const auto reduce_once = [&] {
    return fa::detail::ordered_chunk_reduce(
        pool, 0, n, 0.0, [=](long i) { return vp[i]; },
        [](double a, double b) { return a + b; });
  };

  // The documented contract: partials combine in chunk-index order, so the
  // result equals the serial fold over chunk_spans...
  const auto spans = pool.chunk_spans(0, n);
  ASSERT_GT(spans.size(), 1u);
  double want = 0.0;
  for (const auto& [b, e] : spans) {
    double partial = 0.0;
    for (long i = b; i < e; ++i) partial += vp[i];
    want += partial;
  }
  const double first = reduce_once();
  EXPECT_EQ(bits_of(first), bits_of(want));

  // ...bitwise identically on every run, however the workers interleave.
  for (int run = 0; run < 50; ++run)
    ASSERT_EQ(bits_of(reduce_once()), bits_of(first)) << "run " << run;

  // Sanity that the input discriminates orderings at all: folding the same
  // partials back to front lands on different bits, so a completion-order
  // combine could not have passed the loop above by luck.
  double reversed = 0.0;
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    double partial = 0.0;
    for (long i = it->first; i < it->second; ++i) partial += vp[i];
    reversed += partial;
  }
  EXPECT_NE(bits_of(reversed), bits_of(first));
}

TEST(ThreadPool, ChunkSpansPartitionTheRangeInOrder) {
  fa::ThreadPool pool(4);
  for (const auto& [begin, end, grain] :
       {std::array<long, 3>{0, 1000, 1}, {0, 1000, 400}, {5, 8, 1},
        {0, 3, 1}, {100, 110, 8}, {0, 0, 1}, {7, 7, 3}}) {
    const auto spans = pool.chunk_spans(begin, end, grain);
    long expect_next = begin;
    for (const auto& [b, e] : spans) {
      EXPECT_EQ(b, expect_next);
      EXPECT_LT(b, e);
      expect_next = e;
    }
    EXPECT_EQ(expect_next, begin <= end ? end : begin);
    EXPECT_LE(spans.size(), 4u);
    if (grain > 1 && end > begin) {
      EXPECT_LE(spans.size(), static_cast<std::size_t>(
                                  std::max(1L, (end - begin) / grain)));
    }
  }
}

TEST(ThreadPool, ParallelForWithGrainVisitsEveryIndexOnce) {
  fa::ThreadPool pool(4);
  const long n = 4097;
  std::vector<std::atomic<int>> hits(n);
  for (long grain : {1L, 7L, 1024L, 8192L}) {
    for (auto& h : hits) h.store(0);
    pool.parallel_for(
        0, n,
        [&](long b, long e) {
          for (long i = b; i < e; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(
                1, std::memory_order_relaxed);
        },
        grain);
    for (long i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "i=" << i << " grain=" << grain;
    }
  }
}

TEST(ThreadPool, ParallelForIndexedReportsChunkSpansExactly) {
  fa::ThreadPool pool(3);
  const auto spans = pool.chunk_spans(10, 271, 16);
  std::vector<std::pair<long, long>> seen(spans.size(), {-1, -1});
  pool.parallel_for_indexed(
      10, 271,
      [&](std::size_t chunk, long b, long e) {
        seen[chunk] = {b, e};
      },
      16);
  EXPECT_EQ(seen, spans);
}

TEST(FunctionRef, InvokesCapturesWithoutAllocation) {
  int calls = 0;
  auto body = [&calls](long b, long e) { calls += static_cast<int>(e - b); };
  fa::FunctionRef<void(long, long)> ref = body;
  ref(0, 3);
  ref(3, 10);
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(fa::forall<fa::thread_exec>(0, 1000,
                                           [](long i) {
                                             if (i == 500)
                                               throw std::runtime_error("x");
                                           }),
               std::runtime_error);
  // Pool must stay usable afterwards.
  std::atomic<long> sum{0};
  fa::forall<fa::thread_exec>(0, 100, [&](long i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, WorkerCountPositive) {
  EXPECT_GE(fa::ThreadPool::global().worker_count(), 1u);
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(fa::ThreadPool{0}, std::invalid_argument);
}

TEST(ThreadPool, LargeIterationCount) {
  std::atomic<long> sum{0};
  fa::forall<fa::thread_exec>(0, 1'000'000, [&](long) {
    sum.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1'000'000);
}

TEST(DynamicPolicy, ArchSelectionMatchesPaperFig7) {
  using coop::memory::ExecutionTarget;
  // GPU-driving rank -> (simulated) CUDA policy.
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kGpuDevice, false).kind,
            fa::PolicyKind::kSimGpu);
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kGpuDevice, true).kind,
            fa::PolicyKind::kSimGpu);
  // CPU-only rank -> sequential; with the nvcc issue -> indirect dispatch.
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kCpuCore, false).kind,
            fa::PolicyKind::kSeq);
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kCpuCore, true).kind,
            fa::PolicyKind::kIndirect);
}

TEST(DynamicPolicy, PolicyNames) {
  EXPECT_STREQ(to_string(fa::PolicyKind::kSimGpu), "sim_gpu");
  EXPECT_STREQ(to_string(fa::PolicyKind::kIndirect), "indirect");
}

TEST(IndirectPolicy, SemanticallyIdenticalToSeq) {
  // The nvcc-issue emulation must be a pure pessimization: same results.
  std::vector<double> a(512, 1.0), b(512, 1.0);
  double* ap = a.data();
  double* bp = b.data();
  fa::forall<fa::seq_exec>(0, 512, [=](long i) { ap[i] = ap[i] * 3 + i; });
  fa::forall<fa::indirect_exec>(0, 512, [=](long i) { bp[i] = bp[i] * 3 + i; });
  EXPECT_EQ(a, b);
}

}  // namespace
