#pragma once

#include <type_traits>
#include <utility>

/// \file function_ref.hpp
/// Non-owning, trivially-copyable callable reference (a `std::function_ref`
/// stand-in until C++26). Two words: a type-erased object pointer and an
/// invoke thunk — no allocation, no virtual dispatch through a fat wrapper.
///
/// The referenced callable must outlive every invocation. That is exactly
/// the `ThreadPool::parallel_for` contract (the call blocks until all chunks
/// complete), which is why the pool takes its chunk body as a FunctionRef
/// instead of a `std::function`: the old signature paid a heap-allocating
/// `std::function` conversion on every loop launch, visible on tight
/// `forall<thread_exec>` loops.

namespace coop::forall {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = delete;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace coop::forall
