#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "coop/des/channel.hpp"
#include "coop/des/engine.hpp"
#include "coop/des/task.hpp"
#include "coop/devmodel/kernel_cost.hpp"
#include "coop/devmodel/specs.hpp"

/// \file gpu_server.hpp
/// Event-driven processor-sharing model of one GPU under MPS.
///
/// The analytic MPS formula (`gpu_kernel_exec_time_mps`) assumes all
/// co-resident kernels are equal and finish together. This server drops that
/// assumption: kernels arrive whenever their rank launches them, at most
/// `mps_max_resident` execute concurrently (the rest queue FIFO), and the
/// device's aggregate utilization — min(1, sum of per-kernel occupancies)
/// times coalescing and the MPS tax — is split among the resident kernels
/// in proportion to their single-stream efficiency. Arrivals and departures
/// re-apportion the rates, which is the classic generalized processor-
/// sharing construction, solved exactly event by event.
///
/// Used by the timed simulation as an opt-in higher-fidelity backend and by
/// tests to validate the analytic model in its symmetric regime.

namespace coop::devmodel {

class GpuServer {
 public:
  GpuServer(des::Engine& engine, GpuSpec spec)
      : engine_(engine), spec_(spec) {}
  GpuServer(const GpuServer&) = delete;
  GpuServer& operator=(const GpuServer&) = delete;

  /// Submits one kernel (roofline work of `work` over `zones` zones with
  /// innermost extent `nx`) and suspends the caller until it completes.
  /// `mps` selects shared execution; without MPS the device runs kernels
  /// one at a time (single context). When `drain_wait_s` is non-null it
  /// receives the kernel's queue-drain wait: actual latency minus the time
  /// the same kernel would have taken running alone on the device — the
  /// co-scheduling loss the wait-state analyzer attributes as "gpu-drain".
  [[nodiscard]] des::Task<void> execute(KernelWork work, double zones,
                                        double nx, bool mps,
                                        double* drain_wait_s = nullptr);

  [[nodiscard]] int resident() const noexcept {
    return static_cast<int>(active_.size());
  }
  [[nodiscard]] std::uint64_t kernels_completed() const noexcept {
    return completed_;
  }
  /// Summed queue-drain wait over all completed kernels.
  [[nodiscard]] double drain_wait_total_s() const noexcept {
    return drain_wait_total_;
  }

 private:
  struct Job {
    std::uint64_t id;
    double remaining_work;  ///< seconds of full-rate device time left
    double occupancy;       ///< occupancy efficiency (overlap CAN recover)
    double coalescing;      ///< memory efficiency (overlap CANNOT recover)
    double t_submit;        ///< submission time (for drain-wait accounting)
    double solo_s;          ///< service time if the job ran alone
    des::Channel<double>* done;  ///< completion delivers the drain wait
  };

  /// Advances `remaining_work` of all active jobs to the current time,
  /// reaps completed jobs, and promotes queued ones. Does NOT arm a wakeup:
  /// callers that are about to change the job set call this first, mutate,
  /// then `arm_wakeup()` once — spawning a wakeup before the mutation would
  /// just create a frame that the post-mutation arm immediately supersedes
  /// (the dominant per-kernel overhead in the submission burst pattern).
  void sync_to_now();
  /// Supersedes any pending wakeup and schedules the next completion.
  void arm_wakeup();
  /// `sync_to_now()` + `arm_wakeup()`: full re-apportioning at an event.
  void reschedule();
  des::Task<void> wakeup(std::uint64_t generation, double delay);
  /// Per-job drain rate: the device's occupancy pool min(1, sum occ_i) is
  /// split in proportion to occ_i; each job then pays its own coalescing
  /// factor and, under MPS, the sharing tax — the same composition as the
  /// analytic gpu_kernel_exec_time_mps, of which this is the asymmetric
  /// generalization.
  [[nodiscard]] double job_rate(const Job& j, double occ_sum) const;

  des::Engine& engine_;
  GpuSpec spec_;
  std::vector<Job> active_;
  std::vector<Job> queued_;
  double last_update_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
  double drain_wait_total_ = 0;
  std::uint64_t wake_generation_ = 0;
  bool mps_mode_ = true;
};

}  // namespace coop::devmodel
