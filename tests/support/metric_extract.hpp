#pragma once

#include <string>
#include <utility>
#include <vector>

#include "support/json_check.hpp"

/// \file metric_extract.hpp
/// Flattens a `coophet.run_report` JSON DOM into the ordered (name, value)
/// metric list the perf-baseline gate compares.
///
/// This is the DOM-side twin of `obs::analysis::report_metrics` (which reads
/// a live `RunReport`): the `compare_reports` CLI parses the checked-in
/// baseline and the freshly regenerated report with the strict parser, then
/// diffs the two flattened lists. The metric *names* produced here must stay
/// in lockstep with `report_metrics` — `tests/obs/test_analysis.cpp` locks
/// the correspondence.

namespace coophet_test::json {

using MetricList = std::vector<std::pair<std::string, double>>;

/// The comparable metrics of one run-report DOM, in schema order. Missing
/// or non-numeric fields are skipped (the comparison then reports them as
/// missing against a baseline that has them).
[[nodiscard]] inline MetricList extract_report_metrics(const Value& v) {
  MetricList m;
  auto top = [&](const char* key) {
    const Value* p = v.find(key);
    if (p != nullptr && p->is_number()) m.emplace_back(key, p->number);
  };
  top("makespan_s");
  top("imbalance_pct");
  top("mean_utilization_pct");
  top("cpu_fraction_final");
  if (const Value* flops = v.find("flops");
      flops != nullptr && flops->is_object()) {
    const Value* eff = flops->find("efficiency_pct");
    if (eff != nullptr && eff->is_number())
      m.emplace_back("flops_efficiency_pct", eff->number);
  }
  top("max_hetero_gain_pct");
  if (const Value* sweep = v.find("sweep");
      sweep != nullptr && sweep->is_array()) {
    for (const Value& row : sweep->array) {
      const Value* zones = row.find("zones");
      if (zones == nullptr || !zones->is_number()) continue;
      const std::string key =
          "sweep." + std::to_string(static_cast<long>(zones->number)) + ".";
      for (const char* t : {"t_default_s", "t_mps_s", "t_hetero_s"}) {
        const Value* p = row.find(t);
        if (p != nullptr && p->is_number()) m.emplace_back(key + t, p->number);
      }
    }
  }
  return m;
}

}  // namespace coophet_test::json
