#include "coop/obs/analysis/compare.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "coop/obs/run_report.hpp"

namespace coop::obs::analysis {

CompareResult compare_reports(
    const MetricMap& baseline, const MetricMap& current,
    const std::map<std::string, Tolerance>& tolerances, Tolerance fallback) {
  CompareResult out;
  for (const auto& [name, base] : baseline) {
    MetricCheck c;
    c.name = name;
    c.baseline = base;
    const auto tit = tolerances.find(name);
    c.tol = tit != tolerances.end() ? tit->second : fallback;

    const auto cit =
        std::find_if(current.begin(), current.end(),
                     [&](const auto& p) { return p.first == name; });
    if (cit == current.end()) {
      c.missing = true;
      c.ok = false;
    } else {
      c.current = cit->second;
      const double band =
          std::max(c.tol.abs, c.tol.rel * std::abs(c.baseline));
      c.ok = std::isfinite(c.current) &&
             std::abs(c.current - c.baseline) <= band;
    }
    if (!c.ok) ++out.failures;
    out.checks.push_back(std::move(c));
  }
  return out;
}

void CompareResult::write_table(std::ostream& os) const {
  const auto flags = os.flags();
  const auto prec = os.precision();
  os << "== Perf baseline comparison: " << checks.size() << " metrics, "
     << failures << " failure(s) ==\n";
  for (const MetricCheck& c : checks) {
    os << (c.ok ? "  ok   " : "  FAIL ") << std::left << std::setw(34)
       << c.name << std::right;
    if (c.missing) {
      os << " missing from current report\n";
      continue;
    }
    const double band = std::max(c.tol.abs, c.tol.rel * std::abs(c.baseline));
    os << " base " << std::setprecision(6) << c.baseline << "  cur "
       << c.current << "  |d| " << std::abs(c.current - c.baseline)
       << "  band " << band << '\n';
  }
  os.flags(flags);
  os.precision(prec);
}

MetricMap report_metrics(const RunReport& r) {
  MetricMap m;
  m.emplace_back("makespan_s", r.makespan_s);
  m.emplace_back("imbalance_pct", r.imbalance_pct);
  m.emplace_back("mean_utilization_pct", r.mean_utilization_pct);
  m.emplace_back("cpu_fraction_final", r.cpu_fraction_final);
  m.emplace_back("flops_efficiency_pct", r.flops_efficiency_pct);
  m.emplace_back("max_hetero_gain_pct", r.max_hetero_gain_pct);
  for (const SweepRow& row : r.sweep) {
    const std::string key = "sweep." + std::to_string(row.zones) + ".";
    m.emplace_back(key + "t_default_s", row.t_default);
    m.emplace_back(key + "t_mps_s", row.t_mps);
    m.emplace_back(key + "t_hetero_s", row.t_hetero);
  }
  return m;
}

}  // namespace coop::obs::analysis
