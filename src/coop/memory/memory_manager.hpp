#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include "coop/memory/allocator.hpp"
#include "coop/memory/device_pool.hpp"
#include "coop/memory/host_allocator.hpp"

/// \file memory_manager.hpp
/// Per-rank memory manager implementing the paper's Fig. 8 placement table:
///
///   context      | rank executes on CPU core | rank offloads to GPU
///   -------------+---------------------------+---------------------------
///   control code | malloc                    | malloc
///   mesh data    | malloc                    | cudaMallocManaged (unified)
///   temporary    | malloc                    | cudaMalloc via cnmem pool
///
/// The paper further notes that libraries compiled for CUDA tended to grab
/// GPU memory even in processes that never use the GPU, and that touching
/// GPU memory from CPU-only ranks degraded performance; `MemoryManager`
/// enforces that isolation (CPU-only ranks cannot allocate device/unified
/// memory).

namespace coop::memory {

/// Where a rank executes its kernels.
enum class ExecutionTarget {
  kCpuCore,    ///< kernels run on the owning CPU core
  kGpuDevice,  ///< kernels are offloaded to a GPU
};

[[nodiscard]] constexpr const char* to_string(ExecutionTarget t) noexcept {
  return t == ExecutionTarget::kCpuCore ? "cpu" : "gpu";
}

class MemoryManager;

/// Move-only typed array owned by a MemoryManager.
template <typename T>
class Buffer {
 public:
  Buffer() noexcept = default;
  Buffer(MemoryManager* mm, AllocationContext ctx, T* data, std::size_t count)
      : mm_(mm), ctx_(ctx), data_(data), count_(count) {}
  Buffer(Buffer&& o) noexcept
      : mm_(std::exchange(o.mm_, nullptr)), ctx_(o.ctx_),
        data_(std::exchange(o.data_, nullptr)),
        count_(std::exchange(o.count_, 0)) {}
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      reset();
      mm_ = std::exchange(o.mm_, nullptr);
      ctx_ = o.ctx_;
      data_ = std::exchange(o.data_, nullptr);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer() { reset(); }

  void reset();

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::span<T> span() noexcept { return {data_, count_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, count_};
  }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  MemoryManager* mm_ = nullptr;
  AllocationContext ctx_ = AllocationContext::kControlCode;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

class MemoryManager {
 public:
  struct Config {
    ExecutionTarget target = ExecutionTarget::kCpuCore;
    std::size_t host_capacity = std::size_t{8} << 30;    ///< per-rank share
    std::size_t device_capacity = std::size_t{12} << 30; ///< GPU global mem
    std::size_t pool_capacity = std::size_t{2} << 30;    ///< temp-data pool
    /// Enforce the paper's isolation rule: CPU-only ranks must never touch
    /// GPU memory (throws std::logic_error on violation).
    bool strict_cpu_isolation = true;
  };

  explicit MemoryManager(const Config& cfg);

  /// Allocates `bytes` in the space Fig. 8 prescribes for (target, context).
  [[nodiscard]] void* allocate(AllocationContext ctx, std::size_t bytes);
  void deallocate(AllocationContext ctx, void* p);

  /// Typed convenience: value-initialized array of `count` T.
  template <typename T>
  [[nodiscard]] Buffer<T> make_buffer(AllocationContext ctx,
                                      std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "pool buffers must be trivially destructible");
    T* p = static_cast<T*>(allocate(ctx, count * sizeof(T)));
    for (std::size_t i = 0; i < count; ++i) new (p + i) T{};
    return Buffer<T>(this, ctx, p, count);
  }

  /// The space Fig. 8 maps this (target, context) pair to.
  [[nodiscard]] MemorySpace space_for(AllocationContext ctx) const noexcept;

  /// Direct space access, modelling third-party libraries that allocate in
  /// an explicit space regardless of context. Subject to the isolation rule.
  [[nodiscard]] void* allocate_in(MemorySpace space, std::size_t bytes);
  void deallocate_in(MemorySpace space, void* p);

  [[nodiscard]] ExecutionTarget target() const noexcept { return target_; }
  [[nodiscard]] const Allocator& host() const noexcept { return host_; }
  [[nodiscard]] const Allocator& unified() const noexcept { return unified_; }
  [[nodiscard]] const Allocator& pool() const noexcept { return pool_; }

 private:
  [[nodiscard]] Allocator& allocator_for(MemorySpace space);

  ExecutionTarget target_;
  bool strict_cpu_isolation_;
  HostAllocator host_;
  UnifiedAllocator unified_;
  DevicePool pool_;
};

template <typename T>
void Buffer<T>::reset() {
  if (mm_ != nullptr && data_ != nullptr) {
    mm_->deallocate(ctx_, data_);
  }
  mm_ = nullptr;
  data_ = nullptr;
  count_ = 0;
}

}  // namespace coop::memory
