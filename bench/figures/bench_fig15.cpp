/// Figure 15 of the paper: vary x-dimension (y=360, z=320).
///
/// Paper features: small x -> MPS overlap wins; y=360 allows a better CPU
/// carve than Fig. 13 (floor 3.3%), so Heterogeneous improves; the memory
/// threshold hampers Default at the top of the range.
///
/// Sweep definition, driver, and analytics live in coop_sweeps
/// (src/coop/sweeps/figure_sweeps.hpp); the qualitative claims are locked
/// by tests/curves/test_figure_shapes.cpp.

#include "coop/sweeps/figure_sweeps.hpp"

int main() {
  coop::sweeps::run_figure_bench(15);
  return 0;
}
