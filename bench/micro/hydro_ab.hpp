#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <ctime>
#include <vector>

#include "coop/forall/dynamic_policy.hpp"
#include "coop/hydro/solver.hpp"
#include "coop/memory/memory_manager.hpp"
#include "hydro/reference_solver.hpp"

/// \file hydro_ab.hpp
/// Shared best-of-N interleaved A/B measurement of the hydro step:
/// seed layout (seven independent Array3D fields, per-cell double flux
/// evaluation — `tests/hydro/reference_solver.hpp`, frozen) versus the
/// production SoA face-sweep `Solver`.
///
/// Used by both `bench/micro/bench_hydro_kernels.cpp` (standalone, emits
/// BENCH_hydro_kernels.json) and `tools/bench_harness.cpp` (publishes the
/// same gauges into BENCH_harness.json and enforces the speedup floor in
/// the CI perf-baselines job).
///
/// Measurement scheme — the same one the harness's overhead gates use:
/// process *CPU* seconds (preemption-immune; wall clock on a shared runner
/// carries tens of percent of scheduler noise), back-to-back A/B pairs with
/// the order alternated to cancel warm-cache bias, and the gate reads the
/// BEST pair ratio: a genuine speedup is present in every pair, while noise
/// — which can only deflate a pair's ratio by inflating one side — needs
/// just one quiet pair to be factored out. The median is reported alongside
/// for visibility. Before any timing, both solvers run in lockstep and
/// every conserved field plus dt must agree BITWISE (the equivalence
/// contract of test_soa_equivalence.cpp); a layout change that altered the
/// arithmetic would make the comparison meaningless.

namespace coop::hydro::ab {

struct AbConfig {
  // Fig. 18's smallest sweep point is 100x480x160 zones; the default keeps
  // its x extent and 3:1 transverse aspect at 1/5 the y/z resolution so a
  // CI container finishes in seconds. Override via the bench's env knobs
  // to run the full-size point on real hardware.
  long nx = 100, ny = 96, nz = 32;
  int steps = 2;  ///< hydro steps per timed sample
  int reps = 9;   ///< A/B pairs; best and median of the per-pair ratios
  int check_steps = 3;  ///< lockstep bitwise-equivalence steps before timing
  bool passive_scalar = false;
};

struct AbResult {
  bool bitwise_identical = false;
  double seed_cpu_s = 0;       ///< best timed sample, CPU s per step
  double soa_cpu_s = 0;        ///< best timed sample, CPU s per step
  double speedup_best = 0;     ///< best per-pair ratio seed/soa
  double speedup_median = 0;   ///< median per-pair ratio
  std::uint64_t zones = 0;
};

inline double cpu_seconds_of(const auto& fn) {
  timespec t0{}, t1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t0);
  fn();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t1);
  return static_cast<double>(t1.tv_sec - t0.tv_sec) +
         1e-9 * static_cast<double>(t1.tv_nsec - t0.tv_nsec);
}

inline std::uint64_t double_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

inline bool fields_bitwise_equal(const mesh::Array3D<double>& a,
                                 const mesh::Array3D<double>& b,
                                 const mesh::Box& padded) {
  for (long k = padded.lo.z; k < padded.hi.z; ++k)
    for (long j = padded.lo.y; j < padded.hi.y; ++j)
      for (long i = padded.lo.x; i < padded.hi.x; ++i)
        if (double_bits(a(i, j, k)) != double_bits(b(i, j, k))) return false;
  return true;
}

/// One full hydro step, the unit both sides are timed on.
inline void step(auto& solver) {
  solver.apply_physical_boundaries();
  solver.compute_primitives();
  solver.advance(solver.local_dt());
}

inline AbResult run(const AbConfig& ab) {
  const auto make_mm = [] {
    memory::MemoryManager::Config c;
    c.target = memory::ExecutionTarget::kCpuCore;
    c.host_capacity = std::size_t{3} << 30;
    return memory::MemoryManager(c);
  };
  ProblemConfig cfg;
  cfg.global = mesh::Box{{0, 0, 0}, {ab.nx, ab.ny, ab.nz}};
  cfg.packages.passive_scalar = ab.passive_scalar;
  const forall::DynamicPolicy policy{forall::PolicyKind::kSimd};

  // Separate managers: each side owns its full mesh+temporary footprint.
  memory::MemoryManager mm_seed = make_mm();
  memory::MemoryManager mm_soa = make_mm();
  seedref::ReferenceSolver seed(mm_seed, cfg, cfg.global, policy);
  Solver soa(mm_soa, cfg, cfg.global, policy);
  seed.initialize();
  soa.initialize();

  AbResult r;
  r.zones = static_cast<std::uint64_t>(cfg.global.zones());

  // Lockstep equivalence: identical dt and conserved fields, bit for bit,
  // ghosts included, every step. Runs before timing so the measured
  // kernels are proven to do the same arithmetic.
  const mesh::Box padded = cfg.global.grown(1);
  r.bitwise_identical = true;
  for (int s = 0; s < ab.check_steps && r.bitwise_identical; ++s) {
    seed.apply_physical_boundaries();
    soa.apply_physical_boundaries();
    seed.compute_primitives();
    soa.compute_primitives();
    const double dts = seed.local_dt();
    if (double_bits(dts) != double_bits(soa.local_dt()))
      r.bitwise_identical = false;
    seed.advance(dts);
    soa.advance(dts);
    r.bitwise_identical =
        r.bitwise_identical &&
        fields_bitwise_equal(seed.rho, soa.state().rho, padded) &&
        fields_bitwise_equal(seed.mx, soa.state().mx, padded) &&
        fields_bitwise_equal(seed.my, soa.state().my, padded) &&
        fields_bitwise_equal(seed.mz, soa.state().mz, padded) &&
        fields_bitwise_equal(seed.ener, soa.state().ener, padded);
  }
  if (!r.bitwise_identical) return r;

  // Both sides keep evolving the same (bitwise-equal) trajectory, so after
  // any number of alternating samples they still run identical workloads.
  const auto seed_sample = [&] {
    return cpu_seconds_of([&] {
      for (int s = 0; s < ab.steps; ++s) step(seed);
    });
  };
  const auto soa_sample = [&] {
    return cpu_seconds_of([&] {
      for (int s = 0; s < ab.steps; ++s) step(soa);
    });
  };
  (void)seed_sample();  // warmup
  (void)soa_sample();

  double seed_best = 1e300, soa_best = 1e300;
  std::vector<double> ratios;
  for (int rep = 0; rep < ab.reps; ++rep) {
    double a, b;
    if (rep % 2 == 0) {
      a = seed_sample();
      b = soa_sample();
    } else {
      b = soa_sample();
      a = seed_sample();
    }
    seed_best = std::min(seed_best, a);
    soa_best = std::min(soa_best, b);
    if (b > 0.0) ratios.push_back(a / b);
  }
  const double per_step = 1.0 / static_cast<double>(ab.steps);
  r.seed_cpu_s = seed_best * per_step;
  r.soa_cpu_s = soa_best * per_step;
  r.speedup_best = *std::max_element(ratios.begin(), ratios.end());
  std::sort(ratios.begin(), ratios.end());
  const std::size_t n = ratios.size();
  r.speedup_median = n % 2 == 1
                         ? ratios[n / 2]
                         : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
  return r;
}

}  // namespace coop::hydro::ab
