/// sweep_resume — resumable, fault-tolerant figure-sweep runner.
///
/// Runs one paper figure's sweep under full supervision (typed errors,
/// retry/quarantine, watchdog budgets) with every completed cell journaled
/// crash-safely to --journal. Re-running the same command after a crash (or
/// a kill) resumes: journaled cells are restored bit-for-bit and only the
/// remaining cells run. The CI resilience job drives this binary through a
/// kill-and-resume script; the fault-injection flags below exist so that
/// script (and the tests) can manufacture crashes and poisoned cells on
/// demand.
///
///   sweep_resume --figure 18 --journal sweep.json [options]
///     --max-points N     subsample the sweep spec (reduced())
///     --timesteps N      timesteps per cell (default 4)
///     --jobs N           sweep fan-out width (default 1)
///     --poison P:MODE    make point P of MODE (default|mps|hetero) fail
///                        unrecoverably on every attempt
///     --exit-after N     _Exit(3) right after the Nth journal append —
///                        a simulated crash with the journal intact
///     --faults           attach the exemplar fault plan to every
///                        Heterogeneous cell (COOPHET_BENCH_FAULTS=1 too)
///     --metrics PATH     write the campaign metrics snapshot (atomic)
///     --flight-dir DIR   attach a flight recorder: quarantined cells dump
///                        DIR/flight_cell<id>.json, a simulated crash
///                        (--exit-after) dumps DIR/flight_kill.json before
///                        _Exit, and a completed run drains the full log to
///                        DIR/flight_sweep.json
///
/// Prints machine-parseable `key=value` summary lines (cells_total,
/// resumed, retries, quarantined, failed_cells). Exit 0 when the campaign
/// completed — quarantined cells included: partial results are the point —
/// and 2 on usage/config errors.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coop/core/sim_error.hpp"
#include "coop/obs/artifact_io.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/service/sweep_journal.hpp"
#include "coop/sweeps/figure_sweeps.hpp"

namespace {

using coop::core::NodeMode;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --figure N --journal PATH [--max-points N] "
               "[--timesteps N] [--jobs N] [--poison P:MODE] "
               "[--exit-after N] [--faults] [--metrics PATH] "
               "[--flight-dir DIR] [--telemetry PATH]\n",
               argv0);
  std::exit(2);
}

NodeMode parse_mode(const std::string& s, const char* argv0) {
  if (s == "default") return NodeMode::kOneRankPerGpu;
  if (s == "mps") return NodeMode::kMpsPerGpu;
  if (s == "hetero") return NodeMode::kHeterogeneous;
  std::fprintf(stderr, "sweep_resume: bad mode \"%s\"\n", s.c_str());
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int figure = 0;
  std::string journal_path;
  std::string metrics_path;
  std::string flight_dir;
  std::string telemetry_path;
  std::size_t max_points = 0;
  int timesteps = 4;
  int jobs = 1;
  long poison_point = -1;
  NodeMode poison_mode = NodeMode::kHeterogeneous;
  long exit_after = 0;
  bool with_faults = false;
  if (const char* env = std::getenv("COOPHET_BENCH_FAULTS"))
    with_faults = env[0] == '1';

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--figure") {
      figure = std::atoi(next());
    } else if (arg == "--journal") {
      journal_path = next();
    } else if (arg == "--max-points") {
      max_points = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--timesteps") {
      timesteps = std::atoi(next());
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--poison") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) usage(argv[0]);
      poison_point = std::atol(spec.substr(0, colon).c_str());
      poison_mode = parse_mode(spec.substr(colon + 1), argv[0]);
    } else if (arg == "--exit-after") {
      exit_after = std::atol(next());
    } else if (arg == "--faults") {
      with_faults = true;
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--flight-dir") {
      flight_dir = next();
    } else if (arg == "--telemetry") {
      telemetry_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (figure == 0 || journal_path.empty()) usage(argv[0]);

  try {
    namespace sweeps = coop::sweeps;
    sweeps::FigureSpec spec = sweeps::figure_spec(figure);
    if (max_points >= 2) spec = sweeps::reduced(spec, max_points);

    const coop::fault::FaultPlan fault_plan = sweeps::exemplar_fault_plan();
    coop::obs::MetricsRegistry metrics;
    coop::obs::log::FlightRecorder flight;
    coop::obs::telemetry::TelemetrySampler telemetry(
        sweeps::telemetry_defaults::sweep_telemetry_config());
    sweeps::SweepOptions options;
    options.timesteps = timesteps;
    options.jobs = jobs;
    options.metrics = &metrics;
    if (with_faults) options.hetero_faults = &fault_plan;
    if (!flight_dir.empty()) {
      options.flight = &flight;
      options.flight_dump_dir = flight_dir;
    }
    if (!telemetry_path.empty()) options.telemetry = &telemetry;

    coop::service::SweepJournal journal(journal_path, spec, options);
    const std::size_t journaled_before = journal.size();
    journal.bind(options);

    // The simulated crash rides on the journal append: by the time the
    // counter trips, the Nth cell's rename has completed, so the journal
    // on disk holds exactly N more cells than we started with.
    std::atomic<long> appended{0};
    if (exit_after > 0) {
      options.on_cell_complete =
          [&journal, &appended, exit_after, &flight,
           &flight_dir](const sweeps::SweepCellRecord& rec) {
            journal.record(rec);
            if (appended.fetch_add(1) + 1 >= exit_after) {
              // Black-box dump before the hard exit: the kill is exactly the
              // situation the flight recorder exists for.
              if (!flight_dir.empty()) {
                try {
                  flight.dump_crash(flight_dir + "/flight_kill.json",
                                    "simulated_kill");
                } catch (const coop::obs::IoError&) {
                  // Best effort — the simulated crash proceeds regardless.
                }
              }
              std::printf("exiting after %ld journal appends (simulated "
                          "crash)\n",
                          exit_after);
              std::fflush(stdout);
              std::_Exit(3);
            }
          };
    }
    if (poison_point >= 0) {
      options.cell_hook = [poison_point, poison_mode](std::size_t point,
                                                      NodeMode mode, int) {
        if (static_cast<long>(point) == poison_point && mode == poison_mode)
          coop::core::throw_sim_error(
              coop::core::SimErrorKind::kFaultUnrecoverable,
              "sweep_resume: injected poison cell");
      };
    }

    const auto curves = sweeps::run_figure_sweep(spec, options);

    std::printf("campaign=%s\n", journal.campaign().c_str());
    std::printf("cells_total=%d\n", curves.supervision.cells_total);
    std::printf("resumed=%zu\n", journaled_before);
    std::printf("resume_hits=%d\n", curves.supervision.resume_hits);
    std::printf("retries=%d\n", curves.supervision.retries);
    std::printf("quarantined=%d\n", curves.supervision.quarantined);
    std::printf("failed_cells=%zu\n", curves.failed_cells.size());
    for (const auto& f : curves.failed_cells)
      std::printf("failed_cell point=%zu mode=%s kind=%s attempts=%d: %s\n",
                  f.point, coop::core::to_string(f.mode),
                  coop::core::to_string(f.error.kind), f.attempts,
                  f.error.context.c_str());
    std::printf("journal=%s cells=%zu\n", journal.path().c_str(),
                journal.size());

    if (!metrics_path.empty()) {
      coop::obs::atomic_write_file(metrics_path, [&](std::ostream& os) {
        metrics.write_json(os, 0.0);
        os << '\n';
      });
      std::printf("metrics=%s\n", metrics_path.c_str());
    }
    if (!telemetry_path.empty()) {
      coop::obs::atomic_write_file(telemetry_path, [&](std::ostream& os) {
        telemetry.write_json(os);
        os << '\n';
      });
      std::printf("telemetry=%s windows=%zu alerts=%zu\n",
                  telemetry_path.c_str(), telemetry.windows().size(),
                  telemetry.alerts().size());
    }
    if (!flight_dir.empty()) {
      const std::string path = flight_dir + "/flight_sweep.json";
      const auto drained = flight.drain();
      coop::obs::atomic_write_file(path, [&](std::ostream& os) {
        flight.write_flight_log(os, drained, "sweep_complete");
      });
      std::printf("flight_log=%s events=%zu dropped=%llu\n", path.c_str(),
                  drained.events.size(),
                  static_cast<unsigned long long>(drained.dropped));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_resume: %s\n", e.what());
    return 2;
  }
}
