#include <gtest/gtest.h>

#include "coop/core/timed_sim.hpp"

namespace core = coop::core;
using coop::mesh::Box;

namespace {

core::TimedConfig comm_heavy(core::NodeMode mode) {
  // y=160 makes MPS/Hetero rank slabs only 10 planes thick: halo planes are
  // ~20% of zones, so communication options become visible.
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = Box{{0, 0, 0}, {320, 160, 320}};
  tc.timesteps = 10;
  return tc;
}

TEST(GpuDirect, SpeedsUpGpuHeavyModes) {
  for (auto mode : {core::NodeMode::kOneRankPerGpu,
                    core::NodeMode::kMpsPerGpu}) {
    auto cfg = comm_heavy(mode);
    const double staged = core::run_timed(cfg).makespan;
    cfg.gpu_direct = true;
    const double direct = core::run_timed(cfg).makespan;
    EXPECT_LT(direct, staged) << to_string(mode);
  }
}

TEST(GpuDirect, NoEffectOnCpuOnly) {
  auto cfg = comm_heavy(core::NodeMode::kCpuOnly);
  const double staged = core::run_timed(cfg).makespan;
  cfg.gpu_direct = true;
  EXPECT_DOUBLE_EQ(core::run_timed(cfg).makespan, staged);
}

TEST(GpuDirect, HeteroOnlyGpuPairsBenefit) {
  // In the heterogeneous mode only GPU<->GPU messages take the peer link;
  // the CPU slabs' messages still stage through the host, so the gain is
  // smaller than in the all-GPU MPS mode (relative to total comm).
  auto het = comm_heavy(core::NodeMode::kHeterogeneous);
  const double het_staged = core::run_timed(het).makespan;
  het.gpu_direct = true;
  const double het_direct = core::run_timed(het).makespan;
  EXPECT_LE(het_direct, het_staged);
}

TEST(OverlapHalo, NeverSlower) {
  for (auto mode : {core::NodeMode::kOneRankPerGpu, core::NodeMode::kMpsPerGpu,
                    core::NodeMode::kHeterogeneous}) {
    auto cfg = comm_heavy(mode);
    const double plain = core::run_timed(cfg).makespan;
    cfg.overlap_halo = true;
    const double overlapped = core::run_timed(cfg).makespan;
    EXPECT_LE(overlapped, plain + 1e-9) << to_string(mode);
  }
}

TEST(OverlapHalo, HidesWireTimeWhenCommMatters) {
  auto cfg = comm_heavy(core::NodeMode::kMpsPerGpu);
  const double plain = core::run_timed(cfg).makespan;
  cfg.overlap_halo = true;
  const double overlapped = core::run_timed(cfg).makespan;
  // The halo message for a 320x320 plane is ~6.5 MB -> ~1.1 ms on the
  // staged link; interior compute is far longer, so overlap should recover
  // most of it.
  EXPECT_LT(overlapped, plain);
}

TEST(OverlapHalo, ComposesWithGpuDirect) {
  auto cfg = comm_heavy(core::NodeMode::kMpsPerGpu);
  const double base = core::run_timed(cfg).makespan;
  cfg.overlap_halo = true;
  cfg.gpu_direct = true;
  const double both = core::run_timed(cfg).makespan;
  EXPECT_LT(both, base);
}

TEST(FutureOptions, HeadlineResultUnchangedByDefault) {
  // Defaults must keep the paper's configuration: no GPU-direct, no overlap.
  const core::TimedConfig tc;
  EXPECT_FALSE(tc.gpu_direct);
  EXPECT_FALSE(tc.overlap_halo);
}

}  // namespace
