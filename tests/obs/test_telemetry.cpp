#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/telemetry/sampler.hpp"
#include "coop/obs/telemetry/slo.hpp"
#include "support/json_check.hpp"

namespace obs = coop::obs;
namespace tel = coop::obs::telemetry;
namespace flog = coop::obs::log;
namespace cj = coophet_test::json;

namespace {

tel::SloSpec availability_slo(double objective = 0.99) {
  tel::SloSpec s;
  s.name = "availability";
  s.kind = tel::SloSpec::Kind::kAvailability;
  s.objective = objective;
  s.total_metric = "req";
  s.bad_metric = "err";
  return s;
}

// --- window mechanics -------------------------------------------------------

TEST(TelemetrySampler, TickClosesCrossedWindowsAndAttributesDeltas) {
  tel::TelemetryConfig cfg;
  cfg.window_width = 10.0;
  tel::TelemetrySampler ts(cfg);

  ts.metrics().counter("req").add(4);
  ts.tick(5.0);  // still inside window 0: nothing closes
  EXPECT_TRUE(ts.windows().empty());

  ts.metrics().counter("req").add(2);
  ts.tick(10.0);  // boundary reached: window 0 = [0, 10) closes
  ASSERT_EQ(ts.windows().size(), 1u);
  EXPECT_EQ(ts.windows()[0].index, 0u);
  EXPECT_DOUBLE_EQ(ts.windows()[0].axis_start, 0.0);
  EXPECT_DOUBLE_EQ(ts.windows()[0].axis_end, 10.0);
  ASSERT_EQ(ts.windows()[0].delta.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.windows()[0].delta.samples[0].value, 6.0);

  // One tick crossing several boundaries: everything since the previous
  // close lands in the *first* window closed by the tick, the later
  // crossings close as empty windows, and the partially-entered window
  // [30, 40) stays open — deterministic attribution.
  ts.metrics().counter("req").add(7);
  ts.tick(35.0);
  ASSERT_EQ(ts.windows().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.windows()[1].delta.samples[0].value, 7.0);
  EXPECT_DOUBLE_EQ(ts.windows()[2].delta.samples[0].value, 0.0);
  EXPECT_EQ(ts.windows_closed(), 3u);
}

TEST(TelemetrySampler, FlushClosesPartialFinalWindow) {
  tel::TelemetryConfig cfg;
  cfg.window_width = 10.0;
  tel::TelemetrySampler ts(cfg);
  ts.metrics().counter("req").add(3);
  ts.flush(7.5);  // partial window [0, 7.5)
  ASSERT_EQ(ts.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(ts.windows()[0].axis_end, 7.5);
  EXPECT_DOUBLE_EQ(ts.windows()[0].delta.samples[0].value, 3.0);
  // Flush with no further axis progress is a no-op.
  ts.flush(7.5);
  EXPECT_EQ(ts.windows().size(), 1u);
}

TEST(TelemetrySampler, RingDropsOldestBeyondCapacity) {
  tel::TelemetryConfig cfg;
  cfg.window_width = 1.0;
  cfg.max_windows = 3;
  tel::TelemetrySampler ts(cfg);
  ts.tick(5.0);  // closes windows 0..4
  EXPECT_EQ(ts.windows().size(), 3u);
  EXPECT_EQ(ts.windows()[0].index, 2u);  // 0 and 1 dropped
  EXPECT_EQ(ts.windows_closed(), 5u);
  EXPECT_EQ(ts.windows_dropped(), 2u);
}

// --- SLO / burn-rate math ---------------------------------------------------

TEST(Slo, BurnThresholdMatchesWorkbookConstruction) {
  const auto rules = tel::default_burn_rules();
  ASSERT_EQ(rules.size(), 2u);
  // fast: 5% of budget in 2 windows of a 100-window period -> 2.5
  EXPECT_DOUBLE_EQ(rules[0].threshold(100), 2.5);
  // slow: 1% of budget in 8 windows -> 0.125
  EXPECT_DOUBLE_EQ(rules[1].threshold(100), 0.125);
}

TEST(Slo, EvalAvailabilityWindow) {
  obs::MetricsRegistry reg;
  reg.counter("req").add(200);
  reg.counter("err").add(4);
  const auto snap = reg.snapshot(0.0);
  const auto stat = tel::eval_slo_window(availability_slo(0.99), snap);
  EXPECT_DOUBLE_EQ(stat.total, 200.0);
  EXPECT_DOUBLE_EQ(stat.bad, 4.0);
  // burn = (4/200) / 0.01 = 2 (1 - objective is inexact in binary)
  EXPECT_NEAR(stat.burn, 2.0, 1e-9);
}

TEST(Slo, EvalLatencyWindowCountsBucketsAboveThresholdAsBad) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // good (bucket <= 10)
  h.observe(5.0);    // good
  h.observe(50.0);   // bad (bucket bound 100 > 10)
  h.observe(1e6);    // bad (overflow is always bad)
  tel::SloSpec s;
  s.name = "latency";
  s.kind = tel::SloSpec::Kind::kLatency;
  s.objective = 0.5;
  s.latency_metric = "lat";
  s.latency_threshold = 10.0;
  const auto stat = tel::eval_slo_window(s, reg.snapshot(0.0));
  EXPECT_DOUBLE_EQ(stat.total, 4.0);
  EXPECT_DOUBLE_EQ(stat.bad, 2.0);
  EXPECT_DOUBLE_EQ(stat.burn, 1.0);  // (2/4) / (1 - 0.5)
}

TEST(Slo, PooledBurnSpansTrailingWindows) {
  std::vector<tel::SloWindowStat> stats = {
      {0.0, 100.0, 0.0},  // clean window
      {10.0, 100.0, 0.0},  // bad window
  };
  // Pooled over both: (10/200)/0.01 = 5; over the last 1: (10/100)/0.01 = 10.
  EXPECT_NEAR(tel::pooled_burn(stats, 2, 0.99), 5.0, 1e-9);
  EXPECT_NEAR(tel::pooled_burn(stats, 1, 0.99), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(tel::pooled_burn({}, 2, 0.99), 0.0);
}

// --- burn-rate alerting -----------------------------------------------------

TEST(TelemetrySampler, ErrorBurstFiresFastRuleAtPinnedWindowAndResolves) {
  tel::TelemetryConfig cfg;
  cfg.window_width = 100.0;  // 100 requests per window
  cfg.period_windows = 100;
  cfg.slos = {availability_slo(0.99)};
  tel::TelemetrySampler ts(cfg);

  // Window 0: clean traffic.
  ts.metrics().counter("req").add(100);
  ts.tick(100.0);
  EXPECT_TRUE(ts.alerts().empty());

  // Window 1: synthetic error burst — 100% errors, burn = 100 >= 2.5. The
  // fast rule pools over (long=2, short=1) trailing windows; both ranges
  // include the burst, so the alert edge lands exactly in window 1.
  ts.metrics().counter("req").add(100);
  ts.metrics().counter("err").add(100);
  ts.tick(200.0);
  ASSERT_GE(ts.alerts().size(), 1u);
  const tel::SloAlert& a = ts.alerts()[0];
  EXPECT_EQ(a.window, 1u);
  EXPECT_EQ(a.slo, "availability");
  EXPECT_EQ(a.rule, "fast");
  EXPECT_TRUE(a.fired);
  EXPECT_DOUBLE_EQ(a.threshold, 2.5);
  EXPECT_NEAR(a.burn_short, 100.0, 1e-6);

  // The slow rule fired too (burn over 8 trailing windows is 50 >= 0.125).
  ASSERT_EQ(ts.alerts().size(), 2u);
  EXPECT_EQ(ts.alerts()[1].rule, "slow");

  // Two clean windows: the fast rule's 1-window confirmation range is the
  // fast reset — it clears on the first clean window — and the resolve edge
  // is emitted exactly once (edge-triggered, not level).
  ts.metrics().counter("req").add(100);
  ts.tick(300.0);
  ts.metrics().counter("req").add(100);
  ts.tick(400.0);
  bool fast_resolved = false;
  for (const auto& al : ts.alerts())
    if (al.rule == "fast" && !al.fired) {
      EXPECT_FALSE(fast_resolved);
      fast_resolved = true;
      EXPECT_EQ(al.window, 2u);  // short range [w2] is burst-free
    }
  EXPECT_TRUE(fast_resolved);
}

TEST(TelemetrySampler, AlertsLandInFlightRecorderAsTelemetryComponent) {
  flog::FlightRecorder recorder;
  tel::TelemetryConfig cfg;
  cfg.window_width = 10.0;
  cfg.slos = {availability_slo(0.99)};
  cfg.flight = &recorder;
  tel::TelemetrySampler ts(cfg);
  ts.metrics().counter("req").add(10);
  ts.metrics().counter("err").add(10);
  ts.tick(10.0);

  const auto drained = recorder.drain();
  bool saw_window = false, saw_page = false;
  for (const auto& ev : drained.events) {
    EXPECT_EQ(ev.component, flog::Component::kTelemetry);
    EXPECT_EQ(ev.cid, tel::kTelemetryCid);
    if (ev.name == "telemetry:window") saw_window = true;
    if (ev.name == "alert:availability" &&
        ev.severity == flog::Severity::kError) {
      // The fast (paging) rule carries kError; the slow rule rides along
      // at kWarn.
      saw_page = true;
      bool saw_kv_window = false;
      for (const auto& [k, v] : ev.kv)
        if (k == "window") {
          saw_kv_window = true;
          EXPECT_DOUBLE_EQ(v, 0.0);
        }
      EXPECT_TRUE(saw_kv_window);
    }
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_page);
}

// --- artifact ---------------------------------------------------------------

std::string artifact_of(tel::TelemetrySampler& ts) {
  std::ostringstream os;
  ts.write_json(os);
  return os.str();
}

void drive_exemplar(tel::TelemetrySampler& ts) {
  for (int w = 0; w < 3; ++w) {
    ts.metrics().counter("req").add(50);
    if (w == 1) ts.metrics().counter("err").add(50);
    ts.metrics().gauge("depth").set(static_cast<double>(w));
    ts.metrics()
        .histogram("work", {1.0, 10.0, 100.0})
        .observe(w == 2 ? 50.0 : 5.0);
    ts.tick(10.0 * (w + 1));
  }
  ts.metrics().counter("req").add(5);
  ts.flush(35.0);
}

tel::TelemetryConfig exemplar_config() {
  tel::TelemetryConfig cfg;
  cfg.axis = "requests";
  cfg.window_width = 10.0;
  cfg.slos = {availability_slo(0.99)};
  return cfg;
}

TEST(TelemetryArtifact, IsStrictJsonWithRegisteredSchemaAndExpectedKeys) {
  tel::TelemetrySampler ts(exemplar_config());
  drive_exemplar(ts);
  const std::string text = artifact_of(ts);
  const auto r = cj::parse(text);
  ASSERT_TRUE(r.ok) << r.error << " at " << r.offset;
  EXPECT_EQ(cj::check_artifact_schema(r.value, "coophet.telemetry"), "");
  EXPECT_EQ(cj::first_missing_key(
                r.value, {"axis", "window_width", "period_windows",
                          "windows_closed", "windows_dropped", "windows",
                          "series", "slos", "alerts"}),
            "");
  const auto* windows = r.value.find("windows");
  ASSERT_TRUE(windows->is_array());
  EXPECT_EQ(windows->array.size(), 4u);  // 3 full + 1 partial

  // Every series array is exactly windows() long, zero-padded for windows
  // that predate the series.
  const auto* series = r.value.find("series");
  ASSERT_TRUE(series->is_array());
  ASSERT_EQ(series->array.size(), 4u);  // depth, err, req, work
  for (const auto& s : series->array) {
    EXPECT_EQ(cj::first_missing_key(s, {"name", "kind", "labels"}), "");
    const std::string kind = s.find("kind")->str;
    const char* key = kind == "histogram" ? "counts"
                      : kind == "counter" ? "deltas"
                                          : "values";
    ASSERT_NE(s.find(key), nullptr) << s.find("name")->str;
    EXPECT_EQ(s.find(key)->array.size(), 4u) << s.find("name")->str;
  }
  // The err counter was born in window 1: window 0 must be zero-padded.
  for (const auto& s : series->array)
    if (s.find("name")->str == "err") {
      EXPECT_DOUBLE_EQ(s.find("deltas")->array[0].number, 0.0);
      EXPECT_DOUBLE_EQ(s.find("deltas")->array[1].number, 50.0);
      // rate = delta / window span
      EXPECT_DOUBLE_EQ(s.find("rates")->array[1].number, 5.0);
    }
  // Histogram quantiles: window 2's single 50.0 observation lands in the
  // 100-bound bucket, so every quantile reports that bucket's bound.
  for (const auto& s : series->array)
    if (s.find("name")->str == "work") {
      EXPECT_DOUBLE_EQ(s.find("p99")->array[2].number, 100.0);
    }

  // SLO block: burst window burn = (50/50)/0.01 = 100; alert fired there.
  const auto* slos = r.value.find("slos");
  ASSERT_EQ(slos->array.size(), 1u);
  EXPECT_NEAR(slos->array[0].find("burn")->array[1].number, 100.0, 1e-6);
  const auto* alerts = r.value.find("alerts");
  ASSERT_GE(alerts->array.size(), 1u);
  EXPECT_DOUBLE_EQ(alerts->array[0].find("window")->number, 1.0);
  EXPECT_TRUE(alerts->array[0].find("fired")->boolean);
}

TEST(TelemetryArtifact, ByteIdenticalAcrossIdenticalRuns) {
  tel::TelemetrySampler a(exemplar_config());
  tel::TelemetrySampler b(exemplar_config());
  drive_exemplar(a);
  drive_exemplar(b);
  EXPECT_EQ(artifact_of(a), artifact_of(b));
}

TEST(TelemetryArtifact, PrometheusTextExposesCumulativeState) {
  tel::TelemetrySampler ts(exemplar_config());
  drive_exemplar(ts);
  std::ostringstream os;
  ts.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE req counter"), std::string::npos);
  EXPECT_NE(text.find("req 155"), std::string::npos);  // 3*50 + 5
  EXPECT_NE(text.find("# TYPE work histogram"), std::string::npos);
  EXPECT_NE(text.find("work_bucket{le=\"1\"}"), std::string::npos);
  EXPECT_NE(text.find("work_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("work_count 3"), std::string::npos);
}

// --- validation -------------------------------------------------------------

TEST(TelemetryConfig, ValidatesWindowAndSloShape) {
  tel::TelemetryConfig cfg;
  cfg.window_width = 0.0;
  EXPECT_THROW(tel::TelemetrySampler{cfg}, std::invalid_argument);
  cfg.window_width = 1.0;
  cfg.max_windows = 0;
  EXPECT_THROW(tel::TelemetrySampler{cfg}, std::invalid_argument);
  cfg.max_windows = 16;
  tel::SloSpec bad = availability_slo();
  bad.objective = 1.0;  // budget would be zero
  cfg.slos = {bad};
  EXPECT_THROW(tel::TelemetrySampler{cfg}, std::invalid_argument);
  bad.objective = 0.99;
  bad.total_metric.clear();  // availability needs both counters
  cfg.slos = {bad};
  EXPECT_THROW(tel::TelemetrySampler{cfg}, std::invalid_argument);
  tel::BurnRateRule r;
  r.short_windows = 4;
  r.long_windows = 2;  // confirmation window longer than the main one
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

}  // namespace
