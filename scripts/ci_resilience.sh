#!/usr/bin/env bash
# Kill-and-resume drill for the fault-tolerant sweep pipeline (DESIGN.md 11),
# run by the CI `resilience` job against a built tree:
#
#   scripts/ci_resilience.sh <build-dir> <out-dir>
#
# 1. Clean reference: a reduced fault-heavy Fig 18 campaign journaled to
#    journal_clean.json.
# 2. Crash: the same campaign killed (exit 3 via --exit-after) after 4
#    journal appends; the partial journal must already lint as
#    coophet.sweep_journal v1.
# 3. Resume: re-running the command must resume exactly 4 cells from the
#    journal, re-run zero completed cells, and leave a journal byte-identical
#    to the clean reference (`cmp`).
# 4. Poison: a campaign with one unrecoverably failing cell must still
#    complete (exit 0), quarantine exactly that cell, and journal the
#    other 8.
# The crashed and poisoned runs also fly with the flight recorder
# (--flight-dir): the kill must leave a crash dump (flight_kill.json) and
# the quarantine a cid-scoped dump (flight_cell5.json) whose filtered
# events show the quarantine decision — both must lint as
# coophet.flight_log v1. The clean and poisoned runs also carry a windowed
# telemetry sampler (--telemetry): the clean artifact must fire no
# quarantine-rate alert, the poisoned one must show the quarantine burn-rate
# alert in `telemetry_report`, and both must lint as coophet.telemetry v1.
# Every artifact lands in <out-dir> for upload.

set -euo pipefail

BUILD_DIR=${1:?usage: ci_resilience.sh <build-dir> <out-dir>}
OUT_DIR=${2:?usage: ci_resilience.sh <build-dir> <out-dir>}
# The script cd's into OUT_DIR below, so a relative build dir must be
# resolved first.
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)
SWEEP_RESUME="$BUILD_DIR/tools/sweep_resume"
JSON_LINT="$BUILD_DIR/tests/json_lint"
FLIGHT_LOG="$BUILD_DIR/tools/flight_log"
TELEMETRY_REPORT="$BUILD_DIR/tools/telemetry_report"
# A reduced fault-heavy Fig 18 campaign: 3 points x 3 modes = 9 cells, with
# the exemplar fault plan on every heterogeneous cell.
ARGS=(--figure 18 --max-points 3 --timesteps 4)
export COOPHET_BENCH_FAULTS=1

mkdir -p "$OUT_DIR"
cd "$OUT_DIR"
rm -f journal_clean.json journal_crash.json journal_poison.json \
  metrics_clean.json metrics_poison.json resilience_summary.txt \
  flight_kill.json flight_cell5.json flight_sweep.json \
  telemetry_clean.json telemetry_poison.json

expect_line() {  # expect_line <file> <literal-line>
  if ! grep -qxF -- "$2" "$1"; then
    echo "FAIL: expected \"$2\" in $1:" >&2
    cat "$1" >&2
    exit 1
  fi
}

echo "== 1. clean reference campaign =="
"$SWEEP_RESUME" "${ARGS[@]}" --journal journal_clean.json \
  --metrics metrics_clean.json --telemetry telemetry_clean.json | tee clean.out
expect_line clean.out "cells_total=9"
expect_line clean.out "quarantined=0"
expect_line clean.out "journal=journal_clean.json cells=9"
# 9 cells at 3 cells/window = 3 windows; a clean campaign must not trip the
# quarantine-rate SLO.
"$TELEMETRY_REPORT" telemetry_clean.json --alerts-only | tee telemetry_clean.out
if grep -q "slo=quarantine-rate" telemetry_clean.out; then
  echo "FAIL: clean campaign fired a quarantine-rate alert" >&2
  exit 1
fi

echo "== 2. campaign killed after 4 journal appends =="
set +e
"$SWEEP_RESUME" "${ARGS[@]}" --journal journal_crash.json \
  --exit-after 4 --flight-dir . | tee crash.out
crash_rc=$?
set -e
if [ "$crash_rc" -ne 3 ]; then
  echo "FAIL: simulated crash exited $crash_rc, expected 3" >&2
  exit 1
fi
"$JSON_LINT" --schema coophet.sweep_journal journal_crash.json
if [ ! -f flight_kill.json ]; then
  echo "FAIL: simulated kill left no flight_kill.json crash dump" >&2
  exit 1
fi
"$JSON_LINT" --schema coophet.flight_log flight_kill.json
echo "kill left a schema-valid flight-recorder crash dump"

echo "== 3. resumed campaign re-runs zero completed cells =="
"$SWEEP_RESUME" "${ARGS[@]}" --journal journal_crash.json | tee resume.out
expect_line resume.out "resumed=4"
expect_line resume.out "resume_hits=4"
expect_line resume.out "quarantined=0"
if ! cmp journal_clean.json journal_crash.json; then
  echo "FAIL: resumed journal differs from the clean reference" >&2
  exit 1
fi
echo "resumed journal is byte-identical to the clean reference"

echo "== 4. poisoned cell is quarantined, campaign still completes =="
"$SWEEP_RESUME" "${ARGS[@]}" --journal journal_poison.json \
  --poison 1:hetero --metrics metrics_poison.json --flight-dir . \
  --telemetry telemetry_poison.json | tee poison.out
expect_line poison.out "failed_cells=1"
expect_line poison.out "quarantined=1"
expect_line poison.out "journal=journal_poison.json cells=8"
grep -q "failed_cell point=1 mode=heterogeneous kind=fault_unrecoverable" \
  poison.out
# Cell (point 1, hetero) is cell 5 / correlation id 6; the quarantine must
# have dumped a cid-scoped crash dump whose events name the decision.
if [ ! -f flight_cell5.json ]; then
  echo "FAIL: quarantine left no flight_cell5.json crash dump" >&2
  exit 1
fi
"$FLIGHT_LOG" flight_cell5.json --cid 6 | tee flight_cell5.out
grep -q "cell:quarantine" flight_cell5.out
grep -q "cell:attempt" flight_cell5.out
echo "quarantine dump carries the cell's attempt + quarantine events"
# The quarantined cell burns the quarantine-rate SLO budget; the burn-rate
# alerter must fire, pinned to the window holding canonical cell 5.
"$TELEMETRY_REPORT" telemetry_poison.json --alerts-only | tee telemetry_poison.out
if ! grep "slo=quarantine-rate" telemetry_poison.out | grep -q "fired=1"; then
  echo "FAIL: poisoned campaign fired no quarantine-rate alert" >&2
  exit 1
fi
echo "quarantine-rate burn alert fired in the poisoned campaign"

echo "== 5. lint every emitted artifact =="
"$JSON_LINT" --schema coophet.sweep_journal journal_clean.json \
  journal_crash.json journal_poison.json
"$JSON_LINT" --schema coophet.metrics metrics_clean.json metrics_poison.json
"$JSON_LINT" --schema coophet.flight_log flight_kill.json flight_cell5.json \
  flight_sweep.json
"$JSON_LINT" --schema coophet.telemetry telemetry_clean.json \
  telemetry_poison.json

{
  echo "# ci_resilience summary"
  echo "## clean"; cat clean.out
  echo "## crash (exit $crash_rc)"; cat crash.out
  echo "## resume"; cat resume.out
  echo "## poison"; cat poison.out
  echo "## quarantine flight dump (cid 6)"; cat flight_cell5.out
  echo "## telemetry alert timelines"; cat telemetry_clean.out telemetry_poison.out
} > resilience_summary.txt
echo "ci_resilience: all checks passed"
