#include "coop/core/trace.hpp"

#include <set>
#include <string>

#include "coop/obs/trace.hpp"

namespace coop::core {

double TraceRecorder::total_time(int rank, Phase phase) const {
  double t = 0;
  for (const auto& s : spans_)
    if (s.rank == rank && s.phase == phase) t += s.t_end - s.t_begin;
  return t;
}

void TraceRecorder::export_to(obs::Tracer& tracer) const {
  tracer.set_process_name(0, "timed_sim");
  std::set<int> ranks;
  for (const auto& s : spans_) {
    if (ranks.insert(s.rank).second)
      tracer.set_thread_name(0, s.rank, "rank " + std::to_string(s.rank));
    tracer.span(0, s.rank, to_string(s.phase),
                "step" + std::to_string(s.step), s.t_begin, s.t_end);
  }
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  // Thin adapter onto the unified tracer: same span layout as before, but
  // the exporter's fixed-precision timestamps survive long runs (the default
  // ostream 6-significant-digit formatting collapsed distinct microsecond
  // values past ~100 simulated seconds).
  obs::Tracer tracer;
  export_to(tracer);
  tracer.write_chrome_trace(os);
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "rank,step,phase,begin,end\n";
  for (const auto& s : spans_) {
    os << s.rank << ',' << s.step << ',' << to_string(s.phase) << ','
       << s.t_begin << ',' << s.t_end << '\n';
  }
}

}  // namespace coop::core
