#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "coop/forall/dynamic_policy.hpp"
#include "coop/forall/forall.hpp"

namespace fa = coop::forall;

namespace {

/// All policies must produce identical results for a data-parallel body.
class PolicyEquivalence : public ::testing::TestWithParam<fa::PolicyKind> {};

TEST_P(PolicyEquivalence, SaxpyMatchesReference) {
  const long n = 10000;
  std::vector<double> x(n), y(n), ref(n);
  for (long i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = 0.5 * static_cast<double>(i);
    y[static_cast<std::size_t>(i)] = static_cast<double>(i);
    ref[static_cast<std::size_t>(i)] =
        y[static_cast<std::size_t>(i)] + 2.0 * x[static_cast<std::size_t>(i)];
  }
  double* xp = x.data();
  double* yp = y.data();
  fa::forall(fa::DynamicPolicy{GetParam()}, 0, n,
             [=](long i) { yp[i] += 2.0 * xp[i]; });
  EXPECT_EQ(y, ref);
}

TEST_P(PolicyEquivalence, EveryIndexVisitedExactlyOnce) {
  const long n = 4097;
  std::vector<std::atomic<int>> hits(n);
  auto* hp = hits.data();
  fa::forall(fa::DynamicPolicy{GetParam()}, 0, n,
             [=](long i) { hp[i].fetch_add(1, std::memory_order_relaxed); });
  for (long i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST_P(PolicyEquivalence, EmptyRangeRunsNothing) {
  std::atomic<int> count{0};
  auto* cp = &count;
  fa::forall(fa::DynamicPolicy{GetParam()}, 5, 5, [=](long) { ++*cp; });
  fa::forall(fa::DynamicPolicy{GetParam()}, 5, 3, [=](long) { ++*cp; });
  EXPECT_EQ(count.load(), 0);
}

TEST_P(PolicyEquivalence, NonZeroBeginRespected) {
  std::vector<int> seen;
  std::mutex mu;
  fa::forall(fa::DynamicPolicy{GetParam()}, 100, 110, [&](long i) {
    std::lock_guard lk(mu);
    seen.push_back(static_cast<int>(i));
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{100, 101, 102, 103, 104, 105, 106, 107,
                                    108, 109}));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyEquivalence,
    ::testing::Values(fa::PolicyKind::kSeq, fa::PolicyKind::kSimd,
                      fa::PolicyKind::kThreads, fa::PolicyKind::kSimGpu,
                      fa::PolicyKind::kIndirect),
    [](const auto& pi) { return to_string(pi.param); });

TEST(ForallStatic, TemplateSpellingMatchesRaja) {
  // The RAJA-style spelling from the paper's Fig. 5.
  std::vector<double> y(100, 1.0);
  double* yp = y.data();
  fa::forall<fa::seq_exec>(0, 100, [=](long i) { yp[i] += 1.0; });
  EXPECT_DOUBLE_EQ(y[50], 2.0);
}

TEST(Reduce, SumMatchesStd) {
  std::vector<double> v(5000);
  std::iota(v.begin(), v.end(), 1.0);
  const double* vp = v.data();
  const double want = std::accumulate(v.begin(), v.end(), 0.0);
  EXPECT_DOUBLE_EQ(
      (fa::forall_reduce_sum<fa::seq_exec>(0, 5000, [=](long i) { return vp[i]; })),
      want);
  EXPECT_DOUBLE_EQ((fa::forall_reduce_sum<fa::thread_exec>(
                       0, 5000, [=](long i) { return vp[i]; })),
                   want);
}

TEST(Reduce, MinAndMax) {
  std::vector<double> v{5, -2, 9, 0, 7.5, -2.5, 3};
  const double* vp = v.data();
  const long n = static_cast<long>(v.size());
  EXPECT_DOUBLE_EQ((fa::forall_reduce_min<fa::seq_exec>(
                       0, n, [=](long i) { return vp[i]; })),
                   -2.5);
  EXPECT_DOUBLE_EQ((fa::forall_reduce_max<fa::thread_exec>(
                       0, n, [=](long i) { return vp[i]; })),
                   9.0);
}

TEST(Reduce, EmptyRangeReturnsIdentity) {
  EXPECT_DOUBLE_EQ((fa::forall_reduce_sum<fa::seq_exec>(
                       0, 0, [](long) { return 1.0; })),
                   0.0);
  EXPECT_DOUBLE_EQ((fa::forall_reduce_min<fa::seq_exec>(
                       3, 3, [](long) { return 1.0; })),
                   std::numeric_limits<double>::max());
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(fa::forall<fa::thread_exec>(0, 1000,
                                           [](long i) {
                                             if (i == 500)
                                               throw std::runtime_error("x");
                                           }),
               std::runtime_error);
  // Pool must stay usable afterwards.
  std::atomic<long> sum{0};
  fa::forall<fa::thread_exec>(0, 100, [&](long i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, WorkerCountPositive) {
  EXPECT_GE(fa::ThreadPool::global().worker_count(), 1u);
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(fa::ThreadPool{0}, std::invalid_argument);
}

TEST(ThreadPool, LargeIterationCount) {
  std::atomic<long> sum{0};
  fa::forall<fa::thread_exec>(0, 1'000'000, [&](long) {
    sum.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1'000'000);
}

TEST(DynamicPolicy, ArchSelectionMatchesPaperFig7) {
  using coop::memory::ExecutionTarget;
  // GPU-driving rank -> (simulated) CUDA policy.
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kGpuDevice, false).kind,
            fa::PolicyKind::kSimGpu);
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kGpuDevice, true).kind,
            fa::PolicyKind::kSimGpu);
  // CPU-only rank -> sequential; with the nvcc issue -> indirect dispatch.
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kCpuCore, false).kind,
            fa::PolicyKind::kSeq);
  EXPECT_EQ(fa::select_arch_policy(ExecutionTarget::kCpuCore, true).kind,
            fa::PolicyKind::kIndirect);
}

TEST(DynamicPolicy, PolicyNames) {
  EXPECT_STREQ(to_string(fa::PolicyKind::kSimGpu), "sim_gpu");
  EXPECT_STREQ(to_string(fa::PolicyKind::kIndirect), "indirect");
}

TEST(IndirectPolicy, SemanticallyIdenticalToSeq) {
  // The nvcc-issue emulation must be a pure pessimization: same results.
  std::vector<double> a(512, 1.0), b(512, 1.0);
  double* ap = a.data();
  double* bp = b.data();
  fa::forall<fa::seq_exec>(0, 512, [=](long i) { ap[i] = ap[i] * 3 + i; });
  fa::forall<fa::indirect_exec>(0, 512, [=](long i) { bp[i] = bp[i] * 3 + i; });
  EXPECT_EQ(a, b);
}

}  // namespace
