#include "coop/obs/telemetry/slo.hpp"

#include <algorithm>
#include <stdexcept>

namespace coop::obs::telemetry {

double BurnRateRule::threshold(std::size_t period_windows) const {
  return budget_fraction * static_cast<double>(period_windows) /
         static_cast<double>(long_windows);
}

void BurnRateRule::validate() const {
  if (label.empty())
    throw std::invalid_argument("BurnRateRule: label must be non-empty");
  if (!(budget_fraction > 0.0 && budget_fraction <= 1.0))
    throw std::invalid_argument(
        "BurnRateRule: budget_fraction must be in (0, 1]");
  if (long_windows == 0)
    throw std::invalid_argument("BurnRateRule: long_windows must be >= 1");
  if (short_windows == 0 || short_windows > long_windows)
    throw std::invalid_argument(
        "BurnRateRule: short_windows must be in [1, long_windows]");
}

std::vector<BurnRateRule> default_burn_rules() {
  BurnRateRule fast;
  fast.label = "fast";
  fast.budget_fraction = 0.05;
  fast.long_windows = 2;
  fast.short_windows = 1;
  fast.severity = log::Severity::kError;
  BurnRateRule slow;
  slow.label = "slow";
  slow.budget_fraction = 0.01;
  slow.long_windows = 8;
  slow.short_windows = 2;
  slow.severity = log::Severity::kWarn;
  return {fast, slow};
}

void SloSpec::validate() const {
  const auto bad = [this](const std::string& what) {
    throw std::invalid_argument("SloSpec '" + name + "': " + what);
  };
  if (name.empty())
    throw std::invalid_argument("SloSpec: name must be non-empty");
  if (!(objective > 0.0 && objective < 1.0))
    bad("objective must be in (0, 1)");
  if (kind == Kind::kAvailability) {
    if (total_metric.empty() || bad_metric.empty())
      bad("availability needs total_metric and bad_metric");
  } else {
    if (latency_metric.empty()) bad("latency needs latency_metric");
  }
  if (rules.empty()) bad("needs at least one burn-rate rule");
  for (const BurnRateRule& r : rules) r.validate();
}

const char* to_string(SloSpec::Kind k) noexcept {
  return k == SloSpec::Kind::kAvailability ? "availability" : "latency";
}

namespace {

const MetricsRegistry::Sample* find_sample(
    const MetricsRegistry::Snapshot& snap, const std::string& name,
    const Labels& labels) {
  // Snapshot samples are (name, labels)-sorted; linear scan is fine at the
  // handful-of-series scale telemetry windows carry.
  for (const auto& s : snap.samples)
    if (s.name == name && s.labels == labels) return &s;
  return nullptr;
}

}  // namespace

SloWindowStat eval_slo_window(const SloSpec& spec,
                              const MetricsRegistry::Snapshot& delta) {
  SloWindowStat stat;
  if (spec.kind == SloSpec::Kind::kAvailability) {
    if (const auto* t =
            find_sample(delta, spec.total_metric, spec.total_labels))
      stat.total = t->value;
    if (const auto* b = find_sample(delta, spec.bad_metric, spec.bad_labels))
      stat.bad = b->value;
  } else {
    if (const auto* h =
            find_sample(delta, spec.latency_metric, spec.latency_labels)) {
      stat.total = static_cast<double>(h->count);
      double good = 0.0;
      for (std::size_t i = 0; i < h->bucket_bounds.size(); ++i)
        if (h->bucket_bounds[i] <= spec.latency_threshold)
          good += static_cast<double>(h->bucket_counts[i]);
      stat.bad = stat.total - good;
    }
  }
  if (stat.total > 0.0)
    stat.burn = (stat.bad / stat.total) / (1.0 - spec.objective);
  return stat;
}

double pooled_burn(const std::vector<SloWindowStat>& stats,
                   std::size_t trailing, double objective) {
  const std::size_t n = std::min(trailing, stats.size());
  double bad = 0.0, total = 0.0;
  for (std::size_t i = stats.size() - n; i < stats.size(); ++i) {
    bad += stats[i].bad;
    total += stats[i].total;
  }
  if (total <= 0.0) return 0.0;
  return (bad / total) / (1.0 - objective);
}

}  // namespace coop::obs::telemetry
