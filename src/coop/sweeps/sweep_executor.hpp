#pragma once

#include <cstddef>

#include "coop/forall/function_ref.hpp"

/// \file sweep_executor.hpp
/// Worker-pool fan-out for embarrassingly-parallel sweep work.
///
/// Every figure reproduction, curve-lock test, and the CI perf-baselines
/// gate funnels through `run_figure_sweep`, whose (x, y, z, mode) points are
/// independent deterministic `core::run_timed` calls. The executor fans an
/// index space across a worker pool (`coop::forall::ThreadPool`) with a
/// dynamic cursor so expensive points don't serialize behind cheap ones;
/// callers collect results *by index*, which keeps parallel output bitwise
/// identical to the serial run regardless of completion order.
///
/// Concurrency resolution, in precedence order:
///   1. an explicit `jobs >= 1` passed by the caller,
///   2. the `COOPHET_SWEEP_JOBS` environment variable (>= 1),
///   3. `std::thread::hardware_concurrency()`.
/// `jobs == 1` runs inline on the calling thread — no pool, no handoff —
/// and is the bitwise-reference execution the determinism suite compares
/// against.

namespace coop::sweeps {

/// Resolves the effective worker count for a sweep fan-out (see file
/// comment). Always >= 1.
[[nodiscard]] int resolve_sweep_jobs(int requested = 0);

class SweepExecutor {
 public:
  /// `jobs` <= 0 resolves via `resolve_sweep_jobs`.
  explicit SweepExecutor(int jobs = 0);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Runs `fn(i)` for every i in [0, n). With more than one job, workers
  /// claim `grain` consecutive indices at a time from a shared atomic
  /// cursor, so callers that order their work items most-expensive-first
  /// get LPT-style balance. `fn` must be re-entrant: it is invoked
  /// concurrently for distinct indices and must not touch shared mutable
  /// state (distinct result slots are fine). The first exception thrown by
  /// any index is rethrown after all workers drain.
  void for_each_index(std::size_t n, forall::FunctionRef<void(std::size_t)> fn,
                      std::size_t grain = 1);

 private:
  int jobs_;
};

}  // namespace coop::sweeps
