/// Satellite regression: `obs::Tracer` under the parallel `SweepExecutor`.
/// `SweepObservability` hands each sweep point its own tracer, so concurrent
/// points must produce disjoint, well-formed counter tracks — no cross-point
/// bleed, no torn events. This file rides in test_service because CI's
/// sanitizer job runs exactly this binary under ThreadSanitizer, which is
/// where a data race between per-point tracers would surface.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "coop/obs/trace.hpp"
#include "coop/sweeps/figure_sweeps.hpp"
#include "support/json_check.hpp"

namespace sweeps = coop::sweeps;
namespace json = coophet_test::json;

namespace {

sweeps::FigureSpec fig18_reduced() {
  return sweeps::reduced(sweeps::figure_spec(18), 3);
}

std::string chrome_trace_of(const coop::obs::Tracer& tracer) {
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  return os.str();
}

}  // namespace

TEST(TracerParallel, ConcurrentPerPointTracersStayDisjointAndWellFormed) {
  // Parallel run: every point's heterogeneous cell traces into its own slot
  // while up to 4 cells execute concurrently.
  sweeps::SweepOptions options;
  options.timesteps = 4;
  options.jobs = 4;
  sweeps::SweepObservability parallel_obs;
  const sweeps::SweepCurves parallel_curves =
      sweeps::run_figure_sweep(fig18_reduced(), options, &parallel_obs);

  // Serial reference with identical config.
  options.jobs = 1;
  sweeps::SweepObservability serial_obs;
  const sweeps::SweepCurves serial_curves =
      sweeps::run_figure_sweep(fig18_reduced(), options, &serial_obs);

  ASSERT_EQ(parallel_obs.points.size(), serial_obs.points.size());
  ASSERT_GE(parallel_obs.points.size(), 3u);

  for (std::size_t i = 0; i < parallel_obs.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const std::string trace = chrome_trace_of(parallel_obs.points[i].tracer);

    // Well-formed: strict-parses and carries counter tracks.
    const json::ParseResult parsed = json::parse(trace);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const json::Value* events = parsed.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::set<std::string> counter_tracks;
    for (const json::Value& ev : events->array) {
      const json::Value* ph = ev.find("ph");
      const json::Value* name = ev.find("name");
      if (ph != nullptr && ph->is_string() && ph->str == "C" &&
          name != nullptr && name->is_string())
        counter_tracks.insert(name->str);
    }
    EXPECT_TRUE(counter_tracks.count("cpu_fraction"));
    EXPECT_TRUE(counter_tracks.count("des_queue_depth"));

    // Disjoint: the parallel run's per-point trace is byte-identical to the
    // serial run's — tracer events use simulated time only, so any
    // cross-point bleed or arrival-order dependence would break equality.
    EXPECT_EQ(trace, chrome_trace_of(serial_obs.points[i].tracer));
  }

  // And the curves themselves are unaffected by tracing or fan-out.
  ASSERT_EQ(parallel_curves.points.size(), serial_curves.points.size());
  for (std::size_t i = 0; i < parallel_curves.points.size(); ++i)
    EXPECT_EQ(parallel_curves.points[i].t_hetero,
              serial_curves.points[i].t_hetero);
}
