/// Flight-recorder core: lock-free recording into bounded per-thread rings,
/// deterministic (cid, seq) drain order, payload truncation limits, the
/// crash-dump policy (focused cid in full + per-ring recency tail), and the
/// byte-determinism contract of the coophet.flight_log artifact.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coop/obs/log/flight_recorder.hpp"
#include "support/json_check.hpp"

namespace log = coop::obs::log;
namespace json = coophet_test::json;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FlightRecorder, RecordAndDrainRoundTrips) {
  log::FlightRecorder rec;
  log::FlightWriter w = rec.writer(7);
  ASSERT_TRUE(w.attached());
  EXPECT_EQ(w.cid(), 7u);
  w.record(log::Severity::kInfo, log::Component::kSweep, 0.5, "cell:start",
           {{"point", 3.0}, {"mode", 2.0}});
  w.record(log::Severity::kError, log::Component::kRun, 1.25, "budget:sim_time");

  const auto d = rec.drain();
  EXPECT_EQ(d.dropped, 0u);
  ASSERT_EQ(d.events.size(), 2u);
  const log::FlightEvent& e0 = d.events[0];
  EXPECT_EQ(e0.cid, 7u);
  EXPECT_EQ(e0.seq, 0u);
  EXPECT_EQ(e0.sim_time, 0.5);
  EXPECT_EQ(e0.severity, log::Severity::kInfo);
  EXPECT_EQ(e0.component, log::Component::kSweep);
  EXPECT_EQ(e0.name, "cell:start");
  ASSERT_EQ(e0.kv.size(), 2u);
  EXPECT_EQ(e0.kv[0].first, "point");
  EXPECT_EQ(e0.kv[0].second, 3.0);
  EXPECT_EQ(e0.kv[1].first, "mode");
  EXPECT_EQ(e0.kv[1].second, 2.0);
  const log::FlightEvent& e1 = d.events[1];
  EXPECT_EQ(e1.seq, 1u);
  EXPECT_EQ(e1.severity, log::Severity::kError);
  EXPECT_EQ(e1.name, "budget:sim_time");
  EXPECT_TRUE(e1.kv.empty());
}

TEST(FlightRecorder, TruncatesOversizedPayloads) {
  log::FlightRecorder rec;
  log::FlightWriter w = rec.writer(1);
  w.record(log::Severity::kInfo, log::Component::kService, 0.0,
           "a-very-long-event-name-that-exceeds-the-slot",
           {{"longkeyname", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}, {"e", 5.0}});
  const auto d = rec.drain();
  ASSERT_EQ(d.events.size(), 1u);
  EXPECT_EQ(d.events[0].name, "a-very-long-event-name-t");  // hard 24-byte cap
  EXPECT_EQ(d.events[0].name.size(), 24u);
  ASSERT_EQ(d.events[0].kv.size(), 4u);                  // 5th pair dropped
  EXPECT_EQ(d.events[0].kv[0].first, "longkeyn");        // 8-byte key cap
  EXPECT_EQ(d.events[0].kv[3].first, "d");
  EXPECT_EQ(d.events[0].kv[3].second, 4.0);
}

TEST(FlightRecorder, BoundedRingKeepsNewestAndCountsDropped) {
  log::FlightRecorderConfig cfg;
  cfg.ring_capacity = 8;
  log::FlightRecorder rec(cfg);
  log::FlightWriter w = rec.writer(3);
  for (int i = 0; i < 20; ++i)
    w.record(log::Severity::kDebug, log::Component::kRun, 0.0, "e", {{"i", double(i)}});
  const auto d = rec.drain();
  EXPECT_EQ(d.dropped, 12u);
  ASSERT_EQ(d.events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(d.events[size_t(i)].seq, std::uint64_t(12 + i));
    EXPECT_EQ(d.events[size_t(i)].kv[0].second, double(12 + i));
  }
}

TEST(FlightRecorder, DetachedWriterIsANoOp) {
  log::FlightWriter w;
  EXPECT_FALSE(w.attached());
  w.record(log::Severity::kInfo, log::Component::kRun, 0.0, "ignored");  // must not crash
}

TEST(FlightRecorder, ZeroCapacityConfigIsRejected) {
  log::FlightRecorderConfig cfg;
  cfg.ring_capacity = 0;
  EXPECT_THROW(log::FlightRecorder rec(cfg), std::invalid_argument);
}

TEST(FlightRecorder, DrainSortsByCidThenSeqAcrossThreads) {
  log::FlightRecorder rec;
  // Two writer threads, distinct correlation ids, deliberately started in an
  // order the drain must not depend on.
  std::thread t2([&] {
    log::FlightWriter w = rec.writer(20);
    for (int i = 0; i < 3; ++i)
      w.record(log::Severity::kInfo, log::Component::kSweep, 0.0, "b");
  });
  t2.join();
  std::thread t1([&] {
    log::FlightWriter w = rec.writer(10);
    for (int i = 0; i < 3; ++i)
      w.record(log::Severity::kInfo, log::Component::kSweep, 0.0, "a");
  });
  t1.join();
  const auto d = rec.drain();
  ASSERT_EQ(d.events.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(d.events[size_t(i)].cid, 10u);
    EXPECT_EQ(d.events[size_t(i)].seq, std::uint64_t(i));
    EXPECT_EQ(d.events[size_t(i + 3)].cid, 20u);
    EXPECT_EQ(d.events[size_t(i + 3)].seq, std::uint64_t(i));
  }
}

TEST(FlightRecorder, ConcurrentRecordingAndDrainingIsSafe) {
  log::FlightRecorderConfig cfg;
  cfg.ring_capacity = 64;  // small: force wrap-around under the drains
  log::FlightRecorder rec(cfg);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  constexpr int kThreads = 4;
  constexpr int kEvents = 2000;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      log::FlightWriter w = rec.writer(log::CorrelationId(t + 1));
      for (int i = 0; i < kEvents; ++i)
        w.record(log::Severity::kDebug, log::Component::kRun, double(i), "spin",
                 {{"i", double(i)}});
    });
  }
  std::thread drainer([&] {
    while (!stop.load()) {
      const auto d = rec.drain();
      // Every decoded event must be internally consistent (seq echoes kv).
      for (const auto& ev : d.events) {
        ASSERT_GE(ev.cid, 1u);
        ASSERT_LE(ev.cid, std::uint64_t(kThreads));
        ASSERT_EQ(ev.kv.size(), 1u);
        ASSERT_EQ(ev.kv[0].second, double(ev.seq));
      }
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  drainer.join();
  const auto d = rec.drain();
  // Quiescent drain: per-ring events + dropped must account for every push.
  EXPECT_EQ(d.events.size() + d.dropped, std::size_t(kThreads) * kEvents);
  EXPECT_EQ(d.events.size(), std::size_t(kThreads) * cfg.ring_capacity);
}

TEST(FlightRecorder, ArtifactIsSchemaValidAndByteDeterministic) {
  auto run = [](log::FlightRecorder& rec) {
    log::FlightWriter w = rec.writer(42);
    w.record(log::Severity::kInfo, log::Component::kService, 0.0, "req:submit");
    w.record(log::Severity::kWarn, log::Component::kFault, 0.125, "inject:slowdown",
             {{"rank", 0.0}, {"factor", 50.0}});
    w.record(log::Severity::kError, log::Component::kRun, 0.25, "budget:sim_time");
    std::ostringstream os;
    rec.write_flight_log(os, rec.drain(), "unit_test", 42);
    return os.str();
  };
  log::FlightRecorder a, b;
  const std::string ja = run(a);
  const std::string jb = run(b);
  EXPECT_EQ(ja, jb) << "identical event streams must serialize identically";

  const json::ParseResult parsed = json::parse(ja);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(json::check_artifact_schema(parsed.value, log::FlightRecorder::kSchemaName), "");
  EXPECT_EQ(parsed.value.find("event_count")->number, 3.0);
  EXPECT_EQ(parsed.value.find("focus_cid")->number, 42.0);
  const json::Value* events = parsed.value.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);
  EXPECT_EQ(events->array[1].find("name")->str, "inject:slowdown");
  EXPECT_EQ(events->array[1].find("sev")->str, "warn");
  EXPECT_EQ(events->array[1].find("comp")->str, "fault");
  EXPECT_EQ(events->array[1].find("kv")->find("factor")->number, 50.0);
}

TEST(FlightRecorder, CrashDumpKeepsFocusInFullPlusRecencyTail) {
  log::FlightRecorderConfig cfg;
  cfg.ring_capacity = 256;
  cfg.crash_dump_last_n = 4;
  log::FlightRecorder rec(cfg);
  {
    // Focused request: recorded early, so a pure last-N policy would lose it.
    log::FlightWriter w = rec.writer(5);
    w.record(log::Severity::kInfo, log::Component::kAdmission, 0.0, "admission:admitted");
    w.record(log::Severity::kError, log::Component::kSweep, 0.0, "cell:quarantine");
  }
  {
    // 50 ambient events under another cid bury the focused ones.
    log::FlightWriter w = rec.writer(6);
    for (int i = 0; i < 50; ++i)
      w.record(log::Severity::kDebug, log::Component::kRun, 0.0, "noise");
  }
  const std::string path = "flight_test_dump.json";
  rec.dump_crash(path, "unit_test_crash", 5);
  const std::string body = slurp(path);
  std::remove(path.c_str());

  const json::ParseResult parsed = json::parse(body);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(json::check_artifact_schema(parsed.value, "coophet.flight_log"), "");
  const json::Value* events = parsed.value.find("events");
  ASSERT_NE(events, nullptr);
  // Both cid-5 events survive; ambient cid-6 noise is capped at last_n = 4.
  int focus_events = 0, ambient = 0;
  for (const auto& ev : events->array)
    (ev.find("cid")->number == 5.0 ? focus_events : ambient) += 1;
  EXPECT_EQ(focus_events, 2);
  EXPECT_EQ(ambient, 4);
  EXPECT_EQ(parsed.value.find("reason")->str, "unit_test_crash");
}

}  // namespace
