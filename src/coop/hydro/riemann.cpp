#include "coop/hydro/riemann.hpp"

#include <cmath>
#include <stdexcept>

namespace coop::hydro {

namespace {

/// f_K(p): velocity jump across the left or right wave as a function of the
/// star pressure (shock branch for p > p_K, rarefaction otherwise).
double wave_fn(double p, const RiemannState& s, double gamma) {
  const double a = std::sqrt(gamma * s.p / s.rho);
  if (p > s.p) {  // shock
    const double A = 2.0 / ((gamma + 1.0) * s.rho);
    const double B = (gamma - 1.0) / (gamma + 1.0) * s.p;
    return (p - s.p) * std::sqrt(A / (p + B));
  }
  // rarefaction
  return 2.0 * a / (gamma - 1.0) *
         (std::pow(p / s.p, (gamma - 1.0) / (2.0 * gamma)) - 1.0);
}

double wave_fn_deriv(double p, const RiemannState& s, double gamma) {
  const double a = std::sqrt(gamma * s.p / s.rho);
  if (p > s.p) {
    const double A = 2.0 / ((gamma + 1.0) * s.rho);
    const double B = (gamma - 1.0) / (gamma + 1.0) * s.p;
    return std::sqrt(A / (B + p)) * (1.0 - (p - s.p) / (2.0 * (B + p)));
  }
  return 1.0 / (s.rho * a) *
         std::pow(p / s.p, -(gamma + 1.0) / (2.0 * gamma));
}

}  // namespace

RiemannProblem::RiemannProblem(RiemannState left, RiemannState right,
                               IdealGas eos)
    : l_(left), r_(right), eos_(eos) {
  const double g = eos_.gamma;
  if (l_.rho <= 0 || r_.rho <= 0 || l_.p <= 0 || r_.p <= 0)
    throw std::invalid_argument("RiemannProblem: nonpositive state");
  // Two-rarefaction initial guess, then Newton on
  // f(p) = f_L(p) + f_R(p) + (u_R - u_L).
  const double al = std::sqrt(g * l_.p / l_.rho);
  const double ar = std::sqrt(g * r_.p / r_.rho);
  const double z = (g - 1.0) / (2.0 * g);
  double p = std::pow((al + ar - 0.5 * (g - 1.0) * (r_.u - l_.u)) /
                          (al / std::pow(l_.p, z) + ar / std::pow(r_.p, z)),
                      1.0 / z);
  p = std::max(p, 1e-14);
  for (int it = 0; it < 100; ++it) {
    const double f = wave_fn(p, l_, g) + wave_fn(p, r_, g) + (r_.u - l_.u);
    const double df = wave_fn_deriv(p, l_, g) + wave_fn_deriv(p, r_, g);
    const double p_new = std::max(1e-14, p - f / df);
    if (std::abs(p_new - p) < 1e-12 * (p_new + p)) {
      p = p_new;
      break;
    }
    p = p_new;
  }
  p_star_ = p;
  u_star_ = 0.5 * (l_.u + r_.u) +
            0.5 * (wave_fn(p, r_, g) - wave_fn(p, l_, g));
}

RiemannState RiemannProblem::sample(double xi) const {
  const double g = eos_.gamma;
  if (xi <= u_star_) {
    // Left of the contact.
    const RiemannState& s = l_;
    const double a = std::sqrt(g * s.p / s.rho);
    if (p_star_ > s.p) {  // left shock
      const double sl =
          s.u - a * std::sqrt((g + 1.0) / (2.0 * g) * p_star_ / s.p +
                              (g - 1.0) / (2.0 * g));
      if (xi < sl) return s;
      const double r = s.rho *
                       ((p_star_ / s.p + (g - 1.0) / (g + 1.0)) /
                        ((g - 1.0) / (g + 1.0) * p_star_ / s.p + 1.0));
      return {r, u_star_, p_star_};
    }
    // left rarefaction
    const double a_star = a * std::pow(p_star_ / s.p, (g - 1.0) / (2.0 * g));
    const double head = s.u - a;
    const double tail = u_star_ - a_star;
    if (xi < head) return s;
    if (xi > tail) {
      const double r = s.rho * std::pow(p_star_ / s.p, 1.0 / g);
      return {r, u_star_, p_star_};
    }
    // inside the fan
    const double u = 2.0 / (g + 1.0) * (a + (g - 1.0) / 2.0 * s.u + xi);
    const double af = 2.0 / (g + 1.0) * (a + (g - 1.0) / 2.0 * (s.u - xi));
    const double r = s.rho * std::pow(af / a, 2.0 / (g - 1.0));
    const double p = s.p * std::pow(af / a, 2.0 * g / (g - 1.0));
    return {r, u, p};
  }
  // Right of the contact (mirror).
  const RiemannState& s = r_;
  const double a = std::sqrt(g * s.p / s.rho);
  if (p_star_ > s.p) {  // right shock
    const double sr =
        s.u + a * std::sqrt((g + 1.0) / (2.0 * g) * p_star_ / s.p +
                            (g - 1.0) / (2.0 * g));
    if (xi > sr) return s;
    const double r = s.rho *
                     ((p_star_ / s.p + (g - 1.0) / (g + 1.0)) /
                      ((g - 1.0) / (g + 1.0) * p_star_ / s.p + 1.0));
    return {r, u_star_, p_star_};
  }
  // right rarefaction
  const double a_star = a * std::pow(p_star_ / s.p, (g - 1.0) / (2.0 * g));
  const double head = s.u + a;
  const double tail = u_star_ + a_star;
  if (xi > head) return s;
  if (xi < tail) {
    const double r = s.rho * std::pow(p_star_ / s.p, 1.0 / g);
    return {r, u_star_, p_star_};
  }
  const double u = 2.0 / (g + 1.0) * (-a + (g - 1.0) / 2.0 * s.u + xi);
  const double af = 2.0 / (g + 1.0) * (a - (g - 1.0) / 2.0 * (s.u - xi));
  const double r = s.rho * std::pow(af / a, 2.0 / (g - 1.0));
  const double p = s.p * std::pow(af / a, 2.0 * g / (g - 1.0));
  return {r, u, p};
}

}  // namespace coop::hydro
