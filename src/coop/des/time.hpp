#pragma once

#include <cstdint>

/// \file time.hpp
/// Simulated-time definitions for the discrete-event engine.

namespace coop::des {

/// Simulated time, in seconds. Double precision is sufficient: the engine
/// breaks ties deterministically with a sequence number, so exact equality of
/// event times never affects ordering correctness.
using SimTime = double;

/// Convenience literals-ish helpers (seconds are the base unit).
constexpr SimTime microseconds(double us) noexcept { return us * 1e-6; }
constexpr SimTime milliseconds(double ms) noexcept { return ms * 1e-3; }
constexpr SimTime seconds(double s) noexcept { return s; }

/// Monotone event sequence number used as the deterministic tie-breaker for
/// events scheduled at the same simulated time (FIFO among equals).
using EventSeq = std::uint64_t;

}  // namespace coop::des
