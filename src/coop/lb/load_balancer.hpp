#pragma once

#include <algorithm>

#include "coop/devmodel/kernel_cost.hpp"
#include "coop/devmodel/specs.hpp"
#include "coop/obs/metrics.hpp"

/// \file load_balancer.hpp
/// Heterogeneous CPU/GPU load balancing (paper 6.2).
///
/// The paper starts from a FLOPS-proportional guess of the CPU work share,
/// measures the respective contributions of CPU vs GPU, and adjusts the
/// split between iterations ("static within an iteration, but the
/// decomposition can be adjusted between iterations").

namespace coop::lb {

/// FLOPS/roofline-based initial guess of the zone fraction to give the CPU
/// ranks: both device kinds are rated at their roofline zone rate for the
/// aggregate kernel mix `work`, the CPU additionally derated by the nvcc
/// dispatch penalty (paper 5.1/6.2).
[[nodiscard]] double initial_cpu_fraction(const devmodel::NodeSpec& node,
                                          int cpu_ranks,
                                          devmodel::KernelWork work_per_step,
                                          double dispatch_penalty);

/// Measurement-driven corrector. After each iteration, feed the slowest GPU
/// and slowest CPU compute times; the balancer re-estimates per-fraction
/// processing rates and moves the split toward equalizing finish times,
/// with damping to avoid oscillation around the optimum.
class FeedbackBalancer {
 public:
  struct Config {
    double initial_fraction = 0.02;
    double min_fraction = 0.0;   ///< floor (decomposition granularity)
    double max_fraction = 0.5;
    double gain = 0.5;           ///< damping: 1 = jump straight to estimate
    double tolerance = 0.03;     ///< relative imbalance considered converged
  };

  explicit FeedbackBalancer(const Config& cfg) : cfg_(cfg) {
    fraction_ = std::clamp(cfg.initial_fraction, cfg.min_fraction,
                           cfg.max_fraction);
  }

  [[nodiscard]] double fraction() const noexcept { return fraction_; }

  /// Records the measured times of the slowest CPU rank and slowest GPU
  /// rank for the iteration just completed and updates the split.
  /// `actual_fraction` is the zone share the decomposition actually realized
  /// this iteration (plane quantization makes it differ from `fraction()`);
  /// pass a negative value to use the continuous target instead.
  void observe(double cpu_time, double gpu_time, double actual_fraction = -1);

  /// True once the last observed imbalance is within tolerance.
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  [[nodiscard]] int observations() const noexcept { return observations_; }
  /// |T_cpu - T_gpu| / max(T_cpu, T_gpu) of the last observation.
  [[nodiscard]] double last_imbalance() const noexcept { return imbalance_; }

  /// Publishes balancer state into `reg` on every `observe` call:
  /// gauge `lb.cpu_fraction`, histogram `lb.imbalance`, counter
  /// `lb.observations`. Pure observation; `reg` must outlive the balancer.
  void bind_metrics(obs::MetricsRegistry& reg);

 private:
  Config cfg_;
  double fraction_ = 0.02;
  double imbalance_ = 1.0;
  bool converged_ = false;
  int observations_ = 0;

  obs::MetricsRegistry::Gauge* m_fraction_ = nullptr;
  obs::MetricsRegistry::Histogram* m_imbalance_ = nullptr;
  obs::MetricsRegistry::Counter* m_observations_ = nullptr;
};

}  // namespace coop::lb
