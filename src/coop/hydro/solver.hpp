#pragma once

#include <atomic>
#include <cstdint>

#include "coop/forall/dynamic_policy.hpp"
#include "coop/forall/forall3d.hpp"
#include "coop/forall/kernel_timers.hpp"
#include "coop/hydro/eos.hpp"
#include "coop/hydro/packages.hpp"
#include "coop/hydro/state.hpp"
#include "coop/mesh/box.hpp"

/// \file solver.hpp
/// Single-rank compressible hydrodynamics solver (the ARES Sedov proxy).
///
/// First-order finite-volume method for the 3D Euler equations with a
/// Rusanov (local Lax-Friedrichs) flux and a gamma-law EOS on a fixed
/// Cartesian mesh — the Eulerian-hydro slice of what ARES exercises on the
/// Sedov blast-wave problem. Every loop runs through the RAJA-style
/// `forall` with a runtime-selected policy (paper Fig. 7), so the exact same
/// kernels execute on "CPU" and "GPU" ranks.
///
/// Boundary conditions are outflow (zero-gradient). Interior ghost planes
/// are filled by the driver via halo exchange between steps.

namespace coop::hydro {

/// Physical (global-domain) boundary handling.
enum class BoundaryCondition {
  kOutflow,     ///< zero-gradient: material may leave the domain
  kReflecting,  ///< rigid wall: mirrored state, zero mass/energy flux
};

/// Problem-wide configuration shared by all ranks.
struct ProblemConfig {
  mesh::Box global{};      ///< global zone index space
  double length = 1.0;     ///< physical edge length of the full domain (cube)
  IdealGas eos{};
  double cfl = 0.45;
  double rho0 = 1.0;       ///< ambient density
  double p0 = 1.0e-6;      ///< ambient pressure
  double blast_energy = 0.851072;  ///< Sedov E0, deposited at the center
  double blast_radius_zones = 1.8; ///< deposition radius, in zones
  PackageConfig packages{};        ///< optional multi-physics packages
  BoundaryCondition boundary = BoundaryCondition::kOutflow;

  [[nodiscard]] double dx() const noexcept {
    return length / static_cast<double>(global.nx());
  }
  [[nodiscard]] double dy() const noexcept {
    return length / static_cast<double>(global.ny());
  }
  [[nodiscard]] double dz() const noexcept {
    return length / static_cast<double>(global.nz());
  }
};

/// Zone-integrated diagnostics (this rank's owned zones only).
struct Diagnostics {
  double mass = 0;
  double total_energy = 0;
  double max_density = 0;
  double max_density_radius = 0;  ///< distance of the densest zone from the
                                  ///< domain center (shock-radius estimate)
  // Passive-scalar package (zero when disabled):
  double scalar_mass = 0;         ///< integral of rho*phi
  double scalar_min = 0;          ///< min concentration phi
  double scalar_max = 0;          ///< max concentration phi
};

/// Cache-blocking knobs for the face-sweep kernels. Results are bitwise
/// identical for every positive tile size (the blocked traversal partitions
/// the box exactly and each face flux is evaluated once regardless of
/// tiling); the knobs trade only locality. Nonpositive values are clamped
/// to 1.
struct SolverTuning {
  long tile_j = 8;      ///< y rows per tile (x sweep, apply, clears)
  long tile_k = 4;      ///< z planes per tile (x sweep, apply, clears)
  long sweep_tile = 8;  ///< cross-axis tile width for the y/z face sweeps
};

class Solver {
 public:
  /// Builds the state for `owned` (a subdomain of `cfg.global`) with one
  /// ghost layer; all kernels run under `policy`, blocked per `tuning`.
  Solver(memory::MemoryManager& mm, const ProblemConfig& cfg,
         const mesh::Box& owned, forall::DynamicPolicy policy,
         SolverTuning tuning = {});

  /// Sets the Sedov initial condition (ambient gas + central energy spike);
  /// each rank initializes exactly its owned zones.
  void initialize();

  /// Primitive state for custom initial conditions.
  struct Primitives {
    double rho, u, v, w, p;
  };

  /// General initial condition: `ic(x, y, z)` gives the primitive state at
  /// a zone center (physical coordinates). Used by the validation problems
  /// (Sod shock tube) and custom setups; ranks fill owned + ghost zones so
  /// the first step needs no prior exchange for interior-consistent ICs.
  template <typename Ic>
  void initialize_with(Ic&& ic) {
    auto* rho = &state_.rho;
    auto* mx = &state_.mx;
    auto* my = &state_.my;
    auto* mz = &state_.mz;
    auto* ener = &state_.ener;
    const double dx = cfg_.dx(), dy = cfg_.dy(), dz = cfg_.dz();
    const IdealGas eos = cfg_.eos;
    forall::forall_box(
        policy_, state_.owned.grown(state_.ghosts),
        [=](long i, long j, long k) {
          const Primitives s = ic((static_cast<double>(i) + 0.5) * dx,
                                  (static_cast<double>(j) + 0.5) * dy,
                                  (static_cast<double>(k) + 0.5) * dz);
          (*rho)(i, j, k) = s.rho;
          (*mx)(i, j, k) = s.rho * s.u;
          (*my)(i, j, k) = s.rho * s.v;
          (*mz)(i, j, k) = s.rho * s.w;
          (*ener)(i, j, k) = eos.total_energy(s.rho, s.u, s.v, s.w, s.p);
        });
    if (cfg_.packages.passive_scalar) {
      auto* scal = &state_.scal;
      forall::forall_box(policy_, state_.owned.grown(state_.ghosts),
                         [=](long i, long j, long k) {
                           (*scal)(i, j, k) = 0.0;
                         });
    }
  }

  /// Fills ghost zones on *physical* domain boundaries per the configured
  /// boundary condition (zero-gradient outflow, or reflecting walls with
  /// the normal momentum negated). Interior ghosts must already contain
  /// neighbor data.
  void apply_physical_boundaries();

  /// Computes primitives (pressure, sound speed) over owned+ghost zones.
  void compute_primitives();

  /// Advances conserved variables by `dt` (one unsplit Rusanov update).
  /// Enabled packages (scalar advection, diffusion) advance inside the
  /// same step, so multi-physics runs stay a single-phase bulk-synchronous
  /// loop as in ARES.
  void advance(double dt);

  /// This rank's stable timestep: hydro CFL over owned zones, further
  /// limited by the explicit-diffusion bound when that package is enabled.
  /// Combine across ranks with an allreduce-min.
  [[nodiscard]] double local_dt() const;

  [[nodiscard]] Diagnostics local_diagnostics() const;

  [[nodiscard]] HydroState& state() noexcept { return state_; }
  [[nodiscard]] const HydroState& state() const noexcept { return state_; }
  [[nodiscard]] const ProblemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] forall::DynamicPolicy policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] const SolverTuning& tuning() const noexcept {
    return tuning_;
  }

  /// Charges per-step work counts (`hydro.rusanov_faces`, and
  /// `hydro.scalar_mass_faces` with the mixing package) to `timers` at the
  /// end of every `advance`. Pass nullptr to detach.
  void bind_kernel_timers(forall::KernelTimerRegistry* timers) noexcept {
    timers_ = timers;
  }

  /// Rusanov flux evaluations performed by the LAST `advance` call. The
  /// face-sweep formulation computes each face exactly once, so this must
  /// equal `interior_face_count(owned)` — the seed per-cell formulation
  /// evaluated every interior face twice, and the operation-count tests pin
  /// that the redundancy cannot silently return.
  [[nodiscard]] std::uint64_t flux_face_evaluations() const noexcept {
    return flux_faces_.load(std::memory_order_relaxed);
  }
  /// Mass-flux evaluations of the last `advance`'s scalar sweep (zero when
  /// the package is off); also exactly one per face.
  [[nodiscard]] std::uint64_t scalar_mass_flux_evaluations() const noexcept {
    return mass_faces_.load(std::memory_order_relaxed);
  }
  /// Faces touched by one axis-sweep pass over `owned` (each axis sweeps
  /// the owned cells' low and high faces): (nx+1)*ny*nz + x-permutations.
  [[nodiscard]] static std::uint64_t interior_face_count(
      const mesh::Box& owned) noexcept;

 private:
  void accumulate_scalar_fluxes();
  void accumulate_diffusion_fluxes();

  ProblemConfig cfg_;
  forall::DynamicPolicy policy_;
  SolverTuning tuning_;
  HydroState state_;
  // Update scratch (temporary data): dU accumulators pooled in one SoA
  // block (MeshPlane order), with named views for the package kernels.
  mesh::FieldBlock du_block_;
  mesh::Array3D<double> d_rho_, d_mx_, d_my_, d_mz_, d_ener_;
  mesh::Array3D<double> d_scal_;  ///< scalar package accumulator
  mesh::Array3D<double> eint_;    ///< diffusion package: e_int incl. ghosts
  // Per-step operation counters (tiles add their row counts; relaxed is
  // enough — advance() joins every worker before reading).
  std::atomic<std::uint64_t> flux_faces_{0};
  std::atomic<std::uint64_t> mass_faces_{0};
  forall::KernelTimerRegistry* timers_ = nullptr;
};

/// Analytic Sedov-Taylor strong-shock radius at time t for a spherical blast
/// of energy E in a gamma=1.4 medium of density rho0:
/// R(t) = xi0 * (E t^2 / rho0)^(1/5), xi0 ~= 1.1527.
[[nodiscard]] double sedov_shock_radius(double energy, double rho0, double t,
                                        double gamma = 1.4);

}  // namespace coop::hydro
