#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

/// \file run_report.hpp
/// Machine-readable end-of-run performance report.
///
/// One `RunReport` summarizes one timed-simulation run (optionally plus the
/// figure sweep it anchors): per-rank utilization and phase breakdown,
/// load-imbalance percentage, top-N kernels, fault/recovery tallies, and
/// achieved-vs-model FLOPS. Two outputs from the same struct:
///
///  * `write_table`  — the human summary the bench binaries print;
///  * `write_json`   — a versioned schema ("coophet.run_report", version
///    below) written as `BENCH_<fig>.json` so per-PR perf trajectories are
///    diffable by machines, not eyeballs.
///
/// The struct is plain data; `core::build_run_report` fills it from a
/// `TimedResult` + `obs::Tracer`, and `sweeps::make_bench_artifacts` adds
/// the sweep rows. Bump `kRunReportSchemaVersion` on any key change.

namespace coop::obs {

inline constexpr const char* kRunReportSchemaName = "coophet.run_report";
/// v2: added the "sweep_resilience" object (campaign supervision tallies +
/// quarantined-cell rows). Readers of v1 fields are unaffected.
/// v3: roofline annotations — per-kernel "intensity_flops_per_byte" and
/// "roofline_frac_pct" in "top_kernels", and the same pair (catalog
/// aggregate) in the "flops" object. Readers of v1/v2 fields are
/// unaffected.
inline constexpr int kRunReportSchemaVersion = 3;

struct PhaseBreakdown {
  double compute_s = 0.0;
  double halo_wait_s = 0.0;
  double reduce_s = 0.0;
  double rebalance_s = 0.0;
};

struct RankReport {
  int rank = 0;
  std::string device;  ///< "gpu" | "cpu" (final decomposition target)
  long zones = 0;      ///< final decomposition (0 = retired rank)
  PhaseBreakdown phases;
  double utilization_pct = 0.0;  ///< compute_s / makespan * 100
};

struct KernelReport {
  std::string name;
  std::uint64_t calls = 0;
  double seconds = 0.0;  ///< summed simulated span time across ranks/steps
  // Roofline position (schema v3; zero when the kernel is not in the cost
  // catalog, e.g. the synthetic um-spill span):
  double intensity_flops_per_byte = 0.0;  ///< catalog arithmetic intensity
  /// min(peak, intensity * bandwidth) / peak on this run's device mix, % —
  /// the share of model peak the roofline permits at that intensity.
  double roofline_frac_pct = 0.0;
};

struct FaultReport {
  int injected = 0;
  int recovered = 0;
  int gpu_deaths = 0;
  int policy_flips = 0;
  int launch_retries = 0;
  int mps_restarts = 0;
  int halo_retransmits = 0;
  int pool_exhaustions = 0;
  int checkpoints_taken = 0;
  int rollbacks = 0;
  int replayed_iterations = 0;
  double retry_time_s = 0.0;
  double checkpoint_time_s = 0.0;
  double rework_time_s = 0.0;
};

struct SweepRow {
  long x = 0, y = 0, z = 0, zones = 0;
  double t_default = 0.0, t_mps = 0.0, t_hetero = 0.0;
  double hetero_cpu_share = 0.0;
};

/// One quarantined sweep cell (sweeps::SweepCurves::FailedCell, flattened
/// to plain strings so obs stays independent of the sweeps layer).
struct FailedCellReport {
  long point = -1;      ///< sweep point index
  std::string mode;     ///< core::to_string(NodeMode)
  std::string kind;     ///< core::to_string(SimErrorKind)
  std::string context;  ///< human error context
  int attempts = 0;
};

/// Campaign-supervision tallies of the sweep that produced this report.
struct SweepResilienceReport {
  int cells_total = 0;
  int cells_failed = 0;
  int retries = 0;
  int resume_hits = 0;
  std::vector<FailedCellReport> failed_cells;
};

struct RunReport {
  // Identity.
  std::string label;  ///< e.g. "Figure 18"
  std::string mode;   ///< core::to_string(NodeMode)
  int figure = 0;     ///< paper figure number, 0 = none

  // Configuration echo.
  long nx = 0, ny = 0, nz = 0;
  int timesteps = 0;
  int ranks = 0;
  int nodes = 1;

  // Totals.
  double makespan_s = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t halo_bytes = 0;

  // Load balancing.
  double cpu_fraction_final = 0.0;
  int lb_iterations_to_converge = -1;

  // Per-rank breakdown (empty when the run was not traced).
  std::vector<RankReport> per_rank;
  /// (max - mean)/max of per-rank compute totals over active ranks, %.
  double imbalance_pct = 0.0;
  double mean_utilization_pct = 0.0;
  double min_utilization_pct = 0.0;

  /// Top kernels by summed simulated time (already truncated to N).
  std::vector<KernelReport> top_kernels;

  FaultReport faults;

  // Achieved vs model FLOPS (useful zones only; replayed work excluded).
  double achieved_flops = 0.0;
  double model_peak_flops = 0.0;
  double flops_efficiency_pct = 0.0;
  // Catalog-aggregate roofline position (schema v3): the full hydro step's
  // flops/bytes intensity and the fraction of model peak the roofline
  // permits there — the ceiling flops_efficiency_pct should be read
  // against.
  double intensity_flops_per_byte = 0.0;
  double roofline_frac_pct = 0.0;

  /// Optional figure-sweep summary (the per-PR perf trajectory rows).
  std::vector<SweepRow> sweep;
  double max_hetero_gain_pct = 0.0;
  long gain_at_zones = 0;

  /// Sweep-pipeline resilience (schema v2; all-zero for clean campaigns).
  SweepResilienceReport sweep_resilience;

  void write_json(std::ostream& os) const;
  void write_table(std::ostream& os) const;
};

}  // namespace coop::obs
