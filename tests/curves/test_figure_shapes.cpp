#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "coop/sweeps/figure_sweeps.hpp"

/// Tier-2 curve-lock regression suite (label `tier2`, `ctest -L tier2`).
///
/// The repo's claim to reproducing Pearce '18 is the *shape* of Figures
/// 12-18: who wins in which regime, the Default-mode slope break at the
/// ~9 M-zones/rank memory threshold, MPS winning when the innermost
/// dimension is small, and the ~18% Heterogeneous gain in Fig. 18's
/// regime. These tests run reduced sweeps through the shared sweep library
/// (src/coop/sweeps/) and assert each figure's documented qualitative
/// claims (DESIGN.md section 4, EXPERIMENTS.md), so a calibration or model
/// change that bends a curve fails CI instead of silently rewriting the
/// reproduction record. Negative tests flip one model constant and assert
/// the corresponding lock trips — proof the assertions bite.

namespace sw = coop::sweeps;
namespace core = coop::core;

namespace {

constexpr auto kDefault = core::NodeMode::kOneRankPerGpu;
constexpr auto kMps = core::NodeMode::kMpsPerGpu;
constexpr auto kHetero = core::NodeMode::kHeterogeneous;

/// Points per reduced sweep: endpoints always kept, interior subsampled.
constexpr std::size_t kReducedPoints = 8;

/// Reduced sweep of figure `n` (cached per process; each sweep is a few
/// dozen run_timed calls).
const sw::SweepCurves& fig(int n) {
  static std::map<int, sw::SweepCurves> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache
             .emplace(n, sw::run_figure_sweep(
                             sw::reduced(sw::figure_spec(n), kReducedPoints)))
             .first;
  }
  return it->second;
}

double min_time(const sw::SweepPoint& p) {
  return std::min({p.t_default, p.t_mps, p.t_hetero});
}

// --- Library semantics on synthetic curves (independent of the model) ------

TEST(SweepLibrary, FigureSpecCoversAllRuntimeFigures) {
  for (int n : sw::figure_numbers()) {
    const auto& spec = sw::figure_spec(n);
    EXPECT_EQ(spec.figure, n);
    EXPECT_GE(spec.values.size(), 6u);
    const auto sizes = spec.sizes();
    ASSERT_EQ(sizes.size(), spec.values.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::size_t slot =
          spec.vary == 'x' ? 0 : (spec.vary == 'y' ? 1 : 2);
      EXPECT_EQ(sizes[i][slot], spec.values[i]);
    }
  }
  EXPECT_THROW((void)sw::figure_spec(11), std::invalid_argument);
  EXPECT_THROW((void)sw::figure_spec(19), std::invalid_argument);
}

TEST(SweepLibrary, ReducedKeepsEndpointsAndOrder) {
  const auto& spec = sw::figure_spec(13);  // 10 values
  const auto r = sw::reduced(spec, 5);
  ASSERT_EQ(r.values.size(), 5u);
  EXPECT_EQ(r.values.front(), spec.values.front());
  EXPECT_EQ(r.values.back(), spec.values.back());
  EXPECT_TRUE(std::is_sorted(r.values.begin(), r.values.end()));
  // Asking for more points than exist is a no-op.
  EXPECT_EQ(sw::reduced(spec, 99).values, spec.values);
}

TEST(SweepLibrary, SlopeBreakFoundOnSyntheticKnee) {
  // t = z below 40, then slope tripled above: knee must land at z=40.
  const std::vector<long> z = {10, 20, 30, 40, 50, 60};
  const std::vector<double> t = {10, 20, 30, 40, 70, 100};
  const auto brk = sw::detect_slope_break(z, t, 1.25);
  EXPECT_TRUE(brk.found);
  EXPECT_EQ(brk.zones_at_break, 40);
  EXPECT_GT(brk.slope_ratio, 2.0);
}

TEST(SweepLibrary, SlopeBreakAbsentOnLinearCurve) {
  const std::vector<long> z = {10, 20, 30, 40, 50};
  const std::vector<double> t = {11, 21, 31, 41, 51};
  EXPECT_FALSE(sw::detect_slope_break(z, t, 1.25).found);
}

TEST(SweepLibrary, SlopeBreakRejectsBadInput) {
  EXPECT_THROW((void)sw::detect_slope_break({1, 2, 3}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW((void)sw::detect_slope_break({1, 2, 2, 4},
                                            {1.0, 2.0, 3.0, 4.0}),
               std::invalid_argument);
  EXPECT_THROW((void)sw::detect_slope_break({1, 2, 3, 4}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

// --- Fig. 12: vary y (x=320, z=320) -----------------------------------------

TEST(Fig12, DefaultSlopeBreaksAtMemoryThreshold) {
  // The paper's memory threshold: ~9 M zones/rank (36 M total over the
  // Default mode's 4 ranks) bends the Default curve upward.
  const auto brk = sw::detect_slope_break(fig(12), kDefault, 1.25);
  ASSERT_TRUE(brk.found);
  // The knee must sit at the last below-threshold sweep point.
  EXPECT_GT(brk.zones_at_break, 24'000'000);
  EXPECT_LT(brk.zones_at_break, 38'000'000);
  EXPECT_GT(brk.slope_ratio, 1.3);
}

TEST(Fig12, SixteenRankModesStayLinear) {
  // MPS and Heterogeneous activate 4x more host cores, so their UM pump
  // never saturates in-range: neither curve has a Default-scale knee. The
  // bar is 1.4 rather than the Default detector's 1.25 because MPS's
  // overlap win at small y depresses its first secant segment (a shallow
  // start, not a memory-threshold break).
  EXPECT_FALSE(sw::detect_slope_break(fig(12), kMps, 1.4).found);
  EXPECT_FALSE(sw::detect_slope_break(fig(12), kHetero, 1.4).found);
  // And the Default knee is sharper than whatever curvature the 16-rank
  // modes show, so the three curves cannot be confused by the detector.
  const double dflt = sw::detect_slope_break(fig(12), kDefault, 1.0).slope_ratio;
  EXPECT_GT(dflt, sw::detect_slope_break(fig(12), kMps, 1.0).slope_ratio);
}

TEST(Fig12, HeteroWorstAtSmallY) {
  // 12 CPU ranks cannot take less than one y-plane each: at y=40 that is
  // far beyond the CPU's share of node throughput.
  const auto& first = fig(12).points.front();
  EXPECT_GT(first.t_hetero, 1.5 * first.t_default);
  EXPECT_GT(first.t_hetero, 1.5 * first.t_mps);
}

TEST(Fig12, HeteroCrossesOverPastThreshold) {
  // The paper's crossover: Heterogeneous overtakes Default near the top of
  // the sweep (y ~ 360-400), once Default pays the UM spill.
  const int idx = sw::crossover_index(fig(12), kDefault, kHetero);
  ASSERT_GE(idx, 0) << "Hetero never overtakes Default on Fig. 12";
  EXPECT_GT(fig(12).points[static_cast<std::size_t>(idx)].zones(),
            24'000'000);
}

TEST(Fig12, NegativeUmThresholdAblationRemovesBreak) {
  // The lock must bite: zeroing the memory-threshold model (the constant
  // the knee hangs on) has to flip DefaultSlopeBreaksAtMemoryThreshold.
  sw::SweepOptions opt;
  opt.model_um_threshold = false;
  const auto curves = sw::run_figure_sweep(
      sw::reduced(sw::figure_spec(12), kReducedPoints), opt);
  EXPECT_FALSE(sw::detect_slope_break(curves, kDefault, 1.25).found)
      << "slope break detected even with the UM threshold ablated — the "
         "Fig. 12 lock would never fail";
}

// --- Fig. 13: vary x (y=240, z=320) -----------------------------------------

TEST(Fig13, MpsWinsAtSmallX) {
  // Small innermost extent -> poorly coalesced, under-occupied kernels;
  // MPS recovers utilization by overlapping kernels from 4 ranks per GPU.
  const auto& first = fig(13).points.front();  // x = 50
  EXPECT_EQ(sw::winner(first), kMps);
  EXPECT_GT(sw::relative_gain(first.t_default, first.t_mps), 0.05);
}

TEST(Fig13, DefaultBestInMidrange) {
  // Between the small-x MPS regime and the memory threshold, the paper has
  // Default fastest.
  bool default_won_midrange = false;
  for (const auto& p : fig(13).points)
    if (p.x >= 200 && p.x <= 450 && sw::winner(p) == kDefault)
      default_won_midrange = true;
  EXPECT_TRUE(default_won_midrange);
}

TEST(Fig13, HeteroRunsLongWhenYTooSmall) {
  // y=240: the one-plane-per-CPU-rank floor is 5% of zones, above the ~3%
  // the bugged CPU can absorb -> the carve hurts at every mid/large x.
  for (const auto& p : fig(13).points) {
    if (p.x >= 150) {
      EXPECT_GT(p.t_hetero, 1.08 * p.t_default) << "at x=" << p.x;
    }
  }
}

TEST(Fig13, NegativeMpsOverlapAblationKillsSmallXWin) {
  // Second proof the locks bite: serializing MPS kernels (overlap model
  // off) must flip MpsWinsAtSmallX.
  sw::SweepOptions opt;
  opt.model_mps_overlap = false;
  const auto curves = sw::run_figure_sweep(
      sw::reduced(sw::figure_spec(13), kReducedPoints), opt);
  const auto& first = curves.points.front();
  EXPECT_NE(sw::winner(first), kMps)
      << "MPS still wins at small x with overlap ablated — the Fig. 13 "
         "lock would never fail";
  EXPECT_GT(first.t_mps, first.t_default);
}

// --- Fig. 14: vary x (y=240, z=160) -----------------------------------------

TEST(Fig14, DefaultAndMpsTrackBelowThreshold) {
  // The whole range stays below the memory threshold. MPS still wins at
  // x=100 (small kernels overlap), but once kernels are large enough the
  // two modes track each other within a few percent.
  for (const auto& p : fig(14).points) {
    EXPECT_FALSE(sw::past_memory_threshold(p)) << "at x=" << p.x;
    if (p.x >= 300) {
      EXPECT_LT(std::abs(p.t_default - p.t_mps), 0.05 * p.t_default)
          << "at x=" << p.x;
    }
  }
  // The MPS advantage fades monotonically in regime: faster at the small-x
  // end, no longer winning by the top of the sweep.
  const auto& first = fig(14).points.front();  // x = 100
  EXPECT_GT(sw::relative_gain(first.t_default, first.t_mps), 0.05);
  EXPECT_GE(fig(14).points.back().t_mps, fig(14).points.back().t_default);
}

TEST(Fig14, HeteroSlowerThroughout) {
  for (const auto& p : fig(14).points)
    EXPECT_GT(p.t_hetero, 1.03 * p.t_default) << "at x=" << p.x;
}

// --- Fig. 15: vary x (y=360, z=320) -----------------------------------------

TEST(Fig15, MpsBestAtSmallX) {
  EXPECT_EQ(sw::winner(fig(15).points.front()), kMps);  // x = 50
}

TEST(Fig15, HeteroCompetitiveWithBetterCarve) {
  // y=360 drops the carve floor to 3.3%, close to the balanced share: the
  // heterogeneous mode stops losing (contrast Fig. 13/14).
  for (const auto& p : fig(15).points) {
    if (p.x >= 100) {
      EXPECT_LT(p.t_hetero, 1.05 * min_time(p)) << "at x=" << p.x;
    }
  }
}

TEST(Fig15, ThresholdHampersDefaultAtTop) {
  const auto& top = fig(15).points.back();  // x = 400: 46 M zones
  EXPECT_TRUE(sw::past_memory_threshold(top));
  EXPECT_GT(top.t_default, top.t_mps);
  EXPECT_GT(sw::relative_gain(top.t_default, top.t_hetero), 0.10);
}

// --- Fig. 16: vary x (y=360, z=160) -----------------------------------------

TEST(Fig16, MpsWorstWhenKernelsFillGpu) {
  // Large x, below threshold: kernels fill the GPU alone, so MPS cannot
  // overlap and only pays its sharing tax — modestly worse, not a cliff.
  const auto& top = fig(16).points.back();  // x = 600
  EXPECT_GT(top.t_mps, top.t_default);
  EXPECT_LT(top.t_mps, 1.2 * top.t_default);
  EXPECT_GT(top.t_mps, top.t_hetero);
}

TEST(Fig16, DefaultAndHeteroCloseAtLargeX) {
  const auto& top = fig(16).points.back();
  EXPECT_LT(std::abs(top.t_default - top.t_hetero), 0.05 * top.t_default);
}

TEST(Fig16, WholeRangeBelowThresholdNoKnee) {
  for (const auto& p : fig(16).points)
    EXPECT_FALSE(sw::past_memory_threshold(p)) << "at x=" << p.x;
  EXPECT_FALSE(sw::detect_slope_break(fig(16), kDefault, 1.25).found);
}

// --- Fig. 17: vary x (y=480, z=320) -----------------------------------------

TEST(Fig17, MpsBestAtSmallX) {
  EXPECT_EQ(sw::winner(fig(17).points.front()), kMps);  // x = 50
}

TEST(Fig17, HeteroCloseToWinnerEverywhere) {
  // y=480 gives the heterogeneous mode its thin-slab carve; the paper
  // keeps it within a hair of the winner across the sweep.
  for (const auto& p : fig(17).points)
    EXPECT_LT(p.t_hetero, 1.05 * min_time(p)) << "at x=" << p.x;
}

TEST(Fig17, DefaultWorstAtTop) {
  const auto& top = fig(17).points.back();  // x = 300: 46 M zones
  EXPECT_TRUE(sw::past_memory_threshold(top));
  EXPECT_GT(top.t_default, top.t_mps);
  EXPECT_GT(top.t_default, top.t_hetero);
  EXPECT_GT(sw::relative_gain(top.t_default, top.t_hetero), 0.10);
}

// --- Fig. 18: vary x (y=480, z=160) — the headline figure -------------------

TEST(Fig18, MpsBestBelowThresholdSmallX) {
  EXPECT_EQ(sw::winner(fig(18).points.front()), kMps);  // x = 100: 7.7 M
}

TEST(Fig18, HeteroWinsPastThreshold) {
  for (const auto& p : fig(18).points) {
    if (sw::past_memory_threshold(p)) {
      EXPECT_EQ(sw::winner(p), kHetero) << "at x=" << p.x;
    }
  }
}

TEST(Fig18, HeadlineHeteroGainAtLeast15Percent) {
  // The paper's abstract: "up to an 18% performance benefit". Locked as a
  // >= 15% makespan gain in the documented regime (past the threshold at
  // large x), and bounded above so a calibration drift that inflates the
  // gain also fails.
  long zones_at = 0;
  const double gain = sw::max_gain(fig(18), kDefault, kHetero, &zones_at);
  EXPECT_GE(gain, 0.15);
  EXPECT_LE(gain, 0.25);
  EXPECT_GT(zones_at, 36'000'000);  // past the memory threshold
}

TEST(Fig18, SteadyStateGainAtLeast15Percent) {
  // Same lock on the converged per-iteration times, which exclude the
  // heterogeneous mode's load-balancing warmup.
  const double gain = sw::max_steady_gain(fig(18), kDefault, kHetero);
  EXPECT_GE(gain, 0.15);
  EXPECT_LE(gain, 0.30);
}

TEST(Fig18, SixteenRankModesScaleLinearly) {
  EXPECT_FALSE(sw::detect_slope_break(fig(18), kMps, 1.25).found);
  EXPECT_FALSE(sw::detect_slope_break(fig(18), kHetero, 1.25).found);
}

// --- Decomposition figures (9 and 10) ---------------------------------------

TEST(Fig09, SixteenSquareDomainsCommunicateFarMore) {
  const coop::mesh::Box global{{0, 0, 0}, {320, 320, 320}};
  const auto reports = sw::fig09_reports(global, {4, 16});
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_GE(reports[1].stats.total_messages,
            4 * reports[0].stats.total_messages);
  EXPECT_GE(reports[1].stats.total_halo_zones,
            2 * reports[0].stats.total_halo_zones);
  EXPECT_GT(reports[1].stats.max_neighbors, reports[0].stats.max_neighbors);
}

TEST(Fig10, HierarchicalKeepsNeighborsAndInnerExtent) {
  const coop::mesh::Box global{{0, 0, 0}, {320, 480, 320}};
  const auto reports = sw::fig10_reports(global);
  for (const auto& r : reports) {
    if (r.label.rfind("square", 0) == 0) continue;
    EXPECT_LE(r.stats.max_neighbors, 2) << r.label;
    EXPECT_EQ(r.min_nx, global.nx()) << r.label;
    EXPECT_EQ(r.max_nx, global.nx()) << r.label;
  }
  // The square 16-rank decomposition halves the innermost extent and
  // doubles the worst-case neighbor count.
  const auto& square16 = reports[2];
  ASSERT_EQ(square16.label, "square 16");
  EXPECT_GE(square16.stats.max_neighbors, 4);
  EXPECT_LT(square16.max_nx, global.nx());
}

}  // namespace
