/// Figure 12 of the paper: vary y-dimension (x=320, z=320).
///
/// Paper features: Default hits the memory threshold at ~37e6 zones
/// (9e6 zones/rank) and pays a slope break; MPS and Heterogeneous stay
/// linear (4x more domains / 4x more active cores). Heterogeneous is
/// slowest at small y: 12 CPU ranks cannot take less than 12/y of the
/// zones (15% at y=80), far beyond the CPU's share of node throughput.

#include "fig_common.hpp"

int main() {
  using namespace coop::bench;
  const auto pts = run_figure_sweep(
      "Figure 12", "vary y-dimension (x=320, z=320)",
      sweep_sizes('y', std::vector<long>{40, 80, 120, 160, 200, 240, 280, 320, 360, 400}, {320, 0, 320}));
  print_shape_summary(pts);
  return 0;
}
