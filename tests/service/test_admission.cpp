/// AdmissionController: token-bucket refill and rate shedding, the bounded
/// queue with priority promotion (FIFO within a priority), the
/// no-token-burned-on-queue-full guarantee, peak/monotonic statistics, and
/// config validation — all driven with caller-supplied time, never a clock.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "coop/core/sim_error.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/service/admission.hpp"

namespace core = coop::core;
namespace service = coop::service;

namespace {

using service::AdmissionDecision;

service::AdmissionConfig small_config() {
  service::AdmissionConfig cfg;
  cfg.rate_per_s = 1.0;
  cfg.burst = 4.0;
  cfg.max_in_flight = 2;
  cfg.max_queue = 2;
  return cfg;
}

TEST(AdmissionConfig, ValidateRejectsNonsense) {
  const auto expect_config_error = [](auto&& mutate) {
    service::AdmissionConfig cfg = small_config();
    mutate(cfg);
    try {
      cfg.validate();
      FAIL() << "validate accepted a nonsense config";
    } catch (const core::SimErrorCarrier& c) {
      EXPECT_EQ(c.error().kind, core::SimErrorKind::kConfig);
    }
  };
  expect_config_error([](auto& c) { c.rate_per_s = 0.0; });
  expect_config_error([](auto& c) { c.burst = 0.0; });
  expect_config_error([](auto& c) { c.max_in_flight = 0; });
  expect_config_error([](auto& c) { c.max_queue = -1; });
  EXPECT_NO_THROW(small_config().validate());
}

TEST(AdmissionDecisionNames, AreStable) {
  EXPECT_STREQ(service::to_string(AdmissionDecision::kAdmitted), "admitted");
  EXPECT_STREQ(service::to_string(AdmissionDecision::kQueued), "queued");
  EXPECT_STREQ(service::to_string(AdmissionDecision::kShedRate), "shed_rate");
  EXPECT_STREQ(service::to_string(AdmissionDecision::kShedQueueFull),
               "shed_queue_full");
}

TEST(AdmissionController, AdmitsUpToSlotsThenQueuesThenSheds) {
  service::AdmissionController ctl(small_config());
  EXPECT_EQ(ctl.offer(1, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(2, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.in_flight(), 2);
  EXPECT_EQ(ctl.offer(3, 0, 0.0), AdmissionDecision::kQueued);
  EXPECT_EQ(ctl.offer(4, 0, 0.0), AdmissionDecision::kQueued);
  EXPECT_EQ(ctl.queue_depth(), 2);
  // Queue full: shed — regardless of how many tokens remain banked.
  EXPECT_EQ(ctl.offer(5, 0, 0.0), AdmissionDecision::kShedQueueFull);
  const auto s = ctl.stats();
  EXPECT_EQ(s.offered, 5u);
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.queued, 2u);
  EXPECT_EQ(s.shed_queue_full, 1u);
  EXPECT_EQ(s.peak_in_flight, 2);
  EXPECT_EQ(s.peak_queue_depth, 2);
}

TEST(AdmissionController, RateShedsWhenTheBucketRunsDry) {
  service::AdmissionConfig cfg = small_config();
  cfg.burst = 2.0;
  cfg.max_in_flight = 8;  // slots are not the constraint here
  service::AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.offer(1, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(2, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(3, 0, 0.0), AdmissionDecision::kShedRate);
  EXPECT_EQ(ctl.stats().shed_rate, 1u);
  // One second at 1 req/s banks one token again.
  EXPECT_EQ(ctl.offer(4, 0, 1.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(5, 0, 1.0), AdmissionDecision::kShedRate);
}

TEST(AdmissionController, QueueFullShedConsumesNoToken) {
  service::AdmissionConfig cfg = small_config();
  cfg.burst = 4.0;
  cfg.max_in_flight = 1;
  cfg.max_queue = 1;
  service::AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.offer(1, 0, 0.0), AdmissionDecision::kAdmitted);  // token 1
  EXPECT_EQ(ctl.offer(2, 0, 0.0), AdmissionDecision::kQueued);    // token 2
  // Two sheds at the full queue must not burn the two remaining tokens...
  EXPECT_EQ(ctl.offer(3, 0, 0.0), AdmissionDecision::kShedQueueFull);
  EXPECT_EQ(ctl.offer(4, 0, 0.0), AdmissionDecision::kShedQueueFull);
  // ...so after draining the queue the bank still admits two requests.
  EXPECT_EQ(ctl.complete(0.0), 2);   // promotes id 2
  EXPECT_EQ(ctl.complete(0.0), -1);  // queue empty, slot freed
  EXPECT_EQ(ctl.offer(5, 0, 0.0), AdmissionDecision::kAdmitted);  // token 3
  EXPECT_EQ(ctl.complete(0.0), -1);
  EXPECT_EQ(ctl.offer(6, 0, 0.0), AdmissionDecision::kAdmitted);  // token 4
  EXPECT_EQ(ctl.complete(0.0), -1);
  EXPECT_EQ(ctl.offer(7, 0, 0.0), AdmissionDecision::kShedRate);
}

TEST(AdmissionController, PromotesByPriorityThenFifo) {
  service::AdmissionConfig cfg = small_config();
  cfg.burst = 8.0;
  cfg.max_in_flight = 1;
  cfg.max_queue = 8;
  service::AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.offer(1, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(10, 0, 0.0), AdmissionDecision::kQueued);
  EXPECT_EQ(ctl.offer(11, 5, 0.0), AdmissionDecision::kQueued);
  EXPECT_EQ(ctl.offer(12, 5, 0.0), AdmissionDecision::kQueued);
  EXPECT_EQ(ctl.offer(13, 1, 0.0), AdmissionDecision::kQueued);
  // Highest priority first; FIFO between the two priority-5 entries.
  EXPECT_EQ(ctl.complete(0.0), 11);
  EXPECT_EQ(ctl.complete(0.0), 12);
  EXPECT_EQ(ctl.complete(0.0), 13);
  EXPECT_EQ(ctl.complete(0.0), 10);
  EXPECT_EQ(ctl.complete(0.0), -1);
  EXPECT_EQ(ctl.in_flight(), 0);
  const auto s = ctl.stats();
  EXPECT_EQ(s.promoted, 4u);
  EXPECT_EQ(s.completed, 5u);
}

TEST(AdmissionController, CompleteWithNothingInFlightIsATypedError) {
  service::AdmissionController ctl(small_config());
  try {
    (void)ctl.complete(0.0);
    FAIL() << "complete on an idle controller did not throw";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kModel);
  }
}

TEST(AdmissionController, BucketIsCappedAtBurst) {
  service::AdmissionConfig cfg = small_config();
  cfg.rate_per_s = 100.0;
  cfg.burst = 2.0;
  cfg.max_in_flight = 8;
  service::AdmissionController ctl(cfg);
  // A long idle stretch cannot bank more than `burst` tokens.
  EXPECT_EQ(ctl.offer(1, 0, 1000.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(2, 0, 1000.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(3, 0, 1000.0), AdmissionDecision::kShedRate);
}

TEST(AdmissionController, PublishesMetricsSnapshot) {
  service::AdmissionController ctl(small_config());
  EXPECT_EQ(ctl.offer(1, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(2, 0, 0.0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.offer(3, 0, 0.0), AdmissionDecision::kQueued);
  coop::obs::MetricsRegistry metrics;
  ctl.publish_metrics(metrics);
  std::ostringstream os;
  metrics.write_json(os, 0.0);
  const std::string json = os.str();
  EXPECT_NE(json.find("admission.offered"), std::string::npos);
  EXPECT_NE(json.find("admission.admitted"), std::string::npos);
  EXPECT_NE(json.find("admission.queued"), std::string::npos);
  EXPECT_NE(json.find("admission.shed_rate"), std::string::npos);
  EXPECT_NE(json.find("admission.in_flight"), std::string::npos);
}

}  // namespace
