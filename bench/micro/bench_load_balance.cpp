/// Section 6.2 of the paper: heterogeneous load balancing. Sweeps the
/// compiler-bug dispatch penalty and compares (a) the FLOPS-based static
/// split, (b) the feedback balancer, and (c) a deliberately bad fixed split,
/// reporting converged CPU share and total runtime. Also shows the paper's
/// forward-looking claim: with the compiler issue fixed (penalty = 1) the
/// CPU can take far more work and the Heterogeneous gain grows.

#include <cstdio>

#include "coop/core/timed_sim.hpp"

int main() {
  using namespace coop;
  const mesh::Box global{{0, 0, 0}, {600, 480, 160}};
  constexpr int kSteps = 50;

  std::printf("=== Load balancing at 600x480x160, %d steps ===\n", kSteps);
  std::printf("%-34s | %9s | %9s | %8s\n", "configuration", "runtime",
              "cpu-share", "conv-iter");

  auto run = [&](const char* name, bool bug, bool lb, double f0) {
    core::TimedConfig tc;
    tc.mode = core::NodeMode::kHeterogeneous;
    tc.global = global;
    tc.timesteps = kSteps;
    tc.compiler_bug = bug;
    tc.load_balance = lb;
    tc.cpu_fraction = f0;
    const auto r = core::run_timed(tc);
    std::printf("%-34s | %8.2f s | %9.3f | %8d\n", name, r.makespan,
                r.final_cpu_fraction, r.lb_iterations_to_converge);
    return r.makespan;
  };

  core::TimedConfig dc;
  dc.mode = core::NodeMode::kOneRankPerGpu;
  dc.global = global;
  dc.timesteps = kSteps;
  const double t_default = core::run_timed(dc).makespan;
  std::printf("%-34s | %8.2f s | %9.3f | %8s\n",
              "reference: Default (1 MPI/GPU)", t_default, 0.0, "-");

  run("bug, static FLOPS split", true, false, -1.0);
  run("bug, static oversized split (15%)", true, false, 0.15);
  const double t_fb = run("bug, feedback balancer", true, true, -1.0);
  run("bug fixed, static FLOPS split", false, false, -1.0);
  const double t_fixed = run("bug fixed, feedback balancer", false, true, -1.0);

  std::printf(
      "\nHetero gain over Default: %.1f%% with the compiler bug, %.1f%% with "
      "it fixed\n(the paper expects 'even better performance in this mode' "
      "once fixed).\n",
      100.0 * (t_default - t_fb) / t_default,
      100.0 * (t_default - t_fixed) / t_default);
  return 0;
}
