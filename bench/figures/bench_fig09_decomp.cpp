/// Figure 9 of the paper: communication overhead of "square" domain
/// decompositions, 4 vs 16 domains.
///
/// The paper's point: with near-cubic ("square") blocks, going from one MPI
/// rank per GPU (4 domains) to four per GPU (16 domains) raises both the
/// number of halo-exchange neighbors and the exchanged volume dramatically —
/// which motivates the hierarchical single-dimension subdivision of Fig. 10.

#include <cstdio>

#include "coop/decomp/decomposition.hpp"

int main() {
  using namespace coop;
  const mesh::Box global{{0, 0, 0}, {320, 320, 320}};
  std::printf(
      "=== Figure 9: 'square' block decomposition, halo stats (g=1) ===\n");
  std::printf("%8s | %6s %9s %9s | %12s %12s\n", "domains", "grid",
              "max-nbrs", "avg-nbrs", "halo zones", "messages");
  for (int ranks : {4, 16, 64}) {
    const auto d = decomp::block_decomposition(global, ranks);
    d.validate();
    const auto g = decomp::choose_grid(global, ranks);
    const auto s = decomp::analyze_communication(d, 1);
    std::printf("%8d | %d.%d.%d %8d %9.2f | %12ld %12d\n", ranks, g[0], g[1],
                g[2], s.max_neighbors, s.avg_neighbors, s.total_halo_zones,
                s.total_messages);
  }
  std::printf(
      "\nPaper: 16 'square' ranks communicate significantly more than 4\n"
      "(more neighbors per rank and more total halo surface).\n");
  return 0;
}
