#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coop/forall/kernel_timers.hpp"

namespace fa = coop::forall;

namespace {

TEST(KernelTimerRegistry, AccumulatesCallsAndSeconds) {
  fa::KernelTimerRegistry reg;
  reg.add("flux", 0.5);
  reg.add("flux", 0.25);
  reg.add("eos", 1.0);
  ASSERT_EQ(reg.size(), 2u);
  const auto* flux = reg.find("flux");
  ASSERT_NE(flux, nullptr);
  EXPECT_EQ(flux->calls, 2u);
  EXPECT_DOUBLE_EQ(flux->seconds, 0.75);
  EXPECT_DOUBLE_EQ(reg.total_seconds(), 1.75);
  EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(KernelTimerRegistry, SortedOrdersByDescendingTime) {
  fa::KernelTimerRegistry reg;
  reg.add("small", 0.1);
  reg.add("big", 3.0);
  reg.add("mid", 1.0);
  const auto sorted = reg.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "big");
  EXPECT_EQ(sorted[1].first, "mid");
  EXPECT_EQ(sorted[2].first, "small");
}

// Regression: std::sort is not stable, so entries with identical totals used
// to come back in an unspecified (libstdc++-internals-dependent) order,
// churning "top kernels" reports between runs. Ties must break by name.
TEST(KernelTimerRegistry, SortedBreaksTimeTiesByName) {
  fa::KernelTimerRegistry reg;
  // Insert in non-alphabetical order; all share the same total time.
  for (const char* name : {"zeta", "alpha", "mid", "beta", "omega"})
    reg.add(name, 2.0);
  reg.add("fastest", 5.0);
  reg.add("slowest", 0.5);

  const auto sorted = reg.sorted();
  const std::vector<std::string> expect = {"fastest", "alpha", "beta", "mid",
                                           "omega",   "zeta",  "slowest"};
  ASSERT_EQ(sorted.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(sorted[i].first, expect[i]) << "position " << i;
}

TEST(KernelTimerRegistry, ScopedTimerChargesItsScope) {
  fa::KernelTimerRegistry reg;
  {
    fa::ScopedKernelTimer t(reg, "scoped");
  }
  const auto* e = reg.find("scoped");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->calls, 1u);
  EXPECT_GE(e->seconds, 0.0);
}

}  // namespace
