#include "coop/service/result_cache.hpp"

#include "coop/core/sim_error.hpp"

namespace coop::service {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ResultCache: capacity must be >= 1");
}

ResultCache::Bytes ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  return it->second->bytes;
}

ResultCache::Bytes ResultCache::peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second->bytes;
}

void ResultCache::put(const std::string& key, Bytes bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->bytes = std::move(bytes);
    it->second->tick = stats_.insertions;  // refresh restarts the age clock
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.insertions;
  lru_.push_front(Entry{key, std::move(bytes), stats_.insertions});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    const Entry& victim = lru_.back();
    if (victim.bytes != nullptr) stats_.evicted_bytes += victim.bytes->size();
    stats_.last_eviction_age = stats_.insertions - victim.tick;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::string> ResultCache::keys_mru_first() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& e : lru_) keys.push_back(e.key);
  return keys;
}

}  // namespace coop::service
