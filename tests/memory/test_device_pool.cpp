#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>
#include <random>
#include <vector>

#include "coop/memory/device_pool.hpp"

namespace mem = coop::memory;

namespace {

TEST(DevicePool, BasicAllocateAndFree) {
  mem::DevicePool pool(1 << 20);
  void* p = pool.allocate(1000);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(pool.bytes_in_use(), 1000u);
  pool.deallocate(p);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.free_fragments(), 1u);  // fully coalesced
}

TEST(DevicePool, MemoryIsWritable) {
  mem::DevicePool pool(1 << 20);
  auto* p = static_cast<std::uint8_t*>(pool.allocate(4096));
  std::memset(p, 0xAB, 4096);
  EXPECT_EQ(p[0], 0xAB);
  EXPECT_EQ(p[4095], 0xAB);
  pool.deallocate(p);
}

TEST(DevicePool, AlignmentRespected) {
  mem::DevicePool pool(1 << 20, 256);
  for (int i = 0; i < 8; ++i) {
    void* p = pool.allocate(100 + i);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u)
        << "allocation " << i;
  }
}

TEST(DevicePool, ZeroByteAllocationIsValidAndUnique) {
  mem::DevicePool pool(1 << 20);
  void* a = pool.allocate(0);
  void* b = pool.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  pool.deallocate(a);
  pool.deallocate(b);
}

TEST(DevicePool, ExhaustionThrowsBadAlloc) {
  mem::DevicePool pool(1 << 16);
  void* p = pool.allocate(1 << 15);
  EXPECT_THROW((void)pool.allocate(1 << 15 | 1 << 14), std::bad_alloc);
  pool.deallocate(p);
  EXPECT_NO_THROW(pool.deallocate(nullptr));
}

TEST(DevicePool, TryAllocateReturnsNullOnExhaustion) {
  mem::DevicePool pool(1 << 16);
  void* p = pool.try_allocate(1 << 15);
  ASSERT_NE(p, nullptr);
  const auto peak = pool.high_water();
  // Detectable failure instead of a throw: nullptr, and no accounting churn.
  EXPECT_EQ(pool.try_allocate((1 << 15) | (1 << 14)), nullptr);
  EXPECT_EQ(pool.high_water(), peak);
  EXPECT_GE(pool.bytes_in_use(), std::size_t{1} << 15);
  // The pool stays usable: a fitting request still succeeds.
  void* q = pool.try_allocate(1 << 10);
  EXPECT_NE(q, nullptr);
  pool.deallocate(q);
  pool.deallocate(p);
}

TEST(DevicePool, BestFitPrefersSmallestSufficientBlock) {
  mem::DevicePool pool(1 << 20, 64);
  // Create two free holes: 4 KiB and 64 KiB.
  void* a = pool.allocate(4096);
  void* sep1 = pool.allocate(64);
  void* b = pool.allocate(65536);
  void* sep2 = pool.allocate(64);
  pool.deallocate(a);
  pool.deallocate(b);
  // A 4 KiB request must land exactly in the 4 KiB hole (same address).
  void* c = pool.allocate(4096);
  EXPECT_EQ(c, a);
  pool.deallocate(c);
  pool.deallocate(sep1);
  pool.deallocate(sep2);
}

TEST(DevicePool, CoalescingMergesNeighbors) {
  mem::DevicePool pool(1 << 20, 64);
  void* a = pool.allocate(1024);
  void* b = pool.allocate(1024);
  void* c = pool.allocate(1024);
  void* guard = pool.allocate(64);
  // Free middle, then sides: fragments must merge step by step.
  pool.deallocate(b);
  const auto frags_after_b = pool.free_fragments();
  pool.deallocate(a);  // merges with b's hole
  EXPECT_EQ(pool.free_fragments(), frags_after_b);
  pool.deallocate(c);  // merges a+b+c into one hole
  EXPECT_EQ(pool.free_fragments(), frags_after_b);
  pool.deallocate(guard);
  EXPECT_EQ(pool.free_fragments(), 1u);
  EXPECT_EQ(pool.largest_free_block(), pool.capacity());
}

TEST(DevicePool, ReuseAfterFreeIsImmediate) {
  mem::DevicePool pool(1 << 16);
  void* a = pool.allocate(1 << 15);
  pool.deallocate(a);
  void* b = pool.allocate(1 << 15);
  EXPECT_EQ(b, a);
  pool.deallocate(b);
}

TEST(DevicePool, DoubleFreeDetected) {
  mem::DevicePool pool(1 << 16);
  void* p = pool.allocate(128);
  pool.deallocate(p);
  EXPECT_THROW(pool.deallocate(p), std::invalid_argument);
}

TEST(DevicePool, ForeignPointerRejected) {
  mem::DevicePool pool(1 << 16);
  int x = 0;
  EXPECT_THROW(pool.deallocate(&x), std::invalid_argument);
}

TEST(DevicePool, HighWaterTracksPeak) {
  mem::DevicePool pool(1 << 20, 64);
  void* a = pool.allocate(1024);
  void* b = pool.allocate(2048);
  const auto peak = pool.bytes_in_use();
  pool.deallocate(a);
  pool.deallocate(b);
  EXPECT_EQ(pool.high_water(), peak);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
}

TEST(DevicePool, InvalidConstruction) {
  EXPECT_THROW(mem::DevicePool(0), std::invalid_argument);
  EXPECT_THROW(mem::DevicePool(1 << 20, 0), std::invalid_argument);
  EXPECT_THROW(mem::DevicePool(1 << 20, 100), std::invalid_argument);  // !pow2
}

/// Property sweep: random alloc/free traffic preserves the pool invariants
/// (accounting exact, full coalescing when drained, no overlap).
class PoolStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(PoolStress, RandomTrafficPreservesInvariants) {
  std::mt19937 rng(GetParam());
  mem::DevicePool pool(1 << 22, 64);
  std::vector<std::pair<void*, std::size_t>> live;
  std::uniform_int_distribution<std::size_t> size_dist(1, 16384);
  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || (rng() % 3 != 0);
    if (do_alloc) {
      const std::size_t sz = size_dist(rng);
      try {
        void* p = pool.allocate(sz);
        // Write a byte pattern to catch overlapping blocks.
        std::memset(p, static_cast<int>(step & 0xFF), sz);
        live.emplace_back(p, sz);
      } catch (const std::bad_alloc&) {
        ASSERT_FALSE(live.empty());
      }
    } else {
      const std::size_t i = rng() % live.size();
      pool.deallocate(live[i].first);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (auto& [p, sz] : live) pool.deallocate(p);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.live_allocations(), 0u);
  EXPECT_EQ(pool.free_fragments(), 1u);
  EXPECT_EQ(pool.largest_free_block(), pool.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolStress,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
