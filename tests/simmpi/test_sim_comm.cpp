#include <gtest/gtest.h>

#include <vector>

#include "coop/des/engine.hpp"
#include "coop/simmpi/sim_comm.hpp"

namespace mpi = coop::simmpi;
namespace des = coop::des;

namespace {

TEST(SimComm, MessageArrivesAfterAlphaBetaTime) {
  des::Engine eng;
  coop::devmodel::InterconnectSpec net;
  net.latency_s = 1.0;
  net.bandwidth_bytes_per_s = 100.0;
  mpi::SimCommWorld world(eng, 2, net);
  double recv_time = -1;
  auto sender = [](mpi::SimComm c) -> des::Task<void> {
    c.post_send(1, 0, {42.0}, /*bytes=*/300);  // 1 + 300/100 = 4 s
    co_return;
  };
  auto receiver = [](des::Engine& e, mpi::SimComm c,
                     double& t) -> des::Task<void> {
    const auto m = co_await c.recv(0, 0);
    EXPECT_EQ(m, (std::vector<double>{42.0}));
    t = e.now();
  };
  eng.spawn(sender(world.comm(0)));
  eng.spawn(receiver(eng, world.comm(1), recv_time));
  eng.run();
  EXPECT_DOUBLE_EQ(recv_time, 4.0);
  EXPECT_EQ(world.messages_sent(), 1u);
  EXPECT_EQ(world.bytes_sent(), 300u);
}

TEST(SimComm, SenderDoesNotBlock) {
  // post_send is fire-and-forget: the sender continues at the same time.
  des::Engine eng;
  mpi::SimCommWorld world(eng, 2);
  double sender_done = -1;
  auto sender = [](des::Engine& e, mpi::SimComm c,
                   double& t) -> des::Task<void> {
    c.post_send(1, 0, {}, 1 << 20);
    c.post_send(1, 0, {}, 1 << 20);
    t = e.now();
    co_return;
  };
  auto receiver = [](mpi::SimComm c) -> des::Task<void> {
    (void)co_await c.recv(0, 0);
    (void)co_await c.recv(0, 0);
  };
  eng.spawn(sender(eng, world.comm(0), sender_done));
  eng.spawn(receiver(world.comm(1)));
  eng.run();
  EXPECT_DOUBLE_EQ(sender_done, 0.0);
}

TEST(SimComm, FifoPerSourceAndTag) {
  des::Engine eng;
  mpi::SimCommWorld world(eng, 2);
  std::vector<double> got;
  auto sender = [](mpi::SimComm c) -> des::Task<void> {
    for (int i = 0; i < 10; ++i) c.post_send(1, 0, {double(i)}, 64);
    co_return;
  };
  auto receiver = [](mpi::SimComm c, std::vector<double>& g) -> des::Task<void> {
    for (int i = 0; i < 10; ++i) {
      auto m = co_await c.recv(0, 0);
      g.push_back(m[0]);
    }
  };
  eng.spawn(sender(world.comm(0)));
  eng.spawn(receiver(world.comm(1), got));
  eng.run();
  EXPECT_EQ(got, (std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SimComm, AllreduceValueAndTiming) {
  des::Engine eng;
  coop::devmodel::InterconnectSpec net;
  net.allreduce_hop_latency_s = 0.5;
  mpi::SimCommWorld world(eng, 4, net);
  std::vector<double> results(4, -1);
  std::vector<double> times(4, -1);
  auto ranker = [](des::Engine& e, mpi::SimComm c, double v, double& res,
                   double& t) -> des::Task<void> {
    co_await e.delay(static_cast<double>(c.rank()));  // staggered arrivals
    res = co_await c.allreduce_min(v);
    t = e.now();
  };
  for (int r = 0; r < 4; ++r)
    eng.spawn(ranker(eng, world.comm(r), 10.0 - r,
                     results[static_cast<std::size_t>(r)],
                     times[static_cast<std::size_t>(r)]));
  eng.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], 7.0);
    // Last arrival at t=3, plus ceil(log2(4))=2 hops * 0.5 up and down = 2.
    EXPECT_DOUBLE_EQ(times[static_cast<std::size_t>(r)], 5.0);
  }
}

TEST(SimComm, AllreduceMaxAndSum) {
  des::Engine eng;
  mpi::SimCommWorld world(eng, 3);
  std::vector<double> maxes(3), sums(3);
  auto ranker = [](mpi::SimComm c, double& mx, double& sm) -> des::Task<void> {
    mx = co_await c.allreduce_max(static_cast<double>(c.rank()));
    sm = co_await c.allreduce_sum(static_cast<double>(c.rank()));
  };
  for (int r = 0; r < 3; ++r)
    eng.spawn(ranker(world.comm(r), maxes[static_cast<std::size_t>(r)],
                     sums[static_cast<std::size_t>(r)]));
  eng.run();
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(maxes[static_cast<std::size_t>(r)], 2.0);
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)], 3.0);
  }
}

TEST(SimComm, RepeatedReductionsIndependent) {
  des::Engine eng;
  mpi::SimCommWorld world(eng, 4);
  std::vector<std::vector<double>> results(4);
  auto ranker = [](mpi::SimComm c,
                   std::vector<double>& out) -> des::Task<void> {
    for (int i = 0; i < 50; ++i)
      out.push_back(co_await c.allreduce_sum(static_cast<double>(i)));
  };
  for (int r = 0; r < 4; ++r)
    eng.spawn(ranker(world.comm(r), results[static_cast<std::size_t>(r)]));
  eng.run();
  for (const auto& out : results) {
    ASSERT_EQ(out.size(), 50u);
    for (int i = 0; i < 50; ++i)
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 4.0 * i);
  }
}

TEST(SimComm, BarrierSynchronizesStaggeredRanks) {
  des::Engine eng;
  mpi::SimCommWorld world(eng, 5);
  std::vector<double> exit_times(5, -1);
  auto ranker = [](des::Engine& e, mpi::SimComm c, double& t) -> des::Task<void> {
    co_await e.delay(static_cast<double>(c.rank()) * 2.0);
    co_await c.barrier();
    t = e.now();
  };
  for (int r = 0; r < 5; ++r)
    eng.spawn(ranker(eng, world.comm(r), exit_times[static_cast<std::size_t>(r)]));
  eng.run();
  for (int r = 0; r < 5; ++r)
    EXPECT_GE(exit_times[static_cast<std::size_t>(r)], 8.0);  // last arrival
}

TEST(SimComm, InvalidRanksRejected) {
  des::Engine eng;
  mpi::SimCommWorld world(eng, 2);
  auto c = world.comm(0);
  EXPECT_THROW(c.post_send(7, 0, {}, 0), std::invalid_argument);
  EXPECT_THROW(mpi::SimCommWorld(eng, 0), std::invalid_argument);
}

}  // namespace

namespace {

TEST(SimComm, NonOvertakingOnOrderedChannel) {
  // MPI guarantee: a later (small, fast) message on the same (source, dest)
  // channel must not arrive before an earlier (large, slow) one.
  des::Engine eng;
  coop::devmodel::InterconnectSpec net;
  net.latency_s = 0.0;
  net.bandwidth_bytes_per_s = 100.0;
  mpi::SimCommWorld world(eng, 2, net);
  std::vector<double> arrivals;
  auto sender = [](mpi::SimComm c) -> des::Task<void> {
    c.post_send(1, 0, {1.0}, /*bytes=*/1000);  // 10 s on the wire
    c.post_send(1, 0, {2.0}, /*bytes=*/10);    // 0.1 s alone -> must wait
    co_return;
  };
  auto receiver = [](des::Engine& e, mpi::SimComm c,
                     std::vector<double>& a) -> des::Task<void> {
    const auto m1 = co_await c.recv(0, 0);
    a.push_back(e.now());
    EXPECT_EQ(m1[0], 1.0);  // payloads in send order
    const auto m2 = co_await c.recv(0, 0);
    a.push_back(e.now());
    EXPECT_EQ(m2[0], 2.0);
  };
  eng.spawn(sender(world.comm(0)));
  eng.spawn(receiver(eng, world.comm(1), arrivals));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 10.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 10.0);  // held back to the ordering floor
}

TEST(SimComm, DistinctChannelsMayOvertake) {
  // Ordering applies per (source, dest); a message from another SOURCE may
  // still arrive first.
  des::Engine eng;
  coop::devmodel::InterconnectSpec net;
  net.latency_s = 0.0;
  net.bandwidth_bytes_per_s = 100.0;
  mpi::SimCommWorld world(eng, 3, net);
  std::vector<std::pair<int, double>> arrivals;  // (source, time)
  auto slow_sender = [](mpi::SimComm c) -> des::Task<void> {
    c.post_send(2, 0, {}, 1000);  // 10 s
    co_return;
  };
  auto fast_sender = [](mpi::SimComm c) -> des::Task<void> {
    c.post_send(2, 0, {}, 10);  // 0.1 s
    co_return;
  };
  auto receiver = [](des::Engine& e, mpi::SimComm c,
                     std::vector<std::pair<int, double>>& a) -> des::Task<void> {
    (void)co_await c.recv(1, 0);
    a.emplace_back(1, e.now());
    (void)co_await c.recv(0, 0);
    a.emplace_back(0, e.now());
  };
  eng.spawn(slow_sender(world.comm(0)));
  eng.spawn(fast_sender(world.comm(1)));
  eng.spawn(receiver(eng, world.comm(2), arrivals));
  eng.run();
  EXPECT_DOUBLE_EQ(arrivals[0].second, 0.1);
  EXPECT_DOUBLE_EQ(arrivals[1].second, 10.0);
}

}  // namespace
