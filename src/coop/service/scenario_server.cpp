#include "coop/service/scenario_server.hpp"

#include <sstream>
#include <utility>

#include "coop/core/report.hpp"
#include "coop/core/sim_error.hpp"
#include "coop/obs/json.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/obs/run_report.hpp"
#include "coop/service/config_key.hpp"

namespace coop::service {

// --- Query canonicalization --------------------------------------------------

void ScenarioQuery::validate() const {
  const auto bad = [](const std::string& what) {
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ScenarioQuery: " + what);
  };
  if (x < 1 || y < 1 || z < 1)
    bad("extents must be >= 1 (got " + std::to_string(x) + "x" +
        std::to_string(y) + "x" + std::to_string(z) + ")");
  if (timesteps < 1) bad("timesteps must be >= 1");
  if (nodes < 1) bad("nodes must be >= 1");
  if (ranks_per_gpu < 1) bad("ranks_per_gpu must be >= 1");
  if (cpu_fraction > 1.0) bad("cpu_fraction must be <= 1");
  (void)canonical_double(cpu_fraction);  // rejects NaN/Inf
  (void)resolve_node_spec(node);         // rejects unknown node names
}

devmodel::NodeSpec resolve_node_spec(const std::string& name) {
  if (name == "rzhasgpu") return devmodel::NodeSpec::rzhasgpu();
  if (name == "sierra-ea") return devmodel::NodeSpec::sierra_ea();
  core::throw_sim_error(core::SimErrorKind::kConfig,
                        "resolve_node_spec: unknown node spec \"" + name +
                            "\" (known: rzhasgpu, sierra-ea)");
}

std::string scenario_key(const ScenarioQuery& q) {
  q.validate();
  ConfigKeyHasher h;
  h.mix(std::string_view("coophet.scenario"));  // domain tag vs campaign_hash
  h.mix(std::string_view(q.node));
  h.mix(std::string_view(core::to_string(q.mode)));
  h.mix(q.x);
  h.mix(q.y);
  h.mix(q.z);
  h.mix(q.timesteps);
  h.mix(q.nodes);
  h.mix(q.ranks_per_gpu);
  // Every negative cpu_fraction selects the same FLOPS-based initial guess,
  // so all of them are one canonical scenario.
  h.mix(q.cpu_fraction < 0.0 ? -1.0 : q.cpu_fraction);
  h.mix(q.model_um_threshold);
  h.mix(q.model_mps_overlap);
  h.mix(q.compiler_bug);
  h.mix(static_cast<long>(q.faults.events.size()));
  for (const fault::FaultEvent& e : q.faults.events) {
    h.mix(e.time);
    h.mix(std::string_view(fault::to_string(e.kind)));
    h.mix(e.rank);
    h.mix(e.node);
    h.mix(e.gpu);
    h.mix(e.count);
    h.mix(e.duration);
    h.mix(e.factor);
  }
  return h.hex();
}

core::TimedConfig to_timed_config(const ScenarioQuery& q) {
  core::TimedConfig tc;
  tc.mode = q.mode;
  tc.node = resolve_node_spec(q.node);
  tc.global = {{0, 0, 0}, {q.x, q.y, q.z}};
  tc.timesteps = q.timesteps;
  tc.nodes = q.nodes;
  tc.ranks_per_gpu = q.ranks_per_gpu;
  tc.cpu_fraction = q.cpu_fraction;
  tc.model_um_threshold = q.model_um_threshold;
  tc.model_mps_overlap = q.model_mps_overlap;
  tc.compiler_bug = q.compiler_bug;
  if (!q.faults.empty()) {
    // Points at the query's plan: the query must outlive the run (true for
    // the synchronous submit path, where the leader holds the caller's ref).
    tc.faults = &q.faults;
    tc.recovery.checkpoint_interval = 2;
  }
  return tc;
}

const char* to_string(ServeOutcome o) noexcept {
  switch (o) {
    case ServeOutcome::kHit: return "hit";
    case ServeOutcome::kMiss: return "miss";
    case ServeOutcome::kCoalesced: return "coalesced";
    case ServeOutcome::kShedRate: return "shed_rate";
    case ServeOutcome::kShedQueueFull: return "shed_queue_full";
  }
  return "?";
}

// --- Server ------------------------------------------------------------------

void ScenarioServerConfig::validate() const {
  if (cache_capacity == 0)
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ScenarioServerConfig: cache_capacity must be >= 1");
  admission.validate();
}

ScenarioServer::ScenarioServer(ScenarioServerConfig config)
    : config_(std::move(config)),
      // AdmissionController and ResultCache each validate their own slice of
      // the config; nothing else in ScenarioServerConfig can be nonsensical.
      admission_(config_.admission),
      cache_(config_.cache_capacity) {}

ScenarioServer::~ScenarioServer() = default;

ScenarioResponse ScenarioServer::submit(const ScenarioQuery& query, double now,
                                        int priority) {
  const std::string key = scenario_key(query);

  std::shared_ptr<Flight> flight;
  std::shared_ptr<QueuedTicket> ticket;
  bool leader = false;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    if (ResultCache::Bytes bytes = cache_.get(key)) {
      ++stats_.hits;
      return {ServeOutcome::kHit, key, std::move(bytes)};
    }
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      // Single-flight dedup: join the execution already under way.
      flight = it->second;
      ++stats_.coalesced;
      std::lock_guard<std::mutex> flock(flight->m);
      ++flight->waiters;
    } else {
      // Leader path: the admission decision is taken under the server lock,
      // so between "no flight exists" and "flight registered" no duplicate
      // can slip in and start a second execution.
      id = next_request_id_++;
      switch (admission_.offer(id, priority, now)) {
        case AdmissionDecision::kShedRate:
          ++stats_.shed_rate;
          return {ServeOutcome::kShedRate, key, nullptr};
        case AdmissionDecision::kShedQueueFull:
          ++stats_.shed_queue_full;
          return {ServeOutcome::kShedQueueFull, key, nullptr};
        case AdmissionDecision::kQueued:
          ticket = std::make_shared<QueuedTicket>();
          queued_[id] = ticket;
          [[fallthrough]];
        case AdmissionDecision::kAdmitted:
          flight = std::make_shared<Flight>();
          inflight_[key] = flight;
          leader = true;
          break;
      }
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> flock(flight->m);
    flight->cv.wait(flock, [&] { return flight->done; });
    if (flight->failed) {
      const core::SimError err = flight->error;
      flock.unlock();
      core::throw_sim_error(err.kind, err.context, err.cell);
    }
    return {ServeOutcome::kCoalesced, key, flight->bytes};
  }

  if (ticket != nullptr) {
    // Queued: wait for a finishing execution to promote this id.
    std::unique_lock<std::mutex> tlock(ticket->m);
    ticket->cv.wait(tlock, [&] { return ticket->promoted; });
    tlock.unlock();
    std::lock_guard<std::mutex> lock(mutex_);
    queued_.erase(id);
  }

  return run_as_leader(query, key, flight, now);
}

ScenarioResponse ScenarioServer::run_as_leader(
    const ScenarioQuery& query, const std::string& key,
    const std::shared_ptr<Flight>& flight, double now) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.executions;
  }
  ResultCache::Bytes bytes;
  try {
    if (config_.execution_hook) config_.execution_hook(query, key);
    const core::TimedConfig tc = to_timed_config(query);
    const core::TimedResult res = core::run_timed(tc);
    const obs::RunReport report = core::build_run_report(tc, res, nullptr);
    std::ostringstream os;
    report.write_json(os);
    os << '\n';
    bytes = std::make_shared<const std::string>(os.str());
  } catch (...) {
    const core::SimError err = core::classify_current_exception();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
      inflight_.erase(key);  // never poison the cache: next submit re-runs
    }
    complete_and_promote(now);
    {
      std::lock_guard<std::mutex> flock(flight->m);
      flight->failed = true;
      flight->error = err;
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;  // the leader rethrows the original typed exception
  }

  // Publish before retiring the flight: a request arriving in between sees
  // either the in-flight entry (coalesces) or the cached bytes (hits) —
  // never a gap that would start a second execution.
  cache_.put(key, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    inflight_.erase(key);
  }
  complete_and_promote(now);
  {
    std::lock_guard<std::mutex> flock(flight->m);
    flight->bytes = bytes;
    flight->done = true;
  }
  flight->cv.notify_all();
  return {ServeOutcome::kMiss, key, std::move(bytes)};
}

void ScenarioServer::complete_and_promote(double now) {
  const long long promoted = admission_.complete(now);
  if (promoted < 0) return;
  std::shared_ptr<QueuedTicket> ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = queued_.find(static_cast<std::uint64_t>(promoted));
    if (it != queued_.end()) ticket = it->second;
  }
  if (ticket == nullptr) return;  // promoted id already gone (never expected)
  {
    std::lock_guard<std::mutex> tlock(ticket->m);
    ticket->promoted = true;
  }
  ticket->cv.notify_all();
}

ScenarioServer::Stats ScenarioServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t ScenarioServer::inflight_waiters(const std::string& key) const {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return 0;
    flight = it->second;
  }
  std::lock_guard<std::mutex> flock(flight->m);
  return flight->waiters;
}

void ScenarioServer::publish_metrics(obs::MetricsRegistry& metrics) const {
  const Stats s = stats();
  const ResultCache::Stats c = cache_.stats();
  const auto set = [&metrics](const char* name, double v) {
    metrics.gauge(name).set(v);
  };
  set("service.requests", static_cast<double>(s.requests));
  set("service.hits", static_cast<double>(s.hits));
  set("service.misses", static_cast<double>(s.misses));
  set("service.executions", static_cast<double>(s.executions));
  set("service.coalesced", static_cast<double>(s.coalesced));
  set("service.shed_rate", static_cast<double>(s.shed_rate));
  set("service.shed_queue_full", static_cast<double>(s.shed_queue_full));
  set("service.errors", static_cast<double>(s.errors));
  set("service.hit_ratio",
      s.requests == 0
          ? 0.0
          : static_cast<double>(s.hits) / static_cast<double>(s.requests));
  set("service.cache_size", static_cast<double>(cache_.size()));
  set("service.cache_capacity", static_cast<double>(cache_.capacity()));
  set("service.cache_insertions", static_cast<double>(c.insertions));
  set("service.cache_evictions", static_cast<double>(c.evictions));
  admission_.publish_metrics(metrics);
}

void ScenarioServer::write_service_stats(std::ostream& os) const {
  const Stats s = stats();
  const ResultCache::Stats c = cache_.stats();
  const AdmissionStats a = admission_.stats();
  os << "{\"schema\":\"" << kServiceStatsSchemaName
     << "\",\"schema_version\":" << kServiceStatsSchemaVersion
     << ",\"requests\":" << s.requests << ",\"hits\":" << s.hits
     << ",\"misses\":" << s.misses << ",\"executions\":" << s.executions
     << ",\"coalesced\":" << s.coalesced << ",\"shed_rate\":" << s.shed_rate
     << ",\"shed_queue_full\":" << s.shed_queue_full
     << ",\"errors\":" << s.errors << ",\"cache\":{\"capacity\":"
     << cache_.capacity() << ",\"size\":" << cache_.size()
     << ",\"hits\":" << c.hits << ",\"misses\":" << c.misses
     << ",\"insertions\":" << c.insertions << ",\"evictions\":" << c.evictions
     << "},\"admission\":{\"offered\":" << a.offered
     << ",\"admitted\":" << a.admitted << ",\"queued\":" << a.queued
     << ",\"promoted\":" << a.promoted << ",\"shed_rate\":" << a.shed_rate
     << ",\"shed_queue_full\":" << a.shed_queue_full
     << ",\"completed\":" << a.completed
     << ",\"peak_in_flight\":" << a.peak_in_flight
     << ",\"peak_queue_depth\":" << a.peak_queue_depth << "}}\n";
}

}  // namespace coop::service
