#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "coop/obs/analysis/compare.hpp"
#include "coop/obs/analysis/critical_path.hpp"
#include "coop/obs/analysis/hb_log.hpp"
#include "coop/obs/analysis/report.hpp"
#include "coop/obs/analysis/wait_states.hpp"
#include "coop/obs/run_report.hpp"
#include "coop/obs/trace.hpp"
#include "support/json_check.hpp"
#include "support/metric_extract.hpp"

namespace obs = coop::obs;
namespace ana = coop::obs::analysis;
namespace cj = coophet_test::json;

namespace {

// --- match_events ------------------------------------------------------------

TEST(MatchEvents, PairsKthSendWithKthRecvPerChannel) {
  ana::HbLog hb;
  // Two messages on channel (0 -> 1, tag 7), recorded out of recv order
  // relative to a second channel (2 -> 1, tag 7).
  hb.send(0, 1, 7, 100, 0.0, 0.1);
  hb.send(0, 1, 7, 200, 1.0, 1.2);
  hb.send(2, 1, 7, 300, 0.5, 0.6);
  hb.recv(1, 0, 7, 0.05, 0.1);
  hb.recv(1, 2, 7, 0.55, 0.6);
  hb.recv(1, 0, 7, 1.1, 1.2);

  const ana::MatchResult m = ana::match_events(hb, 3);
  ASSERT_EQ(m.recvs.size(), 3u);
  EXPECT_EQ(m.unmatched_sends, 0u);
  EXPECT_EQ(m.unmatched_recvs, 0u);

  // FIFO channels: the first (0,1,7) recv got the 100-byte send, the second
  // got the 200-byte one.
  const auto* first = &m.recvs[0];
  for (const auto& r : m.recvs)
    if (r.src == 0 && r.t_begin == 0.05) first = &r;
  EXPECT_EQ(first->bytes, 100u);
  EXPECT_DOUBLE_EQ(first->t_post, 0.0);
  bool saw_second = false;
  for (const auto& r : m.recvs)
    if (r.src == 0 && r.bytes == 200u) {
      saw_second = true;
      EXPECT_DOUBLE_EQ(r.t_begin, 1.1);
      EXPECT_DOUBLE_EQ(r.t_post, 1.0);
    }
  EXPECT_TRUE(saw_second);
}

TEST(MatchEvents, CountsDanglingEventsInsteadOfInventingPairs) {
  ana::HbLog hb;
  hb.send(0, 1, 7, 100, 0.0, 0.1);  // never received
  hb.recv(1, 2, 9, 0.0, 0.5);      // never sent
  const ana::MatchResult m = ana::match_events(hb, 3);
  EXPECT_TRUE(m.recvs.empty());
  EXPECT_EQ(m.unmatched_sends, 1u);
  EXPECT_EQ(m.unmatched_recvs, 1u);
}

TEST(MatchEvents, GroupsKthArrivalsIntoCollectiveOps) {
  ana::HbLog hb;
  // Two allreduces over 2 ranks; rank 1 is last in the first, rank 0 in the
  // second.
  hb.collective_arrive(0, 1.0);
  hb.collective_arrive(1, 2.0);
  hb.collective_return(0, 2.5);
  hb.collective_return(1, 2.5);
  hb.collective_arrive(1, 3.0);
  hb.collective_arrive(0, 4.0);
  hb.collective_return(0, 4.5);
  hb.collective_return(1, 4.5);

  const ana::MatchResult m = ana::match_events(hb, 2);
  ASSERT_EQ(m.collectives.size(), 2u);
  EXPECT_DOUBLE_EQ(m.collectives[0].t_last, 2.0);
  EXPECT_EQ(m.collectives[0].last_rank, 1);
  EXPECT_DOUBLE_EQ(m.collectives[1].t_last, 4.0);
  EXPECT_EQ(m.collectives[1].last_rank, 0);
}

// --- classify_waits ----------------------------------------------------------

TEST(ClassifyWaits, LateSenderBlamedOnTheSender) {
  ana::HbLog hb;
  // Rank 1 posts its recv at t=1.0; rank 0 only posts the send at t=3.0 and
  // the payload lands at t=3.5. Receiver waited 2.5 s: 2.0 s of late sender
  // plus 0.5 s of wire.
  hb.send(0, 1, 7, 100, 3.0, 3.5);
  hb.recv(1, 0, 7, 1.0, 3.5);

  const auto m = ana::match_events(hb, 2);
  const ana::WaitStates w = ana::classify_waits(m, hb, 2);
  EXPECT_DOUBLE_EQ(w.per_rank[1].late_sender_s, 2.0);
  EXPECT_DOUBLE_EQ(w.per_rank[1].transfer_s, 0.5);
  EXPECT_DOUBLE_EQ(w.per_rank[0].comm_total(), 0.0);
  EXPECT_DOUBLE_EQ(w.totals.late_sender_s, 2.0);
  // Blame: receiver 1 idled because of sender 0 — wire time blames nobody.
  EXPECT_DOUBLE_EQ(w.blame_of(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(w.blamed_on(0), 2.0);
  EXPECT_DOUBLE_EQ(w.blamed_on(1), 0.0);
}

TEST(ClassifyWaits, EarlySenderIsAllTransferNoBlame) {
  ana::HbLog hb;
  // Send posted long before the recv: the receiver only pays the residual
  // wire time, nobody is blamed.
  hb.send(0, 1, 7, 100, 0.0, 2.0);
  hb.recv(1, 0, 7, 1.5, 2.0);
  const auto m = ana::match_events(hb, 2);
  const ana::WaitStates w = ana::classify_waits(m, hb, 2);
  EXPECT_DOUBLE_EQ(w.per_rank[1].late_sender_s, 0.0);
  EXPECT_DOUBLE_EQ(w.per_rank[1].transfer_s, 0.5);
  EXPECT_DOUBLE_EQ(w.blamed_on(0), 0.0);
}

TEST(ClassifyWaits, WaitAtAllreduceBlamedOnLastArriver) {
  ana::HbLog hb;
  for (int q : {0, 1, 2}) hb.collective_arrive(q, 1.0 + 2.0 * q);  // 1, 3, 5
  for (int q : {0, 1, 2}) hb.collective_return(q, 5.5);
  const auto m = ana::match_events(hb, 3);
  const ana::WaitStates w = ana::classify_waits(m, hb, 3);
  EXPECT_DOUBLE_EQ(w.per_rank[0].wait_at_allreduce_s, 4.0);
  EXPECT_DOUBLE_EQ(w.per_rank[1].wait_at_allreduce_s, 2.0);
  EXPECT_DOUBLE_EQ(w.per_rank[2].wait_at_allreduce_s, 0.0);
  for (int q : {0, 1, 2})
    EXPECT_DOUBLE_EQ(w.per_rank[q].collective_transfer_s, 0.5);
  EXPECT_DOUBLE_EQ(w.blamed_on(2), 6.0);  // 4 + 2 from the earlier arrivers
  EXPECT_DOUBLE_EQ(w.blame_of(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(w.blame_of(1, 2), 2.0);
}

TEST(ClassifyWaits, GpuDrainIsSeparateFromCommWait) {
  ana::HbLog hb;
  hb.gpu_drain(0, 1.0, 2.0, 0.3);
  hb.gpu_drain(0, 2.0, 3.0, 0.2);
  const auto m = ana::match_events(hb, 1);
  const ana::WaitStates w = ana::classify_waits(m, hb, 1);
  EXPECT_DOUBLE_EQ(w.per_rank[0].gpu_drain_s, 0.5);
  EXPECT_DOUBLE_EQ(w.per_rank[0].comm_total(), 0.0);
}

// --- compute_critical_path ---------------------------------------------------

/// Two-rank late-sender scenario: rank 0 computes until 2.0 and sends; rank
/// 1 finishes its own compute at 1.0, stalls in halo-wait until the payload
/// lands at 2.2, computes again until 3.0 and ends the run. The critical
/// path must run 0's compute -> hop -> 1's tail.
struct LateSenderRun {
  obs::Tracer tracer;
  ana::HbLog hb;
  LateSenderRun() {
    tracer.span(0, 0, "compute", "phase", 0.0, 2.0);
    tracer.span(0, 0, "flux_sweep_x", "kernel", 0.0, 2.0);
    tracer.span(0, 1, "compute", "phase", 0.0, 1.0);
    tracer.span(0, 1, "halo-wait", "phase", 1.0, 2.2);
    tracer.span(0, 1, "compute", "phase", 2.2, 3.0);
    tracer.span(0, 1, "eos_lookup", "kernel", 2.2, 3.0);
    hb.send(0, 1, 7, 100, 2.0, 2.2);
    hb.recv(1, 0, 7, 1.0, 2.2);
  }
};

TEST(CriticalPath, SegmentsTileTheTracedMakespanContiguously) {
  LateSenderRun run;
  const auto m = ana::match_events(run.hb, 2);
  const ana::CriticalPath cp =
      ana::compute_critical_path(run.tracer, m, 2);
  ASSERT_TRUE(cp.complete);
  EXPECT_EQ(cp.end_rank, 1);
  EXPECT_DOUBLE_EQ(cp.t_start, 0.0);
  EXPECT_DOUBLE_EQ(cp.t_end, 3.0);
  EXPECT_NEAR(cp.length_s, 3.0, 1e-9);

  ASSERT_FALSE(cp.segments.empty());
  // Contiguous forward tiling, no overlaps or gaps.
  double prev = cp.t_start;
  for (const auto& s : cp.segments) {
    EXPECT_NEAR(s.t_begin, prev, 1e-9);
    EXPECT_GE(s.t_end, s.t_begin);
    prev = s.t_end;
  }
  EXPECT_NEAR(prev, cp.t_end, 1e-9);
  // Kind shares sum to the length.
  EXPECT_NEAR(cp.compute_s + cp.halo_s + cp.reduce_s + cp.rebalance_s +
                  cp.other_s,
              cp.length_s, 1e-9);
}

TEST(CriticalPath, LateSenderPathHopsThroughTheSender) {
  LateSenderRun run;
  const auto m = ana::match_events(run.hb, 2);
  const ana::CriticalPath cp =
      ana::compute_critical_path(run.tracer, m, 2);
  ASSERT_EQ(cp.per_rank_s.size(), 2u);
  // Rank 0's compute is on the path (the receiver idled for it)...
  EXPECT_GT(cp.per_rank_s[0], 0.0);
  // ...as is rank 1's closing compute.
  EXPECT_GT(cp.per_rank_s[1], 0.0);
  EXPECT_NEAR(cp.per_rank_s[0] + cp.per_rank_s[1], cp.length_s, 1e-9);
  // The sender-side kernel dominates the path's kernel attribution.
  ASSERT_FALSE(cp.kernels.empty());
  EXPECT_EQ(cp.kernels[0].first, "flux_sweep_x");
}

TEST(CriticalPath, SoloRankPathIsItsOwnTimeline) {
  obs::Tracer t;
  t.span(0, 0, "compute", "phase", 0.0, 2.0);
  t.span(0, 0, "reduce", "phase", 2.0, 2.5);
  ana::HbLog hb;
  const auto m = ana::match_events(hb, 1);
  const ana::CriticalPath cp = ana::compute_critical_path(t, m, 1);
  ASSERT_TRUE(cp.complete);
  EXPECT_EQ(cp.end_rank, 0);
  EXPECT_NEAR(cp.length_s, 2.5, 1e-9);
  EXPECT_NEAR(cp.per_rank_s[0], cp.length_s, 1e-9);
}

TEST(CriticalPath, EmptyTraceYieldsEmptyPath) {
  obs::Tracer t;
  ana::HbLog hb;
  const auto m = ana::match_events(hb, 2);
  const ana::CriticalPath cp = ana::compute_critical_path(t, m, 2);
  EXPECT_TRUE(cp.segments.empty());
  EXPECT_DOUBLE_EQ(cp.length_s, 0.0);
}

// --- analyze_run / report ----------------------------------------------------

TEST(CritPathReport, AnalyzeRunCoversTheMeasuredWait) {
  LateSenderRun run;
  const ana::CritPathReport rep =
      ana::analyze_run(run.tracer, run.hb, 2, 3.0);
  EXPECT_EQ(rep.ranks, 2);
  // Rank 1's halo-wait span is 1.2 s; late-sender (1.0) + transfer (0.2)
  // attribute all of it.
  EXPECT_NEAR(rep.measured_wait_s, 1.2, 1e-9);
  EXPECT_NEAR(rep.attributed_wait_s, 1.2, 1e-9);
  EXPECT_NEAR(rep.coverage_pct, 100.0, 1e-6);
  EXPECT_EQ(rep.unmatched_events, 0u);
  ASSERT_EQ(rep.per_rank.size(), 2u);
  EXPECT_NEAR(rep.per_rank[0].blame_received_s, 1.0, 1e-9);
  EXPECT_NEAR(rep.per_rank[1].waits.late_sender_s, 1.0, 1e-9);
  EXPECT_NEAR(rep.max_rank_busy_s, 2.0, 1e-9);  // rank 0's compute
  EXPECT_GE(rep.path.length_s, rep.max_rank_busy_s - 1e-9);
  EXPECT_LE(rep.path.length_s, rep.makespan_s + 1e-9);
  ASSERT_FALSE(rep.top_blame.empty());
  EXPECT_EQ(rep.top_blame[0].victim, 1);
  EXPECT_EQ(rep.top_blame[0].culprit, 0);
}

TEST(CritPathReport, JsonIsSchemaValidUnderTheStrictParser) {
  LateSenderRun run;
  ana::CritPathReport rep = ana::analyze_run(run.tracer, run.hb, 2, 3.0);
  rep.label = "unit";
  rep.mode = "heterogeneous";
  rep.figure = 18;
  std::ostringstream os;
  rep.write_json(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset;
  EXPECT_EQ(cj::check_artifact_schema(p.value, ana::kCritPathSchemaName), "");
  EXPECT_EQ(cj::first_missing_key(
                p.value, {"wait_attribution", "per_rank", "top_blame",
                          "critical_path", "balancer_check"}),
            "");
  const auto* cp = p.value.find("critical_path");
  ASSERT_NE(cp, nullptr);
  EXPECT_FALSE(cp->find("segments")->array.empty());
}

TEST(CritPathReport, AnnotateTraceAddsFlowArrowsAndStaysValidJson) {
  LateSenderRun run;
  const ana::CritPathReport rep =
      ana::analyze_run(run.tracer, run.hb, 2, 3.0);
  ana::annotate_trace(run.tracer, run.hb, rep);
  EXPECT_GE(run.tracer.flow_count("critpath"), 1u);   // rank hops
  EXPECT_GE(run.tracer.flow_count("late-sender"), 1u);
  std::ostringstream os;
  run.tracer.write_chrome_trace(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset;
  // Flow events export as matched s/f pairs with ids.
  std::size_t starts = 0, finishes = 0;
  for (const auto& e : p.value.find("traceEvents")->array) {
    const std::string ph = e.find("ph")->str;
    if (ph == "s") ++starts;
    if (ph == "f") {
      ++finishes;
      EXPECT_EQ(e.find("bp")->str, "e");
    }
  }
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);
}

TEST(CritPathReport, BalancerCrossCheckAgreesOnItsOwnAttribution) {
  LateSenderRun run;
  const std::vector<std::uint8_t> is_gpu = {1, 0};  // rank 0 gpu, rank 1 cpu
  ana::CritPathReport rep =
      ana::analyze_run(run.tracer, run.hb, 2, 3.0, &is_gpu);
  // One kind idle the whole run: the check refuses to engage.
  rep.cross_check_balancer(0.0, 2.0);
  EXPECT_FALSE(rep.balancer_checked);
  // CPU rank 1 was the 1.0 s-late receiver of GPU rank 0's send, so the
  // analyzer's attributed gap (its late-sender wait) explains a matching
  // observed gap.
  rep.cross_check_balancer(1.0, 2.0);
  EXPECT_TRUE(rep.balancer_checked);
  EXPECT_NEAR(rep.observed_gap_s, 1.0, 1e-9);
  EXPECT_NEAR(rep.attributed_gap_s, 1.0, 1e-9);
  EXPECT_TRUE(rep.balancer_explained);
}

// --- compare_reports ---------------------------------------------------------

TEST(CompareReports, BandsAreMaxOfAbsAndRel) {
  ana::MetricMap base = {{"a", 10.0}, {"b", 5.0}};
  ana::MetricMap cur = {{"a", 10.15}, {"b", 5.0}};
  std::map<std::string, ana::Tolerance> tol;
  tol["a"] = {0.02, 0.0};  // 2% of 10 = 0.2 band
  auto r = ana::compare_reports(base, cur, tol, {});
  EXPECT_TRUE(r.ok()) << [&] {
    std::ostringstream os;
    r.write_table(os);
    return os.str();
  }();
  // Tighten to zero: the same drift must fail — this is how CI proves the
  // gate can fire.
  tol["a"] = {0.0, 0.0};
  r = ana::compare_reports(base, cur, tol, {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.failures, 1);
}

TEST(CompareReports, MissingAndNonFiniteCurrentMetricsFail) {
  ana::MetricMap base = {{"a", 1.0}, {"b", 2.0}};
  ana::MetricMap cur = {{"a", std::nan("")}};
  const auto r = ana::compare_reports(base, cur, {}, {0.5, 0.5});
  EXPECT_EQ(r.failures, 2);
  ASSERT_EQ(r.checks.size(), 2u);
  EXPECT_FALSE(r.checks[0].ok);  // NaN never passes
  EXPECT_TRUE(r.checks[1].missing);
}

TEST(CompareReports, ExtraCurrentMetricsAreIgnored) {
  ana::MetricMap base = {{"a", 1.0}};
  ana::MetricMap cur = {{"a", 1.0}, {"new_metric", 99.0}};
  const auto r = ana::compare_reports(base, cur, {}, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.checks.size(), 1u);
}

/// The CLI gate reads metrics from JSON with
/// `coophet_test::json::extract_report_metrics`; the in-process gate uses
/// `report_metrics` on the live struct. Lock them to each other through the
/// actual serializer so the two can never drift.
TEST(CompareReports, DomExtractorMatchesReportMetricsExactly) {
  obs::RunReport r;
  r.label = "lock";
  r.mode = "heterogeneous";
  r.makespan_s = 12.5;
  r.imbalance_pct = 3.25;
  r.mean_utilization_pct = 91.0;
  r.min_utilization_pct = 80.0;
  r.cpu_fraction_final = 0.22;
  r.achieved_flops = 1e12;
  r.model_peak_flops = 4e12;
  r.flops_efficiency_pct = 25.0;
  r.max_hetero_gain_pct = 37.5;
  for (long zones : {1000L, 8000L}) {
    obs::SweepRow row;
    row.x = zones / 10;
    row.y = 10;
    row.z = 1;
    row.zones = zones;
    row.t_default = 1.0 + zones;
    row.t_mps = 2.0 + zones;
    row.t_hetero = 0.5 + zones;
    r.sweep.push_back(row);
  }

  std::ostringstream os;
  r.write_json(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error;

  const auto from_struct = ana::report_metrics(r);
  const auto from_dom = cj::extract_report_metrics(p.value);
  ASSERT_EQ(from_struct.size(), from_dom.size());
  for (std::size_t i = 0; i < from_struct.size(); ++i) {
    EXPECT_EQ(from_struct[i].first, from_dom[i].first) << "index " << i;
    // %.17g serialization round-trips doubles exactly.
    EXPECT_DOUBLE_EQ(from_struct[i].second, from_dom[i].second)
        << from_struct[i].first;
  }
}

// --- HbLog -------------------------------------------------------------------

TEST(HbLog, ClearEmptiesEveryEventKind) {
  ana::HbLog hb;
  hb.send(0, 1, 0, 1, 0.0, 0.1);
  hb.recv(1, 0, 0, 0.0, 0.1);
  hb.collective_arrive(0, 0.2);
  hb.collective_return(0, 0.3);
  hb.gpu_drain(0, 0.0, 0.1, 0.05);
  EXPECT_FALSE(hb.empty());
  hb.clear();
  EXPECT_TRUE(hb.empty());
  EXPECT_TRUE(hb.sends().empty());
  EXPECT_TRUE(hb.gpu_drains().empty());
}

}  // namespace
