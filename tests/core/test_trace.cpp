#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "coop/core/timed_sim.hpp"
#include "coop/core/trace.hpp"

namespace core = coop::core;
using coop::mesh::Box;

namespace {

core::TimedResult traced_run(core::TraceRecorder& trace,
                             core::NodeMode mode = core::NodeMode::kMpsPerGpu,
                             int steps = 4) {
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = Box{{0, 0, 0}, {320, 320, 160}};
  tc.timesteps = steps;
  tc.trace = &trace;
  return core::run_timed(tc);
}

TEST(Trace, RecordsAllPhasesForAllRanksAndSteps) {
  core::TraceRecorder trace;
  const auto r = traced_run(trace, core::NodeMode::kMpsPerGpu, 4);
  // 16 ranks x 4 steps x 3 phases (compute, halo-wait, reduce).
  EXPECT_EQ(trace.spans().size(), 16u * 4u * 3u);
  (void)r;
}

TEST(Trace, SpansAreWellFormedAndWithinMakespan) {
  core::TraceRecorder trace;
  const auto r = traced_run(trace);
  for (const auto& s : trace.spans()) {
    EXPECT_LE(s.t_begin, s.t_end);
    EXPECT_GE(s.t_begin, 0.0);
    EXPECT_LE(s.t_end, r.makespan + 1e-12);
    EXPECT_GE(s.rank, 0);
    EXPECT_LT(s.rank, 16);
  }
}

TEST(Trace, PerRankSpansAreChronologicallyOrdered) {
  core::TraceRecorder trace;
  traced_run(trace);
  for (int rank = 0; rank < 16; ++rank) {
    double last_end = 0;
    for (const auto& s : trace.spans()) {
      if (s.rank != rank) continue;
      EXPECT_GE(s.t_begin, last_end - 1e-12);
      last_end = s.t_end;
    }
  }
}

TEST(Trace, ComputeDominatesOnNode) {
  // On-node halo exchange is cheap (the paper communicates through host
  // memory): compute must dwarf halo-wait for GPU ranks.
  core::TraceRecorder trace;
  traced_run(trace);
  const double compute = trace.total_time(0, core::Phase::kCompute);
  const double halo = trace.total_time(0, core::Phase::kHaloWait);
  EXPECT_GT(compute, 5.0 * halo);
}

TEST(Trace, HeterogeneousShowsCpuGpuImbalance) {
  // The Gantt signature of 6.2: GPU ranks (0-3) wait in the reduce while
  // the CPU slabs (4-15) finish, or vice versa; compute times must differ.
  core::TraceRecorder trace;
  core::TimedConfig tc;
  tc.mode = core::NodeMode::kHeterogeneous;
  tc.global = Box{{0, 0, 0}, {320, 240, 160}};  // y too small: CPU-bound
  tc.timesteps = 3;
  tc.trace = &trace;
  (void)core::run_timed(tc);
  const double gpu_compute = trace.total_time(0, core::Phase::kCompute);
  const double cpu_compute = trace.total_time(10, core::Phase::kCompute);
  EXPECT_GT(cpu_compute, gpu_compute);  // the paper's small-y bottleneck
  // The GPU rank absorbs the imbalance waiting for its slow CPU-slab
  // neighbor's halo message (the reduce then starts nearly synchronized).
  EXPECT_GT(trace.total_time(0, core::Phase::kHaloWait),
            trace.total_time(10, core::Phase::kHaloWait));
}

TEST(Trace, ChromeTraceExportIsValidJsonShape) {
  core::TraceRecorder trace;
  traced_run(trace, core::NodeMode::kOneRankPerGpu, 2);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string j = os.str();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces (no nesting surprises in our flat emitter).
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  // One event object per span.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(j.begin(), j.end(), 'X')),
            trace.spans().size());
}

TEST(Trace, CsvExportHasHeaderAndOneRowPerSpan) {
  core::TraceRecorder trace;
  traced_run(trace, core::NodeMode::kOneRankPerGpu, 2);
  std::ostringstream os;
  trace.write_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("rank,step,phase,begin,end\n", 0), 0u);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            trace.spans().size() + 1);
}

TEST(Trace, ChromeTraceKeepsSubMicrosecondPrecisionLateInRun) {
  // Regression: the exporter used to stream doubles at the default ostream
  // precision (6 significant digits), so a span 1 hour into a run
  // (ts = 3.6e9 us) lost everything below ~1000 us — late spans collapsed
  // onto each other and Perfetto rendered them zero-width. Timestamps are
  // now written in fixed notation with nanosecond resolution.
  core::TraceRecorder trace;
  const double t0 = 3600.0001234;  // 1 h + 123.4 us into the run
  trace.record(0, 0, core::Phase::kCompute, t0, t0 + 0.0003);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string j = os.str();
  // Full-resolution fixed-point microseconds, not "3.6e+09".
  EXPECT_NE(j.find("\"ts\":3600000123.400"), std::string::npos) << j;
  EXPECT_NE(j.find("\"dur\":300.000"), std::string::npos) << j;
  EXPECT_EQ(j.find("e+"), std::string::npos) << j;
}

TEST(Trace, NoTraceByDefault) {
  core::TimedConfig tc;
  EXPECT_EQ(tc.trace, nullptr);
  core::TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  trace.record(0, 0, core::Phase::kCompute, 0.0, 1.0);
  EXPECT_FALSE(trace.empty());
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
