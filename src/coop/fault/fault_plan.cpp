#include "coop/fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace coop::fault {

namespace {

/// Private counter-free PRNG so plans are reproducible independent of the
/// standard library's distribution implementations (std::*_distribution is
/// not specified bit-for-bit across toolchains).
struct SplitMix64 {
  std::uint64_t s;
  std::uint64_t next() noexcept {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1) with 53 random bits.
  double u01() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  /// Exponential with the given mean (inverse CDF; log1p keeps u=0 finite).
  double expo(double mean) noexcept { return -mean * std::log1p(-u01()); }
  int below(int n) noexcept {
    return static_cast<int>(next() % static_cast<std::uint64_t>(n));
  }
};

void check(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("FaultPlan::validate: " + what);
}

}  // namespace

void FaultPlan::add(const FaultEvent& e) {
  auto it = std::upper_bound(
      events.begin(), events.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events.insert(it, e);
}

void FaultPlan::validate(int ranks, int nodes, int gpus_per_node) const {
  for (const FaultEvent& e : events) {
    check(e.time >= 0.0, "negative event time");
    check(e.count >= 1, "count < 1");
    check(e.factor >= 1.0, "slowdown factor < 1");
    check(e.duration >= 0.0, "negative duration");
    switch (e.kind) {
      case FaultKind::kGpuDeath:
        check(e.node >= 0 && e.node < nodes, "gpu-death node out of range");
        check(e.gpu >= 0 && e.gpu < gpus_per_node,
              "gpu-death gpu out of range");
        break;
      case FaultKind::kMpsCrash:
        check(e.node >= 0 && e.node < nodes, "mps-crash node out of range");
        break;
      case FaultKind::kTransientLaunch:
      case FaultKind::kSlowdown:
      case FaultKind::kHaloDrop:
      case FaultKind::kPoolExhaustion:
        check(e.rank >= 0 && e.rank < ranks, "target rank out of range");
        break;
    }
  }
  check(std::is_sorted(events.begin(), events.end(),
                       [](const FaultEvent& a, const FaultEvent& b) {
                         return a.time < b.time;
                       }),
        "events not sorted by time");
}

FaultPlan make_random_plan(std::uint64_t seed, const PlanConfig& cfg) {
  if (cfg.horizon_s <= 0.0)
    throw std::invalid_argument("make_random_plan: horizon <= 0");
  if (cfg.ranks <= 0 || cfg.nodes <= 0 || cfg.gpus_per_node <= 0)
    throw std::invalid_argument("make_random_plan: nonpositive topology");

  FaultPlan plan;
  // One independent stream per kind: arrivals of one kind never shift when
  // another kind's rate changes.
  const auto sample_kind = [&](FaultKind kind, double rate,
                               auto&& fill_target) {
    if (rate <= 0.0) return;
    SplitMix64 rng{seed ^ (0x5151de5ca7a1ull * (static_cast<std::uint64_t>(kind) + 1))};
    double t = rng.expo(1.0 / rate);
    while (t < cfg.horizon_s) {
      FaultEvent e;
      e.time = t;
      e.kind = kind;
      fill_target(e, rng);
      plan.add(e);
      t += rng.expo(1.0 / rate);
    }
  };

  sample_kind(FaultKind::kGpuDeath, cfg.gpu_death_rate,
              [&](FaultEvent& e, SplitMix64& rng) {
                e.node = rng.below(cfg.nodes);
                e.gpu = rng.below(cfg.gpus_per_node);
              });
  sample_kind(FaultKind::kTransientLaunch, cfg.transient_rate,
              [&](FaultEvent& e, SplitMix64& rng) {
                e.rank = rng.below(cfg.ranks);
                e.count = 1 + rng.below(cfg.max_burst);
              });
  sample_kind(FaultKind::kMpsCrash, cfg.mps_crash_rate,
              [&](FaultEvent& e, SplitMix64& rng) {
                e.node = rng.below(cfg.nodes);
              });
  sample_kind(FaultKind::kSlowdown, cfg.slowdown_rate,
              [&](FaultEvent& e, SplitMix64& rng) {
                e.rank = rng.below(cfg.ranks);
                e.duration = rng.expo(cfg.slowdown_mean_s);
                e.factor = cfg.slowdown_factor;
              });
  sample_kind(FaultKind::kHaloDrop, cfg.halo_drop_rate,
              [&](FaultEvent& e, SplitMix64& rng) {
                e.rank = rng.below(cfg.ranks);
                e.count = 1 + rng.below(cfg.max_burst);
              });
  sample_kind(FaultKind::kPoolExhaustion, cfg.pool_exhaustion_rate,
              [&](FaultEvent& e, SplitMix64& rng) {
                e.rank = rng.below(cfg.ranks);
              });
  return plan;
}

}  // namespace coop::fault
