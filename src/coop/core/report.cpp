#include "coop/core/report.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace coop::core {

obs::RunReport build_run_report(const TimedConfig& cfg, const TimedResult& res,
                                const obs::Tracer* tracer,
                                std::size_t top_n) {
  obs::RunReport rep;
  rep.mode = to_string(cfg.mode);
  rep.nx = cfg.global.nx();
  rep.ny = cfg.global.ny();
  rep.nz = cfg.global.nz();
  rep.timesteps = cfg.timesteps;
  rep.ranks = res.ranks;
  rep.nodes = cfg.nodes;
  rep.makespan_s = res.makespan;
  rep.messages = res.messages;
  rep.halo_bytes = res.bytes;
  rep.cpu_fraction_final = res.final_cpu_fraction;
  rep.lb_iterations_to_converge = res.lb_iterations_to_converge;

  // Fault tallies straight from the resilience stats.
  const auto& rs = res.resilience;
  rep.faults.injected = rs.faults_injected;
  rep.faults.recovered = rs.faults_recovered;
  rep.faults.gpu_deaths = rs.gpu_deaths;
  rep.faults.policy_flips = rs.policy_flips;
  rep.faults.launch_retries = rs.launch_retries;
  rep.faults.mps_restarts = rs.mps_restarts;
  rep.faults.halo_retransmits = rs.halo_retransmits;
  rep.faults.pool_exhaustions = rs.pool_exhaustions;
  rep.faults.checkpoints_taken = rs.checkpoints_taken;
  rep.faults.rollbacks = rs.rollbacks;
  rep.faults.replayed_iterations = rs.replayed_iterations;
  rep.faults.retry_time_s = rs.retry_time;
  rep.faults.checkpoint_time_s = rs.checkpoint_time;
  rep.faults.rework_time_s = rs.rework_time;

  // Achieved vs. roofline-peak FLOPS. "Achieved" counts useful work only
  // (the configured mesh times the configured steps); replayed iterations
  // stretch the makespan without adding useful zones, so faults depress it.
  const auto catalog = hydro::KernelCatalog::scaled(cfg.catalog_kernels);
  const auto work = catalog.total();
  const double zones = static_cast<double>(cfg.global.zones());
  if (res.makespan > 0.0)
    rep.achieved_flops =
        zones * cfg.timesteps * work.flops_per_zone / res.makespan;
  const RankLayout layout =
      make_rank_layout(cfg.mode, cfg.node, cfg.ranks_per_gpu);
  const double cpu_peak = static_cast<double>(layout.active_cores) *
                          cfg.node.cpu.core_flops_per_s;
  const double gpu_peak =
      static_cast<double>(cfg.node.gpu_count) * cfg.node.gpu.flops_per_s;
  double node_peak = 0.0;
  switch (cfg.mode) {
    case NodeMode::kCpuOnly: node_peak = cpu_peak; break;
    case NodeMode::kOneRankPerGpu:
    case NodeMode::kMpsPerGpu: node_peak = gpu_peak; break;
    case NodeMode::kHeterogeneous: node_peak = cpu_peak + gpu_peak; break;
  }
  rep.model_peak_flops = node_peak * cfg.nodes;
  if (rep.model_peak_flops > 0.0)
    rep.flops_efficiency_pct =
        100.0 * rep.achieved_flops / rep.model_peak_flops;

  // Roofline position: pair the mode's peak-flops mix with the matching
  // bandwidth mix, then place the catalog's aggregate intensity (and each
  // top kernel's, below) on that roof. flops_efficiency_pct is best read
  // against roofline_frac_pct — a bandwidth-bound step can't reach 100% of
  // peak no matter how perfectly it is balanced.
  const double cpu_bw = static_cast<double>(layout.active_cores) *
                        cfg.node.cpu.core_bandwidth_bytes_per_s;
  const double gpu_bw = static_cast<double>(cfg.node.gpu_count) *
                        cfg.node.gpu.bandwidth_bytes_per_s;
  double node_bw = 0.0;
  switch (cfg.mode) {
    case NodeMode::kCpuOnly: node_bw = cpu_bw; break;
    case NodeMode::kOneRankPerGpu:
    case NodeMode::kMpsPerGpu: node_bw = gpu_bw; break;
    case NodeMode::kHeterogeneous: node_bw = cpu_bw + gpu_bw; break;
  }
  const double node_bw_total = node_bw * cfg.nodes;
  rep.intensity_flops_per_byte =
      work.bytes_per_zone > 0.0 ? work.flops_per_zone / work.bytes_per_zone
                                : 0.0;
  rep.roofline_frac_pct =
      100.0 * hydro::roofline_fraction(rep.intensity_flops_per_byte,
                                       rep.model_peak_flops, node_bw_total);

  if (tracer == nullptr || tracer->spans().empty()) {
    // No trace: the coarse imbalance from the per-iteration maxima.
    const double hi =
        std::max(res.avg_max_cpu_compute, res.avg_max_gpu_compute);
    const double lo =
        std::min(res.avg_max_cpu_compute, res.avg_max_gpu_compute);
    if (hi > 0.0 && lo > 0.0) rep.imbalance_pct = 100.0 * (hi - lo) / hi;
    return rep;
  }

  // Per-rank phase totals from the trace's "phase" spans.
  std::vector<obs::PhaseBreakdown> phases(
      static_cast<std::size_t>(std::max(res.ranks, 0)));
  for (const auto& s : tracer->spans()) {
    if (s.cat != "phase") continue;
    if (s.tid < 0 || s.tid >= res.ranks) continue;
    auto& p = phases[static_cast<std::size_t>(s.tid)];
    const double d = s.t_end - s.t_begin;
    if (s.name == "compute") p.compute_s += d;
    else if (s.name == "halo-wait") p.halo_wait_s += d;
    // The LB barrier is the same synchronization wait as the dt reduce;
    // fold it in rather than growing the run_report schema.
    else if (s.name == "reduce" || s.name == "barrier") p.reduce_s += d;
    else if (s.name == "rebalance") p.rebalance_s += d;
  }

  rep.per_rank.reserve(phases.size());
  double compute_max = 0.0, compute_sum = 0.0;
  int active = 0;
  double util_sum = 0.0, util_min = 0.0;
  for (int q = 0; q < res.ranks; ++q) {
    obs::RankReport rr;
    rr.rank = q;
    const auto uq = static_cast<std::size_t>(q);
    rr.zones = uq < res.final_zones_per_rank.size()
                   ? res.final_zones_per_rank[uq]
                   : 0;
    const bool gpu = uq < res.final_rank_is_gpu.size() &&
                     res.final_rank_is_gpu[uq] != 0;
    rr.device = gpu ? "gpu" : "cpu";
    rr.phases = phases[uq];
    if (res.makespan > 0.0)
      rr.utilization_pct = 100.0 * rr.phases.compute_s / res.makespan;
    if (rr.zones > 0) {
      compute_max = std::max(compute_max, rr.phases.compute_s);
      compute_sum += rr.phases.compute_s;
      util_sum += rr.utilization_pct;
      util_min = active == 0 ? rr.utilization_pct
                             : std::min(util_min, rr.utilization_pct);
      ++active;
    }
    rep.per_rank.push_back(std::move(rr));
  }
  if (active > 0 && compute_max > 0.0) {
    const double mean = compute_sum / active;
    rep.imbalance_pct = 100.0 * (compute_max - mean) / compute_max;
    rep.mean_utilization_pct = util_sum / active;
    rep.min_utilization_pct = util_min;
  }

  // Top-N kernels by summed simulated time over every rank and step,
  // annotated with their catalog roofline position (synthetic spans such
  // as um-spill are not catalog kernels and keep zeros).
  std::map<std::string, obs::KernelReport> by_name;
  for (const auto& s : tracer->spans()) {
    if (s.cat != "kernel") continue;
    auto& k = by_name[s.name];
    k.name = s.name;
    k.calls += 1;
    k.seconds += s.t_end - s.t_begin;
  }
  for (const auto& desc : catalog.kernels()) {
    const auto it = by_name.find(desc.name);
    if (it == by_name.end()) continue;
    it->second.intensity_flops_per_byte = desc.intensity();
    it->second.roofline_frac_pct =
        100.0 * hydro::roofline_fraction(desc.intensity(),
                                         rep.model_peak_flops, node_bw_total);
  }
  rep.top_kernels.reserve(by_name.size());
  for (auto& [name, k] : by_name) rep.top_kernels.push_back(std::move(k));
  std::sort(rep.top_kernels.begin(), rep.top_kernels.end(),
            [](const obs::KernelReport& a, const obs::KernelReport& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.name < b.name;
            });
  if (rep.top_kernels.size() > top_n) rep.top_kernels.resize(top_n);

  return rep;
}

obs::analysis::CritPathReport build_critical_path_report(
    const TimedConfig& cfg, const TimedResult& res, const obs::Tracer& tracer,
    const obs::analysis::HbLog& hb) {
  obs::analysis::CritPathReport rep = obs::analysis::analyze_run(
      tracer, hb, res.ranks, res.makespan, &res.final_rank_is_gpu);
  rep.mode = to_string(cfg.mode);
  rep.nodes = cfg.nodes;
  // The balancer observed per-iteration maxima averaged over `timesteps`
  // passes; rescale to total seconds for the gap comparison.
  rep.cross_check_balancer(res.avg_max_cpu_compute * cfg.timesteps,
                           res.avg_max_gpu_compute * cfg.timesteps);
  return rep;
}

}  // namespace coop::core
