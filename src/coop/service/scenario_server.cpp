#include "coop/service/scenario_server.hpp"

#include <iterator>
#include <sstream>
#include <string_view>
#include <utility>

#include "coop/core/report.hpp"
#include "coop/core/sim_error.hpp"
#include "coop/obs/artifact_io.hpp"
#include "coop/obs/json.hpp"
#include "coop/obs/run_report.hpp"
#include "coop/obs/telemetry/sampler.hpp"
#include "coop/obs/trace.hpp"
#include "coop/service/config_key.hpp"

namespace coop::service {

namespace {

namespace flog = obs::log;

/// Outcome labels of the SLO histograms, in emission order. "error" covers
/// executions (and coalesced waits) that rethrew a SimError.
constexpr const char* kLatencyOutcomes[] = {"hit", "miss", "coalesced",
                                            "shed", "error"};

/// Nearest-rank quantile estimate over a fixed-bucket histogram: the upper
/// bound of the bucket holding rank ceil(q * count) (overflow reports the
/// last finite bound — a floor, clearly marked by saturation).
double histogram_quantile(const obs::MetricsRegistry::Histogram& h, double q) {
  if (h.count() == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count()) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts().size(); ++i) {
    seen += h.counts()[i];
    if (seen >= rank)
      return h.bounds()[i < h.bounds().size() ? i : h.bounds().size() - 1];
  }
  return h.bounds().back();
}

}  // namespace

const std::vector<double>& service_latency_bounds() {
  static const std::vector<double> bounds{
      10.0,     31.6,     100.0,    316.0,     1000.0,   3162.0,
      10000.0,  31623.0,  100000.0, 316228.0,  1.0e6};
  return bounds;
}

const std::vector<double>& service_work_step_bounds() {
  // Logical timesteps per request: bound 0 catches the free outcomes (hit,
  // coalesced), the doubling ladder the cold-run costs.
  static const std::vector<double> bounds{0.0,  8.0,   16.0,  32.0,
                                          64.0, 128.0, 256.0};
  return bounds;
}

// --- Query canonicalization --------------------------------------------------

void ScenarioQuery::validate() const {
  const auto bad = [](const std::string& what) {
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ScenarioQuery: " + what);
  };
  if (x < 1 || y < 1 || z < 1)
    bad("extents must be >= 1 (got " + std::to_string(x) + "x" +
        std::to_string(y) + "x" + std::to_string(z) + ")");
  if (timesteps < 1) bad("timesteps must be >= 1");
  if (nodes < 1) bad("nodes must be >= 1");
  if (ranks_per_gpu < 1) bad("ranks_per_gpu must be >= 1");
  if (cpu_fraction > 1.0) bad("cpu_fraction must be <= 1");
  (void)canonical_double(cpu_fraction);  // rejects NaN/Inf
  (void)resolve_node_spec(node);         // rejects unknown node names
}

devmodel::NodeSpec resolve_node_spec(const std::string& name) {
  if (name == "rzhasgpu") return devmodel::NodeSpec::rzhasgpu();
  if (name == "sierra-ea") return devmodel::NodeSpec::sierra_ea();
  core::throw_sim_error(core::SimErrorKind::kConfig,
                        "resolve_node_spec: unknown node spec \"" + name +
                            "\" (known: rzhasgpu, sierra-ea)");
}

std::string scenario_key(const ScenarioQuery& q) {
  q.validate();
  ConfigKeyHasher h;
  h.mix(std::string_view("coophet.scenario"));  // domain tag vs campaign_hash
  h.mix(std::string_view(q.node));
  h.mix(std::string_view(core::to_string(q.mode)));
  h.mix(q.x);
  h.mix(q.y);
  h.mix(q.z);
  h.mix(q.timesteps);
  h.mix(q.nodes);
  h.mix(q.ranks_per_gpu);
  // Every negative cpu_fraction selects the same FLOPS-based initial guess,
  // so all of them are one canonical scenario.
  h.mix(q.cpu_fraction < 0.0 ? -1.0 : q.cpu_fraction);
  h.mix(q.model_um_threshold);
  h.mix(q.model_mps_overlap);
  h.mix(q.compiler_bug);
  h.mix(static_cast<long>(q.faults.events.size()));
  for (const fault::FaultEvent& e : q.faults.events) {
    h.mix(e.time);
    h.mix(std::string_view(fault::to_string(e.kind)));
    h.mix(e.rank);
    h.mix(e.node);
    h.mix(e.gpu);
    h.mix(e.count);
    h.mix(e.duration);
    h.mix(e.factor);
  }
  return h.hex();
}

core::TimedConfig to_timed_config(const ScenarioQuery& q) {
  core::TimedConfig tc;
  tc.mode = q.mode;
  tc.node = resolve_node_spec(q.node);
  tc.global = {{0, 0, 0}, {q.x, q.y, q.z}};
  tc.timesteps = q.timesteps;
  tc.nodes = q.nodes;
  tc.ranks_per_gpu = q.ranks_per_gpu;
  tc.cpu_fraction = q.cpu_fraction;
  tc.model_um_threshold = q.model_um_threshold;
  tc.model_mps_overlap = q.model_mps_overlap;
  tc.compiler_bug = q.compiler_bug;
  if (!q.faults.empty()) {
    // Points at the query's plan: the query must outlive the run (true for
    // the synchronous submit path, where the leader holds the caller's ref).
    tc.faults = &q.faults;
    tc.recovery.checkpoint_interval = 2;
  }
  return tc;
}

const char* to_string(ServeOutcome o) noexcept {
  switch (o) {
    case ServeOutcome::kHit: return "hit";
    case ServeOutcome::kMiss: return "miss";
    case ServeOutcome::kCoalesced: return "coalesced";
    case ServeOutcome::kShedRate: return "shed_rate";
    case ServeOutcome::kShedQueueFull: return "shed_queue_full";
  }
  return "?";
}

// --- Server ------------------------------------------------------------------

void ScenarioServerConfig::validate() const {
  if (cache_capacity == 0)
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ScenarioServerConfig: cache_capacity must be >= 1");
  if (max_attempts < 1)
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ScenarioServerConfig: max_attempts must be >= 1");
  admission.validate();
}

ScenarioServer::ScenarioServer(ScenarioServerConfig config)
    : config_(std::move(config)),
      // AdmissionController and ResultCache each validate their own slice of
      // the config; max_attempts is checked here because nothing downstream
      // owns it.
      admission_(config_.admission),
      cache_(config_.cache_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.max_attempts < 1)
    core::throw_sim_error(core::SimErrorKind::kConfig,
                          "ScenarioServerConfig: max_attempts must be >= 1");
  latency_.reserve(std::size(kLatencyOutcomes));
  for (const char* outcome : kLatencyOutcomes)
    latency_.emplace_back(
        outcome, obs::MetricsRegistry::Histogram(service_latency_bounds()));
}

ScenarioServer::~ScenarioServer() = default;

ScenarioResponse ScenarioServer::submit(const ScenarioQuery& query, double now,
                                        int priority) {
  const auto t_submit = std::chrono::steady_clock::now();
  const std::string key = scenario_key(query);
  // Mint the correlation id and open the per-thread writer before touching
  // any lock: `record` below is lock-free, so the hot path adds no
  // serialization beyond what the server already had.
  const flog::CorrelationId cid =
      next_cid_.fetch_add(1, std::memory_order_relaxed);
  flog::FlightWriter fw = config_.flight != nullptr ? config_.flight->writer(cid)
                                                    : flog::FlightWriter{};
  fw.record(flog::Severity::kInfo, flog::Component::kService, now,
            "req:submit", {{"priority", static_cast<double>(priority)}});

  std::shared_ptr<Flight> flight;
  std::shared_ptr<QueuedTicket> ticket;
  bool leader = false;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    if (ResultCache::Bytes bytes = cache_.get(key)) {
      ++stats_.hits;
      fw.record(flog::Severity::kInfo, flog::Component::kCache, now,
                "cache:hit", {{"bytes", static_cast<double>(bytes->size())}});
      trace_span(cid, "cache-hit", t_submit);
      observe_latency("hit", us_since(t_submit));
      observe_telemetry("hit", query);
      return {ServeOutcome::kHit, key, std::move(bytes), cid};
    }
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      // Single-flight dedup: join the execution already under way.
      flight = it->second;
      ++stats_.coalesced;
      std::lock_guard<std::mutex> flock(flight->m);
      ++flight->waiters;
      fw.record(flog::Severity::kInfo, flog::Component::kService, now,
                "dedup:attach",
                {{"waiters", static_cast<double>(flight->waiters)}});
    } else {
      // Leader path: the admission decision is taken under the server lock,
      // so between "no flight exists" and "flight registered" no duplicate
      // can slip in and start a second execution.
      id = next_request_id_++;
      switch (admission_.offer(id, priority, now)) {
        case AdmissionDecision::kShedRate:
          ++stats_.shed_rate;
          fw.record(flog::Severity::kWarn, flog::Component::kAdmission, now,
                    "admission:shed_rate");
          observe_latency("shed", us_since(t_submit));
          observe_telemetry("shed", query);
          return {ServeOutcome::kShedRate, key, nullptr, cid};
        case AdmissionDecision::kShedQueueFull:
          ++stats_.shed_queue_full;
          fw.record(flog::Severity::kWarn, flog::Component::kAdmission, now,
                    "admission:shed_queue_full");
          observe_latency("shed", us_since(t_submit));
          observe_telemetry("shed", query);
          return {ServeOutcome::kShedQueueFull, key, nullptr, cid};
        case AdmissionDecision::kQueued:
          ticket = std::make_shared<QueuedTicket>();
          queued_[id] = ticket;
          fw.record(flog::Severity::kInfo, flog::Component::kAdmission, now,
                    "admission:queued", {{"id", static_cast<double>(id)}});
          [[fallthrough]];
        case AdmissionDecision::kAdmitted:
          if (ticket == nullptr)
            fw.record(flog::Severity::kInfo, flog::Component::kAdmission, now,
                      "admission:admitted", {{"id", static_cast<double>(id)}});
          flight = std::make_shared<Flight>();
          inflight_[key] = flight;
          leader = true;
          break;
      }
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> flock(flight->m);
    flight->cv.wait(flock, [&] { return flight->done; });
    if (flight->failed) {
      const core::SimError err = flight->error;
      flock.unlock();
      fw.record(flog::Severity::kError, flog::Component::kService, now,
                "dedup:error",
                {{"kind", static_cast<double>(
                      static_cast<int>(err.kind))}});
      trace_span(cid, "coalesce-wait", t_submit);
      observe_latency("error", us_since(t_submit));
      observe_telemetry("error", query);
      core::throw_sim_error(err.kind, err.context, err.cell);
    }
    ResultCache::Bytes bytes = flight->bytes;
    flock.unlock();
    fw.record(flog::Severity::kInfo, flog::Component::kService, now,
              "dedup:served");
    trace_span(cid, "coalesce-wait", t_submit);
    observe_latency("coalesced", us_since(t_submit));
    observe_telemetry("coalesced", query);
    return {ServeOutcome::kCoalesced, key, std::move(bytes), cid};
  }

  if (ticket != nullptr) {
    // Queued: wait for a finishing execution to promote this id.
    const auto t_queued = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> tlock(ticket->m);
    ticket->cv.wait(tlock, [&] { return ticket->promoted; });
    tlock.unlock();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queued_.erase(id);
    }
    fw.record(flog::Severity::kInfo, flog::Component::kAdmission, now,
              "admission:promoted", {{"id", static_cast<double>(id)}});
    trace_span(cid, "queue-wait", t_queued);
  }

  return run_as_leader(query, key, flight, now, fw, cid, t_submit);
}

ScenarioResponse ScenarioServer::run_as_leader(
    const ScenarioQuery& query, const std::string& key,
    const std::shared_ptr<Flight>& flight, double now,
    obs::log::FlightWriter& fw, obs::log::CorrelationId cid,
    std::chrono::steady_clock::time_point t_submit) {
  const auto t_exec = std::chrono::steady_clock::now();
  ResultCache::Bytes bytes;
  for (int attempt = 1;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.executions;
    }
    try {
      fw.record(flog::Severity::kInfo, flog::Component::kService, now,
                "exec:attempt", {{"attempt", static_cast<double>(attempt)}});
      if (config_.execution_hook) config_.execution_hook(query, key);
      core::TimedConfig tc = to_timed_config(query);
      tc.budget = config_.budget;
      // Pure observation: the run's events land on this request's id.
      if (fw.attached()) tc.flight = &fw;
      const core::TimedResult res = core::run_timed(tc);
      const obs::RunReport report = core::build_run_report(tc, res, nullptr);
      std::ostringstream os;
      report.write_json(os);
      os << '\n';
      bytes = std::make_shared<const std::string>(os.str());
      fw.record(flog::Severity::kInfo, flog::Component::kService, now,
                "exec:ok", {{"attempt", static_cast<double>(attempt)}});
      break;
    } catch (...) {
      const core::SimError err = core::classify_current_exception();
      if (err.transient() && attempt < config_.max_attempts) {
        fw.record(flog::Severity::kWarn, flog::Component::kService, now,
                  "exec:retry",
                  {{"attempt", static_cast<double>(attempt)},
                   {"kind", static_cast<double>(static_cast<int>(err.kind))}});
        continue;
      }
      fw.record(flog::Severity::kError, flog::Component::kService, now,
                "exec:error",
                {{"attempt", static_cast<double>(attempt)},
                 {"kind", static_cast<double>(static_cast<int>(err.kind))}});
      // Crash-dump the black box before fanning the failure out: the dump
      // must exist even if a waiter's rethrow escapes the process.
      if (config_.flight != nullptr && !config_.flight_dump_dir.empty()) {
        try {
          config_.flight->dump_crash(config_.flight_dump_dir + "/flight_req" +
                                         std::to_string(cid) + ".json",
                                     "request_error", cid);
        } catch (const obs::IoError&) {
          // Best effort: a failing dump never masks the original error.
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.errors;
        inflight_.erase(key);  // never poison the cache: next submit re-runs
      }
      complete_and_promote(now);
      {
        std::lock_guard<std::mutex> flock(flight->m);
        flight->failed = true;
        flight->error = err;
        flight->done = true;
      }
      flight->cv.notify_all();
      trace_span(cid, "execute", t_exec);
      observe_latency("error", us_since(t_submit));
      observe_telemetry("error", query);
      throw;  // the leader rethrows the original typed exception
    }
  }

  // Publish before retiring the flight: a request arriving in between sees
  // either the in-flight entry (coalesces) or the cached bytes (hits) —
  // never a gap that would start a second execution.
  cache_.put(key, bytes);
  fw.record(flog::Severity::kInfo, flog::Component::kCache, now, "cache:store",
            {{"bytes", static_cast<double>(bytes->size())}});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    inflight_.erase(key);
  }
  complete_and_promote(now);
  {
    std::lock_guard<std::mutex> flock(flight->m);
    flight->bytes = bytes;
    flight->done = true;
  }
  flight->cv.notify_all();
  trace_span(cid, "execute", t_exec);
  observe_latency("miss", us_since(t_submit));
  observe_telemetry("miss", query);
  return {ServeOutcome::kMiss, key, std::move(bytes), cid};
}

void ScenarioServer::observe_telemetry(const char* outcome,
                                       const ScenarioQuery& query) const {
  if (config_.telemetry == nullptr) return;
  // Logical cost only: a cold run (or a failed one) simulates the query's
  // timesteps; hits and coalesced joins ride an existing execution. Wall
  // time never reaches this registry — that is what keeps the telemetry
  // artifact byte-identical across reruns.
  const std::string_view o(outcome);
  std::lock_guard<std::mutex> lock(telemetry_mutex_);
  auto& m = config_.telemetry->metrics();
  m.counter("service.requests_total").add();
  m.counter("service.outcome_total", obs::Labels{{"outcome", outcome}}).add();
  if (o != "shed") {
    const double work =
        (o == "miss" || o == "error")
            ? static_cast<double>(query.timesteps)
            : 0.0;
    m.histogram("service.work_steps", service_work_step_bounds())
        .observe(work);
  }
}

void ScenarioServer::observe_latency(const char* outcome, double us) const {
  std::lock_guard<std::mutex> lock(slo_mutex_);
  for (auto& [name, hist] : latency_) {
    if (std::string_view(name) == outcome) {
      hist.observe(us);
      return;
    }
  }
}

void ScenarioServer::trace_span(obs::log::CorrelationId cid, const char* name,
                                std::chrono::steady_clock::time_point t0) const {
  if (config_.tracer == nullptr) return;
  const auto t1 = std::chrono::steady_clock::now();
  const std::chrono::duration<double> begin = t0 - epoch_;
  const std::chrono::duration<double> end = t1 - epoch_;
  std::lock_guard<std::mutex> lock(trace_mutex_);
  // One Perfetto track per request: tid = correlation id, so concurrent
  // requests render as parallel lanes instead of interleaved spans.
  config_.tracer->span(0, static_cast<int>(cid & 0x7fffffff), name, "service",
                       begin.count(), end.count());
}

double ScenarioServer::us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void ScenarioServer::complete_and_promote(double now) {
  const long long promoted = admission_.complete(now);
  if (promoted < 0) return;
  std::shared_ptr<QueuedTicket> ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = queued_.find(static_cast<std::uint64_t>(promoted));
    if (it != queued_.end()) ticket = it->second;
  }
  if (ticket == nullptr) return;  // promoted id already gone (never expected)
  {
    std::lock_guard<std::mutex> tlock(ticket->m);
    ticket->promoted = true;
  }
  ticket->cv.notify_all();
}

ScenarioServer::Stats ScenarioServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t ScenarioServer::inflight_waiters(const std::string& key) const {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return 0;
    flight = it->second;
  }
  std::lock_guard<std::mutex> flock(flight->m);
  return flight->waiters;
}

void ScenarioServer::publish_metrics(obs::MetricsRegistry& metrics) const {
  const Stats s = stats();
  const ResultCache::Stats c = cache_.stats();
  const auto set = [&metrics](const char* name, double v) {
    metrics.gauge(name).set(v);
  };
  set("service.requests", static_cast<double>(s.requests));
  set("service.hits", static_cast<double>(s.hits));
  set("service.misses", static_cast<double>(s.misses));
  set("service.executions", static_cast<double>(s.executions));
  set("service.coalesced", static_cast<double>(s.coalesced));
  set("service.shed_rate", static_cast<double>(s.shed_rate));
  set("service.shed_queue_full", static_cast<double>(s.shed_queue_full));
  set("service.errors", static_cast<double>(s.errors));
  set("service.hit_ratio",
      s.requests == 0
          ? 0.0
          : static_cast<double>(s.hits) / static_cast<double>(s.requests));
  set("service.cache_size", static_cast<double>(cache_.size()));
  set("service.cache_capacity", static_cast<double>(cache_.capacity()));
  set("service.cache_insertions", static_cast<double>(c.insertions));
  set("service.cache_evictions", static_cast<double>(c.evictions));
  // Eviction pressure: cumulative bytes pushed out (a counter, so repeated
  // snapshots advance it by the delta) and the age-at-eviction of the most
  // recent victim in insertion ticks — a growing value means the LRU horizon
  // is shrinking relative to the working set.
  auto& evicted = metrics.counter("service.cache_evicted_bytes");
  evicted.add(static_cast<double>(c.evicted_bytes) - evicted.value());
  set("service.cache_last_eviction_age",
      static_cast<double>(c.last_eviction_age));
  {
    std::lock_guard<std::mutex> lock(slo_mutex_);
    for (const auto& [name, hist] : latency_) {
      const obs::Labels labels{{"outcome", name}};
      metrics.gauge("service.latency_count", labels)
          .set(static_cast<double>(hist.count()));
      metrics.gauge("service.latency_mean_us", labels).set(hist.mean());
      metrics.gauge("service.latency_p50_us", labels)
          .set(histogram_quantile(hist, 0.50));
      metrics.gauge("service.latency_p95_us", labels)
          .set(histogram_quantile(hist, 0.95));
      metrics.gauge("service.latency_p99_us", labels)
          .set(histogram_quantile(hist, 0.99));
    }
  }
  admission_.publish_metrics(metrics);
}

void ScenarioServer::write_service_stats(std::ostream& os) const {
  const Stats s = stats();
  const ResultCache::Stats c = cache_.stats();
  const AdmissionStats a = admission_.stats();
  os << "{\"schema\":\"" << kServiceStatsSchemaName
     << "\",\"schema_version\":" << kServiceStatsSchemaVersion
     << ",\"requests\":" << s.requests << ",\"hits\":" << s.hits
     << ",\"misses\":" << s.misses << ",\"executions\":" << s.executions
     << ",\"coalesced\":" << s.coalesced << ",\"shed_rate\":" << s.shed_rate
     << ",\"shed_queue_full\":" << s.shed_queue_full
     << ",\"errors\":" << s.errors << ",\"cache\":{\"capacity\":"
     << cache_.capacity() << ",\"size\":" << cache_.size()
     << ",\"hits\":" << c.hits << ",\"misses\":" << c.misses
     << ",\"insertions\":" << c.insertions << ",\"evictions\":" << c.evictions
     << "},\"admission\":{\"offered\":" << a.offered
     << ",\"admitted\":" << a.admitted << ",\"queued\":" << a.queued
     << ",\"promoted\":" << a.promoted << ",\"shed_rate\":" << a.shed_rate
     << ",\"shed_queue_full\":" << a.shed_queue_full
     << ",\"completed\":" << a.completed
     << ",\"peak_in_flight\":" << a.peak_in_flight
     << ",\"peak_queue_depth\":" << a.peak_queue_depth << "}";
  // v2: per-outcome SLO latency histograms. Bucket fills are wall-clock
  // observations — structure (keys, bounds, outcome set) is fixed, values
  // are not part of any byte-exactness gate.
  os << ",\"latency_us\":{\"bounds\":[";
  const std::vector<double>& bounds = service_latency_bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i != 0) os << ',';
    obs::write_json_number(os, bounds[i]);
  }
  os << "],\"outcomes\":{";
  {
    std::lock_guard<std::mutex> lock(slo_mutex_);
    bool first = true;
    for (const auto& [name, hist] : latency_) {
      if (!first) os << ',';
      first = false;
      os << '\"' << name << "\":{\"count\":" << hist.count() << ",\"sum\":";
      obs::write_json_number(os, hist.sum());
      os << ",\"buckets\":[";
      for (std::size_t i = 0; i < hist.counts().size(); ++i) {
        if (i != 0) os << ',';
        os << hist.counts()[i];
      }
      os << "]}";
    }
  }
  os << "}}}\n";
}

}  // namespace coop::service
