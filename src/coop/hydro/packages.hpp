#pragma once

/// \file packages.hpp
/// Optional physics packages beyond the hydrodynamics core.
///
/// ARES is a *multi-physics* code: the paper lists ALE and Eulerian
/// hydrodynamics, diffusion, dynamic mixing, and a dozen more packages. The
/// mini-app reproduces the two cheapest-to-validate ones on top of the
/// Euler core:
///
///  * **Passive scalar advection** (`dynamic mixing` proxy): a mass-fraction
///    field phi advected conservatively with the *same Rusanov mass flux*
///    the hydro update uses (donor-cell upwinding on its sign), so the
///    scalar stays bounded and exactly conserved.
///  * **Thermal diffusion** (`diffusion` package proxy): explicit
///    conservative diffusion of internal energy density,
///    dE/dt = div(kappa grad e_int), with the usual FTCS stability bound
///    folded into the timestep.

namespace coop::hydro {

struct PackageConfig {
  /// Enable the passive-scalar (mixing) package.
  bool passive_scalar = false;
  /// Enable the thermal-diffusion package.
  bool diffusion = false;
  /// Diffusivity kappa (in e_int-density units); only used when enabled.
  double diffusivity = 1.0e-3;
  /// Safety factor on the explicit diffusion stability limit dt <= dx^2/6k.
  double diffusion_safety = 0.9;
  /// Initial scalar ball radius (fraction of the domain edge) at the center.
  double scalar_ball_radius = 0.25;
};

}  // namespace coop::hydro
