#pragma once

#include <cstdint>
#include <vector>

/// \file hb_log.hpp
/// Happens-before event log for cross-rank wait-state attribution.
///
/// The tracer (obs/trace.hpp) records *where time went* on each rank's
/// timeline; this log records *why* — the causal edges between ranks that
/// the wait-state classifier and the critical-path walk need:
///
///  * point-to-point messages: when the sender posted, when the payload
///    arrived at the destination mailbox, and when the receiver's recv
///    actually began/returned (`simmpi::SimComm` records both ends);
///  * collective rendezvous: each rank's arrival at an allreduce/barrier
///    and the time the result was delivered back to it;
///  * GPU queue drain: time a kernel spent delayed beyond its solo
///    execution in the event-driven `devmodel::GpuServer` backend.
///
/// Recording is append-only and pure observation — binding a log never
/// moves a DES event. Matching (k-th send to k-th recv per channel, arrival
/// k to collective op k) is done offline by `analysis::match_events`.

namespace coop::obs::analysis {

/// One posted point-to-point message (sender side).
struct MsgSend {
  int src = 0, dst = 0, tag = 0;
  std::uint64_t bytes = 0;
  double t_post = 0.0;     ///< when the sender injected it
  double t_arrival = 0.0;  ///< when it reached the destination mailbox
};

/// One completed receive (receiver side).
struct MsgRecv {
  int dst = 0, src = 0, tag = 0;
  double t_begin = 0.0;  ///< when recv was posted
  double t_end = 0.0;    ///< when recv returned with the payload
};

/// One rank's arrival at (or return from) a collective.
struct CollEvent {
  int rank = 0;
  double t = 0.0;
};

/// One kernel's excess delay in the event-driven GPU queue.
struct GpuDrain {
  int rank = 0;
  double t_begin = 0.0, t_end = 0.0;
  double wait_s = 0.0;  ///< (t_end - t_begin) minus the solo service time
};

class HbLog {
 public:
  void send(int src, int dst, int tag, std::uint64_t bytes, double t_post,
            double t_arrival);
  void recv(int dst, int src, int tag, double t_begin, double t_end);
  void collective_arrive(int rank, double t);
  void collective_return(int rank, double t);
  void gpu_drain(int rank, double t_begin, double t_end, double wait_s);

  [[nodiscard]] const std::vector<MsgSend>& sends() const noexcept {
    return sends_;
  }
  [[nodiscard]] const std::vector<MsgRecv>& recvs() const noexcept {
    return recvs_;
  }
  [[nodiscard]] const std::vector<CollEvent>& arrivals() const noexcept {
    return arrivals_;
  }
  [[nodiscard]] const std::vector<CollEvent>& returns() const noexcept {
    return returns_;
  }
  [[nodiscard]] const std::vector<GpuDrain>& gpu_drains() const noexcept {
    return gpu_drains_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return sends_.empty() && recvs_.empty() && arrivals_.empty() &&
           returns_.empty() && gpu_drains_.empty();
  }
  void clear();

 private:
  std::vector<MsgSend> sends_;
  std::vector<MsgRecv> recvs_;
  std::vector<CollEvent> arrivals_;
  std::vector<CollEvent> returns_;
  std::vector<GpuDrain> gpu_drains_;
};

}  // namespace coop::obs::analysis
