#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "coop/des/frame_pool.hpp"

/// \file task.hpp
/// Coroutine task type for discrete-event simulation processes.
///
/// A `Task<T>` is a lazily-started coroutine. Two ways to run one:
///  - `Engine::spawn(std::move(task))` makes it a root simulation process;
///  - `co_await subtask(...)` from inside another task runs it inline (at the
///    current simulated time) via symmetric transfer and yields its value.
///
/// Tasks are move-only owners of their coroutine frame. A task awaited by a
/// parent is resumed symmetrically when the child reaches final suspend, so
/// no reference to the engine is required in the promise: simulated time only
/// advances at explicit `co_await engine/channel/resource` suspension points.

namespace coop::des {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  // Every Task<T> frame is drawn from the per-thread frame pool: the DES hot
  // path spawns and retires a frame per process (GpuServer wakeups, channel
  // hops), and pooling replaces that malloc churn with free-list pops.
  static void* operator new(std::size_t n) { return frame_pool().allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    frame_pool().deallocate(p, n);
  }

  std::coroutine_handle<> continuation{};  ///< parent coroutine, if awaited
  bool completed = false;
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      p.completed = true;
      if (p.continuation) return p.continuation;  // symmetric transfer
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A coroutine task producing a value of type `T` (or `void`).
template <typename T = void>
class Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value{};
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.promise().completed;
  }

  /// Awaiting a task starts it immediately (same simulated time) and resumes
  /// the awaiter when the task completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.promise().completed; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

  /// Engine access; not part of the public API.
  std::coroutine_handle<promise_type> native_handle() const noexcept {
    return handle_;
  }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

  /// Rethrows the task's stored exception, if any (used for root tasks).
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }
  /// Steals the stored exception (null when the task succeeded or is empty),
  /// leaving the task exception-free so it reaps as an ordinary completion.
  [[nodiscard]] std::exception_ptr take_exception() noexcept {
    if (!handle_) return nullptr;
    return std::exchange(handle_.promise().exception, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  friend promise_type;
  std::coroutine_handle<promise_type> handle_{};
};

/// Void specialization.
template <>
class Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.promise().completed;
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.promise().completed; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> native_handle() const noexcept {
    return handle_;
  }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }
  [[nodiscard]] std::exception_ptr take_exception() noexcept {
    if (!handle_) return nullptr;
    return std::exchange(handle_.promise().exception, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  friend promise_type;
  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace coop::des
