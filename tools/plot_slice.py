#!/usr/bin/env python3
"""Render a sedov_demo z-midplane density slice as an SVG heatmap.

Reproduces the paper's Fig. 11 rendering (the Sedov blast wave) from the
CSV written by `sedov_demo N steps mode slice.csv`. Standard library only.

    ./build/examples/sedov_demo 48 70 hetero slice.csv
    python3 tools/plot_slice.py slice.csv fig11.svg
"""

import csv
import sys

# Blue -> white -> red diverging ramp anchored at the ambient density 1.0.
RAMP = [
    (0.0, (30, 60, 150)),
    (0.5, (245, 245, 245)),
    (1.0, (180, 20, 30)),
]


def color(t):
    t = max(0.0, min(1.0, t))
    for (t0, c0), (t1, c1) in zip(RAMP, RAMP[1:]):
        if t <= t1:
            f = 0 if t1 == t0 else (t - t0) / (t1 - t0)
            return tuple(int(a + f * (b - a)) for a, b in zip(c0, c1))
    return RAMP[-1][1]


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    rows = list(csv.DictReader(open(sys.argv[1])))
    if not rows:
        print("empty slice")
        return 1
    n = max(int(r["i"]) for r in rows) + 1
    rho = {(int(r["i"]), int(r["j"])): float(r["rho"]) for r in rows}
    lo, hi = min(rho.values()), max(rho.values())
    span = (hi - lo) or 1.0

    cell = max(4, 640 // n)
    size = n * cell
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size + 40}" font-family="sans-serif" font-size="13">',
        f'<rect width="{size}" height="{size + 40}" fill="white"/>',
    ]
    for (i, j), v in rho.items():
        r, g, b = color((v - lo) / span)
        out.append(
            f'<rect x="{i * cell}" y="{(n - 1 - j) * cell}" width="{cell}" '
            f'height="{cell}" fill="rgb({r},{g},{b})"/>')
    out.append(
        f'<text x="{size/2}" y="{size + 25}" text-anchor="middle">'
        f"Sedov blast, z-midplane density: {lo:.2f} (blue) .. {hi:.2f} (red)"
        "</text>")
    out.append("</svg>")
    with open(sys.argv[2], "w") as f:
        f.write("\n".join(out))
    print(f"wrote {sys.argv[2]} ({n}x{n} zones, rho in [{lo:.3f}, {hi:.3f}])")
    return 0


if __name__ == "__main__":
    sys.exit(main())
