#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json_check.hpp
/// Strict recursive-descent JSON parser for validating the repo's emitted
/// artifacts (Chrome/Perfetto traces, metrics snapshots, BENCH_*.json run
/// reports) in tests and CI.
///
/// This is deliberately *stricter* than a typical reader:
///  * rejects NaN/Infinity literals and numbers that overflow a double —
///    the obs writers must never emit them (Perfetto/`json.load` choke);
///  * rejects raw control characters and bad escapes inside strings, and
///    malformed \uXXXX sequences — the escaping bugs the writers guard
///    against;
///  * rejects trailing commas, duplicate object keys, and trailing garbage;
///  * enforces a recursion depth limit so a corrupt file cannot blow the
///    test stack.
///
/// The DOM is a small ordered tree (`Value`) with object `find()` so tests
/// can assert schema keys without a JSON library dependency.

namespace coophet_test::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;                                   // Kind::kString
  std::vector<Value> array;                          // Kind::kArray
  std::vector<std::pair<std::string, Value>> object; // Kind::kObject, ordered

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;      ///< human-readable message when !ok
  std::size_t offset = 0; ///< byte offset of the error
};

namespace detail {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  ParseResult run() {
    ParseResult r;
    skip_ws();
    if (!parse_value(r.value, 0)) {
      r.error = error_;
      r.offset = pos_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error = "trailing characters after top-level value";
      r.offset = pos_;
      return r;
    }
    r.ok = true;
    return r;
  }

 private:
  std::string_view text_;
  int max_depth_;
  std::size_t pos_ = 0;
  std::string error_;

  bool fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > max_depth_) return fail("nesting depth limit exceeded");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.kind = Value::Kind::kString;
                return parse_string(out.str);
      case 't': out.kind = Value::Kind::kBool; out.boolean = true;
                return literal("true");
      case 'f': out.kind = Value::Kind::kBool; out.boolean = false;
                return literal("false");
      case 'n': out.kind = Value::Kind::kNull;
                return literal("null");
      default:  return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr)
        return fail("duplicate object key \"" + key + "\"");
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  static bool is_hex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    out.clear();
    while (!eof()) {
      const char c = peek();
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string (must be escaped)");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = peek();
        switch (e) {
          case '"':  out.push_back('"');  break;
          case '\\': out.push_back('\\'); break;
          case '/':  out.push_back('/');  break;
          case 'b':  out.push_back('\b'); break;
          case 'f':  out.push_back('\f'); break;
          case 'n':  out.push_back('\n'); break;
          case 'r':  out.push_back('\r'); break;
          case 't':  out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              if (!is_hex(h)) return fail("non-hex digit in \\u escape");
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (h | 0x20) - 'a' + 10);
            }
            pos_ += 4;
            // Keep validation simple: decode BMP code points as UTF-8 and
            // reject unpaired surrogates outright (the writers only ever
            // emit \u00XX for control characters).
            if (code >= 0xD800 && code <= 0xDFFF)
              return fail("surrogate \\u escape not supported");
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("invalid escape character");
        }
        ++pos_;
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    // Validate the strict JSON number grammar first; strtod alone accepts
    // "inf", "nan", hex floats and leading '+', all of which are invalid.
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        return fail("leading zero in number");
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("missing digits after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("missing exponent digits");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return fail("invalid number");
    if (errno == ERANGE && (v > 1.0 || v < -1.0))
      return fail("number overflows double: " + token);
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return true;
  }
};

}  // namespace detail

/// Parses `text` as one strict JSON document.
[[nodiscard]] inline ParseResult parse(std::string_view text,
                                       int max_depth = 64) {
  return detail::Parser(text, max_depth).run();
}

/// First key of `keys` missing from object `v`; "" when all are present,
/// "<not an object>" when `v` is not an object at all.
[[nodiscard]] inline std::string first_missing_key(
    const Value& v, const std::vector<std::string>& keys) {
  if (!v.is_object()) return "<not an object>";
  for (const auto& k : keys)
    if (v.find(k) == nullptr) return k;
  return "";
}

// --- Artifact schema registry ------------------------------------------------

/// One versioned artifact family the repo emits.
struct SchemaSpec {
  std::string name;          ///< "coophet.run_report"
  std::vector<int> versions; ///< every version a reader must accept
};

/// Every `coophet.*` artifact schema the writers emit, with the versions a
/// consumer is allowed to see. A writer-side schema bump without a matching
/// entry here fails `json_lint` and the schema tests — by design: readers
/// (CI gates, the compare CLI, Perfetto post-processing) must be taught
/// about a new version before it ships.
[[nodiscard]] inline const std::vector<SchemaSpec>& known_artifact_schemas() {
  static const std::vector<SchemaSpec> kSchemas = {
      {"coophet.metrics", {1}},
      // v2 added the "sweep_resilience" object; v1 baselines stay valid.
      {"coophet.run_report", {1, 2, 3}},
      {"coophet.critical_path", {1}},
      {"coophet.perf_tolerances", {1}},
      {"coophet.sweep_journal", {1}},
      // v2 added the "latency_us" SLO histogram block; v1 stays valid.
      {"coophet.service_stats", {1, 2}},
      {"coophet.flight_log", {1}},
      {"coophet.telemetry", {1}},
  };
  return kSchemas;
}

/// Validates the "schema" / "schema_version" header of artifact `v`.
/// The schema must be registered in `known_artifact_schemas()` and the
/// version must be one the registry lists; with a non-empty `expect_name`
/// the schema must additionally be exactly that. Returns "" when valid,
/// otherwise a human-readable error.
[[nodiscard]] inline std::string check_artifact_schema(
    const Value& v, std::string_view expect_name = "") {
  if (!v.is_object()) return "top level is not an object";
  const Value* name = v.find("schema");
  if (name == nullptr || !name->is_string())
    return "missing string \"schema\" field";
  const Value* version = v.find("schema_version");
  if (version == nullptr || !version->is_number())
    return "missing numeric \"schema_version\" field";
  if (!expect_name.empty() && name->str != expect_name)
    return "\"schema\" is \"" + name->str + "\", expected \"" +
           std::string(expect_name) + "\"";
  for (const SchemaSpec& s : known_artifact_schemas()) {
    if (s.name != name->str) continue;
    const double ver = version->number;
    for (int known : s.versions)
      if (ver == static_cast<double>(known)) return "";
    return "unknown version " + std::to_string(ver) + " of schema \"" +
           name->str + "\"";
  }
  return "unknown schema \"" + name->str + "\"";
}

}  // namespace coophet_test::json
