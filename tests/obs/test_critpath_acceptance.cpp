#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "coop/core/report.hpp"
#include "coop/sweeps/figure_sweeps.hpp"
#include "support/json_check.hpp"

/// ISSUE acceptance test (tier 1): on a traced Fig. 18 heterogeneous run,
/// the analyzer's wait-state attribution must explain the wait the phase
/// spans measured to within 5%, the critical-path length must satisfy
/// max-rank-busy <= length <= makespan, and the independent attribution
/// must agree with the FeedbackBalancer's observed CPU/GPU gap.

namespace ana = coop::obs::analysis;
namespace cj = coophet_test::json;
namespace sweeps = coop::sweeps;

namespace {

struct TracedRun {
  coop::obs::Tracer tracer;
  ana::HbLog hb;
  coop::core::TimedConfig cfg;
  coop::core::TimedResult res;
  ana::CritPathReport rep;
};

const TracedRun& run() {
  static TracedRun* r = [] {
    auto* t = new TracedRun;
    // Fault-free: faults add checkpoint/rollback gaps that are deliberately
    // *not* communication waits (they land in the path's "other" share), so
    // the 5% coverage bound is asserted on the clean run the balancer
    // actually steers.
    t->res = sweeps::run_traced_exemplar(
        sweeps::figure_spec(18), sweeps::SweepOptions{}, nullptr,
        /*timesteps=*/6, t->tracer, &t->hb, &t->cfg);
    t->rep = coop::core::build_critical_path_report(t->cfg, t->res, t->tracer,
                                                    t->hb);
    t->rep.label = "Figure 18";
    t->rep.figure = 18;
    return t;
  }();
  return *r;
}

TEST(CritPathAcceptance, AttributionExplainsMeasuredWaitWithin5Percent) {
  const ana::CritPathReport& rep = run().rep;
  ASSERT_GT(rep.measured_wait_s, 0.0);
  EXPECT_GT(rep.attributed_wait_s, 0.0);
  EXPECT_EQ(rep.unmatched_events, 0u);
  EXPECT_LE(std::abs(100.0 - rep.coverage_pct), 5.0)
      << "attributed " << rep.attributed_wait_s << " s of "
      << rep.measured_wait_s << " s measured";
}

TEST(CritPathAcceptance, CriticalPathBoundedByBusyTimeAndMakespan) {
  const ana::CritPathReport& rep = run().rep;
  const double eps = 1e-9 * std::max(1.0, rep.makespan_s);
  ASSERT_TRUE(rep.path.complete);
  EXPECT_GT(rep.max_rank_busy_s, 0.0);
  EXPECT_GE(rep.path.length_s, rep.max_rank_busy_s - eps);
  EXPECT_LE(rep.path.length_s, rep.makespan_s + eps);
  // The walk tiles the traced interval, so the length is the makespan.
  EXPECT_NEAR(rep.path.length_s, rep.makespan_s, 1e-6 * rep.makespan_s);
  // Every rank index is valid and the per-kind shares account for the path.
  for (const auto& s : rep.path.segments) {
    EXPECT_GE(s.rank, 0);
    EXPECT_LT(s.rank, rep.ranks);
  }
  EXPECT_NEAR(rep.path.compute_s + rep.path.halo_s + rep.path.reduce_s +
                  rep.path.rebalance_s + rep.path.other_s,
              rep.path.length_s, 1e-6 * rep.makespan_s);
  // A heterogeneous multi-rank run's path crosses ranks and spends most of
  // its time computing.
  EXPECT_GT(rep.path.compute_s, 0.0);
  ASSERT_FALSE(rep.path.kernels.empty());
}

TEST(CritPathAcceptance, BalancerGapIsExplainedByAttribution) {
  const ana::CritPathReport& rep = run().rep;
  ASSERT_TRUE(rep.balancer_checked);
  EXPECT_TRUE(rep.balancer_explained)
      << "observed gap " << rep.observed_gap_s << " s vs attributed "
      << rep.attributed_gap_s << " s (makespan " << rep.makespan_s << " s)";
}

TEST(CritPathAcceptance, PerRankRowsAreInternallyConsistent) {
  const ana::CritPathReport& rep = run().rep;
  ASSERT_EQ(static_cast<int>(rep.per_rank.size()), rep.ranks);
  double attributed = 0.0, path_share = 0.0;
  for (const auto& row : rep.per_rank) {
    EXPECT_TRUE(std::isfinite(row.busy_s));
    EXPECT_GE(row.busy_s, 0.0);
    EXPECT_GE(row.measured_wait_s, 0.0);
    EXPECT_GE(row.waits.comm_total(), 0.0);
    attributed += row.waits.comm_total();
    path_share += row.critical_path_s;
    EXPECT_TRUE(row.device == "cpu" || row.device == "gpu");
  }
  EXPECT_NEAR(attributed, rep.attributed_wait_s, 1e-9 * rep.ranks);
  EXPECT_NEAR(path_share, rep.path.length_s, 1e-6 * rep.makespan_s);
  // Blame symmetry: everything received was caused by someone.
  double received = 0.0, blamed = 0.0;
  for (const auto& row : rep.per_rank) received += row.blame_received_s;
  for (const auto& e : rep.top_blame) blamed += e.seconds;
  EXPECT_GE(received + 1e-9, blamed);  // top_blame is a truncated view
}

TEST(CritPathAcceptance, JsonArtifactIsSchemaValid) {
  const ana::CritPathReport& rep = run().rep;
  std::ostringstream os;
  rep.write_json(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset;
  EXPECT_EQ(cj::check_artifact_schema(p.value, "coophet.critical_path"), "");
  EXPECT_EQ(p.value.find("figure")->number, 18.0);
  EXPECT_EQ(p.value.find("per_rank")->array.size(),
            static_cast<std::size_t>(rep.ranks));
  const auto* bc = p.value.find("balancer_check");
  ASSERT_NE(bc, nullptr);
  EXPECT_TRUE(bc->find("explained")->boolean);
}

TEST(CritPathAcceptance, AnnotatedTraceExportsValidFlows) {
  // Annotate a copy so the shared fixture stays pristine.
  TracedRun local;
  local.tracer = run().tracer;
  const ana::CritPathReport& rep = run().rep;
  ana::annotate_trace(local.tracer, run().hb, rep);
  EXPECT_GT(local.tracer.flow_count("critpath"), 0u);
  std::ostringstream os;
  local.tracer.write_chrome_trace(os);
  const auto p = cj::parse(os.str());
  ASSERT_TRUE(p.ok) << p.error << " at offset " << p.offset;
}

}  // namespace
