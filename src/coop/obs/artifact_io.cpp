#include "coop/obs/artifact_io.hpp"

#include <cstdio>
#include <fstream>

namespace coop::obs {

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw IoError("atomic_write_file: cannot open " + tmp);
    try {
      write(os);
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      throw IoError("atomic_write_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("atomic_write_file: cannot rename " + tmp + " -> " + path);
  }
}

}  // namespace coop::obs
