#include <gtest/gtest.h>

#include <new>
#include <tuple>

#include "coop/memory/memory_manager.hpp"

namespace mem = coop::memory;

namespace {

mem::MemoryManager::Config small_config(mem::ExecutionTarget t) {
  mem::MemoryManager::Config c;
  c.target = t;
  c.host_capacity = 1 << 20;
  c.device_capacity = 1 << 20;
  c.pool_capacity = 1 << 20;
  return c;
}

TEST(TrackedAllocator, CapacityEnforced) {
  mem::HostAllocator a(1024);
  void* p = a.allocate(1000);
  EXPECT_THROW((void)a.allocate(100), std::bad_alloc);
  a.deallocate(p);
  EXPECT_NO_THROW(a.deallocate(a.allocate(1000)));
}

TEST(TrackedAllocator, AccountingExact) {
  mem::HostAllocator a(1 << 20);
  void* p = a.allocate(300);
  void* q = a.allocate(500);
  EXPECT_EQ(a.bytes_in_use(), 800u);
  EXPECT_EQ(a.live_allocations(), 2u);
  a.deallocate(p);
  EXPECT_EQ(a.bytes_in_use(), 500u);
  a.deallocate(q);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_EQ(a.high_water(), 800u);
}

TEST(TrackedAllocator, UnknownPointerRejected) {
  mem::HostAllocator a(1 << 20);
  int x;
  EXPECT_THROW(a.deallocate(&x), std::invalid_argument);
}

TEST(TrackedAllocator, SpacesTagged) {
  mem::HostAllocator h(1);
  mem::UnifiedAllocator u(1);
  EXPECT_EQ(h.space(), mem::MemorySpace::kHost);
  EXPECT_EQ(u.space(), mem::MemorySpace::kUnified);
}

/// The paper's Fig. 8 placement table, exhaustively.
using PlacementCase =
    std::tuple<mem::ExecutionTarget, mem::AllocationContext, mem::MemorySpace>;

class Fig8Placement : public ::testing::TestWithParam<PlacementCase> {};

TEST_P(Fig8Placement, RoutesToPrescribedSpace) {
  const auto [target, ctx, want] = GetParam();
  mem::MemoryManager mm(small_config(target));
  EXPECT_EQ(mm.space_for(ctx), want);
  void* p = mm.allocate(ctx, 256);
  ASSERT_NE(p, nullptr);
  // The allocation must be accounted in exactly the prescribed space.
  const mem::Allocator& alloc =
      want == mem::MemorySpace::kHost
          ? mm.host()
          : (want == mem::MemorySpace::kUnified
                 ? mm.unified()
                 : static_cast<const mem::Allocator&>(mm.pool()));
  EXPECT_GE(alloc.bytes_in_use(), 256u);
  mm.deallocate(ctx, p);
  EXPECT_EQ(alloc.bytes_in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, Fig8Placement,
    ::testing::Values(
        // CPU-executing rank: everything on the host (malloc).
        PlacementCase{mem::ExecutionTarget::kCpuCore,
                      mem::AllocationContext::kControlCode,
                      mem::MemorySpace::kHost},
        PlacementCase{mem::ExecutionTarget::kCpuCore,
                      mem::AllocationContext::kMeshData,
                      mem::MemorySpace::kHost},
        PlacementCase{mem::ExecutionTarget::kCpuCore,
                      mem::AllocationContext::kTemporary,
                      mem::MemorySpace::kHost},
        // GPU-driving rank: malloc / unified / pooled device.
        PlacementCase{mem::ExecutionTarget::kGpuDevice,
                      mem::AllocationContext::kControlCode,
                      mem::MemorySpace::kHost},
        PlacementCase{mem::ExecutionTarget::kGpuDevice,
                      mem::AllocationContext::kMeshData,
                      mem::MemorySpace::kUnified},
        PlacementCase{mem::ExecutionTarget::kGpuDevice,
                      mem::AllocationContext::kTemporary,
                      mem::MemorySpace::kDevice}));

TEST(MemoryManager, CpuIsolationBlocksGpuSpaces) {
  // Paper 5.2: libraries compiled for CUDA allocate GPU memory even in
  // CPU-only processes; that assumption must be broken.
  mem::MemoryManager mm(small_config(mem::ExecutionTarget::kCpuCore));
  EXPECT_THROW((void)mm.allocate_in(mem::MemorySpace::kDevice, 64),
               std::logic_error);
  EXPECT_THROW((void)mm.allocate_in(mem::MemorySpace::kUnified, 64),
               std::logic_error);
  EXPECT_NO_THROW(mm.deallocate_in(mem::MemorySpace::kHost,
                                   mm.allocate_in(mem::MemorySpace::kHost, 64)));
}

TEST(MemoryManager, IsolationCanBeDisabled) {
  auto cfg = small_config(mem::ExecutionTarget::kCpuCore);
  cfg.strict_cpu_isolation = false;
  mem::MemoryManager mm(cfg);
  void* p = nullptr;
  EXPECT_NO_THROW(p = mm.allocate_in(mem::MemorySpace::kDevice, 64));
  mm.deallocate_in(mem::MemorySpace::kDevice, p);
}

TEST(MemoryManager, GpuRankMayTouchAllSpaces) {
  mem::MemoryManager mm(small_config(mem::ExecutionTarget::kGpuDevice));
  for (auto space : {mem::MemorySpace::kHost, mem::MemorySpace::kUnified,
                     mem::MemorySpace::kDevice}) {
    void* p = mm.allocate_in(space, 64);
    EXPECT_NE(p, nullptr);
    mm.deallocate_in(space, p);
  }
}

TEST(Buffer, RaiiReleasesOnScopeExit) {
  mem::MemoryManager mm(small_config(mem::ExecutionTarget::kGpuDevice));
  {
    auto buf = mm.make_buffer<double>(mem::AllocationContext::kMeshData, 100);
    EXPECT_EQ(buf.size(), 100u);
    EXPECT_EQ(mm.unified().bytes_in_use(), 800u);
    buf[0] = 1.5;
    buf[99] = 2.5;
    EXPECT_DOUBLE_EQ(buf.span()[0], 1.5);
  }
  EXPECT_EQ(mm.unified().bytes_in_use(), 0u);
}

TEST(Buffer, ValueInitialized) {
  mem::MemoryManager mm(small_config(mem::ExecutionTarget::kCpuCore));
  auto buf = mm.make_buffer<double>(mem::AllocationContext::kMeshData, 64);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_DOUBLE_EQ(buf[i], 0.0) << i;
}

TEST(Buffer, MoveTransfersOwnership) {
  mem::MemoryManager mm(small_config(mem::ExecutionTarget::kCpuCore));
  auto a = mm.make_buffer<int>(mem::AllocationContext::kControlCode, 10);
  a[3] = 7;
  mem::Buffer<int> b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b[3], 7);
  EXPECT_EQ(b.size(), 10u);
}

TEST(MemoryManager, EnumNames) {
  EXPECT_STREQ(to_string(mem::AllocationContext::kMeshData), "mesh");
  EXPECT_STREQ(to_string(mem::MemorySpace::kUnified), "unified");
  EXPECT_STREQ(to_string(mem::ExecutionTarget::kGpuDevice), "gpu");
}

}  // namespace
