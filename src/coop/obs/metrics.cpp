#include "coop/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "coop/obs/json.hpp"

namespace coop::obs {

Labels& Labels::set(const std::string& key, const std::string& value) {
  auto it = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const auto& p, const std::string& k) { return p.first < k; });
  if (it != kv_.end() && it->first == key)
    it->second = value;
  else
    kv_.insert(it, {key, value});
  return *this;
}

std::string Labels::render() const {
  if (kv_.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < kv_.size(); ++i) {
    if (i > 0) out += ',';
    out += kv_[i].first + "=\"" + kv_[i].second + "\"";
  }
  out += '}';
  return out;
}

MetricsRegistry::Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void MetricsRegistry::Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += v;
}

void MetricsRegistry::check_kind(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind)
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as a different kind");
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name,
                                                   const Labels& labels) {
  check_kind(name, Kind::kCounter);
  auto& cell = counters_[{name, labels}];
  if (!cell) cell = std::make_unique<Counter>();
  return *cell;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name,
                                               const Labels& labels) {
  check_kind(name, Kind::kGauge);
  auto& cell = gauges_[{name, labels}];
  if (!cell) cell = std::make_unique<Gauge>();
  return *cell;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(
    const std::string& name, std::vector<double> bounds,
    const Labels& labels) {
  check_kind(name, Kind::kHistogram);
  auto& cell = histograms_[{name, labels}];
  if (!cell) {
    cell = std::make_unique<Histogram>(std::move(bounds));
  } else if (!bounds.empty() && bounds != cell->bounds()) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' re-registered with different bounds");
  }
  return *cell;
}

std::size_t MetricsRegistry::size() const noexcept {
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::clear() {
  kinds_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot(double sim_time) const {
  Snapshot snap;
  snap.sim_time = sim_time;
  snap.samples.reserve(size());
  for (const auto& [key, cell] : counters_) {
    Sample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = "counter";
    s.value = cell->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, cell] : gauges_) {
    Sample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = "gauge";
    s.value = cell->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, cell] : histograms_) {
    Sample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = "histogram";
    s.value = cell->sum();
    s.count = cell->count();
    s.bucket_bounds = cell->bounds();
    s.bucket_counts = cell->counts();
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const Sample& a, const Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot_since(
    Snapshot* prev, double sim_time) const {
  Snapshot cur = snapshot(sim_time);
  Snapshot delta = cur;
  if (prev != nullptr && !prev->samples.empty()) {
    // Both sample lists are (name, labels)-sorted; a single merge walk pairs
    // each current sample with its predecessor, if any.
    auto pit = prev->samples.begin();
    const auto before = [](const Sample& a, const Sample& b) {
      if (a.name != b.name) return a.name < b.name;
      return a.labels < b.labels;
    };
    for (Sample& s : delta.samples) {
      while (pit != prev->samples.end() && before(*pit, s)) ++pit;
      if (pit == prev->samples.end() || before(s, *pit)) continue;
      const Sample& p = *pit;
      if (s.kind == "counter" && p.kind == "counter") {
        s.value -= p.value;
      } else if (s.kind == "histogram" && p.kind == "histogram" &&
                 s.bucket_bounds == p.bucket_bounds) {
        s.value -= p.value;
        s.count -= p.count;
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i)
          s.bucket_counts[i] -= p.bucket_counts[i];
      }
      // Gauges (and kind/bounds mismatches, which the registry itself
      // forbids) keep the current value.
    }
  }
  if (prev != nullptr) *prev = std::move(cur);
  return delta;
}

void MetricsRegistry::write_json(std::ostream& os, double sim_time) const {
  const Snapshot snap = snapshot(sim_time);
  os << "{\"schema\":\"coophet.metrics\",\"schema_version\":1,\"sim_time_s\":";
  write_json_number(os, snap.sim_time);
  os << ",\"metrics\":[";
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    const Sample& s = snap.samples[i];
    if (i > 0) os << ',';
    os << "{\"name\":";
    write_json_string(os, s.name);
    os << ",\"kind\":";
    write_json_string(os, s.kind);
    os << ",\"labels\":{";
    for (std::size_t j = 0; j < s.labels.items().size(); ++j) {
      if (j > 0) os << ',';
      write_json_string(os, s.labels.items()[j].first);
      os << ':';
      write_json_string(os, s.labels.items()[j].second);
    }
    os << '}';
    if (s.kind == "histogram") {
      os << ",\"sum\":";
      write_json_number(os, s.value);
      os << ",\"count\":" << s.count << ",\"bounds\":[";
      for (std::size_t j = 0; j < s.bucket_bounds.size(); ++j) {
        if (j > 0) os << ',';
        write_json_number(os, s.bucket_bounds[j]);
      }
      os << "],\"counts\":[";
      for (std::size_t j = 0; j < s.bucket_counts.size(); ++j) {
        if (j > 0) os << ',';
        os << s.bucket_counts[j];
      }
      os << ']';
    } else {
      os << ",\"value\":";
      write_json_number(os, s.value);
    }
    os << '}';
  }
  os << "]}";
}

void MetricsRegistry::write_table(std::ostream& os) const {
  const Snapshot snap = snapshot(0.0);
  for (const Sample& s : snap.samples) {
    os << s.name << s.labels.render() << " (" << s.kind << ") = ";
    if (s.kind == "histogram")
      os << "count " << s.count << ", sum " << s.value << ", mean "
         << (s.count ? s.value / static_cast<double>(s.count) : 0.0);
    else
      os << s.value;
    os << '\n';
  }
}

}  // namespace coop::obs
