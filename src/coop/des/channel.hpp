#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "coop/des/engine.hpp"

/// \file channel.hpp
/// Unbounded FIFO message channel between simulation processes.
///
/// `send()` never blocks (the channel is unbounded; simulated transfer costs
/// are modelled explicitly by the sender via `Engine::delay`). `recv()` is an
/// awaitable that suspends until a value is available. Values are delivered
/// in FIFO order to receivers in FIFO order, deterministically.

namespace coop::des {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deposits a value. If a receiver is waiting, it is scheduled to resume at
  /// the current simulated time with this value.
  void send(T value) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(value));
      engine_->schedule_now(w->handle);
    } else {
      queue_.push_back(std::move(value));
    }
  }

  /// Number of values deposited but not yet received.
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  /// Awaitable receive; resumes with the next value in FIFO order.
  [[nodiscard]] auto recv() {
    struct Awaiter : Waiter {
      Channel* ch;
      explicit Awaiter(Channel* c) : ch(c) {}
      bool await_ready() const noexcept {
        // Only short-circuit when no earlier receiver is queued, to keep
        // FIFO fairness among receivers.
        return !ch->queue_.empty() && ch->waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        ch->waiters_.push_back(this);
      }
      T await_resume() {
        if (this->slot.has_value()) return std::move(*this->slot);
        T v = std::move(ch->queue_.front());
        ch->queue_.pop_front();
        return v;
      }
    };
    return Awaiter{this};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle{};
    std::optional<T> slot{};
  };

  Engine* engine_;
  std::deque<T> queue_;
  std::deque<Waiter*> waiters_;
};

}  // namespace coop::des
