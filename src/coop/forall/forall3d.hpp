#pragma once

#include <algorithm>

#include "coop/forall/dynamic_policy.hpp"
#include "coop/mesh/box.hpp"

/// \file forall3d.hpp
/// 3D index-space traversal over the loop abstraction.
///
/// `forall_box` runs `body(i, j, k)` over every zone of a `mesh::Box` with x
/// innermost (the mesh's unit-stride dimension), flattening the index space
/// into the 1D `forall` so every execution policy — including the simulated
/// device policy and the thread pool — applies unchanged. `forall_box_tiled`
/// adds k-j tiling for cache locality on large boxes (an ARES-style
/// blocking; the traversal order changes but the visited set does not, so
/// results are identical for independent zone updates).

namespace coop::forall {

template <typename Body>
inline void forall_box(DynamicPolicy policy, const mesh::Box& box,
                       Body&& body) {
  const long nx = box.nx(), ny = box.ny();
  const long n = box.zones();
  if (n <= 0) return;
  const long x0 = box.lo.x, y0 = box.lo.y, z0 = box.lo.z;
  forall(policy, 0, n, [=](long t) {
    const long i = x0 + t % nx;
    const long j = y0 + (t / nx) % ny;
    const long k = z0 + t / (nx * ny);
    body(i, j, k);
  });
}

/// The PolicyKind tag equivalent to a static policy type.
template <typename P>
constexpr PolicyKind policy_kind_of() {
  if constexpr (std::is_same_v<P, seq_exec>) return PolicyKind::kSeq;
  else if constexpr (std::is_same_v<P, simd_exec>) return PolicyKind::kSimd;
  else if constexpr (std::is_same_v<P, thread_exec>)
    return PolicyKind::kThreads;
  else if constexpr (std::is_same_v<P, sim_gpu_exec>)
    return PolicyKind::kSimGpu;
  else return PolicyKind::kIndirect;
}

/// Static-policy convenience spelling.
template <typename Policy, typename Body>
inline void forall_box(const mesh::Box& box, Body&& body) {
  forall_box(DynamicPolicy{policy_kind_of<Policy>()}, box,
             std::forward<Body>(body));
}

/// Tiled traversal: (j, k) tiles of `tile_j` x `tile_k` zones are the
/// parallel work units; within a tile, rows run sequentially with x
/// innermost. Zone visits are exactly those of `forall_box` (different
/// order); the body must therefore be safe under any visit order, which
/// every `forall` body already guarantees.
template <typename Body>
inline void forall_box_tiled(DynamicPolicy policy, const mesh::Box& box,
                             long tile_j, long tile_k, Body&& body) {
  if (box.zones() <= 0) return;
  if (tile_j <= 0 || tile_k <= 0)
    throw std::invalid_argument("forall_box_tiled: nonpositive tile size");
  const long ny = box.ny(), nz = box.nz();
  const long tj = (ny + tile_j - 1) / tile_j;
  const long tk = (nz + tile_k - 1) / tile_k;
  const long x0 = box.lo.x, x1 = box.hi.x;
  const long y0 = box.lo.y, z0 = box.lo.z;
  const long y1 = box.hi.y, z1 = box.hi.z;
  forall(policy, 0, tj * tk, [=](long t) {
    const long jt = t % tj, kt = t / tj;
    const long jb = y0 + jt * tile_j, je = std::min(y1, jb + tile_j);
    const long kb = z0 + kt * tile_k, ke = std::min(z1, kb + tile_k);
    for (long k = kb; k < ke; ++k)
      for (long j = jb; j < je; ++j)
        for (long i = x0; i < x1; ++i) body(i, j, k);
  });
}

/// Cache-blocked traversal handing the body WHOLE TILES instead of zones:
/// `box` is partitioned into (y, z) tiles of `tile_j` x `tile_k` rows — the
/// x extent is never split, keeping unit-stride rows intact for pencil
/// buffers and SIMD lanes — and `body(tile)` runs once per tile box under
/// `policy`. This is the traversal the face-sweep hydro kernels use: the
/// tile is the parallel work unit (so per-tile scratch is touched by exactly
/// one worker at a time), and within a tile the body owns the loop nest.
///
/// Tiles partition the box exactly: every zone of `box` lies in exactly one
/// tile, so a body whose per-zone effect is independent of tiling produces
/// identical results for every (tile_j, tile_k) — the blocked-traversal
/// property tests sweep tile sizes against that contract. Passing extents
/// >= the box dimensions degenerates to one tile per (full-y, full-z) span,
/// which the axis-sweep kernels rely on when a sweep direction must not be
/// split (each face is computed exactly once inside a tile).
template <typename Body>
inline void forall_box_blocked(DynamicPolicy policy, const mesh::Box& box,
                               long tile_j, long tile_k, Body&& body) {
  if (box.zones() <= 0) return;
  if (tile_j <= 0 || tile_k <= 0)
    throw std::invalid_argument("forall_box_blocked: nonpositive tile size");
  const long ny = box.ny(), nz = box.nz();
  const long tj = (ny + tile_j - 1) / tile_j;
  const long tk = (nz + tile_k - 1) / tile_k;
  const long y0 = box.lo.y, z0 = box.lo.z;
  const long y1 = box.hi.y, z1 = box.hi.z;
  const long x0 = box.lo.x, x1 = box.hi.x;
  forall(policy, 0, tj * tk, [=](long t) {
    const long jt = t % tj, kt = t / tj;
    const long jb = y0 + jt * tile_j, je = std::min(y1, jb + tile_j);
    const long kb = z0 + kt * tile_k, ke = std::min(z1, kb + tile_k);
    body(mesh::Box{{x0, jb, kb}, {x1, je, ke}});
  });
}

}  // namespace coop::forall
