#pragma once

#include <cmath>

/// \file eos.hpp
/// Ideal-gas (gamma-law) equation of state.

namespace coop::hydro {

struct IdealGas {
  double gamma = 1.4;

  /// Pressure from density and specific internal energy.
  [[nodiscard]] double pressure(double rho, double specific_e) const noexcept {
    return (gamma - 1.0) * rho * specific_e;
  }

  /// Pressure from conserved variables (total energy density & momentum).
  [[nodiscard]] double pressure_conserved(double rho, double mx, double my,
                                          double mz, double E) const noexcept {
    const double ke = 0.5 * (mx * mx + my * my + mz * mz) / rho;
    return (gamma - 1.0) * (E - ke);
  }

  [[nodiscard]] double sound_speed(double rho, double p) const noexcept {
    return std::sqrt(gamma * p / rho);
  }

  /// Total energy density from primitives.
  [[nodiscard]] double total_energy(double rho, double u, double v, double w,
                                    double p) const noexcept {
    return p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w);
  }
};

}  // namespace coop::hydro
