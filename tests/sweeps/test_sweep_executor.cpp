/// SweepExecutor unit tests plus the parallel-sweep determinism suite: the
/// fanned-out `run_figure_sweep` must be *bitwise* identical to the serial
/// run — same curves, same per-point traces — for the figure specs the
/// curve locks and the CI perf gate depend on. Also pins the `run_timed`
/// re-entrancy contract the executor is built on (timed_sim.hpp).

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "coop/sweeps/figure_sweeps.hpp"
#include "coop/sweeps/sweep_executor.hpp"

namespace sweeps = coop::sweeps;

namespace {

/// Scoped COOPHET_SWEEP_JOBS override (restores the prior value).
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("COOPHET_SWEEP_JOBS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      ::setenv("COOPHET_SWEEP_JOBS", value, 1);
    else
      ::unsetenv("COOPHET_SWEEP_JOBS");
  }
  ~ScopedJobsEnv() {
    if (had_old_)
      ::setenv("COOPHET_SWEEP_JOBS", old_.c_str(), 1);
    else
      ::unsetenv("COOPHET_SWEEP_JOBS");
  }
  ScopedJobsEnv(const ScopedJobsEnv&) = delete;
  ScopedJobsEnv& operator=(const ScopedJobsEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ResolveSweepJobs, ExplicitRequestWins) {
  ScopedJobsEnv env("7");
  EXPECT_EQ(sweeps::resolve_sweep_jobs(3), 3);
  EXPECT_EQ(sweeps::resolve_sweep_jobs(1), 1);
}

TEST(ResolveSweepJobs, EnvOverrideAppliesWhenUnspecified) {
  ScopedJobsEnv env("7");
  EXPECT_EQ(sweeps::resolve_sweep_jobs(0), 7);
  EXPECT_EQ(sweeps::resolve_sweep_jobs(-2), 7);
}

TEST(ResolveSweepJobs, GarbageEnvFallsThroughToHardware) {
  ScopedJobsEnv env("0");
  EXPECT_GE(sweeps::resolve_sweep_jobs(0), 1);
  ScopedJobsEnv env2("banana");
  EXPECT_GE(sweeps::resolve_sweep_jobs(0), 1);
}

TEST(SweepExecutor, VisitsEveryIndexExactlyOnce) {
  sweeps::SweepExecutor ex(4);
  EXPECT_EQ(ex.jobs(), 4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    const std::size_t n = 41;
    std::vector<std::atomic<int>> hits(n);
    ex.for_each_index(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " grain=" << grain;
  }
}

TEST(SweepExecutor, EmptyRangeRunsNothing) {
  sweeps::SweepExecutor ex(4);
  std::atomic<int> calls{0};
  ex.for_each_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(SweepExecutor, SingleJobRunsInlineInOrder) {
  sweeps::SweepExecutor ex(1);
  std::vector<std::size_t> order;
  ex.for_each_index(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepExecutor, ExceptionPropagatesAndExecutorSurvives) {
  sweeps::SweepExecutor ex(4);
  EXPECT_THROW(ex.for_each_index(100,
                                 [&](std::size_t i) {
                                   if (i == 50)
                                     throw std::runtime_error("cell failed");
                                 }),
               std::runtime_error);
  std::atomic<int> calls{0};
  ex.for_each_index(10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

// --- Parallel sweep determinism ---------------------------------------------

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bitwise_equal(const sweeps::SweepCurves& serial,
                          const sweeps::SweepCurves& parallel) {
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const auto& s = serial.points[i];
    const auto& p = parallel.points[i];
    EXPECT_EQ(s.x, p.x);
    EXPECT_EQ(s.y, p.y);
    EXPECT_EQ(s.z, p.z);
    EXPECT_EQ(bits_of(s.t_default), bits_of(p.t_default)) << "point " << i;
    EXPECT_EQ(bits_of(s.t_mps), bits_of(p.t_mps)) << "point " << i;
    EXPECT_EQ(bits_of(s.t_hetero), bits_of(p.t_hetero)) << "point " << i;
    EXPECT_EQ(bits_of(s.steady_default), bits_of(p.steady_default))
        << "point " << i;
    EXPECT_EQ(bits_of(s.steady_mps), bits_of(p.steady_mps)) << "point " << i;
    EXPECT_EQ(bits_of(s.steady_hetero), bits_of(p.steady_hetero))
        << "point " << i;
    EXPECT_EQ(bits_of(s.hetero_cpu_share), bits_of(p.hetero_cpu_share))
        << "point " << i;
  }
}

/// The figures the CI perf gate and curve locks sweep, reduced to 3 points
/// at few timesteps so the tier-1 suite stays fast; 3 points x 3 modes = 9
/// cells across 4 jobs still exercises concurrent claiming.
class ParallelSweepDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSweepDeterminism, BitwiseEqualToSerialRun) {
  const auto spec = sweeps::reduced(sweeps::figure_spec(GetParam()), 3);
  sweeps::SweepOptions options;
  options.timesteps = 4;
  options.jobs = 1;
  const auto serial = sweeps::run_figure_sweep(spec, options);
  options.jobs = 4;  // deliberately more workers than this machine may have
  const auto parallel = sweeps::run_figure_sweep(spec, options);
  expect_bitwise_equal(serial, parallel);
}

TEST_P(ParallelSweepDeterminism, ObservabilityAttachedStaysBitwiseEqual) {
  const auto spec = sweeps::reduced(sweeps::figure_spec(GetParam()), 3);
  sweeps::SweepOptions options;
  options.timesteps = 4;

  options.jobs = 1;
  sweeps::SweepObservability serial_obs;
  const auto serial = sweeps::run_figure_sweep(spec, options, &serial_obs);
  options.jobs = 4;
  sweeps::SweepObservability parallel_obs;
  const auto parallel = sweeps::run_figure_sweep(spec, options, &parallel_obs);

  expect_bitwise_equal(serial, parallel);

  // Per-point sinks must also match run for run: attaching them under the
  // parallel executor neither perturbs the schedule nor cross-wires points.
  ASSERT_EQ(serial_obs.points.size(), serial.points.size());
  ASSERT_EQ(parallel_obs.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial_obs.points.size(); ++i) {
    auto& s = serial_obs.points[i];
    auto& p = parallel_obs.points[i];
    std::ostringstream s_trace, p_trace;
    s.tracer.write_chrome_trace(s_trace);
    p.tracer.write_chrome_trace(p_trace);
    EXPECT_FALSE(s_trace.str().empty());
    EXPECT_EQ(s_trace.str(), p_trace.str()) << "trace of point " << i;

    std::ostringstream s_metrics, p_metrics;
    s.metrics.write_json(s_metrics, 0.0);
    p.metrics.write_json(p_metrics, 0.0);
    EXPECT_EQ(s_metrics.str(), p_metrics.str()) << "metrics of point " << i;

    EXPECT_FALSE(s.hb.empty());
    EXPECT_EQ(s.hb.sends().size(), p.hb.sends().size());
    EXPECT_EQ(s.hb.recvs().size(), p.hb.recvs().size());
    EXPECT_EQ(s.hb.arrivals().size(), p.hb.arrivals().size());
    EXPECT_EQ(s.hb.returns().size(), p.hb.returns().size());
    EXPECT_EQ(s.hb.gpu_drains().size(), p.hb.gpu_drains().size());
  }
}

INSTANTIATE_TEST_SUITE_P(PerfGateFigures, ParallelSweepDeterminism,
                         ::testing::Values(12, 13, 18),
                         [](const auto& pi) {
                           return "Fig" + std::to_string(pi.param);
                         });

// --- run_timed re-entrancy (the contract the executor depends on) -----------

TEST(RunTimedReentrancy, ConcurrentCallsMatchSerialBitwise) {
  coop::core::TimedConfig tc;
  tc.mode = coop::core::NodeMode::kHeterogeneous;
  tc.global = {{0, 0, 0}, {100, 480, 160}};
  tc.timesteps = 3;
  const auto serial = coop::core::run_timed(tc);

  constexpr int kThreads = 4;
  std::vector<coop::core::TimedResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] = run_timed(tc); });
  for (auto& th : threads) th.join();

  for (const auto& r : results) {
    EXPECT_EQ(bits_of(r.makespan), bits_of(serial.makespan));
    ASSERT_EQ(r.iteration_times.size(), serial.iteration_times.size());
    for (std::size_t i = 0; i < r.iteration_times.size(); ++i)
      EXPECT_EQ(bits_of(r.iteration_times[i]),
                bits_of(serial.iteration_times[i]));
    EXPECT_EQ(bits_of(r.final_cpu_fraction),
              bits_of(serial.final_cpu_fraction));
  }
}

}  // namespace
