#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "coop/des/engine.hpp"
#include "coop/des/resource.hpp"

namespace des = coop::des;

namespace {

// A job that holds `units` of `res` for `hold` seconds and records its
// (start, end) times.
des::Task<void> job(des::Engine& eng, des::Resource& res, std::size_t units,
                    double hold, std::vector<std::pair<double, double>>& log) {
  auto lease = co_await res.acquire(units);
  double start = eng.now();
  co_await eng.delay(hold);
  log.emplace_back(start, eng.now());
}

TEST(Resource, SerializesWhenCapacityOne) {
  des::Engine eng;
  des::Resource res(eng, 1, "gpu");
  std::vector<std::pair<double, double>> log;
  for (int i = 0; i < 3; ++i) eng.spawn(job(eng, res, 1, 2.0, log));
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0].first, 0.0);
  EXPECT_DOUBLE_EQ(log[1].first, 2.0);
  EXPECT_DOUBLE_EQ(log[2].first, 4.0);
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Resource, RunsConcurrentlyUpToCapacity) {
  des::Engine eng;
  des::Resource res(eng, 4, "streams");
  std::vector<std::pair<double, double>> log;
  for (int i = 0; i < 4; ++i) eng.spawn(job(eng, res, 1, 3.0, log));
  eng.run();
  for (const auto& [s, e] : log) {
    EXPECT_DOUBLE_EQ(s, 0.0);
    EXPECT_DOUBLE_EQ(e, 3.0);
  }
}

TEST(Resource, FifoAdmissionOrder) {
  des::Engine eng;
  des::Resource res(eng, 1, "link");
  std::vector<int> order;
  auto named_job = [](des::Engine& e, des::Resource& r, int id,
                      std::vector<int>& ord) -> des::Task<void> {
    auto lease = co_await r.acquire();
    ord.push_back(id);
    co_await e.delay(1.0);
  };
  for (int i = 0; i < 6; ++i) eng.spawn(named_job(eng, res, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Resource, LargeRequestBlocksSmallerBehindIt) {
  // Head-of-line: a 2-unit request queued first must be served before a
  // 1-unit request queued second, even if 1 unit frees up first.
  des::Engine eng;
  des::Resource res(eng, 2, "mem");
  std::vector<int> order;
  auto holder = [](des::Engine& e, des::Resource& r, double hold) -> des::Task<void> {
    auto lease = co_await r.acquire(1);
    co_await e.delay(hold);
  };
  auto tagged = [](des::Engine& e, des::Resource& r, std::size_t units, int id,
                   std::vector<int>& ord) -> des::Task<void> {
    auto lease = co_await r.acquire(units);
    ord.push_back(id);
    co_await e.delay(1.0);
  };
  eng.spawn(holder(eng, res, 1.0));  // unit 1 until t=1
  eng.spawn(holder(eng, res, 3.0));  // unit 2 until t=3
  eng.spawn(tagged(eng, res, 2, /*id=*/100, order));  // needs both -> t=3
  eng.spawn(tagged(eng, res, 1, /*id=*/200, order));  // waits behind -> t=4
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{100, 200}));
}

TEST(Resource, ZeroOrOversizeAcquireThrows) {
  des::Engine eng;
  des::Resource res(eng, 2, "r");
  EXPECT_THROW({ auto a = res.acquire(0); (void)a; }, std::invalid_argument);
  EXPECT_THROW({ auto a = res.acquire(3); (void)a; }, std::invalid_argument);
}

TEST(Resource, ZeroCapacityThrows) {
  des::Engine eng;
  EXPECT_THROW(des::Resource(eng, 0), std::invalid_argument);
}

TEST(Resource, ExplicitReleaseBeforeScopeEnd) {
  des::Engine eng;
  des::Resource res(eng, 1, "r");
  std::vector<std::pair<double, double>> log;
  auto early = [](des::Engine& e, des::Resource& r) -> des::Task<void> {
    auto lease = co_await r.acquire();
    co_await e.delay(1.0);
    lease.release();          // free the unit...
    co_await e.delay(10.0);   // ...then keep running without it
  };
  eng.spawn(early(eng, res));
  eng.spawn(job(eng, res, 1, 1.0, log));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 1.0);  // admitted as soon as released
}

TEST(Resource, UtilizationIntegral) {
  des::Engine eng;
  des::Resource res(eng, 2, "r");
  std::vector<std::pair<double, double>> log;
  eng.spawn(job(eng, res, 2, 5.0, log));  // both units busy for 5s
  eng.run();
  EXPECT_DOUBLE_EQ(res.busy_integral(), 10.0);  // 2 units * 5 s
  EXPECT_EQ(res.available(), 2u);
}

TEST(Resource, MovedLeaseReleasesOnce) {
  des::Engine eng;
  des::Resource res(eng, 1, "r");
  auto proc = [](des::Engine& e, des::Resource& r) -> des::Task<void> {
    auto lease = co_await r.acquire();
    des::Lease other = std::move(lease);
    EXPECT_FALSE(lease.active());
    EXPECT_TRUE(other.active());
    co_await e.delay(1.0);
  };
  eng.spawn(proc(eng, res));
  eng.run();
  EXPECT_EQ(res.available(), 1u);
}

TEST(Resource, StressManyContenders) {
  des::Engine eng;
  des::Resource res(eng, 3, "r");
  std::vector<std::pair<double, double>> log;
  for (int i = 0; i < 99; ++i) eng.spawn(job(eng, res, 1, 1.0, log));
  eng.run();
  ASSERT_EQ(log.size(), 99u);
  // 99 unit-seconds on 3 units -> makespan 33 s.
  EXPECT_DOUBLE_EQ(eng.now(), 33.0);
  // No instant ever has more than 3 concurrent holders: busy integral == 99.
  EXPECT_DOUBLE_EQ(res.busy_integral(), 99.0);
}

}  // namespace
