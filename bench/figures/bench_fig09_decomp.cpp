/// Figure 9 of the paper: communication overhead of "square" domain
/// decompositions, 4 vs 16 domains.
///
/// The paper's point: with near-cubic ("square") blocks, going from one MPI
/// rank per GPU (4 domains) to four per GPU (16 domains) raises both the
/// number of halo-exchange neighbors and the exchanged volume dramatically —
/// which motivates the hierarchical single-dimension subdivision of Fig. 10.
///
/// The analytics live in coop_sweeps (src/coop/sweeps/figure_sweeps.hpp).

#include "coop/sweeps/figure_sweeps.hpp"

int main() {
  coop::sweeps::run_fig09_bench();
  return 0;
}
