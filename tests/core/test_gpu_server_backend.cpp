#include <gtest/gtest.h>

#include "coop/core/timed_sim.hpp"

namespace core = coop::core;
using coop::mesh::Box;

namespace {

core::TimedConfig cfg_for(core::NodeMode mode, bool server) {
  core::TimedConfig tc;
  tc.mode = mode;
  tc.global = Box{{0, 0, 0}, {320, 320, 160}};
  tc.timesteps = 5;
  tc.use_gpu_server = server;
  return tc;
}

TEST(GpuServerBackend, DefaultModeMatchesAnalytic) {
  // One exclusive kernel at a time: the queue model must reproduce the
  // closed-form times exactly (modulo launch-accounting, which both paths
  // charge identically).
  const double analytic =
      core::run_timed(cfg_for(core::NodeMode::kOneRankPerGpu, false)).makespan;
  const double server =
      core::run_timed(cfg_for(core::NodeMode::kOneRankPerGpu, true)).makespan;
  EXPECT_NEAR(server, analytic, 1e-6 * analytic);
}

TEST(GpuServerBackend, SymmetricMpsMatchesAnalytic) {
  // Equal co-resident kernels: the PS queue degenerates to the analytic
  // formula. Kernel launches interleave slightly, so allow 1%.
  const double analytic =
      core::run_timed(cfg_for(core::NodeMode::kMpsPerGpu, false)).makespan;
  const double server =
      core::run_timed(cfg_for(core::NodeMode::kMpsPerGpu, true)).makespan;
  EXPECT_NEAR(server, analytic, 0.01 * analytic);
}

TEST(GpuServerBackend, HeterogeneousRunsAndStaysClose) {
  const double analytic =
      core::run_timed(cfg_for(core::NodeMode::kHeterogeneous, false)).makespan;
  const double server =
      core::run_timed(cfg_for(core::NodeMode::kHeterogeneous, true)).makespan;
  EXPECT_NEAR(server, analytic, 0.02 * analytic);
}

TEST(GpuServerBackend, Deterministic) {
  const auto a = core::run_timed(cfg_for(core::NodeMode::kMpsPerGpu, true));
  const auto b = core::run_timed(cfg_for(core::NodeMode::kMpsPerGpu, true));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(GpuServerBackend, HeadlineGainSurvivesBackendChange) {
  // The 18% Fig.-18 result must not be an artifact of the analytic model.
  auto def = cfg_for(core::NodeMode::kOneRankPerGpu, true);
  def.global = Box{{0, 0, 0}, {600, 480, 160}};
  auto het = cfg_for(core::NodeMode::kHeterogeneous, true);
  het.global = def.global;
  const double t_def = core::run_timed(def).makespan;
  const double t_het = core::run_timed(het).makespan;
  const double gain = (t_def - t_het) / t_def;
  EXPECT_GT(gain, 0.12);
  EXPECT_LT(gain, 0.25);
}

}  // namespace
