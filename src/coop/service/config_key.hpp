#pragma once

#include <cstdint>
#include <string>
#include <string_view>

/// \file config_key.hpp
/// Canonical content-addressing for scenario configurations.
///
/// Both halves of the scenario service key their state by a semantic config
/// hash: the sweep journal refuses to resume a foreign campaign by it, and
/// the result cache serves memoized run reports by it. This header owns the
/// one hashing idiom both use — FNV-1a-64 over field-separated canonical
/// encodings — so the two identities can never drift apart silently. The
/// journal's campaign hash is additionally pinned by a checked-in golden
/// vector (tests/service/test_config_key.cpp): changing the encoding is a
/// schema event, not a refactor.
///
/// Canonicalization rules (the properties the prop suite asserts):
///  * every field is hashed in one fixed order with a 0x1f separator after
///    each encoded field, so "ab"+"c" never collides with "a"+"bc";
///  * doubles are canonicalized before hashing: -0.0 hashes like +0.0 and
///    subnormals flush to 0.0, so any two doubles that the simulation's
///    %.17g round-trip pipeline would treat as the same knob value hash
///    equal; NaN/Inf are config errors (no simulation knob accepts them);
///  * integral and bool fields hash their decimal encodings, which is
///    byte-stable across platforms.

namespace coop::service {

/// Canonical double for hashing: -0.0 -> +0.0, subnormals -> 0.0. Throws a
/// kConfig `SimError` on NaN/Inf — no semantic knob ever holds one.
[[nodiscard]] double canonical_double(double v);

/// Incremental FNV-1a-64 over field-separated canonical encodings. The
/// encoding of every `mix` overload is part of the persisted campaign/cache
/// identity; treat any change like a schema version bump.
class ConfigKeyHasher {
 public:
  /// Mixes the raw bytes of `s` followed by the 0x1f field separator.
  void mix(std::string_view s);
  void mix(long v) { mix_decimal(std::to_string(v)); }
  void mix(int v) { mix_decimal(std::to_string(v)); }
  void mix(std::uint64_t v) { mix_decimal(std::to_string(v)); }
  void mix(bool v) { mix(std::string_view(v ? "1" : "0")); }
  /// Mixes `canonical_double(v)` in shortest-round-trip (%.17g) form.
  void mix(double v);

  /// The 16-lowercase-hex-digit digest (most significant nibble first).
  [[nodiscard]] std::string hex() const;
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void mix_decimal(const std::string& s) { mix(std::string_view(s)); }

  std::uint64_t hash_ = 14695981039346656037ULL;  ///< FNV offset basis
};

}  // namespace coop::service
