#include <gtest/gtest.h>

#include <vector>

#include "coop/des/engine.hpp"
#include "coop/devmodel/gpu_server.hpp"
#include "coop/devmodel/kernel_cost.hpp"

namespace dm = coop::devmodel;
namespace des = coop::des;

namespace {

const dm::KernelWork kWork{25.0, 160.0};

/// Submits one kernel after `start` and records its completion time.
des::Task<void> submit(des::Engine& eng, dm::GpuServer& gpu, double start,
                       dm::KernelWork work, double zones, double nx, bool mps,
                       double& finished) {
  co_await eng.delay(start);
  co_await gpu.execute(work, zones, nx, mps);
  finished = eng.now();
}

TEST(GpuServer, SingleKernelMatchesAnalyticSingleStream) {
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  double t = -1;
  eng.spawn(submit(eng, gpu, 0, kWork, 1e6, 320, /*mps=*/false, t));
  eng.run();
  EXPECT_NEAR(t, dm::gpu_kernel_exec_time(spec, kWork, 1e6, 320), 1e-9);
  EXPECT_EQ(gpu.kernels_completed(), 1u);
}

TEST(GpuServer, ExclusiveContextSerializes) {
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  double t1 = -1, t2 = -1;
  eng.spawn(submit(eng, gpu, 0, kWork, 1e6, 320, false, t1));
  eng.spawn(submit(eng, gpu, 0, kWork, 1e6, 320, false, t2));
  eng.run();
  const double single = dm::gpu_kernel_exec_time(spec, kWork, 1e6, 320);
  EXPECT_NEAR(t1, single, 1e-9);
  EXPECT_NEAR(t2, 2 * single, 1e-9);
}

TEST(GpuServer, SymmetricMpsMatchesAnalyticFormula) {
  // Four equal kernels submitted together must finish exactly when the
  // analytic MPS formula predicts.
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  std::vector<double> t(4, -1);
  for (int i = 0; i < 4; ++i)
    eng.spawn(submit(eng, gpu, 0, kWork, 1e6, 320, true, t[static_cast<std::size_t>(i)]));
  eng.run();
  const double analytic =
      dm::gpu_kernel_exec_time_mps(spec, kWork, 1e6, 320, 4);
  for (double ti : t) EXPECT_NEAR(ti, analytic, 1e-9 * analytic);
}

TEST(GpuServer, FifthKernelQueuesBehindMpsLimit) {
  des::Engine eng;
  dm::GpuSpec spec;  // mps_max_resident = 4
  dm::GpuServer gpu(eng, spec);
  std::vector<double> t(5, -1);
  for (int i = 0; i < 5; ++i)
    eng.spawn(submit(eng, gpu, 0, kWork, 1e6, 320, true, t[static_cast<std::size_t>(i)]));
  eng.run();
  // The first four finish together; the fifth strictly later.
  EXPECT_NEAR(t[0], t[3], 1e-12);
  EXPECT_GT(t[4], t[3] * 1.1);
  EXPECT_EQ(gpu.kernels_completed(), 5u);
}

TEST(GpuServer, AsymmetricKernelsShareProportionally) {
  // A small kernel sharing with a big one finishes first; the big one
  // finishes later than it would alone (it ceded device share) but earlier
  // than full serialization.
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  double t_small = -1, t_big = -1;
  eng.spawn(submit(eng, gpu, 0, kWork, 4e6, 320, true, t_big));
  eng.spawn(submit(eng, gpu, 0, kWork, 5e5, 320, true, t_small));
  eng.run();
  const double big_alone = dm::gpu_kernel_exec_time(spec, kWork, 4e6, 320);
  const double small_alone = dm::gpu_kernel_exec_time(spec, kWork, 5e5, 320);
  EXPECT_LT(t_small, t_big);
  EXPECT_GT(t_big, big_alone);
  EXPECT_LT(t_big, 1.2 * (big_alone + small_alone));
}

TEST(GpuServer, LateArrivalOverlapsRemainder) {
  // Kernel B arrives halfway through kernel A: they share from then on, so
  // A finishes later than alone but much earlier than A-then-B.
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  const double alone = dm::gpu_kernel_exec_time(spec, kWork, 2e6, 320);
  double ta = -1, tb = -1;
  eng.spawn(submit(eng, gpu, 0, kWork, 2e6, 320, true, ta));
  eng.spawn(submit(eng, gpu, 0.5 * alone, kWork, 2e6, 320, true, tb));
  eng.run();
  EXPECT_GT(ta, alone);
  EXPECT_GT(tb, ta);  // B arrived later and carries work past A's finish
  // Work conservation: with the MPS tax the pair cannot beat taxed
  // back-to-back execution, and sharing cannot be slower than serial
  // untaxed execution plus the offset.
  EXPECT_LT(tb, 0.5 * alone + 2.1 * alone);
}

TEST(GpuServer, ZeroZoneKernelIsFree) {
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  double t = -1;
  eng.spawn(submit(eng, gpu, 1.0, kWork, 0, 320, true, t));
  eng.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(GpuServer, MixingModesRejected) {
  des::Engine eng;
  dm::GpuSpec spec;
  dm::GpuServer gpu(eng, spec);
  double t1 = -1;
  bool threw = false;
  auto bad = [](des::Engine& e, dm::GpuServer& g, bool& flag) -> des::Task<void> {
    co_await e.delay(0.001);
    try {
      co_await g.execute({25, 160}, 1e6, 320, /*mps=*/false);
    } catch (const std::logic_error&) {
      flag = true;
    }
  };
  eng.spawn(submit(eng, gpu, 0, kWork, 1e7, 320, /*mps=*/true, t1));
  eng.spawn(bad(eng, gpu, threw));
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(GpuServer, DeterministicUnderLoad) {
  auto run_once = [] {
    des::Engine eng;
    dm::GpuSpec spec;
    dm::GpuServer gpu(eng, spec);
    std::vector<double> t(24, -1);
    for (int i = 0; i < 24; ++i) {
      eng.spawn(submit(eng, gpu, 0.001 * i, kWork,
                       2e5 + 1e5 * (i % 5), 320, true,
                       t[static_cast<std::size_t>(i)]));
    }
    eng.run();
    return t;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
