#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "coop/obs/analysis/critical_path.hpp"
#include "coop/obs/analysis/wait_states.hpp"

/// \file report.hpp
/// The `coophet.critical_path` report: wait-state attribution + critical
/// path for one traced run, with the FeedbackBalancer cross-check.
///
/// `analyze_run` is the one-call front end over `match_events`,
/// `classify_waits` and `compute_critical_path`; `core::
/// build_critical_path_report` wraps it with config identity. The JSON
/// schema is versioned like `coophet.run_report` — bump
/// `kCritPathSchemaVersion` on any key change.
///
/// The balancer cross-check turns the feedback balancer's heuristic into a
/// verified one: the balancer observes per-iteration max CPU vs max GPU
/// compute times and shifts zones toward whichever kind idles; the analyzer
/// independently attributes that idle as late-sender + wait-at-allreduce
/// blamed on concrete ranks. `cross_check_balancer` demands the two views
/// of the same gap agree within tolerance.

namespace coop::obs::analysis {

inline constexpr const char* kCritPathSchemaName = "coophet.critical_path";
inline constexpr int kCritPathSchemaVersion = 1;

struct RankWaitRow {
  int rank = 0;
  std::string device;  ///< "gpu" | "cpu" | "" (unknown)
  double busy_s = 0.0;           ///< compute-phase span total
  double measured_wait_s = 0.0;  ///< halo-wait + reduce + barrier span total
  WaitBreakdown waits;           ///< attribution of that wait (+ gpu drain)
  double blame_received_s = 0.0; ///< wait this rank caused on other ranks
  double critical_path_s = 0.0;  ///< time the critical path spent here
};

struct BlameEdge {
  int victim = 0, culprit = 0;
  double seconds = 0.0;
};

struct CritPathReport {
  // Identity (filled by the core wrapper / bench drivers).
  std::string label;
  std::string mode;
  int figure = 0;

  int ranks = 0;
  int nodes = 1;
  double makespan_s = 0.0;

  // Attribution coverage: attributed communication wait vs the wait the
  // phase spans measured (the tier-1 acceptance bound is |100 - coverage|
  // <= 5).
  double measured_wait_s = 0.0;
  double attributed_wait_s = 0.0;
  double coverage_pct = 0.0;
  std::size_t unmatched_events = 0;

  WaitBreakdown totals;
  std::vector<RankWaitRow> per_rank;
  std::vector<BlameEdge> top_blame;  ///< seconds descending, truncated

  CriticalPath path;
  double max_rank_busy_s = 0.0;

  // FeedbackBalancer cross-check (see cross_check_balancer).
  bool balancer_checked = false;
  bool balancer_explained = false;
  double observed_gap_s = 0.0;
  double attributed_gap_s = 0.0;
  double balancer_tolerance_pct = 30.0;

  /// Compares the balancer's observed CPU/GPU compute gap (summed
  /// per-iteration maxima, seconds) against the wait the analyzer blames on
  /// the other kind for the faster kind's busiest rank. No-op (checked
  /// stays false) unless both kinds did work.
  void cross_check_balancer(double sum_max_cpu_s, double sum_max_gpu_s);

  void write_json(std::ostream& os) const;
  void write_table(std::ostream& os) const;
};

/// Builds the full report from a finished run's tracer + happens-before
/// log. `rank_is_gpu` (optional, size `ranks`) labels the device column.
[[nodiscard]] CritPathReport analyze_run(
    const Tracer& tracer, const HbLog& hb, int ranks, double makespan_s,
    const std::vector<std::uint8_t>* rank_is_gpu = nullptr);

/// Merges the analysis back into the trace for Perfetto: one "critpath"
/// flow per inter-rank hop of the critical path, plus "late-sender" flows
/// (send post -> recv completion) for the `max_late_flows` largest
/// late-sender waits.
void annotate_trace(Tracer& tracer, const HbLog& hb,
                    const CritPathReport& rep,
                    std::size_t max_late_flows = 50);

}  // namespace coop::obs::analysis
