/// Quickstart: the three ingredients of the paper in ~80 lines.
///
///  1. RAJA-style `forall` with a runtime-selected policy (paper Fig. 7).
///  2. A functional Sedov run on a decomposed heterogeneous node, validated
///     against conservation and the analytic shock radius.
///  3. A timed comparison of the three node modes (paper Section 7).

#include <cstdio>
#include <vector>

#include "coop/core/functional_sim.hpp"
#include "coop/core/timed_sim.hpp"
#include "coop/forall/dynamic_policy.hpp"

int main() {
  using namespace coop;

  // --- 1. forall with runtime policy selection -----------------------------
  std::vector<double> x(1000, 2.0), y(1000, 1.0);
  const double a = 3.0;
  double* xp = x.data();
  double* yp = y.data();
  const forall::DynamicPolicy cpu_policy =
      forall::select_arch_policy(memory::ExecutionTarget::kCpuCore,
                                 /*compiler_bug=*/false);
  forall::forall(cpu_policy, 0, 1000, [=](long i) { yp[i] += a * xp[i]; });
  std::printf("forall (policy=%s): y[0] = %.1f (expect 7.0)\n",
              to_string(cpu_policy.kind), y[0]);

  // --- 2. functional Sedov on a heterogeneous node -------------------------
  core::FunctionalConfig fc;
  fc.mode = core::NodeMode::kHeterogeneous;
  fc.cpu_fraction = 0.25;
  fc.problem.global = {{0, 0, 0}, {32, 32, 32}};
  fc.timesteps = 40;
  const auto fr = core::run_functional(fc);
  std::printf("\nSedov 32^3, %d ranks (hetero): t=%.4f\n", fr.ranks,
              fr.sim_time);
  std::printf("  mass   %.6e -> %.6e (drift %.2e)\n", fr.mass_initial,
              fr.mass_final,
              std::abs(fr.mass_final - fr.mass_initial) / fr.mass_initial);
  std::printf("  energy %.6e -> %.6e (drift %.2e)\n", fr.energy_initial,
              fr.energy_final,
              std::abs(fr.energy_final - fr.energy_initial) /
                  fr.energy_initial);
  std::printf("  shock radius: measured %.3f, analytic %.3f\n",
              fr.shock_radius_measured, fr.shock_radius_analytic);

  // --- 3. timed mode comparison (paper Fig. 18's best case) ----------------
  std::printf("\nTimed modes on rzhasgpu, 600x480x160 zones, 20 steps:\n");
  for (const auto mode :
       {core::NodeMode::kOneRankPerGpu, core::NodeMode::kMpsPerGpu,
        core::NodeMode::kHeterogeneous}) {
    core::TimedConfig tc;
    tc.mode = mode;
    tc.global = {{0, 0, 0}, {600, 480, 160}};
    tc.timesteps = 20;
    const auto tr = core::run_timed(tc);
    std::printf("  %-22s ranks=%2d  runtime=%7.2f s  cpu-share=%.3f\n",
                to_string(mode), tr.ranks, tr.makespan,
                tr.final_cpu_fraction);
  }
  return 0;
}
