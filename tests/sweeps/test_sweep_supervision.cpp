/// Fault-tolerant sweep supervision: poisoned cells are quarantined into
/// `failed_cells` without taking the campaign down, transient (kIo)
/// failures retry with bounded attempts, watchdog budgets quarantine as
/// kTimeout, cancellation aborts the campaign — and in every case the
/// surviving cells stay bitwise identical to a clean serial run. Also the
/// satellite regressions: `SweepExecutor` aggregates *every* failed index
/// (not just the first), and `obs::atomic_write_file` never exposes a
/// partial file at the final path.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "coop/core/sim_error.hpp"
#include "coop/obs/artifact_io.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/sweeps/figure_sweeps.hpp"
#include "coop/sweeps/sweep_executor.hpp"
#include "support/json_check.hpp"

namespace core = coop::core;
namespace sweeps = coop::sweeps;
namespace fs = std::filesystem;

namespace {

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

sweeps::SweepOptions reduced_options() {
  sweeps::SweepOptions options;
  options.timesteps = 4;
  options.jobs = 1;
  return options;
}

sweeps::FigureSpec fig18_reduced() {
  return sweeps::reduced(sweeps::figure_spec(18), 3);
}

/// Every mode of every point except the (point, mode) cells in `skip` must
/// be bitwise identical between the two curve sets.
void expect_surviving_cells_bitwise_equal(
    const sweeps::SweepCurves& clean, const sweeps::SweepCurves& supervised,
    const std::vector<std::pair<std::size_t, core::NodeMode>>& skip = {}) {
  const auto skipped = [&](std::size_t pi, core::NodeMode mode) {
    for (const auto& s : skip)
      if (s.first == pi && s.second == mode) return true;
    return false;
  };
  ASSERT_EQ(clean.points.size(), supervised.points.size());
  for (std::size_t i = 0; i < clean.points.size(); ++i) {
    const auto& c = clean.points[i];
    const auto& s = supervised.points[i];
    EXPECT_EQ(c.x, s.x);
    EXPECT_EQ(c.y, s.y);
    EXPECT_EQ(c.z, s.z);
    if (!skipped(i, core::NodeMode::kOneRankPerGpu)) {
      EXPECT_EQ(bits_of(c.t_default), bits_of(s.t_default)) << "point " << i;
      EXPECT_EQ(bits_of(c.steady_default), bits_of(s.steady_default))
          << "point " << i;
    }
    if (!skipped(i, core::NodeMode::kMpsPerGpu)) {
      EXPECT_EQ(bits_of(c.t_mps), bits_of(s.t_mps)) << "point " << i;
      EXPECT_EQ(bits_of(c.steady_mps), bits_of(s.steady_mps))
          << "point " << i;
    }
    if (!skipped(i, core::NodeMode::kHeterogeneous)) {
      EXPECT_EQ(bits_of(c.t_hetero), bits_of(s.t_hetero)) << "point " << i;
      EXPECT_EQ(bits_of(c.steady_hetero), bits_of(s.steady_hetero))
          << "point " << i;
      EXPECT_EQ(bits_of(c.hetero_cpu_share), bits_of(s.hetero_cpu_share))
          << "point " << i;
    }
  }
}

// --- Quarantine (the ISSUE acceptance scenario) ------------------------------

TEST(SweepSupervision, PoisonedCellIsQuarantinedSurvivorsBitwiseIdentical) {
  const auto spec = fig18_reduced();
  const auto clean = sweeps::run_figure_sweep(spec, reduced_options());

  coop::obs::MetricsRegistry metrics;
  sweeps::SweepOptions options = reduced_options();
  options.metrics = &metrics;
  options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
    if (point == 1 && mode == core::NodeMode::kHeterogeneous)
      core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                            "test: injected poison cell");
  };
  const auto poisoned = sweeps::run_figure_sweep(spec, options);

  ASSERT_EQ(poisoned.failed_cells.size(), 1u);
  const auto& f = poisoned.failed_cells[0];
  EXPECT_EQ(f.point, 1u);
  EXPECT_EQ(f.mode, core::NodeMode::kHeterogeneous);
  EXPECT_EQ(f.error.kind, core::SimErrorKind::kFaultUnrecoverable);
  EXPECT_EQ(f.attempts, 1);  // deterministic failures are never retried
  EXPECT_EQ(poisoned.supervision.quarantined, 1);
  EXPECT_EQ(poisoned.supervision.retries, 0);
  EXPECT_EQ(poisoned.supervision.cells_total,
            static_cast<int>(3 * clean.points.size()));

  expect_surviving_cells_bitwise_equal(
      clean, poisoned, {{1, core::NodeMode::kHeterogeneous}});

  std::ostringstream json;
  metrics.write_json(json, 0.0);
  EXPECT_NE(json.str().find("sweep.cells_total"), std::string::npos);
  EXPECT_NE(json.str().find("sweep.cells_quarantined"), std::string::npos);
}

TEST(SweepSupervision, QuarantineIsDeterministicAcrossWorkerCounts) {
  const auto spec = fig18_reduced();
  sweeps::SweepOptions options = reduced_options();
  options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
    if ((point == 0 && mode == core::NodeMode::kMpsPerGpu) ||
        (point == 2 && mode == core::NodeMode::kOneRankPerGpu))
      core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                            "test: poison");
  };
  const auto serial = sweeps::run_figure_sweep(spec, options);
  options.jobs = 4;
  const auto parallel = sweeps::run_figure_sweep(spec, options);

  expect_surviving_cells_bitwise_equal(serial, parallel);
  ASSERT_EQ(serial.failed_cells.size(), 2u);
  ASSERT_EQ(parallel.failed_cells.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(serial.failed_cells[i].point, parallel.failed_cells[i].point);
    EXPECT_EQ(serial.failed_cells[i].mode, parallel.failed_cells[i].mode);
    EXPECT_EQ(serial.failed_cells[i].error.cell,
              parallel.failed_cells[i].error.cell);
  }
  // Sorted by (point, cell) regardless of completion order.
  EXPECT_EQ(serial.failed_cells[0].point, 0u);
  EXPECT_EQ(serial.failed_cells[1].point, 2u);
}

TEST(SweepSupervision, QuarantineDisabledPropagatesTypedError) {
  const auto spec = fig18_reduced();
  sweeps::SweepOptions options = reduced_options();
  options.quarantine_failures = false;
  options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
    if (point == 0 && mode == core::NodeMode::kOneRankPerGpu)
      core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                            "test: poison");
  };
  try {
    (void)sweeps::run_figure_sweep(spec, options);
    FAIL() << "poison did not propagate";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kFaultUnrecoverable);
  }
  // Parallel path: the executor aggregates the propagated error instead.
  options.jobs = 4;
  EXPECT_THROW((void)sweeps::run_figure_sweep(spec, options),
               sweeps::SweepIndexError);
}

// --- Retry ------------------------------------------------------------------

TEST(SweepSupervision, TransientFailureRetriesThenMatchesCleanRun) {
  const auto spec = fig18_reduced();
  const auto clean = sweeps::run_figure_sweep(spec, reduced_options());

  sweeps::SweepOptions options = reduced_options();
  options.max_cell_attempts = 3;
  std::atomic<int> flaky_calls{0};
  options.cell_hook = [&flaky_calls](std::size_t point, core::NodeMode mode,
                                     int attempt) {
    if (point == 0 && mode == core::NodeMode::kOneRankPerGpu) {
      ++flaky_calls;
      if (attempt < 3)
        core::throw_sim_error(core::SimErrorKind::kIo,
                              "test: transient cell");
    }
  };
  const auto retried = sweeps::run_figure_sweep(spec, options);

  EXPECT_EQ(flaky_calls.load(), 3);
  EXPECT_EQ(retried.supervision.retries, 2);
  EXPECT_EQ(retried.supervision.quarantined, 0);
  EXPECT_TRUE(retried.failed_cells.empty());
  // The retried cell eventually ran clean, so the whole sweep is bitwise
  // identical to the unsupervised run.
  expect_surviving_cells_bitwise_equal(clean, retried);
}

TEST(SweepSupervision, TransientFailureExhaustsAttemptsAndQuarantines) {
  const auto spec = fig18_reduced();
  sweeps::SweepOptions options = reduced_options();
  options.max_cell_attempts = 2;
  options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
    if (point == 1 && mode == core::NodeMode::kMpsPerGpu)
      core::throw_sim_error(core::SimErrorKind::kIo, "test: always flaky");
  };
  const auto curves = sweeps::run_figure_sweep(spec, options);
  ASSERT_EQ(curves.failed_cells.size(), 1u);
  EXPECT_EQ(curves.failed_cells[0].error.kind, core::SimErrorKind::kIo);
  EXPECT_EQ(curves.failed_cells[0].attempts, 2);
  EXPECT_EQ(curves.supervision.retries, 1);
  EXPECT_EQ(curves.supervision.quarantined, 1);
}

// --- Watchdog budgets and cancellation ---------------------------------------

TEST(SweepSupervision, EventBudgetQuarantinesEveryCellAsTimeout) {
  const auto spec = fig18_reduced();
  sweeps::SweepOptions options = reduced_options();
  options.cell_budget.max_events = 10;  // far below any cell's event count
  const auto curves = sweeps::run_figure_sweep(spec, options);
  ASSERT_EQ(curves.failed_cells.size(),
            static_cast<std::size_t>(curves.supervision.cells_total));
  for (const auto& f : curves.failed_cells) {
    EXPECT_EQ(f.error.kind, core::SimErrorKind::kTimeout);
    EXPECT_NE(f.error.context.find("event budget"), std::string::npos);
  }
}

TEST(SweepSupervision, CancellationAbortsTheCampaign) {
  const auto spec = fig18_reduced();
  sweeps::SweepOptions options = reduced_options();
  core::CancelToken token;
  token.request_cancel();
  options.cancel = &token;
  try {
    (void)sweeps::run_figure_sweep(spec, options);
    FAIL() << "cancellation did not propagate";
  } catch (const core::SimErrorCarrier& c) {
    EXPECT_EQ(c.error().kind, core::SimErrorKind::kCancelled);
  }
}

// --- SweepExecutor failure aggregation (satellite regression) ----------------

TEST(SweepExecutorFailures, EveryFailedIndexIsReportedSorted) {
  sweeps::SweepExecutor ex(4);
  std::atomic<int> visited{0};
  try {
    ex.for_each_index(60, [&](std::size_t i) {
      ++visited;
      if (i == 10 || i == 20 || i == 30)
        throw std::runtime_error("cell " + std::to_string(i) + " failed");
    });
    FAIL() << "failures did not propagate";
  } catch (const sweeps::SweepIndexError& e) {
    ASSERT_EQ(e.failures().size(), 3u);
    EXPECT_EQ(e.failures()[0].index, 10u);
    EXPECT_EQ(e.failures()[1].index, 20u);
    EXPECT_EQ(e.failures()[2].index, 30u);
    EXPECT_NE(e.failures()[1].message.find("cell 20"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3 of the claimed indices failed"),
              std::string::npos);
    for (const auto& f : e.failures()) ASSERT_NE(f.error, nullptr);
  }
  // One throw must not strand the remaining indices.
  EXPECT_EQ(visited.load(), 60);
}

TEST(SweepExecutorFailures, SerialPathAggregatesToo) {
  sweeps::SweepExecutor ex(1);
  std::vector<std::size_t> order;
  try {
    ex.for_each_index(5, [&](std::size_t i) {
      order.push_back(i);
      if (i == 1 || i == 3) throw std::runtime_error("boom");
    });
    FAIL() << "failures did not propagate";
  } catch (const sweeps::SweepIndexError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].index, 1u);
    EXPECT_EQ(e.failures()[1].index, 3u);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// --- Crash-safe artifact writes (satellite regression) -----------------------

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("coophet_supervision_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

TEST(AtomicWrite, SuccessfulWriteLeavesNoTempFile) {
  TempDir tmp;
  const auto target = tmp.path() / "artifact.json";
  coop::obs::atomic_write_file(target.string(),
                               [](std::ostream& os) { os << "{\"ok\":1}\n"; });
  std::ifstream in(target);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":1}\n");
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST(AtomicWrite, FailedWriteNeverTouchesTheFinalPath) {
  TempDir tmp;
  const auto target = tmp.path() / "artifact.json";
  EXPECT_THROW(coop::obs::atomic_write_file(target.string(),
                                            [](std::ostream& os) {
                                              os << "{\"partial\":";
                                              throw std::runtime_error(
                                                  "writer died mid-artifact");
                                            }),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST(AtomicWrite, FailedRewriteKeepsThePriorContents) {
  TempDir tmp;
  const auto target = tmp.path() / "artifact.json";
  coop::obs::atomic_write_file(target.string(),
                               [](std::ostream& os) { os << "v1\n"; });
  EXPECT_THROW(coop::obs::atomic_write_file(
                   target.string(),
                   [](std::ostream& os) {
                     os << "v2-partial";
                     throw std::runtime_error("crash");
                   }),
               std::runtime_error);
  std::ifstream in(target);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "v1\n");  // the v1 artifact survived the failed rewrite
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

// --- Flight recorder end-to-end through sweep supervision --------------------

TEST(SweepFlightRecorder, QuarantineDumpsACidScopedCrashDump) {
  TempDir tmp;
  coop::obs::log::FlightRecorder recorder;
  sweeps::SweepOptions options = reduced_options();
  options.flight = &recorder;
  options.flight_dump_dir = tmp.path().string();
  options.cell_hook = [](std::size_t point, core::NodeMode mode, int) {
    if (point == 1 && mode == core::NodeMode::kHeterogeneous)
      core::throw_sim_error(core::SimErrorKind::kFaultUnrecoverable,
                            "test: poisoned cell");
  };

  const sweeps::SweepCurves curves =
      sweeps::run_figure_sweep(fig18_reduced(), options);
  ASSERT_EQ(curves.failed_cells.size(), 1u);

  // Cell ids are (point * modes + mode-index); heterogeneous is the third
  // swept mode, so (point 1, hetero) is cell 5 and its correlation id is
  // flight_cid_base + 5 = 6.
  const auto dump_path = tmp.path() / "flight_cell5.json";
  ASSERT_TRUE(fs::exists(dump_path));
  std::ifstream in(dump_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const auto parsed = coophet_test::json::parse(content);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(coophet_test::json::check_artifact_schema(parsed.value,
                                                        "coophet.flight_log")
                  .empty());
  EXPECT_EQ(parsed.value.find("reason")->str, "quarantine");
  EXPECT_EQ(parsed.value.find("focus_cid")->number, 6.0);

  // The poisoned cell's full story is in the dump under its own id.
  int attempts = 0, quarantines = 0;
  for (const auto& ev : parsed.value.find("events")->array) {
    if (ev.find("cid")->number != 6.0) continue;
    const std::string& name = ev.find("name")->str;
    attempts += name == "cell:attempt" ? 1 : 0;
    quarantines += name == "cell:quarantine" ? 1 : 0;
  }
  EXPECT_EQ(attempts, 1);  // kFaultUnrecoverable never retries
  EXPECT_EQ(quarantines, 1);
}

TEST(SweepFlightRecorder, IdenticalSweepsProduceByteIdenticalFlightLogs) {
  const auto run_once = [](int jobs) {
    coop::obs::log::FlightRecorder recorder;
    sweeps::SweepOptions options = reduced_options();
    options.jobs = jobs;
    options.flight = &recorder;
    (void)sweeps::run_figure_sweep(fig18_reduced(), options);
    const auto drained = recorder.drain();
    EXPECT_EQ(drained.dropped, 0u);
    std::ostringstream os;
    recorder.write_flight_log(os, drained, "determinism");
    return os.str();
  };
  // Same seed/schedule => byte-identical flight logs, serial or parallel:
  // events are ordered by (cid, per-writer seq), never by thread arrival.
  const std::string serial = run_once(1);
  const std::string parallel = run_once(3);
  EXPECT_GT(serial.size(), 100u);
  EXPECT_EQ(serial, parallel);
}

TEST(AtomicWrite, BenchArtifactsLandAtomically) {
  TempDir tmp;
  const auto spec = sweeps::reduced(sweeps::figure_spec(18), 2);
  const auto curves = sweeps::run_figure_sweep(spec, reduced_options());
  const auto artifacts =
      sweeps::make_bench_artifacts(curves, nullptr, /*exemplar_timesteps=*/2);
  const auto report_path =
      sweeps::write_bench_artifacts(artifacts, tmp.path().string());
  EXPECT_TRUE(fs::exists(report_path));
  int files = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path())) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".json")
        << "stray file: " << entry.path();
  }
  EXPECT_EQ(files, 3);  // report + trace + critpath, no .tmp leftovers
}

}  // namespace
