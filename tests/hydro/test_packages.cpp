#include <gtest/gtest.h>

#include <cmath>

#include "coop/core/functional_sim.hpp"
#include "coop/hydro/solver.hpp"

namespace hy = coop::hydro;
namespace mem = coop::memory;
using coop::mesh::Box;

namespace {

mem::MemoryManager make_mm() {
  mem::MemoryManager::Config c;
  c.target = mem::ExecutionTarget::kCpuCore;
  c.host_capacity = std::size_t{1} << 30;
  return mem::MemoryManager(c);
}

struct Rank {
  mem::MemoryManager mm = make_mm();
  hy::ProblemConfig cfg;
  hy::Solver solver;

  explicit Rank(hy::ProblemConfig c)
      : cfg(c), solver(mm, cfg, cfg.global,
                       coop::forall::DynamicPolicy{
                           coop::forall::PolicyKind::kSeq}) {
    solver.initialize();
  }

  double step() {
    solver.apply_physical_boundaries();
    solver.compute_primitives();
    const double dt = solver.local_dt();
    solver.advance(dt);
    return dt;
  }
};

hy::ProblemConfig scalar_problem(long n) {
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {n, n, n}};
  cfg.packages.passive_scalar = true;
  return cfg;
}

hy::ProblemConfig diffusion_problem(long n, double kappa) {
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {n, n, n}};
  cfg.packages.diffusion = true;
  cfg.packages.diffusivity = kappa;
  cfg.blast_energy = 0.0;  // quiescent gas; diffusion only
  return cfg;
}

// --- Passive scalar (mixing) package ---------------------------------------

TEST(ScalarPackage, FieldAllocatedOnlyWhenEnabled) {
  Rank with(scalar_problem(12));
  EXPECT_TRUE(with.solver.state().scal.valid());
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {12, 12, 12}};
  Rank without(cfg);
  EXPECT_FALSE(without.solver.state().scal.valid());
  EXPECT_EQ(without.solver.state().exchanged_fields().size(), 5u);
  EXPECT_EQ(with.solver.state().exchanged_fields().size(), 6u);
}

TEST(ScalarPackage, InitialBallTagged) {
  Rank r(scalar_problem(16));
  const auto d = r.solver.local_diagnostics();
  EXPECT_GT(d.scalar_mass, 0.0);
  EXPECT_DOUBLE_EQ(d.scalar_min, 0.0);
  EXPECT_DOUBLE_EQ(d.scalar_max, 1.0);
  // Ball of radius 0.25 in a unit cube of unit density: mass ~ 4/3 pi r^3.
  EXPECT_NEAR(d.scalar_mass, 4.0 / 3.0 * M_PI * 0.25 * 0.25 * 0.25,
              0.15 * d.scalar_mass);
}

TEST(ScalarPackage, MassExactlyConserved) {
  auto cfg = scalar_problem(16);
  cfg.boundary = hy::BoundaryCondition::kReflecting;  // no outflow losses
  Rank r(cfg);
  const double s0 = r.solver.local_diagnostics().scalar_mass;
  for (int i = 0; i < 20; ++i) r.step();
  const double s1 = r.solver.local_diagnostics().scalar_mass;
  EXPECT_NEAR(s1, s0, 1e-12 * s0);  // flux form: machine-level conservation
}

TEST(ScalarPackage, ConcentrationStaysBounded) {
  Rank r(scalar_problem(16));
  for (int i = 0; i < 25; ++i) {
    r.step();
    const auto d = r.solver.local_diagnostics();
    // Donor-cell on the consistent Rusanov mass flux: phi in [0,1] up to
    // roundoff.
    ASSERT_GT(d.scalar_min, -1e-10);
    ASSERT_LT(d.scalar_max, 1.0 + 1e-10);
  }
}

TEST(ScalarPackage, BlastSpreadsTheScalar) {
  // The blast wave should push tagged material outward: the scalar spreads
  // beyond its initial ball, diluting the peak concentration.
  Rank r(scalar_problem(20));
  for (int i = 0; i < 25; ++i) r.step();
  const auto& st = r.solver.state();
  // Count zones with phi > 1e-3 and compare with the initial ball volume.
  long tagged = 0;
  for (long k = 0; k < 20; ++k)
    for (long j = 0; j < 20; ++j)
      for (long i2 = 0; i2 < 20; ++i2)
        if (st.scal(i2, j, k) / st.rho(i2, j, k) > 1e-3) ++tagged;
  const double ball_zones = 4.0 / 3.0 * M_PI * std::pow(0.25 * 20, 3);
  EXPECT_GT(static_cast<double>(tagged), 1.3 * ball_zones);
}

TEST(ScalarPackage, QuiescentGasDoesNotMix) {
  auto cfg = scalar_problem(12);
  cfg.blast_energy = 0.0;  // nothing moves
  Rank r(cfg);
  const auto before = r.solver.local_diagnostics();
  for (int i = 0; i < 10; ++i) r.step();
  const auto after = r.solver.local_diagnostics();
  EXPECT_DOUBLE_EQ(after.scalar_mass, before.scalar_mass);
  EXPECT_DOUBLE_EQ(after.scalar_max, 1.0);
}

// --- Thermal diffusion package ----------------------------------------------

TEST(DiffusionPackage, TimestepRespectsStabilityBound) {
  const double kappa = 5e-3;
  Rank r(diffusion_problem(16, kappa));
  r.solver.apply_physical_boundaries();
  r.solver.compute_primitives();
  const double dx = r.cfg.dx();
  EXPECT_LE(r.solver.local_dt(),
            r.cfg.packages.diffusion_safety * dx * dx / (6.0 * kappa) + 1e-15);
}

TEST(DiffusionPackage, EnergyExactlyConserved) {
  auto cfg = diffusion_problem(16, 2e-3);
  cfg.blast_energy = 0.2;  // a hot spot to diffuse
  cfg.boundary = hy::BoundaryCondition::kReflecting;
  Rank r(cfg);
  const double e0 = r.solver.local_diagnostics().total_energy;
  for (int i = 0; i < 15; ++i) r.step();
  const double e1 = r.solver.local_diagnostics().total_energy;
  // Flux-form diffusion conserves energy exactly; hydro floors are the only
  // (tiny) source.
  EXPECT_NEAR(e1, e0, 1e-9 * e0);
}

TEST(DiffusionPackage, HotSpotSpreadsMonotonically) {
  auto cfg = diffusion_problem(16, 5e-3);
  cfg.blast_energy = 0.05;  // gentle: hydro stays subdominant
  Rank r(cfg);
  auto peak_energy = [&] {
    double peak = 0;
    for (long k = 0; k < 16; ++k)
      for (long j = 0; j < 16; ++j)
        for (long i = 0; i < 16; ++i)
          peak = std::max(peak, r.solver.state().ener(i, j, k));
    return peak;
  };
  double prev = peak_energy();
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 5; ++i) r.step();
    const double now = peak_energy();
    EXPECT_LT(now, prev);  // diffusion always flattens the peak
    prev = now;
  }
}

TEST(DiffusionPackage, SpreadMatchesHeatKernelRate) {
  // With a near-isothermal gas (gamma -> 1 suppresses the pressure response
  // so hydro motion stays negligible), the internal-energy perturbation
  // follows the heat equation: <r^2>(t) = <r^2>(0) + 6 kappa t.
  const double kappa = 4e-3;
  auto cfg = diffusion_problem(24, kappa);
  cfg.eos.gamma = 1.0001;
  cfg.blast_energy = 0.05;
  cfg.blast_radius_zones = 2.5;
  cfg.boundary = hy::BoundaryCondition::kReflecting;
  Rank r(cfg);

  const double e_amb = cfg.p0 / (cfg.eos.gamma - 1.0);
  auto second_moment = [&] {
    double w = 0, m2 = 0;
    for (long k = 0; k < 24; ++k)
      for (long j = 0; j < 24; ++j)
        for (long i = 0; i < 24; ++i) {
          const double de = r.solver.state().ener(i, j, k) - e_amb;
          const double x = (i + 0.5) * r.cfg.dx() - 0.5;
          const double y = (j + 0.5) * r.cfg.dy() - 0.5;
          const double z = (k + 0.5) * r.cfg.dz() - 0.5;
          w += de;
          m2 += de * (x * x + y * y + z * z);
        }
    return m2 / w;
  };

  const double m2_0 = second_moment();
  double t = 0;
  for (int i = 0; i < 15; ++i) t += r.step();
  const double m2_1 = second_moment();
  // Residual hydro motion and discretization: require agreement to 20%.
  EXPECT_NEAR(m2_1 - m2_0, 6.0 * kappa * t, 0.2 * 6.0 * kappa * t);
}

TEST(DiffusionPackage, ZeroDiffusivityMatchesPureHydro) {
  hy::ProblemConfig plain;
  plain.global = Box{{0, 0, 0}, {12, 12, 12}};
  auto diff = plain;
  diff.packages.diffusion = true;
  diff.packages.diffusivity = 0.0;
  Rank a(plain), b(diff);
  for (int i = 0; i < 8; ++i) {
    a.step();
    b.step();
  }
  for (long k = 0; k < 12; ++k)
    for (long j = 0; j < 12; ++j)
      for (long i = 0; i < 12; ++i)
        ASSERT_EQ(a.solver.state().ener(i, j, k),
                  b.solver.state().ener(i, j, k));
}

// --- Multi-physics integration ----------------------------------------------

TEST(MultiPhysics, AllPackagesTogetherConserve) {
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {16, 16, 16}};
  cfg.packages.passive_scalar = true;
  cfg.packages.diffusion = true;
  cfg.packages.diffusivity = 1e-3;
  cfg.boundary = hy::BoundaryCondition::kReflecting;
  Rank r(cfg);
  const auto d0 = r.solver.local_diagnostics();
  for (int i = 0; i < 15; ++i) r.step();
  const auto d1 = r.solver.local_diagnostics();
  EXPECT_NEAR(d1.mass, d0.mass, 1e-6 * d0.mass);
  EXPECT_NEAR(d1.total_energy, d0.total_energy, 1e-6 * d0.total_energy);
  EXPECT_NEAR(d1.scalar_mass, d0.scalar_mass, 1e-12 * d0.scalar_mass);
}

TEST(MultiPhysics, MultiRankMatchesSingleRank) {
  // The decisive halo-correctness property, now with package fields in the
  // exchange: a 16-rank heterogeneous run must reproduce the single-domain
  // physics to machine accuracy.
  coop::core::FunctionalConfig fc;
  fc.mode = coop::core::NodeMode::kHeterogeneous;
  fc.cpu_fraction = 0.25;
  fc.problem.global = Box{{0, 0, 0}, {20, 20, 20}};
  fc.problem.packages.passive_scalar = true;
  fc.problem.packages.diffusion = true;
  fc.problem.packages.diffusivity = 1e-3;
  fc.timesteps = 12;
  const auto multi = coop::core::run_functional(fc);

  Rank single([&] {
    auto cfg = fc.problem;
    return cfg;
  }());
  double t = 0;
  for (int i = 0; i < fc.timesteps; ++i) t += single.step();
  const auto d = single.solver.local_diagnostics();

  EXPECT_NEAR(multi.sim_time, t, 1e-13);
  EXPECT_NEAR(multi.mass_final, d.mass, 1e-12 * d.mass);
  EXPECT_NEAR(multi.energy_final, d.total_energy, 1e-12 * d.total_energy);
  EXPECT_NEAR(multi.scalar_mass_final, d.scalar_mass,
              1e-12 * d.scalar_mass);
  EXPECT_NEAR(multi.scalar_max, d.scalar_max, 1e-12);
}

}  // namespace
