#include <gtest/gtest.h>

#include "coop/core/node_mode.hpp"

namespace core = coop::core;
namespace dm = coop::devmodel;
using coop::memory::ExecutionTarget;
using coop::mesh::Box;

namespace {

const dm::NodeSpec kNode = dm::NodeSpec::rzhasgpu();
const Box kGlobal{{0, 0, 0}, {320, 480, 320}};

TEST(RankLayout, CpuOnlyUsesAllCores) {
  const auto l = core::make_rank_layout(core::NodeMode::kCpuOnly, kNode);
  EXPECT_EQ(l.total_ranks, 16);
  EXPECT_EQ(l.gpu_ranks, 0);
  EXPECT_EQ(l.cpu_ranks, 16);
  EXPECT_EQ(l.active_cores, 16);
}

TEST(RankLayout, DefaultModeMatchesPaperFig2) {
  const auto l = core::make_rank_layout(core::NodeMode::kOneRankPerGpu, kNode);
  EXPECT_EQ(l.total_ranks, 4);   // one per GPU
  EXPECT_EQ(l.gpu_ranks, 4);
  EXPECT_EQ(l.cpu_ranks, 0);
  EXPECT_EQ(l.active_cores, 4);  // 12 cores idle (the paper's Fig. 2 red)
}

TEST(RankLayout, MpsModeMatchesPaperFig3) {
  const auto l =
      core::make_rank_layout(core::NodeMode::kMpsPerGpu, kNode, 4);
  EXPECT_EQ(l.total_ranks, 16);
  EXPECT_EQ(l.gpu_ranks, 16);
  EXPECT_EQ(l.ranks_per_gpu, 4);
  EXPECT_EQ(l.active_cores, 16);
}

TEST(RankLayout, HeterogeneousMatchesPaperFig4) {
  const auto l =
      core::make_rank_layout(core::NodeMode::kHeterogeneous, kNode);
  EXPECT_EQ(l.total_ranks, 16);
  EXPECT_EQ(l.gpu_ranks, 4);    // 1 MPI/GPU drives the GPUs
  EXPECT_EQ(l.cpu_ranks, 12);   // remaining cores compute on the CPU
  EXPECT_EQ(l.active_cores, 16);
}

TEST(RankLayout, MpsOversubscriptionRejected) {
  EXPECT_THROW({ auto l = core::make_rank_layout(core::NodeMode::kMpsPerGpu,
                                                 kNode, 5); (void)l; },
               std::invalid_argument);  // 20 ranks > 16 cores
  EXPECT_THROW({ auto l = core::make_rank_layout(core::NodeMode::kMpsPerGpu,
                                                 kNode, 0); (void)l; },
               std::invalid_argument);
}

TEST(MakeDecomposition, ModesProduceValidatedSchemes) {
  for (auto mode : {core::NodeMode::kCpuOnly, core::NodeMode::kOneRankPerGpu,
                    core::NodeMode::kMpsPerGpu,
                    core::NodeMode::kHeterogeneous}) {
    const auto d = core::make_decomposition(mode, kNode, kGlobal);
    EXPECT_NO_THROW(d.validate()) << to_string(mode);
    const auto l = core::make_rank_layout(mode, kNode);
    EXPECT_EQ(d.ranks(), l.total_ranks) << to_string(mode);
  }
}

TEST(MakeDecomposition, TargetsMatchLayout) {
  const auto d = core::make_decomposition(core::NodeMode::kHeterogeneous,
                                          kNode, kGlobal, 4, 0.025);
  int gpu = 0, cpu = 0;
  for (const auto& dom : d.domains)
    (dom.target == ExecutionTarget::kGpuDevice ? gpu : cpu)++;
  EXPECT_EQ(gpu, 4);
  EXPECT_EQ(cpu, 12);
}

TEST(NodeMode, Names) {
  EXPECT_STREQ(to_string(core::NodeMode::kHeterogeneous), "heterogeneous");
  EXPECT_STREQ(to_string(core::NodeMode::kOneRankPerGpu),
               "default-1mpi-per-gpu");
}

}  // namespace
