#pragma once

#include <string>
#include <vector>

#include "coop/devmodel/kernel_cost.hpp"

/// \file kernel_catalog.hpp
/// Cost catalog of the ARES Sedov hydro step.
///
/// The paper's Fig. 11 caption states the Sedov problem runs ~80 kernels per
/// step. Our mini-app implements a representative subset functionally; for
/// *timed* simulation the full 80-kernel catalog is walked, so launch
/// overheads and MPS behaviour are exercised at the paper's kernel
/// granularity. Per-kernel flop/byte intensities vary around the calibrated
/// means (deterministically), and their totals match the calibrated per-zone
/// per-step aggregates exactly.

namespace coop::hydro {

struct KernelDesc {
  std::string name;
  devmodel::KernelWork work;  ///< per-zone demands of this kernel
};

class KernelCatalog {
 public:
  /// The ARES Sedov step: `calib::kAresKernelCount` kernels whose summed
  /// per-zone work equals the calibrated totals.
  static KernelCatalog ares_sedov();

  /// A reduced catalog (for fast tests): `count` kernels, same *average*
  /// intensity as ares_sedov.
  static KernelCatalog scaled(int count);

  [[nodiscard]] const std::vector<KernelDesc>& kernels() const noexcept {
    return kernels_;
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(kernels_.size());
  }
  /// Summed per-zone work across all kernels.
  [[nodiscard]] devmodel::KernelWork total() const noexcept;

 private:
  std::vector<KernelDesc> kernels_;
};

}  // namespace coop::hydro
