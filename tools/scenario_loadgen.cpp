/// Load-test CLI for the scenario service daemon (DESIGN.md section 12).
///
/// Runs the seeded, clock-free load generator (`coop::service::run_loadgen`)
/// against a fresh in-process `ScenarioServer` and records the results
/// machine-readably:
///
///   argv[1] — metrics output, default `BENCH_harness.json`. When the file
///             already exists (the harness benchmark ran first), its
///             counter/gauge samples are carried over so the loadgen's
///             `loadgen.*` / `service.*` / `admission.*` gauges land in the
///             same coophet.metrics snapshot instead of clobbering it.
///   argv[2] — service-stats output, default `service_stats.json`
///             (coophet.service_stats v2, straight from the server).
///   argv[3] — telemetry output, default `telemetry.json` (coophet.telemetry
///             v1: per-window request/outcome series on the request-count
///             axis, the default service SLOs, and the burn-rate alert
///             timeline). Byte-identical for identical knobs — the CI
///             determinism gate runs the tool twice and `cmp`s the files.
///   argv[4] — optional flight crash-dump output (coophet.flight_log v2).
///             When given, the telemetry sampler records window closes and
///             SLO alert edges into a flight recorder and the tool dumps it
///             focused on the telemetry stream — `flight_log DUMP
///             --component telemetry --window N` replays the alert history.
///
/// Environment knobs (all optional):
///   COOPHET_LOADGEN_SEED             request-schedule seed      (default 42)
///   COOPHET_LOADGEN_GROUPS           request groups             (default 200)
///   COOPHET_LOADGEN_UNIVERSE         distinct scenarios         (default 24)
///   COOPHET_LOADGEN_ZIPF_S           popularity skew            (default 1.1)
///   COOPHET_LOADGEN_BURST_EVERY      burst cadence, 0=never     (default 8)
///   COOPHET_LOADGEN_BURST_SIZE       concurrent dupes per burst (default 4)
///   COOPHET_LOADGEN_CACHE_CAPACITY   server cache entries       (default 16)
///   COOPHET_LOADGEN_DIM              scenario cube extent       (default 24)
///   COOPHET_LOADGEN_TIMESTEPS        per cold run               (default 30)
///   COOPHET_LOADGEN_MIN_HIT_SPEEDUP  acceptance floor           (default 100)
///   COOPHET_LOADGEN_TELEMETRY_WINDOW requests per window        (default 50)
///   COOPHET_LOADGEN_ERROR_BURST_START  first all-error group    (default 0)
///   COOPHET_LOADGEN_ERROR_BURST_GROUPS groups in the injected   (default 0)
///                                      error burst; 0 disables injection
///
/// Exit status is the CI gate: nonzero when the live counters diverge from
/// the serial-replay prediction (hit ratio and dedup-coalesce counts must
/// match the seeded expectation *exactly*) or when the measured cache-hit
/// path is not at least MIN_HIT_SPEEDUP times faster than a cold run.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "coop/obs/artifact_io.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/metrics.hpp"
#include "coop/obs/telemetry/sampler.hpp"
#include "coop/service/loadgen.hpp"
#include "support/json_check.hpp"

namespace {

namespace service = coop::service;
namespace obs = coop::obs;
namespace json = coophet_test::json;

long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name))
    if (const long n = std::atol(v); n >= 0) return n;
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name))
    if (const double x = std::atof(v); x > 0.0) return x;
  return fallback;
}

/// Re-registers the counter/gauge samples of an existing coophet.metrics
/// file into `reg`, so the rewritten snapshot is a superset. (The harness
/// benchmark emits only gauges today; histograms would need bucket
/// round-tripping and are skipped with a warning.)
void carry_over_metrics(const std::string& path, obs::MetricsRegistry& reg) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return;  // nothing to merge
  std::ostringstream buf;
  buf << is.rdbuf();
  const json::ParseResult parsed = json::parse(buf.str());
  if (!parsed.ok) {
    std::fprintf(stderr,
                 "scenario_loadgen: %s exists but is not valid JSON (%s); "
                 "overwriting\n",
                 path.c_str(), parsed.error.c_str());
    return;
  }
  if (!json::check_artifact_schema(parsed.value, "coophet.metrics").empty())
    return;  // some other artifact: leave it out of the merge
  const json::Value* samples = parsed.value.find("metrics");
  if (samples == nullptr || !samples->is_array()) return;
  for (const json::Value& s : samples->array) {
    const json::Value* name = s.find("name");
    const json::Value* kind = s.find("kind");
    const json::Value* value = s.find("value");
    if (name == nullptr || !name->is_string() || kind == nullptr ||
        !kind->is_string())
      continue;
    obs::Labels labels;
    if (const json::Value* l = s.find("labels"); l != nullptr && l->is_object())
      for (const auto& [k, v] : l->object)
        if (v.is_string()) labels.set(k, v.str);
    if (kind->str == "gauge" && value != nullptr && value->is_number()) {
      reg.gauge(name->str, labels).set(value->number);
    } else if (kind->str == "counter" && value != nullptr &&
               value->is_number()) {
      reg.counter(name->str, labels).add(value->number);
    } else if (kind->str == "histogram") {
      std::fprintf(stderr,
                   "scenario_loadgen: skipping histogram \"%s\" in %s "
                   "(merge keeps counters/gauges only)\n",
                   name->str.c_str(), path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = argc > 1 ? argv[1] : "BENCH_harness.json";
  const std::string stats_path = argc > 2 ? argv[2] : "service_stats.json";
  const std::string telemetry_path = argc > 3 ? argv[3] : "telemetry.json";
  const std::string flight_dump_path = argc > 4 ? argv[4] : "";

  service::LoadgenConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(env_long("COOPHET_LOADGEN_SEED", 42));
  cfg.groups = static_cast<int>(env_long("COOPHET_LOADGEN_GROUPS", 200));
  cfg.universe = static_cast<int>(env_long("COOPHET_LOADGEN_UNIVERSE", 24));
  cfg.zipf_s = env_double("COOPHET_LOADGEN_ZIPF_S", 1.1);
  cfg.burst_every =
      static_cast<int>(env_long("COOPHET_LOADGEN_BURST_EVERY", 8));
  cfg.burst_size = static_cast<int>(env_long("COOPHET_LOADGEN_BURST_SIZE", 4));
  cfg.cache_capacity = static_cast<std::size_t>(
      env_long("COOPHET_LOADGEN_CACHE_CAPACITY", 16));
  cfg.dim = env_long("COOPHET_LOADGEN_DIM", 24);
  cfg.timesteps = static_cast<int>(env_long("COOPHET_LOADGEN_TIMESTEPS", 30));
  const double min_hit_speedup =
      env_double("COOPHET_LOADGEN_MIN_HIT_SPEEDUP", 100.0);
  cfg.error_burst_start =
      static_cast<int>(env_long("COOPHET_LOADGEN_ERROR_BURST_START", 0));
  cfg.error_burst_groups =
      static_cast<int>(env_long("COOPHET_LOADGEN_ERROR_BURST_GROUPS", 0));

  obs::log::FlightRecorder recorder;
  coop::obs::telemetry::TelemetryConfig tel_cfg;
  tel_cfg.axis = "requests";
  tel_cfg.window_width = env_double("COOPHET_LOADGEN_TELEMETRY_WINDOW", 50.0);
  tel_cfg.slos = service::default_service_slos();
  if (!flight_dump_path.empty()) tel_cfg.flight = &recorder;
  coop::obs::telemetry::TelemetrySampler sampler(std::move(tel_cfg));
  cfg.telemetry = &sampler;

  obs::MetricsRegistry reg;
  carry_over_metrics(metrics_path, reg);
  const service::LoadgenReport report = service::run_loadgen(cfg, &reg);

  std::printf("=== scenario service load test: seed %llu, %d groups, "
              "universe %d, zipf %.2f, burst %dx every %d ===\n",
              static_cast<unsigned long long>(cfg.seed), cfg.groups,
              cfg.universe, cfg.zipf_s, cfg.burst_size, cfg.burst_every);
  std::printf("requests: %llu   served: %.0f req/s   wall: %.3f s\n",
              static_cast<unsigned long long>(report.actual.requests),
              report.served_qps, report.wall_s);
  const auto print_latency = [](const char* outcome,
                                const service::LoadgenReport::OutcomeLatency&
                                    o) {
    std::printf("latency[%-9s] n=%-5llu p50 %.1f us   p95 %.1f us   "
                "p99 %.1f us\n",
                outcome, static_cast<unsigned long long>(o.count), o.p50_us,
                o.p95_us, o.p99_us);
  };
  print_latency("hit", report.hit);
  print_latency("miss", report.cold);
  print_latency("coalesced", report.coalesced);
  std::printf("hit path %.2f us vs cold run %.1f us  (speedup %.0fx, "
              "floor %.0fx)\n",
              report.mean_hit_us, report.mean_cold_us, report.hit_speedup,
              min_hit_speedup);
  std::printf("counters  hits %llu (ratio %.3f)  misses %llu  executions "
              "%llu  coalesced %llu  evictions %llu  [%s]\n",
              static_cast<unsigned long long>(report.actual.hits),
              report.expected_hit_ratio,
              static_cast<unsigned long long>(report.actual.misses),
              static_cast<unsigned long long>(report.actual.executions),
              static_cast<unsigned long long>(report.actual.coalesced),
              static_cast<unsigned long long>(report.actual.cache_evictions),
              report.expectations_match ? "matches replay prediction"
                                        : "DIVERGES from replay prediction");

  try {
    obs::atomic_write_file(metrics_path, [&](std::ostream& os) {
      reg.write_json(os, 0.0);
      os << '\n';
    });
    obs::atomic_write_file(stats_path, [&](std::ostream& os) {
      os << report.service_stats_json;
    });
    obs::atomic_write_file(telemetry_path, [&](std::ostream& os) {
      os << report.telemetry_json << '\n';
    });
    if (!flight_dump_path.empty())
      recorder.dump_crash(flight_dump_path,
                          sampler.alerts().empty() ? "loadgen_complete"
                                                   : "slo_alert",
                          coop::obs::telemetry::kTelemetryCid);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_loadgen: write failed: %s\n", e.what());
    return 1;
  }
  std::printf("(metrics written to %s, service stats to %s, telemetry to "
              "%s%s%s)\n",
              metrics_path.c_str(), stats_path.c_str(), telemetry_path.c_str(),
              flight_dump_path.empty() ? "" : ", flight dump to ",
              flight_dump_path.c_str());

  if (!report.expectations_match) {
    const auto diff = [](const char* what, std::uint64_t got,
                         std::uint64_t want) {
      if (got != want)
        std::fprintf(stderr,
                     "scenario_loadgen: %s = %llu, replay predicted %llu\n",
                     what, static_cast<unsigned long long>(got),
                     static_cast<unsigned long long>(want));
    };
    diff("requests", report.actual.requests, report.expected.requests);
    diff("hits", report.actual.hits, report.expected.hits);
    diff("misses", report.actual.misses, report.expected.misses);
    diff("executions", report.actual.executions, report.expected.executions);
    diff("coalesced", report.actual.coalesced, report.expected.coalesced);
    diff("shed_rate", report.actual.shed_rate, report.expected.shed_rate);
    diff("shed_queue_full", report.actual.shed_queue_full,
         report.expected.shed_queue_full);
    diff("errors", report.actual.errors, report.expected.errors);
    diff("cache_insertions", report.actual.cache_insertions,
         report.expected.cache_insertions);
    diff("cache_evictions", report.actual.cache_evictions,
         report.expected.cache_evictions);
    return 1;
  }
  if (report.hit_speedup < min_hit_speedup) {
    std::fprintf(stderr,
                 "scenario_loadgen: cache-hit speedup %.1fx is below the "
                 "%.0fx acceptance floor\n",
                 report.hit_speedup, min_hit_speedup);
    return 1;
  }
  return 0;
}
