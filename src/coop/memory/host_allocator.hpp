#pragma once

#include <cstdlib>
#include <new>
#include <unordered_map>

#include "coop/memory/allocator.hpp"

/// \file host_allocator.hpp
/// Capacity-accounted allocators backed by real host memory. The same
/// implementation serves as "malloc" (host space) and — with a different
/// space tag and capacity — as the simulated "cudaMallocManaged" (unified).

namespace coop::memory {

class TrackedAllocator : public Allocator {
 public:
  /// `capacity` is the simulated capacity of the space; allocations beyond
  /// it throw std::bad_alloc even though host memory could satisfy them.
  TrackedAllocator(MemorySpace space, std::size_t capacity)
      : space_(space), capacity_(capacity) {}
  ~TrackedAllocator() override {
    for (auto& [p, sz] : live_) std::free(p);
  }
  TrackedAllocator(const TrackedAllocator&) = delete;
  TrackedAllocator& operator=(const TrackedAllocator&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes) override {
    if (in_use_ + bytes > capacity_) throw std::bad_alloc{};
    void* p = std::malloc(bytes == 0 ? 1 : bytes);
    if (p == nullptr) throw std::bad_alloc{};
    live_.emplace(p, bytes);
    in_use_ += bytes;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return p;
  }

  void deallocate(void* p) override {
    if (p == nullptr) return;
    auto it = live_.find(p);
    if (it == live_.end()) throw std::invalid_argument("unknown pointer");
    in_use_ -= it->second;
    std::free(p);
    live_.erase(it);
  }

  [[nodiscard]] MemorySpace space() const noexcept override { return space_; }
  [[nodiscard]] std::size_t bytes_in_use() const noexcept override {
    return in_use_;
  }
  [[nodiscard]] std::size_t high_water() const noexcept override {
    return high_water_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept override {
    return capacity_;
  }
  [[nodiscard]] std::size_t live_allocations() const noexcept {
    return live_.size();
  }

 private:
  MemorySpace space_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::unordered_map<void*, std::size_t> live_;
};

/// Host DRAM ("Malloc" column of the paper's Fig. 8).
class HostAllocator : public TrackedAllocator {
 public:
  explicit HostAllocator(std::size_t capacity)
      : TrackedAllocator(MemorySpace::kHost, capacity) {}
};

/// Simulated cudaMallocManaged: unified memory accessible from CPU and GPU.
class UnifiedAllocator : public TrackedAllocator {
 public:
  explicit UnifiedAllocator(std::size_t capacity)
      : TrackedAllocator(MemorySpace::kUnified, capacity) {}
};

}  // namespace coop::memory
