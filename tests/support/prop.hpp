#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

/// \file prop.hpp
/// Minimal seeded property-testing harness over GTest.
///
/// A property is: a generator (drawing an Input from a seeded `Gen`), a
/// predicate (`holds`), and optionally a shrinker and a printer. `check`
/// runs `cases` generated inputs; on the first falsified case it greedily
/// shrinks the counterexample and reports one GTest failure that includes
/// the case seed and a rerun recipe:
///
///     COOPHET_PROP_SEED=<seed> ctest -R <test> ...
///
/// Replay is exact: the case seed alone determines the generated input
/// (SplitMix64 is the only entropy source; no global RNG or clock is
/// consulted), so a CI failure reproduces locally from the printed seed.
/// Without the environment override the master seed is a fixed constant —
/// test runs are deterministic unless a new seed is chosen on purpose
/// (COOPHET_PROP_SEED=<master> runs the whole suite from that master).

namespace coop::prop {

/// SplitMix64 (Steele et al.): tiny, seedable, and splittable enough for
/// test-case generation. Matches the generator the fault-plan sampler uses,
/// so "replayable from a printed seed" means the same thing everywhere.
inline std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Seeded value source handed to generators.
class Gen {
 public:
  explicit Gen(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t bits() { return splitmix64_next(state_); }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] long int_in(long lo, long hi) {
    if (lo > hi) throw std::invalid_argument("Gen::int_in: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<long>(bits() % span);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double real_in(double lo, double hi) {
    const double u =
        static_cast<double>(bits() >> 11) * 0x1.0p-53;  // [0, 1)
    return lo + u * (hi - lo);
  }

  [[nodiscard]] bool coin(double p = 0.5) { return real_in(0.0, 1.0) < p; }

  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& options) {
    if (options.empty()) throw std::invalid_argument("Gen::pick: empty");
    return options[static_cast<std::size_t>(
        int_in(0, static_cast<long>(options.size()) - 1))];
  }

 private:
  std::uint64_t state_;
};

template <typename Input>
struct Property {
  std::string name;
  std::function<Input(Gen&)> generate;
  /// Returns true when the property holds; may write a diagnosis to `why`.
  std::function<bool(const Input&, std::ostream& why)> holds;
  /// Optional: smaller candidate inputs to try while shrinking (most
  /// aggressive first). The harness keeps a candidate only if it still
  /// falsifies the property.
  std::function<std::vector<Input>(const Input&)> shrink;
  /// Optional: pretty-printer for the (shrunk) counterexample.
  std::function<void(const Input&, std::ostream&)> show;
};

struct Config {
  int cases = 25;
  /// Master seed; every case i derives its own seed from it. Overridden by
  /// COOPHET_PROP_SEED (which, for a single-case replay, IS the case seed).
  std::uint64_t seed = 0xC00FE75EEDULL;
  int max_shrink_steps = 200;
};

/// COOPHET_PROP_SEED, when set: replay exactly one case with that seed.
inline std::optional<std::uint64_t> env_seed() {
  const char* s = std::getenv("COOPHET_PROP_SEED");
  if (s == nullptr || *s == '\0') return std::nullopt;
  return std::strtoull(s, nullptr, 0);
}

/// The seed of case `index` under master seed `master`.
inline std::uint64_t case_seed(std::uint64_t master, int index) {
  std::uint64_t s = master ^ (0xA5A5A5A5DEADBEEFULL *
                              (static_cast<std::uint64_t>(index) + 1));
  return splitmix64_next(s);
}

template <typename Input>
struct Counterexample {
  Input input;
  std::uint64_t seed = 0;   ///< case seed that generated the original input
  int case_index = -1;      ///< -1 when replayed from COOPHET_PROP_SEED
  int shrink_steps = 0;     ///< successful shrink steps applied
  std::string why;          ///< diagnosis from the final falsifying run
};

/// Core search loop, exposed separately so the harness itself is testable
/// without spawning GTest failures: runs the property, returns the shrunk
/// counterexample of the first falsified case, or nullopt when all pass.
template <typename Input>
std::optional<Counterexample<Input>> find_counterexample(
    const Property<Input>& prop, const Config& cfg = {}) {
  const auto replay = env_seed();
  const int cases = replay ? 1 : cfg.cases;
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = replay ? *replay : case_seed(cfg.seed, i);
    Gen gen(seed);
    Input input = prop.generate(gen);
    std::ostringstream why;
    if (prop.holds(input, why)) continue;

    Counterexample<Input> cex{std::move(input), seed, replay ? -1 : i, 0,
                              why.str()};
    if (prop.shrink) {
      bool shrunk = true;
      while (shrunk && cex.shrink_steps < cfg.max_shrink_steps) {
        shrunk = false;
        for (Input& candidate : prop.shrink(cex.input)) {
          std::ostringstream cand_why;
          if (!prop.holds(candidate, cand_why)) {
            cex.input = std::move(candidate);
            cex.why = cand_why.str();
            ++cex.shrink_steps;
            shrunk = true;
            break;
          }
        }
      }
    }
    return cex;
  }
  return std::nullopt;
}

/// Runs the property under GTest: all cases pass silently; a falsified case
/// produces one non-fatal failure carrying the seed, the rerun recipe, and
/// the shrunk counterexample.
template <typename Input>
void check(const Property<Input>& prop, const Config& cfg = {}) {
  const auto cex = find_counterexample(prop, cfg);
  if (!cex) return;
  std::ostringstream msg;
  msg << "property \"" << prop.name << "\" falsified";
  if (cex->case_index >= 0)
    msg << " (case " << cex->case_index << " of " << cfg.cases << ")";
  else
    msg << " (replayed from COOPHET_PROP_SEED)";
  msg << "\n  case seed: " << cex->seed << "\n  rerun:     COOPHET_PROP_SEED="
      << cex->seed << " <test binary> --gtest_filter=<this test>";
  if (cex->shrink_steps > 0)
    msg << "\n  shrunk:    " << cex->shrink_steps
        << " step(s); seed regenerates the ORIGINAL (unshrunk) input";
  if (prop.show) {
    msg << "\n  input:     ";
    prop.show(cex->input, msg);
  }
  if (!cex->why.empty()) msg << "\n  because:   " << cex->why;
  ADD_FAILURE() << msg.str();
}

}  // namespace coop::prop
