#pragma once

#include <cstddef>
#include <vector>

#include "coop/devmodel/calibration.hpp"
#include "coop/fault/fault_plan.hpp"
#include "coop/obs/log/flight_recorder.hpp"
#include "coop/obs/trace.hpp"

/// \file fault_injector.hpp
/// Run-time side of the fault subsystem.
///
/// A `FaultInjector` is owned by one `run_timed` call. Rank processes poll it
/// at well-defined detection points (compute start, per-launch, halo send) and
/// it answers from the immutable `FaultPlan`, tracking which events have been
/// consumed and accumulating `ResilienceStats`. All queries are keyed by the
/// caller's simulated `now`; the injector itself holds no clock, so replaying
/// the same plan through the same DES schedule consumes events identically.

namespace coop::fault {

/// Recovery-policy knobs, defaults from devmodel calibration.
struct RecoveryConfig {
  /// Kernel-launch attempts before a transient failure escalates to a
  /// permanent GPU death (first try + retries).
  int max_launch_attempts = 4;
  double backoff_base_s = devmodel::calib::kLaunchRetryBackoffBase;

  /// Halo watchdog: silence budget per receive and retransmits granted
  /// before the sender is declared dead.
  double watchdog_timeout_s = devmodel::calib::kHaloWatchdogTimeout;
  int max_retransmits = 3;

  double mps_restart_s = devmodel::calib::kMpsRestartTime;

  /// Checkpoint every N iterations (0 disables checkpointing: a GPU death
  /// then replays only the aborted iteration, not from a checkpoint).
  int checkpoint_interval = 0;
  double checkpoint_bytes_per_zone = devmodel::calib::kCheckpointBytesPerZone;
  double checkpoint_bandwidth_bytes_per_s =
      devmodel::calib::kCheckpointBandwidth;

  /// Pool-exhaustion fallback: scratch staged through host memory.
  double scratch_bytes_per_zone = devmodel::calib::kScratchBytesPerZone;
  double pool_fallback_bandwidth_bytes_per_s =
      devmodel::calib::kPoolFallbackBandwidth;

  friend bool operator==(const RecoveryConfig&,
                         const RecoveryConfig&) = default;
};

/// Resilience counters reported in `TimedResult`.
struct ResilienceStats {
  int faults_injected = 0;   ///< plan events actually consumed by the run
  int faults_recovered = 0;  ///< consumed events the run survived

  int gpu_deaths = 0;
  int policy_flips = 0;  ///< CUDA -> sequential-CPU dispatch flips
  int launch_retries = 0;
  int mps_restarts = 0;
  int halo_retransmits = 0;
  int neighbors_declared_dead = 0;
  int pool_exhaustions = 0;
  int checkpoints_taken = 0;
  int rollbacks = 0;
  int replayed_iterations = 0;

  double retry_time = 0.0;       ///< simulated seconds spent in backoff waits
  double checkpoint_time = 0.0;  ///< simulated seconds writing checkpoints
  double rework_time = 0.0;      ///< abort -> replayed-iteration-complete span

  double first_gpu_death_time = -1.0;
  double rebalance_complete_time = -1.0;

  /// Span from the first GPU death until the post-death decomposition is in
  /// place (negative when no death happened or rebalance never finished).
  [[nodiscard]] double time_to_rebalance() const noexcept {
    if (first_gpu_death_time < 0.0 || rebalance_complete_time < 0.0)
      return -1.0;
    return rebalance_complete_time - first_gpu_death_time;
  }

  friend bool operator==(const ResilienceStats&,
                         const ResilienceStats&) = default;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, RecoveryConfig recovery);

  // -- queries (rank processes call these at detection points) --------------

  /// True once (node, gpu) has a due, consumed kGpuDeath event.
  [[nodiscard]] bool gpu_dead(int node, int gpu, double now) const;

  /// Consumes a due kGpuDeath for (node, gpu). Returns true exactly once per
  /// event; the driving rank that sees `true` owns the recovery.
  bool take_gpu_death(int node, int gpu, double now);

  /// Escalation path: a transient launch failure that exceeded
  /// max_launch_attempts becomes a permanent death of (node, gpu) at `now`.
  void kill_gpu(int node, int gpu, double now);

  /// Number of consecutive launch failures due for `rank` (sum of due
  /// kTransientLaunch counts); consumes those events.
  int take_transient_failures(int rank, double now);

  /// Compute-time multiplier from every kSlowdown window covering `now`
  /// (>= 1; factors of overlapping windows multiply).
  [[nodiscard]] double slowdown_factor(int rank, double now) const;

  /// Like `slowdown_factor`, but additionally counts each covering window as
  /// injected the first time it is observed. Call once per compute phase.
  double take_slowdown_factor(int rank, double now);

  /// Consumes a due kMpsCrash on `node`. Each crash is returned to exactly
  /// one caller (the first rank on the node to poll after the crash time).
  bool take_mps_crash(int node, double now);

  /// Number of sends from `rank` the network will drop (due kHaloDrop
  /// counts); consumes those events.
  int take_halo_drops(int rank, double now);

  /// Consumes a due kPoolExhaustion targeting `rank`.
  bool take_pool_exhaustion(int rank, double now);

  /// Stall charged when the scratch pool is exhausted: `zones` worth of
  /// per-kernel scratch staged through the fallback path. Exercises a real
  /// `memory::DevicePool` sized below demand so the detectable-failure path
  /// (try_allocate -> nullptr) is what triggers the fallback.
  [[nodiscard]] double pool_exhaustion_stall(long zones) const;

  // -- bookkeeping ----------------------------------------------------------

  [[nodiscard]] ResilienceStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ResilienceStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const RecoveryConfig& recovery() const noexcept {
    return recovery_;
  }

  /// Mirrors every consumed fault into `tracer` as a global-scope instant
  /// event ("fault:<kind>", cat "fault") at the event's scheduled time, with
  /// the targeting fields as args. Pure observation — attaching a tracer
  /// never changes which events are consumed or when.
  void bind_tracer(obs::Tracer* tracer, int pid = 0) noexcept {
    tracer_ = tracer;
    trace_pid_ = pid;
  }

  /// Mirrors every consumed fault into the flight recorder as an
  /// "inject:<kind>" event (component kFault, severity kWarn) at the event's
  /// scheduled time, with the targeting fields as key=values — the causal
  /// link a crash dump needs between an injection and the failure it caused.
  /// Pure observation, same contract as `bind_tracer`.
  void bind_flight(obs::log::FlightWriter* flight) noexcept { flight_ = flight; }

 private:
  struct Tracked {
    FaultEvent event;
    bool consumed = false;
  };

  /// Marks tracked event `i` consumed and counts it injected.
  void consume(Tracked& t);

  std::vector<Tracked> events_;
  RecoveryConfig recovery_;
  ResilienceStats stats_;
  obs::Tracer* tracer_ = nullptr;  ///< not owned; may be nullptr
  int trace_pid_ = 0;
  obs::log::FlightWriter* flight_ = nullptr;  ///< not owned; may be nullptr
};

}  // namespace coop::fault
