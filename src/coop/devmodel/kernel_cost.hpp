#pragma once

#include <cstddef>

#include "coop/devmodel/specs.hpp"

/// \file kernel_cost.hpp
/// Per-kernel cost model for CPU cores and GPUs.
///
/// A kernel is summarized by its per-zone arithmetic and memory traffic;
/// execution time follows a roofline: max(flop time, byte time) divided by
/// the device's efficiency at this kernel shape.

namespace coop::devmodel {

/// Per-zone resource demands of one kernel.
struct KernelWork {
  double flops_per_zone = 0.0;
  double bytes_per_zone = 0.0;
};

/// GPU occupancy efficiency: fraction of peak utilization a single kernel of
/// `zones` iterations achieves (saturating, eta = z / (z + z_half)).
[[nodiscard]] double occupancy_efficiency(const GpuSpec& gpu, double zones);

/// GPU memory-coalescing efficiency as a function of the innermost loop
/// extent (short rows waste partial warps / vector loads).
[[nodiscard]] double coalescing_efficiency(const GpuSpec& gpu,
                                           double innermost_extent);

/// Roofline execution time at *full* device utilization (the work content
/// of a kernel in device-seconds); building block for the queue model.
[[nodiscard]] double roofline_seconds(const GpuSpec& gpu, KernelWork work,
                                      double zones);

/// Single-stream GPU kernel execution time (excluding launch overhead):
/// roofline time divided by occupancy * coalescing efficiency.
[[nodiscard]] double gpu_kernel_exec_time(const GpuSpec& gpu, KernelWork work,
                                          double zones,
                                          double innermost_extent);

/// Execution time for one of `resident` equal kernels sharing a GPU through
/// MPS. All resident kernels run concurrently; aggregate utilization is
/// min(1, sum of per-stream efficiencies) minus the MPS sharing tax, so small
/// kernels overlap to recover utilization while large kernels only pay the
/// tax. Returns the time until *this* rank's kernel completes.
[[nodiscard]] double gpu_kernel_exec_time_mps(const GpuSpec& gpu,
                                              KernelWork work, double zones,
                                              double innermost_extent,
                                              int resident);

/// Kernel launch overhead for the given mode.
[[nodiscard]] double gpu_launch_overhead(const GpuSpec& gpu, bool mps);

/// CPU-core kernel execution time. `dispatch_penalty` >= 1 models the nvcc
/// std::function-wrapped-lambda issue (paper 5.1); 1.0 means a healthy
/// compiler.
[[nodiscard]] double cpu_kernel_exec_time(const CpuSpec& cpu, KernelWork work,
                                          double zones,
                                          double dispatch_penalty);

/// Host unified-memory pump: extra per-step stall time charged to the
/// GPU-driving ranks when the zones resident in UM across the node exceed
/// what the active host cores can pump (the paper's Fig. 12 threshold).
/// Returns the *per-GPU-rank* extra seconds per timestep.
[[nodiscard]] double um_spill_time_per_gpu_rank(const UmSpec& um,
                                                double total_um_zones,
                                                int active_cores,
                                                int gpu_ranks);

}  // namespace coop::devmodel
