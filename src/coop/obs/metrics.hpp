#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

/// \file metrics.hpp
/// Label-aware metrics registry for the simulation stack.
///
/// The paper's method is measurement-driven ("we measured the respective
/// contributions of CPU vs GPU and adjusted the split"); this registry is the
/// one place those measurements accumulate. Three metric kinds:
///
///  * Counter   — monotonically increasing total (halo bytes, faults seen)
///  * Gauge     — last-set value (cpu_fraction, pool bytes in use)
///  * Histogram — fixed upper-bound buckets + sum/count (iteration seconds)
///
/// Every metric is keyed by (name, labels); labels are sorted key=value
/// pairs (rank, device, kernel, ...) so the same name can fan out per
/// device kind without string mangling. Cell references returned by the
/// registry stay valid for the registry's lifetime — hot paths look a cell
/// up once and hit it directly. `snapshot(sim_time)` freezes everything at a
/// simulated instant; `write_json` emits the snapshot machine-readably.

namespace coop::obs {

/// Sorted, deduplicated label set. Ordering is part of the metric key, so
/// {rank=3, device=gpu} and {device=gpu, rank=3} name the same cell.
class Labels {
 public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv) {
    for (auto& p : kv) set(p.first, p.second);
  }

  /// Sets (or overwrites) one label; returns *this for chaining.
  Labels& set(const std::string& key, const std::string& value);

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  items() const noexcept {
    return kv_;
  }
  [[nodiscard]] bool empty() const noexcept { return kv_.empty(); }

  /// Prometheus-style rendering: {device="gpu",rank="3"} ("" when empty).
  [[nodiscard]] std::string render() const;

  friend bool operator==(const Labels&, const Labels&) = default;
  friend auto operator<=>(const Labels&, const Labels&) = default;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;  ///< sorted by key
};

class MetricsRegistry {
 public:
  class Counter {
   public:
    void add(double delta = 1.0) noexcept { value_ += delta; }
    [[nodiscard]] double value() const noexcept { return value_; }

   private:
    double value_ = 0.0;
  };

  class Gauge {
   public:
    void set(double v) noexcept { value_ = v; }
    /// Keeps the running maximum (high-water gauges).
    void set_max(double v) noexcept {
      if (v > value_) value_ = v;
    }
    [[nodiscard]] double value() const noexcept { return value_; }

   private:
    double value_ = 0.0;
  };

  /// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
  /// first N buckets; one implicit overflow bucket catches the rest.
  class Histogram {
   public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v) noexcept;

    [[nodiscard]] const std::vector<double>& bounds() const noexcept {
      return bounds_;
    }
    /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
      return counts_;
    }
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double mean() const noexcept {
      return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

   private:
    std::vector<double> bounds_;  ///< sorted ascending
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
  };

  /// Finds or creates the cell. A name registered as one kind cannot be
  /// reused as another (throws std::invalid_argument), and a histogram
  /// re-registered with different non-empty bounds throws too — silent
  /// aliasing is how dashboards end up lying.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  [[nodiscard]] std::size_t size() const noexcept;
  void clear();

  /// One frozen metric value (histograms carry their buckets).
  struct Sample {
    std::string name;
    Labels labels;
    std::string kind;  ///< "counter" | "gauge" | "histogram"
    double value = 0.0;  ///< counter/gauge value; histogram sum
    std::uint64_t count = 0;                 ///< histogram only
    std::vector<double> bucket_bounds;       ///< histogram only
    std::vector<std::uint64_t> bucket_counts;  ///< histogram only
  };

  struct Snapshot {
    double sim_time = 0.0;
    std::vector<Sample> samples;  ///< deterministic (name, labels) order
  };

  /// Freezes every cell at simulated time `sim_time`.
  [[nodiscard]] Snapshot snapshot(double sim_time) const;

  /// Delta snapshot for windowed telemetry: counters and histograms report
  /// the change since `*prev` (per-bucket counts, count, and sum for
  /// histograms); gauges report their current value — an instantaneous
  /// reading has no meaningful delta. A sample absent from `*prev` reports
  /// its full value. `*prev` is then replaced with the current cumulative
  /// snapshot, so calling this in a loop yields consecutive,
  /// non-overlapping deltas without the caller re-diffing by hand. A null
  /// or default-constructed `prev` yields the full snapshot.
  [[nodiscard]] Snapshot snapshot_since(Snapshot* prev, double sim_time) const;

  /// Writes `snapshot(sim_time)` as one JSON object
  /// ({"schema":"coophet.metrics","schema_version":1,...}).
  void write_json(std::ostream& os, double sim_time) const;

  /// Human-readable one-metric-per-line dump (debugging aid).
  void write_table(std::ostream& os) const;

 private:
  using Key = std::pair<std::string, Labels>;

  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(const std::string& name, Kind kind);

  std::map<std::string, Kind> kinds_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace coop::obs
