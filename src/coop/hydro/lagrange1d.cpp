#include "coop/hydro/lagrange1d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace coop::hydro {

std::vector<double> Lagrange1D::viscosity() const {
  const long n = zones();
  std::vector<double> q(static_cast<std::size_t>(n), 0.0);
  for (long j = 0; j < n; ++j) {
    const double du = u_[static_cast<std::size_t>(j + 1)] -
                      u_[static_cast<std::size_t>(j)];
    if (du < 0.0) {  // compression only
      const double rho = rho_[static_cast<std::size_t>(j)];
      const double c = cfg_.eos.sound_speed(
          rho, cfg_.eos.pressure(rho, eint_[static_cast<std::size_t>(j)]));
      q[static_cast<std::size_t>(j)] =
          rho * (cfg_.q_quad * cfg_.q_quad * du * du + cfg_.q_lin * c * -du);
    }
  }
  return q;
}

double Lagrange1D::stable_dt() const {
  const long n = zones();
  double dt = std::numeric_limits<double>::max();
  for (long j = 0; j < n; ++j) {
    const double dx = x_[static_cast<std::size_t>(j + 1)] -
                      x_[static_cast<std::size_t>(j)];
    const double rho = rho_[static_cast<std::size_t>(j)];
    const double c = cfg_.eos.sound_speed(
        rho, cfg_.eos.pressure(rho, eint_[static_cast<std::size_t>(j)]));
    const double du = std::abs(u_[static_cast<std::size_t>(j + 1)] -
                               u_[static_cast<std::size_t>(j)]);
    dt = std::min(dt, dx / (c + 4.0 * cfg_.q_quad * du + 1e-30));
  }
  return cfg_.cfl * dt;
}

void Lagrange1D::lagrange_step(double dt) {
  const long n = zones();
  const std::vector<double> q = viscosity();
  std::vector<double> old_vol(static_cast<std::size_t>(n));
  for (long j = 0; j < n; ++j)
    old_vol[static_cast<std::size_t>(j)] =
        x_[static_cast<std::size_t>(j + 1)] - x_[static_cast<std::size_t>(j)];

  // Node accelerations from the pressure + viscosity gradient; rigid walls.
  std::vector<double> ptot(static_cast<std::size_t>(n));
  for (long j = 0; j < n; ++j)
    ptot[static_cast<std::size_t>(j)] =
        cfg_.eos.pressure(rho_[static_cast<std::size_t>(j)],
                          eint_[static_cast<std::size_t>(j)]) +
        q[static_cast<std::size_t>(j)];
  for (long i = 1; i < n; ++i) {
    const double m_node = 0.5 * (mass_[static_cast<std::size_t>(i - 1)] +
                                 mass_[static_cast<std::size_t>(i)]);
    const double a = -(ptot[static_cast<std::size_t>(i)] -
                       ptot[static_cast<std::size_t>(i - 1)]) /
                     m_node;
    u_[static_cast<std::size_t>(i)] += dt * a;
  }
  u_.front() = 0.0;
  u_.back() = 0.0;

  // Move the mesh with the (updated) node velocities.
  for (long i = 0; i <= n; ++i)
    x_[static_cast<std::size_t>(i)] += dt * u_[static_cast<std::size_t>(i)];
  for (long i = 0; i < n; ++i) {
    if (x_[static_cast<std::size_t>(i + 1)] <= x_[static_cast<std::size_t>(i)])
      throw std::runtime_error("Lagrange1D: mesh tangled (dt too large)");
  }

  // Compatible internal-energy update: de = -(p+q) dV / m, then new density.
  for (long j = 0; j < n; ++j) {
    const double new_vol = x_[static_cast<std::size_t>(j + 1)] -
                           x_[static_cast<std::size_t>(j)];
    eint_[static_cast<std::size_t>(j)] -=
        ptot[static_cast<std::size_t>(j)] *
        (new_vol - old_vol[static_cast<std::size_t>(j)]) /
        mass_[static_cast<std::size_t>(j)];
    eint_[static_cast<std::size_t>(j)] =
        std::max(eint_[static_cast<std::size_t>(j)], 1e-12);
    rho_[static_cast<std::size_t>(j)] =
        mass_[static_cast<std::size_t>(j)] / new_vol;
  }
}

void Lagrange1D::remap_to_reference() {
  const long n = zones();
  // Conserved totals per moved zone (piecewise-constant densities).
  std::vector<double> mom_density(static_cast<std::size_t>(n));
  std::vector<double> ene_density(static_cast<std::size_t>(n));
  std::vector<double> rho_density(static_cast<std::size_t>(n));
  for (long j = 0; j < n; ++j) {
    const double vol = x_[static_cast<std::size_t>(j + 1)] -
                       x_[static_cast<std::size_t>(j)];
    const double uc = 0.5 * (u_[static_cast<std::size_t>(j)] +
                             u_[static_cast<std::size_t>(j + 1)]);
    rho_density[static_cast<std::size_t>(j)] =
        mass_[static_cast<std::size_t>(j)] / vol;
    mom_density[static_cast<std::size_t>(j)] =
        rho_density[static_cast<std::size_t>(j)] * uc;
    ene_density[static_cast<std::size_t>(j)] =
        rho_density[static_cast<std::size_t>(j)] *
        (eint_[static_cast<std::size_t>(j)] + 0.5 * uc * uc);
  }

  // Overlap integration onto the reference mesh (first-order donor cell).
  auto integrate = [&](const std::vector<double>& density, long ref_zone) {
    const double a = ref_x_[static_cast<std::size_t>(ref_zone)];
    const double b = ref_x_[static_cast<std::size_t>(ref_zone + 1)];
    double total = 0;
    for (long j = 0; j < n; ++j) {
      const double lo = std::max(a, x_[static_cast<std::size_t>(j)]);
      const double hi = std::min(b, x_[static_cast<std::size_t>(j + 1)]);
      if (hi > lo) total += density[static_cast<std::size_t>(j)] * (hi - lo);
    }
    return total;
  };

  std::vector<double> uc_new(static_cast<std::size_t>(n));
  for (long j = 0; j < n; ++j) {
    const double vol = ref_x_[static_cast<std::size_t>(j + 1)] -
                       ref_x_[static_cast<std::size_t>(j)];
    const double m = integrate(rho_density, j);
    const double mom = integrate(mom_density, j);
    const double ene = integrate(ene_density, j);
    mass_[static_cast<std::size_t>(j)] = m;
    rho_[static_cast<std::size_t>(j)] = m / vol;
    const double uc = mom / m;
    uc_new[static_cast<std::size_t>(j)] = uc;
    eint_[static_cast<std::size_t>(j)] =
        std::max(ene / m - 0.5 * uc * uc, 1e-12);
  }
  // Rebuild node velocities from the remapped zone-centered momentum.
  for (long i = 1; i < n; ++i)
    u_[static_cast<std::size_t>(i)] =
        0.5 * (uc_new[static_cast<std::size_t>(i - 1)] +
               uc_new[static_cast<std::size_t>(i)]);
  u_.front() = 0.0;
  u_.back() = 0.0;
  x_ = ref_x_;
}

void Lagrange1D::step(double dt) {
  lagrange_step(dt);
  if (cfg_.remap) remap_to_reference();
}

double Lagrange1D::total_mass() const {
  double m = 0;
  for (double mj : mass_) m += mj;
  return m;
}

double Lagrange1D::total_momentum() const {
  double p = 0;
  for (long j = 0; j < zones(); ++j)
    p += mass_[static_cast<std::size_t>(j)] * 0.5 *
         (u_[static_cast<std::size_t>(j)] + u_[static_cast<std::size_t>(j + 1)]);
  return p;
}

double Lagrange1D::total_energy() const {
  double e = 0;
  for (long j = 0; j < zones(); ++j) {
    const double uc = 0.5 * (u_[static_cast<std::size_t>(j)] +
                             u_[static_cast<std::size_t>(j + 1)]);
    e += mass_[static_cast<std::size_t>(j)] *
         (eint_[static_cast<std::size_t>(j)] + 0.5 * uc * uc);
  }
  return e;
}

}  // namespace coop::hydro
