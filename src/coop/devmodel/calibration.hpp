#pragma once

/// \file calibration.hpp
/// Calibration constants for the RZHasGPU node model, with derivations.
///
/// The paper (ICPP'18, Pearce) evaluates on one node of RZHasGPU:
/// 2x 8-core Intel Xeon E5-2667 v3 (3.2 GHz), 4x NVIDIA Tesla K80,
/// 128 GB host memory, 12 GB GPU global memory per GPU. Sedov runtimes on
/// 5e6..5e7-zone problems land in the 20..80 s band. We are not matching the
/// authors' testbed cycle-for-cycle; these constants are chosen so that each
/// first-order effect the paper reports appears at the right place and with
/// roughly the right magnitude:
///
///  * Default-mode (1 MPI/GPU) runtime is approximately linear in zones with
///    ~40e6 zones -> ~70..85 s at 100 timesteps. The ARES hydro kernels are
///    bandwidth-bound: with ~80 kernels touching ~160 B/zone each
///    (~12.8 kB/zone/step) and ~150 GB/s sustained K80 bandwidth, a GPU
///    processes ~1.2e7 zones/s.
///  * The "memory threshold" (paper Fig. 12) appears when zones/rank exceeds
///    ~9e6 (37e6 total over 4 ranks). The paper speculates the cause is host
///    memory bandwidth: modes using more cores "add additional capacity".
///    We model a unified-memory pump capacity proportional to the number of
///    active host cores; traffic beyond it spills at PCIe-like speed.
///  * MPS gains when the innermost (x) extent is small (paper Figs. 13/15/17)
///    and loses slightly when kernels already fill the GPU (Figs. 16/18):
///    coalescing efficiency rises with x; concurrent MPS kernels can overlap
///    to recover lost utilization, but pay a context-sharing tax and higher
///    launch overhead.
///  * The nvcc __host__ __device__-lambda std::function dispatch bug makes
///    CPU-side RAJA loops 100-300x slower in microbenchmarks (paper 5.1).
///    Amortized over a full hydro step (not every kernel is equally hit) the
///    effective slowdown we model is ~8x, which reproduces the paper's
///    statement that only 1-2.5% of zones can be given to 12 CPU cores
///    (balanced share f* solves f*/R_cpu_bugged = (1-f*)/R_gpu_total).

namespace coop::devmodel::calib {

// --- GPU (Tesla K80, one logical GPU = one GK210) -------------------------
inline constexpr double kGpuPeakBandwidth = 150.0e9;  ///< sustained B/s
inline constexpr double kGpuPeakFlops = 935.0e9;      ///< sustained DP flop/s
inline constexpr double kGpuMemoryBytes = 12.0e9;     ///< global memory
inline constexpr double kKernelLaunchOverhead = 10.0e-6;  ///< s per launch
/// Occupancy half-saturation: zones at which a kernel reaches 50% of peak
/// utilization (a K80 needs ~1e5 resident threads for full occupancy).
inline constexpr double kOccupancyHalfZones = 3.0e5;
/// Coalescing half-saturation: innermost-loop extent at which memory
/// efficiency reaches 50% (warp = 32 lanes; partial warps waste bandwidth).
inline constexpr double kCoalesceHalfExtent = 16.0;
/// MPS: launch overhead multiplier (extra hop through the MPS server).
inline constexpr double kMpsLaunchMultiplier = 2.5;
/// MPS: throughput tax from context sharing / scheduler time-slicing.
inline constexpr double kMpsThroughputTax = 0.07;
/// MPS: maximum concurrently resident client kernels per GPU.
inline constexpr int kMpsMaxResident = 4;

// --- CPU (2x Xeon E5-2667 v3) ---------------------------------------------
inline constexpr int kCpuSockets = 2;
inline constexpr int kCpuCoresPerSocket = 8;
inline constexpr double kCpuCoreFlops = 51.2e9;     ///< 3.2 GHz * 16 DP/cyc
inline constexpr double kCpuCoreBandwidth = 8.5e9;  ///< per-core sustained B/s
inline constexpr double kHostMemoryBytes = 128.0e9;
/// Effective per-step CPU slowdown from the nvcc std::function-wrapped
/// lambda issue (paper 5.1 reports 100-300x on affected loops; amortized
/// across the kernel mix we model 5.5x, which puts the balanced CPU share at
/// ~3% of the node, bracketing the paper's 1-2.5% and making the one-plane
/// carve floor at y=360 (3.33%) just feasible, as in the paper's Fig. 16).
inline constexpr double kCompilerBugFactor = 5.5;

// --- Unified-memory pump (the Fig. 12 memory threshold) --------------------
/// Zones of UM traffic one active host core can pump per timestep without
/// stalling the GPU. Default mode activates 4 cores -> node capacity
/// 4 * 9e6 = 36e6 zones: the paper's observed threshold. MPS/Heterogeneous
/// activate all 16 cores -> 144e6 zones, beyond the sweep range.
inline constexpr double kUmPumpZonesPerCore = 9.0e6;
/// Bytes per excess zone that must migrate over PCIe once the pump
/// saturates, and the PCIe-like spill bandwidth. 1300 B / 16 GB/s adds ~90% to the
/// per-total-zone cost slope past the knee, matching the Fig. 12/18 curves
/// (up to ~18% total-runtime penalty at the top of the sweep range).
inline constexpr double kUmSpillBytesPerZone = 1300.0;
inline constexpr double kUmSpillBandwidth = 16.0e9;

// --- Interconnect / halo exchange ------------------------------------------
inline constexpr double kMsgLatency = 5.0e-6;          ///< s per message
inline constexpr double kMsgBandwidth = 6.0e9;         ///< B/s staged via host
inline constexpr double kAllreduceLatencyPerHop = 3.0e-6;

// --- Fault model / recovery costs ------------------------------------------
/// First retry wait after a failed kernel launch; doubles per attempt.
inline constexpr double kLaunchRetryBackoffBase = 50.0e-6;
/// Halo-receive watchdog: silence budget before a retransmit is requested.
inline constexpr double kHaloWatchdogTimeout = 500.0e-6;
/// Restarting a crashed MPS control daemon (fork + device re-init).
inline constexpr double kMpsRestartTime = 1.0e-3;
/// Checkpoint traffic: field state written per zone, at host-memory speed.
inline constexpr double kCheckpointBytesPerZone = 128.0;
inline constexpr double kCheckpointBandwidth = 8.0e9;
/// Per-kernel scratch demand used by the pool-exhaustion fault path.
inline constexpr double kScratchBytesPerZone = 256.0;
/// Fallback path when the device pool is exhausted: per-zone scratch is
/// staged through host memory at PCIe-like speed instead of pool reuse.
inline constexpr double kPoolFallbackBandwidth = 16.0e9;

// --- Workload (ARES Sedov proxy) --------------------------------------------
/// The paper's Sedov problem exercises ~80 kernels. Aggregate per-zone
/// per-step traffic ~12.8 kB and ~2 kflop; per-kernel averages:
inline constexpr int kAresKernelCount = 80;
inline constexpr double kBytesPerZonePerKernel = 160.0;
inline constexpr double kFlopsPerZonePerKernel = 25.0;
/// Ghost/halo exchange: bytes per face zone per step (a few fields wide).
inline constexpr double kHaloBytesPerFaceZone = 64.0;
/// Timesteps used by the paper-scale runs (runtimes of 20-80 s).
inline constexpr int kPaperTimesteps = 100;

}  // namespace coop::devmodel::calib
