#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "coop/memory/memory_manager.hpp"
#include "coop/mesh/array3d.hpp"
#include "coop/mesh/box.hpp"
#include "coop/mesh/field_block.hpp"

/// \file state.hpp
/// Conserved-variable state for the compressible Euler equations on one
/// rank's subdomain, plus primitive scratch fields.
///
/// Placement follows the paper's Fig. 8: conserved fields are *mesh data*
/// (unified memory on GPU-driving ranks), primitive scratch is *temporary*
/// (device pool on GPU-driving ranks, reallocated per step in ARES; we keep
/// them alive but route them through the same pool).
///
/// Storage is structure-of-arrays: ONE pooled `mesh::FieldBlock` per
/// allocation context holds all field planes at a fixed stride (conserved
/// fields in the mesh-data block, primitive scratch in the temporary block).
/// The named members (`rho`, `mx`, ...) are non-owning `Array3D` views into
/// the blocks, so halo exchange, boundary fills, and diagnostics keep the
/// ghost-aware (i, j, k) indexing unchanged while the hot kernels consume
/// the raw contiguous planes (`mesh_planes()`, hal3d-style flat signatures).

namespace coop::hydro {

/// Number of core conserved fields: rho, mom_x/y/z, total energy.
inline constexpr int kNumConserved = 5;

/// Plane order inside the mesh-data block.
enum MeshPlane : int {
  kRho = 0,
  kMx = 1,
  kMy = 2,
  kMz = 3,
  kEner = 4,
  kScal = 5,  ///< present only when the mixing package is enabled
};

struct HydroState {
  mesh::Box owned{};
  long ghosts = 1;

  // Pooled SoA storage (see file comment). `mesh_block` holds the conserved
  // fields (+ scalar when enabled) in MeshPlane order; `temp_block` holds
  // pressure then sound speed.
  mesh::FieldBlock mesh_block;
  mesh::FieldBlock temp_block;

  // Conserved (mesh data): density, momentum density, total energy density.
  mesh::Array3D<double> rho, mx, my, mz, ener;
  // Primitive scratch (temporary data): pressure and sound speed.
  mesh::Array3D<double> prs, snd;
  // Optional packages: conserved scalar density rho*phi (mixing package).
  mesh::Array3D<double> scal;  ///< valid() only when the package is enabled

  HydroState(memory::MemoryManager& mm, const mesh::Box& owned_box,
             long ghost_width = 1, bool with_scalar = false)
      : owned(owned_box), ghosts(ghost_width),
        mesh_block(mm, memory::AllocationContext::kMeshData, owned_box,
                   ghost_width, with_scalar ? kNumConserved + 1
                                            : kNumConserved),
        temp_block(mm, memory::AllocationContext::kTemporary, owned_box,
                   ghost_width, 2),
        rho(mesh_block.view(kRho)), mx(mesh_block.view(kMx)),
        my(mesh_block.view(kMy)), mz(mesh_block.view(kMz)),
        ener(mesh_block.view(kEner)), prs(temp_block.view(0)),
        snd(temp_block.view(1)) {
    if (with_scalar) scal = mesh_block.view(kScal);
    exchanged_[0] = &rho;
    exchanged_[1] = &mx;
    exchanged_[2] = &my;
    exchanged_[3] = &mz;
    exchanged_[4] = &ener;
    n_exchanged_ = kNumConserved;
    if (with_scalar) exchanged_[n_exchanged_++] = &scal;
  }

  // The exchange list points at the members above; pin the object.
  HydroState(const HydroState&) = delete;
  HydroState& operator=(const HydroState&) = delete;

  /// The core conserved fields in exchange order (halo packing).
  [[nodiscard]] std::array<mesh::Array3D<double>*, kNumConserved> conserved() {
    return {&rho, &mx, &my, &mz, &ener};
  }

  /// Every field that must participate in halo exchange (core conserved
  /// plus enabled package fields), in a stable order usable as message tags.
  /// The list is fixed at construction — this sits on the per-step halo
  /// path, so it must not allocate.
  [[nodiscard]] std::span<mesh::Array3D<double>* const> exchanged_fields()
      const noexcept {
    return {exchanged_.data(), n_exchanged_};
  }

 private:
  std::array<mesh::Array3D<double>*, kNumConserved + 1> exchanged_{};
  std::size_t n_exchanged_ = 0;
};

}  // namespace coop::hydro
