#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

/// \file admission.hpp
/// Token-bucket admission control + bounded in-flight queue — the front
/// door of the scenario service (ROADMAP: "long-running sweep server with
/// caching and admission control").
///
/// A sweep request is `offer`ed with a priority; the controller either
/// admits it (an in-flight slot is free and the rate bucket has a token),
/// queues it (slots full, queue not), or sheds it (rate exhausted, or the
/// queue is full). `complete` releases a slot and promotes the
/// highest-priority queued request. Load-shedding at the door is what keeps
/// an overloaded sweep server answering *some* requests predictably instead
/// of thrashing on all of them.
///
/// Determinism: the controller never reads a clock — callers pass `now`
/// (seconds, any monotonic origin) into `offer`/`complete`. Tests and the
/// simulation drive it with simulated time; a daemon passes wall time.
/// Thread-safe; all statistics are monotonic counters suitable for
/// `obs::MetricsRegistry` export via `publish_metrics`.

namespace coop::obs {
class MetricsRegistry;
}  // namespace coop::obs

namespace coop::service {

struct AdmissionConfig {
  double rate_per_s = 10.0;  ///< token refill rate (requests/second)
  double burst = 20.0;       ///< bucket capacity (max tokens banked)
  int max_in_flight = 4;     ///< concurrently admitted requests
  int max_queue = 16;        ///< waiting requests before shedding

  void validate() const;  ///< throws kConfig on nonsensical values
};

enum class AdmissionDecision {
  kAdmitted,       ///< runs now (slot + token consumed)
  kQueued,         ///< waiting for a slot (token consumed)
  kShedRate,       ///< rejected: token bucket empty
  kShedQueueFull,  ///< rejected: queue at capacity (no token consumed)
};

[[nodiscard]] const char* to_string(AdmissionDecision d) noexcept;

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;  ///< immediate admissions
  std::uint64_t queued = 0;
  std::uint64_t promoted = 0;  ///< queued -> running on a completion
  std::uint64_t shed_rate = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t completed = 0;
  int peak_in_flight = 0;
  int peak_queue_depth = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Offers request `id` with `priority` (higher runs first among queued
  /// requests; FIFO within a priority) at time `now`.
  AdmissionDecision offer(std::uint64_t id, int priority, double now);

  /// Marks one admitted request finished at `now`; promotes the best
  /// queued request into the freed slot when one is waiting. Returns the
  /// promoted id, or -1 when the queue was empty.
  long long complete(double now);

  [[nodiscard]] int in_flight() const;
  [[nodiscard]] int queue_depth() const;
  [[nodiscard]] AdmissionStats stats() const;

  /// Snapshots the counters into `admission.*` metrics.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  struct Waiting {
    std::uint64_t id;
    int priority;
  };

  void refill_locked(double now);
  /// Highest priority first, FIFO within equal priority.
  [[nodiscard]] std::size_t best_waiting_locked() const;

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  double tokens_;
  double last_refill_ = 0.0;
  bool refilled_once_ = false;
  int in_flight_ = 0;
  std::deque<Waiting> queue_;
  AdmissionStats stats_;
};

}  // namespace coop::service
