#include <gtest/gtest.h>

#include <cmath>

#include "coop/hydro/riemann.hpp"
#include "coop/hydro/solver.hpp"

namespace hy = coop::hydro;
namespace mem = coop::memory;
using coop::mesh::Box;

namespace {

// --- Exact Riemann solver against published Sod values ----------------------

TEST(RiemannExact, SodStarStateMatchesToro) {
  // Toro, Table 4.1 test 1: p* = 0.30313, u* = 0.92745.
  hy::RiemannProblem rp({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  EXPECT_NEAR(rp.star_pressure(), 0.30313, 2e-4);
  EXPECT_NEAR(rp.star_velocity(), 0.92745, 2e-4);
}

TEST(RiemannExact, SymmetricProblemHasZeroContactVelocity) {
  hy::RiemannProblem rp({1.0, -1.0, 1.0}, {1.0, 1.0, 1.0});
  EXPECT_NEAR(rp.star_velocity(), 0.0, 1e-10);
  // Double rarefaction: star pressure below both initial pressures.
  EXPECT_LT(rp.star_pressure(), 1.0);
}

TEST(RiemannExact, CollidingFlowsFormShocks) {
  hy::RiemannProblem rp({1.0, 2.0, 1.0}, {1.0, -2.0, 1.0});
  EXPECT_GT(rp.star_pressure(), 1.0);  // compression
  EXPECT_NEAR(rp.star_velocity(), 0.0, 1e-10);
}

TEST(RiemannExact, UniformStateIsInvariant) {
  hy::RiemannProblem rp({1.0, 0.5, 0.7}, {1.0, 0.5, 0.7});
  EXPECT_NEAR(rp.star_pressure(), 0.7, 1e-10);
  EXPECT_NEAR(rp.star_velocity(), 0.5, 1e-10);
  for (double xi : {-1.0, 0.0, 0.4, 2.0}) {
    const auto s = rp.sample(xi);
    EXPECT_NEAR(s.rho, 1.0, 1e-9);
    EXPECT_NEAR(s.u, 0.5, 1e-9);
    EXPECT_NEAR(s.p, 0.7, 1e-9);
  }
}

TEST(RiemannExact, SampleFarFieldReturnsInitialStates) {
  hy::RiemannProblem rp({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  const auto left = rp.sample(-10.0);
  EXPECT_DOUBLE_EQ(left.rho, 1.0);
  EXPECT_DOUBLE_EQ(left.p, 1.0);
  const auto right = rp.sample(10.0);
  EXPECT_DOUBLE_EQ(right.rho, 0.125);
  EXPECT_DOUBLE_EQ(right.p, 0.1);
}

TEST(RiemannExact, SodWaveStructureOrdered) {
  // Sample across the fan: density decreases monotonically through the
  // rarefaction, jumps down at the contact, and the shock raises the
  // right-state density.
  hy::RiemannProblem rp({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  const double rho_fan = rp.sample(-0.5).rho;
  const double rho_left_star = rp.sample(rp.star_velocity() - 0.05).rho;
  const double rho_right_star = rp.sample(rp.star_velocity() + 0.05).rho;
  EXPECT_LT(rho_fan, 1.0);
  EXPECT_LT(rho_left_star, rho_fan);
  EXPECT_LT(rho_right_star, rho_left_star);  // contact: density drops
  EXPECT_GT(rho_right_star, 0.125);          // shocked right state
}

TEST(RiemannExact, NonpositiveStatesRejected) {
  EXPECT_THROW(hy::RiemannProblem({-1.0, 0.0, 1.0}, {1.0, 0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(hy::RiemannProblem({1.0, 0.0, 0.0}, {1.0, 0.0, 1.0}),
               std::invalid_argument);
}

// --- Sod shock tube through the full solver ---------------------------------

TEST(SodShockTube, SolverConvergesToExactSolution) {
  // Quasi-1D: 200 x 1 x 1 zones, Sod states split at x = 0.5, run to
  // t ~ 0.2 and compare the density profile with the exact solution.
  mem::MemoryManager::Config mc;
  mc.target = mem::ExecutionTarget::kCpuCore;
  mc.host_capacity = std::size_t{1} << 28;
  mem::MemoryManager mm(mc);

  hy::ProblemConfig cfg;
  const long n = 200;
  cfg.global = Box{{0, 0, 0}, {n, 1, 1}};
  hy::Solver solver(mm, cfg, cfg.global,
                    coop::forall::DynamicPolicy{coop::forall::PolicyKind::kSeq});
  solver.initialize_with([](double x, double, double) {
    return x < 0.5 ? hy::Solver::Primitives{1.0, 0, 0, 0, 1.0}
                   : hy::Solver::Primitives{0.125, 0, 0, 0, 0.1};
  });

  double t = 0;
  while (t < 0.2) {
    solver.apply_physical_boundaries();
    solver.compute_primitives();
    const double dt = std::min(solver.local_dt(), 0.2 - t);
    solver.advance(dt);
    t += dt;
  }

  hy::RiemannProblem exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1});
  double l1 = 0;
  for (long i = 0; i < n; ++i) {
    const double x = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double rho_exact = exact.sample((x - 0.5) / t).rho;
    l1 += std::abs(solver.state().rho(i, 0, 0) - rho_exact) /
          static_cast<double>(n);
  }
  // First-order Rusanov at N=200: L1 error a few percent of the mean
  // density; 0.035 is a comfortable-but-meaningful bar (a wrong wave speed
  // or a flux bug blows straight past it).
  EXPECT_LT(l1, 0.035);

  // Wave positions: shocked plateau density near the exact star value.
  const double u_star = exact.star_velocity();
  const double x_probe = 0.5 + u_star * t + 0.05;  // between contact & shock
  const long ip = static_cast<long>(x_probe * n);
  const double rho_star_r = exact.sample(u_star + 0.05).rho;
  EXPECT_NEAR(solver.state().rho(ip, 0, 0), rho_star_r, 0.05);
}

TEST(SodShockTube, TransverseMomentaStayZero) {
  mem::MemoryManager::Config mc;
  mc.target = mem::ExecutionTarget::kCpuCore;
  mc.host_capacity = std::size_t{1} << 28;
  mem::MemoryManager mm(mc);
  hy::ProblemConfig cfg;
  cfg.global = Box{{0, 0, 0}, {64, 2, 2}};
  hy::Solver solver(mm, cfg, cfg.global,
                    coop::forall::DynamicPolicy{coop::forall::PolicyKind::kSeq});
  solver.initialize_with([](double x, double, double) {
    return x < 0.5 ? hy::Solver::Primitives{1.0, 0, 0, 0, 1.0}
                   : hy::Solver::Primitives{0.125, 0, 0, 0, 0.1};
  });
  for (int s = 0; s < 30; ++s) {
    solver.apply_physical_boundaries();
    solver.compute_primitives();
    solver.advance(solver.local_dt());
  }
  for (long i = 0; i < 64; ++i) {
    ASSERT_DOUBLE_EQ(solver.state().my(i, 0, 0), 0.0);
    ASSERT_DOUBLE_EQ(solver.state().mz(i, 1, 1), 0.0);
  }
}

}  // namespace
