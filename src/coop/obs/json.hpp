#pragma once

#include <ostream>
#include <string_view>

/// \file json.hpp
/// Shared JSON emission helpers for every observability exporter.
///
/// All machine-readable output of the obs layer (Perfetto traces, metric
/// snapshots, run reports) funnels through these three functions so the
/// invariants hold everywhere at once: strings are escaped per RFC 8259,
/// numbers are never NaN/Inf (JSON cannot represent them), and timestamps
/// keep fixed sub-microsecond precision instead of ostream's default
/// 6-significant-digit float formatting.

namespace coop::obs {

/// Writes `s` as a JSON string literal, quotes included. Escapes the two
/// mandatory characters (`"`, `\`), the short-form control characters
/// (\b \f \n \r \t) and every other byte < 0x20 as \u00XX.
void write_json_string(std::ostream& os, std::string_view s);

/// Writes `v` as a JSON number with shortest round-trip precision (%.17g).
/// NaN and Inf are not representable in JSON; they are written as 0 so an
/// exporter bug degrades to a wrong value rather than an unparseable file
/// (the test-side checker additionally rejects any literal that slips out).
void write_json_number(std::ostream& os, double v);

/// Writes `v` in fixed-point notation with `decimals` fractional digits.
/// Trace exporters use this for `ts`/`dur` (microseconds, 3 decimals =
/// nanosecond resolution) so multi-hour simulated runs do not collapse to 6
/// significant digits. Non-finite values degrade to 0 as above.
void write_json_fixed(std::ostream& os, double v, int decimals);

}  // namespace coop::obs
