/// Figure 10 of the paper: the hierarchical domain decomposition.
///
/// Compares, at the same rank counts, the naive "square" decomposition
/// against the paper's hierarchical scheme (split across GPUs first, then
/// subdivide each GPU block in a single dimension, keeping the innermost x
/// extent identical for every rank). The hierarchical scheme keeps the halo
/// neighbor count minimal — the paper experimentally verified it minimizes
/// the communication overhead of using extra ranks; this bench regenerates
/// that comparison. Also prints the heterogeneous carve (Fig. 10c).
///
/// The analytics live in coop_sweeps (src/coop/sweeps/figure_sweeps.hpp).

#include "coop/sweeps/figure_sweeps.hpp"

int main() {
  coop::sweeps::run_fig10_bench();
  return 0;
}
