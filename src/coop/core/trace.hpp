#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

/// \file trace.hpp
/// Phase-level execution tracing for the timed simulation.
///
/// When a `TraceRecorder` is attached to a run, every rank records one span
/// per phase (compute, halo wait, reduce) per timestep. The result can be
/// exported as a Chrome-tracing JSON (load in chrome://tracing or Perfetto)
/// to see the per-rank Gantt chart: GPU ranks computing while CPU slabs lag
/// or idle is exactly the load-imbalance picture of the paper's 6.2.
///
/// This class predates `obs::Tracer` and is kept as a thin adapter: the
/// phase-span API is unchanged, but Chrome-trace export routes through the
/// unified tracer (fixed-precision timestamps, proper escaping, metadata).
/// New instrumentation should use `obs::Tracer` directly via
/// `TimedConfig::tracer`.

namespace coop::obs {
class Tracer;
}  // namespace coop::obs

namespace coop::core {

enum class Phase : std::uint8_t {
  kCompute,
  kHaloWait,
  kReduce,
  kRebalance,
};

[[nodiscard]] constexpr const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kCompute: return "compute";
    case Phase::kHaloWait: return "halo-wait";
    case Phase::kReduce: return "reduce";
    case Phase::kRebalance: return "rebalance";
  }
  return "?";
}

struct TraceSpan {
  int rank = 0;
  int step = 0;
  Phase phase = Phase::kCompute;
  double t_begin = 0;  ///< simulated seconds
  double t_end = 0;
};

class TraceRecorder {
 public:
  void record(int rank, int step, Phase phase, double t_begin, double t_end) {
    spans_.push_back(TraceSpan{rank, step, phase, t_begin, t_end});
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }
  void clear() { spans_.clear(); }

  /// Total simulated time rank `rank` spent in `phase`.
  [[nodiscard]] double total_time(int rank, Phase phase) const;

  /// Replays every span into `tracer` (pid 0, tid = rank, cat = "step<N>"),
  /// registering process/thread names. The adapter bridge to the unified
  /// observability layer.
  void export_to(obs::Tracer& tracer) const;

  /// Writes the spans as a Chrome-tracing "traceEvents" JSON array
  /// (complete events, microsecond timestamps at fixed 3-decimal precision,
  /// one row per rank). Implemented via `export_to` + `obs::Tracer`.
  void write_chrome_trace(std::ostream& os) const;

  /// Writes a flat CSV: rank,step,phase,begin,end.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace coop::core

// Implementation kept out-of-line in trace.cpp.
