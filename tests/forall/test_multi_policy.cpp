#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "coop/forall/multi_policy.hpp"

namespace fa = coop::forall;

namespace {

TEST(MultiPolicy, SizeThresholdSelectsPerLoop) {
  auto mp = fa::MultiPolicy::size_threshold(100, fa::PolicyKind::kSeq,
                                            fa::PolicyKind::kThreads);
  std::vector<double> v(1000, 1.0);
  double* vp = v.data();

  fa::forall(mp, 0, 10, [=](long i) { vp[i] += 1.0; });
  EXPECT_EQ(mp.last_selected(), fa::PolicyKind::kSeq);

  fa::forall(mp, 0, 1000, [=](long i) { vp[i] += 1.0; });
  EXPECT_EQ(mp.last_selected(), fa::PolicyKind::kThreads);

  EXPECT_EQ(mp.selections(), 2);
  // First 10 elements were touched twice, the rest once.
  EXPECT_DOUBLE_EQ(v[5], 3.0);
  EXPECT_DOUBLE_EQ(v[500], 2.0);
}

TEST(MultiPolicy, ThresholdBoundaryIsInclusive) {
  auto mp = fa::MultiPolicy::size_threshold(64, fa::PolicyKind::kSeq,
                                            fa::PolicyKind::kSimd);
  fa::forall(mp, 0, 63, [](long) {});
  EXPECT_EQ(mp.last_selected(), fa::PolicyKind::kSeq);
  fa::forall(mp, 0, 64, [](long) {});
  EXPECT_EQ(mp.last_selected(), fa::PolicyKind::kSimd);
}

TEST(MultiPolicy, CustomSelectorSeesRange) {
  // Selector keyed on the *start*, not the length.
  fa::MultiPolicy mp([](long begin, long) {
    return begin >= 1000 ? fa::PolicyKind::kSimGpu : fa::PolicyKind::kSeq;
  });
  fa::forall(mp, 0, 10, [](long) {});
  EXPECT_EQ(mp.last_selected(), fa::PolicyKind::kSeq);
  fa::forall(mp, 1000, 1010, [](long) {});
  EXPECT_EQ(mp.last_selected(), fa::PolicyKind::kSimGpu);
}

TEST(MultiPolicy, ResultsIndependentOfSelection) {
  // Whatever the selector picks, the loop result is identical.
  std::vector<double> a(5000), b(5000);
  std::iota(a.begin(), a.end(), 0.0);
  std::iota(b.begin(), b.end(), 0.0);
  double* ap = a.data();
  double* bp = b.data();
  auto mp = fa::MultiPolicy::size_threshold(2500, fa::PolicyKind::kSeq,
                                            fa::PolicyKind::kThreads);
  fa::forall(mp, 0, 2000, [=](long i) { ap[i] *= 2; });  // seq
  fa::forall(mp, 2000, 5000, [=](long i) { ap[i] *= 2; });  // threads
  for (long i = 0; i < 5000; ++i)
    bp[i] *= 2;
  EXPECT_EQ(a, b);
}

TEST(MultiPolicy, EmptySelectorRejected) {
  EXPECT_THROW(fa::MultiPolicy(fa::MultiPolicy::Selector{}),
               std::invalid_argument);
}

TEST(MultiPolicy, KernelLaunchAvoidanceIdiom) {
  // The motivating use in the paper's context: tiny loops should not pay a
  // (simulated) kernel launch; long loops should go to the device policy.
  auto mp = fa::MultiPolicy::size_threshold(1024, fa::PolicyKind::kSeq,
                                            fa::PolicyKind::kSimGpu);
  int launches = 0;
  for (long n : {8L, 64L, 512L, 4096L, 65536L}) {
    fa::forall(mp, 0, n, [](long) {});
    if (mp.last_selected() == fa::PolicyKind::kSimGpu) ++launches;
  }
  EXPECT_EQ(launches, 2);
}

}  // namespace
